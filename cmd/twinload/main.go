// Command twinload load-tests the lumosweb digital-twin service: it drives
// K concurrent sessions through the full lifecycle — create, M submission
// batches with clock advances, a what-if query per batch, teardown — and
// reports sessions/sec plus what-if latency percentiles.
//
// Usage (against a running lumosweb):
//
//	twinload -url http://localhost:8080 -sessions 1000 -submits 3
//
// scripts/loadtest.sh wires the two together and checks graceful shutdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"crosssched/internal/par"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "lumosweb base URL")
		sessions = flag.Int("sessions", 1000, "concurrent twin sessions to drive")
		submits  = flag.Int("submits", 3, "submission batches per session")
		jobs     = flag.Int("jobs", 5, "jobs per submission batch")
		workers  = flag.Int("workers", 64, "concurrent client workers")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		keep     = flag.Bool("keep", true, "leave sessions live (server holds all K at once; exercises shutdown teardown)")
		cold     = flag.Bool("cold-whatif", false, "create sessions with cold_whatif: every what-if replays from t=0 instead of forking warm checkpoints (A/B the warm-start latency win)")
		advance  = flag.Float64("advance", 300, "simulated seconds the clock advances per batch; large values age the log so what-ifs query a deep history, the warm-start regime")
	)
	flag.Parse()
	base := strings.TrimRight(*url, "/")
	client := &http.Client{Timeout: *timeout}

	var (
		mu        sync.Mutex
		whatIfLat []time.Duration
		errs      int
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		errs++
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	ctx := par.WithLimit(context.Background(), *workers)
	start := time.Now()
	_ = par.ForEach(ctx, *sessions, func(ctx context.Context, i int) error {
		if err := driveSession(client, base, i, *submits, *jobs, *keep, *cold, *advance, func(d time.Duration) {
			mu.Lock()
			whatIfLat = append(whatIfLat, d)
			mu.Unlock()
		}); err != nil {
			fail(fmt.Errorf("session %d: %w", i, err))
		}
		return nil // keep driving the rest; errors are counted, not fatal
	})
	elapsed := time.Since(start)

	fmt.Printf("twinload: %d sessions x %d submits in %v (%.1f sessions/sec)\n",
		*sessions, *submits, elapsed.Round(time.Millisecond),
		float64(*sessions)/elapsed.Seconds())
	if len(whatIfLat) > 0 {
		sort.Slice(whatIfLat, func(a, b int) bool { return whatIfLat[a] < whatIfLat[b] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(whatIfLat)-1))
			return whatIfLat[i]
		}
		fmt.Printf("twinload: what-if latency p50=%v p90=%v p99=%v max=%v (n=%d)\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), whatIfLat[len(whatIfLat)-1].Round(time.Microsecond),
			len(whatIfLat))
	}
	if errs > 0 {
		log.Fatalf("twinload: %d/%d sessions failed; first error: %v", errs, *sessions, firstErr)
	}
	fmt.Println("twinload: all sessions completed")
	os.Exit(0)
}

// driveSession runs one session end to end against the HTTP API.
func driveSession(client *http.Client, base string, i, submits, jobs int, keep, cold bool, advance float64, observe func(time.Duration)) error {
	var snap struct {
		ID string `json:"id"`
	}
	// Vary the cluster shape a little so sessions are not identical.
	body := fmt.Sprintf(`{"cores": %d, "partitions": %d, "policy": "fcfs", "backfill": "easy", "seed": %d, "cold_whatif": %t}`,
		32+(i%4)*32, 1+i%4, i+1, cold)
	if err := call(client, "POST", base+"/session", body, &snap); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	sess := base + "/session/" + snap.ID

	clock := 0.0
	for b := 0; b < submits; b++ {
		specs := make([]string, jobs)
		for j := range specs {
			specs[j] = fmt.Sprintf(`{"procs": %d, "run": %d, "user": %d}`,
				1+(i+j)%8, 60+((i*7+j*13)%240)*10, (i+j)%6)
		}
		if err := call(client, "POST", sess+"/submit",
			`{"jobs": [`+strings.Join(specs, ",")+`]}`, nil); err != nil {
			return fmt.Errorf("submit %d: %w", b, err)
		}
		// Query while the batch is still pending — "which config should
		// schedule what I just queued" is the service's core question.
		t0 := time.Now()
		err := call(client, "POST", sess+"/whatif",
			`{"candidates": [{"policy":"sjf"},{"backfill":"conservative"},{"policy":"saf","backfill":"easy"}]}`, nil)
		if err != nil {
			return fmt.Errorf("whatif %d: %w", b, err)
		}
		observe(time.Since(t0))
		clock += advance
		if err := call(client, "POST", sess+"/advance",
			fmt.Sprintf(`{"to": %g}`, clock), nil); err != nil {
			return fmt.Errorf("advance %d: %w", b, err)
		}
	}
	if !keep {
		if err := call(client, "DELETE", sess, "", nil); err != nil {
			return fmt.Errorf("delete: %w", err)
		}
	}
	return nil
}

// call issues one JSON request, decoding the reply into out when non-nil.
func call(client *http.Client, method, url, body string, out interface{}) error {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: bad reply %q: %w", method, url, raw, err)
		}
	}
	return nil
}

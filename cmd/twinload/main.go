// Command twinload load-tests the lumosweb digital-twin service: it drives
// K concurrent sessions through the full lifecycle — create, M submission
// batches with clock advances, a what-if query per batch, teardown — and
// reports sessions/sec, what-if latency percentiles, and failures broken
// down by class (shed 429s vs client 4xx vs server 5xx vs transport).
//
// Usage (against a running lumosweb):
//
//	twinload -url http://localhost:8080 -sessions 1000 -submits 3
//
// scripts/loadtest.sh wires the two together and checks graceful shutdown.
//
// Crash-test knobs (scripts/crashtest.sh): -kill-pid/-kill-after SIGKILL
// the server mid-load — transport failures after the kill are expected and
// don't fail the run — and -resume drives existing sessions s000001..K
// (created by an earlier run and recovered from their journals) instead of
// creating new ones.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crosssched/internal/par"
)

// failClass buckets one failed session by its root cause.
type failClass int

const (
	failShed      failClass = iota // 429: overload shedding or budget caps
	failClient                     // other 4xx: the driver sent something bad
	failServer                     // 5xx
	failTransport                  // connection refused/reset, timeouts
	failOther                      // decode errors and the like
	numFailClasses
)

var failNames = [numFailClasses]string{"shed(429)", "client(4xx)", "server(5xx)", "transport", "other"}

// statusError is a non-2xx reply, carrying the class and back-off hint.
type statusError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.msg) }

func classify(err error) failClass {
	var se *statusError
	if !errors.As(err, &se) {
		if strings.Contains(err.Error(), "bad reply") {
			return failOther
		}
		return failTransport
	}
	switch {
	case se.code == http.StatusTooManyRequests:
		return failShed
	case se.code >= 500:
		return failServer
	case se.code >= 400:
		return failClient
	}
	return failOther
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "lumosweb base URL")
		sessions  = flag.Int("sessions", 1000, "concurrent twin sessions to drive")
		submits   = flag.Int("submits", 3, "submission batches per session")
		jobs      = flag.Int("jobs", 5, "jobs per submission batch")
		workers   = flag.Int("workers", 64, "concurrent client workers")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		keep      = flag.Bool("keep", true, "leave sessions live (server holds all K at once; exercises shutdown teardown)")
		cold      = flag.Bool("cold-whatif", false, "create sessions with cold_whatif: every what-if replays from t=0 instead of forking warm checkpoints (A/B the warm-start latency win)")
		advance   = flag.Float64("advance", 300, "simulated seconds the clock advances per batch; large values age the log so what-ifs query a deep history, the warm-start regime")
		resume    = flag.Bool("resume", false, "drive existing sessions s000001..s<K> (recovered server state) instead of creating new ones")
		killPID   = flag.Int("kill-pid", 0, "SIGKILL this process kill-after into the load (crash testing; 0 = off)")
		killAfter = flag.Duration("kill-after", 500*time.Millisecond, "delay before -kill-pid fires")
		retries   = flag.Int("retries", 2, "extra attempts after a 429, honoring Retry-After")
	)
	flag.Parse()
	base := strings.TrimRight(*url, "/")
	client := &http.Client{Timeout: *timeout}

	// The kill timer is armed before the load starts and always fires,
	// even if the load finishes first: the crash test depends on the
	// server actually dying.
	var killedAt atomic.Int64 // unix nanos; 0 = not yet
	killDone := make(chan struct{})
	if *killPID > 0 {
		go func() {
			defer close(killDone)
			time.Sleep(*killAfter)
			killedAt.Store(time.Now().UnixNano())
			if p, err := os.FindProcess(*killPID); err == nil {
				_ = p.Kill()
			}
		}()
	} else {
		close(killDone)
	}

	var (
		mu         sync.Mutex
		whatIfLat  []time.Duration
		fails      [numFailClasses]int
		postKill   int // failures after the kill fired: expected, not errors
		shedWaits  int // 429s absorbed by retry
		firstErr   error
		firstClass failClass
	)
	fail := func(err error) {
		now := time.Now().UnixNano()
		mu.Lock()
		defer mu.Unlock()
		if k := killedAt.Load(); k != 0 && now >= k {
			postKill++
			return
		}
		c := classify(err)
		fails[c]++
		if firstErr == nil {
			firstErr, firstClass = err, c
		}
	}
	onRetry := func() {
		mu.Lock()
		shedWaits++
		mu.Unlock()
	}

	d := &driver{client: client, base: base, retries: *retries, onRetry: onRetry}
	ctx := par.WithLimit(context.Background(), *workers)
	start := time.Now()
	_ = par.ForEach(ctx, *sessions, func(ctx context.Context, i int) error {
		if err := d.driveSession(i, *submits, *jobs, *keep, *cold, *resume, *advance, func(lat time.Duration) {
			mu.Lock()
			whatIfLat = append(whatIfLat, lat)
			mu.Unlock()
		}); err != nil {
			fail(fmt.Errorf("session %d: %w", i, err))
		}
		return nil // keep driving the rest; errors are counted, not fatal
	})
	elapsed := time.Since(start)
	<-killDone

	fmt.Printf("twinload: %d sessions x %d submits in %v (%.1f sessions/sec)\n",
		*sessions, *submits, elapsed.Round(time.Millisecond),
		float64(*sessions)/elapsed.Seconds())
	if len(whatIfLat) > 0 {
		sort.Slice(whatIfLat, func(a, b int) bool { return whatIfLat[a] < whatIfLat[b] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(whatIfLat)-1))
			return whatIfLat[i]
		}
		fmt.Printf("twinload: what-if latency p50=%v p90=%v p99=%v max=%v (n=%d)\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), whatIfLat[len(whatIfLat)-1].Round(time.Microsecond),
			len(whatIfLat))
	}
	if shedWaits > 0 {
		fmt.Printf("twinload: %d shed replies (429) absorbed by retry\n", shedWaits)
	}
	if postKill > 0 {
		fmt.Printf("twinload: %d sessions cut off by the kill (expected)\n", postKill)
	}
	total := 0
	for c, n := range fails {
		if n > 0 {
			fmt.Printf("twinload: %d sessions failed: %s\n", n, failNames[c])
			total += n
		}
	}
	if total > 0 {
		log.Fatalf("twinload: %d/%d sessions failed; first error (%s): %v",
			total, *sessions, failNames[firstClass], firstErr)
	}
	fmt.Println("twinload: all sessions completed")
	os.Exit(0)
}

type driver struct {
	client  *http.Client
	base    string
	retries int
	onRetry func()
}

// driveSession runs one session end to end against the HTTP API. With
// resume it picks up the manager's deterministic ID for the i-th session
// of a previous run and keeps driving it — the clock moves with relative
// advances, so it composes with whatever the journal recovered.
func (d *driver) driveSession(i, submits, jobs int, keep, cold, resume bool, advance float64, observe func(time.Duration)) error {
	var sess string
	if resume {
		sess = fmt.Sprintf("%s/session/s%06d", d.base, i+1)
		if err := d.call("GET", sess, "", nil); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	} else {
		var snap struct {
			ID string `json:"id"`
		}
		// Vary the cluster shape a little so sessions are not identical.
		body := fmt.Sprintf(`{"cores": %d, "partitions": %d, "policy": "fcfs", "backfill": "easy", "seed": %d, "cold_whatif": %t}`,
			32+(i%4)*32, 1+i%4, i+1, cold)
		if err := d.call("POST", d.base+"/session", body, &snap); err != nil {
			return fmt.Errorf("create: %w", err)
		}
		sess = d.base + "/session/" + snap.ID
	}

	for b := 0; b < submits; b++ {
		specs := make([]string, jobs)
		for j := range specs {
			specs[j] = fmt.Sprintf(`{"procs": %d, "run": %d, "user": %d}`,
				1+(i+j)%8, 60+((i*7+j*13)%240)*10, (i+j)%6)
		}
		if err := d.call("POST", sess+"/submit",
			`{"jobs": [`+strings.Join(specs, ",")+`]}`, nil); err != nil {
			return fmt.Errorf("submit %d: %w", b, err)
		}
		// Query while the batch is still pending — "which config should
		// schedule what I just queued" is the service's core question.
		t0 := time.Now()
		err := d.call("POST", sess+"/whatif",
			`{"candidates": [{"policy":"sjf"},{"backfill":"conservative"},{"policy":"saf","backfill":"easy"}]}`, nil)
		if err != nil {
			return fmt.Errorf("whatif %d: %w", b, err)
		}
		observe(time.Since(t0))
		if err := d.call("POST", sess+"/advance",
			fmt.Sprintf(`{"by": %g}`, advance), nil); err != nil {
			return fmt.Errorf("advance %d: %w", b, err)
		}
	}
	if !keep {
		if err := d.call("DELETE", sess, "", nil); err != nil {
			return fmt.Errorf("delete: %w", err)
		}
	}
	return nil
}

// call issues one JSON request, decoding the reply into out when non-nil.
// Shed replies (429) are retried up to d.retries times after sleeping the
// server's Retry-After hint — the cooperative response to load shedding.
func (d *driver) call(method, url, body string, out interface{}) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = d.callOnce(method, url, body, out)
		var se *statusError
		if err == nil || !errors.As(err, &se) || se.code != http.StatusTooManyRequests || attempt >= d.retries {
			return err
		}
		d.onRetry()
		wait := se.retryAfter
		if wait <= 0 {
			wait = time.Second
		}
		time.Sleep(wait)
	}
}

func (d *driver) callOnce(method, url, body string, out interface{}) error {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		se := &statusError{code: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.retryAfter = time.Duration(secs) * time.Second
		}
		return fmt.Errorf("%s %s: %w", method, url, se)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: bad reply %q: %w", method, url, raw, err)
		}
	}
	return nil
}

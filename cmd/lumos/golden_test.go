package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crosssched/internal/figures"
)

var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// goldenSuite is deliberately small: golden tests pin the exact rendered
// output, so they must stay cheap enough to run on every test invocation.
func goldenSuite() *figures.Suite {
	return figures.NewSuite(figures.Config{Days: 2, SimDays: 1, Seed: 1})
}

// TestGoldenFigures locks down the rendered output of the headline figures
// (Table I, Figure 1, Figure 6) against golden files in testdata/. On an
// intentional change, regenerate with:
//
//	go test ./cmd/lumos -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	s := goldenSuite()
	for _, name := range []string{"table1", "1", "6"} {
		name := name
		t.Run("fig_"+name, func(t *testing.T) {
			out, err := s.Render(name, "Philly")
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "fig_"+name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if out != string(want) {
				t.Errorf("rendered %s differs from %s:\n%s", name, golden, firstDiff(string(want), out))
			}
		})
	}
}

// firstDiff reports the first differing line so a golden mismatch is
// readable without an external diff tool.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// quiet routes stdout to /dev/null for the duration of the test so figure
// dumps do not clutter `go test` output.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunFigure(t *testing.T) {
	quiet(t)
	if err := run("2", 1, 1, 1, "Philly", "", false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	quiet(t)
	if err := run("99", 1, 1, 1, "Philly", "", false, false, false); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunInputCharacterization(t *testing.T) {
	quiet(t)
	p := synth.Helios(0.5)
	tr, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWF(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("", 0, 0, 0, "", path, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeries(t *testing.T) {
	quiet(t)
	if err := run("", 1, 1, 1, "Philly", "", true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunInputFull(t *testing.T) {
	quiet(t)
	p := synth.Helios(0.5)
	tr, err := p.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "full.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWF(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("", 0, 0, 0, "", path, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	quiet(t)
	if err := run("", 1, 1, 1, "Philly", "", false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunInputMissing(t *testing.T) {
	quiet(t)
	if err := run("", 0, 0, 0, "", "/does/not/exist.swf", false, false, false); err == nil {
		t.Fatal("missing input accepted")
	}
}

// Command lumos is the characterization CLI (named after the paper's
// released analysis package): it regenerates any of the paper's tables and
// figures from the built-in calibrated workloads, or characterizes a
// user-supplied SWF trace.
//
// Usage:
//
//	lumos -fig all                 # every table and figure
//	lumos -fig 2 -days 10          # Figure 2 only
//	lumos -fig 12 -system Mira     # runtime prediction on Mira
//	lumos -input mytrace.swf       # characterize your own trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crosssched/internal/core"
	"crosssched/internal/figures"
	"crosssched/internal/report"
	"crosssched/internal/trace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to render: "+strings.Join(figures.FigureNames, ", "))
		days    = flag.Float64("days", 10, "synthetic trace duration in days")
		simDays = flag.Float64("simdays", 8, "duration for simulator-driven experiments")
		seed    = flag.Uint64("seed", 1, "generator seed")
		system  = flag.String("system", "Philly", "system for figure 12")
		input   = flag.String("input", "", "characterize this SWF trace instead of the built-ins")
		series  = flag.Bool("series", false, "print raw CDF series (for external plotting) instead of summaries")
		rpt     = flag.Bool("report", false, "emit a markdown reproduction report (claims vs measured)")
		full    = flag.Bool("full", false, "with -input: render every figure for the trace, not just the summary")
	)
	flag.Parse()
	if err := run(*fig, *days, *simDays, *seed, *system, *input, *series, *rpt, *full); err != nil {
		fmt.Fprintln(os.Stderr, "lumos:", err)
		os.Exit(1)
	}
}

func run(fig string, days, simDays float64, seed uint64, system, input string, series, rpt, full bool) error {
	if input != "" {
		return characterizeFile(input, full)
	}
	s := figures.NewSuite(figures.Config{Days: days, SimDays: simDays, Seed: seed})
	if rpt {
		r, err := report.Build(s, days, seed, time.Now())
		if err != nil {
			return err
		}
		return r.WriteMarkdown(os.Stdout)
	}
	if series {
		out, err := figures.RenderFig1Series(s, 30)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	out, err := s.Render(fig, system)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

// characterizeFile runs the single-trace analyses on a user's SWF file and
// prints a compact report (or, with full, every figure).
func characterizeFile(path string, full bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		return err
	}
	if full {
		fmt.Println(figures.RenderSingle(tr))
		return nil
	}
	r := core.Characterize(tr)
	fmt.Printf("System %s (%s): %d jobs, %d cores\n",
		r.System.Name, r.System.Kind, r.Jobs, r.System.TotalCores)
	fmt.Printf("  runtime  p50 %.0fs p90 %.0fs\n",
		r.Geometry.RuntimeCDF.Inverse(0.5), r.Geometry.RuntimeCDF.Inverse(0.9))
	fmt.Printf("  interval p50 %.1fs  diurnal max/min %.1fx\n",
		r.Geometry.IntervalCDF.Inverse(0.5), r.Geometry.DiurnalRatio)
	fmt.Printf("  cores    p50 %.0f\n", r.Geometry.CoresCDF.Inverse(0.5))
	fmt.Printf("  util %.3f  wait p50 %.0fs\n",
		r.Scheduling.Utilization, r.Scheduling.WaitCDF.Inverse(0.5))
	fmt.Printf("  pass %.0f%%  wasted core-hours %.0f%%\n",
		100*r.Failures.PassRate(), 100*r.Failures.WastedCoreHourShare())
	if len(r.UserGroups.Coverage) >= 10 {
		fmt.Printf("  top-10 config-group coverage %.0f%% over %d heavy users\n",
			100*r.UserGroups.Coverage[9], r.UserGroups.Users)
	}
	fmt.Printf("  dominant core-hour class: %s size / %s length\n",
		r.CoreHours.DominantSize(), r.CoreHours.DominantLength())
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"crosssched/internal/trace"
)

// quiet routes stdout to /dev/null for the duration of the test so command
// output does not clutter `go test` output.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunBasicSimulation(t *testing.T) {
	quiet(t)
	if err := run("Theta", "", 1, 1, "FCFS", "easy", 0.1, false, false, false, false, false, false, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	quiet(t)
	if err := run("Theta", "", 1, 1, "FCFS", "easy", 0.1, true, false, false, false, false, false, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunEstimates(t *testing.T) {
	quiet(t)
	if err := run("Theta", "", 1, 1, "FCFS", "easy", 0.1, false, false, false, true, false, false, "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunAudit exercises the -audit path end to end: the run must pass the
// invariant auditor and (on a trace this small) the oracle comparison.
func TestRunAudit(t *testing.T) {
	quiet(t)
	if err := run("Theta", "", 0.5, 1, "SJF", "relaxed", 0.1, false, false, false, false, false, true, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	quiet(t)
	if err := run("Nope", "", 1, 1, "FCFS", "easy", 0.1, false, false, false, false, false, false, "", 0); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := run("Theta", "", 1, 1, "BOGUS", "easy", 0.1, false, false, false, false, false, false, "", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run("Theta", "", 1, 1, "FCFS", "bogus", 0.1, false, false, false, false, false, false, "", 0); err == nil {
		t.Fatal("unknown backfill accepted")
	}
	if err := run("Theta", "/does/not/exist.swf", 1, 1, "FCFS", "easy", 0.1, false, false, false, false, false, false, "", 0); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunWritesAnnotatedTrace(t *testing.T) {
	quiet(t)
	out := filepath.Join(t.TempDir(), "annotated.swf")
	if err := run("Theta", "", 1, 1, "FCFS", "easy", 0.1, false, false, false, false, false, false, out, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("annotated trace empty")
	}
	for _, j := range tr.Jobs {
		if j.Wait < 0 {
			t.Fatal("annotated trace missing waits")
		}
	}
}

// TestRunBenchMode exercises the -bench diagnosis path (repeat runs +
// timing report) end to end on a small trace.
func TestRunBenchMode(t *testing.T) {
	if err := run("Theta", "", 0.25, 1, "FCFS", "easy", 0.1, false, false, false, false, false, false, "", 2); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// quiet routes stdout to /dev/null for the duration of the test so command
// output does not clutter `go test` output.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunBasicSimulation(t *testing.T) {
	quiet(t)
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	quiet(t)
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, compare: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEstimates(t *testing.T) {
	quiet(t)
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, estimates: true}); err != nil {
		t.Fatal(err)
	}
}

// TestRunAudit exercises the -audit path end to end: the run must pass the
// invariant auditor and (on a trace this small) the oracle comparison.
func TestRunAudit(t *testing.T) {
	quiet(t)
	if err := run(runConfig{system: "Theta", days: 0.5, seed: 1, policy: "SJF", backfill: "relaxed", relax: 0.1, audit: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	quiet(t)
	if err := run(runConfig{system: "Nope", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "BOGUS", backfill: "easy", relax: 0.1}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "FCFS", backfill: "bogus", relax: 0.1}); err == nil {
		t.Fatal("unknown backfill accepted")
	}
	if err := run(runConfig{system: "Theta", input: "/does/not/exist.swf", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunWritesAnnotatedTrace(t *testing.T) {
	quiet(t)
	out := filepath.Join(t.TempDir(), "annotated.swf")
	if err := run(runConfig{system: "Theta", days: 1, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, out: out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("annotated trace empty")
	}
	for _, j := range tr.Jobs {
		if j.Wait < 0 {
			t.Fatal("annotated trace missing waits")
		}
	}
}

// TestRunBenchMode exercises the -bench diagnosis path (repeat runs +
// timing report) end to end on a small trace.
func TestRunBenchMode(t *testing.T) {
	if err := run(runConfig{system: "Theta", days: 0.25, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, bench: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestRunGoldenEvents replays the handcrafted testdata trace and compares
// the emitted decision stream byte-for-byte against the committed golden
// JSONL, and the run metrics against the golden JSON (ignoring wall time).
// The stream is deterministic: same trace, same options, same floats.
func TestRunGoldenEvents(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	eventsOut := filepath.Join(dir, "events.jsonl")
	metricsOut := filepath.Join(dir, "metrics.json")
	err := run(runConfig{
		input: "testdata/golden.swf", policy: "FCFS", backfill: "relaxed", relax: 0.1,
		audit: true, eventsOut: eventsOut, metricsOut: metricsOut,
	})
	if err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(eventsOut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden.events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("event stream diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	var gotMet, wantMet map[string]interface{}
	gm, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := os.ReadFile("testdata/golden.metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gm, &gotMet); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wm, &wantMet); err != nil {
		t.Fatal(err)
	}
	delete(gotMet, "wall_seconds") // the only nondeterministic field
	delete(wantMet, "wall_seconds")
	if !reflect.DeepEqual(gotMet, wantMet) {
		t.Fatalf("metrics diverged from golden:\n got %v\nwant %v", gotMet, wantMet)
	}
}

// TestRunTimeout: an absurdly short -timeout must abort the run with a
// deadline error instead of completing.
func TestRunTimeout(t *testing.T) {
	quiet(t)
	err := run(runConfig{
		system: "Theta", days: 4, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1,
		timeout: time.Nanosecond,
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestRunEventsAndProgress covers the -events-out/-progress plumbing on a
// synthetic trace: the JSONL must decode to a stream the auditor accepts.
func TestRunEventsAndProgress(t *testing.T) {
	quiet(t)
	eventsOut := filepath.Join(t.TempDir(), "events.jsonl")
	err := run(runConfig{
		system: "Theta", days: 0.25, seed: 1, policy: "SJF", backfill: "easy", relax: 0.1,
		eventsOut: eventsOut, progress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(eventsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events written")
	}
}

// TestRunWithFaults drives the -faults path end to end, including the
// fault-aware -audit pipeline (stream auditor + oracle comparison).
func TestRunWithFaults(t *testing.T) {
	quiet(t)
	err := run(runConfig{
		system: "Theta", days: 0.3, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1,
		faults:   "mtbf=20000,mttr=4000,frac=0.3,pint=0.05,recovery=requeue,retry=2",
		retryCap: -1, audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunDegradedSweep drives the -degraded mode with checkpoint recovery
// taken from the -faults spec.
func TestRunDegradedSweep(t *testing.T) {
	quiet(t)
	err := run(runConfig{
		system: "Theta", days: 0.25, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1,
		degraded: true, faults: "pint=0.01,recovery=checkpoint,ckpt=600",
		retryCap: -1, parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFaultFlags(t *testing.T) {
	quiet(t)
	base := runConfig{system: "Theta", days: 0.25, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, retryCap: -1}
	bad := base
	bad.faults = "bogus"
	if err := run(bad); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
	bad = base
	bad.faults = "down=7:0:3600:16" // Theta has a single partition
	if err := run(bad); err == nil {
		t.Fatal("out-of-range fault partition accepted")
	} else if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("partition error not actionable: %v", err)
	}
	bad = base
	bad.faults = "pint=0.1,recovery=checkpoint" // no interval
	if err := run(bad); err == nil {
		t.Fatal("checkpoint recovery without an interval accepted")
	}
}

// TestFaultConfigOverrides: the dedicated flags win over the -faults spec.
func TestFaultConfigOverrides(t *testing.T) {
	cfg := runConfig{
		faults:    "pint=0.1,recovery=requeue,retry=5,seed=1",
		faultSeed: 9, retryCap: 2, ckptInterval: 60,
	}
	fc, err := cfg.faultConfig()
	if err != nil {
		t.Fatal(err)
	}
	if fc.Seed != 9 || fc.RetryCap != 2 || fc.CheckpointInterval != 60 {
		t.Fatalf("overrides not applied: %+v", fc)
	}
	cfg = runConfig{faults: "pint=0.1,retry=5,seed=1", retryCap: -1}
	if fc, err = cfg.faultConfig(); err != nil {
		t.Fatal(err)
	}
	if fc.Seed != 1 || fc.RetryCap != 5 {
		t.Fatalf("spec values clobbered without overrides: %+v", fc)
	}
	cfg = runConfig{retryCap: -1}
	if fc, err = cfg.faultConfig(); err != nil || fc != nil {
		t.Fatalf("empty spec should yield nil config, got %+v, %v", fc, err)
	}
}

// TestRunStreamMode: -stream replays a synthetic workload out-of-core; its
// metrics, events, and per-job rows must land on disk, with JobsRetired and
// MaxWindowJobs showing the window actually slid.
func TestRunStreamMode(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	rows := filepath.Join(dir, "rows.jsonl")
	mets := filepath.Join(dir, "met.json")
	cfg := runConfig{system: "Theta", days: 1, seed: 1, policy: "SJF", backfill: "easy", relax: 0.1,
		stream: true, rowsOut: rows, metricsOut: mets}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(mets)
	if err != nil {
		t.Fatal(err)
	}
	var met obs.Metrics
	if err := json.Unmarshal(raw, &met); err != nil {
		t.Fatal(err)
	}
	if met.JobsRetired == 0 || met.MaxWindowJobs == 0 || met.MaxWindowJobs >= met.JobsRetired {
		t.Fatalf("streaming gauges wrong: retired %d, window peak %d", met.JobsRetired, met.MaxWindowJobs)
	}
	data, err := os.ReadFile(rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if int64(len(lines)) != met.JobsRetired {
		t.Fatalf("%d row lines for %d retired jobs", len(lines), met.JobsRetired)
	}
	var row struct {
		ID   int     `json:"id"`
		Wait float64 `json:"wait"`
	}
	if err := json.Unmarshal(lines[0], &row); err != nil {
		t.Fatalf("row 0 not JSON: %v", err)
	}
	if row.Wait < 0 {
		t.Fatalf("row 0 has negative wait: %+v", row)
	}
}

// TestRunStreamFromSWF: -stream -input reads the SWF without materializing.
func TestRunStreamFromSWF(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.swf")
	if err := run(runConfig{system: "Theta", days: 0.5, seed: 2, policy: "FCFS", backfill: "easy", relax: 0.1, out: in}); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{input: in, policy: "FCFS", backfill: "conservative", relax: 0.1, stream: true}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStreamRejectsIncompatibleModes: every mode that needs the whole
// trace in memory must refuse -stream with an actionable message.
func TestRunStreamRejectsIncompatibleModes(t *testing.T) {
	quiet(t)
	base := runConfig{system: "Theta", days: 0.5, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, stream: true}
	cases := []struct {
		name string
		mut  func(*runConfig)
		want string
	}{
		{"matrix", func(c *runConfig) { c.matrix = true }, "batch modes"},
		{"compare", func(c *runConfig) { c.compare = true }, "batch modes"},
		{"audit", func(c *runConfig) { c.audit = true }, "audit"},
		{"faults", func(c *runConfig) { c.faults = "pint=0.1,seed=1" }, "fault injection"},
		{"out", func(c *runConfig) { c.out = "x.swf" }, "-rows-out"},
		{"bench", func(c *runConfig) { c.bench = 3 }, "-bench"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := run(cfg)
		if err == nil {
			t.Fatalf("%s: -stream accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error not actionable: %v", tc.name, err)
		}
	}
	// -rows-out without -stream is an error too.
	if err := run(runConfig{system: "Theta", days: 0.5, seed: 1, policy: "FCFS", backfill: "easy", relax: 0.1, rowsOut: "x.jsonl"}); err == nil {
		t.Fatal("-rows-out accepted without -stream")
	}
}

// Command schedsim replays a job trace through the discrete-event
// scheduling simulator under a chosen priority policy and backfilling
// strategy, and reports the paper's metrics (wait, bsld, util, violations).
//
// Usage:
//
//	schedsim -system Mira -days 16 -policy FCFS -backfill easy
//	schedsim -system Theta -compare          # Table II on one system
//	schedsim -input mytrace.swf -backfill relaxed -relax 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"crosssched/internal/check"
	"crosssched/internal/experiments"
	"crosssched/internal/figures"
	"crosssched/internal/rl"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func main() {
	var (
		system     = flag.String("system", "Mira", "built-in system profile")
		input      = flag.String("input", "", "SWF trace to schedule instead of a built-in")
		days       = flag.Float64("days", 8, "synthetic trace duration in days")
		seed       = flag.Uint64("seed", 1, "generator seed")
		policy     = flag.String("policy", "FCFS", "priority policy: FCFS, SJF, LJF, SAF, WFP3, F1, F2, F3, Fair")
		backfill   = flag.String("backfill", "easy", "backfilling: none, easy, conservative, relaxed, adaptive")
		relax      = flag.Float64("relax", 0.10, "relaxation factor for relaxed/adaptive")
		compare    = flag.Bool("compare", false, "run the Table II relaxed-vs-adaptive comparison")
		matrix     = flag.Bool("matrix", false, "run the full policy x backfilling ablation")
		sweep      = flag.Bool("sweep", false, "run the relaxation-factor sweep ablation")
		estimates  = flag.Bool("estimates", false, "compare walltime-estimate sources for EASY backfilling")
		learned    = flag.Bool("learned", false, "train a learned linear policy (ES) and compare against the baselines")
		audit      = flag.Bool("audit", false, "verify the schedule against the invariant auditor (and the reference oracle on small traces)")
		out        = flag.String("o", "", "write the re-scheduled trace (with simulated waits) as SWF to this file")
		bench      = flag.Int("bench", 0, "repeat the simulation N times and report per-run timing (hot-path diagnosis without a Go test)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the simulation) to this file")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*system, *input, *days, *seed, *policy, *backfill, *relax,
		*compare, *matrix, *sweep, *estimates, *learned, *audit, *out, *bench)
	if err == nil && *memprofile != "" {
		err = writeMemProfile(*memprofile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

// writeMemProfile snapshots the heap after the run (post-GC, like go test's
// -memprofile).
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func run(system, input string, days float64, seed uint64, policy, backfill string, relax float64, compare, matrix, sweep, estimates, learned, audit bool, out string, bench int) error {
	tr, err := loadTrace(system, input, days, seed)
	if err != nil {
		return err
	}
	switch {
	case learned:
		return runLearned(tr)
	case compare:
		row, err := figures.CompareRelaxedAdaptive(tr)
		if err != nil {
			return err
		}
		fmt.Print(figures.RenderTableII([]figures.TableIIRow{*row}))
		return nil
	case matrix:
		cells, err := experiments.PolicyMatrix(tr, sim.Policies,
			[]sim.BackfillKind{sim.NoBackfill, sim.EASY, sim.Conservative, sim.Relaxed, sim.AdaptiveRelaxed})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPolicyMatrix(tr.System.Name, cells))
		return nil
	case sweep:
		pts, err := experiments.RelaxFactorSweep(tr, []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep(tr.System.Name, pts))
		return nil
	case estimates:
		res, err := experiments.PredictionBackfill(tr)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}

	pol, err := sim.ParsePolicy(policy)
	if err != nil {
		return err
	}
	bf, err := sim.ParseBackfill(backfill)
	if err != nil {
		return err
	}
	opt := sim.Options{Policy: pol, Backfill: bf, RelaxFactor: relax}
	if bench > 0 {
		if err := runBench(tr, opt, bench); err != nil {
			return err
		}
	}
	res, err := sim.Run(tr, opt)
	if err != nil {
		return err
	}
	if audit {
		if err := runAudit(tr, opt, res); err != nil {
			return err
		}
	}
	if out != "" {
		annotated := trace.New(tr.System)
		annotated.Jobs = res.Jobs
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteSWF(f, annotated); err != nil {
			return err
		}
		fmt.Printf("wrote re-scheduled trace to %s\n", out)
	}
	fmt.Printf("%s: %d jobs under %s + %s backfilling\n", tr.System.Name, tr.Len(), pol, bf)
	fmt.Printf("  avg wait        %.2f s\n", res.AvgWait)
	fmt.Printf("  avg bsld        %.2f\n", res.AvgBsld)
	fmt.Printf("  utilization     %.4f\n", res.Utilization)
	fmt.Printf("  violations      %d (total delay %.0f s)\n", res.Violations, res.ViolationDelay)
	fmt.Printf("  backfilled jobs %d\n", res.Backfilled)
	fmt.Printf("  max queue       %d\n", res.MaxQueueLen)
	fmt.Printf("  makespan        %.0f s\n", res.Makespan)
	return nil
}

// runBench repeats the simulation n times and prints per-run wall time plus
// min/mean — enough to diagnose a hot-path regression (typically together
// with -cpuprofile/-memprofile) without writing a Go benchmark.
func runBench(tr *trace.Trace, opt sim.Options, n int) error {
	fmt.Printf("bench: %d jobs under %s + %s, %d runs\n", tr.Len(), opt.Policy, opt.Backfill, n)
	min, sum := time.Duration(0), time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := sim.Run(tr, opt); err != nil {
			return err
		}
		d := time.Since(start)
		sum += d
		if i == 0 || d < min {
			min = d
		}
		fmt.Printf("  run %2d  %12v  (%.0f jobs/s)\n", i+1, d, float64(tr.Len())/d.Seconds())
	}
	fmt.Printf("bench: min %v  mean %v over %d runs\n", min, sum/time.Duration(n), n)
	return nil
}

// oracleJobLimit bounds the traces we differential-test against the O(n²)
// reference oracle; above it -audit still runs the invariant auditor, which
// is near-linear. 2000 keeps the comparison under ~1 minute even for
// conservative backfilling, the oracle's slowest planner.
const oracleJobLimit = 2000

// runAudit verifies a finished run: the invariant auditor always, plus the
// differential oracle comparison when the trace is small enough for O(n²).
func runAudit(tr *trace.Trace, opt sim.Options, res *sim.Result) error {
	rep := check.Audit(tr, opt, res)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	fmt.Printf("audit: OK (%d jobs, %d events checked)\n", rep.JobsChecked, rep.EventsChecked)
	if tr.Len() > oracleJobLimit {
		fmt.Printf("audit: trace has %d jobs, skipping O(n²) oracle comparison (limit %d)\n",
			tr.Len(), oracleJobLimit)
		return nil
	}
	if err := check.Verify(tr, opt); err != nil {
		return fmt.Errorf("differential check: %w", err)
	}
	fmt.Println("audit: schedule matches reference oracle exactly")
	return nil
}

// runLearned trains an ES policy on the trace and prints the comparison.
func runLearned(tr *trace.Trace) error {
	policy, history, err := rl.Train(tr, rl.TrainConfig{
		Iterations: 20, Population: 8, Seed: 1, Backfill: sim.EASY,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ES training on %s: bsld %.2f -> %.2f (%d iterations)\n",
		tr.System.Name, history[0], history[len(history)-1], len(history)-1)
	fmt.Printf("weights [logRT logN logWait logArea bias]: %.2f\n\n", policy.W)
	fmt.Printf("%-8s  %10s  %10s\n", "policy", "avg bsld", "avg wait")
	for _, p := range []sim.Policy{sim.FCFS, sim.SJF, sim.F1} {
		res, err := sim.Run(tr, sim.Options{Policy: p, Backfill: sim.EASY})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %10.2f  %10.1f\n", p, res.AvgBsld, res.AvgWait)
	}
	res, err := sim.Run(tr, policy.Options(sim.EASY))
	if err != nil {
		return err
	}
	fmt.Printf("%-8s  %10.2f  %10.1f\n", "learned", res.AvgBsld, res.AvgWait)
	return nil
}

func loadTrace(system, input string, days float64, seed uint64) (*trace.Trace, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadSWF(f)
	}
	p, err := synth.ByName(system, days)
	if err != nil {
		return nil, err
	}
	return p.Generate(seed)
}

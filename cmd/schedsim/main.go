// Command schedsim replays a job trace through the discrete-event
// scheduling simulator under a chosen priority policy and backfilling
// strategy, and reports the paper's metrics (wait, bsld, util, violations).
//
// Usage:
//
//	schedsim -system Mira -days 16 -policy FCFS -backfill easy
//	schedsim -system Theta -compare          # Table II on one system
//	schedsim -input mytrace.swf -backfill relaxed -relax 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"crosssched/internal/check"
	"crosssched/internal/experiments"
	"crosssched/internal/fault"
	"crosssched/internal/figures"
	"crosssched/internal/obs"
	"crosssched/internal/par"
	"crosssched/internal/rl"
	"crosssched/internal/sim"
	"crosssched/internal/stats"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// runConfig carries every flag the command accepts; run consumes it so
// tests can drive the full CLI surface without a process boundary.
type runConfig struct {
	system   string // built-in system profile
	input    string // SWF trace path overriding the built-in
	days     float64
	seed     uint64
	policy   string
	backfill string
	relax    float64

	compare   bool
	matrix    bool
	sweep     bool
	estimates bool
	learned   bool
	audit     bool
	degraded  bool

	stream  bool   // windowed out-of-core replay (O(active jobs) memory)
	rowsOut string // per-job result rows as JSONL (streaming mode)
	shards  int    // partition-sharded parallel execution (single runs)

	faults       string  // fault-scenario spec (fault.ParseSpec format)
	faultSeed    uint64  // overrides the spec's seed when nonzero
	retryCap     int     // overrides the spec's retry cap when >= 0
	ckptInterval float64 // overrides the spec's checkpoint interval when > 0

	out   string
	bench int

	eventsOut  string        // decision stream as JSONL
	metricsOut string        // per-run counters as JSON
	timeout    time.Duration // whole-run deadline (0 = none)
	progress   bool          // live progress line on stderr
	parallel   int           // worker cap for batch modes (0 = GOMAXPROCS)
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.system, "system", "Mira", "built-in system profile")
	flag.StringVar(&cfg.input, "input", "", "SWF trace to schedule instead of a built-in")
	flag.Float64Var(&cfg.days, "days", 8, "synthetic trace duration in days")
	flag.Uint64Var(&cfg.seed, "seed", 1, "generator seed")
	flag.StringVar(&cfg.policy, "policy", "FCFS", "priority policy: FCFS, SJF, LJF, SAF, WFP3, F1, F2, F3, Fair")
	flag.StringVar(&cfg.backfill, "backfill", "easy", "backfilling: none, easy, conservative, relaxed, adaptive")
	flag.Float64Var(&cfg.relax, "relax", 0.10, "relaxation factor for relaxed/adaptive")
	flag.BoolVar(&cfg.compare, "compare", false, "run the Table II relaxed-vs-adaptive comparison")
	flag.BoolVar(&cfg.matrix, "matrix", false, "run the full policy x backfilling ablation")
	flag.BoolVar(&cfg.sweep, "sweep", false, "run the relaxation-factor sweep ablation")
	flag.BoolVar(&cfg.estimates, "estimates", false, "compare walltime-estimate sources for EASY backfilling")
	flag.BoolVar(&cfg.learned, "learned", false, "train a learned linear policy (ES) and compare against the baselines")
	flag.BoolVar(&cfg.audit, "audit", false, "verify the schedule against the invariant auditor, the decision-stream auditor, and (on small traces) the reference oracle")
	flag.BoolVar(&cfg.degraded, "degraded", false, "run the degraded-capacity sweep (wait/bsld/util vs outage fraction per policy)")
	flag.BoolVar(&cfg.stream, "stream", false, "replay the trace out-of-core: jobs flow through a sliding window, memory stays O(active jobs), results are identical")
	flag.StringVar(&cfg.rowsOut, "rows-out", "", "with -stream, write per-job result rows as JSONL to this file as they retire")
	flag.IntVar(&cfg.shards, "shards", 0, "split the run by partition across up to N parallel shards with a deterministic stitch (results identical to -shards 1; configurations with cross-partition coupling fall back, see -metrics-out)")
	flag.StringVar(&cfg.faults, "faults", "", "fault-injection scenario, e.g. 'mtbf=172800,mttr=7200,frac=0.25,recovery=requeue,retry=2' or 'down=0:3600:7200:512' (off = none)")
	flag.Uint64Var(&cfg.faultSeed, "fault-seed", 0, "seed for fault draws (0 = use the -faults spec's seed)")
	flag.IntVar(&cfg.retryCap, "retry-cap", -1, "max requeues per interrupted job (-1 = use the -faults spec's cap)")
	flag.Float64Var(&cfg.ckptInterval, "checkpoint-interval", 0, "checkpoint interval in seconds for recovery=checkpoint (0 = use the -faults spec's interval)")
	flag.StringVar(&cfg.out, "o", "", "write the re-scheduled trace (with simulated waits) as SWF to this file")
	flag.IntVar(&cfg.bench, "bench", 0, "repeat the simulation N times and report per-run timing (hot-path diagnosis without a Go test)")
	flag.StringVar(&cfg.eventsOut, "events-out", "", "write the decision-event stream as JSONL to this file")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write per-run counters as JSON to this file")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the run after this wall-clock duration (e.g. 30s)")
	flag.BoolVar(&cfg.progress, "progress", false, "print a live progress line to stderr during the simulation")
	flag.IntVar(&cfg.parallel, "parallel", 0, "max concurrent simulations in batch modes (-matrix, -sweep, -estimates, -learned); 0 = GOMAXPROCS")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the simulation) to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(cfg)
	if err == nil && *memprofile != "" {
		err = writeMemProfile(*memprofile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

// writeMemProfile snapshots the heap after the run (post-GC, like go test's
// -memprofile).
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func run(cfg runConfig) error {
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if cfg.parallel > 0 {
		// Every batch entry point fans out through internal/par, which reads
		// this cap from the context — one flag covers them all.
		ctx = par.WithLimit(ctx, cfg.parallel)
	}
	fcfg, err := cfg.faultConfig()
	if err != nil {
		return err
	}
	if cfg.rowsOut != "" && !cfg.stream {
		return fmt.Errorf("-rows-out only applies to -stream runs (materialized runs keep the jobs; use -o)")
	}
	if cfg.shards > 1 && (cfg.compare || cfg.matrix || cfg.sweep || cfg.estimates || cfg.learned || cfg.degraded) {
		return fmt.Errorf("-shards applies to single runs; the batch modes already fan out across runs (cap them with -parallel)")
	}
	if cfg.stream {
		return runStream(ctx, cfg, fcfg)
	}
	tr, err := loadTrace(cfg.system, cfg.input, cfg.days, cfg.seed)
	if err != nil {
		return err
	}
	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	if fcfg != nil {
		// Re-validate with the cluster shape known, so a bad partition in a
		// down=PART:... entry fails here with an actionable message instead
		// of deep inside the simulator.
		if err := fcfg.Validate(nParts); err != nil {
			return fmt.Errorf("%w (the %s system has %d partition(s); down=PART:... needs PART in [0, %d))",
				err, tr.System.Name, nParts, nParts)
		}
	}
	switch {
	case cfg.learned:
		return runLearned(ctx, tr)
	case cfg.compare:
		row, err := figures.CompareRelaxedAdaptive(tr)
		if err != nil {
			return err
		}
		fmt.Print(figures.RenderTableII([]figures.TableIIRow{*row}))
		return nil
	case cfg.matrix:
		cells, err := experiments.PolicyMatrixContext(ctx, tr, sim.Policies,
			[]sim.BackfillKind{sim.NoBackfill, sim.EASY, sim.Conservative, sim.Relaxed, sim.AdaptiveRelaxed})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPolicyMatrix(tr.System.Name, cells))
		return nil
	case cfg.sweep:
		pts, err := experiments.RelaxFactorSweepContext(ctx, tr, []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSweep(tr.System.Name, pts))
		return nil
	case cfg.estimates:
		res, err := experiments.PredictionBackfillContext(ctx, tr)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	case cfg.degraded:
		bf, err := sim.ParseBackfill(cfg.backfill)
		if err != nil {
			return err
		}
		dopt := experiments.DegradedOptions{
			Backfill: bf, RelaxFactor: cfg.relax,
			Recovery: fault.RecoveryRequeue, RetryCap: 2,
		}
		if fcfg != nil {
			// The sweep scripts its own outages; -faults contributes the
			// recovery semantics applied to interrupted jobs.
			dopt.Recovery = fcfg.Recovery
			dopt.RetryCap = fcfg.RetryCap
			dopt.CheckpointInterval = fcfg.CheckpointInterval
		}
		pts, err := experiments.DegradedSweep(ctx, tr, nil, nil, dopt)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDegraded(tr.System.Name, dopt.Recovery, pts))
		return nil
	}

	pol, err := sim.ParsePolicy(cfg.policy)
	if err != nil {
		return err
	}
	bf, err := sim.ParseBackfill(cfg.backfill)
	if err != nil {
		return err
	}
	opt := sim.Options{Policy: pol, Backfill: bf, RelaxFactor: cfg.relax, Faults: fcfg, Shards: cfg.shards}
	if cfg.bench > 0 {
		// Benchmark repeats run bare: no observers, so the timing reflects
		// the hot path the user is diagnosing.
		if err := runBench(ctx, tr, opt, cfg.bench); err != nil {
			return err
		}
	}

	// Assemble the observer stack for the measured run. Tee collapses to
	// nil when nothing is requested, keeping the simulator's fast path.
	var observers []obs.Observer
	var events *obs.JSONLWriter
	if cfg.eventsOut != "" {
		f, err := os.Create(cfg.eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = obs.NewJSONLWriter(f)
		observers = append(observers, events)
	}
	var prog *obs.Progress
	if cfg.progress {
		prog = obs.NewProgress(os.Stderr, 0)
		observers = append(observers, prog)
	}
	var rec *obs.Recorder
	if cfg.audit {
		rec = &obs.Recorder{}
		observers = append(observers, rec)
	}
	met := &obs.Metrics{}
	opt.Observer = obs.Tee(observers...)
	opt.Metrics = met

	res, err := sim.RunContext(ctx, tr, opt)
	if prog != nil {
		prog.Finish()
	}
	if events != nil {
		if ferr := events.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if cfg.metricsOut != "" {
		// Metrics are written even for a canceled run — the partial
		// counters say how far it got.
		if werr := writeMetrics(cfg.metricsOut, met); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	if cfg.audit {
		if err := runAudit(tr, opt, res, rec.Events); err != nil {
			return err
		}
	}
	if cfg.out != "" {
		annotated := trace.New(tr.System)
		annotated.Jobs = res.Jobs
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteSWF(f, annotated); err != nil {
			return err
		}
		fmt.Printf("wrote re-scheduled trace to %s\n", cfg.out)
	}
	fmt.Printf("%s: %d jobs under %s + %s backfilling\n", tr.System.Name, tr.Len(), pol, bf)
	fmt.Printf("  avg wait        %.2f s\n", res.AvgWait)
	fmt.Printf("  avg bsld        %.2f\n", res.AvgBsld)
	fmt.Printf("  utilization     %.4f\n", res.Utilization)
	fmt.Printf("  violations      %d (total delay %.0f s)\n", res.Violations, res.ViolationDelay)
	fmt.Printf("  backfilled jobs %d\n", res.Backfilled)
	fmt.Printf("  max queue       %d\n", res.MaxQueueLen)
	fmt.Printf("  makespan        %.0f s\n", res.Makespan)
	if cfg.shards > 1 {
		if met.ShardFallbackReason != "" {
			fmt.Printf("  shards          1 (fallback: %s)\n", met.ShardFallbackReason)
		} else {
			fmt.Printf("  shards          %d\n", met.Shards)
		}
	}
	if fcfg.Enabled() {
		fmt.Printf("  interrupted     %d attempts (%d requeues, %d jobs lost)\n",
			res.Interrupted, res.Requeued, res.FaultFailed)
		fmt.Printf("  goodput         %.1f core-h (wasted %.1f core-h)\n",
			res.GoodputCoreSeconds/3600, res.WastedCoreSeconds/3600)
	}
	return nil
}

// runStream replays the trace through the windowed out-of-core simulator
// (sim.RunStream): jobs are admitted to a sliding window as simulated time
// reaches their submit and retired through a sink the moment they complete,
// so memory stays proportional to the active window rather than the trace.
// Aggregates are float-for-float identical to a materialized run; the wait
// distribution is summarized out-of-core by a t-digest sketch, so its
// quantiles carry the sketch's rank-error bound rather than being exact.
func runStream(ctx context.Context, cfg runConfig, fcfg *fault.Config) error {
	switch {
	case cfg.compare, cfg.matrix, cfg.sweep, cfg.estimates, cfg.learned, cfg.degraded:
		return fmt.Errorf("-stream replays a single run out-of-core; the batch modes (-compare, -matrix, -sweep, -estimates, -learned, -degraded) need the materialized trace")
	case cfg.audit:
		return fmt.Errorf("-stream cannot be combined with -audit: the auditors replay the materialized trace (the streaming path is verified by the check package's differential sweep instead)")
	case fcfg != nil:
		return fmt.Errorf("-stream does not support fault injection: outage schedules and per-job fault state need the whole trace up front")
	case cfg.out != "":
		return fmt.Errorf("-stream never holds the scheduled trace in memory, so -o has nothing to write; use -rows-out for per-job results")
	case cfg.bench > 0:
		return fmt.Errorf("-stream does not support -bench; use the BenchmarkStreamSimulator benchmarks instead")
	}
	pol, err := sim.ParsePolicy(cfg.policy)
	if err != nil {
		return err
	}
	bf, err := sim.ParseBackfill(cfg.backfill)
	if err != nil {
		return err
	}
	opt := sim.Options{Policy: pol, Backfill: bf, RelaxFactor: cfg.relax, Shards: cfg.shards}

	var src trace.Stream
	if cfg.input != "" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		src, err = trace.NewSWFStream(f)
		if err != nil {
			return err
		}
	} else {
		p, err := synth.ByName(cfg.system, cfg.days)
		if err != nil {
			return err
		}
		src, err = p.Stream(cfg.seed)
		if err != nil {
			return err
		}
	}

	var observers []obs.Observer
	var events *obs.JSONLWriter
	if cfg.eventsOut != "" {
		f, err := os.Create(cfg.eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = obs.NewJSONLWriter(f)
		observers = append(observers, events)
	}
	var prog *obs.Progress
	if cfg.progress {
		prog = obs.NewProgress(os.Stderr, 0)
		observers = append(observers, prog)
	}
	met := &obs.Metrics{}
	opt.Observer = obs.Tee(observers...)
	opt.Metrics = met

	var rows *obs.JobRowWriter
	if cfg.rowsOut != "" {
		f, err := os.Create(cfg.rowsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		rows = obs.NewJobRowWriter(f)
	}
	waits := stats.NewStreamSummary()
	sink := func(r sim.StreamRow) error {
		waits.Add(r.Job.Wait)
		if rows != nil {
			return rows.WriteRow(r.Job, r.Promised)
		}
		return nil
	}

	res, err := sim.RunStreamContext(ctx, src, opt, sink)
	if prog != nil {
		prog.Finish()
	}
	if events != nil {
		if ferr := events.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if rows != nil {
		if ferr := rows.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if cfg.metricsOut != "" {
		// Written even for a failed run: the partial counters (including
		// JobsRetired) say how far the stream got before it broke.
		if werr := writeMetrics(cfg.metricsOut, met); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	sys := src.System()
	fmt.Printf("%s: %d jobs streamed under %s + %s backfilling (peak window %d jobs)\n",
		sys.Name, met.JobsRetired, pol, bf, met.MaxWindowJobs)
	fmt.Printf("  avg wait        %.2f s\n", res.AvgWait)
	fmt.Printf("  avg bsld        %.2f\n", res.AvgBsld)
	fmt.Printf("  utilization     %.4f\n", res.Utilization)
	fmt.Printf("  violations      %d (total delay %.0f s)\n", res.Violations, res.ViolationDelay)
	fmt.Printf("  backfilled jobs %d\n", res.Backfilled)
	fmt.Printf("  max queue       %d\n", res.MaxQueueLen)
	fmt.Printf("  makespan        %.0f s\n", res.Makespan)
	w := waits.Summary()
	fmt.Printf("  wait sketch     p50 %.1f  p90 %.1f  p99 %.1f  max %.1f s\n", w.P50, w.P90, w.P99, w.Max)
	if cfg.shards > 1 {
		if met.ShardFallbackReason != "" {
			fmt.Printf("  shards          1 (fallback: %s)\n", met.ShardFallbackReason)
		} else {
			fmt.Printf("  shards          %d\n", met.Shards)
		}
	}
	if rows != nil {
		fmt.Printf("wrote %d job rows to %s\n", rows.Rows(), cfg.rowsOut)
	}
	return nil
}

// faultConfig assembles the fault-injection scenario from the CLI flags:
// the -faults spec parsed first, then the dedicated -fault-seed/-retry-cap/
// -checkpoint-interval overrides applied on top. Returns nil when the
// resulting scenario injects nothing (the simulator's zero-fault path).
func (cfg *runConfig) faultConfig() (*fault.Config, error) {
	fc, err := fault.ParseSpec(cfg.faults)
	if err != nil {
		return nil, err
	}
	if cfg.faultSeed != 0 {
		fc.Seed = cfg.faultSeed
	}
	if cfg.retryCap >= 0 {
		fc.RetryCap = cfg.retryCap
	}
	if cfg.ckptInterval > 0 {
		fc.CheckpointInterval = cfg.ckptInterval
	}
	if err := fc.Validate(0); err != nil {
		return nil, err
	}
	if !fc.Enabled() {
		return nil, nil
	}
	return fc, nil
}

// runBench repeats the simulation n times and prints per-run wall time plus
// min/mean — enough to diagnose a hot-path regression (typically together
// with -cpuprofile/-memprofile) without writing a Go benchmark.
func runBench(ctx context.Context, tr *trace.Trace, opt sim.Options, n int) error {
	fmt.Printf("bench: %d jobs under %s + %s, %d runs\n", tr.Len(), opt.Policy, opt.Backfill, n)
	min, sum := time.Duration(0), time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := sim.RunContext(ctx, tr, opt); err != nil {
			return err
		}
		d := time.Since(start)
		sum += d
		if i == 0 || d < min {
			min = d
		}
		fmt.Printf("  run %2d  %12v  (%.0f jobs/s)\n", i+1, d, float64(tr.Len())/d.Seconds())
	}
	fmt.Printf("bench: min %v  mean %v over %d runs\n", min, sum/time.Duration(n), n)
	return nil
}

// oracleJobLimit bounds the traces we differential-test against the O(n²)
// reference oracle; above it -audit still runs the invariant auditor, which
// is near-linear. 2000 keeps the comparison under ~1 minute even for
// conservative backfilling, the oracle's slowest planner.
const oracleJobLimit = 2000

// runAudit verifies a finished run: the invariant auditor and the
// decision-stream auditor always, plus the differential oracle comparison
// when the trace is small enough for O(n²).
func runAudit(tr *trace.Trace, opt sim.Options, res *sim.Result, events []obs.Event) error {
	if opt.Faults.Enabled() {
		// The schedule auditor reconstructs one uninterrupted start per job,
		// which no longer describes a fault run; the stream auditor carries
		// the conservation invariants instead (see check.Audit's doc).
		fmt.Println("audit: fault injection active; skipping the fault-free schedule auditor")
	} else {
		rep := check.Audit(tr, opt, res)
		if err := rep.Err(); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
		fmt.Printf("audit: OK (%d jobs, %d events checked)\n", rep.JobsChecked, rep.EventsChecked)
	}
	srep := check.AuditStream(tr, opt, events, res)
	if err := srep.Err(); err != nil {
		return fmt.Errorf("stream audit: %w", err)
	}
	fmt.Printf("stream audit: OK (%d decision events)\n", srep.EventsChecked)
	if tr.Len() > oracleJobLimit {
		fmt.Printf("audit: trace has %d jobs, skipping O(n²) oracle comparison (limit %d)\n",
			tr.Len(), oracleJobLimit)
		return nil
	}
	if opt.Faults.Enabled() {
		// Verify re-runs the simulator; detach the CLI's observer stack so
		// the verification pass does not double-write -events-out streams.
		opt.Observer = nil
		opt.Metrics = nil
	}
	if err := check.Verify(tr, opt); err != nil {
		return fmt.Errorf("differential check: %w", err)
	}
	fmt.Println("audit: schedule matches reference oracle exactly")
	return nil
}

// writeMetrics dumps the run counters as indented JSON.
func writeMetrics(path string, met *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return met.WriteJSON(f)
}

// runLearned trains an ES policy on the trace and prints the comparison.
func runLearned(ctx context.Context, tr *trace.Trace) error {
	policy, history, err := rl.TrainContext(ctx, tr, rl.TrainConfig{
		Iterations: 20, Population: 8, Seed: 1, Backfill: sim.EASY,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ES training on %s: bsld %.2f -> %.2f (%d iterations)\n",
		tr.System.Name, history[0], history[len(history)-1], len(history)-1)
	fmt.Printf("weights [logRT logN logWait logArea bias]: %.2f\n\n", policy.W)
	fmt.Printf("%-8s  %10s  %10s\n", "policy", "avg bsld", "avg wait")
	for _, p := range []sim.Policy{sim.FCFS, sim.SJF, sim.F1} {
		res, err := sim.RunContext(ctx, tr, sim.Options{Policy: p, Backfill: sim.EASY})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %10.2f  %10.1f\n", p, res.AvgBsld, res.AvgWait)
	}
	res, err := sim.RunContext(ctx, tr, policy.Options(sim.EASY))
	if err != nil {
		return err
	}
	fmt.Printf("%-8s  %10.2f  %10.1f\n", "learned", res.AvgBsld, res.AvgWait)
	return nil
}

func loadTrace(system, input string, days float64, seed uint64) (*trace.Trace, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadSWF(f)
	}
	p, err := synth.ByName(system, days)
	if err != nil {
		return nil, err
	}
	return p.Generate(seed)
}

// Command predictor runs the paper's first use case — job runtime
// prediction with and without the elapsed-time feature — and prints the
// Figure 12 comparison (underestimate rate and average accuracy for Last2,
// Tobit, XGBoost, LR, and MLP at elapsed thresholds of 1/8, 1/4, and 1/2
// of the mean runtime).
//
// Usage:
//
//	predictor -system Philly -days 10
//	predictor -input mytrace.swf -models LR,XGBoost
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crosssched/internal/experiments"
	"crosssched/internal/figures"
	"crosssched/internal/predict"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func main() {
	var (
		system     = flag.String("system", "Philly", "built-in system profile")
		input      = flag.String("input", "", "SWF trace instead of a built-in")
		days       = flag.Float64("days", 10, "synthetic trace duration in days")
		seed       = flag.Uint64("seed", 1, "generator and model seed")
		models     = flag.String("models", "", "comma-separated models (default all: "+strings.Join(predict.ModelNames, ",")+")")
		status     = flag.Bool("status", false, "run the final-status prediction extension instead")
		faultaware = flag.Bool("faultaware", false, "run the fault-aware proactive-termination sweep instead")
	)
	flag.Parse()
	if err := run(*system, *input, *days, *seed, *models, *status, *faultaware); err != nil {
		fmt.Fprintln(os.Stderr, "predictor:", err)
		os.Exit(1)
	}
}

func run(system, input string, days float64, seed uint64, models string, status, faultaware bool) error {
	var tr *trace.Trace
	var err error
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ReadSWF(f)
		if err != nil {
			return err
		}
	} else {
		p, err := synth.ByName(system, days)
		if err != nil {
			return err
		}
		tr, err = p.Generate(seed)
		if err != nil {
			return err
		}
	}
	if faultaware {
		res, err := experiments.FaultAware(tr, nil, 300)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}
	if status {
		res, err := predict.RunStatus(tr, predict.StatusConfig{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(figures.RenderStatusPrediction(res))
		return nil
	}
	cfg := predict.Config{Seed: seed}
	if models != "" {
		cfg.Models = strings.Split(models, ",")
	}
	res, err := predict.Run(tr, cfg)
	if err != nil {
		return err
	}
	fmt.Print(figures.RenderFig12(res))
	return nil
}

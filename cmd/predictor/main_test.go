package main

import (
	"os"
	"testing"
)

// quiet routes stdout to /dev/null for the duration of the test.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunSingleModel(t *testing.T) {
	quiet(t)
	if err := run("Philly", "", 1, 1, "LR", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatusMode(t *testing.T) {
	quiet(t)
	if err := run("Philly", "", 1, 1, "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultAwareMode(t *testing.T) {
	quiet(t)
	if err := run("Philly", "", 1, 1, "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	quiet(t)
	if err := run("Nope", "", 1, 1, "", false, false); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := run("Philly", "", 1, 1, "SVM", false, false); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run("", "/does/not/exist.swf", 1, 1, "", false, false); err == nil {
		t.Fatal("missing input accepted")
	}
}

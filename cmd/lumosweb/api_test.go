package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crosssched/internal/twin"
)

// twinServer spins up the twin API alone (no figure suite) with the given
// bounds.
func twinServer(t *testing.T, cfg twin.Config) (*httptest.Server, *twin.Manager) {
	t.Helper()
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Hour // keep wall-clock out of tests
	}
	mgr := twin.NewManager(cfg)
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	registerTwinAPI(mux, mgr, apiConfig{})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, mgr
}

// post sends a JSON body and decodes a JSON reply into out (when non-nil).
func post(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad JSON reply %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

// TestTwinSessionLifecycle drives the full HTTP surface: create, submit,
// advance, status, what-if, delete.
func TestTwinSessionLifecycle(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{})

	var snap twin.Snapshot
	code := post(t, srv.URL+"/session",
		`{"cores": 64, "partitions": 2, "policy": "fcfs", "backfill": "easy", "seed": 7}`, &snap)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if snap.Cores != 64 || snap.Partitions != 2 || snap.Policy != "FCFS" || snap.Backfill != "easy" {
		t.Fatalf("created session %+v", snap)
	}
	base := srv.URL + "/session/" + snap.ID

	var sub struct {
		IDs []int   `json:"ids"`
		Now float64 `json:"now"`
	}
	code = post(t, base+"/submit",
		`{"jobs": [
			{"procs": 32, "run": 100},
			{"procs": 32, "run": 200},
			{"procs": 32, "run": 50, "submit": 10}
		]}`, &sub)
	if code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if len(sub.IDs) != 3 || sub.IDs[0] != 0 || sub.IDs[2] != 2 {
		t.Fatalf("submit ids %v", sub.IDs)
	}

	code = post(t, base+"/advance", `{"to": 150}`, &snap)
	if code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}
	if snap.Now != 150 || snap.Jobs != 3 {
		t.Fatalf("advanced snapshot %+v", snap)
	}
	if snap.Completed+snap.Running+snap.Queued+snap.Future != 3 {
		t.Fatalf("job classification does not cover the log: %+v", snap)
	}

	var rep twin.Report
	code = post(t, base+"/whatif",
		`{"candidates": [{"policy": "sjf"}, {"backfill": "conservative"}]}`, &rep)
	if code != http.StatusOK {
		t.Fatalf("whatif status %d", code)
	}
	if len(rep.Ranking) != 2 || rep.Ranking[0].Rank != 1 || rep.Now != 150 {
		t.Fatalf("whatif report %+v", rep)
	}

	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session GET status %d, want 404", resp.StatusCode)
	}
}

// TestTwinErrorCodes pins the sentinel-to-status mapping.
func TestTwinErrorCodes(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{MaxCandidates: 2, MaxJobs: 2})

	if code := post(t, srv.URL+"/session/nope/submit", `{"jobs":[{"procs":1,"run":1}]}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", code)
	}
	if code := post(t, srv.URL+"/session", `{"cores": 8, "policy": "wat"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad policy: %d, want 400", code)
	}
	if code := post(t, srv.URL+"/session", `not json`, nil); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", code)
	}
	if code := post(t, srv.URL+"/session", `{}`, nil); code != http.StatusBadRequest {
		t.Fatalf("clusterless session: %d, want 400", code)
	}

	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 8}`, &snap)
	base := srv.URL + "/session/" + snap.ID
	if code := post(t, base+"/whatif", `{"candidates": []}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty whatif: %d, want 400", code)
	}
	if code := post(t, base+"/whatif",
		`{"candidates": [{"policy":"sjf"},{"policy":"saf"},{"policy":"fcfs"}]}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over candidate cap: %d, want 429", code)
	}
	if code := post(t, base+"/whatif", `{"candidates": [{"policy":"sjf"}]}`, nil); code != http.StatusConflict {
		t.Fatalf("whatif with no jobs: %d, want 409", code)
	}
	if code := post(t, base+"/submit",
		`{"jobs":[{"procs":1,"run":1},{"procs":1,"run":1},{"procs":1,"run":1}]}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over job cap: %d, want 429", code)
	}
	if code := post(t, base+"/advance", `{"by": 1, "to": 2}`, nil); code != http.StatusBadRequest {
		t.Fatalf("ambiguous advance: %d, want 400", code)
	}
}

// TestTwinWhatIfStableBody: repeating an identical what-if query returns a
// byte-identical reply — the HTTP layer preserves the twin's determinism.
func TestTwinWhatIfStableBody(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{})
	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 32, "policy": "fcfs", "seed": 11}`, &snap)
	base := srv.URL + "/session/" + snap.ID
	jobs := make([]string, 40)
	for i := range jobs {
		jobs[i] = fmt.Sprintf(`{"procs": %d, "run": %d, "user": %d}`, 1+i%16, 60+i*30, i%5)
	}
	post(t, base+"/submit", `{"jobs": [`+strings.Join(jobs, ",")+`]}`, nil)

	query := `{"candidates": [{"policy":"sjf"},{"policy":"saf","backfill":"easy"},{"backfill":"conservative"},{"policy":"f1","faults":"mtbf=43200,mttr=600,frac=0.5"}]}`
	read := func() string {
		resp, err := http.Post(base+"/whatif", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("whatif status %d: %s", resp.StatusCode, raw)
		}
		return string(raw)
	}
	first := read()
	for i := 0; i < 3; i++ {
		if got := read(); got != first {
			t.Fatalf("what-if reply %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestTwinSSEStream: the events endpoint streams decision events as
// `event: obs` frames as the clock advances.
func TestTwinSSEStream(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{})
	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 16}`, &snap)
	base := srv.URL + "/session/" + snap.ID

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	post(t, base+"/submit", `{"jobs": [{"procs": 8, "run": 100}, {"procs": 8, "run": 50}]}`, nil)
	post(t, base+"/advance", `{"to": 1000}`, nil)

	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "event: obs" {
			if !sc.Scan() || !strings.HasPrefix(sc.Text(), `data: {"kind":"`) {
				t.Fatalf("obs frame missing data line, got %q", sc.Text())
			}
			var ev struct {
				Kind string  `json:"kind"`
				Time float64 `json:"t"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &ev); err != nil {
				t.Fatalf("bad event JSON: %v", err)
			}
			if ev.Time >= 1000 {
				t.Fatalf("event at t=%v published beyond the clock", ev.Time)
			}
			frames++
			if frames >= 4 { // submit+start for both jobs at minimum
				cancel()
				break
			}
		}
	}
	if frames < 4 {
		t.Fatalf("saw %d obs frames, want >= 4", frames)
	}
}

// slowSink is an http.ResponseWriter whose Writes block until released —
// a stand-in for a stalled SSE client.
type slowSink struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	header  http.Header
	gate    chan struct{} // closed to unblock writes
	blocked chan struct{} // closed on first blocked write
	once    sync.Once
}

func newSlowSink() *slowSink {
	return &slowSink{
		header:  http.Header{},
		gate:    make(chan struct{}),
		blocked: make(chan struct{}),
	}
}

func (w *slowSink) Header() http.Header { return w.header }
func (w *slowSink) WriteHeader(int)     {}
func (w *slowSink) Flush()              {}
func (w *slowSink) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.blocked) })
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
func (w *slowSink) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestTwinSSEBackpressure: a stalled SSE client overruns its bounded ring
// and loses the OLDEST events (reported via an `event: dropped` frame);
// the session itself never stalls, and the handler goroutine exits when
// the client disconnects (no leak).
func TestTwinSSEBackpressure(t *testing.T) {
	cfg := twin.Config{EventBuffer: 4, TickInterval: time.Hour}
	mgr := twin.NewManager(cfg)
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	registerTwinAPI(mux, mgr, apiConfig{})

	s, err := mgr.Create(twin.SessionConfig{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := newSlowSink()
	req := httptest.NewRequest(http.MethodGet, "/session/"+s.ID+"/events", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		mux.ServeHTTP(sink, req)
	}()

	// Wait until the handler has subscribed: events published before the
	// subscription would never reach it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := s.Status()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Subscribers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// First event parks the handler in a blocked Write.
	specs := []twin.JobSpec{{Procs: 1, Run: 10}}
	if _, err := s.Submit(specs); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceBy(100); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sink.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE handler never wrote the first event")
	}

	// Flood: far more events than the 4-slot ring while the client stalls.
	var bulk []twin.JobSpec
	for i := 0; i < 50; i++ {
		bulk = append(bulk, twin.JobSpec{Procs: 1, Run: 10})
	}
	if _, err := s.Submit(bulk); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceBy(1e6); err != nil {
		t.Fatal(err)
	}

	// The stalled subscriber must not stall the session.
	snap, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.EventsEmitted < 100 {
		t.Fatalf("session stalled behind slow SSE client: %+v", snap)
	}

	close(sink.gate) // client recovers; handler drains ring + gap frame
	deadline = time.Now().Add(5 * time.Second)
	for !strings.Contains(sink.String(), "event: dropped") {
		if time.Now().After(deadline) {
			t.Fatalf("no dropped frame after overrun; output:\n%s", sink.String())
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // client disconnects: handler must exit and unsubscribe
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE handler leaked after client disconnect")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		snap, err = s.Status()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never detached: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}

	// The session is still live for new work.
	if _, err := s.Submit(specs); err != nil {
		t.Fatal(err)
	}
}

// TestTwinSessionLRUOverHTTP: creating past the cap evicts the oldest
// session, which then 404s.
func TestTwinSessionLRUOverHTTP(t *testing.T) {
	srv, mgr := twinServer(t, twin.Config{MaxSessions: 2})
	ids := make([]string, 3)
	for i := range ids {
		var snap twin.Snapshot
		if code := post(t, srv.URL+"/session", `{"cores": 8}`, &snap); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids[i] = snap.ID
	}
	if mgr.Len() != 2 {
		t.Fatalf("live sessions = %d, want 2", mgr.Len())
	}
	resp, err := http.Get(srv.URL + "/session/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session status %d, want 404", resp.StatusCode)
	}
}

// sseUntilGone reads an SSE stream until the terminal `event: gone` frame
// and returns its data payload (the close reason).
func sseUntilGone(t *testing.T, body io.Reader) string {
	t.Helper()
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if sc.Text() != "event: gone" {
			continue
		}
		if !sc.Scan() {
			t.Fatal("gone frame missing data line")
		}
		return strings.TrimPrefix(sc.Text(), "data: ")
	}
	t.Fatalf("stream ended without a gone frame (scan err %v)", sc.Err())
	return ""
}

// TestTwinSSEGoneFrame: when a session goes away under a live SSE stream,
// the client gets a terminal `event: gone` frame naming why — closed,
// evicted, or parked — instead of a bare EOF.
func TestTwinSSEGoneFrame(t *testing.T) {
	// subscribeSSE opens the stream and waits until the session sees it.
	subscribeSSE := func(t *testing.T, srv *httptest.Server, mgr *twin.Manager, id string) io.ReadCloser {
		t.Helper()
		resp, err := http.Get(srv.URL + "/session/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		s, err := mgr.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			snap, err := s.Status()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Subscribers > 0 {
				return resp.Body
			}
			if time.Now().After(deadline) {
				t.Fatal("SSE handler never subscribed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	t.Run("closed", func(t *testing.T) {
		srv, mgr := twinServer(t, twin.Config{})
		var snap twin.Snapshot
		post(t, srv.URL+"/session", `{"cores": 8}`, &snap)
		body := subscribeSSE(t, srv, mgr, snap.ID)
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/session/"+snap.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := sseUntilGone(t, body); got != "closed" {
			t.Fatalf("gone reason = %q, want closed", got)
		}
	})
	t.Run("evicted", func(t *testing.T) {
		srv, mgr := twinServer(t, twin.Config{MaxSessions: 1})
		var snap twin.Snapshot
		post(t, srv.URL+"/session", `{"cores": 8}`, &snap)
		body := subscribeSSE(t, srv, mgr, snap.ID)
		post(t, srv.URL+"/session", `{"cores": 8}`, nil) // evicts the first
		if got := sseUntilGone(t, body); got != "evicted" {
			t.Fatalf("gone reason = %q, want evicted", got)
		}
	})
	t.Run("parked", func(t *testing.T) {
		srv, mgr := twinServer(t, twin.Config{MaxSessions: 1, StateDir: t.TempDir(), Fsync: twin.FsyncAlways})
		var snap twin.Snapshot
		post(t, srv.URL+"/session", `{"cores": 8}`, &snap)
		body := subscribeSSE(t, srv, mgr, snap.ID)
		post(t, srv.URL+"/session", `{"cores": 8}`, nil) // parks the first
		if got := sseUntilGone(t, body); got != "parked" {
			t.Fatalf("gone reason = %q, want parked", got)
		}
		// Parked is not gone for good: the next lookup reactivates.
		resp, err := http.Get(srv.URL + "/session/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reactivation GET status %d, want 200", resp.StatusCode)
		}
	})
}

// TestTwinRetryAfterOn429: every 429 — twin budget caps and shedding gates
// alike — carries a Retry-After header.
func TestTwinRetryAfterOn429(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{MaxCandidates: 1})
	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 8}`, &snap)
	resp, err := http.Post(srv.URL+"/session/"+snap.ID+"/whatif", "application/json",
		strings.NewReader(`{"candidates": [{"policy":"sjf"},{"policy":"saf"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over candidate cap: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want default 1", ra)
	}
}

// TestTwinShedding: a full concurrency gate answers 429 + Retry-After
// immediately instead of queuing, counts the shed, and recovers as soon as
// a slot frees.
func TestTwinShedding(t *testing.T) {
	mgr := twin.NewManager(twin.Config{TickInterval: time.Hour})
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	a := registerTwinAPI(mux, mgr, apiConfig{MaxMutate: 1, RetryAfter: 7 * time.Second})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	a.mutateSem <- struct{}{} // occupy the only slot
	resp, err := http.Post(srv.URL+"/session", "application/json", strings.NewReader(`{"cores": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gated create: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}
	if got := a.shedMutate.Load(); got != 1 {
		t.Fatalf("shedMutate = %d, want 1", got)
	}
	<-a.mutateSem // slot frees
	if code := post(t, srv.URL+"/session", `{"cores": 8}`, nil); code != http.StatusCreated {
		t.Fatalf("create after gate opened: status %d, want 201", code)
	}
}

// TestTwinWhatIfBudget: a what-if that cannot finish inside the deadline
// budget is canceled and shed with 429 + Retry-After, not left running.
func TestTwinWhatIfBudget(t *testing.T) {
	mgr := twin.NewManager(twin.Config{TickInterval: time.Hour})
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	registerTwinAPI(mux, mgr, apiConfig{WhatIfBudget: time.Nanosecond})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 32}`, &snap)
	post(t, srv.URL+"/session/"+snap.ID+"/submit", `{"jobs": [{"procs": 8, "run": 100}]}`, nil)
	resp, err := http.Post(srv.URL+"/session/"+snap.ID+"/whatif", "application/json",
		strings.NewReader(`{"candidates": [{"policy":"sjf"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget whatif: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-budget whatif missing Retry-After")
	}
}

// TestTwinLogEndpoint: /log serves the published prefix as byte-stable
// JSONL — identical across reads, one line per emitted event.
func TestTwinLogEndpoint(t *testing.T) {
	srv, _ := twinServer(t, twin.Config{})
	var snap twin.Snapshot
	post(t, srv.URL+"/session", `{"cores": 16}`, &snap)
	base := srv.URL + "/session/" + snap.ID
	post(t, base+"/submit", `{"jobs": [{"procs": 8, "run": 100}, {"procs": 8, "run": 50}]}`, nil)
	post(t, base+"/advance", `{"to": 1000}`, &snap)

	read := func() []byte {
		resp, err := http.Get(base + "/log")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("log status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first := read()
	if got := bytes.Count(first, []byte("\n")); got != snap.EventsEmitted {
		t.Fatalf("log has %d lines, want events_emitted = %d", got, snap.EventsEmitted)
	}
	if snap.EventsEmitted == 0 {
		t.Fatal("setup: no events emitted")
	}
	if second := read(); !bytes.Equal(first, second) {
		t.Fatal("log endpoint is not byte-stable across reads")
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(first, []byte("\n")), []byte("\n")) {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &ev); err != nil || ev.Kind == "" {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

// TestTwinRecoveryOverHTTP is the end-to-end restart walkthrough: a second
// server over the same state dir serves the same sessions with the same
// event log, and they keep working.
func TestTwinRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()
	cfg := twin.Config{StateDir: dir, Fsync: twin.FsyncAlways}

	srv1, _ := twinServer(t, cfg)
	var snap twin.Snapshot
	post(t, srv1.URL+"/session", `{"cores": 32, "partitions": 2, "policy": "sjf", "backfill": "easy"}`, &snap)
	base1 := srv1.URL + "/session/" + snap.ID
	post(t, base1+"/submit", `{"jobs": [{"procs": 8, "run": 300}, {"procs": 16, "run": 100}, {"procs": 4, "run": 700}]}`, nil)
	post(t, base1+"/advance", `{"to": 500}`, nil)
	resp, err := http.Get(base1 + "/log")
	if err != nil {
		t.Fatal(err)
	}
	pre, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(pre) == 0 {
		t.Fatalf("pre-crash log: %d bytes, err %v", len(pre), err)
	}

	// "Restart": a second manager over the same dir while the first is
	// simply abandoned (closed only at test cleanup, like a kill).
	srv2, _ := twinServer(t, cfg)
	var mets struct {
		TwinRecovered int64 `json:"twin_recovered"`
	}
	if code := getJSON(t, srv2.URL+"/twin/metrics", &mets); code != http.StatusOK || mets.TwinRecovered != 1 {
		t.Fatalf("metrics after restart: code %d, %+v", code, mets)
	}
	base2 := srv2.URL + "/session/" + snap.ID
	resp, err = http.Get(base2 + "/log")
	if err != nil {
		t.Fatal(err)
	}
	post2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, post2) {
		t.Fatalf("recovered log differs:\npre  %d bytes\npost %d bytes", len(pre), len(post2))
	}
	// Recovered session keeps working.
	if code := post(t, base2+"/submit", `{"jobs": [{"procs": 8, "run": 60}]}`, nil); code != http.StatusOK {
		t.Fatalf("submit after recovery: status %d", code)
	}
	if code := post(t, base2+"/advance", `{"by": 5000}`, &snap); code != http.StatusOK {
		t.Fatalf("advance after recovery: status %d", code)
	}
	if snap.Jobs != 4 {
		t.Fatalf("recovered session jobs = %d, want 4", snap.Jobs)
	}
}

// getJSON fetches a URL and decodes the JSON reply into out when non-nil.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad JSON reply %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

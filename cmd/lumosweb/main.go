// Command lumosweb serves the paper's figures over HTTP — the stdlib
// equivalent of the authors' Streamlit site — and hosts the digital-twin
// scheduling service: long-lived sessions that mirror a cluster queue in a
// continuously-advancing simulation and answer what-if queries against it.
//
// Usage:
//
//	lumosweb -addr :8080 -days 10
//
// then browse http://localhost:8080/ for the index, /fig/2 for a figure,
// /fig/table2 for Table II. The twin API lives under /session (see
// DESIGN.md "Digital-twin service" for the endpoint walkthrough).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"crosssched/internal/figures"
	"crosssched/internal/twin"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>crosssched — {{.Title}}</title>
<style>
 body { font-family: sans-serif; margin: 2rem; max-width: 72rem; }
 pre { background: #f6f6f6; padding: 1rem; overflow-x: auto; }
 nav a { margin-right: 0.8rem; }
</style></head>
<body>
<h1>crosssched figure browser</h1>
<nav>{{range .Links}}<a href="/fig/{{.}}">{{.}}</a>{{end}}</nav>
<h2>{{.Title}}</h2>
<pre>{{.Body}}</pre>
</body></html>`))

// server caches rendered figures. Cold renders are single-flight: however
// many requests race on an uncached figure, exactly one render runs and
// the rest wait for it.
type server struct {
	// renderFn produces a figure; split out so tests can count and stall
	// renders. The context is canceled when every waiting request is gone.
	renderFn func(ctx context.Context, name string) (string, error)

	mu       sync.Mutex
	cache    map[string]string
	inflight map[string]*renderCall
}

// renderCall is one in-progress figure render and its waiters.
type renderCall struct {
	done    chan struct{} // closed when out/err are set
	out     string
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFigServer(suite *figures.Suite) *server {
	return &server{
		renderFn: func(_ context.Context, name string) (string, error) {
			// Suite.Render is CPU-bound with no blocking points, so the
			// context only gates whether we start at all.
			return suite.Render(name, "Philly")
		},
		cache:    map[string]string{},
		inflight: map[string]*renderCall{},
	}
}

// render returns the cached figure or joins the single in-flight render
// for it, starting one if needed. ctx is the requesting client: if it ends
// the caller stops waiting, and once the LAST waiter is gone the render
// itself is canceled. Only successful renders are cached — a canceled or
// failed render never poisons the cache.
func (s *server) render(ctx context.Context, name string) (string, error) {
	s.mu.Lock()
	if out, ok := s.cache[name]; ok {
		s.mu.Unlock()
		return out, nil
	}
	call, ok := s.inflight[name]
	if !ok {
		rctx, cancel := context.WithCancel(context.Background())
		call = &renderCall{done: make(chan struct{}), cancel: cancel}
		s.inflight[name] = call
		go func() {
			out, err := s.renderFn(rctx, name)
			cancel()
			s.mu.Lock()
			call.out, call.err = out, err
			if err == nil {
				s.cache[name] = out
			}
			delete(s.inflight, name)
			s.mu.Unlock()
			close(call.done)
		}()
	}
	call.waiters++
	s.mu.Unlock()

	select {
	case <-call.done:
		s.leave(call)
		return call.out, call.err
	case <-ctx.Done():
		s.leave(call)
		return "", ctx.Err()
	}
}

// leave drops one waiter from a render; the last one out cancels a render
// still in progress (nobody is left to read the result).
func (s *server) leave(call *renderCall) {
	s.mu.Lock()
	call.waiters--
	last := call.waiters == 0
	s.mu.Unlock()
	if !last {
		return
	}
	select {
	case <-call.done:
	default:
		call.cancel()
	}
}

func (s *server) handleFig(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/fig/")
	if name == "" {
		http.Redirect(w, r, "/", http.StatusFound)
		return
	}
	out, err := s.render(r.Context(), name)
	if err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nothing to tell it
		}
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.page(w, "Figure "+name, out)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.page(w, "index",
		"Select a figure above.\n\nEvery table and figure of the paper\n"+
			"\"Cross-System Analysis of Job Characterization and Scheduling\n"+
			"in Large-Scale Computing Clusters\" (IPPS 2024), regenerated\n"+
			"from calibrated synthetic workloads.\n\n"+
			"The digital-twin scheduling API lives under /session\n"+
			"(POST /session to start one; see DESIGN.md).")
}

func (s *server) page(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := pageTmpl.Execute(w, struct {
		Title, Body string
		Links       []string
	}{title, body, figures.FigureNames})
	if err != nil {
		log.Printf("lumosweb: render: %v", err)
	}
}

// newMux builds the HTTP routes: the figure browser plus, when mgr is
// non-nil, the digital-twin session API (split out for tests).
func newMux(suite *figures.Suite, mgr *twin.Manager, api apiConfig) *http.ServeMux {
	s := newFigServer(suite)
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/fig/", s.handleFig)
	if mgr != nil {
		registerTwinAPI(mux, mgr, api)
	}
	return mux
}

// newServer wraps the mux in an http.Server with sane limits: slow-client
// reads and idle keep-alives are bounded, while the write timeout stays
// generous because a cold figure render runs real simulations. SSE
// handlers clear the write deadline per-connection.
func newServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// serve runs srv on ln until ctx is canceled, then shuts down gracefully:
// the shutdown hooks run first (closing the twin manager ends SSE streams
// so they can drain), the listener closes immediately (no new
// connections), and in-flight requests get up to drain to finish before
// connections are forced closed. A clean shutdown — including one with
// requests abandoned at the deadline — returns nil; only listener/serve
// failures are errors.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, hooks ...func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	for _, h := range hooks {
		h()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Drain deadline hit: force the stragglers closed and exit anyway.
		srv.Close()
		err = nil
	}
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		days         = flag.Float64("days", 10, "synthetic trace duration in days")
		simDays      = flag.Float64("simdays", 8, "duration for simulator-driven figures")
		seed         = flag.Uint64("seed", 1, "generator seed")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
		sessions     = flag.Int("sessions", 0, "max live twin sessions (0 = default)")
		stateDir     = flag.String("state-dir", "", "directory for twin session journals (empty = in-memory only)")
		fsync        = flag.String("fsync", "interval", "journal fsync policy: always, never, or an interval like 100ms")
		maxWhatIf    = flag.Int("max-whatif", 0, "max concurrent what-if requests; excess shed with 429 (0 = unlimited)")
		maxMutate    = flag.Int("max-mutate", 0, "max concurrent create/submit/advance requests; excess shed with 429 (0 = unlimited)")
		whatIfBudget = flag.Duration("whatif-budget", 0, "wall-clock budget per what-if; over-budget forks answer 429 (0 = unbounded)")
	)
	flag.Parse()
	fsPolicy, fsEvery, err := twin.ParseFsync(*fsync)
	if err != nil {
		log.Fatal("lumosweb: ", err)
	}
	suite := figures.NewSuite(figures.Config{Days: *days, SimDays: *simDays, Seed: *seed})
	mgr := twin.NewManager(twin.Config{
		MaxSessions: *sessions,
		StateDir:    *stateDir,
		Fsync:       fsPolicy,
		FsyncEvery:  fsEvery,
	})
	api := apiConfig{MaxWhatIf: *maxWhatIf, MaxMutate: *maxMutate, WhatIfBudget: *whatIfBudget}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("lumosweb: ", err)
	}
	fmt.Printf("lumosweb: serving on %s\n", ln.Addr())
	if err := serve(ctx, newServer(newMux(suite, mgr, api)), ln, *drain, mgr.Close); err != nil {
		log.Fatal("lumosweb: ", err)
	}
	fmt.Println("lumosweb: shut down cleanly")
}

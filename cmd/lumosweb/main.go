// Command lumosweb serves the paper's figures over HTTP — the stdlib
// equivalent of the authors' Streamlit site. Figures are computed lazily
// from the calibrated workloads and cached.
//
// Usage:
//
//	lumosweb -addr :8080 -days 10
//
// then browse http://localhost:8080/ for the index,
// /fig/2 for a figure, /fig/table2 for Table II.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"crosssched/internal/figures"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>crosssched — {{.Title}}</title>
<style>
 body { font-family: sans-serif; margin: 2rem; max-width: 72rem; }
 pre { background: #f6f6f6; padding: 1rem; overflow-x: auto; }
 nav a { margin-right: 0.8rem; }
</style></head>
<body>
<h1>crosssched figure browser</h1>
<nav>{{range .Links}}<a href="/fig/{{.}}">{{.}}</a>{{end}}</nav>
<h2>{{.Title}}</h2>
<pre>{{.Body}}</pre>
</body></html>`))

// server caches rendered figures.
type server struct {
	suite *figures.Suite

	mu    sync.Mutex
	cache map[string]string
}

func (s *server) render(name string) (string, error) {
	s.mu.Lock()
	if out, ok := s.cache[name]; ok {
		s.mu.Unlock()
		return out, nil
	}
	s.mu.Unlock()
	out, err := s.suite.Render(name, "Philly")
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.cache[name] = out
	s.mu.Unlock()
	return out, nil
}

func (s *server) handleFig(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/fig/")
	if name == "" {
		http.Redirect(w, r, "/", http.StatusFound)
		return
	}
	out, err := s.render(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.page(w, "Figure "+name, out)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.page(w, "index",
		"Select a figure above.\n\nEvery table and figure of the paper\n"+
			"\"Cross-System Analysis of Job Characterization and Scheduling\n"+
			"in Large-Scale Computing Clusters\" (IPPS 2024), regenerated\n"+
			"from calibrated synthetic workloads.")
}

func (s *server) page(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := pageTmpl.Execute(w, struct {
		Title, Body string
		Links       []string
	}{title, body, figures.FigureNames})
	if err != nil {
		log.Printf("lumosweb: render: %v", err)
	}
}

// newMux builds the HTTP routes (split out for tests).
func newMux(suite *figures.Suite) *http.ServeMux {
	s := &server{suite: suite, cache: map[string]string{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/fig/", s.handleFig)
	return mux
}

// newServer wraps the mux in an http.Server with sane limits: slow-client
// reads and idle keep-alives are bounded, while the write timeout stays
// generous because a cold figure render runs real simulations.
func newServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// serve runs srv on ln until ctx is canceled, then shuts down gracefully:
// the listener closes immediately (no new connections) and in-flight
// requests get up to drain to finish before connections are forced closed.
// A clean shutdown — including one with requests abandoned at the deadline
// — returns nil; only listener/serve failures are errors.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Drain deadline hit: force the stragglers closed and exit anyway.
		srv.Close()
		err = nil
	}
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		days    = flag.Float64("days", 10, "synthetic trace duration in days")
		simDays = flag.Float64("simdays", 8, "duration for simulator-driven figures")
		seed    = flag.Uint64("seed", 1, "generator seed")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
	)
	flag.Parse()
	suite := figures.NewSuite(figures.Config{Days: *days, SimDays: *simDays, Seed: *seed})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("lumosweb: ", err)
	}
	fmt.Printf("lumosweb: serving on %s\n", ln.Addr())
	if err := serve(ctx, newServer(newMux(suite)), ln, *drain); err != nil {
		log.Fatal("lumosweb: ", err)
	}
	fmt.Println("lumosweb: shut down cleanly")
}

// Command lumosweb serves the paper's figures over HTTP — the stdlib
// equivalent of the authors' Streamlit site. Figures are computed lazily
// from the calibrated workloads and cached.
//
// Usage:
//
//	lumosweb -addr :8080 -days 10
//
// then browse http://localhost:8080/ for the index,
// /fig/2 for a figure, /fig/table2 for Table II.
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strings"
	"sync"

	"crosssched/internal/figures"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>crosssched — {{.Title}}</title>
<style>
 body { font-family: sans-serif; margin: 2rem; max-width: 72rem; }
 pre { background: #f6f6f6; padding: 1rem; overflow-x: auto; }
 nav a { margin-right: 0.8rem; }
</style></head>
<body>
<h1>crosssched figure browser</h1>
<nav>{{range .Links}}<a href="/fig/{{.}}">{{.}}</a>{{end}}</nav>
<h2>{{.Title}}</h2>
<pre>{{.Body}}</pre>
</body></html>`))

// server caches rendered figures.
type server struct {
	suite *figures.Suite

	mu    sync.Mutex
	cache map[string]string
}

func (s *server) render(name string) (string, error) {
	s.mu.Lock()
	if out, ok := s.cache[name]; ok {
		s.mu.Unlock()
		return out, nil
	}
	s.mu.Unlock()
	out, err := s.suite.Render(name, "Philly")
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.cache[name] = out
	s.mu.Unlock()
	return out, nil
}

func (s *server) handleFig(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/fig/")
	if name == "" {
		http.Redirect(w, r, "/", http.StatusFound)
		return
	}
	out, err := s.render(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.page(w, "Figure "+name, out)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.page(w, "index",
		"Select a figure above.\n\nEvery table and figure of the paper\n"+
			"\"Cross-System Analysis of Job Characterization and Scheduling\n"+
			"in Large-Scale Computing Clusters\" (IPPS 2024), regenerated\n"+
			"from calibrated synthetic workloads.")
}

func (s *server) page(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := pageTmpl.Execute(w, struct {
		Title, Body string
		Links       []string
	}{title, body, figures.FigureNames})
	if err != nil {
		log.Printf("lumosweb: render: %v", err)
	}
}

// newMux builds the HTTP routes (split out for tests).
func newMux(suite *figures.Suite) *http.ServeMux {
	s := &server{suite: suite, cache: map[string]string{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/fig/", s.handleFig)
	return mux
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		days    = flag.Float64("days", 10, "synthetic trace duration in days")
		simDays = flag.Float64("simdays", 8, "duration for simulator-driven figures")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	suite := figures.NewSuite(figures.Config{Days: *days, SimDays: *simDays, Seed: *seed})
	fmt.Printf("lumosweb: serving on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(suite)))
}

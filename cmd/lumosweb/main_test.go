package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crosssched/internal/figures"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	suite := figures.NewSuite(figures.Config{Days: 1, SimDays: 1, Seed: 3})
	srv := httptest.NewServer(newMux(suite, nil, apiConfig{}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "crosssched figure browser") {
		t.Fatalf("index missing header:\n%s", body)
	}
	if !strings.Contains(body, `href="/fig/table2"`) {
		t.Fatal("index missing nav links")
	}
}

func TestFigurePage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/fig/2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "core-hour share") {
		t.Fatalf("figure 2 content missing:\n%s", body)
	}
}

func TestFigureCached(t *testing.T) {
	srv := testServer(t)
	_, first := get(t, srv.URL+"/fig/table1")
	_, second := get(t, srv.URL+"/fig/table1")
	if first != second {
		t.Fatal("cached render differs")
	}
}

func TestUnknownFigure404(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/fig/nope")
	if code != http.StatusNotFound {
		t.Fatalf("status %d want 404", code)
	}
}

func TestUnknownPath404(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/bogus")
	if code != http.StatusNotFound {
		t.Fatalf("status %d want 404", code)
	}
}

// TestGracefulShutdown: canceling the serve context must close the listener
// and return nil once in-flight requests drain.
func TestGracefulShutdown(t *testing.T) {
	suite := figures.NewSuite(figures.Config{Days: 1, SimDays: 1, Seed: 3})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	hookRan := make(chan struct{})
	go func() {
		done <- serve(ctx, newServer(newMux(suite, nil, apiConfig{})), ln, 5*time.Second,
			func() { close(hookRan) })
	}()

	url := "http://" + ln.Addr().String() + "/"
	if code, _ := get(t, url); code != http.StatusOK {
		t.Fatalf("status %d before shutdown", code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	select {
	case <-hookRan:
	default:
		t.Fatal("shutdown hook did not run")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// testRenderServer builds a figure server around a fake renderFn.
func testRenderServer(fn func(ctx context.Context, name string) (string, error)) *server {
	return &server{renderFn: fn, cache: map[string]string{}, inflight: map[string]*renderCall{}}
}

// TestRenderSingleFlight: concurrent requests for the same uncached figure
// must share ONE render. The pre-fix code checked the cache, unlocked, and
// rendered unconditionally, so every racer paid for its own render.
func TestRenderSingleFlight(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	s := testRenderServer(func(ctx context.Context, name string) (string, error) {
		calls.Add(1)
		<-release
		return "rendered:" + name, nil
	})

	const racers = 16
	var wg sync.WaitGroup
	outs := make([]string, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.render(context.Background(), "table2")
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the stampede pile onto the in-flight render
	close(release)
	wg.Wait()

	for i := 0; i < racers; i++ {
		if errs[i] != nil || outs[i] != "rendered:table2" {
			t.Fatalf("racer %d: %q, %v", i, outs[i], errs[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("render ran %d times for one figure, want 1 (stampede)", got)
	}
}

// TestRenderCancelMidRender: a client disconnecting mid-render stops its
// wait; once the last waiter is gone the render itself is canceled, and
// the canceled attempt must NOT poison the cache — the next request
// renders fresh and succeeds.
func TestRenderCancelMidRender(t *testing.T) {
	var calls atomic.Int32
	rendering := make(chan struct{})
	s := testRenderServer(func(ctx context.Context, name string) (string, error) {
		if calls.Add(1) == 1 {
			close(rendering)
			<-ctx.Done() // simulate a long render that honors cancellation
			return "", ctx.Err()
		}
		return "fresh:" + name, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := s.render(ctx, "fig2")
		got <- err
	}()
	<-rendering
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled client got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("render did not return after client cancellation")
	}

	// Wait for the abandoned render goroutine to retire its in-flight slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		_, cached := s.cache["fig2"]
		inflight := len(s.inflight)
		s.mu.Unlock()
		if cached {
			t.Fatal("canceled render poisoned the cache")
		}
		if inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight render never retired after cancellation")
		}
		time.Sleep(time.Millisecond)
	}

	out, err := s.render(context.Background(), "fig2")
	if err != nil || out != "fresh:fig2" {
		t.Fatalf("post-cancel render = %q, %v; want fresh render", out, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("render calls = %d, want 2 (canceled + fresh)", got)
	}
}

// TestHandleFigClientDisconnect: the handler must plumb r.Context() into
// the render so a vanished client cancels it rather than leaving it
// running to completion for nobody.
func TestHandleFigClientDisconnect(t *testing.T) {
	rendering := make(chan struct{})
	canceled := make(chan struct{})
	s := testRenderServer(func(ctx context.Context, name string) (string, error) {
		close(rendering)
		<-ctx.Done()
		close(canceled)
		return "", ctx.Err()
	})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/fig/table1", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handleFig(httptest.NewRecorder(), req)
	}()
	<-rendering
	cancel() // client disconnects
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("render context not canceled on client disconnect")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestServerTimeoutsConfigured pins the satellite requirement: the server
// must carry read/write/idle limits rather than the zero (unbounded) values.
func TestServerTimeoutsConfigured(t *testing.T) {
	srv := newServer(http.NotFoundHandler())
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 || srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("unbounded server timeouts: %+v", srv)
	}
}

package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crosssched/internal/figures"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	suite := figures.NewSuite(figures.Config{Days: 1, SimDays: 1, Seed: 3})
	srv := httptest.NewServer(newMux(suite))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "crosssched figure browser") {
		t.Fatalf("index missing header:\n%s", body)
	}
	if !strings.Contains(body, `href="/fig/table2"`) {
		t.Fatal("index missing nav links")
	}
}

func TestFigurePage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/fig/2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "core-hour share") {
		t.Fatalf("figure 2 content missing:\n%s", body)
	}
}

func TestFigureCached(t *testing.T) {
	srv := testServer(t)
	_, first := get(t, srv.URL+"/fig/table1")
	_, second := get(t, srv.URL+"/fig/table1")
	if first != second {
		t.Fatal("cached render differs")
	}
}

func TestUnknownFigure404(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/fig/nope")
	if code != http.StatusNotFound {
		t.Fatalf("status %d want 404", code)
	}
}

func TestUnknownPath404(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/bogus")
	if code != http.StatusNotFound {
		t.Fatalf("status %d want 404", code)
	}
}

// TestGracefulShutdown: canceling the serve context must close the listener
// and return nil once in-flight requests drain.
func TestGracefulShutdown(t *testing.T) {
	suite := figures.NewSuite(figures.Config{Days: 1, SimDays: 1, Seed: 3})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, newServer(newMux(suite)), ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String() + "/"
	if code, _ := get(t, url); code != http.StatusOK {
		t.Fatalf("status %d before shutdown", code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServerTimeoutsConfigured pins the satellite requirement: the server
// must carry read/write/idle limits rather than the zero (unbounded) values.
func TestServerTimeoutsConfigured(t *testing.T) {
	srv := newServer(http.NotFoundHandler())
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 || srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("unbounded server timeouts: %+v", srv)
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"crosssched/internal/obs"
	"crosssched/internal/twin"
)

// apiConfig bounds the twin API's load: concurrency gates per endpoint
// class and a wall-clock budget per what-if. The zero value disables
// every limit (today's behavior).
type apiConfig struct {
	// MaxWhatIf and MaxMutate cap concurrent in-flight requests in the
	// what-if class and the mutation class (create/submit/advance). An
	// over-limit request is shed immediately with 429 + Retry-After
	// instead of queuing; 0 means unlimited.
	MaxWhatIf int
	MaxMutate int
	// WhatIfBudget bounds one what-if fork's wall time; a fork that blows
	// it is canceled and answered 429 + Retry-After (0 = unbounded).
	WhatIfBudget time.Duration
	// RetryAfter is the back-off hint carried on every 429 (default 1s).
	RetryAfter time.Duration
}

// registerTwinAPI mounts the digital-twin session API:
//
//	POST   /session              create a session
//	GET    /session/{id}         status snapshot
//	DELETE /session/{id}         tear the session down
//	POST   /session/{id}/submit  append jobs to the submission log
//	POST   /session/{id}/advance move the simulation clock forward
//	POST   /session/{id}/whatif  fork the twin under candidate configs
//	GET    /session/{id}/events  SSE stream of scheduling decision events
//	GET    /session/{id}/log     published decision-event prefix as JSONL
//	GET    /twin/metrics         durability + shedding counters
func registerTwinAPI(mux *http.ServeMux, mgr *twin.Manager, cfg apiConfig) *twinAPI {
	a := newTwinAPI(mgr, cfg)
	mux.HandleFunc("POST /session", a.shed(a.mutateSem, &a.shedMutate, a.create))
	mux.HandleFunc("GET /session/{id}", a.status)
	mux.HandleFunc("DELETE /session/{id}", a.delete)
	mux.HandleFunc("POST /session/{id}/submit", a.shed(a.mutateSem, &a.shedMutate, a.submit))
	mux.HandleFunc("POST /session/{id}/advance", a.shed(a.mutateSem, &a.shedMutate, a.advance))
	mux.HandleFunc("POST /session/{id}/whatif", a.shed(a.whatIfSem, &a.shedWhatIf, a.whatIf))
	mux.HandleFunc("GET /session/{id}/events", a.events)
	mux.HandleFunc("GET /session/{id}/log", a.eventLog)
	mux.HandleFunc("GET /twin/metrics", a.metrics)
	return a
}

type twinAPI struct {
	mgr *twin.Manager
	cfg apiConfig

	// Concurrency gates (nil = ungated): a non-blocking semaphore try —
	// full means shed now, never queue.
	whatIfSem chan struct{}
	mutateSem chan struct{}
	// Requests shed at each gate, reported by /twin/metrics.
	shedWhatIf atomic.Int64
	shedMutate atomic.Int64
}

func newTwinAPI(mgr *twin.Manager, cfg apiConfig) *twinAPI {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	a := &twinAPI{mgr: mgr, cfg: cfg}
	if cfg.MaxWhatIf > 0 {
		a.whatIfSem = make(chan struct{}, cfg.MaxWhatIf)
	}
	if cfg.MaxMutate > 0 {
		a.mutateSem = make(chan struct{}, cfg.MaxMutate)
	}
	return a
}

// shed wraps h in a concurrency gate: acquire a slot or answer 429 +
// Retry-After immediately. Load is refused at the door, not queued where
// it would add latency for everyone.
func (a *twinAPI) shed(sem chan struct{}, count *atomic.Int64, h http.HandlerFunc) http.HandlerFunc {
	if sem == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h(w, r)
		default:
			count.Add(1)
			a.retryLater(w, "overloaded: concurrency limit reached")
		}
	}
}

// retryLater answers 429 with the configured Retry-After hint.
func (a *twinAPI) retryLater(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterValue(a.cfg.RetryAfter))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// retryAfterValue renders a Retry-After header value: integral seconds,
// minimum 1 (the header has no sub-second form).
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// createRequest is the POST /session body. Every field is optional; the
// zero value is a single-pool cluster only if cores is given, so either
// profile or cores is required.
type createRequest struct {
	Profile    string  `json:"profile,omitempty"`
	Cores      int     `json:"cores,omitempty"`
	Partitions int     `json:"partitions,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	Backfill   string  `json:"backfill,omitempty"`
	Relax      float64 `json:"relax,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	TickRate   float64 `json:"tick_rate,omitempty"`
	// ColdWhatIf disables warm-started what-if forks (full replays
	// instead); reports are identical either way, only latency differs.
	ColdWhatIf bool `json:"cold_whatif,omitempty"`
}

func (a *twinAPI) create(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decode(w, r, &req) {
		return
	}
	cfg := twin.SessionConfig{
		Profile:     req.Profile,
		Cores:       req.Cores,
		Partitions:  req.Partitions,
		RelaxFactor: req.Relax,
		Seed:        req.Seed,
		TickRate:    req.TickRate,
		ColdWhatIf:  req.ColdWhatIf,
	}
	var err error
	if req.Policy != "" {
		if cfg.Policy, err = twin.ParsePolicy(req.Policy); err != nil {
			a.httpError(w, err)
			return
		}
	}
	if req.Backfill != "" {
		if cfg.Backfill, err = twin.ParseBackfill(req.Backfill); err != nil {
			a.httpError(w, err)
			return
		}
	}
	s, err := a.mgr.Create(cfg)
	if err != nil {
		a.httpError(w, err)
		return
	}
	snap, err := s.Status()
	if err != nil {
		a.httpError(w, err)
		return
	}
	reply(w, http.StatusCreated, snap)
}

// session resolves {id}, writing the error reply itself on failure.
func (a *twinAPI) session(w http.ResponseWriter, r *http.Request) *twin.Session {
	s, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		a.httpError(w, err)
		return nil
	}
	return s
}

func (a *twinAPI) status(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	snap, err := s.Status()
	if err != nil {
		a.httpError(w, err)
		return
	}
	reply(w, http.StatusOK, snap)
}

func (a *twinAPI) delete(w http.ResponseWriter, r *http.Request) {
	if err := a.mgr.Delete(r.PathValue("id")); err != nil {
		a.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *twinAPI) submit(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req struct {
		Jobs []twin.JobSpec `json:"jobs"`
	}
	if !decode(w, r, &req) {
		return
	}
	ids, err := s.Submit(req.Jobs)
	if err != nil {
		a.httpError(w, err)
		return
	}
	reply(w, http.StatusOK, struct {
		IDs []int   `json:"ids"`
		Now float64 `json:"now"`
	}{ids, s.Now()})
}

func (a *twinAPI) advance(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req struct {
		By *float64 `json:"by,omitempty"`
		To *float64 `json:"to,omitempty"`
	}
	if !decode(w, r, &req) {
		return
	}
	var err error
	switch {
	case req.By != nil && req.To != nil:
		err = fmt.Errorf("twin: give either by or to, not both")
	case req.By != nil:
		err = s.AdvanceBy(*req.By)
	case req.To != nil:
		err = s.AdvanceTo(*req.To)
	default:
		err = fmt.Errorf("twin: advance needs by or to")
	}
	if err != nil {
		a.httpError(w, err)
		return
	}
	snap, err := s.Status()
	if err != nil {
		a.httpError(w, err)
		return
	}
	reply(w, http.StatusOK, snap)
}

func (a *twinAPI) whatIf(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req twin.WhatIfRequest
	if !decode(w, r, &req) {
		return
	}
	ctx := r.Context()
	if a.cfg.WhatIfBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.WhatIfBudget)
		defer cancel()
	}
	rep, err := s.WhatIf(ctx, req)
	if err != nil {
		// Our deadline (not the client hanging up) means the fork blew its
		// budget: shed it like any other overload.
		if errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil {
			a.shedWhatIf.Add(1)
			a.retryLater(w, "what-if canceled: deadline budget exceeded")
			return
		}
		a.httpError(w, err)
		return
	}
	reply(w, http.StatusOK, rep)
}

// eventLog dumps the session's published decision-event prefix as JSONL —
// exactly the events SSE subscribers have been sent, in the byte-stable
// obs wire encoding. The crash test diffs this across a kill/restart.
func (a *twinAPI) eventLog(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	evs, err := s.EmittedPrefix()
	if err != nil {
		a.httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	var buf []byte
	for _, e := range evs {
		buf = obs.AppendEventJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
}

// metrics reports the manager's durability counters plus the API's
// shedding counters.
func (a *twinAPI) metrics(w http.ResponseWriter, r *http.Request) {
	reply(w, http.StatusOK, struct {
		obs.Metrics
		ShedWhatIf int64 `json:"shed_whatif"`
		ShedMutate int64 `json:"shed_mutate"`
	}{a.mgr.Metrics(), a.shedWhatIf.Load(), a.shedMutate.Load()})
}

// events streams the session's scheduling decisions as server-sent events:
// `event: obs` frames carry one decision as JSON; when a slow client
// overruns its bounded buffer an `event: dropped` frame reports how many
// events the gap swallowed; `event: notice` frames carry out-of-band
// state-change announcements (e.g. the session degrading to ephemeral
// mode). When the session goes away a terminal `event: gone` frame names
// why — closed, evicted, or parked (parked sessions come back on the next
// API call; resubscribe to continue) — before the stream ends. A client
// disconnect ends the stream with no terminal frame.
func (a *twinAPI) events(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	sub, err := s.Subscribe()
	if err != nil {
		a.httpError(w, err)
		return
	}
	defer s.Unsubscribe(sub)

	// The server's WriteTimeout would kill a long-lived stream; replace it
	// with a per-write deadline so only a genuinely stuck client is cut.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	var buf []byte
	for {
		f, dropped, err := sub.NextFrame(r.Context())
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone: nobody left to tell
			}
			// Session closed under us: say why before EOF.
			reason := sub.Reason()
			if reason == "" {
				reason = "closed"
			}
			_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := fmt.Fprintf(w, "event: gone\ndata: %s\n\n", reason); err == nil {
				_ = rc.Flush()
			}
			return
		}
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if dropped > 0 {
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", dropped); err != nil {
				return
			}
		}
		if f.Notice != "" {
			if _, err := fmt.Fprintf(w, "event: notice\ndata: %s\n\n", f.Notice); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
			continue
		}
		buf = obs.AppendEventJSON(buf[:0], f.Event)
		if _, err := fmt.Fprintf(w, "event: obs\ndata: %s\n\n", buf); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
	}
}

// decode reads a bounded JSON body, replying 400 on garbage.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// httpError maps twin sentinels to status codes; anything else is a
// validation failure. Every 429 carries Retry-After so clients can back
// off sanely.
func (a *twinAPI) httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, twin.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, twin.ErrBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, twin.ErrClosed):
		code = http.StatusGone
	case errors.Is(err, twin.ErrEmpty):
		code = http.StatusConflict
	}
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterValue(a.cfg.RetryAfter))
	}
	http.Error(w, err.Error(), code)
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"crosssched/internal/obs"
	"crosssched/internal/twin"
)

// registerTwinAPI mounts the digital-twin session API:
//
//	POST   /session              create a session
//	GET    /session/{id}         status snapshot
//	DELETE /session/{id}         tear the session down
//	POST   /session/{id}/submit  append jobs to the submission log
//	POST   /session/{id}/advance move the simulation clock forward
//	POST   /session/{id}/whatif  fork the twin under candidate configs
//	GET    /session/{id}/events  SSE stream of scheduling decision events
func registerTwinAPI(mux *http.ServeMux, mgr *twin.Manager) {
	a := &twinAPI{mgr: mgr}
	mux.HandleFunc("POST /session", a.create)
	mux.HandleFunc("GET /session/{id}", a.status)
	mux.HandleFunc("DELETE /session/{id}", a.delete)
	mux.HandleFunc("POST /session/{id}/submit", a.submit)
	mux.HandleFunc("POST /session/{id}/advance", a.advance)
	mux.HandleFunc("POST /session/{id}/whatif", a.whatIf)
	mux.HandleFunc("GET /session/{id}/events", a.events)
}

type twinAPI struct {
	mgr *twin.Manager
}

// createRequest is the POST /session body. Every field is optional; the
// zero value is a single-pool cluster only if cores is given, so either
// profile or cores is required.
type createRequest struct {
	Profile    string  `json:"profile,omitempty"`
	Cores      int     `json:"cores,omitempty"`
	Partitions int     `json:"partitions,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	Backfill   string  `json:"backfill,omitempty"`
	Relax      float64 `json:"relax,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	TickRate   float64 `json:"tick_rate,omitempty"`
	// ColdWhatIf disables warm-started what-if forks (full replays
	// instead); reports are identical either way, only latency differs.
	ColdWhatIf bool `json:"cold_whatif,omitempty"`
}

func (a *twinAPI) create(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decode(w, r, &req) {
		return
	}
	cfg := twin.SessionConfig{
		Profile:     req.Profile,
		Cores:       req.Cores,
		Partitions:  req.Partitions,
		RelaxFactor: req.Relax,
		Seed:        req.Seed,
		TickRate:    req.TickRate,
		ColdWhatIf:  req.ColdWhatIf,
	}
	var err error
	if req.Policy != "" {
		if cfg.Policy, err = twin.ParsePolicy(req.Policy); err != nil {
			httpError(w, err)
			return
		}
	}
	if req.Backfill != "" {
		if cfg.Backfill, err = twin.ParseBackfill(req.Backfill); err != nil {
			httpError(w, err)
			return
		}
	}
	s, err := a.mgr.Create(cfg)
	if err != nil {
		httpError(w, err)
		return
	}
	snap, err := s.Status()
	if err != nil {
		httpError(w, err)
		return
	}
	reply(w, http.StatusCreated, snap)
}

// session resolves {id}, writing the error reply itself on failure.
func (a *twinAPI) session(w http.ResponseWriter, r *http.Request) *twin.Session {
	s, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return nil
	}
	return s
}

func (a *twinAPI) status(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	snap, err := s.Status()
	if err != nil {
		httpError(w, err)
		return
	}
	reply(w, http.StatusOK, snap)
}

func (a *twinAPI) delete(w http.ResponseWriter, r *http.Request) {
	if err := a.mgr.Delete(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *twinAPI) submit(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req struct {
		Jobs []twin.JobSpec `json:"jobs"`
	}
	if !decode(w, r, &req) {
		return
	}
	ids, err := s.Submit(req.Jobs)
	if err != nil {
		httpError(w, err)
		return
	}
	reply(w, http.StatusOK, struct {
		IDs []int   `json:"ids"`
		Now float64 `json:"now"`
	}{ids, s.Now()})
}

func (a *twinAPI) advance(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req struct {
		By *float64 `json:"by,omitempty"`
		To *float64 `json:"to,omitempty"`
	}
	if !decode(w, r, &req) {
		return
	}
	var err error
	switch {
	case req.By != nil && req.To != nil:
		err = fmt.Errorf("twin: give either by or to, not both")
	case req.By != nil:
		err = s.AdvanceBy(*req.By)
	case req.To != nil:
		err = s.AdvanceTo(*req.To)
	default:
		err = fmt.Errorf("twin: advance needs by or to")
	}
	if err != nil {
		httpError(w, err)
		return
	}
	snap, err := s.Status()
	if err != nil {
		httpError(w, err)
		return
	}
	reply(w, http.StatusOK, snap)
}

func (a *twinAPI) whatIf(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	var req twin.WhatIfRequest
	if !decode(w, r, &req) {
		return
	}
	rep, err := s.WhatIf(r.Context(), req)
	if err != nil {
		httpError(w, err)
		return
	}
	reply(w, http.StatusOK, rep)
}

// events streams the session's scheduling decisions as server-sent events:
// `event: obs` frames carry one decision as JSON, and when a slow client
// overruns its bounded buffer an `event: dropped` frame reports how many
// events the gap swallowed. The stream ends when the client disconnects or
// the session closes.
func (a *twinAPI) events(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	sub, err := s.Subscribe()
	if err != nil {
		httpError(w, err)
		return
	}
	defer s.Unsubscribe(sub)

	// The server's WriteTimeout would kill a long-lived stream; replace it
	// with a per-write deadline so only a genuinely stuck client is cut.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	var buf []byte
	for {
		e, dropped, err := sub.Next(r.Context())
		if err != nil {
			return // client gone or session closed: end the stream
		}
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if dropped > 0 {
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", dropped); err != nil {
				return
			}
		}
		buf = obs.AppendEventJSON(buf[:0], e)
		if _, err := fmt.Fprintf(w, "event: obs\ndata: %s\n\n", buf); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
	}
}

// decode reads a bounded JSON body, replying 400 on garbage.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// httpError maps twin sentinels to status codes; anything else is a
// validation failure.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, twin.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, twin.ErrBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, twin.ErrClosed):
		code = http.StatusGone
	case errors.Is(err, twin.ErrEmpty):
		code = http.StatusConflict
	}
	http.Error(w, err.Error(), code)
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

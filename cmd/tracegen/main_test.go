package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"crosssched/internal/trace"
)

func TestRunGeneratesSWF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.swf")
	if err := run("Helios", 0.5, 1, "swf", out, "", 0, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 || tr.System.Name != "Helios" {
		t.Fatalf("bad generated trace: %d jobs, system %q", tr.Len(), tr.System.Name)
	}
}

func TestRunGeneratesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.csv")
	if err := run("Theta", 0.5, 1, "csv", out, "", 0, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f, trace.System{Name: "Theta"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty CSV trace")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("Nope", 1, 1, "swf", "", "", 0, false); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := run("Theta", 1, 1, "xml", filepath.Join(t.TempDir(), "x"), "", 0, false); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run("Theta", 1, 1, "swf", "", "", -3, false); err == nil {
		t.Fatal("negative partition count accepted")
	}
	if err := run("Theta", 1, 1, "swf", "", "", 1<<30, false); err == nil {
		t.Fatal("partition count beyond the core count accepted")
	}
	if err := run("", 1, 1, "swf", "", "/does/not/exist.swf", 0, false); err == nil {
		t.Fatal("missing fit input accepted")
	}
}

func TestRunFitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.swf")
	if err := run("Philly", 2, 1, "swf", src, "", 0, false); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "fit.swf")
	if err := run("", 0, 2, "swf", dst, src, 0, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 1000 {
		t.Fatalf("fitted regeneration too small: %d jobs", tr.Len())
	}
}

// TestRunStreamIdenticalBytes: -stream must produce byte-identical output
// to the materialized path, for both formats.
func TestRunStreamIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"swf", "csv"} {
		mat := filepath.Join(dir, "mat."+format)
		str := filepath.Join(dir, "str."+format)
		if err := run("Theta", 0.5, 9, format, mat, "", 0, false); err != nil {
			t.Fatal(err)
		}
		if err := run("Theta", 0.5, 9, format, str, "", 0, true); err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(mat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(str)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || !bytes.Equal(a, b) {
			t.Fatalf("%s: -stream output differs from materialized (%d vs %d bytes)", format, len(b), len(a))
		}
	}
}

// TestRunPartitionOverride: -partitions reshapes the generated system and
// assigns jobs across the requested virtual clusters.
func TestRunPartitionOverride(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.swf")
	if err := run("Theta", 0.5, 1, "swf", out, "", 4, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.System.VirtualClusters != 4 {
		t.Fatalf("got %d virtual clusters, want 4", tr.System.VirtualClusters)
	}
	for _, j := range tr.Jobs {
		if j.VC < 0 || j.VC >= 4 {
			t.Fatalf("job %d assigned to VC %d, want [0, 4)", j.ID, j.VC)
		}
	}
}

// Command tracegen generates a calibrated synthetic job trace for one of
// the paper's five systems — or a synthetic workload fitted to your own
// trace — and writes it as SWF or CSV.
//
// Usage:
//
//	tracegen -system BlueWaters -days 10 -seed 1 -format swf -o bw.swf
//	tracegen -fit mytrace.swf -o synthetic.swf   # model-and-regenerate
package main

import (
	"flag"
	"fmt"
	"os"

	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func main() {
	var (
		system = flag.String("system", "BlueWaters", "system profile: Mira, Theta, BlueWaters, Philly, Helios")
		days   = flag.Float64("days", 10, "trace duration in days")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "swf", "output format: swf or csv")
		out    = flag.String("o", "", "output file (default stdout)")
		fit    = flag.String("fit", "", "fit a profile to this SWF trace and generate from it")
		parts  = flag.Int("partitions", 0, "override the profile's virtual-cluster/partition count (0 = profile default)")
	)
	flag.Parse()
	if err := run(*system, *days, *seed, *format, *out, *fit, *parts); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(system string, days float64, seed uint64, format, out, fit string, parts int) error {
	var p *synth.Profile
	var err error
	if fit != "" {
		f, err := os.Open(fit)
		if err != nil {
			return err
		}
		src, err := trace.ReadSWF(f)
		f.Close()
		if err != nil {
			return err
		}
		p, err = synth.FromTrace(src)
		if err != nil {
			return err
		}
		system = "fit:" + src.System.Name
	} else {
		p, err = synth.ByName(system, days)
		if err != nil {
			return err
		}
	}
	if parts != 0 {
		if parts < 1 || parts > p.Sys.TotalCores {
			return fmt.Errorf("-partitions %d out of range: the %s system has %d cores, so the partition count must be in [1, %d]",
				parts, p.Sys.Name, p.Sys.TotalCores, p.Sys.TotalCores)
		}
		p.Sys.VirtualClusters = parts
	}
	tr, err := p.Generate(seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "swf":
		if err := trace.WriteSWF(w, tr); err != nil {
			return err
		}
	case "csv":
		if err := trace.WriteCSV(w, tr); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want swf or csv)", format)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs for %s (%.1f days, seed %d)\n",
		tr.Len(), system, p.Days, seed)
	return nil
}

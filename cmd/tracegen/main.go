// Command tracegen generates a calibrated synthetic job trace for one of
// the paper's five systems — or a synthetic workload fitted to your own
// trace — and writes it as SWF or CSV.
//
// Usage:
//
//	tracegen -system BlueWaters -days 10 -seed 1 -format swf -o bw.swf
//	tracegen -fit mytrace.swf -o synthetic.swf   # model-and-regenerate
//	tracegen -system Mira -days 4000 -stream -o huge.swf   # O(window) memory
//
// With -stream the generator pipes jobs straight into the writer instead
// of materializing the trace: memory stays bounded by the generator's
// shadow-scheduler backlog, so multi-million-job traces write in a few
// hundred megabytes of heap regardless of length. The bytes produced are
// identical to the materialized path.
package main

import (
	"flag"
	"fmt"
	"os"

	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func main() {
	var (
		system = flag.String("system", "BlueWaters", "system profile: Mira, Theta, BlueWaters, Philly, Helios")
		days   = flag.Float64("days", 10, "trace duration in days")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "swf", "output format: swf or csv")
		out    = flag.String("o", "", "output file (default stdout)")
		fit    = flag.String("fit", "", "fit a profile to this SWF trace and generate from it")
		parts  = flag.Int("partitions", 0, "override the profile's virtual-cluster/partition count (0 = profile default)")
		stream = flag.Bool("stream", false, "stream jobs from the generator to the writer in O(window) memory (identical output)")
	)
	flag.Parse()
	if err := run(*system, *days, *seed, *format, *out, *fit, *parts, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(system string, days float64, seed uint64, format, out, fit string, parts int, stream bool) error {
	var p *synth.Profile
	var err error
	if fit != "" {
		f, err := os.Open(fit)
		if err != nil {
			return err
		}
		src, err := trace.ReadSWF(f)
		f.Close()
		if err != nil {
			return err
		}
		p, err = synth.FromTrace(src)
		if err != nil {
			return err
		}
		system = "fit:" + src.System.Name
	} else {
		p, err = synth.ByName(system, days)
		if err != nil {
			return err
		}
	}
	if parts != 0 {
		if parts < 1 || parts > p.Sys.TotalCores {
			return fmt.Errorf("-partitions %d out of range: the %s system has %d cores, so the partition count must be in [1, %d]",
				parts, p.Sys.Name, p.Sys.TotalCores, p.Sys.TotalCores)
		}
		p.Sys.VirtualClusters = parts
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format != "swf" && format != "csv" {
		return fmt.Errorf("unknown format %q (want swf or csv)", format)
	}
	var n int
	if stream {
		src, err := p.Stream(seed)
		if err != nil {
			return err
		}
		if format == "swf" {
			n, err = trace.WriteSWFStream(w, src)
		} else {
			n, err = trace.WriteCSVStream(w, src)
		}
		if err != nil {
			return err
		}
	} else {
		tr, err := p.Generate(seed)
		if err != nil {
			return err
		}
		if format == "swf" {
			err = trace.WriteSWF(w, tr)
		} else {
			err = trace.WriteCSV(w, tr)
		}
		if err != nil {
			return err
		}
		n = tr.Len()
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs for %s (%.1f days, seed %d)\n",
		n, system, p.Days, seed)
	return nil
}

// Policy comparison: sweeps every priority policy and backfilling strategy
// over a Theta-like workload (the ablation behind the simulator design
// choices), then shows the relaxation-factor sensitivity of relaxed vs
// adaptive backfilling and the effect of walltime-estimate quality on EASY
// backfilling.
//
//	go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
	"crosssched/internal/experiments"
	"crosssched/internal/sim"
)

func main() {
	tr, err := core.GenerateSystem("Theta", 8, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ablations on %d Theta-like jobs\n\n", tr.Len())

	cells, err := experiments.PolicyMatrix(tr,
		[]sim.Policy{sim.FCFS, sim.SJF, sim.SAF, sim.WFP3, sim.F1, sim.Fair},
		[]sim.BackfillKind{sim.NoBackfill, sim.EASY, sim.Conservative})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderPolicyMatrix("Theta", cells))

	pts, err := experiments.RelaxFactorSweep(tr, []float64{0.05, 0.1, 0.2, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderSweep("Theta", pts))

	est, err := experiments.PredictionBackfill(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(est.Render())
}

// Trace I/O workflow: generate a workload, write it as SWF, read it back,
// window it the way the paper aligns its datasets (Section II-B), fit a
// generator profile to the window, and regenerate a matched synthetic
// trace — the full "bring your own trace" loop around the library.
//
//	go run ./examples/trace_io
package main

import (
	"bytes"
	"fmt"
	"log"

	"crosssched/internal/core"
	"crosssched/internal/stats"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func main() {
	// 1. Generate a six-day Helios-like workload.
	orig, err := core.GenerateSystem("Helios", 6, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated  %6d jobs (%s)\n", orig.Len(), orig.System.Name)

	// 2. Round-trip through SWF (what you would do with a real archive).
	var buf bytes.Buffer
	if err := trace.WriteSWF(&buf, orig); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %6d bytes of SWF\n", buf.Len())
	loaded, err := trace.ReadSWF(&buf)
	if err != nil {
		log.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		log.Fatalf("round trip lost jobs: %d vs %d", loaded.Len(), orig.Len())
	}
	fmt.Printf("reloaded   %6d jobs, system metadata intact (%s, %d GPUs)\n",
		loaded.Len(), loaded.System.Name, loaded.System.TotalCores)

	// 3. Align to a window, as the paper does with its multi-year traces.
	window := loaded.Window(86400, 5*86400) // days 2-5
	fmt.Printf("windowed   %6d jobs (days 2-5)\n", window.Len())

	// 4. Fit a generator profile to the window and regenerate.
	profile, err := synth.FromTrace(window)
	if err != nil {
		log.Fatal(err)
	}
	regen, err := profile.Generate(99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refit+regen %5d jobs from the fitted profile\n\n", regen.Len())

	fmt.Printf("%-22s %12s %12s\n", "statistic", "window", "regenerated")
	stat := func(name string, f func(*trace.Trace) float64) {
		fmt.Printf("%-22s %12.1f %12.1f\n", name, f(window), f(regen))
	}
	stat("median runtime (s)", func(t *trace.Trace) float64 { return stats.Median(t.Runtimes()) })
	stat("median interval (s)", func(t *trace.Trace) float64 { return stats.Median(t.ArrivalIntervals()) })
	stat("median GPUs", func(t *trace.Trace) float64 { return stats.Median(t.Procs()) })
	stat("pass rate (%)", func(t *trace.Trace) float64 {
		n := 0
		for _, j := range t.Jobs {
			if j.Status == trace.Passed {
				n++
			}
		}
		return 100 * float64(n) / float64(t.Len())
	})
}

// Cross-system comparison: the paper's core contribution. Generates all
// five calibrated workloads (Mira, Theta, Blue Waters, Philly, Helios),
// characterizes each, and evaluates the paper's eight takeaways against
// the measured data.
//
//	go run ./examples/cross_system
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
)

func main() {
	fmt.Println("generating five calibrated system workloads (6 days each)...")
	cmp, err := core.CompareBuiltin(6, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %8s %10s %10s %8s %7s %8s\n",
		"system", "jobs", "medRun(s)", "medGap(s)", "util", "pass%", "medWait")
	for _, r := range cmp.Reports {
		fmt.Printf("%-12s %8d %10.0f %10.1f %8.3f %7.1f %8.0f\n",
			r.System.Name, r.Jobs,
			r.Geometry.RuntimeCDF.Inverse(0.5),
			r.Geometry.IntervalCDF.Inverse(0.5),
			r.Scheduling.Utilization,
			100*r.Failures.PassRate(),
			r.Scheduling.WaitCDF.Inverse(0.5))
	}

	fmt.Println("\nThe paper's eight takeaways, evaluated on this data:")
	for _, tw := range cmp.Takeaways {
		mark := "HOLDS "
		if !tw.Holds {
			mark = "FAILS "
		}
		fmt.Printf("  [%s] T%d: %s\n          %s\n", mark, tw.ID, tw.Title, tw.Evidence)
	}
	fmt.Println("\n(takeaways are statistical: individual short-window samples can")
	fmt.Println("flip borderline comparisons — rerun with -seed style changes via core.CompareBuiltin)")
}

// Hybrid-future stress test: the paper's motivating question — what do
// emerging DL workloads do to a traditional HPC machine's scheduling? This
// example injects an increasing share of Philly-style DL jobs into a
// Theta-like workload on the same machine and re-schedules with FCFS+EASY,
// showing how the incumbent HPC jobs' waits degrade while the small DL
// jobs backfill freely (Takeaways 1, 3, and 6 in action).
//
//	go run ./examples/hybrid_future
package main

import (
	"fmt"
	"log"

	"crosssched/internal/experiments"
)

func main() {
	fmt.Println("sweeping DL job share on a Theta-like machine (this re-schedules")
	fmt.Println("the combined workload once per share)...")
	fmt.Println()
	pts, err := experiments.HybridSweep(8, 1, []float64{0, 0.25, 0.5, 0.75, 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderHybrid(pts))

	fmt.Println()
	base, worst := pts[0], pts[len(pts)-1]
	fmt.Printf("HPC p90 wait grew %.1fx (%.0fs -> %.0fs) as the DL share reached %.0f%%,\n",
		worst.HPCP90Wait/base.HPCP90Wait, base.HPCP90Wait, worst.HPCP90Wait,
		100*worst.DLShare)
	fmt.Printf("while the injected DL jobs' median wait stayed at %.0fs — small jobs\n",
		worst.DLMedianWait)
	fmt.Println("backfill around the incumbents, but their aggregate demand starves them.")
}

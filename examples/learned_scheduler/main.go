// Learned scheduler: trains a linear priority function in the simulator
// with evolution strategies — the RLScheduler/SchedGym lineage the paper's
// simulator comes from ("help design more efficient job schedulers for the
// future HPC systems"). The learned policy is compared against the
// hand-crafted baselines on a held-out workload.
//
//	go run ./examples/learned_scheduler
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
	"crosssched/internal/rl"
	"crosssched/internal/sim"
)

func main() {
	train, err := core.GenerateSystem("Theta", 4, 31)
	if err != nil {
		log.Fatal(err)
	}
	test, err := core.GenerateSystem("Theta", 4, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d jobs, evaluating on %d held-out jobs\n\n",
		train.Len(), test.Len())

	policy, history, err := rl.Train(train, rl.TrainConfig{
		Iterations: 25, Population: 8, Seed: 1, Backfill: sim.EASY,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ES training: bsld %.2f -> %.2f over %d iterations\n",
		history[0], history[len(history)-1], len(history)-1)
	fmt.Printf("learned weights [logRT logN logWait logArea bias]: %.2f\n\n", policy.W)

	fmt.Printf("%-10s  %10s  %10s\n", "policy", "avg bsld", "avg wait")
	show := func(name string, opt sim.Options) {
		res, err := sim.Run(test, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10.2f  %10.1f\n", name, res.AvgBsld, res.AvgWait)
	}
	show("FCFS", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	show("SJF", sim.Options{Policy: sim.SJF, Backfill: sim.EASY})
	show("SAF", sim.Options{Policy: sim.SAF, Backfill: sim.EASY})
	show("F1", sim.Options{Policy: sim.F1, Backfill: sim.EASY})
	show("learned", policy.Options(sim.EASY))
}

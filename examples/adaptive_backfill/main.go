// Adaptive relaxed backfilling (the paper's use case 2, Table II):
// re-schedules an HPC workload under FCFS with (a) Ward-style relaxed
// backfilling at a fixed 10% factor and (b) the paper's adaptive variant
// that scales the factor with queue pressure, then compares waiting time,
// bounded slowdown, utilization, and reservation violations.
//
//	go run ./examples/adaptive_backfill
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
	"crosssched/internal/figures"
	"crosssched/internal/sim"
)

func main() {
	tr, err := core.GenerateSystem("Theta", 32, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-scheduling %d Theta-like jobs (%.0f days)...\n\n",
		tr.Len(), tr.Duration()/86400)

	// First show what plain EASY does as a reference point.
	easy, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EASY reference: wait %.0fs, bsld %.2f, util %.4f, %d backfills\n\n",
		easy.AvgWait, easy.AvgBsld, easy.Utilization, easy.Backfilled)

	row, err := core.RunAdaptiveBackfill(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(figures.RenderTableII([]figures.TableIIRow{*row}))

	fmt.Printf("\nadaptive relaxing cut reservation violations by %.0f%%\n",
		100*row.ViolImprovement())
	delayImprovement := 0.0
	if row.RelaxedViolDelay > 0 {
		delayImprovement = 100 * (row.RelaxedViolDelay - row.AdaptiveViolDelay) / row.RelaxedViolDelay
	}
	fmt.Printf("total promised-start delay: %.0fs -> %.0fs (%.0f%% less slip)\n",
		row.RelaxedViolDelay, row.AdaptiveViolDelay, delayImprovement)
}

// Runtime prediction with elapsed time (the paper's use case 1, Figure
// 12): trains Last2, Tobit, XGBoost, linear regression, and an MLP on a
// DL workload, then compares prediction quality with and without the
// elapsed-time feature at thresholds of 1/8, 1/4, and 1/2 of the mean
// runtime.
//
//	go run ./examples/runtime_prediction
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
	"crosssched/internal/experiments"
	"crosssched/internal/figures"
	"crosssched/internal/predict"
)

func main() {
	tr, err := core.GenerateSystem("Philly", 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicting runtimes for %d Philly-like jobs...\n\n", tr.Len())

	res, err := core.RunRuntimePrediction(tr, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(figures.RenderFig12(res))

	fmt.Println("\nsummary (averaged across thresholds):")
	for _, mr := range res.Models {
		var bu, wu, ba, wa float64
		for _, v := range mr.Variants {
			bu += v.Baseline.UnderestimateRate
			wu += v.WithElapsed.UnderestimateRate
			ba += v.Baseline.AvgAccuracy
			wa += v.WithElapsed.AvgAccuracy
		}
		n := float64(len(mr.Variants))
		fmt.Printf("  %-8s underestimate %.1f%% -> %.1f%%   accuracy %.1f%% -> %.1f%%\n",
			mr.Model, 100*bu/n, 100*wu/n, 100*ba/n, 100*wa/n)
	}

	// Extension 1: predict the final status from elapsed time (Section
	// V-C: "if a job running longer than 10^4 minutes, then it is highly
	// likely to be killed").
	st, err := predict.RunStatus(tr, predict.StatusConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(figures.RenderStatusPrediction(st))

	// Extension 2: act on it — proactively terminate jobs predicted not
	// to pass, reclaiming the wasted core hours Takeaway 7 highlights.
	fa, err := experiments.FaultAware(tr, nil, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fa.Render())
}

// Quickstart: generate a calibrated workload for one system, characterize
// it with the paper's methodology, and print the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crosssched/internal/core"
)

func main() {
	// Generate two days of the Philly-like DL workload (14 isolated
	// virtual clusters, ~80% single-GPU jobs, heavy failure rates).
	tr, err := core.GenerateSystem("Philly", 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs over %.1f days on %s (%d GPUs, %d VCs)\n\n",
		tr.Len(), tr.Duration()/86400, tr.System.Name,
		tr.System.TotalCores, tr.System.VirtualClusters)

	r := core.Characterize(tr)

	fmt.Println("Job geometries (paper Fig. 1):")
	fmt.Printf("  median runtime   %8.0f s\n", r.Geometry.RuntimeCDF.Inverse(0.5))
	fmt.Printf("  median interval  %8.1f s\n", r.Geometry.IntervalCDF.Inverse(0.5))
	fmt.Printf("  median GPUs      %8.0f\n", r.Geometry.CoresCDF.Inverse(0.5))

	fmt.Println("\nScheduling outcomes (paper Figs. 3-4):")
	fmt.Printf("  utilization      %8.3f\n", r.Scheduling.Utilization)
	fmt.Printf("  median wait      %8.0f s\n", r.Scheduling.WaitCDF.Inverse(0.5))

	fmt.Println("\nFailures (paper Fig. 6):")
	fmt.Printf("  passed jobs      %8.1f %%\n", 100*r.Failures.PassRate())
	fmt.Printf("  wasted GPU-hours %8.1f %%\n", 100*r.Failures.WastedCoreHourShare())

	fmt.Println("\nUser behavior (paper Fig. 8):")
	if len(r.UserGroups.Coverage) >= 10 {
		fmt.Printf("  top-10 config-group coverage %.0f%% (over %d heavy users)\n",
			100*r.UserGroups.Coverage[9], r.UserGroups.Users)
	}

	fmt.Printf("\nDominant core-hour class: %s jobs by size, %s jobs by length\n",
		r.CoreHours.DominantSize(), r.CoreHours.DominantLength())
}

package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// drain pulls a stream to EOF, failing the test on any other error.
func drain(t *testing.T, s Stream) []Job {
	t.Helper()
	var jobs []Job
	for {
		j, err := s.Next()
		if err == io.EOF {
			return jobs
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		jobs = append(jobs, j)
	}
}

// TestSWFStreamMatchesReadSWF: on WriteSWF output (header prefix, sorted),
// the streaming reader must produce exactly the jobs and system the
// materialized reader does.
func TestSWFStreamMatchesReadSWF(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadSWF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSWFStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.System() != want.System {
		t.Fatalf("system mismatch:\n  stream: %+v\n  read:   %+v", s.System(), want.System)
	}
	jobs := drain(t, s)
	if len(jobs) != want.Len() {
		t.Fatalf("job count %d want %d", len(jobs), want.Len())
	}
	for i := range jobs {
		if jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d mismatch:\n  stream: %+v\n  read:   %+v", i, jobs[i], want.Jobs[i])
		}
	}
}

// TestCSVStreamMatchesReadCSV is the CSV analog.
func TestCSVStreamMatchesReadCSV(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadCSV(bytes.NewReader(buf.Bytes()), tr.System)
	if err != nil {
		t.Fatal(err)
	}
	jobs := drain(t, NewCSVStream(bytes.NewReader(buf.Bytes()), tr.System))
	if len(jobs) != want.Len() {
		t.Fatalf("job count %d want %d", len(jobs), want.Len())
	}
	for i := range jobs {
		if jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d mismatch:\n  stream: %+v\n  read:   %+v", i, jobs[i], want.Jobs[i])
		}
	}
}

// TestWriteStreamMatchesWrite: the streaming writers must be byte-identical
// to the materialized ones.
func TestWriteStreamMatchesWrite(t *testing.T) {
	tr := sampleTrace()
	var swf, swfStream, csv, csvStream bytes.Buffer
	if err := WriteSWF(&swf, tr); err != nil {
		t.Fatal(err)
	}
	if n, err := WriteSWFStream(&swfStream, NewSliceStream(tr)); err != nil || n != tr.Len() {
		t.Fatalf("WriteSWFStream: n=%d err=%v", n, err)
	}
	if !bytes.Equal(swf.Bytes(), swfStream.Bytes()) {
		t.Fatal("WriteSWFStream differs from WriteSWF")
	}
	if err := WriteCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	if n, err := WriteCSVStream(&csvStream, NewSliceStream(tr)); err != nil || n != tr.Len() {
		t.Fatalf("WriteCSVStream: n=%d err=%v", n, err)
	}
	if !bytes.Equal(csv.Bytes(), csvStream.Bytes()) {
		t.Fatal("WriteCSVStream differs from WriteCSV")
	}
}

// TestSliceStreamCollect: SliceStream → Collect reproduces the trace.
func TestSliceStreamCollect(t *testing.T) {
	tr := sampleTrace()
	got, err := Collect(NewSliceStream(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.System != tr.System || got.Len() != tr.Len() {
		t.Fatalf("collect mismatch: %+v len %d", got.System, got.Len())
	}
	for i := range tr.Jobs {
		if got.Jobs[i] != tr.Jobs[i] {
			t.Fatalf("job %d mismatch", i)
		}
	}
}

// TestLongLines: the satellite fix — the old bufio.Scanner setup capped
// lines at 1MB, so a longer header comment or a job line with megabytes of
// trailing fields failed to parse. Both readers must now handle them.
func TestLongLines(t *testing.T) {
	var in strings.Builder
	in.WriteString("; Computer: LongLines\n; MaxProcs: 64\n")
	in.WriteString("; Note: " + strings.Repeat("x", 2*1024*1024) + "\n")
	in.WriteString("1 0.00 0.00 10.00 2 -1 -1 2 12.00 -1 1 1 -1 -1 -1 -1 -1 -1")
	in.WriteString(strings.Repeat(" 0", 1024*1024)) // extra fields are ignored
	in.WriteString("\n2 1.00 0.00 5.00 1 -1 -1 1 6.00 -1 1 2 -1 -1 0 -1 -1 -1\n")
	data := in.String()

	tr, err := ReadSWF(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSWF long lines: %v", err)
	}
	if tr.Len() != 2 || tr.System.Name != "LongLines" {
		t.Fatalf("ReadSWF long lines parsed wrong: len=%d sys=%+v", tr.Len(), tr.System)
	}
	s, err := NewSWFStream(strings.NewReader(data))
	if err != nil {
		t.Fatalf("NewSWFStream long lines: %v", err)
	}
	jobs := drain(t, s)
	if len(jobs) != 2 {
		t.Fatalf("SWFStream long lines: %d jobs want 2", len(jobs))
	}
	for i := range jobs {
		if jobs[i] != tr.Jobs[i] {
			t.Fatalf("job %d mismatch after long-line parse", i)
		}
	}
}

// TestSWFStreamEmpty: header-only and fully empty inputs end immediately.
func TestSWFStreamEmpty(t *testing.T) {
	for _, in := range []string{"", "; Computer: X\n; MaxProcs: 8\n"} {
		s, err := NewSWFStream(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("%q: want io.EOF, got %v", in, err)
		}
		// EOF is sticky.
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("%q: EOF not sticky: %v", in, err)
		}
	}
}

// TestSWFStreamErrors pins the streaming error paths: parse failures and
// contract violations name the offending 1-based line.
func TestSWFStreamErrors(t *testing.T) {
	const header = "; MaxProcs: 64\n"
	const ok = "1 0.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	cases := []struct {
		name, in, want string
	}{
		{"short line", header + ok + "1 2 3\n", "line 3"},
		{"bad field", header + ok + "2 zz 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "line 3"},
		{"out of order", header + "1 5.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
			"2 2.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "submit-sorted"},
		{"too wide", header + "1 0.0 0.0 1.0 128 -1 -1 128 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "line 2"},
		{"trailing header", header + ok + "; MaxProcs: 8\n", "header prefix"},
	}
	for _, tc := range cases {
		s, err := NewSWFStream(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: construction failed: %v", tc.name, err)
		}
		for err == nil {
			_, err = s.Next()
		}
		if err == io.EOF {
			t.Fatalf("%s: stream accepted bad input", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCSVStreamErrors is the CSV analog (row-numbered errors, ordering
// contract).
func TestCSVStreamErrors(t *testing.T) {
	const header = "id,user,submit,wait,run,walltime,procs,vc,status\n"
	cases := []struct {
		name, in, want string
	}{
		{"bad field", header + "x,0,0,0,0,0,1,-1,Passed\n", "row 2"},
		{"bad status", header + "0,0,0,0,0,0,1,-1,Bogus\n", "status"},
		{"out of order", header + "0,0,5.0,0,1,1,1,-1,Passed\n1,0,2.0,0,1,1,1,-1,Passed\n", "submit-sorted"},
		{"ragged row", header + "0,0\n", "csv"},
	}
	for _, tc := range cases {
		s := NewCSVStream(strings.NewReader(tc.in), System{TotalCores: 8})
		var err error
		for err == nil {
			_, err = s.Next()
		}
		if err == io.EOF {
			t.Fatalf("%s: stream accepted bad input", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCSVStreamHeaderless: a file without the header row streams from the
// first physical row, like ReadCSV.
func TestCSVStreamHeaderless(t *testing.T) {
	in := "5,0,3.25,2.00,100.00,120.00,4,2,Killed\n"
	jobs := drain(t, NewCSVStream(strings.NewReader(in), System{TotalCores: 8}))
	if len(jobs) != 1 || jobs[0].ID != 0 || jobs[0].Procs != 4 || jobs[0].Status != Killed {
		t.Fatalf("headerless parse wrong: %+v", jobs)
	}
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) is the interchange format of the
// Parallel Workloads Archive, which the HPC traces in the paper descend
// from. We read/write the 18-field SWF line and carry the paper's
// three-way status in the SWF status field:
//
//	1 = completed (Passed), 0 = failed (Failed), 5 = cancelled (Killed)
//
// plus header comments (";") recording the system description so a round
// trip preserves the trace.

const swfFields = 18

// SWFWriter serializes jobs to SWF incrementally, so a generator or a
// windowed simulation can emit a multi-million-job file without holding a
// []Job. The system header is written on construction; errors are sticky
// and re-reported by every subsequent call, so checking Flush at the end
// suffices.
type SWFWriter struct {
	bw  *bufio.Writer
	err error
}

// NewSWFWriter writes the metadata header for sys and returns a writer for
// the job lines.
func NewSWFWriter(w io.Writer, sys System) *SWFWriter {
	sw := &SWFWriter{bw: bufio.NewWriter(w)}
	fmt.Fprintf(sw.bw, "; Computer: %s\n", sys.Name)
	fmt.Fprintf(sw.bw, "; Kind: %s\n", sys.Kind)
	fmt.Fprintf(sw.bw, "; MaxProcs: %d\n", sys.TotalCores)
	fmt.Fprintf(sw.bw, "; CoresPerNode: %d\n", sys.CoresPerNode)
	fmt.Fprintf(sw.bw, "; VirtualClusters: %d\n", sys.VirtualClusters)
	fmt.Fprintf(sw.bw, "; StartHour: %d\n", sys.StartHour)
	return sw
}

// Write appends one job line.
func (sw *SWFWriter) Write(j *Job) error {
	if sw.err != nil {
		return sw.err
	}
	status := 1
	switch j.Status {
	case Failed:
		status = 0
	case Killed:
		status = 5
	}
	wait := j.Wait
	if wait < 0 {
		wait = -1
	}
	// Fields: job# submit wait run usedProcs avgCPU usedMem reqProcs
	// reqTime reqMem status user group app queue partition prevJob think
	_, sw.err = fmt.Fprintf(sw.bw, "%d %.2f %.2f %.2f %d -1 -1 %d %.2f -1 %d %d -1 -1 %d -1 -1 -1\n",
		j.ID+1, j.Submit, wait, j.Run, j.Procs, j.Procs, j.Walltime,
		status, j.User+1, j.VC)
	return sw.err
}

// Flush drains the buffer and returns the first error encountered.
func (sw *SWFWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.bw.Flush()
	return sw.err
}

// WriteSWF serializes the trace in SWF with a metadata header.
func WriteSWF(w io.Writer, t *Trace) error {
	sw := NewSWFWriter(w, t.System)
	for i := range t.Jobs {
		if err := sw.Write(&t.Jobs[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// WriteSWFStream drains s into w as SWF, returning the number of jobs
// written. Memory stays O(1) in the trace length.
func WriteSWFStream(w io.Writer, s Stream) (int, error) {
	sw := NewSWFWriter(w, s.System())
	n := 0
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := sw.Write(&j); err != nil {
			return n, err
		}
		n++
	}
	return n, sw.Flush()
}

// ReadSWF parses a trace written by WriteSWF (or any 18-field SWF file;
// missing header metadata falls back to zero values and capacity inferred
// from the largest request). The whole file is materialized and sorted; use
// NewSWFStream for bounded-memory iteration over large, already-sorted
// files.
func ReadSWF(r io.Reader) (*Trace, error) {
	lr := newLineReader(r)
	t := New(System{})
	var jobLines []int // source line of each job, for post-parse validation
	for {
		line, lineNo, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseSWFHeader(&t.System, line)
			continue
		}
		f := strings.Fields(line)
		if len(f) < swfFields {
			return nil, fmt.Errorf("trace: swf line %d: %d fields, want %d", lineNo, len(f), swfFields)
		}
		j, err := parseSWFLine(f)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: %w", lineNo, err)
		}
		t.Jobs = append(t.Jobs, j)
		jobLines = append(jobLines, lineNo)
	}
	if t.System.TotalCores == 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				t.System.TotalCores = t.Jobs[i].Procs
			}
		}
	}
	// With a declared capacity, a job wider than the machine can never be
	// scheduled; catch it at parse time (headers may trail the job lines,
	// so this must wait for the whole file).
	if t.System.TotalCores > 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				return nil, fmt.Errorf("trace: swf line %d: job %d requests %d procs, system has %d",
					jobLines[i], t.Jobs[i].ID+1, t.Jobs[i].Procs, t.System.TotalCores)
			}
		}
	}
	t.SortBySubmit()
	return t, nil
}

// SWFStream reads an SWF file one job at a time in O(1) memory. It is
// stricter than ReadSWF, which buffers everything and can therefore sort
// and back-patch: the streaming contract requires header comments to form a
// prefix (so System — in particular the capacity jobs are validated
// against — is known before the first job) and job lines to be sorted by
// submit time. WriteSWF output always satisfies both. IDs are re-assigned
// densely in stream order, exactly as ReadSWF's sort pass would for sorted
// input; parse and contract violations carry 1-based line numbers.
type SWFStream struct {
	lr          *lineReader
	sys         System
	pending     string // first job line, peeked past the header by New
	pendingLine int
	havePending bool
	done        bool
	n           int     // jobs emitted
	last        float64 // previous submit time
}

// NewSWFStream consumes the header prefix of r and returns the stream.
func NewSWFStream(r io.Reader) (*SWFStream, error) {
	s := &SWFStream{lr: newLineReader(r)}
	for {
		line, lineNo, err := s.lr.next()
		if err == io.EOF {
			s.done = true
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseSWFHeader(&s.sys, line)
			continue
		}
		s.pending, s.pendingLine, s.havePending = line, lineNo, true
		return s, nil
	}
}

// System returns the header metadata. Complete after NewSWFStream returns
// (headers are required to precede job lines).
func (s *SWFStream) System() System { return s.sys }

// Next returns the next job, io.EOF at the end, or a line-numbered error.
func (s *SWFStream) Next() (Job, error) {
	for {
		var line string
		var lineNo int
		switch {
		case s.havePending:
			line, lineNo = s.pending, s.pendingLine
			s.havePending = false
			s.pending = ""
		case s.done:
			return Job{}, io.EOF
		default:
			var err error
			line, lineNo, err = s.lr.next()
			if err == io.EOF {
				s.done = true
				return Job{}, io.EOF
			}
			if err != nil {
				return Job{}, err
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, ";") {
				return Job{}, fmt.Errorf("trace: swf line %d: header comment after job lines (streaming needs a header prefix; use ReadSWF)", lineNo)
			}
		}
		f := strings.Fields(line)
		if len(f) < swfFields {
			return Job{}, fmt.Errorf("trace: swf line %d: %d fields, want %d", lineNo, len(f), swfFields)
		}
		j, err := parseSWFLine(f)
		if err != nil {
			return Job{}, fmt.Errorf("trace: swf line %d: %w", lineNo, err)
		}
		if s.n > 0 && j.Submit < s.last {
			return Job{}, fmt.Errorf("trace: swf line %d: submit %v before previous %v (streaming needs submit-sorted input; use ReadSWF)",
				lineNo, j.Submit, s.last)
		}
		if s.sys.TotalCores > 0 && j.Procs > s.sys.TotalCores {
			return Job{}, fmt.Errorf("trace: swf line %d: job %d requests %d procs, system has %d",
				lineNo, j.ID+1, j.Procs, s.sys.TotalCores)
		}
		s.last = j.Submit
		j.ID = s.n
		s.n++
		return j, nil
	}
}

func parseSWFHeader(sys *System, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return
	}
	val = strings.TrimSpace(val)
	switch strings.TrimSpace(key) {
	case "Computer":
		sys.Name = val
	case "Kind":
		switch val {
		case "HPC":
			sys.Kind = HPC
		case "DL":
			sys.Kind = DL
		case "Hybrid":
			sys.Kind = Hybrid
		}
	case "MaxProcs":
		if n, err := strconv.Atoi(val); err == nil {
			sys.TotalCores = n
		}
	case "CoresPerNode":
		if n, err := strconv.Atoi(val); err == nil {
			sys.CoresPerNode = n
		}
	case "VirtualClusters":
		if n, err := strconv.Atoi(val); err == nil {
			sys.VirtualClusters = n
		}
	case "StartHour":
		if n, err := strconv.Atoi(val); err == nil {
			sys.StartHour = n
		}
	}
}

func parseSWFLine(f []string) (Job, error) {
	var j Job
	var err error
	get := func(i int) (float64, error) { return strconv.ParseFloat(f[i], 64) }

	id, err := get(0)
	if err != nil {
		return j, fmt.Errorf("job id: %w", err)
	}
	j.ID = int(id) - 1
	if j.Submit, err = get(1); err != nil {
		return j, fmt.Errorf("submit: %w", err)
	}
	if j.Submit < 0 {
		return j, fmt.Errorf("submit: negative time %v", j.Submit)
	}
	if j.Wait, err = get(2); err != nil {
		return j, fmt.Errorf("wait: %w", err)
	}
	if j.Run, err = get(3); err != nil {
		return j, fmt.Errorf("run: %w", err)
	}
	if j.Run < 0 {
		return j, fmt.Errorf("run: negative runtime %v", j.Run)
	}
	procs, err := get(7)
	if err != nil || procs <= 0 {
		// fall back to used procs (field 4)
		procs, err = get(4)
		if err != nil {
			return j, fmt.Errorf("procs: %w", err)
		}
	}
	if procs <= 0 {
		// Neither the requested nor the used processor count is usable —
		// a zero-width job cannot be scheduled.
		return j, fmt.Errorf("procs: non-positive count %v", procs)
	}
	j.Procs = int(procs)
	if j.Walltime, err = get(8); err != nil {
		return j, fmt.Errorf("walltime: %w", err)
	}
	if j.Walltime < 0 {
		j.Walltime = 0
	}
	st, err := get(10)
	if err != nil {
		return j, fmt.Errorf("status: %w", err)
	}
	switch int(st) {
	case 0:
		j.Status = Failed
	case 5:
		j.Status = Killed
	default:
		j.Status = Passed
	}
	user, err := get(11)
	if err != nil {
		return j, fmt.Errorf("user: %w", err)
	}
	j.User = int(user) - 1
	if j.User < 0 {
		j.User = 0
	}
	vc, err := get(14) // queue field carries the VC index
	if err != nil {
		return j, fmt.Errorf("vc: %w", err)
	}
	j.VC = int(vc)
	return j, nil
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) is the interchange format of the
// Parallel Workloads Archive, which the HPC traces in the paper descend
// from. We read/write the 18-field SWF line and carry the paper's
// three-way status in the SWF status field:
//
//	1 = completed (Passed), 0 = failed (Failed), 5 = cancelled (Killed)
//
// plus header comments (";") recording the system description so a round
// trip preserves the trace.

const swfFields = 18

// WriteSWF serializes the trace in SWF with a metadata header.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; Computer: %s\n", t.System.Name)
	fmt.Fprintf(bw, "; Kind: %s\n", t.System.Kind)
	fmt.Fprintf(bw, "; MaxProcs: %d\n", t.System.TotalCores)
	fmt.Fprintf(bw, "; CoresPerNode: %d\n", t.System.CoresPerNode)
	fmt.Fprintf(bw, "; VirtualClusters: %d\n", t.System.VirtualClusters)
	fmt.Fprintf(bw, "; StartHour: %d\n", t.System.StartHour)
	for i := range t.Jobs {
		j := &t.Jobs[i]
		status := 1
		switch j.Status {
		case Failed:
			status = 0
		case Killed:
			status = 5
		}
		wait := j.Wait
		if wait < 0 {
			wait = -1
		}
		// Fields: job# submit wait run usedProcs avgCPU usedMem reqProcs
		// reqTime reqMem status user group app queue partition prevJob think
		_, err := fmt.Fprintf(bw, "%d %.2f %.2f %.2f %d -1 -1 %d %.2f -1 %d %d -1 -1 %d -1 -1 -1\n",
			j.ID+1, j.Submit, wait, j.Run, j.Procs, j.Procs, j.Walltime,
			status, j.User+1, j.VC)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSWF parses a trace written by WriteSWF (or any 18-field SWF file;
// missing header metadata falls back to zero values and capacity inferred
// from the largest request).
func ReadSWF(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	t := New(System{})
	lineNo := 0
	var jobLines []int // source line of each job, for post-parse validation
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseSWFHeader(&t.System, line)
			continue
		}
		f := strings.Fields(line)
		if len(f) < swfFields {
			return nil, fmt.Errorf("trace: swf line %d: %d fields, want %d", lineNo, len(f), swfFields)
		}
		j, err := parseSWFLine(f)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: %w", lineNo, err)
		}
		t.Jobs = append(t.Jobs, j)
		jobLines = append(jobLines, lineNo)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.System.TotalCores == 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				t.System.TotalCores = t.Jobs[i].Procs
			}
		}
	}
	// With a declared capacity, a job wider than the machine can never be
	// scheduled; catch it at parse time (headers may trail the job lines,
	// so this must wait for the whole file).
	if t.System.TotalCores > 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				return nil, fmt.Errorf("trace: swf line %d: job %d requests %d procs, system has %d",
					jobLines[i], t.Jobs[i].ID+1, t.Jobs[i].Procs, t.System.TotalCores)
			}
		}
	}
	t.SortBySubmit()
	return t, nil
}

func parseSWFHeader(sys *System, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	key, val, ok := strings.Cut(body, ":")
	if !ok {
		return
	}
	val = strings.TrimSpace(val)
	switch strings.TrimSpace(key) {
	case "Computer":
		sys.Name = val
	case "Kind":
		switch val {
		case "HPC":
			sys.Kind = HPC
		case "DL":
			sys.Kind = DL
		case "Hybrid":
			sys.Kind = Hybrid
		}
	case "MaxProcs":
		if n, err := strconv.Atoi(val); err == nil {
			sys.TotalCores = n
		}
	case "CoresPerNode":
		if n, err := strconv.Atoi(val); err == nil {
			sys.CoresPerNode = n
		}
	case "VirtualClusters":
		if n, err := strconv.Atoi(val); err == nil {
			sys.VirtualClusters = n
		}
	case "StartHour":
		if n, err := strconv.Atoi(val); err == nil {
			sys.StartHour = n
		}
	}
}

func parseSWFLine(f []string) (Job, error) {
	var j Job
	var err error
	get := func(i int) (float64, error) { return strconv.ParseFloat(f[i], 64) }

	id, err := get(0)
	if err != nil {
		return j, fmt.Errorf("job id: %w", err)
	}
	j.ID = int(id) - 1
	if j.Submit, err = get(1); err != nil {
		return j, fmt.Errorf("submit: %w", err)
	}
	if j.Submit < 0 {
		return j, fmt.Errorf("submit: negative time %v", j.Submit)
	}
	if j.Wait, err = get(2); err != nil {
		return j, fmt.Errorf("wait: %w", err)
	}
	if j.Run, err = get(3); err != nil {
		return j, fmt.Errorf("run: %w", err)
	}
	if j.Run < 0 {
		return j, fmt.Errorf("run: negative runtime %v", j.Run)
	}
	procs, err := get(7)
	if err != nil || procs <= 0 {
		// fall back to used procs (field 4)
		procs, err = get(4)
		if err != nil {
			return j, fmt.Errorf("procs: %w", err)
		}
	}
	if procs <= 0 {
		// Neither the requested nor the used processor count is usable —
		// a zero-width job cannot be scheduled.
		return j, fmt.Errorf("procs: non-positive count %v", procs)
	}
	j.Procs = int(procs)
	if j.Walltime, err = get(8); err != nil {
		return j, fmt.Errorf("walltime: %w", err)
	}
	if j.Walltime < 0 {
		j.Walltime = 0
	}
	st, err := get(10)
	if err != nil {
		return j, fmt.Errorf("status: %w", err)
	}
	switch int(st) {
	case 0:
		j.Status = Failed
	case 5:
		j.Status = Killed
	default:
		j.Status = Passed
	}
	user, err := get(11)
	if err != nil {
		return j, fmt.Errorf("user: %w", err)
	}
	j.User = int(user) - 1
	if j.User < 0 {
		j.User = 0
	}
	vc, err := get(14) // queue field carries the VC index
	if err != nil {
		return j, fmt.Errorf("vc: %w", err)
	}
	j.VC = int(vc)
	return j, nil
}

package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New(System{Name: "Test", Kind: HPC, TotalCores: 1000, CoresPerNode: 16, StartHour: 8})
	t.Jobs = []Job{
		{ID: 0, User: 0, Submit: 0, Wait: 10, Run: 100, Walltime: 200, Procs: 16, VC: -1, Status: Passed},
		{ID: 1, User: 1, Submit: 5, Wait: 0, Run: 50, Walltime: 100, Procs: 32, VC: -1, Status: Failed},
		{ID: 2, User: 0, Submit: 20, Wait: 40, Run: 400, Walltime: 500, Procs: 16, VC: -1, Status: Killed},
		{ID: 3, User: 2, Submit: 30, Wait: 5, Run: 10, Walltime: 20, Procs: 8, VC: -1, Status: Passed},
	}
	return t
}

func TestStatusString(t *testing.T) {
	if Passed.String() != "Passed" || Failed.String() != "Failed" || Killed.String() != "Killed" {
		t.Fatal("status names wrong")
	}
	if Status(99).String() != "Status(99)" {
		t.Fatal("unknown status formatting wrong")
	}
}

func TestParseStatusRoundTrip(t *testing.T) {
	for _, s := range Statuses {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip of %v failed: %v %v", s, got, err)
		}
	}
	if _, err := ParseStatus("Exploded"); err == nil {
		t.Fatal("expected error for unknown status")
	}
}

func TestJobDerivedQuantities(t *testing.T) {
	j := Job{Submit: 100, Wait: 20, Run: 60, Procs: 4}
	if j.Start() != 120 || j.End() != 180 {
		t.Fatalf("start/end wrong: %v %v", j.Start(), j.End())
	}
	if j.Turnaround() != 80 {
		t.Fatalf("turnaround %v", j.Turnaround())
	}
	if got := j.CoreSeconds(); got != 240 {
		t.Fatalf("core seconds %v", got)
	}
	if got := j.CoreHours(); math.Abs(got-240.0/3600) > 1e-12 {
		t.Fatalf("core hours %v", got)
	}
	if got := j.Slowdown(); math.Abs(got-80.0/60) > 1e-12 {
		t.Fatalf("slowdown %v", got)
	}
}

func TestJobUnknownWait(t *testing.T) {
	j := Job{Submit: 100, Wait: -1, Run: 60}
	if j.Start() != 100 || j.End() != 160 || j.Turnaround() != 60 {
		t.Fatal("unknown-wait derived values wrong")
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// short job: run 1s, wait 9s, tau 10 -> max(10/10, 1) = 1
	j := Job{Wait: 9, Run: 1}
	if got := j.BoundedSlowdown(10); got != 1 {
		t.Fatalf("bsld %v want 1", got)
	}
	// run 100, wait 100 -> 200/100 = 2
	j2 := Job{Wait: 100, Run: 100}
	if got := j2.BoundedSlowdown(10); got != 2 {
		t.Fatalf("bsld %v want 2", got)
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{Procs: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Submit: -1, Procs: 1},
		{Run: -1, Procs: 1},
		{Procs: 0},
		{Procs: 1, Walltime: -5},
		{Procs: 1, User: -1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Fatalf("bad job %d accepted", i)
		}
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := sampleTrace()
	// scramble
	tr.Jobs[0], tr.Jobs[2] = tr.Jobs[2], tr.Jobs[0]
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate after sort: %v", err)
	}
	for i := range tr.Jobs {
		if tr.Jobs[i].ID != i {
			t.Fatalf("IDs not densified: %v", tr.Jobs[i].ID)
		}
		if i > 0 && tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("not sorted")
		}
	}
}

func TestTraceValidateRejects(t *testing.T) {
	tr := sampleTrace()
	tr.System.TotalCores = 0
	if tr.Validate() == nil {
		t.Fatal("zero capacity accepted")
	}
	tr = sampleTrace()
	tr.Jobs[1].Procs = 99999
	if tr.Validate() == nil {
		t.Fatal("oversized job accepted")
	}
	tr = sampleTrace()
	tr.Jobs[1].Submit = -100
	if tr.Validate() == nil {
		t.Fatal("out-of-order/negative submit accepted")
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(5, 30)
	if w.Len() != 2 {
		t.Fatalf("window len %d want 2", w.Len())
	}
	if w.Jobs[0].Submit != 0 || w.Jobs[1].Submit != 15 {
		t.Fatalf("window submits not rebased: %v %v", w.Jobs[0].Submit, w.Jobs[1].Submit)
	}
	if w.Jobs[0].ID != 0 || w.Jobs[1].ID != 1 {
		t.Fatal("window IDs not densified")
	}
}

func TestFilterAndClone(t *testing.T) {
	tr := sampleTrace()
	f := tr.Filter(func(j Job) bool { return j.Status == Passed })
	if f.Len() != 2 {
		t.Fatalf("filter len %d want 2", f.Len())
	}
	c := tr.Clone()
	c.Jobs[0].Run = 999
	if tr.Jobs[0].Run == 999 {
		t.Fatal("clone shares backing array")
	}
}

func TestUsersAndGrouping(t *testing.T) {
	tr := sampleTrace()
	users := tr.Users()
	if len(users) != 3 || users[0] != 0 || users[2] != 2 {
		t.Fatalf("users = %v", users)
	}
	byUser := tr.JobsByUser()
	if len(byUser[0]) != 2 || len(byUser[1]) != 1 {
		t.Fatalf("jobs by user wrong: %v", byUser)
	}
	top := tr.TopUsersByJobCount(2)
	if len(top) != 2 || top[0] != 0 {
		t.Fatalf("top users = %v", top)
	}
}

func TestVectorsAndIntervals(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Runtimes(); len(got) != 4 || got[2] != 400 {
		t.Fatalf("runtimes %v", got)
	}
	if got := tr.Waits(); len(got) != 4 {
		t.Fatalf("waits %v", got)
	}
	tr.Jobs[0].Wait = -1
	if got := tr.Waits(); len(got) != 3 {
		t.Fatalf("waits with unknown %v", got)
	}
	iv := tr.ArrivalIntervals()
	want := []float64{5, 15, 10}
	for i := range want {
		if iv[i] != want[i] {
			t.Fatalf("intervals %v want %v", iv, want)
		}
	}
	if New(System{}).ArrivalIntervals() != nil {
		t.Fatal("intervals of empty trace should be nil")
	}
}

func TestDurationAndCoreHours(t *testing.T) {
	tr := sampleTrace()
	// job 2 ends at 20+40+400 = 460; first submit 0
	if got := tr.Duration(); got != 460 {
		t.Fatalf("duration %v want 460", got)
	}
	wantCH := (100*16 + 50*32 + 400*16 + 10*8) / 3600.0
	if got := tr.TotalCoreHours(); math.Abs(got-wantCH) > 1e-9 {
		t.Fatalf("core hours %v want %v", got, wantCH)
	}
	if New(System{}).Duration() != 0 {
		t.Fatal("empty duration should be 0")
	}
}

// Property: Window never yields jobs outside [0, to-from) and preserves count
// consistency with Filter.
func TestWindowPropertyQuick(t *testing.T) {
	f := func(seed uint8) bool {
		tr := sampleTrace()
		from := float64(seed % 30)
		to := from + float64(seed%50) + 1
		w := tr.Window(from, to)
		for _, j := range w.Jobs {
			if j.Submit < 0 || j.Submit >= to-from {
				return false
			}
		}
		count := tr.Filter(func(j Job) bool { return j.Submit >= from && j.Submit < to }).Len()
		return count == w.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSWFRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadSWF(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.System.Name != "Test" || got.System.Kind != HPC ||
		got.System.TotalCores != 1000 || got.System.CoresPerNode != 16 ||
		got.System.StartHour != 8 {
		t.Fatalf("system metadata lost: %+v", got.System)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("job count %d want %d", got.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], got.Jobs[i]
		if a.User != b.User || a.Submit != b.Submit || a.Run != b.Run ||
			a.Procs != b.Procs || a.Status != b.Status || a.Wait != b.Wait ||
			a.Walltime != b.Walltime || a.VC != b.VC {
			t.Fatalf("job %d mismatch:\n  %+v\n  %+v", i, a, b)
		}
	}
}

func TestSWFUnknownWait(t *testing.T) {
	tr := sampleTrace()
	tr.Jobs[0].Wait = -1
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs[0].Wait != -1 {
		t.Fatalf("unknown wait not preserved: %v", got.Jobs[0].Wait)
	}
}

func TestSWFRejectsShortLines(t *testing.T) {
	_, err := ReadSWF(strings.NewReader("1 2 3\n"))
	if err == nil {
		t.Fatal("expected error for short SWF line")
	}
}

func TestSWFSkipsBlankAndComments(t *testing.T) {
	in := "; Computer: X\n\n; junk no colon\n"
	tr, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.System.Name != "X" || tr.Len() != 0 {
		t.Fatalf("header-only parse wrong: %+v", tr.System)
	}
}

func TestSWFInfersCapacity(t *testing.T) {
	// one job line requesting 64 procs, no MaxProcs header
	line := "1 0.0 1.0 10.0 64 -1 -1 64 20.0 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if tr.System.TotalCores != 64 {
		t.Fatalf("inferred capacity %d want 64", tr.System.TotalCores)
	}
}

func TestSWFStatusMapping(t *testing.T) {
	in := "; MaxProcs: 10\n" +
		"1 0.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"2 1.0 0.0 1.0 1 -1 -1 1 1.0 -1 0 1 -1 -1 -1 -1 -1 -1\n" +
		"3 2.0 0.0 1.0 1 -1 -1 1 1.0 -1 5 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{Passed, Failed, Killed}
	for i, w := range want {
		if tr.Jobs[i].Status != w {
			t.Fatalf("job %d status %v want %v", i, tr.Jobs[i].Status, w)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCSV(&buf, tr.System)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d want %d", got.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], got.Jobs[i]
		if a.User != b.User || a.Submit != b.Submit || a.Run != b.Run ||
			a.Procs != b.Procs || a.Status != b.Status || a.VC != b.VC {
			t.Fatalf("job %d mismatch:\n  %+v\n  %+v", i, a, b)
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""), System{Name: "E"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.System.Name != "E" {
		t.Fatal("empty CSV parse wrong")
	}
}

func TestCSVRejectsBadRows(t *testing.T) {
	bad := []string{
		"id,user,submit,wait,run,walltime,procs,vc,status\nx,0,0,0,0,0,1,-1,Passed\n",
		"id,user,submit,wait,run,walltime,procs,vc,status\n0,0,0,0,0,0,1,-1,Bogus\n",
		"id,user,submit,wait,run,walltime,procs,vc,status\n0,0,zz,0,0,0,1,-1,Passed\n",
	}
	for i, in := range bad {
		if _, err := ReadCSV(strings.NewReader(in), System{}); err == nil {
			t.Fatalf("bad csv %d accepted", i)
		}
	}
}

func TestCSVInfersCapacity(t *testing.T) {
	in := "id,user,submit,wait,run,walltime,procs,vc,status\n0,0,0,0,10,20,128,-1,Passed\n"
	tr, err := ReadCSV(strings.NewReader(in), System{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.System.TotalCores != 128 {
		t.Fatalf("inferred capacity %d want 128", tr.System.TotalCores)
	}
}

// TestSWFRejectsInvalidFields pins the parse-time validation added for
// malformed archive files: every rejection names the offending line.
func TestSWFRejectsInvalidFields(t *testing.T) {
	const header = "; MaxProcs: 64\n"
	cases := []struct {
		name, line, want string
	}{
		{"negative submit", "1 -5.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "line 2"},
		{"negative run", "1 0.0 0.0 -2.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "line 2"},
		{"zero procs", "1 0.0 0.0 1.0 0 -1 -1 0 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "procs"},
		{"negative procs", "1 0.0 0.0 1.0 -3 -1 -1 -3 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "procs"},
		{"wider than machine", "1 0.0 0.0 1.0 128 -1 -1 128 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := ReadSWF(strings.NewReader(header + tc.line))
		if err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSWFProcsFallback: an unusable requested-procs field falls back to
// used procs; only when BOTH are unusable is the line rejected.
func TestSWFProcsFallback(t *testing.T) {
	// reqProcs (field 8) is -1, usedProcs (field 5) is 4.
	in := "; MaxProcs: 64\n1 0.0 0.0 1.0 4 -1 -1 -1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Procs != 4 {
		t.Fatalf("fallback procs %d want 4", tr.Jobs[0].Procs)
	}
}

// TestSWFUnknownKindHeader: an unrecognized Kind header falls back to the
// zero value instead of failing the parse.
func TestSWFUnknownKindHeader(t *testing.T) {
	in := "; Kind: Quantum\n; MaxProcs: 8\n1 0.0 0.0 1.0 1 -1 -1 1 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.System.Kind != HPC || tr.Len() != 1 {
		t.Fatalf("unknown kind handled wrong: %+v", tr.System)
	}
}

// TestSWFTrailingHeaderCapacityCheck: the capacity validation must also
// catch a too-wide job when MaxProcs is declared AFTER the job lines.
func TestSWFTrailingHeaderCapacityCheck(t *testing.T) {
	in := "1 0.0 0.0 1.0 128 -1 -1 128 1.0 -1 1 1 -1 -1 -1 -1 -1 -1\n; MaxProcs: 64\n"
	if _, err := ReadSWF(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("trailing-header capacity violation not caught: %v", err)
	}
}

package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzSWFRoundTrip feeds arbitrary bytes to the SWF reader; whenever they
// parse, the codec must be write-stable: serializing the parsed trace,
// re-reading it, and serializing again must reproduce the first
// serialization byte for byte (the first write normalizes float precision
// and job order; after that the round trip must be exact).
func FuzzSWFRoundTrip(f *testing.F) {
	f.Add([]byte("; Computer: Seed\n; Kind: HPC\n; MaxProcs: 8\n" +
		"1 0.00 0.00 10.00 2 -1 -1 2 12.00 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"2 1.50 -1.00 5.00 1 -1 -1 1 0.00 -1 5 2 -1 -1 0 -1 -1 -1\n"))
	f.Add([]byte("; VirtualClusters: 3\n" +
		"7 3.25 2.00 100.00 4 -1 -1 4 120.00 -1 0 3 -1 -1 2 -1 -1 -1\n"))
	f.Add([]byte("bogus\n"))
	f.Add([]byte("1 0 0 1 1 -1 -1 1 1 -1 1 1 -1 -1 -1 -1 -1 -1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadSWF(bytes.NewReader(data))
		if err != nil {
			return // arbitrary bytes may legitimately fail to parse
		}
		var first bytes.Buffer
		if err := WriteSWF(&first, tr); err != nil {
			t.Fatalf("write parsed trace: %v", err)
		}
		tr2, err := ReadSWF(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		var second bytes.Buffer
		if err := WriteSWF(&second, tr2); err != nil {
			t.Fatalf("write re-read trace: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("SWF round trip not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d -> %d", tr.Len(), tr2.Len())
		}
	})
}

// FuzzStreamSWF feeds arbitrary bytes to the streaming SWF reader: it must
// never panic, and the streaming contract must be a strict subset of the
// materialized one — whenever the stream drains successfully, ReadSWF must
// accept the same bytes and produce the same jobs (the stream's stricter
// header-prefix + sorted-input requirements guarantee the sort pass is a
// no-op). System metadata must also agree, except that ReadSWF infers
// TotalCores from the widest job when no MaxProcs header is present.
func FuzzStreamSWF(f *testing.F) {
	f.Add([]byte("; Computer: Seed\n; Kind: HPC\n; MaxProcs: 8\n" +
		"1 0.00 0.00 10.00 2 -1 -1 2 12.00 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"2 1.50 -1.00 5.00 1 -1 -1 1 0.00 -1 5 2 -1 -1 0 -1 -1 -1\n"))
	f.Add([]byte("1 0 0 1 1 -1 -1 1 1 -1 1 1 -1 -1 -1 -1 -1 -1\n; MaxProcs: 4\n"))
	f.Add([]byte("1 5 0 1 1 -1 -1 1 1 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"2 2 0 1 1 -1 -1 1 1 -1 1 1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("; Note: header only\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewSWFStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		var jobs []Job
		for {
			j, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // stream rejected the input; nothing to cross-check
			}
			jobs = append(jobs, j)
		}
		tr, err := ReadSWF(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("stream accepted but ReadSWF rejected: %v", err)
		}
		if len(jobs) != tr.Len() {
			t.Fatalf("job count: stream %d, ReadSWF %d", len(jobs), tr.Len())
		}
		for i := range jobs {
			if jobs[i] != tr.Jobs[i] {
				t.Fatalf("job %d: stream %+v, ReadSWF %+v", i, jobs[i], tr.Jobs[i])
			}
		}
		sys := s.System()
		if sys.TotalCores == 0 {
			sys.TotalCores = tr.System.TotalCores // ReadSWF infers from jobs
		}
		if sys != tr.System {
			t.Fatalf("system: stream %+v, ReadSWF %+v", s.System(), tr.System)
		}
	})
}

// FuzzCSVReader feeds arbitrary bytes to the CSV reader: it must never
// panic, and any trace it accepts must round-trip write-stably just like
// the SWF codec.
func FuzzCSVReader(f *testing.F) {
	f.Add([]byte("id,user,submit,wait,run,walltime,procs,vc,status\n" +
		"0,0,0.00,0.00,10.00,12.00,2,-1,Passed\n" +
		"1,1,1.50,-1.00,5.00,0.00,1,0,Failed\n"))
	f.Add([]byte("0,0,3.25,2.00,100.00,120.00,4,2,Killed\n"))
	f.Add([]byte("id,user\n"))
	f.Add([]byte(",,,,,,,,\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data), System{})
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteCSV(&first, tr); err != nil {
			t.Fatalf("write parsed trace: %v", err)
		}
		tr2, err := ReadCSV(bytes.NewReader(first.Bytes()), System{})
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		var second bytes.Buffer
		if err := WriteCSV(&second, tr2); err != nil {
			t.Fatalf("write re-read trace: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("CSV round trip not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}

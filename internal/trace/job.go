// Package trace defines the job-trace data model shared by the generators,
// the scheduling simulator, and the characterization analyses, plus SWF and
// CSV serialization.
//
// Conventions: times are float64 seconds relative to the trace start;
// resource sizes are integer "cores" (CPU cores on HPC systems, GPUs on DL
// systems — the paper compares them on the same axis); every job carries a
// user ID and a final status.
package trace

import "fmt"

// Status is the final exit state of a job, following the paper's three-way
// classification (Section IV-A).
type Status int

const (
	// Passed means the job finished normally.
	Passed Status = iota
	// Failed means the job died mid-run from a technical fault
	// (SIGABRT/SIGSEGV class: bugs, bad configs) — typically early.
	Failed
	// Killed means the job was terminated by an external actor
	// (SIGTERM/SIGKILL class: user cancellation, walltime limit).
	Killed
)

// String returns the status name used in trace files and reports.
func (s Status) String() string {
	switch s {
	case Passed:
		return "Passed"
	case Failed:
		return "Failed"
	case Killed:
		return "Killed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ParseStatus converts a status name back to a Status.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "Passed":
		return Passed, nil
	case "Failed":
		return Failed, nil
	case "Killed":
		return Killed, nil
	}
	return Passed, fmt.Errorf("trace: unknown status %q", s)
}

// Statuses lists all statuses in canonical order for iteration.
var Statuses = [3]Status{Passed, Failed, Killed}

// Job is a single execution instance submitted by a user.
type Job struct {
	ID     int     // unique within the trace, dense from 0
	User   int     // user ID, dense from 0
	Submit float64 // submission time, seconds since trace start
	Wait   float64 // queue waiting time in seconds (-1 if unknown/unscheduled)
	Run    float64 // actual runtime in seconds
	// Walltime is the user-requested runtime limit in seconds; schedulers
	// plan reservations against it. Zero means "not provided" (the DL
	// traces in the paper lack walltime, which is why Table II covers
	// only Blue Waters, Mira, and Theta).
	Walltime float64
	Procs    int // requested cores (CPU cores or GPUs, per system)
	// VC is the virtual-cluster index the job is confined to (Philly-style
	// isolation). -1 means the whole machine is available.
	VC     int
	Status Status
}

// End returns submit+wait+run — the completion timestamp — when the wait is
// known; otherwise it returns submit+run as a lower bound.
func (j Job) End() float64 {
	if j.Wait >= 0 {
		return j.Submit + j.Wait + j.Run
	}
	return j.Submit + j.Run
}

// Start returns the dispatch timestamp submit+wait, or submit when the wait
// is unknown.
func (j Job) Start() float64 {
	if j.Wait >= 0 {
		return j.Submit + j.Wait
	}
	return j.Submit
}

// CoreSeconds returns Run * Procs, the resource consumption of the job.
func (j Job) CoreSeconds() float64 {
	return j.Run * float64(j.Procs)
}

// CoreHours returns the consumption in core-hours (the unit of Figure 2).
func (j Job) CoreHours() float64 {
	return j.CoreSeconds() / 3600
}

// Turnaround returns wait+run, the job's total time in the system, or just
// Run when the wait is unknown.
func (j Job) Turnaround() float64 {
	if j.Wait >= 0 {
		return j.Wait + j.Run
	}
	return j.Run
}

// Slowdown returns turnaround/run. Jobs with zero runtime return the
// turnaround against a 1-second floor to stay finite.
func (j Job) Slowdown() float64 {
	r := j.Run
	if r < 1 {
		r = 1
	}
	return j.Turnaround() / r
}

// BoundedSlowdown returns the bounded slowdown max(turnaround/max(run,tau),1)
// with interactivity threshold tau seconds (Feitelson's bsld; the paper uses
// tau = 10s).
func (j Job) BoundedSlowdown(tau float64) float64 {
	r := j.Run
	if r < tau {
		r = tau
	}
	if r <= 0 {
		return 1
	}
	s := j.Turnaround() / r
	if s < 1 {
		return 1
	}
	return s
}

// Validate reports the first structural problem with the job, if any.
func (j Job) Validate() error { return j.validate() }

// validate is Validate without the by-value receiver copy; Trace.Validate
// runs it over every job on each simulation start (sim.Runner revalidates
// per run), where the per-job record copy is measurable.
func (j *Job) validate() error {
	switch {
	case j.Submit < 0:
		return fmt.Errorf("trace: job %d: negative submit %v", j.ID, j.Submit)
	case j.Run < 0:
		return fmt.Errorf("trace: job %d: negative runtime %v", j.ID, j.Run)
	case j.Procs <= 0:
		return fmt.Errorf("trace: job %d: non-positive procs %d", j.ID, j.Procs)
	case j.Walltime < 0:
		return fmt.Errorf("trace: job %d: negative walltime %v", j.ID, j.Walltime)
	case j.User < 0:
		return fmt.Errorf("trace: job %d: negative user %d", j.ID, j.User)
	}
	return nil
}

package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// quickJob builds a valid job from arbitrary quick-check inputs.
func quickJob(id int, user uint8, submit, wait, run, wall uint32, procs uint16, status uint8) Job {
	j := Job{
		ID:     id,
		User:   int(user),
		Submit: float64(submit) / 100,
		Wait:   float64(wait) / 100,
		Run:    float64(run) / 100,
		Procs:  int(procs)%4096 + 1,
		VC:     -1,
		Status: Status(status % 3),
	}
	j.Walltime = j.Run + float64(wall)/100
	return j
}

// Property: SWF round trip preserves every job field to 2 decimal places.
func TestSWFRoundTripPropertyQuick(t *testing.T) {
	f := func(users []uint8, submits []uint32, runs []uint32, procs []uint16) bool {
		n := len(users)
		for _, s := range [][]int{{len(submits)}, {len(runs)}, {len(procs)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		if n > 50 {
			n = 50
		}
		tr := New(System{Name: "Q", Kind: Hybrid, TotalCores: 8192, CoresPerNode: 8, StartHour: 3})
		for i := 0; i < n; i++ {
			j := quickJob(i, users[i], submits[i], submits[i]/2,
				runs[i], runs[i]/3, procs[i], users[i])
			if users[i]%4 == 0 {
				j.Wait = -1 // unknown-wait sentinel must survive the trip
			}
			tr.Jobs = append(tr.Jobs, j)
		}
		tr.SortBySubmit()
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			return false
		}
		got, err := ReadSWF(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], got.Jobs[i]
			if a.User != b.User || a.Procs != b.Procs || a.Status != b.Status {
				return false
			}
			for _, pair := range [][2]float64{
				{a.Submit, b.Submit}, {a.Wait, b.Wait},
				{a.Run, b.Run}, {a.Walltime, b.Walltime},
			} {
				if math.Abs(pair[0]-pair[1]) > 0.005 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round trip preserves every job field to 2 decimal places.
func TestCSVRoundTripPropertyQuick(t *testing.T) {
	f := func(users []uint8, submits []uint32, runs []uint32, procs []uint16) bool {
		n := len(users)
		for _, s := range []int{len(submits), len(runs), len(procs)} {
			if s < n {
				n = s
			}
		}
		if n > 50 {
			n = 50
		}
		sys := System{Name: "Q", Kind: DL, TotalCores: 8192}
		tr := New(sys)
		for i := 0; i < n; i++ {
			tr.Jobs = append(tr.Jobs, quickJob(i, users[i], submits[i], submits[i]/2,
				runs[i], runs[i]/3, procs[i], users[i]))
		}
		tr.SortBySubmit()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, sys)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], got.Jobs[i]
			if a.User != b.User || a.Procs != b.Procs || a.Status != b.Status {
				return false
			}
			if math.Abs(a.Run-b.Run) > 0.005 || math.Abs(a.Submit-b.Submit) > 0.005 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout for the CSV codec. CSV is the lingua
// franca of the DL traces (Philly/Helios ship as CSV), so we provide it
// alongside SWF.
var csvHeader = []string{
	"id", "user", "submit", "wait", "run", "walltime", "procs", "vc", "status",
}

// WriteCSV serializes the trace as CSV with a header row. System metadata
// is not carried by CSV; pair it with the SWF codec when you need it.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for i := range t.Jobs {
		j := &t.Jobs[i]
		rec[0] = strconv.Itoa(j.ID)
		rec[1] = strconv.Itoa(j.User)
		rec[2] = strconv.FormatFloat(j.Submit, 'f', 2, 64)
		rec[3] = strconv.FormatFloat(j.Wait, 'f', 2, 64)
		rec[4] = strconv.FormatFloat(j.Run, 'f', 2, 64)
		rec[5] = strconv.FormatFloat(j.Walltime, 'f', 2, 64)
		rec[6] = strconv.Itoa(j.Procs)
		rec[7] = strconv.Itoa(j.VC)
		rec[8] = j.Status.String()
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV into the provided system
// description (CSV does not carry one).
func ReadCSV(r io.Reader, sys System) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) == 0 {
		return New(sys), nil
	}
	t := New(sys)
	for i, rec := range rows {
		if i == 0 && rec[0] == "id" {
			continue // header
		}
		j, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	t.SortBySubmit()
	if t.System.TotalCores == 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				t.System.TotalCores = t.Jobs[i].Procs
			}
		}
	}
	return t, nil
}

func parseCSVRecord(rec []string) (Job, error) {
	var j Job
	var err error
	if j.ID, err = strconv.Atoi(rec[0]); err != nil {
		return j, fmt.Errorf("id: %w", err)
	}
	if j.User, err = strconv.Atoi(rec[1]); err != nil {
		return j, fmt.Errorf("user: %w", err)
	}
	if j.Submit, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return j, fmt.Errorf("submit: %w", err)
	}
	if j.Wait, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return j, fmt.Errorf("wait: %w", err)
	}
	if j.Run, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return j, fmt.Errorf("run: %w", err)
	}
	if j.Walltime, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return j, fmt.Errorf("walltime: %w", err)
	}
	if j.Procs, err = strconv.Atoi(rec[6]); err != nil {
		return j, fmt.Errorf("procs: %w", err)
	}
	if j.VC, err = strconv.Atoi(rec[7]); err != nil {
		return j, fmt.Errorf("vc: %w", err)
	}
	if j.Status, err = ParseStatus(rec[8]); err != nil {
		return j, err
	}
	return j, nil
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout for the CSV codec. CSV is the lingua
// franca of the DL traces (Philly/Helios ship as CSV), so we provide it
// alongside SWF.
var csvHeader = []string{
	"id", "user", "submit", "wait", "run", "walltime", "procs", "vc", "status",
}

// CSVWriter serializes jobs to CSV incrementally (streaming counterpart of
// WriteCSV). The header row is written on construction.
type CSVWriter struct {
	cw  *csv.Writer
	rec []string
	err error
}

// NewCSVWriter writes the header row and returns a writer for job records.
func NewCSVWriter(w io.Writer) *CSVWriter {
	out := &CSVWriter{cw: csv.NewWriter(w), rec: make([]string, len(csvHeader))}
	out.err = out.cw.Write(csvHeader)
	return out
}

// Write appends one job record.
func (out *CSVWriter) Write(j *Job) error {
	if out.err != nil {
		return out.err
	}
	rec := out.rec
	rec[0] = strconv.Itoa(j.ID)
	rec[1] = strconv.Itoa(j.User)
	rec[2] = strconv.FormatFloat(j.Submit, 'f', 2, 64)
	rec[3] = strconv.FormatFloat(j.Wait, 'f', 2, 64)
	rec[4] = strconv.FormatFloat(j.Run, 'f', 2, 64)
	rec[5] = strconv.FormatFloat(j.Walltime, 'f', 2, 64)
	rec[6] = strconv.Itoa(j.Procs)
	rec[7] = strconv.Itoa(j.VC)
	rec[8] = j.Status.String()
	out.err = out.cw.Write(rec)
	return out.err
}

// Flush drains the buffer and returns the first error encountered.
func (out *CSVWriter) Flush() error {
	if out.err != nil {
		return out.err
	}
	out.cw.Flush()
	out.err = out.cw.Error()
	return out.err
}

// WriteCSV serializes the trace as CSV with a header row. System metadata
// is not carried by CSV; pair it with the SWF codec when you need it.
func WriteCSV(w io.Writer, t *Trace) error {
	out := NewCSVWriter(w)
	for i := range t.Jobs {
		if err := out.Write(&t.Jobs[i]); err != nil {
			return err
		}
	}
	return out.Flush()
}

// WriteCSVStream drains s into w as CSV, returning the number of jobs
// written. Memory stays O(1) in the trace length.
func WriteCSVStream(w io.Writer, s Stream) (int, error) {
	out := NewCSVWriter(w)
	n := 0
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := out.Write(&j); err != nil {
			return n, err
		}
		n++
	}
	return n, out.Flush()
}

// ReadCSV parses a trace written by WriteCSV into the provided system
// description (CSV does not carry one). The whole file is materialized and
// sorted; use NewCSVStream for bounded-memory iteration over large,
// already-sorted files.
func ReadCSV(r io.Reader, sys System) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) == 0 {
		return New(sys), nil
	}
	t := New(sys)
	for i, rec := range rows {
		if i == 0 && rec[0] == "id" {
			continue // header
		}
		j, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	t.SortBySubmit()
	if t.System.TotalCores == 0 {
		for i := range t.Jobs {
			if t.Jobs[i].Procs > t.System.TotalCores {
				t.System.TotalCores = t.Jobs[i].Procs
			}
		}
	}
	return t, nil
}

// CSVStream reads a CSV trace one job at a time in O(1) memory. Like
// ReadCSV it takes the system description from the caller (CSV carries no
// metadata); unlike ReadCSV, which buffers and sorts, the rows must already
// be submit-sorted. IDs are re-assigned densely in stream order, exactly as
// ReadCSV's sort pass would for sorted input; errors carry 1-based row
// numbers (the header row, when present, is row 1).
type CSVStream struct {
	cr    *csv.Reader
	sys   System
	row   int // physical rows consumed
	n     int // jobs emitted
	last  float64
	done  bool
	first bool
}

// NewCSVStream returns a streaming reader over r for the given system.
func NewCSVStream(r io.Reader, sys System) *CSVStream {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	return &CSVStream{cr: cr, sys: sys, first: true}
}

// System returns the system description supplied at construction.
func (s *CSVStream) System() System { return s.sys }

// Next returns the next job, io.EOF at the end, or a row-numbered error.
func (s *CSVStream) Next() (Job, error) {
	for {
		if s.done {
			return Job{}, io.EOF
		}
		rec, err := s.cr.Read()
		if err == io.EOF {
			s.done = true
			return Job{}, io.EOF
		}
		if err != nil {
			return Job{}, fmt.Errorf("trace: csv: %w", err)
		}
		s.row++
		if s.first {
			s.first = false
			if rec[0] == "id" {
				continue // header
			}
		}
		j, err := parseCSVRecord(rec)
		if err != nil {
			return Job{}, fmt.Errorf("trace: csv row %d: %w", s.row, err)
		}
		if s.n > 0 && j.Submit < s.last {
			return Job{}, fmt.Errorf("trace: csv row %d: submit %v before previous %v (streaming needs submit-sorted input; use ReadCSV)",
				s.row, j.Submit, s.last)
		}
		s.last = j.Submit
		j.ID = s.n
		s.n++
		return j, nil
	}
}

func parseCSVRecord(rec []string) (Job, error) {
	var j Job
	var err error
	if j.ID, err = strconv.Atoi(rec[0]); err != nil {
		return j, fmt.Errorf("id: %w", err)
	}
	if j.User, err = strconv.Atoi(rec[1]); err != nil {
		return j, fmt.Errorf("user: %w", err)
	}
	if j.Submit, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return j, fmt.Errorf("submit: %w", err)
	}
	if j.Wait, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return j, fmt.Errorf("wait: %w", err)
	}
	if j.Run, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return j, fmt.Errorf("run: %w", err)
	}
	if j.Walltime, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return j, fmt.Errorf("walltime: %w", err)
	}
	if j.Procs, err = strconv.Atoi(rec[6]); err != nil {
		return j, fmt.Errorf("procs: %w", err)
	}
	if j.VC, err = strconv.Atoi(rec[7]); err != nil {
		return j, fmt.Errorf("vc: %w", err)
	}
	if j.Status, err = ParseStatus(rec[8]); err != nil {
		return j, err
	}
	return j, nil
}

package trace

import (
	"fmt"
	"sort"
)

// SystemKind distinguishes the categorization conventions the paper applies:
// HPC systems categorize job size relative to machine share, DL systems by
// absolute GPU count, and hybrid systems follow the HPC convention.
type SystemKind int

const (
	// HPC marks CPU-dominated classic supercomputers (Mira, Theta).
	HPC SystemKind = iota
	// DL marks GPU datacenters for deep learning (Philly, Helios).
	DL
	// Hybrid marks mixed CPU/GPU systems (Blue Waters).
	Hybrid
)

// String names the kind.
func (k SystemKind) String() string {
	switch k {
	case HPC:
		return "HPC"
	case DL:
		return "DL"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// System describes the machine a trace was collected on.
type System struct {
	Name string
	Kind SystemKind
	// TotalCores is the schedulable capacity in the trace's resource unit
	// (CPU cores for HPC, GPUs for DL, combined node-cores for hybrid).
	TotalCores int
	// CoresPerNode converts node counts to core counts where relevant.
	CoresPerNode int
	// VirtualClusters is the number of isolated scheduling partitions
	// (Philly has 14); 0 or 1 means a single shared pool.
	VirtualClusters int
	// StartHour is the local wall-clock hour at trace time zero, used to
	// compute the diurnal arrival pattern in local time.
	StartHour int
}

// Trace is an ordered collection of jobs plus the system description.
type Trace struct {
	System System
	Jobs   []Job
}

// New returns an empty trace for the given system.
func New(sys System) *Trace {
	return &Trace{System: sys}
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// SortBySubmit orders jobs by submission time (stable), re-assigning dense
// IDs in submit order. Generators and readers call this before analysis.
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		return t.Jobs[i].Submit < t.Jobs[j].Submit
	})
	for i := range t.Jobs {
		t.Jobs[i].ID = i
	}
}

// Validate checks every job and submit-order monotonicity.
func (t *Trace) Validate() error {
	if t.System.TotalCores <= 0 {
		return fmt.Errorf("trace: system %q has non-positive capacity", t.System.Name)
	}
	prev := 0.0
	for i := range t.Jobs {
		if err := t.Jobs[i].validate(); err != nil {
			return err
		}
		if t.Jobs[i].Submit < prev {
			return fmt.Errorf("trace: job %d out of submit order", t.Jobs[i].ID)
		}
		prev = t.Jobs[i].Submit
		if t.Jobs[i].Procs > t.System.TotalCores {
			return fmt.Errorf("trace: job %d requests %d cores > capacity %d",
				t.Jobs[i].ID, t.Jobs[i].Procs, t.System.TotalCores)
		}
	}
	return nil
}

// Duration returns the span from first submit to last completion (or last
// submit when waits are unknown). Zero for an empty trace.
func (t *Trace) Duration() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	end := 0.0
	for i := range t.Jobs {
		if e := t.Jobs[i].End(); e > end {
			end = e
		}
	}
	return end - t.Jobs[0].Submit
}

// Window returns a new trace containing jobs with from <= Submit < to,
// with submit times rebased to the window start and IDs re-densified.
// The paper uses 4-month windows to align systems (Section II-B).
func (t *Trace) Window(from, to float64) *Trace {
	out := New(t.System)
	for _, j := range t.Jobs {
		if j.Submit >= from && j.Submit < to {
			j.Submit -= from
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range out.Jobs {
		out.Jobs[i].ID = i
	}
	return out
}

// Filter returns a new trace with only the jobs for which keep returns true.
// IDs are re-densified; submit times are preserved.
func (t *Trace) Filter(keep func(Job) bool) *Trace {
	out := New(t.System)
	for _, j := range t.Jobs {
		if keep(j) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range out.Jobs {
		out.Jobs[i].ID = i
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := New(t.System)
	out.Jobs = append([]Job(nil), t.Jobs...)
	return out
}

// Users returns the set of distinct user IDs, ascending.
func (t *Trace) Users() []int {
	seen := map[int]bool{}
	for i := range t.Jobs {
		seen[t.Jobs[i].User] = true
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// JobsByUser groups job indices by user ID.
func (t *Trace) JobsByUser() map[int][]int {
	out := map[int][]int{}
	for i := range t.Jobs {
		out[t.Jobs[i].User] = append(out[t.Jobs[i].User], i)
	}
	return out
}

// TopUsersByJobCount returns up to k user IDs ordered by descending number
// of submitted jobs (ties broken by ascending user ID), as used in the
// paper's Figure 11.
func (t *Trace) TopUsersByJobCount(k int) []int {
	counts := map[int]int{}
	for i := range t.Jobs {
		counts[t.Jobs[i].User]++
	}
	users := make([]int, 0, len(counts))
	for u := range counts {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool {
		if counts[users[a]] != counts[users[b]] {
			return counts[users[a]] > counts[users[b]]
		}
		return users[a] < users[b]
	})
	if k < len(users) {
		users = users[:k]
	}
	return users
}

// Runtimes returns the runtime of every job.
func (t *Trace) Runtimes() []float64 {
	out := make([]float64, len(t.Jobs))
	for i := range t.Jobs {
		out[i] = t.Jobs[i].Run
	}
	return out
}

// Waits returns the waiting time of every job with a known wait.
func (t *Trace) Waits() []float64 {
	out := make([]float64, 0, len(t.Jobs))
	for i := range t.Jobs {
		if t.Jobs[i].Wait >= 0 {
			out = append(out, t.Jobs[i].Wait)
		}
	}
	return out
}

// Procs returns the requested cores of every job as float64 (for stats).
func (t *Trace) Procs() []float64 {
	out := make([]float64, len(t.Jobs))
	for i := range t.Jobs {
		out[i] = float64(t.Jobs[i].Procs)
	}
	return out
}

// Submits returns the submission time of every job.
func (t *Trace) Submits() []float64 {
	out := make([]float64, len(t.Jobs))
	for i := range t.Jobs {
		out[i] = t.Jobs[i].Submit
	}
	return out
}

// ArrivalIntervals returns the deltas between consecutive submissions
// (length Len()-1) assuming submit order.
func (t *Trace) ArrivalIntervals() []float64 {
	if len(t.Jobs) < 2 {
		return nil
	}
	out := make([]float64, len(t.Jobs)-1)
	for i := 1; i < len(t.Jobs); i++ {
		out[i-1] = t.Jobs[i].Submit - t.Jobs[i-1].Submit
	}
	return out
}

// TotalCoreHours returns the sum of per-job core-hours.
func (t *Trace) TotalCoreHours() float64 {
	sum := 0.0
	for i := range t.Jobs {
		sum += t.Jobs[i].CoreHours()
	}
	return sum
}

// Merge overlays other's jobs onto t's system, returning a new combined
// trace sorted by submission. The other trace's user IDs are offset past
// t's to keep populations disjoint (the returned offset lets callers tell
// the origins apart), and its VC assignments are cleared (the combined
// machine is one pool). Jobs larger than t's capacity are dropped.
func (t *Trace) Merge(other *Trace) (*Trace, int) {
	out := New(t.System)
	out.Jobs = append(out.Jobs, t.Jobs...)
	offset := 0
	for _, u := range t.Users() {
		if u >= offset {
			offset = u + 1
		}
	}
	for _, j := range other.Jobs {
		if j.Procs > t.System.TotalCores {
			continue
		}
		j.User += offset
		j.VC = -1
		out.Jobs = append(out.Jobs, j)
	}
	out.SortBySubmit()
	return out, offset
}

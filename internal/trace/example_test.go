package trace_test

import (
	"bytes"
	"fmt"

	"crosssched/internal/trace"
)

// ExampleWriteSWF round-trips a trace through the SWF codec.
func ExampleWriteSWF() {
	tr := trace.New(trace.System{
		Name: "demo", Kind: trace.HPC, TotalCores: 64, CoresPerNode: 16,
	})
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 5, Run: 100, Walltime: 200, Procs: 16, VC: -1, Status: trace.Passed},
		{User: 1, Submit: 10, Wait: 0, Run: 50, Walltime: 60, Procs: 32, VC: -1, Status: trace.Killed},
	}
	tr.SortBySubmit()

	var buf bytes.Buffer
	if err := trace.WriteSWF(&buf, tr); err != nil {
		panic(err)
	}
	back, err := trace.ReadSWF(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.System.Name, back.Len())
	fmt.Println(back.Jobs[1].Status)
	// Output:
	// demo 2
	// Killed
}

// ExampleTrace_Window aligns a trace to a time window the way the paper
// aligns its multi-year datasets.
func ExampleTrace_Window() {
	tr := trace.New(trace.System{Name: "demo", TotalCores: 4})
	for i := 0; i < 5; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i * 100), Run: 10, Procs: 1, VC: -1,
		})
	}
	w := tr.Window(100, 400)
	fmt.Println(w.Len(), w.Jobs[0].Submit)
	// Output:
	// 3 0
}

// ExampleJob_BoundedSlowdown shows the paper's bsld metric.
func ExampleJob_BoundedSlowdown() {
	short := trace.Job{Wait: 9, Run: 1} // clamped by the 10s threshold
	normal := trace.Job{Wait: 100, Run: 100}
	fmt.Println(short.BoundedSlowdown(10), normal.BoundedSlowdown(10))
	// Output:
	// 1 2
}

package trace

import (
	"bufio"
	"io"
)

// Stream is a pull iterator over a trace's jobs in submit order. It is the
// bounded-memory counterpart of Trace: million-to-ten-million-job inputs
// (Philly/Helios scale per the paper) flow through a Stream one job at a
// time instead of materializing a []Job.
//
// Contract: System is available before the first Next call (readers parse
// the header prefix eagerly); Next returns jobs with nondecreasing Submit
// and dense IDs (0,1,2,... in stream order, matching what the materialized
// readers produce for already-sorted input); the stream ends with io.EOF.
// Any other error is positional (readers report 1-based line/row numbers)
// and permanently ends the stream.
type Stream interface {
	System() System
	Next() (Job, error)
}

// SliceStream adapts an in-memory Trace to the Stream interface. Jobs are
// yielded verbatim — the trace should already be submit-sorted (readers and
// generators guarantee this) since downstream consumers rely on the Stream
// ordering contract.
type SliceStream struct {
	t *Trace
	i int
}

// NewSliceStream returns a Stream over t's jobs.
func NewSliceStream(t *Trace) *SliceStream { return &SliceStream{t: t} }

// System returns the trace's system description.
func (s *SliceStream) System() System { return s.t.System }

// Next returns the next job, or io.EOF past the end.
func (s *SliceStream) Next() (Job, error) {
	if s.i >= len(s.t.Jobs) {
		return Job{}, io.EOF
	}
	j := s.t.Jobs[s.i]
	s.i++
	return j, nil
}

// Collect drains a stream into a materialized Trace. The System is read
// after the drain so readers that discover metadata during iteration report
// their final view. Intended for tests and small inputs — it defeats the
// purpose of streaming for large traces.
func Collect(s Stream) (*Trace, error) {
	var jobs []Job
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	t := New(s.System())
	t.Jobs = jobs
	return t, nil
}

// lineReader yields lines of unbounded length with 1-based numbering. It
// replaces bufio.Scanner in the SWF path: Scanner's token limit made long
// header comments or data lines fail regardless of buffer tuning, while
// ReadSlice accumulation grows to whatever the line needs.
type lineReader struct {
	br  *bufio.Reader
	buf []byte
	n   int // lines returned so far
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// next returns the next line (newline included when present — callers trim)
// and its 1-based line number. io.EOF signals the end; a final unterminated
// line is returned before the EOF.
func (lr *lineReader) next() (string, int, error) {
	lr.buf = lr.buf[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		lr.buf = append(lr.buf, frag...)
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil:
			lr.n++
			return string(lr.buf), lr.n, nil
		case io.EOF:
			if len(lr.buf) == 0 {
				return "", lr.n, io.EOF
			}
			lr.n++
			return string(lr.buf), lr.n, nil
		default:
			return "", lr.n, err
		}
	}
}

package sim

import (
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/trace"
)

// ckTrace builds a small deterministic multi-partition workload that
// exercises queue buildup, backfilling, and promises across 3 partitions.
func ckTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{System: trace.System{
		Name: "ck", Kind: trace.HPC, TotalCores: 48, VirtualClusters: 3,
	}}
	// A pseudo-random but fixed job mix: bursts at coarse ticks so several
	// event times collide across partitions.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	submit := 0.0
	for i := 0; i < 160; i++ {
		submit += float64(next(240))
		procs := 1 << next(4)
		run := float64(60 + next(5000))
		wall := run * (1 + float64(next(9))/10)
		if next(4) == 0 {
			wall = 0 // no estimate: planner falls back to runtime
		}
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: i, User: int(next(7)), Submit: submit, Wait: -1,
			Run: run, Walltime: wall, Procs: procs, VC: int(next(4)) - 1,
			Status: trace.Passed,
		})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// sameResult asserts exact equality of two results, every field the
// simulator promises deterministic.
func ckSameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("%s: %d jobs vs %d", tag, len(got.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("%s: job %d = %+v, want %+v", tag, i, got.Jobs[i], want.Jobs[i])
		}
		if got.PromisedStart[i] != want.PromisedStart[i] {
			t.Fatalf("%s: promise %d = %v, want %v", tag, i, got.PromisedStart[i], want.PromisedStart[i])
		}
	}
	if got.AvgWait != want.AvgWait || got.AvgBsld != want.AvgBsld ||
		got.Utilization != want.Utilization || got.Makespan != want.Makespan ||
		got.Violations != want.Violations || got.ViolationDelay != want.ViolationDelay ||
		got.Backfilled != want.Backfilled || got.MaxQueueLen != want.MaxQueueLen {
		t.Fatalf("%s: aggregates %+v, want %+v", tag, got, want)
	}
	if len(got.QueueTimeline) != len(want.QueueTimeline) {
		t.Fatalf("%s: timeline %d vs %d", tag, len(got.QueueTimeline), len(want.QueueTimeline))
	}
	for i := range want.QueueTimeline {
		if got.QueueTimeline[i] != want.QueueTimeline[i] {
			t.Fatalf("%s: timeline[%d] %+v vs %+v", tag, i, got.QueueTimeline[i], want.QueueTimeline[i])
		}
	}
}

// TestCheckpointForkMatchesColdRun: pausing at a spread of points — before,
// inside, and after the arrival window — then forking must reproduce the
// cold run exactly for every policy/backfill shape.
func TestCheckpointForkMatchesColdRun(t *testing.T) {
	tr := ckTrace(t)
	span := tr.Jobs[len(tr.Jobs)-1].Submit
	opts := []Options{
		{Policy: FCFS, Backfill: EASY},
		{Policy: SJF, Backfill: Relaxed, RelaxFactor: 0.2},
		{Policy: WFP3, Backfill: Conservative},
		{Policy: Fair, Backfill: EASY, FairshareHalfLife: 3600},
		{Policy: F2, Backfill: AdaptiveRelaxed, RelaxFactor: 0.15},
		{Policy: FCFS, Backfill: NoBackfill},
	}
	for _, opt := range opts {
		opt := opt
		t.Run(opt.Policy.String()+"+"+opt.Backfill.String(), func(t *testing.T) {
			t.Parallel()
			want, err := Run(tr, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1.5} {
				ck, err := RunToCheckpoint(tr, opt, frac*span)
				if err != nil {
					t.Fatalf("pause %v: %v", frac, err)
				}
				got, err := ck.WhatIf(nil)
				if err != nil {
					t.Fatalf("pause %v: %v", frac, err)
				}
				ckSameResult(t, opt.Policy.String(), got, want)
			}
		})
	}
}

// TestCheckpointAdvanceAndExtend: feeding the trace in slices — extend,
// advance, extend — must land on the same result as one cold run of the
// full trace, and forks must not disturb the checkpoint they fork from.
func TestCheckpointAdvanceAndExtend(t *testing.T) {
	tr := ckTrace(t)
	opt := Options{Policy: SJF, Backfill: EASY}
	want, err := Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Jobs)
	cut1, cut2 := n/3, 2*n/3
	head := &trace.Trace{System: tr.System, Jobs: tr.Jobs[:cut1]}
	ck, err := RunToCheckpoint(head, opt, tr.Jobs[cut1-1].Submit/2)
	if err != nil {
		t.Fatal(err)
	}
	// Fork mid-way; its result covers only the jobs known so far.
	if _, err := ck.WhatIf(nil); err != nil {
		t.Fatal(err)
	}
	if err := ck.Extend(tr.Jobs[cut1:cut2]); err != nil {
		t.Fatal(err)
	}
	if err := ck.AdvanceTo(tr.Jobs[cut2-1].Submit); err != nil {
		t.Fatal(err)
	}
	// A second advance to an earlier time must be a no-op, not an error.
	if err := ck.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	if err := ck.Extend(tr.Jobs[cut2:]); err != nil {
		t.Fatal(err)
	}
	got, err := ck.WhatIf(nil)
	if err != nil {
		t.Fatal(err)
	}
	ckSameResult(t, "staged", got, want)
	// The checkpoint is still usable after forks: fork again, same answer.
	got2, err := ck.WhatIf(nil)
	if err != nil {
		t.Fatal(err)
	}
	ckSameResult(t, "refork", got2, want)
}

// TestCheckpointExtendRejectsPast: arrivals before the pause time or out of
// submit order must be rejected (they cannot be revised into history).
func TestCheckpointExtendRejectsPast(t *testing.T) {
	tr := ckTrace(t)
	opt := Options{Policy: FCFS, Backfill: EASY}
	ck, err := RunToCheckpoint(tr, opt, tr.Jobs[len(tr.Jobs)-1].Submit+1)
	if err != nil {
		t.Fatal(err)
	}
	late := trace.Job{ID: 999, Submit: 0, Wait: -1, Run: 10, Procs: 1, VC: 0, Status: trace.Passed}
	if err := ck.Extend([]trace.Job{late}); err == nil {
		t.Fatal("extend accepted an arrival before the pause time")
	}
	huge := trace.Job{ID: 1000, Submit: ck.PausedAt() + 1, Wait: -1, Run: 10, Procs: 1 << 20, VC: 0, Status: trace.Passed}
	if err := ck.Extend([]trace.Job{huge}); err == nil {
		t.Fatal("extend accepted a job larger than its partition")
	}
	if ck.Len() != len(tr.Jobs) {
		t.Fatalf("failed extend mutated the log: %d jobs, want %d", ck.Len(), len(tr.Jobs))
	}
}

// TestCheckpointRejectsFaults: fault injection cannot be checkpointed.
func TestCheckpointRejectsFaults(t *testing.T) {
	tr := ckTrace(t)
	opt := Options{Policy: FCFS, Backfill: EASY}
	opt.Faults = &fault.Config{MTBF: 20000, MTTR: 4000, OutageFrac: 0.2, Seed: 1}
	if _, err := RunToCheckpoint(tr, opt, 100); err == nil {
		t.Fatal("checkpoint accepted fault injection")
	}
}

// Partition-sharded parallel simulation with deterministic stitch-up.
//
// When a configuration has no cross-partition coupling, the simulation
// factors exactly: each partition's queue, reservations, and cluster state
// evolve independently, so the trace can be split by partition, each shard
// simulated on its own pooled Runner, and the outputs stitched back together
// float-for-float identical to the single-shard run. The stitcher leans on
// three invariants:
//
//   - Wave alignment. An event-loop iteration at time t processes every
//     completion with real == t and every arrival with submit <= t, and may
//     spawn further iterations at the same t (zero-runtime jobs complete the
//     instant they start). The k-th consecutive iteration at time t of a
//     shard corresponds to the k-th consecutive global iteration at t: the
//     stitcher pops one iteration record per shard per "wave" at the minimum
//     pending time, and the wave sequence reproduces the global iteration
//     sequence exactly (Metrics.Events is the wave count).
//
//   - Canonical orders. Within one iteration, completions pop in ascending
//     arrival index (the completion heap's tiebreak), arrivals are admitted
//     in ascending arrival index, and scheduling visits partitions in
//     ascending partition index. All three orders interleave across shards
//     by a stable k-way merge: completions and submits by global arrival
//     index, schedule-phase decisions (and the promise-violation float fold)
//     by partition index. Per-job rows retire in global arrival order via a
//     prefix rule over the merged completion state.
//
//   - Exact float replay. Aggregates whose value depends on float summation
//     order (AvgWait, AvgBsld, ViolationDelay, the busy-core-seconds
//     integral behind Utilization) are folded by the stitcher with the same
//     operations in the same order as the single-shard code paths
//     (result/retireStream, cluster.advance), never by combining per-shard
//     partial sums.
//
// The streaming path adds a watermark protocol so an unbounded trace can be
// demultiplexed without unbounded buffering: a reader goroutine chunks jobs
// to per-shard channels and floods a submit-time watermark to every shard on
// a fixed stride; a shard whose next arrival is not yet known may still
// process completions below its watermark horizon (horizonStream.NextBefore)
// and, when it must block, publishes a "stall floor" — a proven lower bound
// on its next record's time — so the stitcher can merge everything strictly
// below the floor while the shard waits. Floors rise as watermarks advance,
// which both bounds the stitcher's buffers (no shard can run further ahead
// than the reader) and guarantees liveness (every blocked state is broken by
// the reader's stride flush or end-of-stream).
package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"crosssched/internal/cluster"
	"crosssched/internal/obs"
	"crosssched/internal/par"
	"crosssched/internal/trace"
)

const (
	// shardChunk is the reader's per-shard batching unit and its watermark
	// stride: every shardChunk jobs read, every shard receives the current
	// watermark even if it received no jobs.
	shardChunk = 64
	// shardFlushIters caps how many iteration records a streaming shard
	// accumulates before flushing a batch to the stitcher.
	shardFlushIters = 256
)

// shardFallback reports why the configuration cannot be partition-sharded,
// or "" when it is eligible. Every rejected configuration couples partitions
// through shared mutable state (or through caller callbacks whose purity the
// engine cannot assume), which would make per-shard replay diverge from the
// global run.
func shardFallback(opt *Options, nParts int) string {
	switch {
	case nParts < 2:
		return "trace has a single partition"
	case opt.Policy == Fair:
		return "fair-share usage accounts are shared across partitions"
	case opt.Faults.Enabled():
		return "fault injection draws from cross-partition schedules and RNG streams"
	case opt.Backfill == AdaptiveRelaxed && opt.MaxQueueLen <= 0:
		return "adaptive backfill normalizes by the observed global queue length"
	case opt.CustomScore != nil:
		return "custom score callback (cross-shard purity not assumed)"
	case opt.WalltimePredictor != nil:
		return "walltime predictor callback (cross-shard purity not assumed)"
	}
	return ""
}

// shardItem is one trace job annotated with its global arrival index.
type shardItem struct {
	job  trace.Job
	gidx int
}

// shardMsgIn is one reader-to-shard message: a chunk of jobs plus the
// watermark (submit time of the last job the reader consumed). Carrying the
// watermark in-band makes the horizon guarantee race-free: when a shard sees
// wm, every job it has not yet received — on this channel or still buffered
// in the reader — has Submit >= wm.
type shardMsgIn struct {
	jobs []shardItem
	wm   float64
	err  error
}

// iterRec is one event-loop iteration of one shard, as recorded by its tap:
// everything the stitcher needs to replay the iteration's contribution to
// the global fold. The count fields index into the batch's flat rows/viol/ev
// arrays.
type iterRec struct {
	t                         float64
	queuedArr                 int32 // shard queue length after arrivals (max-queue fold)
	queuedSched               int32 // shard queue length after scheduling (timeline fold)
	busy                      int32 // shard busy cores after the iteration's ops
	nRows, nViol              int32
	nCompEv, nSubEv, nSchedEv int32
	ops                       bool // any allocate/release this iteration (busy-integral fold)
}

// shardRow is a retired row annotated with its global arrival index.
type shardRow struct {
	gidx int
	row  StreamRow
}

// shardViolation is one promise violation: the partition orders the
// cross-shard fold, the delay is the float added to ViolationDelay.
type shardViolation struct {
	part  int32
	delay float64
}

// shardBatch is a shard-to-stitcher message: a run of complete iteration
// records with their flat payload arrays, and/or a stall floor, and/or the
// shard's final state.
type shardBatch struct {
	shard int
	iters []iterRec
	rows  []shardRow
	viol  []shardViolation
	ev    []obs.Event
	evKey []int // global arrival index per event; -1 for schedule-phase events

	// floor, when hasFloor, is a guarantee that every record this shard has
	// not yet sent has time >= floor.
	floor    float64
	hasFloor bool

	// done marks the shard's last message; err/met/makespan carry its final
	// state.
	done     bool
	err      error
	met      obs.Metrics
	makespan float64
}

// shardTap records, from inside a shard's event loop, the per-iteration
// facts the stitcher needs. Its hooks are called at fixed points of
// simulator.runUntil (begin, per-completion, per-arrival, after arrivals,
// per-violation, per-dispatch, end); it doubles as the shard's obs.Observer
// (capturing the decision stream with merge keys) and as its StreamSink
// (tagging retired rows with global indices). Iteration data is staged in
// cur* scratch and committed to the batch only at endIter, so a batch can be
// flushed mid-iteration (stall) without tearing a record.
type shardTap struct {
	shard int
	evOn  bool
	// send flushes a batch to the stitcher; nil on the materialized path,
	// where the batch just accumulates and is handed over at the end.
	send  func(*shardBatch) error
	batch *shardBatch

	// gidxs maps local arrival index -> global arrival index, a deque:
	// noteAdmit appends (stream order == local arrival order), row retires
	// pop the front (rows retire in local arrival order). glo is the local
	// index of gidxs[ghead].
	gidxs []int
	ghead int
	glo   int

	cur     iterRec
	open    bool // between beginIter and endIter
	stalled bool // a stall was published; flush eagerly at next endIter
	// lastFloor is the highest stall floor published; floors are monotone
	// per shard, so equal recomputations are not re-sent.
	lastFloor float64
	key       int // gidx staged by completion/arrived for the next Observe

	curEv   []obs.Event
	curKey  []int
	curRows []shardRow
	curViol []shardViolation
}

func newShardTap(shard int, evOn bool, send func(*shardBatch) error) *shardTap {
	return &shardTap{
		shard:     shard,
		evOn:      evOn,
		send:      send,
		batch:     &shardBatch{shard: shard},
		lastFloor: math.Inf(-1),
	}
}

// noteAdmit records the global index of the next job pulled from the shard's
// stream (called by the stream itself, in delivery order).
func (t *shardTap) noteAdmit(gidx int) {
	if t.ghead > 64 && t.ghead*2 > len(t.gidxs) {
		n := copy(t.gidxs, t.gidxs[t.ghead:])
		t.gidxs = t.gidxs[:n]
		t.ghead = 0
	}
	t.gidxs = append(t.gidxs, gidx)
}

// gidxAt translates a live local arrival index to its global index.
func (t *shardTap) gidxAt(local int) int { return t.gidxs[t.ghead+(local-t.glo)] }

func (t *shardTap) beginIter(tm float64) {
	t.cur = iterRec{t: tm}
	t.open = true
}

func (t *shardTap) completion(local int) {
	t.cur.ops = true
	if t.evOn {
		t.key = t.gidxAt(local)
	}
}

func (t *shardTap) arrived(local int) {
	if t.evOn {
		t.key = t.gidxAt(local)
	}
}

func (t *shardTap) afterArrivals(queued int) { t.cur.queuedArr = int32(queued) }

func (t *shardTap) violation(part int32, delay float64) {
	t.curViol = append(t.curViol, shardViolation{part: part, delay: delay})
}

func (t *shardTap) dispatched() { t.cur.ops = true }

// Observe implements obs.Observer: completion and submit events take the
// gidx staged by the matching completion/arrived hook as their merge key;
// schedule-phase events merge by their Part field instead. Within an
// iteration the three classes are emitted contiguously in that order, so the
// stitcher consumes them as counted segments.
func (t *shardTap) Observe(e obs.Event) {
	k := -1
	switch e.Kind {
	case obs.JobComplete:
		t.cur.nCompEv++
		k = t.key
	case obs.JobSubmit:
		t.cur.nSubEv++
		k = t.key
	default:
		t.cur.nSchedEv++
	}
	t.curEv = append(t.curEv, e)
	t.curKey = append(t.curKey, k)
}

// row is the shard's StreamSink: rows retire in local arrival order, so the
// gidx deque's front is always the retiring row's global index.
func (t *shardTap) row(r StreamRow) error {
	g := t.gidxs[t.ghead]
	t.ghead++
	t.glo++
	t.curRows = append(t.curRows, shardRow{gidx: g, row: r})
	return nil
}

// endIter commits the staged iteration to the batch and flushes when the
// batch is full or a stall left the stitcher waiting for this record.
func (t *shardTap) endIter(queued, busy int) error {
	t.cur.queuedSched = int32(queued)
	t.cur.busy = int32(busy)
	t.cur.nRows = int32(len(t.curRows))
	t.cur.nViol = int32(len(t.curViol))
	b := t.batch
	b.iters = append(b.iters, t.cur)
	b.rows = append(b.rows, t.curRows...)
	b.viol = append(b.viol, t.curViol...)
	b.ev = append(b.ev, t.curEv...)
	b.evKey = append(b.evKey, t.curKey...)
	t.curRows = t.curRows[:0]
	t.curViol = t.curViol[:0]
	t.curEv = t.curEv[:0]
	t.curKey = t.curKey[:0]
	t.open = false
	if t.send != nil && (t.stalled || len(b.iters) >= shardFlushIters) {
		return t.flush(false, 0)
	}
	return nil
}

// stall publishes a floor while the shard blocks for input: no record it has
// not yet sent can have time < min(need, horizon, current open iteration's
// time). Complete iterations are flushed first so the stitcher can merge
// everything below the floor.
func (t *shardTap) stall(need, horizon float64) error {
	if t.send == nil {
		return nil
	}
	floor := need
	if horizon < floor {
		floor = horizon
	}
	if t.open && t.cur.t < floor {
		floor = t.cur.t
	}
	t.stalled = true
	if floor > t.lastFloor {
		t.lastFloor = floor
		return t.flush(true, floor)
	}
	return t.flush(false, 0)
}

// flush sends the accumulated batch (and/or a floor) to the stitcher.
func (t *shardTap) flush(hasFloor bool, floor float64) error {
	b := t.batch
	if len(b.iters) == 0 && !hasFloor {
		return nil
	}
	b.hasFloor, b.floor = hasFloor, floor
	t.batch = &shardBatch{shard: t.shard}
	if len(b.iters) > 0 {
		t.stalled = false
	}
	return t.send(b)
}

// finishBatch marks the tap's current batch as the shard's final message.
func (t *shardTap) finishBatch(res *Result, err error, met obs.Metrics) {
	b := t.batch
	b.done = true
	b.err = err
	b.met = met
	if res != nil {
		b.makespan = res.Makespan
	}
}

// gidxSliceStream feeds a shard its slice of a materialized trace, noting
// each job's global index with the tap as it is handed out.
type gidxSliceStream struct {
	sys  trace.System
	jobs []trace.Job
	idx  []int
	pos  int
	tap  *shardTap
}

func (st *gidxSliceStream) System() trace.System { return st.sys }

func (st *gidxSliceStream) Next() (trace.Job, error) {
	if st.pos >= len(st.idx) {
		return trace.Job{}, io.EOF
	}
	g := st.idx[st.pos]
	st.pos++
	st.tap.noteAdmit(g)
	return st.jobs[g], nil
}

// shardChanStream feeds a streaming shard from its reader channel. It
// implements horizonStream: NextBefore lets the shard's event loop proceed
// on completions below the watermark horizon without blocking for an arrival
// that may sit arbitrarily far behind other shards' traffic, and publishes
// stall floors through the tap while it genuinely must block.
type shardChanStream struct {
	sys  trace.System
	ch   <-chan shardMsgIn
	ictx context.Context
	tap  *shardTap

	buf     []shardItem
	head    int
	horizon float64 // every undelivered job has Submit >= horizon
	eof     bool
	err     error
}

func (st *shardChanStream) System() trace.System { return st.sys }

func (st *shardChanStream) absorb(m shardMsgIn) {
	if m.err != nil && st.err == nil {
		st.err = m.err
	}
	if m.wm > st.horizon {
		st.horizon = m.wm
	}
	if len(m.jobs) > 0 {
		if st.head == len(st.buf) {
			st.buf = st.buf[:0]
			st.head = 0
		} else if st.head > 64 && st.head*2 > len(st.buf) {
			n := copy(st.buf, st.buf[st.head:])
			st.buf = st.buf[:n]
			st.head = 0
		}
		st.buf = append(st.buf, m.jobs...)
	}
}

// NextBefore returns the shard's next job, or ok == false once the horizon
// proves no undelivered job has Submit <= need. It blocks — publishing stall
// floors — until it can do one or the other.
func (st *shardChanStream) NextBefore(need float64) (trace.Job, bool, error) {
	for {
		if st.head < len(st.buf) {
			it := st.buf[st.head]
			st.head++
			st.tap.noteAdmit(it.gidx)
			return it.job, true, nil
		}
		if st.err != nil {
			return trace.Job{}, false, st.err
		}
		if st.eof {
			return trace.Job{}, false, io.EOF
		}
		if st.horizon > need {
			// Undelivered jobs have Submit >= horizon > need: the strict
			// compare matters, because an arrival at exactly the pending
			// completion's time belongs to the same iteration.
			return trace.Job{}, false, nil
		}
		if err := st.tap.stall(need, st.horizon); err != nil {
			return trace.Job{}, false, err
		}
		select {
		case m, ok := <-st.ch:
			if !ok {
				st.eof = true
				continue
			}
			st.absorb(m)
		case <-st.ictx.Done():
			return trace.Job{}, false, st.ictx.Err()
		}
	}
}

// Next blocks for the next job unconditionally (NextBefore with an infinite
// need can only yield a job or EOF). The engine's fill() always uses
// NextBefore on this stream; Next completes the trace.Stream interface.
func (st *shardChanStream) Next() (trace.Job, error) {
	j, ok, err := st.NextBefore(math.Inf(1))
	if err != nil {
		return trace.Job{}, err
	}
	if !ok {
		return trace.Job{}, io.EOF
	}
	return j, nil
}

// shardStreamReader demultiplexes the source stream to the per-shard
// channels: jobs chunked per shard, the watermark flooded to every shard on
// a fixed stride so no shard's horizon can lag the reader by more than
// shardChunk jobs. It enforces the global stream contract (validity, submit
// order) before splitting, since no single shard sees enough to check it.
func shardStreamReader(ictx context.Context, src trace.Stream, nParts, nShards int, chans []chan shardMsgIn) {
	done := ictx.Done()
	send := func(sh int, m shardMsgIn) bool {
		select {
		case chans[sh] <- m:
			return true
		case <-done:
			return false
		}
	}
	pend := make([][]shardItem, nShards)
	var lastSubmit float64
	fail := func(err error) {
		for sh := range chans {
			m := shardMsgIn{jobs: pend[sh], wm: lastSubmit, err: err}
			pend[sh] = nil
			if !send(sh, m) {
				return
			}
			close(chans[sh])
		}
	}
	gidx := 0
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
			return
		}
		if verr := j.Validate(); verr != nil {
			fail(fmt.Errorf("sim: stream: %w", verr))
			return
		}
		if j.Submit < lastSubmit {
			fail(fmt.Errorf("sim: stream: job %d out of submit order (%v after %v)", j.ID, j.Submit, lastSubmit))
			return
		}
		lastSubmit = j.Submit
		sh := partitionOf(&j, nParts) % nShards
		if pend[sh] == nil {
			pend[sh] = make([]shardItem, 0, shardChunk)
		}
		pend[sh] = append(pend[sh], shardItem{job: j, gidx: gidx})
		gidx++
		if len(pend[sh]) >= shardChunk {
			m := shardMsgIn{jobs: pend[sh], wm: j.Submit}
			pend[sh] = nil
			if !send(sh, m) {
				return
			}
		}
		if gidx%shardChunk == 0 {
			for s := range chans {
				m := shardMsgIn{jobs: pend[s], wm: j.Submit}
				pend[s] = nil
				if !send(s, m) {
					return
				}
			}
		}
	}
	for sh := range chans {
		if len(pend[sh]) > 0 {
			if !send(sh, shardMsgIn{jobs: pend[sh], wm: lastSubmit}) {
				return
			}
		}
		close(chans[sh])
	}
}

// shardCursor is the stitcher's per-shard state: deques of pending records
// (appended by batches, consumed by waves) plus the shard's last published
// floor and last consumed queue/busy values.
type shardCursor struct {
	iters []iterRec
	ihead int
	rows  []shardRow
	rhead int
	viol  []shardViolation
	vhead int
	ev    []obs.Event
	evKey []int
	ehead int

	floor    float64
	done     bool
	err      error
	met      obs.Metrics
	makespan float64

	lastQueued int // queuedSched of the last consumed iteration
	lastBusy   int // busy of the last consumed iteration
}

// appendDeque appends records to a head-indexed deque, compacting the
// consumed prefix amortized-O(1) (same rule as jobQueue.push).
func appendDeque[T any](buf []T, head int, more []T) ([]T, int) {
	if head == len(buf) {
		buf = buf[:0]
		head = 0
	} else if head > 64 && head*2 > len(buf) {
		n := copy(buf, buf[head:])
		buf = buf[:n]
		head = 0
	}
	return append(buf, more...), head
}

// rowHeap is a min-heap of retired rows by global index, buffering rows that
// retired in their shard before the global prefix reached them.
type rowHeap struct{ items []shardRow }

func (h *rowHeap) len() int       { return len(h.items) }
func (h *rowHeap) min() *shardRow { return &h.items[0] }

func (h *rowHeap) push(r shardRow) {
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if r.gidx >= h.items[parent].gidx {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = r
}

func (h *rowHeap) pop() shardRow {
	top := h.items[0]
	n := len(h.items) - 1
	moved := h.items[n]
	h.items = h.items[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.items[r].gidx < h.items[l].gidx {
			c = r
		}
		if h.items[c].gidx >= moved.gidx {
			break
		}
		h.items[i] = h.items[c]
		i = c
	}
	h.items[i] = moved
	return top
}

// stepState is the stitcher's per-step outcome.
type stepState int

const (
	stepNeed stepState = iota // need another shard message before deciding
	stepWave                  // merged one wave
	stepDone                  // every shard done and drained
)

// stitcher folds per-shard record streams back into the single global run.
// All of its work happens on one goroutine (the caller's): observers and
// sinks see the merged stream exactly as a single-shard run would emit it.
type stitcher struct {
	nShards    int
	totalCores int
	tau        float64
	obsv       obs.Observer
	sink       StreamSink

	// collect mode (materialized runs): rows land in jobs/promised by global
	// index instead of going to a sink.
	collect  bool
	jobs     []trace.Job
	promised []float64

	cur []shardCursor

	waves          int64
	maxQueue       int
	gQueued        int // sum of lastQueued across shards
	gBusy          int // sum of lastBusy across shards
	lastAdvance    float64
	busyCS         float64
	timeline       []QueueSample
	violations     int
	violationDelay float64

	rows             rowHeap
	nextRow          int
	sumWait, sumBsld float64

	// wave scratch
	waveShards []int
	segPos     []int
	segEnd     []int
}

func newStitcher(nShards, totalCores int, tau float64, obsv obs.Observer, sink StreamSink, timelineCap int) *stitcher {
	st := &stitcher{
		nShards:    nShards,
		totalCores: totalCores,
		tau:        tau,
		obsv:       obsv,
		sink:       sink,
		cur:        make([]shardCursor, nShards),
		timeline:   make([]QueueSample, 0, timelineCap),
		waveShards: make([]int, 0, nShards),
		segPos:     make([]int, nShards),
		segEnd:     make([]int, nShards),
	}
	for i := range st.cur {
		st.cur[i].floor = math.Inf(-1)
	}
	return st
}

// setCollect switches the stitcher to materialized mode: n jobs land in
// Result.Jobs/PromisedStart (shaped exactly like result()'s output).
func (st *stitcher) setCollect(n int) {
	st.collect = true
	if n > 0 {
		st.jobs = make([]trace.Job, n)
	}
	st.promised = make([]float64, n)
}

// absorb merges one shard batch into the cursor state.
func (st *stitcher) absorb(b *shardBatch) {
	if b == nil {
		return
	}
	c := &st.cur[b.shard]
	if len(b.iters) > 0 {
		c.iters, c.ihead = appendDeque(c.iters, c.ihead, b.iters)
		c.rows, c.rhead = appendDeque(c.rows, c.rhead, b.rows)
		c.viol, c.vhead = appendDeque(c.viol, c.vhead, b.viol)
		if c.ehead == len(c.ev) {
			c.ev = c.ev[:0]
			c.evKey = c.evKey[:0]
			c.ehead = 0
		} else if c.ehead > 64 && c.ehead*2 > len(c.ev) {
			n := copy(c.ev, c.ev[c.ehead:])
			copy(c.evKey, c.evKey[c.ehead:])
			c.ev = c.ev[:n]
			c.evKey = c.evKey[:n]
			c.ehead = 0
		}
		c.ev = append(c.ev, b.ev...)
		c.evKey = append(c.evKey, b.evKey...)
	}
	if b.hasFloor && b.floor > c.floor {
		c.floor = b.floor
	}
	if b.done {
		c.done = true
		c.err = b.err
		c.met = b.met
		c.makespan = b.makespan
	}
}

// step merges the next wave if the pending state proves which shards
// participate; otherwise it reports that more shard input is needed, or that
// everything has drained.
func (st *stitcher) step() (stepState, error) {
	tmin := math.Inf(1)
	for i := range st.cur {
		c := &st.cur[i]
		if c.ihead < len(c.iters) && c.iters[c.ihead].t < tmin {
			tmin = c.iters[c.ihead].t
		}
	}
	allDone := true
	for i := range st.cur {
		c := &st.cur[i]
		if !c.done {
			allDone = false
			// A shard with no pending record can only be excluded from the
			// wave when its floor proves its next record is strictly later.
			if c.ihead == len(c.iters) && !(c.floor > tmin) {
				return stepNeed, nil
			}
		}
	}
	if math.IsInf(tmin, 1) {
		if allDone {
			return stepDone, nil
		}
		return stepNeed, nil
	}
	if err := st.runWave(tmin); err != nil {
		return stepWave, err
	}
	return stepWave, nil
}

// runWave consumes one iteration record from every shard whose head is at
// tmin, replaying the global iteration they jointly formed.
func (st *stitcher) runWave(tmin float64) error {
	ws := st.waveShards[:0]
	for i := range st.cur {
		c := &st.cur[i]
		if c.ihead < len(c.iters) && c.iters[c.ihead].t == tmin {
			ws = append(ws, i)
		}
	}
	st.waveShards = ws
	st.waves++

	// Queue-length folds: participating shards contribute this iteration's
	// counts, everyone else their last known count.
	qArr, qSched, busyPre := st.gQueued, st.gQueued, st.gBusy
	opsAny := false
	for _, i := range ws {
		c := &st.cur[i]
		ir := &c.iters[c.ihead]
		qArr += int(ir.queuedArr) - c.lastQueued
		qSched += int(ir.queuedSched) - c.lastQueued
		if ir.ops {
			opsAny = true
		}
	}

	if st.obsv != nil {
		st.emitWave(ws)
	}
	st.foldViolations(ws)

	if qArr > st.maxQueue {
		st.maxQueue = qArr
	}
	// The global cluster advances its busy integral at an iteration's first
	// allocate/release, using the busy count carried over from the previous
	// ops iteration; later ops at the same time add nothing. Same fold, same
	// floats.
	if opsAny && tmin > st.lastAdvance {
		st.busyCS += float64(busyPre) * (tmin - st.lastAdvance)
		st.lastAdvance = tmin
	}
	st.timeline = append(st.timeline, QueueSample{Time: tmin, Length: qSched})
	if len(st.timeline) >= 2*maxTimelineSamples {
		kept := st.timeline[:0]
		for i := 0; i < len(st.timeline); i += 2 {
			kept = append(kept, st.timeline[i])
		}
		st.timeline = kept
	}

	if err := st.drainRows(ws); err != nil {
		return err
	}

	for _, i := range ws {
		c := &st.cur[i]
		ir := &c.iters[c.ihead]
		st.gQueued += int(ir.queuedSched) - c.lastQueued
		st.gBusy += int(ir.busy) - c.lastBusy
		c.lastQueued = int(ir.queuedSched)
		c.lastBusy = int(ir.busy)
		c.rhead += int(ir.nRows)
		c.vhead += int(ir.nViol)
		c.ehead += int(ir.nCompEv + ir.nSubEv + ir.nSchedEv)
		c.ihead++
		// The shard's next record cannot be earlier than this one.
		if c.ihead == len(c.iters) && !c.done && tmin > c.floor {
			c.floor = tmin
		}
	}
	return nil
}

// emitWave replays the wave's decision events in global order: completions
// merged by arrival index, then submits merged by arrival index, then
// schedule-phase events merged by partition (partitions are disjoint across
// shards, so a per-event selection by Part reproduces the global ascending
// partition sweep with each shard's intra-partition order intact).
func (st *stitcher) emitWave(ws []int) {
	// Segment 0: completions; segment 1: submits (both keyed by gidx).
	base := st.segPos[:len(ws)]
	end := st.segEnd[:len(ws)]
	for k, i := range ws {
		base[k] = st.cur[i].ehead
	}
	for seg := 0; seg < 2; seg++ {
		for k, i := range ws {
			c := &st.cur[i]
			ir := &c.iters[c.ihead]
			n := int(ir.nCompEv)
			if seg == 1 {
				n = int(ir.nSubEv)
			}
			end[k] = base[k] + n
		}
		for {
			best, bestKey := -1, 0
			for k, i := range ws {
				if base[k] >= end[k] {
					continue
				}
				key := st.cur[i].evKey[base[k]]
				if best < 0 || key < bestKey {
					best, bestKey = k, key
				}
			}
			if best < 0 {
				break
			}
			st.obsv.Observe(st.cur[ws[best]].ev[base[best]])
			base[best]++
		}
	}
	// Segment 2: schedule-phase events by partition.
	for k, i := range ws {
		end[k] = base[k] + int(st.cur[i].iters[st.cur[i].ihead].nSchedEv)
	}
	for {
		best, bestPart := -1, 0
		for k, i := range ws {
			if base[k] >= end[k] {
				continue
			}
			p := st.cur[i].ev[base[k]].Part
			if best < 0 || p < bestPart {
				best, bestPart = k, p
			}
		}
		if best < 0 {
			break
		}
		st.obsv.Observe(st.cur[ws[best]].ev[base[best]])
		base[best]++
	}
}

// foldViolations adds the wave's promise-violation delays in global order
// (ascending partition; within a partition, shard emission order), exactly
// as the global schedule sweep would have accumulated them.
func (st *stitcher) foldViolations(ws []int) {
	pos := st.segPos[:len(ws)]
	end := st.segEnd[:len(ws)]
	any := false
	for k, i := range ws {
		c := &st.cur[i]
		pos[k] = c.vhead
		end[k] = c.vhead + int(c.iters[c.ihead].nViol)
		if end[k] > pos[k] {
			any = true
		}
	}
	if !any {
		return
	}
	for {
		best := -1
		var bestPart int32
		for k, i := range ws {
			if pos[k] >= end[k] {
				continue
			}
			p := st.cur[i].viol[pos[k]].part
			if best < 0 || p < bestPart {
				best, bestPart = k, p
			}
		}
		if best < 0 {
			return
		}
		v := st.cur[ws[best]].viol[pos[best]]
		st.violations++
		st.violationDelay += v.delay
		pos[best]++
	}
}

// drainRows buffers the wave's retired rows and flushes the globally
// contiguous prefix in arrival order, folding the aggregate sums with
// retireStream's exact float operations.
func (st *stitcher) drainRows(ws []int) error {
	for _, i := range ws {
		c := &st.cur[i]
		n := int(c.iters[c.ihead].nRows)
		for _, r := range c.rows[c.rhead : c.rhead+n] {
			st.rows.push(r)
		}
	}
	for st.rows.len() > 0 && st.rows.min().gidx == st.nextRow {
		r := st.rows.pop()
		w := r.row.Job.Wait
		st.sumWait += w
		run := r.row.Job.Run
		rr := run
		if rr < st.tau {
			rr = st.tau
		}
		if rr <= 0 {
			st.sumBsld++
		} else {
			bsld := (w + run) / rr
			if bsld < 1 {
				bsld = 1
			}
			st.sumBsld += bsld
		}
		if st.collect {
			st.jobs[r.gidx] = r.row.Job
			st.promised[r.gidx] = r.row.Promised
		}
		if st.sink != nil {
			if err := st.sink(r.row); err != nil {
				return fmt.Errorf("sim: stream sink failed after %d rows: %w", st.nextRow, err)
			}
		}
		st.nextRow++
	}
	return nil
}

// firstErr returns the lowest-shard-index error, if any shard failed.
func (st *stitcher) firstErr() error {
	for i := range st.cur {
		if st.cur[i].err != nil {
			return st.cur[i].err
		}
	}
	return nil
}

// finish assembles the merged Result.
func (st *stitcher) finish() (*Result, error) {
	if n := st.rows.len(); n > 0 {
		return nil, fmt.Errorf("sim: sharded stitch left %d rows unmerged (next expected arrival index %d, have %d)",
			n, st.nextRow, st.rows.min().gidx)
	}
	if st.collect && st.nextRow != len(st.jobs) {
		return nil, fmt.Errorf("sim: sharded stitch merged %d of %d rows", st.nextRow, len(st.jobs))
	}
	makespan := 0.0
	for i := range st.cur {
		if st.cur[i].makespan > makespan {
			makespan = st.cur[i].makespan
		}
	}
	var backfilled int64
	for i := range st.cur {
		backfilled += st.cur[i].met.Backfilled
	}
	res := &Result{
		Jobs:           st.jobs,
		PromisedStart:  st.promised,
		Violations:     st.violations,
		ViolationDelay: st.violationDelay,
		Backfilled:     int(backfilled),
		MaxQueueLen:    st.maxQueue,
		Makespan:       makespan,
		QueueTimeline:  st.timeline,
	}
	if n := float64(st.nextRow); n > 0 {
		res.AvgWait = st.sumWait / n
		res.AvgBsld = st.sumBsld / n
	}
	if makespan > 0 {
		// cluster.Utilization's fold: the integral's last advance always
		// lands exactly at the final completion (== makespan), so only the
		// closing division remains.
		res.Utilization = st.busyCS / (float64(st.totalCores) * makespan)
	}
	return res, nil
}

// metrics aggregates the merged run's counters. Events is the wave count
// (== the global run's iteration count); order-free counters are summed.
// The window gauges are only meaningful on the streaming path, where
// MaxWindowJobs sums the per-shard peaks (a conservative bound on peak
// resident jobs, since shard peaks need not coincide).
func (st *stitcher) metrics(streaming bool) obs.Metrics {
	m := obs.Metrics{Events: st.waves, Shards: int64(st.nShards)}
	for i := range st.cur {
		c := &st.cur[i].met
		m.Arrivals += c.Arrivals
		m.Completions += c.Completions
		m.SchedulePasses += c.SchedulePasses
		m.ScoreSorts += c.ScoreSorts
		m.ScoreCacheHits += c.ScoreCacheHits
		m.JobsStarted += c.JobsStarted
		m.Backfilled += c.Backfilled
		m.Violations += c.Violations
		m.ConsPasses += c.ConsPasses
		m.ConsKeptJobs += c.ConsKeptJobs
		m.ConsPlannedJobs += c.ConsPlannedJobs
		if streaming {
			m.MaxWindowJobs += c.MaxWindowJobs
			m.JobsRetired += c.JobsRetired
		}
	}
	return m
}

// runShardedTrace is the materialized sharded driver: split the trace by
// partition, run every shard to completion in parallel (each accumulating
// one batch), then stitch single-threaded. Callers have already verified
// eligibility via shardFallback.
func runShardedTrace(ctx context.Context, tr *trace.Trace, opt Options, nParts int) (*Result, error) {
	nShards := opt.Shards
	if nShards > nParts {
		nShards = nParts
	}
	var began time.Time
	if opt.Metrics != nil {
		began = time.Now()
	}

	// Validate partition fit up front, in trace order, so the failing job —
	// and the error — match the single-shard run's fail-fast check.
	caps := cluster.EvenPartitions(tr.System.TotalCores, nParts)
	for i := range tr.Jobs {
		p := partitionOf(&tr.Jobs[i], nParts)
		if tr.Jobs[i].Procs > caps[p] {
			return nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				tr.Jobs[i].ID, tr.Jobs[i].Procs, p, caps[p])
		}
	}

	gidxs := make([][]int, nShards)
	for i := range tr.Jobs {
		sh := partitionOf(&tr.Jobs[i], nParts) % nShards
		gidxs[sh] = append(gidxs[sh], i)
	}

	evOn := opt.Observer != nil
	batches := make([]*shardBatch, nShards)
	err := par.ForEach(ctx, nShards, func(wctx context.Context, i int) error {
		r := runnerPool.Get().(*Runner)
		defer runnerPool.Put(r)
		var met obs.Metrics
		sOpt := opt
		sOpt.Shards = 0
		sOpt.Observer = nil
		sOpt.Metrics = &met
		tap := newShardTap(i, evOn, nil)
		src := &gidxSliceStream{sys: tr.System, jobs: tr.Jobs, idx: gidxs[i], tap: tap}
		res, runErr := r.runStream(wctx, src, sOpt, tap.row, tap, "")
		if runErr != nil {
			return runErr
		}
		tap.finishBatch(res, nil, met)
		batches[i] = tap.batch
		return nil
	})
	if err != nil {
		if opt.Metrics != nil {
			*opt.Metrics = obs.Metrics{
				Shards:      int64(nShards),
				WallSeconds: time.Since(began).Seconds(),
				Canceled:    ctx.Err() != nil,
			}
		}
		return nil, err
	}

	timelineCap := 2 * len(tr.Jobs)
	if timelineCap > 2*maxTimelineSamples {
		timelineCap = 2 * maxTimelineSamples
	}
	st := newStitcher(nShards, tr.System.TotalCores, opt.BsldTau, opt.Observer, nil, timelineCap)
	st.setCollect(len(tr.Jobs))
	for i := range batches {
		st.absorb(batches[i])
	}
	for {
		state, stepErr := st.step()
		if stepErr != nil {
			return nil, stepErr
		}
		if state == stepDone {
			break
		}
		if state == stepNeed {
			return nil, fmt.Errorf("sim: sharded stitch stalled with all shards complete")
		}
	}
	res, err := st.finish()
	if err != nil {
		return nil, err
	}
	if opt.Metrics != nil {
		m := st.metrics(false)
		m.WallSeconds = time.Since(began).Seconds()
		*opt.Metrics = m
	}
	return res, nil
}

// runShardedStream is the streaming sharded driver: a reader goroutine
// demultiplexes the source to per-shard channels, one worker goroutine per
// shard runs the windowed engine over its channel stream, and the stitcher —
// on the caller's goroutine, so observers and sinks keep their single-
// goroutine contract — merges batches as they arrive. Callers have already
// verified eligibility via shardFallback.
func runShardedStream(ctx context.Context, src trace.Stream, opt Options, sink StreamSink) (*Result, error) {
	sys := src.System()
	nParts := sys.VirtualClusters
	nShards := opt.Shards
	if nShards > nParts {
		nShards = nParts
	}
	evOn := opt.Observer != nil
	var began time.Time
	if opt.Metrics != nil {
		began = time.Now()
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobChs := make([]chan shardMsgIn, nShards)
	for i := range jobChs {
		jobChs[i] = make(chan shardMsgIn, 4)
	}
	msgCh := make(chan *shardBatch, 2*nShards)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		shardStreamReader(ictx, src, nParts, nShards, jobChs)
	}()
	go func() {
		defer close(msgCh)
		// Workers must all run concurrently (a parked shard would stop
		// draining its channel and wedge the reader), so the pool size is
		// pinned to the shard count regardless of GOMAXPROCS or ctx limits.
		// Errors travel in-band as done batches; a worker never fails its
		// ForEach task, so ForEach cannot strand a sibling unstarted.
		pool := par.Pool{Workers: nShards}
		_ = pool.ForEach(ictx, nShards, func(_ context.Context, i int) error {
			runShardStreamWorker(ictx, i, sys, opt, evOn, jobChs[i], msgCh)
			return nil
		})
	}()

	st := newStitcher(nShards, sys.TotalCores, opt.BsldTau, opt.Observer, sink, 2*maxTimelineSamples)
	res, runErr := st.drainLoop(ictx, msgCh)
	cancel()
	for range msgCh {
	}
	<-readerDone
	if opt.Metrics != nil {
		m := st.metrics(true)
		m.WallSeconds = time.Since(began).Seconds()
		m.Canceled = runErr != nil && ctx.Err() != nil
		*opt.Metrics = m
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// drainLoop pumps shard messages into the stitcher until every shard is done
// (or one fails, which aborts the run — a failed shard stops consuming its
// channel, so continuing would wedge the pipeline).
func (st *stitcher) drainLoop(ictx context.Context, msgCh <-chan *shardBatch) (*Result, error) {
	for {
		state, err := st.step()
		if err != nil {
			return nil, err
		}
		switch state {
		case stepDone:
			if err := st.firstErr(); err != nil {
				return nil, err
			}
			return st.finish()
		case stepNeed:
			b, ok := <-msgCh
			if !ok {
				if err := ictx.Err(); err != nil {
					return nil, fmt.Errorf("sim: sharded run canceled: %w", err)
				}
				return nil, fmt.Errorf("sim: sharded workers exited without completing")
			}
			st.absorb(b)
			if b.done && b.err != nil {
				return nil, b.err
			}
		}
	}
}

// runShardStreamWorker runs one shard of a streaming sharded run: a pooled
// Runner over the shard's channel stream, reporting batches to msgCh and
// always terminating with a done batch.
func runShardStreamWorker(ictx context.Context, shard int, sys trace.System, opt Options, evOn bool, jobCh <-chan shardMsgIn, msgCh chan<- *shardBatch) {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	var met obs.Metrics
	sOpt := opt
	sOpt.Shards = 0
	sOpt.Observer = nil
	sOpt.Metrics = &met
	send := func(b *shardBatch) error {
		select {
		case msgCh <- b:
			return nil
		case <-ictx.Done():
			return ictx.Err()
		}
	}
	tap := newShardTap(shard, evOn, send)
	src := &shardChanStream{sys: sys, ch: jobCh, ictx: ictx, tap: tap}
	res, err := r.runStream(ictx, src, sOpt, tap.row, tap, "")
	tap.finishBatch(res, err, met)
	// A failed send means the run is being torn down; the stitcher is gone.
	select {
	case msgCh <- tap.batch:
	case <-ictx.Done():
	}
}

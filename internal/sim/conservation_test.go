package sim

import (
	"sort"
	"testing"

	"crosssched/internal/trace"
)

// verifyNoOversubscription reconstructs the schedule from per-job waits and
// checks that concurrent core usage never exceeds each partition's capacity
// at any instant — the fundamental resource-conservation invariant of any
// scheduler.
func verifyNoOversubscription(t *testing.T, tr *trace.Trace, res *Result, label string) {
	t.Helper()
	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	caps := make([]int, nParts)
	base := tr.System.TotalCores / nParts
	rem := tr.System.TotalCores % nParts
	for i := range caps {
		caps[i] = base
		if i < rem {
			caps[i]++
		}
	}

	type event struct {
		t     float64
		delta int
		part  int
	}
	var events []event
	for _, j := range res.Jobs {
		p := 0
		if nParts > 1 {
			if j.VC >= 0 && j.VC < nParts {
				p = j.VC
			} else {
				p = j.User % nParts
			}
		}
		run := j.Run
		if j.Walltime > 0 && run > j.Walltime {
			run = j.Walltime
		}
		start := j.Submit + j.Wait
		events = append(events,
			event{t: start, delta: j.Procs, part: p},
			event{t: start + run, delta: -j.Procs, part: p})
	}
	sort.Slice(events, func(a, b int) bool {
		return events[a].t < events[b].t
	})
	// Sweep in groups of near-simultaneous events (reconstructed start
	// times can differ from the simulator's clock by float ulps), applying
	// every release in a group before its allocations.
	const eps = 1e-6
	used := make([]int, nParts)
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].t <= events[i].t+eps {
			j++
		}
		for _, pass := range [2]bool{true, false} { // releases, then allocations
			for k := i; k < j; k++ {
				e := events[k]
				if (e.delta < 0) != pass {
					continue
				}
				used[e.part] += e.delta
				if used[e.part] > caps[e.part] {
					t.Fatalf("%s: partition %d oversubscribed: %d > %d at t=%v",
						label, e.part, used[e.part], caps[e.part], e.t)
				}
				if used[e.part] < 0 {
					t.Fatalf("%s: partition %d negative usage at t=%v", label, e.part, e.t)
				}
			}
		}
		i = j
	}
	for p, u := range used {
		if u != 0 {
			t.Fatalf("%s: partition %d ends with %d cores leaked", label, p, u)
		}
	}
}

// TestNoOversubscriptionAcrossConfigs is the heavyweight conservation
// check: every policy x backfill combination on a congested workload must
// produce a schedule whose reconstructed concurrent usage fits capacity.
func TestNoOversubscriptionAcrossConfigs(t *testing.T) {
	tr := randomTrace(41, 400, 48)
	for _, pol := range Policies {
		for _, bf := range []BackfillKind{NoBackfill, EASY, Conservative, Relaxed, AdaptiveRelaxed} {
			res, err := Run(tr, Options{Policy: pol, Backfill: bf, RelaxFactor: 0.15})
			if err != nil {
				t.Fatalf("%v/%v: %v", pol, bf, err)
			}
			verifyNoOversubscription(t, tr, res, pol.String()+"/"+bf.String())
		}
	}
}

// TestNoOversubscriptionPartitioned checks conservation with virtual
// clusters (the Philly configuration).
func TestNoOversubscriptionPartitioned(t *testing.T) {
	tr := trace.New(trace.System{Name: "VC", Kind: trace.DL, TotalCores: 64, VirtualClusters: 4})
	r := randomTrace(17, 300, 16) // job sizes fit a 16-core partition
	for _, j := range r.Jobs {
		j.VC = j.User % 4
		tr.Jobs = append(tr.Jobs, j)
	}
	tr.SortBySubmit()
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	verifyNoOversubscription(t, tr, res, "partitioned")
}

// TestWalltimePredictorConservation: advisory predictions (which the
// scheduler may under-plan against) must never break physical capacity.
func TestWalltimePredictorConservation(t *testing.T) {
	tr := randomTrace(23, 300, 32)
	res, err := Run(tr, Options{
		Policy: FCFS, Backfill: EASY,
		WalltimePredictor: func(j trace.Job) float64 { return j.Run * 0.25 }, // bad underestimates
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyNoOversubscription(t, tr, res, "bad-predictor")
}

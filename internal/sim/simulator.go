package sim

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"crosssched/internal/cluster"
	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Policy   Policy
	Backfill BackfillKind
	// RelaxFactor is the relaxed-backfilling threshold (the paper uses
	// 0.10): a backfill may delay the head's promised start by up to
	// RelaxFactor x the head's expected wait.
	RelaxFactor float64
	// MaxQueueLen normalizes the adaptive factor (Eq. 1). Zero means use
	// the maximum queue length observed so far during the run.
	MaxQueueLen int
	// BsldTau is the bounded-slowdown interactivity threshold in seconds
	// (default 10, per Feitelson).
	BsldTau float64
	// UseActualRuntime makes reservations use the job's actual runtime
	// instead of the requested walltime (a perfect-estimate oracle).
	UseActualRuntime bool
	// FairshareHalfLife is the usage decay half-life in seconds for the
	// Fair policy (default 24h).
	FairshareHalfLife float64
	// WalltimePredictor, when non-nil, replaces each job's requested
	// walltime with a prediction at submission time (Tsafrir-style
	// backfilling with system-generated predictions). Jobs still run
	// their true runtime; only the scheduler's planning estimate changes,
	// and a job whose true runtime exceeds the prediction is NOT killed
	// (predictions are advisory, unlike user walltimes).
	WalltimePredictor func(j trace.Job) float64
	// CustomScore, when non-nil, overrides Policy for queue ordering
	// (lower scores schedule first). Arguments are the job's planning
	// runtime estimate, requested cores, submission time, and the current
	// simulation time. Used by learned schedulers (internal/rl). It must
	// be a pure function of its arguments: the simulator caches scores
	// per scheduling pass instead of recomputing them per comparison.
	CustomScore func(reqTime float64, procs int, submit, now float64) float64
	// Observer, when non-nil, receives a structured obs.Event for every
	// scheduling decision (submit, start, complete, backfill, reservation
	// made/relaxed, promise violation), synchronously and in decision
	// order. Observers are passive: they cannot change the schedule, and
	// with Observer nil the emission sites cost one branch each and
	// allocate nothing. A non-nil observer is used from the calling
	// goroutine only; share one across concurrent runs via obs.Synced.
	Observer obs.Observer
	// Metrics, when non-nil, receives the run's counters and wall time
	// when the run finishes — including a canceled run, so partial
	// progress stays visible.
	Metrics *obs.Metrics
	// Shards asks Run/RunStream to split the trace by partition and
	// simulate up to Shards shards in parallel (each on its own pooled
	// Runner), deterministically stitching the results back together so
	// every output — per-job rows, aggregates folded in result()'s float
	// order, the queue timeline, and the decision-event stream — is
	// float-for-float identical to the single-shard run. Values <= 1 mean
	// single-shard. Configurations that couple partitions (the Fair
	// policy's shared usage accounts, fault injection, an adaptive
	// backfill normalized by the observed global queue length, or caller
	// callbacks whose purity cannot be assumed) automatically fall back
	// to the single-shard path; Metrics.ShardFallbackReason reports why.
	Shards int
	// Faults, when non-nil and enabled, injects capacity and job faults
	// into the run (see internal/fault): partitions lose cores over
	// outage windows (running jobs on the lost cores are interrupted) and
	// running attempts are cut short by a seeded status model, with
	// none/requeue/checkpoint recovery. The injection is deterministic in
	// the config, so the internal/check oracle reproduces fault runs
	// exactly. A nil or disabled config leaves the simulator bit-identical
	// to a run without the fault layer, at the cost of one nil check per
	// integration point (pinned by TestZeroFaultIdentity).
	Faults *fault.Config
}

// Result holds the outcome of a simulation.
type Result struct {
	// Jobs is a copy of the input jobs with Wait filled in (submit order).
	Jobs []trace.Job
	// AvgWait is the mean queue waiting time in seconds (paper's "wait").
	AvgWait float64
	// AvgBsld is the mean bounded slowdown (paper's "bsld").
	AvgBsld float64
	// Utilization is busy core-seconds / (capacity x makespan)
	// (paper's "util").
	Utilization float64
	// Makespan is the completion time of the last job.
	Makespan float64
	// Violations counts reserved queue-head jobs whose actual start was
	// later than their first promised start (paper's "violation").
	Violations int
	// ViolationDelay is the summed delay seconds behind promises.
	ViolationDelay float64
	// Backfilled counts jobs started ahead of a blocked queue head.
	Backfilled int
	// MaxQueueLen is the maximum waiting-queue length observed.
	MaxQueueLen int
	// QueueTimeline samples the total waiting-queue length at event
	// times (thinned to at most maxTimelineSamples points).
	QueueTimeline []QueueSample
	// PromisedStart is each job's first promised (reserved) start time,
	// aligned with Jobs; -1 for jobs that never became a blocked queue
	// head. Violations compare actual starts against these promises.
	PromisedStart []float64

	// Fault-injection outcomes; all zero when Options.Faults is disabled.
	// Interrupted counts attempts cut short, Requeued counts re-entries
	// into the waiting queue, and FaultFailed counts jobs that left the
	// system terminally failed (their copy in Jobs is marked
	// trace.Failed; they keep their first-attempt Wait in AvgWait and
	// AvgBsld). GoodputCoreSeconds is occupancy that produced retained
	// work (completions plus surviving checkpoint credit);
	// WastedCoreSeconds is occupancy lost to interruptions. Their sum
	// equals the cluster's busy integral.
	Interrupted        int
	Requeued           int
	FaultFailed        int
	GoodputCoreSeconds float64
	WastedCoreSeconds  float64
}

// QueueSample is one point of the queue-length timeline.
type QueueSample struct {
	Time   float64
	Length int
}

// maxTimelineSamples caps the timeline size for very long simulations.
const maxTimelineSamples = 4096

// maxFitBound is partState.fitBound before any queued job is counted.
const maxFitBound = math.MaxInt

// pending is a job sitting in the waiting queue. Field order is deliberate:
// the backfill scan reads (procs, reqTime, scanStamp) for every queued job
// on every pass and the queue sort reads (score, submit, idx), so each
// group sits contiguously at the front of the record to minimize cache
// lines touched per entry.
type pending struct {
	procs   int
	reqTime float64 // planning estimate (walltime, or runtime fallback)
	// scanStamp marks the backfill-scan generation that rejected this job;
	// scans of the same generation skip it (see backfillPass).
	scanStamp uint64
	score     float64 // cached policy score (dynamic policies; see sortQueue)
	submit    float64
	idx       int // index into the jobs slice
	user      int
	part      int     // partition the job is confined to
	run       float64 // effective runtime once started
	promised  float64 // first promised start time; <0 when never reserved
}

// running is a dispatched job occupying cores until end. The integer fields
// are int32 to keep the record at 32 bytes: the completion heap swaps these
// by value on every sift, and the narrower record keeps more of the heap in
// cache. The values fit comfortably (job index, core count, partition).
type running struct {
	end   float64 // expected end used for planning (start + reqTime)
	real  float64 // actual completion time (start + run)
	idx   int32
	procs int32
	part  int32
}

// completionHeap is a typed binary min-heap of running jobs ordered by
// (actual completion time, arrival index). It replaces the container/heap
// implementation: pushing a value no longer boxes it into an interface{},
// so the per-start heap allocation is gone.
//
// The arrival-index tiebreak makes the pop order of simultaneous
// completions canonical (ascending job index) instead of an artifact of
// heap arrangement. That canonical order is what lets the sharded engine
// merge per-shard completion streams back into the exact single-shard
// order: within one event time every shard's completions pop in ascending
// index, so a k-way index merge reproduces the global sequence.
type completionHeap struct {
	items []running
}

func (h *completionHeap) less(a, b *running) bool {
	if a.real != b.real {
		return a.real < b.real
	}
	return a.idx < b.idx
}

func (h *completionHeap) len() int { return len(h.items) }

// min returns the earliest completion without removing it.
func (h *completionHeap) min() *running { return &h.items[0] }

// push and pop sift with a moving hole rather than pairwise swaps: the
// element being sifted is written once at its final slot instead of twice
// per level.
func (h *completionHeap) push(r running) {
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(&r, &h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = r
}

func (h *completionHeap) pop() running {
	top := h.items[0]
	n := len(h.items) - 1
	moved := h.items[n]
	h.items = h.items[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(&h.items[r], &h.items[l]) {
			c = r
		}
		if !h.less(&h.items[c], &moved) {
			break
		}
		h.items[i] = h.items[c]
		i = c
	}
	h.items[i] = moved
	return top
}

// jobQueue is one partition's waiting queue: a slice with a live region
// [head:] so that popping the queue head — the overwhelmingly common
// removal under every policy — advances an index instead of copying the
// tail. Middle removals (backfills) shift whichever side of the removal
// point is shorter, and the dead prefix is compacted amortized-O(1) on push.
//
// stamps and procs mirror each entry's scanStamp and procs fields in queue
// order. The backfill scan visits every queued job on every pass, and with
// only the pointer slice each visit is a dependent cache miss into the
// pending arena; the mirrors turn the common skip decisions (already
// stamped, too big for the free cores) into sequential array reads, leaving
// a pointer dereference only for jobs that might actually be admitted. The
// pending fields stay authoritative: queue mutations copy the mirror
// entries alongside the pointers, stamping writes both, and the dynamic-
// policy sort refills the mirrors after reordering.
type jobQueue struct {
	buf    []*pending
	stamps []uint64
	procs  []int32
	head   int
}

func (q *jobQueue) len() int { return len(q.buf) - q.head }

func (q *jobQueue) at(i int) *pending { return q.buf[q.head+i] }

// live returns the active queue region, in queue order.
func (q *jobQueue) live() []*pending { return q.buf[q.head:] }

// liveMirrors returns the scan mirrors for the live region, parallel to
// live().
func (q *jobQueue) liveMirrors() (stamps []uint64, procs []int32) {
	return q.stamps[q.head:], q.procs[q.head:]
}

func (q *jobQueue) push(j *pending) {
	if q.head == len(q.buf) {
		// drained: recycle the whole buffer
		q.buf = q.buf[:0]
		q.stamps = q.stamps[:0]
		q.procs = q.procs[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.buf) {
		// compact the dead prefix (amortized against the head advances
		// that created it)
		n := copy(q.buf, q.buf[q.head:])
		copy(q.stamps, q.stamps[q.head:])
		copy(q.procs, q.procs[q.head:])
		q.buf = q.buf[:n]
		q.stamps = q.stamps[:n]
		q.procs = q.procs[:n]
		q.head = 0
	}
	q.buf = append(q.buf, j)
	q.stamps = append(q.stamps, j.scanStamp)
	q.procs = append(q.procs, int32(j.procs))
}

// insert places j at live position pos, shifting the cheaper side.
func (q *jobQueue) insert(pos int, j *pending) {
	abs := q.head + pos
	if q.head > 0 && pos < q.len()-pos {
		copy(q.buf[q.head-1:abs-1], q.buf[q.head:abs])
		copy(q.stamps[q.head-1:abs-1], q.stamps[q.head:abs])
		copy(q.procs[q.head-1:abs-1], q.procs[q.head:abs])
		q.head--
		q.buf[abs-1] = j
		q.stamps[abs-1] = j.scanStamp
		q.procs[abs-1] = int32(j.procs)
		return
	}
	q.buf = append(q.buf, nil)
	q.stamps = append(q.stamps, 0)
	q.procs = append(q.procs, 0)
	copy(q.buf[abs+1:], q.buf[abs:])
	copy(q.stamps[abs+1:], q.stamps[abs:])
	copy(q.procs[abs+1:], q.procs[abs:])
	q.buf[abs] = j
	q.stamps[abs] = j.scanStamp
	q.procs[abs] = int32(j.procs)
}

// remove deletes the live position pos, shifting the cheaper side.
func (q *jobQueue) remove(pos int) {
	abs := q.head + pos
	if pos < q.len()-pos-1 {
		copy(q.buf[q.head+1:abs+1], q.buf[q.head:abs])
		copy(q.stamps[q.head+1:abs+1], q.stamps[q.head:abs])
		copy(q.procs[q.head+1:abs+1], q.procs[q.head:abs])
		q.head++
		return
	}
	copy(q.buf[abs:], q.buf[abs+1:])
	copy(q.stamps[abs:], q.stamps[abs+1:])
	copy(q.procs[abs:], q.procs[abs+1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.stamps = q.stamps[:len(q.stamps)-1]
	q.procs = q.procs[:len(q.procs)-1]
}

// partState is the per-partition scheduling state.
type partState struct {
	q     jobQueue
	avail AvailSet // planned ends of running jobs, maintained incrementally
	prof  profile  // scratch availability profile, rebuilt per blocked pass
	// plan is the persistent conservative-backfilling reservation plan,
	// repaired incrementally across passes instead of rebuilt (see consplan.go).
	plan consPlan
	// Dynamic-policy score cache: the queue order is a pure function of
	// (now, fair-usage version), so the sort runs once per distinct pass
	// instead of once per schedule-loop iteration.
	sorted   bool
	sortTime float64
	sortFair int
	// Profile cache: the scratch profile stays valid until the end multiset
	// changes (profVer tracks the AvailSet version), the free count changes,
	// or time reaches the first planned end past the cached build
	// (profNextEnd) — see buildProfile.
	profValid   bool
	profVer     uint64
	profFree    int
	profNextEnd float64
	// failScan memoizes rejected backfill candidates; see backfillPass.
	failScan failScan
	scanGen  uint64 // monotone backfill-scan generation counter
	// fitBound is a lower bound on the core request of every queued job:
	// arrivals lower it and failing backfill scans recompute it exactly
	// (removals can only raise the true minimum, keeping the bound valid).
	// When free < fitBound no queued job can be dispatched, which lets
	// schedule skip the entire planning pass — see the fast reject there.
	fitBound int
	// Shadow cache: the blocked head's planned (start, minFree), reusable
	// while the cached profile holds and the head is unchanged — see
	// schedule. Cleared whenever the profile is rebuilt or mutated.
	shadowValid   bool
	shadowIdx     int
	shadowStart   float64
	shadowMinFree int
	// shadowSeedOK marks the cached shadow as a valid search seed even
	// after the profile changed: as long as only dispatches (avail.Add)
	// happened since it was computed, the profile has only lost capacity
	// pointwise, so the head's earliest start cannot move before the old
	// shadow and the search may resume there. Cleared on every completion
	// (capacity returning can move the shadow earlier). shadowNow guards
	// against reusing a seed across clock advances.
	shadowSeedOK bool
	shadowNow    float64
}

// failScan tracks the live backfill-scan memo generation: queued jobs
// stamped with the generation were examined and rejected under conditions
// no looser than the recorded (free, extra, deadline), and each
// admissibility condition is monotone, so scans under conditions at least
// as tight can skip them. See backfillPass.
type failScan struct {
	valid    bool
	stamp    uint64  // generation whose stamped jobs are provably inadmissible
	free     int     // free cores recorded by the generation's latest scan
	extra    int     // spare cores beside the head's reservation, likewise
	deadline float64 // latest admissible completion for non-extra backfills
}

// simulator is the run state.
type simulator struct {
	opt      Options
	jobs     []trace.Job
	cl       *cluster.Cluster
	parts    []partState
	pendings []pending // backing store; queue entries point into it
	compl    completionHeap
	now      float64

	// ctx/done carry cancellation; done is nil for background contexts,
	// which keeps the per-iteration check a single nil compare.
	ctx  context.Context
	done <-chan struct{}
	obsv obs.Observer
	met  obs.Metrics

	fair    *FairshareState // non-nil when Policy == Fair
	fairVer int             // bumped on every Charge; invalidates score caches

	// in is non-nil only on the streaming path (RunStream); inState is the
	// reused backing storage, winJobs/winPromised the retained window
	// buffers (see stream.go). idxBase is the arrival index of the first
	// entry of the window arrays (jobs, pendings, waits, promised): the
	// streaming path slides them forward as retired prefixes are compacted
	// away, while pending.idx and running.idx stay TRUE arrival indices —
	// the queue tie-break and completion order depend on them. Materialized
	// runs keep idxBase at 0, making every window-relative access identical
	// to the direct indexing it replaced.
	in          *streamIntake
	inState     streamIntake
	winJobs     []trace.Job
	winPromised []float64
	idxBase     int

	// flt is non-nil only when fault injection is enabled; fltState is the
	// reused backing storage (see simFault).
	flt      *simFault
	fltState simFault

	// tap is non-nil only when this simulator runs as one shard of a
	// sharded run (see shard.go): it records the per-iteration facts the
	// stitcher needs to reconstruct the global run exactly. The nil checks
	// at its call sites cost one compare each on ordinary runs.
	tap *shardTap

	next           int // next arrival index (a field so checkpoints can pause/resume)
	queued         int // total jobs waiting across partitions
	touched        []bool
	waits          []float64
	promised       []float64
	violations     int
	violationDelay float64
	backfilled     int
	maxQueueSeen   int
	started        int
	makespan       float64
	timeline       []QueueSample
}

// sampleQueue appends a queue-length sample, thinning by halving once the
// cap is reached (keeps coverage of the whole run, bounded memory).
func (s *simulator) sampleQueue(t float64) {
	s.timeline = append(s.timeline, QueueSample{Time: t, Length: s.queued})
	if len(s.timeline) >= 2*maxTimelineSamples {
		kept := s.timeline[:0]
		for i := 0; i < len(s.timeline); i += 2 {
			kept = append(kept, s.timeline[i])
		}
		s.timeline = kept
	}
}

// Run simulates scheduling of tr under opt and returns the metrics.
// The input trace is not modified. Run is safe to call concurrently
// (including on the same trace): each call checks a warm Runner out of a
// shared pool, so all mutable state is per-call and repeated runs reuse the
// simulator's working set instead of reallocating it.
func Run(tr *trace.Trace, opt Options) (*Result, error) {
	return RunContext(context.Background(), tr, opt)
}

// RunContext is Run with cancellation: the event loop checks ctx once per
// iteration and aborts with an error wrapping ctx.Err() (context.Canceled
// or context.DeadlineExceeded) as soon as the context ends. A canceled
// run still fills opt.Metrics with the progress made. Background-like
// contexts (Done() == nil) cost nothing in the loop.
func RunContext(ctx context.Context, tr *trace.Trace, opt Options) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	return r.RunContext(ctx, tr, opt)
}

// partition maps a job to its cluster partition index.
func (s *simulator) partition(j *trace.Job) int {
	return partitionOf(j, s.cl.Partitions())
}

// partitionOf is the partition mapping shared by the simulator and the
// sharded trace splitter (shard.go), which must agree exactly.
func partitionOf(j *trace.Job, nParts int) int {
	if nParts == 1 {
		return 0
	}
	if j.VC >= 0 && j.VC < nParts {
		return j.VC
	}
	// jobs without a VC in a partitioned system land by user hash
	return j.User % nParts
}

// job returns the trace job with arrival index idx. idxBase is always 0 on
// the materialized path, so there this is plain indexing; on the streaming
// path it translates the global arrival index into the sliding window.
func (s *simulator) job(idx int) *trace.Job { return &s.jobs[idx-s.idxBase] }

// run drives the event loop to completion and applies the final
// every-arrival-started invariant check.
func (s *simulator) run() error {
	if err := s.runUntil(math.Inf(1)); err != nil {
		return err
	}
	// s.next == len(s.jobs) on the materialized path here, so the check is
	// the same on both paths: every arrival must have started.
	if s.started != s.next {
		return fmt.Errorf("sim: only %d/%d jobs started (scheduler stuck)", s.started, s.next)
	}
	return nil
}

// runUntil advances the event loop until the trace is drained or the next
// event time reaches pause (exclusive: every iteration with t < pause is
// processed, none at or past it). Pausing leaves the simulator in a
// consistent mid-run state that a later runUntil call — or a Checkpoint
// clone (see checkpoint.go) — can resume from; runUntil(+Inf) is a full run.
func (s *simulator) runUntil(pause float64) error {
	for {
		// The streaming intake holds one job of lookahead: the next
		// arrival's submit time competes with completions for the next
		// event time, so it must be known before the clock can advance.
		if s.in != nil {
			if err := s.in.fill(s); err != nil {
				return s.streamReadError(s.next, err)
			}
		}
		more := s.next < len(s.jobs)
		if s.in != nil {
			more = s.in.lookOK
		}
		if !more && s.compl.len() == 0 &&
			(s.flt == nil || s.flt.next >= len(s.flt.sched.Events)) {
			break
		}
		if s.done != nil {
			if err := s.ctx.Err(); err != nil {
				total := len(s.jobs)
				if s.in != nil {
					total = s.next // arrivals seen so far; the stream is open-ended
				}
				return fmt.Errorf("sim: run canceled at t=%v after %d events (%d/%d jobs started): %w",
					s.now, s.met.Events, s.started, total, err)
			}
		}
		// choose the next event time
		t := math.Inf(1)
		if more {
			if s.in != nil {
				t = s.in.look.Submit
			} else {
				t = s.jobs[s.next].Submit
			}
		}
		if s.compl.len() > 0 && s.compl.min().real < t {
			t = s.compl.min().real
		}
		if s.flt != nil {
			if ft := s.flt.nextTime(); ft < t {
				t = ft
			}
		}
		if t >= pause {
			return nil
		}
		s.met.Events++
		s.now = t
		if s.tap != nil {
			s.tap.beginIter(t)
		}

		touched := s.touched
		for i := range touched {
			touched[i] = false
		}
		// completions at t release resources first
		for s.compl.len() > 0 && s.compl.min().real <= t {
			r := s.compl.pop()
			part, procs := int(r.part), int(r.procs)
			if err := s.cl.Release(t, part, procs); err != nil {
				return err
			}
			s.parts[part].avail.Remove(r.end, procs)
			// Returning capacity can move the blocked head's shadow
			// earlier, so the cached shadow is no longer a search seed.
			s.parts[part].shadowSeedOK = false
			// A completion before its planned end returns capacity the
			// conservative plan reserved around: record the hole so the
			// next pass re-checks which reservations it could pull
			// earlier. Completions at (or past) the planned end leave the
			// availability profile unchanged — the end just folds into the
			// base — so the plan needs no note for them.
			if s.parts[part].plan.valid && r.end > t {
				s.parts[part].plan.noteHole(r.end, procs)
			}
			if r.real > s.makespan {
				s.makespan = r.real
			}
			touched[part] = true
			if s.flt != nil {
				if s.flt.willInterrupt[r.idx] {
					// The attempt ends in a drawn interrupt at r.real, not
					// a completion: classify its occupancy and requeue or
					// fail the job.
					s.flt.willInterrupt[r.idx] = false
					s.faultInterrupted(&r, r.real, touched)
					continue
				}
				s.flt.goodput += (r.real - s.flt.lastStart[r.idx]) * float64(procs)
			}
			s.met.Completions++
			if s.tap != nil {
				s.tap.completion(int(r.idx))
			}
			if s.in != nil {
				// Mark for prefix retirement (faults are rejected on the
				// streaming path, so every heap pop lands here).
				s.in.done[int(r.idx)-s.idxBase] = true
			}
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.JobComplete, Time: r.real, Job: s.job(int(r.idx)).ID,
					Part: part, Procs: procs, Detail: r.end,
				})
			}
		}
		// capacity faults due at t apply after completions (freed cores
		// reduce the victim count) and before arrivals
		if s.flt != nil {
			if err := s.applyCapacityFaults(t, touched); err != nil {
				return err
			}
		}
		// arrivals at t join their queue
		for {
			var j *trace.Job
			var pj *pending
			if s.in != nil {
				var err error
				j, pj, err = s.streamArrival(s.next, t)
				if err != nil {
					return err
				}
				if j == nil {
					break // next arrival is later than t (or stream drained)
				}
			} else {
				if s.next >= len(s.jobs) || s.jobs[s.next].Submit > t {
					break
				}
				j = &s.jobs[s.next]
				pj = &s.pendings[s.next]
			}
			p := s.partition(j)
			reqTime := j.Walltime
			if reqTime <= 0 || s.opt.UseActualRuntime {
				reqTime = j.Run
			}
			run := j.Run
			if j.Walltime > 0 && run > j.Walltime {
				run = j.Walltime // killed at the walltime limit
			}
			if s.opt.WalltimePredictor != nil {
				if pred := s.opt.WalltimePredictor(*j); pred > 0 {
					reqTime = pred // advisory estimate; no kill at pred
				}
			}
			*pj = pending{
				idx: s.next, user: j.User, submit: j.Submit, procs: j.Procs,
				part: p, reqTime: reqTime, run: run, promised: -1,
			}
			s.enqueue(p, pj)
			s.queued++
			touched[p] = true
			s.met.Arrivals++
			if s.tap != nil {
				s.tap.arrived(s.next)
			}
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.JobSubmit, Time: j.Submit, Job: j.ID,
					Part: p, Procs: j.Procs, Detail: reqTime,
				})
			}
			s.next++
		}
		if s.queued > s.maxQueueSeen {
			s.maxQueueSeen = s.queued
		}
		if s.tap != nil {
			s.tap.afterArrivals(s.queued)
		}
		// Partitions are scheduled in index order: the Fair policy's usage
		// accounts are shared across partitions, so iteration order is
		// observable (map-order iteration here made runs nondeterministic).
		for p, hit := range touched {
			if !hit {
				continue
			}
			if err := s.schedule(p); err != nil {
				return err
			}
		}
		s.sampleQueue(t)
		// Retire the completed window prefix out to the sink: rows leave in
		// arrival order, keeping the working set O(active + lookahead).
		if s.in != nil {
			if err := s.retireStream(); err != nil {
				return err
			}
		}
		if s.tap != nil {
			if err := s.tap.endIter(s.queued, s.cl.Busy()); err != nil {
				return err
			}
		}
	}
	return nil
}

// staticOrder reports whether queue order is fixed at arrival time.
func (s *simulator) staticOrder() bool {
	return s.opt.Policy.static() && s.opt.CustomScore == nil
}

// enqueue places pj in partition p's waiting queue (ordered position under
// static policies, re-sort marker under dynamic ones) and maintains the
// partition's fit bound. Shared by the arrival path and the fault-requeue
// path so a requeued job re-enters exactly like a fresh arrival.
func (s *simulator) enqueue(p int, pj *pending) {
	if s.staticOrder() {
		s.insertSorted(p, pj)
	} else {
		s.parts[p].q.push(pj)
		s.parts[p].sorted = false
	}
	if pj.procs < s.parts[p].fitBound {
		s.parts[p].fitBound = pj.procs
	}
}

// less is the canonical queue ordering at time now: policy score, then
// submit time, then job index for determinism. It recomputes scores per
// comparison and is used only on the static arrival path (insertSorted),
// where scores are time-independent; dynamic passes sort on cached scores
// in sortQueue instead.
func (s *simulator) less(a, b *pending, now float64) bool {
	var sa, sb float64
	switch {
	case s.opt.CustomScore != nil:
		sa = s.opt.CustomScore(a.reqTime, a.procs, a.submit, now)
		sb = s.opt.CustomScore(b.reqTime, b.procs, b.submit, now)
	case s.fair != nil:
		sa, sb = s.fair.Usage(a.user, now), s.fair.Usage(b.user, now)
	default:
		sa, sb = s.opt.Policy.score(a, now), s.opt.Policy.score(b, now)
	}
	if sa != sb {
		return sa < sb
	}
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.idx < b.idx
}

// insertSorted places a pending job at its ordered position (static
// policies only — the position never changes afterwards). Arrivals come in
// submit order, so under FCFS-like orderings the new job belongs at the
// tail; checking the last entry first makes the common case one comparison,
// and when it fails the binary search proceeds over the rest.
func (s *simulator) insertSorted(p int, j *pending) {
	q := &s.parts[p].q
	live := q.live()
	n := len(live)
	if n == 0 || !s.less(j, live[n-1], s.now) {
		q.push(j)
		return
	}
	lo := sort.Search(n-1, func(i int) bool { return s.less(j, live[i], s.now) })
	// An arrival ahead of kept reservations invalidates them (positions
	// shift and the newcomer must be planned before them); entries below
	// the insertion point are untouched and survive.
	s.parts[p].plan.truncate(lo)
	q.insert(lo, j)
}

// sortQueue orders the partition queue by the policy. For static policies
// the queue is already sorted by insertSorted and this is a no-op. For
// dynamic policies the order is a pure function of the current time (and,
// under Fair, of the usage accounts), so scores are computed once per
// (partition, time, usage-version) pass, cached on the pending entries, and
// the sort is skipped entirely on repeat passes — removals preserve order.
func (s *simulator) sortQueue(p int) {
	if s.staticOrder() {
		return
	}
	ps := &s.parts[p]
	if ps.sorted && ps.sortTime == s.now && (s.fair == nil || ps.sortFair == s.fairVer) {
		s.met.ScoreCacheHits++
		return
	}
	s.met.ScoreSorts++
	live := ps.q.live()
	now := s.now
	switch {
	case s.opt.CustomScore != nil:
		for _, j := range live {
			j.score = s.opt.CustomScore(j.reqTime, j.procs, j.submit, now)
		}
	case s.fair != nil:
		for _, j := range live {
			j.score = s.fair.Usage(j.user, now)
		}
	default:
		for _, j := range live {
			j.score = s.opt.Policy.score(j, now)
		}
	}
	// The comparator is a total order (score, submit, idx), so the sorted
	// permutation is unique and neither stability nor the sort algorithm can
	// change the result; slices.SortFunc sorts without the per-call closure
	// allocations of sort.Slice.
	slices.SortFunc(live, func(ja, jb *pending) int {
		switch {
		case ja.score < jb.score:
			return -1
		case ja.score > jb.score:
			return 1
		case ja.submit < jb.submit:
			return -1
		case ja.submit > jb.submit:
			return 1
		default:
			return ja.idx - jb.idx
		}
	})
	// The sort permuted the pointer slice; refill the scan mirrors from the
	// authoritative pending fields so they stay parallel.
	stamps, procsArr := ps.q.liveMirrors()
	for i, j := range live {
		stamps[i] = j.scanStamp
		procsArr[i] = int32(j.procs)
	}
	ps.sorted = true
	ps.sortTime = now
	ps.sortFair = s.fairVer
}

// start dispatches job j from partition p's queue position pos.
func (s *simulator) start(p, pos int) {
	ps := &s.parts[p]
	j := ps.q.at(pos)
	if err := s.cl.Allocate(s.now, p, j.procs); err != nil {
		// The caller checked CanAllocate; reaching here is a bug.
		panic(fmt.Sprintf("sim: allocation invariant broken: %v", err))
	}
	// Under fault injection a job may start several times; the recorded
	// wait, the promise-violation accounting, and the unique-start count
	// belong to the FIRST attempt only. (first is constant true on the
	// zero-fault path, so these branches compile to the original code.)
	w := s.now - j.submit
	first := s.flt == nil || !s.flt.everStarted[j.idx]
	if first {
		s.waits[j.idx-s.idxBase] = w
	}
	if s.obsv != nil {
		s.obsv.Observe(obs.Event{
			Kind: obs.JobStart, Time: s.now, Job: s.job(j.idx).ID,
			Part: p, Procs: j.procs, Detail: w,
		})
		if pos > 0 {
			s.obsv.Observe(obs.Event{
				Kind: obs.Backfill, Time: s.now, Job: s.job(j.idx).ID,
				Part: p, Procs: j.procs, Detail: float64(pos),
			})
		}
		if first && j.promised >= 0 && s.now > j.promised+1e-9 {
			s.obsv.Observe(obs.Event{
				Kind: obs.PromiseViolation, Time: s.now, Job: s.job(j.idx).ID,
				Part: p, Procs: j.procs, Detail: s.now - j.promised,
			})
		}
	}
	if first && j.promised >= 0 && s.now > j.promised+1e-9 {
		s.violations++
		s.violationDelay += s.now - j.promised
		if s.tap != nil {
			s.tap.violation(int32(p), s.now-j.promised)
		}
	}
	if pos > 0 {
		s.backfilled++
	}
	if s.tap != nil {
		s.tap.dispatched()
	}
	if s.fair != nil {
		s.fair.Charge(j.user, s.now, float64(j.procs)*j.run)
		s.fairVer++
	}
	end := s.now + j.reqTime
	real := s.now + j.run
	if s.flt != nil {
		s.flt.everStarted[j.idx] = true
		s.flt.lastStart[j.idx] = s.now
		if cut, ok := s.flt.cfg.InterruptCut(j.idx, int(s.flt.attempts[j.idx]), j.run); ok {
			// The attempt ends early in an interrupt: its heap entry uses
			// the interrupt instant, and the pop path routes it to
			// faultInterrupted instead of the completion path.
			real = s.now + cut
			s.flt.willInterrupt[j.idx] = true
		}
	}
	s.compl.push(running{idx: int32(j.idx), end: end, real: real, procs: int32(j.procs), part: int32(p)})
	ps.avail.Add(end, j.procs)
	ps.q.remove(pos)
	s.queued--
	if first {
		s.started++
	}
	if real > s.makespan {
		s.makespan = real
	}
}

// schedule runs one scheduling pass for partition p at the current time.
func (s *simulator) schedule(p int) error {
	s.met.SchedulePasses++
	ps := &s.parts[p]
	for {
		if ps.q.len() == 0 {
			return nil
		}
		s.sortQueue(p)
		head := ps.q.at(0)
		if s.cl.CanAllocate(p, head.procs) {
			// Starting the head shifts every queue position, and the
			// capacity it consumes is not a plan reservation; drop the
			// conservative plan and force an rprof rebuild (the structure
			// survives — the next pass replans onto it from scratch).
			ps.plan.headStarted()
			s.start(p, 0)
			continue
		}
		if s.opt.Backfill == NoBackfill {
			// No reservations are made, so no promises to violate.
			return nil
		}
		// Fast reject: when even the smallest queued request exceeds the
		// free cores, no dispatch of any kind is possible, and with the
		// head's promise already recorded a planning pass has no other
		// observable effect (backfill verdicts only matter on admission,
		// and the conservative plan tolerates skipped passes: its repair
		// scan truncates entries whose planned start slipped into the past
		// unstarted, and capacity holes stay queued until the next real
		// pass) — skip it outright.
		if head.promised >= 0 && s.cl.Free(p) < ps.fitBound {
			return nil
		}
		// Outage-blocked head: while a capacity fault holds the partition
		// below the head's request, no reservation can be planned for it
		// (the availability profile never reaches head.procs free cores,
		// so earliestStart has no feasible answer). Degrade to a pure
		// greedy pass — start any queued job that fits the free cores,
		// with no reservation to protect — until capacity returns.
		if s.flt != nil && head.procs > s.cl.Capacity(p)-s.cl.DownCores(p) {
			started, _ := s.backfillPass(p, math.Inf(1), math.Inf(1), s.cl.Free(p))
			if !started {
				return nil
			}
			continue
		}
		// Head is blocked: plan its reservation. The answer is cached
		// alongside the profile cache: when the profile hasn't changed and
		// the head's earliest-start scan provably fails at the base segment
		// (free[0] < procs, with a later breakpoint to resume from), the
		// scan's result is independent of the query time — the search
		// immediately resumes at the first breakpoint — so as long as the
		// same head is blocked on the same build, (shadow, minFree) are
		// unchanged. Without a resume breakpoint, or when the base segment
		// admits the head on paper (cores freed by jobs running past their
		// planned end), the result tracks the clock and is not cached.
		prof := s.buildProfile(p)
		var shadow float64
		var minFree int
		if ps.shadowValid && ps.shadowIdx == head.idx {
			shadow, minFree = ps.shadowStart, ps.shadowMinFree
		} else {
			// Seed the search at the previous shadow when it is still a
			// proven lower bound (same head, same clock, only dispatches
			// since): earliestStart returns the first feasible time >= its
			// from argument, and none can exist before the seed, so the
			// result is identical to a scan from now — the infeasible
			// prefix is just skipped.
			from := s.now
			if ps.shadowSeedOK && ps.shadowIdx == head.idx &&
				ps.shadowNow == s.now && ps.shadowStart > from {
				from = ps.shadowStart
			}
			shadow, minFree = prof.earliestStart(from, head.procs, head.reqTime)
			ps.shadowValid = len(prof.times) >= 2 && prof.free[0] < head.procs
			ps.shadowIdx = head.idx
			ps.shadowStart = shadow
			ps.shadowMinFree = minFree
			ps.shadowSeedOK = true
			ps.shadowNow = s.now
		}
		if head.promised < 0 {
			head.promised = shadow
			s.promised[head.idx-s.idxBase] = shadow
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.ReservationMade, Time: s.now, Job: s.job(head.idx).ID,
					Part: p, Procs: head.procs, Detail: shadow,
				})
			}
		}
		if s.opt.Backfill == Conservative {
			// The pass reserves into its own persistent profile copy, so
			// prof — and with it the profile and shadow caches — survives;
			// any starts it makes bump the AvailSet version, which
			// invalidates them through the normal buildProfile path.
			s.conservativePass(p, prof)
			return nil
		}
		extra := minFree - head.procs
		// The relaxation budget is anchored to the head's FIRST promise,
		// so repeated backfill passes cannot compound the slip: total
		// delay stays within allowance of the original promise (Ward et
		// al.). Anything finishing before the current shadow is free.
		// base is the deadline a zero-allowance kind (EASY) would use;
		// only a backfill intruding beyond it counts as a relaxation.
		base := head.promised
		if shadow > base {
			base = shadow
		}
		deadline := head.promised + s.allowance(p, head)
		if deadline < base {
			deadline = base
		}
		started, relaxed := s.backfillPass(p, deadline, base, extra)
		if started {
			if relaxed && s.obsv != nil {
				// The admitted backfill intrudes past the head's current
				// shadow start: the promise was relaxed to let it in.
				s.obsv.Observe(obs.Event{
					Kind: obs.ReservationRelaxed, Time: s.now, Job: s.job(head.idx).ID,
					Part: p, Procs: head.procs, Detail: deadline,
				})
			}
			continue // resources changed; re-evaluate the head
		}
		return nil
	}
}

// allowance computes how far the head's promised start may slip for the
// configured backfill kind, relative to its first promise.
func (s *simulator) allowance(p int, head *pending) float64 {
	// The adaptive arm lives in its own function to keep this one under the
	// inlining budget; it is called on every blocked scheduling pass.
	switch s.opt.Backfill {
	case Relaxed:
		expectedWait := head.promised - head.submit
		if expectedWait < 0 {
			expectedWait = 0
		}
		return s.opt.RelaxFactor * expectedWait
	case AdaptiveRelaxed:
		return s.adaptiveAllowance(p, head)
	default: // EASY
		return 0
	}
}

// adaptiveAllowance scales the relaxation budget by current queue pressure.
func (s *simulator) adaptiveAllowance(p int, head *pending) float64 {
	expectedWait := head.promised - head.submit
	if expectedWait < 0 {
		expectedWait = 0
	}
	maxQ := s.opt.MaxQueueLen
	if maxQ <= 0 {
		maxQ = s.maxQueueSeen
	}
	if maxQ <= 0 {
		maxQ = 1
	}
	frac := float64(s.parts[p].q.len()) / float64(maxQ)
	if frac > 1 {
		frac = 1
	}
	return s.opt.RelaxFactor * frac * expectedWait
}

// buildProfile materializes partition p's availability profile at now into
// the partition's scratch profile. The planned ends are maintained
// incrementally by start/release (AvailSet), so a rebuild is a linear fold
// with no sorting and, in the steady state, no allocation — and rebuilds
// are themselves cached: the fold's output depends only on the end multiset
// (tracked by the AvailSet version), the free count, and which ends time
// has passed. Between builds, advancing the clock without crossing
// profNextEnd (the first planned end past the cached build) only moves the
// profile's base breakpoint, which planning queries never distinguish
// because they always start at the current time — so bursts of arrivals
// between completions reuse one build. conservativePass only reads the
// scratch profile (reservations go into its own persistent copy), so the
// cache also survives conservative passes.
func (s *simulator) buildProfile(p int) *profile {
	ps := &s.parts[p]
	free := s.cl.Free(p)
	if ps.profValid && ps.profVer == ps.avail.ver && ps.profFree == free && s.now < ps.profNextEnd {
		return &ps.prof
	}
	ps.profNextEnd = ps.avail.buildInto(&ps.prof, s.now, free)
	ps.profValid = true
	ps.profVer = ps.avail.ver
	ps.profFree = free
	ps.shadowValid = false // planning answers from the old build are stale
	return &ps.prof
}

// backfillPass tries to start one queued job (after the head) that fits now
// and either finishes before the deadline or fits inside the extra cores
// not needed by the head's reservation. started reports whether a job was
// dispatched; relaxed reports whether that job needed the relaxation
// window to be admitted (it neither fit the extra cores nor finished by
// base, the zero-allowance deadline, so only the relaxed deadline let it
// in — always false for EASY, where deadline == base).
// Rejections are memoized per job. A rejected candidate either had
// procs > free, or procs > extra and now+reqTime > deadline+1e-9; both
// conditions are monotone — free/extra/deadline tightening keeps them true,
// simulation time only advances, and float addition is monotone in rounding
// (now' >= now implies now'+reqTime >= now+reqTime) — so the rejection
// stays proven for as long as the conditions never loosen. The memo tracks
// that as a generation: each rejected job is stamped with the current
// generation, whose recorded (free, extra, deadline) ratchet tighter with
// every scan; a scan under looser conditions (more cores freed, a wider
// AdaptiveRelaxed allowance, a new head's deadline) opens a fresh
// generation, orphaning every stamp. Stamping is per job rather than a
// scanned-prefix summary because queue order follows the policy, not
// arrival order: an admitting scan examines only a prefix of positions, and
// nothing relates those positions to the jobs a later scan visits.
// Skipping provably inadmissible candidates cannot change which queue
// position holds the first admissible job, so the dispatch — and the
// relaxed verdict, computed fresh on admission — is identical to the full
// scan's. The payoff is congested queues: scans revisit each parked job
// once per generation instead of once per pass.
func (s *simulator) backfillPass(p int, deadline, base float64, extra int) (started, relaxed bool) {
	ps := &s.parts[p]
	free := s.cl.Free(p)
	fs := &ps.failScan
	if !(fs.valid && free <= fs.free && extra <= fs.extra && deadline <= fs.deadline) {
		ps.scanGen++
		fs.valid = true
		fs.stamp = ps.scanGen
	}
	fs.free, fs.extra, fs.deadline = free, extra, deadline
	stamp := fs.stamp
	live := ps.q.live()
	// The scan runs off the queue's sequential mirrors; a pending is only
	// dereferenced once a job passes the stamp and size screens and its
	// runtime must be checked. Loop invariants are hoisted by hand (the
	// stamp stores below could alias the simulator for all the compiler
	// knows, so s.now would be reloaded every iteration otherwise); the
	// epsilon sums are per-scan constants, each job's comparison unchanged.
	stamps, procsArr := ps.q.liveMirrors()
	now := s.now
	dl := deadline + 1e-9
	minProcs := int(procsArr[0]) // queue reorders can rotate the head into the body
	for pos := 1; pos < len(live); pos++ {
		pr := int(procsArr[pos])
		if pr < minProcs {
			minProcs = pr
		}
		if stamps[pos] == stamp {
			continue
		}
		if pr > free {
			stamps[pos] = stamp
			live[pos].scanStamp = stamp
			continue
		}
		c := live[pos]
		if now+c.reqTime <= dl || pr <= extra {
			relaxed = pr > extra && now+c.reqTime > base+1e-9
			s.start(p, pos)
			return true, relaxed
		}
		stamps[pos] = stamp
		c.scanStamp = stamp
	}
	// The scan visited every queued job, so the bound is exact again.
	ps.fitBound = minProcs
	return false, false
}

// result assembles the metrics.
func (s *simulator) result(tr *trace.Trace) (*Result, error) {
	res := &Result{
		Jobs:           append([]trace.Job(nil), s.jobs...),
		Violations:     s.violations,
		ViolationDelay: s.violationDelay,
		Backfilled:     s.backfilled,
		MaxQueueLen:    s.maxQueueSeen,
		Makespan:       s.makespan,
		QueueTimeline:  s.timeline,
		PromisedStart:  s.promised,
	}
	if f := s.flt; f != nil {
		res.Interrupted = f.interrupts
		res.Requeued = f.requeues
		res.FaultFailed = f.failed
		res.GoodputCoreSeconds = f.goodput
		res.WastedCoreSeconds = f.wasted
		for i := range res.Jobs {
			if f.dead[i] {
				res.Jobs[i].Status = trace.Failed
			}
		}
	}
	var sumWait, sumBsld float64
	tau := s.opt.BsldTau
	for i := range res.Jobs {
		w := s.waits[i]
		res.Jobs[i].Wait = w
		sumWait += w
		// Job.BoundedSlowdown inlined (identical branches and float ops, so
		// the sum is bit-identical); the method's by-value receiver would
		// copy the whole Job record per call on this hot summary loop.
		// Every job has started here, so wait >= 0 and turnaround = wait+run.
		run := res.Jobs[i].Run
		r := run
		if r < tau {
			r = tau
		}
		if r <= 0 {
			sumBsld++
			continue
		}
		bsld := (w + run) / r
		if bsld < 1 {
			bsld = 1
		}
		sumBsld += bsld
	}
	n := float64(len(res.Jobs))
	if n > 0 {
		res.AvgWait = sumWait / n
		res.AvgBsld = sumBsld / n
	}
	if s.makespan > 0 {
		res.Utilization = s.cl.Utilization(s.makespan)
	}
	return res, nil
}

package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"crosssched/internal/cluster"
	"crosssched/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Policy   Policy
	Backfill BackfillKind
	// RelaxFactor is the relaxed-backfilling threshold (the paper uses
	// 0.10): a backfill may delay the head's promised start by up to
	// RelaxFactor x the head's expected wait.
	RelaxFactor float64
	// MaxQueueLen normalizes the adaptive factor (Eq. 1). Zero means use
	// the maximum queue length observed so far during the run.
	MaxQueueLen int
	// BsldTau is the bounded-slowdown interactivity threshold in seconds
	// (default 10, per Feitelson).
	BsldTau float64
	// UseActualRuntime makes reservations use the job's actual runtime
	// instead of the requested walltime (a perfect-estimate oracle).
	UseActualRuntime bool
	// FairshareHalfLife is the usage decay half-life in seconds for the
	// Fair policy (default 24h).
	FairshareHalfLife float64
	// WalltimePredictor, when non-nil, replaces each job's requested
	// walltime with a prediction at submission time (Tsafrir-style
	// backfilling with system-generated predictions). Jobs still run
	// their true runtime; only the scheduler's planning estimate changes,
	// and a job whose true runtime exceeds the prediction is NOT killed
	// (predictions are advisory, unlike user walltimes).
	WalltimePredictor func(j trace.Job) float64
	// CustomScore, when non-nil, overrides Policy for queue ordering
	// (lower scores schedule first). Arguments are the job's planning
	// runtime estimate, requested cores, submission time, and the current
	// simulation time. Used by learned schedulers (internal/rl).
	CustomScore func(reqTime float64, procs int, submit, now float64) float64
}

// Result holds the outcome of a simulation.
type Result struct {
	// Jobs is a copy of the input jobs with Wait filled in (submit order).
	Jobs []trace.Job
	// AvgWait is the mean queue waiting time in seconds (paper's "wait").
	AvgWait float64
	// AvgBsld is the mean bounded slowdown (paper's "bsld").
	AvgBsld float64
	// Utilization is busy core-seconds / (capacity x makespan)
	// (paper's "util").
	Utilization float64
	// Makespan is the completion time of the last job.
	Makespan float64
	// Violations counts reserved queue-head jobs whose actual start was
	// later than their first promised start (paper's "violation").
	Violations int
	// ViolationDelay is the summed delay seconds behind promises.
	ViolationDelay float64
	// Backfilled counts jobs started ahead of a blocked queue head.
	Backfilled int
	// MaxQueueLen is the maximum waiting-queue length observed.
	MaxQueueLen int
	// QueueTimeline samples the total waiting-queue length at event
	// times (thinned to at most maxTimelineSamples points).
	QueueTimeline []QueueSample
	// PromisedStart is each job's first promised (reserved) start time,
	// aligned with Jobs; -1 for jobs that never became a blocked queue
	// head. Violations compare actual starts against these promises.
	PromisedStart []float64
}

// QueueSample is one point of the queue-length timeline.
type QueueSample struct {
	Time   float64
	Length int
}

// maxTimelineSamples caps the timeline size for very long simulations.
const maxTimelineSamples = 4096

// pending is a job sitting in the waiting queue.
type pending struct {
	idx      int // index into the jobs slice
	user     int
	submit   float64
	procs    int
	reqTime  float64 // planning estimate (walltime, or runtime fallback)
	run      float64 // effective runtime once started
	vc       int
	promised float64 // first promised start time; <0 when never reserved
}

// running is a dispatched job occupying cores until end.
type running struct {
	idx   int
	end   float64 // expected end used for planning (start + reqTime)
	real  float64 // actual completion time (start + run)
	procs int
}

// completionHeap orders running jobs by actual completion time.
type completionHeap []running

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].real < h[j].real }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(running)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// simulator is the run state.
type simulator struct {
	opt     Options
	jobs    []trace.Job
	cl      *cluster.Cluster
	queues  [][]*pending // one waiting queue per partition
	runsets []map[int]*running
	compl   completionHeap
	now     float64

	fair *FairshareState // non-nil when Policy == Fair

	waits          []float64
	promised       []float64
	violations     int
	violationDelay float64
	backfilled     int
	maxQueueSeen   int
	started        int
	makespan       float64
	timeline       []QueueSample
}

// sampleQueue appends a queue-length sample, thinning by halving once the
// cap is reached (keeps coverage of the whole run, bounded memory).
func (s *simulator) sampleQueue(t float64) {
	s.timeline = append(s.timeline, QueueSample{Time: t, Length: s.totalQueued()})
	if len(s.timeline) >= 2*maxTimelineSamples {
		kept := s.timeline[:0]
		for i := 0; i < len(s.timeline); i += 2 {
			kept = append(kept, s.timeline[i])
		}
		s.timeline = kept
	}
}

// Run simulates scheduling of tr under opt and returns the metrics.
// The input trace is not modified.
func Run(tr *trace.Trace, opt Options) (*Result, error) {
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == Relaxed || opt.Backfill == AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	var cl *cluster.Cluster
	if nParts > 1 {
		cl = cluster.NewPartitioned(cluster.EvenPartitions(tr.System.TotalCores, nParts))
	} else {
		cl = cluster.New(tr.System.TotalCores)
	}

	s := &simulator{
		opt:      opt,
		jobs:     append([]trace.Job(nil), tr.Jobs...),
		cl:       cl,
		queues:   make([][]*pending, nParts),
		runsets:  make([]map[int]*running, nParts),
		waits:    make([]float64, len(tr.Jobs)),
		promised: make([]float64, len(tr.Jobs)),
	}
	for i := range s.promised {
		s.promised[i] = -1
	}
	for p := range s.runsets {
		s.runsets[p] = map[int]*running{}
	}
	if opt.Policy == Fair {
		s.fair = NewFairshareState(opt.FairshareHalfLife)
	}

	// Validate partition fit up front so we fail fast, not mid-run.
	for i := range s.jobs {
		p := s.partition(&s.jobs[i])
		if s.jobs[i].Procs > cl.Capacity(p) {
			return nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				s.jobs[i].ID, s.jobs[i].Procs, p, cl.Capacity(p))
		}
	}

	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(tr)
}

// partition maps a job to its cluster partition index.
func (s *simulator) partition(j *trace.Job) int {
	if s.cl.Partitions() == 1 {
		return 0
	}
	if j.VC >= 0 && j.VC < s.cl.Partitions() {
		return j.VC
	}
	// jobs without a VC in a partitioned system land by user hash
	return j.User % s.cl.Partitions()
}

func (s *simulator) run() error {
	next := 0 // next arrival index
	for next < len(s.jobs) || s.compl.Len() > 0 {
		// choose the next event time
		t := math.Inf(1)
		if next < len(s.jobs) {
			t = s.jobs[next].Submit
		}
		if s.compl.Len() > 0 && s.compl[0].real < t {
			t = s.compl[0].real
		}
		s.now = t

		touched := make([]bool, len(s.queues))
		// completions at t release resources first
		for s.compl.Len() > 0 && s.compl[0].real <= t {
			r := heap.Pop(&s.compl).(running)
			p := s.partition(&s.jobs[r.idx])
			if err := s.cl.Release(t, p, r.procs); err != nil {
				return err
			}
			delete(s.runsets[p], r.idx)
			if r.real > s.makespan {
				s.makespan = r.real
			}
			touched[p] = true
		}
		// arrivals at t join their queue
		for next < len(s.jobs) && s.jobs[next].Submit <= t {
			j := &s.jobs[next]
			p := s.partition(j)
			reqTime := j.Walltime
			if reqTime <= 0 || s.opt.UseActualRuntime {
				reqTime = j.Run
			}
			run := j.Run
			if j.Walltime > 0 && run > j.Walltime {
				run = j.Walltime // killed at the walltime limit
			}
			if s.opt.WalltimePredictor != nil {
				if pred := s.opt.WalltimePredictor(*j); pred > 0 {
					reqTime = pred // advisory estimate; no kill at pred
				}
			}
			pj := &pending{
				idx: next, user: j.User, submit: j.Submit, procs: j.Procs,
				reqTime: reqTime, run: run, vc: j.VC, promised: -1,
			}
			if s.staticOrder() {
				s.insertSorted(p, pj)
			} else {
				s.queues[p] = append(s.queues[p], pj)
			}
			touched[p] = true
			next++
		}
		if q := s.totalQueued(); q > s.maxQueueSeen {
			s.maxQueueSeen = q
		}
		// Partitions are scheduled in index order: the Fair policy's usage
		// accounts are shared across partitions, so iteration order is
		// observable (map-order iteration here made runs nondeterministic).
		for p, hit := range touched {
			if !hit {
				continue
			}
			if err := s.schedule(p); err != nil {
				return err
			}
		}
		s.sampleQueue(t)
	}
	if s.started != len(s.jobs) {
		return fmt.Errorf("sim: only %d/%d jobs started (scheduler stuck)", s.started, len(s.jobs))
	}
	return nil
}

func (s *simulator) totalQueued() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// staticOrder reports whether queue order is fixed at arrival time.
func (s *simulator) staticOrder() bool {
	return s.opt.Policy.static() && s.opt.CustomScore == nil
}

// less is the canonical queue ordering at time now: policy score, then
// submit time, then job index for determinism.
func (s *simulator) less(a, b *pending, now float64) bool {
	var sa, sb float64
	switch {
	case s.opt.CustomScore != nil:
		sa = s.opt.CustomScore(a.reqTime, a.procs, a.submit, now)
		sb = s.opt.CustomScore(b.reqTime, b.procs, b.submit, now)
	case s.fair != nil:
		sa, sb = s.fair.Usage(a.user, now), s.fair.Usage(b.user, now)
	default:
		sa, sb = s.opt.Policy.score(a, now), s.opt.Policy.score(b, now)
	}
	if sa != sb {
		return sa < sb
	}
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.idx < b.idx
}

// insertSorted places a pending job at its ordered position (static
// policies only — the position never changes afterwards).
func (s *simulator) insertSorted(p int, j *pending) {
	q := s.queues[p]
	lo := sort.Search(len(q), func(i int) bool { return s.less(j, q[i], s.now) })
	q = append(q, nil)
	copy(q[lo+1:], q[lo:])
	q[lo] = j
	s.queues[p] = q
}

// sortQueue orders the partition queue by the policy. For static policies
// the queue is already sorted by insertSorted and this is a no-op.
func (s *simulator) sortQueue(p int) {
	if s.staticOrder() {
		return
	}
	q := s.queues[p]
	now := s.now
	sort.SliceStable(q, func(a, b int) bool { return s.less(q[a], q[b], now) })
}

// start dispatches job j from partition p's queue position pos.
func (s *simulator) start(p, pos int) {
	q := s.queues[p]
	j := q[pos]
	if err := s.cl.Allocate(s.now, p, j.procs); err != nil {
		// The caller checked CanAllocate; reaching here is a bug.
		panic(fmt.Sprintf("sim: allocation invariant broken: %v", err))
	}
	s.waits[j.idx] = s.now - j.submit
	if j.promised >= 0 && s.now > j.promised+1e-9 {
		s.violations++
		s.violationDelay += s.now - j.promised
	}
	if pos > 0 {
		s.backfilled++
	}
	if s.fair != nil {
		s.fair.Charge(j.user, s.now, float64(j.procs)*j.run)
	}
	r := &running{idx: j.idx, end: s.now + j.reqTime, real: s.now + j.run, procs: j.procs}
	s.runsets[p][j.idx] = r
	heap.Push(&s.compl, *r)
	s.queues[p] = append(q[:pos], q[pos+1:]...)
	s.started++
	if r.real > s.makespan {
		s.makespan = r.real
	}
}

// schedule runs one scheduling pass for partition p at the current time.
func (s *simulator) schedule(p int) error {
	for {
		if len(s.queues[p]) == 0 {
			return nil
		}
		s.sortQueue(p)
		head := s.queues[p][0]
		if s.cl.CanAllocate(p, head.procs) {
			s.start(p, 0)
			continue
		}
		if s.opt.Backfill == NoBackfill {
			// No reservations are made, so no promises to violate.
			return nil
		}
		// Head is blocked: plan its reservation.
		prof := s.buildProfile(p)
		shadow, minFree := prof.earliestStart(s.now, head.procs, head.reqTime)
		if head.promised < 0 {
			head.promised = shadow
			s.promised[head.idx] = shadow
		}
		if s.opt.Backfill == Conservative {
			s.conservativePass(p, prof)
			return nil
		}
		extra := minFree - head.procs
		// The relaxation budget is anchored to the head's FIRST promise,
		// so repeated backfill passes cannot compound the slip: total
		// delay stays within allowance of the original promise (Ward et
		// al.). Anything finishing before the current shadow is free.
		deadline := head.promised + s.allowance(p, head)
		if shadow > deadline {
			deadline = shadow
		}
		if s.backfillPass(p, deadline, extra) {
			continue // resources changed; re-evaluate the head
		}
		return nil
	}
}

// allowance computes how far the head's promised start may slip for the
// configured backfill kind, relative to its first promise.
func (s *simulator) allowance(p int, head *pending) float64 {
	expectedWait := head.promised - head.submit
	if expectedWait < 0 {
		expectedWait = 0
	}
	switch s.opt.Backfill {
	case Relaxed:
		return s.opt.RelaxFactor * expectedWait
	case AdaptiveRelaxed:
		maxQ := s.opt.MaxQueueLen
		if maxQ <= 0 {
			maxQ = s.maxQueueSeen
		}
		if maxQ <= 0 {
			maxQ = 1
		}
		frac := float64(len(s.queues[p])) / float64(maxQ)
		if frac > 1 {
			frac = 1
		}
		return s.opt.RelaxFactor * frac * expectedWait
	default: // EASY
		return 0
	}
}

// buildProfile constructs the availability profile for partition p at now.
// Running jobs are visited in job-index order (not map order) so equal-end
// ties sort identically on every run and the profile is deterministic.
func (s *simulator) buildProfile(p int) *profile {
	idxs := make([]int, 0, len(s.runsets[p]))
	for idx := range s.runsets[p] {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	ends := make([]jobEnd, 0, len(idxs))
	for _, idx := range idxs {
		r := s.runsets[p][idx]
		ends = append(ends, jobEnd{end: r.end, procs: r.procs})
	}
	return newProfile(s.now, s.cl.Free(p), ends)
}

// backfillPass tries to start one queued job (after the head) that fits now
// and either finishes before the deadline or fits inside the extra cores
// not needed by the head's reservation. Returns true if a job started.
func (s *simulator) backfillPass(p int, deadline float64, extra int) bool {
	q := s.queues[p]
	for pos := 1; pos < len(q); pos++ {
		c := q[pos]
		if !s.cl.CanAllocate(p, c.procs) {
			continue
		}
		if s.now+c.reqTime <= deadline+1e-9 || c.procs <= extra {
			s.start(p, pos)
			return true
		}
	}
	return false
}

// conservativePass plans a reservation for every queued job in priority
// order and starts those whose planned start is now.
func (s *simulator) conservativePass(p int, prof *profile) {
	// Plan on a copy of the queue order; starting jobs mutates the queue.
	planned := make([]struct {
		pos   int
		start float64
	}, 0, len(s.queues[p]))
	for pos := 0; pos < len(s.queues[p]); pos++ {
		c := s.queues[p][pos]
		st, _ := prof.earliestStart(s.now, c.procs, c.reqTime)
		prof.reserve(st, c.reqTime, c.procs)
		planned = append(planned, struct {
			pos   int
			start float64
		}{pos, st})
	}
	// Start immediately-startable jobs; iterate descending position so
	// earlier removals don't shift later indices.
	for i := len(planned) - 1; i >= 0; i-- {
		if planned[i].start <= s.now+1e-9 && s.cl.CanAllocate(p, s.queues[p][planned[i].pos].procs) {
			s.start(p, planned[i].pos)
		}
	}
}

// result assembles the metrics.
func (s *simulator) result(tr *trace.Trace) (*Result, error) {
	res := &Result{
		Jobs:           append([]trace.Job(nil), s.jobs...),
		Violations:     s.violations,
		ViolationDelay: s.violationDelay,
		Backfilled:     s.backfilled,
		MaxQueueLen:    s.maxQueueSeen,
		Makespan:       s.makespan,
		QueueTimeline:  s.timeline,
		PromisedStart:  s.promised,
	}
	var sumWait, sumBsld float64
	for i := range res.Jobs {
		res.Jobs[i].Wait = s.waits[i]
		sumWait += s.waits[i]
		sumBsld += res.Jobs[i].BoundedSlowdown(s.opt.BsldTau)
	}
	n := float64(len(res.Jobs))
	if n > 0 {
		res.AvgWait = sumWait / n
		res.AvgBsld = sumBsld / n
	}
	if s.makespan > 0 {
		res.Utilization = s.cl.Utilization(s.makespan)
	}
	return res, nil
}

package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"crosssched/internal/cluster"
	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	Policy   Policy
	Backfill BackfillKind
	// RelaxFactor is the relaxed-backfilling threshold (the paper uses
	// 0.10): a backfill may delay the head's promised start by up to
	// RelaxFactor x the head's expected wait.
	RelaxFactor float64
	// MaxQueueLen normalizes the adaptive factor (Eq. 1). Zero means use
	// the maximum queue length observed so far during the run.
	MaxQueueLen int
	// BsldTau is the bounded-slowdown interactivity threshold in seconds
	// (default 10, per Feitelson).
	BsldTau float64
	// UseActualRuntime makes reservations use the job's actual runtime
	// instead of the requested walltime (a perfect-estimate oracle).
	UseActualRuntime bool
	// FairshareHalfLife is the usage decay half-life in seconds for the
	// Fair policy (default 24h).
	FairshareHalfLife float64
	// WalltimePredictor, when non-nil, replaces each job's requested
	// walltime with a prediction at submission time (Tsafrir-style
	// backfilling with system-generated predictions). Jobs still run
	// their true runtime; only the scheduler's planning estimate changes,
	// and a job whose true runtime exceeds the prediction is NOT killed
	// (predictions are advisory, unlike user walltimes).
	WalltimePredictor func(j trace.Job) float64
	// CustomScore, when non-nil, overrides Policy for queue ordering
	// (lower scores schedule first). Arguments are the job's planning
	// runtime estimate, requested cores, submission time, and the current
	// simulation time. Used by learned schedulers (internal/rl). It must
	// be a pure function of its arguments: the simulator caches scores
	// per scheduling pass instead of recomputing them per comparison.
	CustomScore func(reqTime float64, procs int, submit, now float64) float64
	// Observer, when non-nil, receives a structured obs.Event for every
	// scheduling decision (submit, start, complete, backfill, reservation
	// made/relaxed, promise violation), synchronously and in decision
	// order. Observers are passive: they cannot change the schedule, and
	// with Observer nil the emission sites cost one branch each and
	// allocate nothing. A non-nil observer is used from the calling
	// goroutine only; share one across concurrent runs via obs.Synced.
	Observer obs.Observer
	// Metrics, when non-nil, receives the run's counters and wall time
	// when the run finishes — including a canceled run, so partial
	// progress stays visible.
	Metrics *obs.Metrics
}

// Result holds the outcome of a simulation.
type Result struct {
	// Jobs is a copy of the input jobs with Wait filled in (submit order).
	Jobs []trace.Job
	// AvgWait is the mean queue waiting time in seconds (paper's "wait").
	AvgWait float64
	// AvgBsld is the mean bounded slowdown (paper's "bsld").
	AvgBsld float64
	// Utilization is busy core-seconds / (capacity x makespan)
	// (paper's "util").
	Utilization float64
	// Makespan is the completion time of the last job.
	Makespan float64
	// Violations counts reserved queue-head jobs whose actual start was
	// later than their first promised start (paper's "violation").
	Violations int
	// ViolationDelay is the summed delay seconds behind promises.
	ViolationDelay float64
	// Backfilled counts jobs started ahead of a blocked queue head.
	Backfilled int
	// MaxQueueLen is the maximum waiting-queue length observed.
	MaxQueueLen int
	// QueueTimeline samples the total waiting-queue length at event
	// times (thinned to at most maxTimelineSamples points).
	QueueTimeline []QueueSample
	// PromisedStart is each job's first promised (reserved) start time,
	// aligned with Jobs; -1 for jobs that never became a blocked queue
	// head. Violations compare actual starts against these promises.
	PromisedStart []float64
}

// QueueSample is one point of the queue-length timeline.
type QueueSample struct {
	Time   float64
	Length int
}

// maxTimelineSamples caps the timeline size for very long simulations.
const maxTimelineSamples = 4096

// pending is a job sitting in the waiting queue.
type pending struct {
	idx      int // index into the jobs slice
	user     int
	submit   float64
	procs    int
	part     int     // partition the job is confined to
	reqTime  float64 // planning estimate (walltime, or runtime fallback)
	run      float64 // effective runtime once started
	promised float64 // first promised start time; <0 when never reserved
	score    float64 // cached policy score (dynamic policies; see sortQueue)
}

// running is a dispatched job occupying cores until end.
type running struct {
	idx   int
	end   float64 // expected end used for planning (start + reqTime)
	real  float64 // actual completion time (start + run)
	procs int
	part  int
}

// completionHeap is a typed binary min-heap of running jobs ordered by
// actual completion time. It replaces the container/heap implementation:
// pushing a value no longer boxes it into an interface{}, so the per-start
// heap allocation is gone.
type completionHeap struct {
	items []running
}

func (h *completionHeap) len() int { return len(h.items) }

// min returns the earliest completion without removing it.
func (h *completionHeap) min() *running { return &h.items[0] }

func (h *completionHeap) push(r running) {
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].real <= h.items[i].real {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *completionHeap) pop() running {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].real < h.items[small].real {
			small = l
		}
		if r < n && h.items[r].real < h.items[small].real {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// jobQueue is one partition's waiting queue: a slice with a live region
// [head:] so that popping the queue head — the overwhelmingly common
// removal under every policy — advances an index instead of copying the
// tail. Middle removals (backfills) shift whichever side of the removal
// point is shorter, and the dead prefix is compacted amortized-O(1) on push.
type jobQueue struct {
	buf  []*pending
	head int
}

func (q *jobQueue) len() int { return len(q.buf) - q.head }

func (q *jobQueue) at(i int) *pending { return q.buf[q.head+i] }

// live returns the active queue region, in queue order.
func (q *jobQueue) live() []*pending { return q.buf[q.head:] }

func (q *jobQueue) push(j *pending) {
	if q.head == len(q.buf) {
		// drained: recycle the whole buffer
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.buf) {
		// compact the dead prefix (amortized against the head advances
		// that created it)
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, j)
}

// insert places j at live position pos, shifting the cheaper side.
func (q *jobQueue) insert(pos int, j *pending) {
	abs := q.head + pos
	if q.head > 0 && pos < q.len()-pos {
		copy(q.buf[q.head-1:abs-1], q.buf[q.head:abs])
		q.head--
		q.buf[abs-1] = j
		return
	}
	q.buf = append(q.buf, nil)
	copy(q.buf[abs+1:], q.buf[abs:])
	q.buf[abs] = j
}

// remove deletes the live position pos, shifting the cheaper side.
func (q *jobQueue) remove(pos int) {
	abs := q.head + pos
	if pos < q.len()-pos-1 {
		copy(q.buf[q.head+1:abs+1], q.buf[q.head:abs])
		q.head++
		return
	}
	copy(q.buf[abs:], q.buf[abs+1:])
	q.buf = q.buf[:len(q.buf)-1]
}

// partState is the per-partition scheduling state.
type partState struct {
	q     jobQueue
	avail AvailSet // planned ends of running jobs, maintained incrementally
	prof  profile  // scratch availability profile, rebuilt per blocked pass
	// planned is conservativePass's scratch reservation plan.
	planned []plannedStart
	// Dynamic-policy score cache: the queue order is a pure function of
	// (now, fair-usage version), so the sort runs once per distinct pass
	// instead of once per schedule-loop iteration.
	sorted   bool
	sortTime float64
	sortFair int
}

// plannedStart is one conservative-backfilling reservation decision.
type plannedStart struct {
	pos   int
	start float64
}

// simulator is the run state.
type simulator struct {
	opt      Options
	jobs     []trace.Job
	cl       *cluster.Cluster
	parts    []partState
	pendings []pending // backing store; queue entries point into it
	compl    completionHeap
	now      float64

	// ctx/done carry cancellation; done is nil for background contexts,
	// which keeps the per-iteration check a single nil compare.
	ctx  context.Context
	done <-chan struct{}
	obsv obs.Observer
	met  obs.Metrics

	fair    *FairshareState // non-nil when Policy == Fair
	fairVer int             // bumped on every Charge; invalidates score caches

	queued         int // total jobs waiting across partitions
	touched        []bool
	waits          []float64
	promised       []float64
	violations     int
	violationDelay float64
	backfilled     int
	maxQueueSeen   int
	started        int
	makespan       float64
	timeline       []QueueSample
}

// sampleQueue appends a queue-length sample, thinning by halving once the
// cap is reached (keeps coverage of the whole run, bounded memory).
func (s *simulator) sampleQueue(t float64) {
	s.timeline = append(s.timeline, QueueSample{Time: t, Length: s.queued})
	if len(s.timeline) >= 2*maxTimelineSamples {
		kept := s.timeline[:0]
		for i := 0; i < len(s.timeline); i += 2 {
			kept = append(kept, s.timeline[i])
		}
		s.timeline = kept
	}
}

// Run simulates scheduling of tr under opt and returns the metrics.
// The input trace is not modified. Run is safe to call concurrently
// (including on the same trace): all mutable state is per-call.
func Run(tr *trace.Trace, opt Options) (*Result, error) {
	return RunContext(context.Background(), tr, opt)
}

// RunContext is Run with cancellation: the event loop checks ctx once per
// iteration and aborts with an error wrapping ctx.Err() (context.Canceled
// or context.DeadlineExceeded) as soon as the context ends. A canceled
// run still fills opt.Metrics with the progress made. Background-like
// contexts (Done() == nil) cost nothing in the loop.
func RunContext(ctx context.Context, tr *trace.Trace, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == Relaxed || opt.Backfill == AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	var cl *cluster.Cluster
	if nParts > 1 {
		cl = cluster.NewPartitioned(cluster.EvenPartitions(tr.System.TotalCores, nParts))
	} else {
		cl = cluster.New(tr.System.TotalCores)
	}

	s := &simulator{
		opt:      opt,
		jobs:     append([]trace.Job(nil), tr.Jobs...),
		cl:       cl,
		parts:    make([]partState, nParts),
		pendings: make([]pending, len(tr.Jobs)),
		touched:  make([]bool, nParts),
		waits:    make([]float64, len(tr.Jobs)),
		promised: make([]float64, len(tr.Jobs)),
		ctx:      ctx,
		done:     ctx.Done(),
		obsv:     opt.Observer,
	}
	for i := range s.promised {
		s.promised[i] = -1
	}
	// One sample lands per event loop iteration, of which there are at most
	// two per job (arrival, completion); thinning caps the slice length at
	// 2*maxTimelineSamples. Reserving the smaller of the two up front keeps
	// the append loop from re-growing the backing array.
	timelineCap := 2 * len(tr.Jobs)
	if timelineCap > 2*maxTimelineSamples {
		timelineCap = 2 * maxTimelineSamples
	}
	s.timeline = make([]QueueSample, 0, timelineCap)
	if opt.Policy == Fair {
		s.fair = NewFairshareState(opt.FairshareHalfLife)
	}

	// Validate partition fit up front so we fail fast, not mid-run.
	for i := range s.jobs {
		p := s.partition(&s.jobs[i])
		if s.jobs[i].Procs > cl.Capacity(p) {
			return nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				s.jobs[i].ID, s.jobs[i].Procs, p, cl.Capacity(p))
		}
	}

	var began time.Time
	if opt.Metrics != nil {
		began = time.Now()
	}
	runErr := s.run()
	if opt.Metrics != nil {
		s.met.JobsStarted = int64(s.started)
		s.met.Backfilled = int64(s.backfilled)
		s.met.Violations = int64(s.violations)
		s.met.WallSeconds = time.Since(began).Seconds()
		s.met.Canceled = runErr != nil && ctx.Err() != nil
		*opt.Metrics = s.met
	}
	if runErr != nil {
		return nil, runErr
	}
	return s.result(tr)
}

// partition maps a job to its cluster partition index.
func (s *simulator) partition(j *trace.Job) int {
	if s.cl.Partitions() == 1 {
		return 0
	}
	if j.VC >= 0 && j.VC < s.cl.Partitions() {
		return j.VC
	}
	// jobs without a VC in a partitioned system land by user hash
	return j.User % s.cl.Partitions()
}

func (s *simulator) run() error {
	next := 0 // next arrival index
	for next < len(s.jobs) || s.compl.len() > 0 {
		if s.done != nil {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("sim: run canceled at t=%v after %d events (%d/%d jobs started): %w",
					s.now, s.met.Events, s.started, len(s.jobs), err)
			}
		}
		s.met.Events++
		// choose the next event time
		t := math.Inf(1)
		if next < len(s.jobs) {
			t = s.jobs[next].Submit
		}
		if s.compl.len() > 0 && s.compl.min().real < t {
			t = s.compl.min().real
		}
		s.now = t

		touched := s.touched
		for i := range touched {
			touched[i] = false
		}
		// completions at t release resources first
		for s.compl.len() > 0 && s.compl.min().real <= t {
			r := s.compl.pop()
			if err := s.cl.Release(t, r.part, r.procs); err != nil {
				return err
			}
			s.parts[r.part].avail.Remove(r.end, r.procs)
			if r.real > s.makespan {
				s.makespan = r.real
			}
			touched[r.part] = true
			s.met.Completions++
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.JobComplete, Time: r.real, Job: s.jobs[r.idx].ID,
					Part: r.part, Procs: r.procs, Detail: r.end,
				})
			}
		}
		// arrivals at t join their queue
		for next < len(s.jobs) && s.jobs[next].Submit <= t {
			j := &s.jobs[next]
			p := s.partition(j)
			reqTime := j.Walltime
			if reqTime <= 0 || s.opt.UseActualRuntime {
				reqTime = j.Run
			}
			run := j.Run
			if j.Walltime > 0 && run > j.Walltime {
				run = j.Walltime // killed at the walltime limit
			}
			if s.opt.WalltimePredictor != nil {
				if pred := s.opt.WalltimePredictor(*j); pred > 0 {
					reqTime = pred // advisory estimate; no kill at pred
				}
			}
			pj := &s.pendings[next]
			*pj = pending{
				idx: next, user: j.User, submit: j.Submit, procs: j.Procs,
				part: p, reqTime: reqTime, run: run, promised: -1,
			}
			if s.staticOrder() {
				s.insertSorted(p, pj)
			} else {
				s.parts[p].q.push(pj)
				s.parts[p].sorted = false
			}
			s.queued++
			touched[p] = true
			s.met.Arrivals++
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.JobSubmit, Time: j.Submit, Job: j.ID,
					Part: p, Procs: j.Procs, Detail: reqTime,
				})
			}
			next++
		}
		if s.queued > s.maxQueueSeen {
			s.maxQueueSeen = s.queued
		}
		// Partitions are scheduled in index order: the Fair policy's usage
		// accounts are shared across partitions, so iteration order is
		// observable (map-order iteration here made runs nondeterministic).
		for p, hit := range touched {
			if !hit {
				continue
			}
			if err := s.schedule(p); err != nil {
				return err
			}
		}
		s.sampleQueue(t)
	}
	if s.started != len(s.jobs) {
		return fmt.Errorf("sim: only %d/%d jobs started (scheduler stuck)", s.started, len(s.jobs))
	}
	return nil
}

// staticOrder reports whether queue order is fixed at arrival time.
func (s *simulator) staticOrder() bool {
	return s.opt.Policy.static() && s.opt.CustomScore == nil
}

// less is the canonical queue ordering at time now: policy score, then
// submit time, then job index for determinism. It recomputes scores per
// comparison and is used only on the static arrival path (insertSorted),
// where scores are time-independent; dynamic passes sort on cached scores
// in sortQueue instead.
func (s *simulator) less(a, b *pending, now float64) bool {
	var sa, sb float64
	switch {
	case s.opt.CustomScore != nil:
		sa = s.opt.CustomScore(a.reqTime, a.procs, a.submit, now)
		sb = s.opt.CustomScore(b.reqTime, b.procs, b.submit, now)
	case s.fair != nil:
		sa, sb = s.fair.Usage(a.user, now), s.fair.Usage(b.user, now)
	default:
		sa, sb = s.opt.Policy.score(a, now), s.opt.Policy.score(b, now)
	}
	if sa != sb {
		return sa < sb
	}
	if a.submit != b.submit {
		return a.submit < b.submit
	}
	return a.idx < b.idx
}

// insertSorted places a pending job at its ordered position (static
// policies only — the position never changes afterwards).
func (s *simulator) insertSorted(p int, j *pending) {
	q := &s.parts[p].q
	live := q.live()
	lo := sort.Search(len(live), func(i int) bool { return s.less(j, live[i], s.now) })
	q.insert(lo, j)
}

// sortQueue orders the partition queue by the policy. For static policies
// the queue is already sorted by insertSorted and this is a no-op. For
// dynamic policies the order is a pure function of the current time (and,
// under Fair, of the usage accounts), so scores are computed once per
// (partition, time, usage-version) pass, cached on the pending entries, and
// the sort is skipped entirely on repeat passes — removals preserve order.
func (s *simulator) sortQueue(p int) {
	if s.staticOrder() {
		return
	}
	ps := &s.parts[p]
	if ps.sorted && ps.sortTime == s.now && (s.fair == nil || ps.sortFair == s.fairVer) {
		s.met.ScoreCacheHits++
		return
	}
	s.met.ScoreSorts++
	live := ps.q.live()
	now := s.now
	switch {
	case s.opt.CustomScore != nil:
		for _, j := range live {
			j.score = s.opt.CustomScore(j.reqTime, j.procs, j.submit, now)
		}
	case s.fair != nil:
		for _, j := range live {
			j.score = s.fair.Usage(j.user, now)
		}
	default:
		for _, j := range live {
			j.score = s.opt.Policy.score(j, now)
		}
	}
	// The comparator is a total order (score, submit, idx), so the sorted
	// permutation is unique and stability is irrelevant.
	sort.Slice(live, func(a, b int) bool {
		ja, jb := live[a], live[b]
		if ja.score != jb.score {
			return ja.score < jb.score
		}
		if ja.submit != jb.submit {
			return ja.submit < jb.submit
		}
		return ja.idx < jb.idx
	})
	ps.sorted = true
	ps.sortTime = now
	ps.sortFair = s.fairVer
}

// start dispatches job j from partition p's queue position pos.
func (s *simulator) start(p, pos int) {
	ps := &s.parts[p]
	j := ps.q.at(pos)
	if err := s.cl.Allocate(s.now, p, j.procs); err != nil {
		// The caller checked CanAllocate; reaching here is a bug.
		panic(fmt.Sprintf("sim: allocation invariant broken: %v", err))
	}
	s.waits[j.idx] = s.now - j.submit
	if s.obsv != nil {
		s.obsv.Observe(obs.Event{
			Kind: obs.JobStart, Time: s.now, Job: s.jobs[j.idx].ID,
			Part: p, Procs: j.procs, Detail: s.waits[j.idx],
		})
		if pos > 0 {
			s.obsv.Observe(obs.Event{
				Kind: obs.Backfill, Time: s.now, Job: s.jobs[j.idx].ID,
				Part: p, Procs: j.procs, Detail: float64(pos),
			})
		}
		if j.promised >= 0 && s.now > j.promised+1e-9 {
			s.obsv.Observe(obs.Event{
				Kind: obs.PromiseViolation, Time: s.now, Job: s.jobs[j.idx].ID,
				Part: p, Procs: j.procs, Detail: s.now - j.promised,
			})
		}
	}
	if j.promised >= 0 && s.now > j.promised+1e-9 {
		s.violations++
		s.violationDelay += s.now - j.promised
	}
	if pos > 0 {
		s.backfilled++
	}
	if s.fair != nil {
		s.fair.Charge(j.user, s.now, float64(j.procs)*j.run)
		s.fairVer++
	}
	end := s.now + j.reqTime
	real := s.now + j.run
	s.compl.push(running{idx: j.idx, end: end, real: real, procs: j.procs, part: p})
	ps.avail.Add(end, j.procs)
	ps.q.remove(pos)
	s.queued--
	s.started++
	if real > s.makespan {
		s.makespan = real
	}
}

// schedule runs one scheduling pass for partition p at the current time.
func (s *simulator) schedule(p int) error {
	s.met.SchedulePasses++
	ps := &s.parts[p]
	for {
		if ps.q.len() == 0 {
			return nil
		}
		s.sortQueue(p)
		head := ps.q.at(0)
		if s.cl.CanAllocate(p, head.procs) {
			s.start(p, 0)
			continue
		}
		if s.opt.Backfill == NoBackfill {
			// No reservations are made, so no promises to violate.
			return nil
		}
		// Head is blocked: plan its reservation.
		prof := s.buildProfile(p)
		shadow, minFree := prof.earliestStart(s.now, head.procs, head.reqTime)
		if head.promised < 0 {
			head.promised = shadow
			s.promised[head.idx] = shadow
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.ReservationMade, Time: s.now, Job: s.jobs[head.idx].ID,
					Part: p, Procs: head.procs, Detail: shadow,
				})
			}
		}
		if s.opt.Backfill == Conservative {
			s.conservativePass(p, prof, shadow)
			return nil
		}
		extra := minFree - head.procs
		// The relaxation budget is anchored to the head's FIRST promise,
		// so repeated backfill passes cannot compound the slip: total
		// delay stays within allowance of the original promise (Ward et
		// al.). Anything finishing before the current shadow is free.
		// base is the deadline a zero-allowance kind (EASY) would use;
		// only a backfill intruding beyond it counts as a relaxation.
		base := head.promised
		if shadow > base {
			base = shadow
		}
		deadline := head.promised + s.allowance(p, head)
		if deadline < base {
			deadline = base
		}
		started, relaxed := s.backfillPass(p, deadline, base, extra)
		if started {
			if relaxed && s.obsv != nil {
				// The admitted backfill intrudes past the head's current
				// shadow start: the promise was relaxed to let it in.
				s.obsv.Observe(obs.Event{
					Kind: obs.ReservationRelaxed, Time: s.now, Job: s.jobs[head.idx].ID,
					Part: p, Procs: head.procs, Detail: deadline,
				})
			}
			continue // resources changed; re-evaluate the head
		}
		return nil
	}
}

// allowance computes how far the head's promised start may slip for the
// configured backfill kind, relative to its first promise.
func (s *simulator) allowance(p int, head *pending) float64 {
	expectedWait := head.promised - head.submit
	if expectedWait < 0 {
		expectedWait = 0
	}
	switch s.opt.Backfill {
	case Relaxed:
		return s.opt.RelaxFactor * expectedWait
	case AdaptiveRelaxed:
		maxQ := s.opt.MaxQueueLen
		if maxQ <= 0 {
			maxQ = s.maxQueueSeen
		}
		if maxQ <= 0 {
			maxQ = 1
		}
		frac := float64(s.parts[p].q.len()) / float64(maxQ)
		if frac > 1 {
			frac = 1
		}
		return s.opt.RelaxFactor * frac * expectedWait
	default: // EASY
		return 0
	}
}

// buildProfile materializes partition p's availability profile at now into
// the partition's scratch profile. The planned ends are maintained
// incrementally by start/release (AvailSet), so this is a linear fold with
// no sorting and, in the steady state, no allocation — the per-pass runset
// collection, sort.Ints, and newProfile rebuild this used to do are gone.
func (s *simulator) buildProfile(p int) *profile {
	ps := &s.parts[p]
	ps.avail.buildInto(&ps.prof, s.now, s.cl.Free(p))
	return &ps.prof
}

// backfillPass tries to start one queued job (after the head) that fits now
// and either finishes before the deadline or fits inside the extra cores
// not needed by the head's reservation. started reports whether a job was
// dispatched; relaxed reports whether that job needed the relaxation
// window to be admitted (it neither fit the extra cores nor finished by
// base, the zero-allowance deadline, so only the relaxed deadline let it
// in — always false for EASY, where deadline == base).
func (s *simulator) backfillPass(p int, deadline, base float64, extra int) (started, relaxed bool) {
	q := &s.parts[p].q
	for pos := 1; pos < q.len(); pos++ {
		c := q.at(pos)
		if !s.cl.CanAllocate(p, c.procs) {
			continue
		}
		if s.now+c.reqTime <= deadline+1e-9 || c.procs <= extra {
			relaxed = c.procs > extra && s.now+c.reqTime > base+1e-9
			s.start(p, pos)
			return true, relaxed
		}
	}
	return false, false
}

// conservativePass plans a reservation for every queued job in priority
// order and starts those whose planned start is now. The plan scratch and
// the profile's segment storage are reused across passes, so steady-state
// planning allocates nothing.
func (s *simulator) conservativePass(p int, prof *profile, headShadow float64) {
	ps := &s.parts[p]
	// Plan on the queue order; starting jobs mutates the queue, so record
	// positions first and start afterwards.
	planned := ps.planned[:0]
	n := ps.q.len()
	for pos := 0; pos < n; pos++ {
		c := ps.q.at(pos)
		st := headShadow // the caller already planned the head on this profile
		if pos > 0 {
			st, _ = prof.earliestStart(s.now, c.procs, c.reqTime)
		}
		prof.reserve(st, c.reqTime, c.procs)
		planned = append(planned, plannedStart{pos, st})
	}
	ps.planned = planned
	// Start immediately-startable jobs; iterate descending position so
	// earlier removals don't shift later indices.
	for i := len(planned) - 1; i >= 0; i-- {
		if planned[i].start <= s.now+1e-9 && s.cl.CanAllocate(p, ps.q.at(planned[i].pos).procs) {
			s.start(p, planned[i].pos)
		}
	}
}

// result assembles the metrics.
func (s *simulator) result(tr *trace.Trace) (*Result, error) {
	res := &Result{
		Jobs:           append([]trace.Job(nil), s.jobs...),
		Violations:     s.violations,
		ViolationDelay: s.violationDelay,
		Backfilled:     s.backfilled,
		MaxQueueLen:    s.maxQueueSeen,
		Makespan:       s.makespan,
		QueueTimeline:  s.timeline,
		PromisedStart:  s.promised,
	}
	var sumWait, sumBsld float64
	for i := range res.Jobs {
		res.Jobs[i].Wait = s.waits[i]
		sumWait += s.waits[i]
		sumBsld += res.Jobs[i].BoundedSlowdown(s.opt.BsldTau)
	}
	n := float64(len(res.Jobs))
	if n > 0 {
		res.AvgWait = sumWait / n
		res.AvgBsld = sumBsld / n
	}
	if s.makespan > 0 {
		res.Utilization = s.cl.Utilization(s.makespan)
	}
	return res, nil
}

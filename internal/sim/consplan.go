package sim

import (
	"math"
	"slices"
)

// consPlan is one partition's persistent conservative-backfilling
// reservation plan. Conservative backfilling gives every queued job a
// reservation, planned in priority order on the availability profile with
// every earlier reservation subtracted; the scheduler's only OBSERVABLE
// output from that plan is which jobs start at the current instant (plan
// entries are never emitted, and only the blocked head's promise is
// recorded — computed separately in schedule). The previous implementation
// rebuilt the whole plan from scratch at every event; consPlan keeps the
// plan — and the reserved profile it was planned on — alive across events
// and replans only the jobs whose reservation window was actually touched.
//
// Invariant (between passes, while valid): starts[:planLen] are exactly the
// first planLen starts a from-scratch conservative pass at the last
// planning instant would produce for the current queue prefix, and rprof
// equals the current availability profile minus the reservations
// [starts[k], starts[k]+reqTime_k) x procs_k of those entries — up to the
// capacity holes recorded in holes, which are folded in lazily at the next
// pass. planLen may be shorter than the queue (lazy suffix): the planning
// loop early-stops once no remaining job could possibly start now, which
// cannot change any observable start.
//
// The plan survives an event when the event provably did not move any
// kept entry:
//
//   - Arrivals insert at a queue position; positions >= planLen leave the
//     prefix untouched, positions below it truncate the plan there
//     (insertSorted hook).
//   - Completions at exactly the planned end change nothing: the
//     availability profile is a function of the planned-end multiset, and
//     folding an end at now into the base is the same step function.
//   - Completions EARLIER than planned open a capacity hole [now, end):
//     the cores come back now instead of at the planned end. Each kept
//     entry k is re-checked with a sound reject test — it can only move
//     earlier if some candidate start in [now, min(holeMax, start_k))
//     admits its procs on its prefix-reserved profile, which is bounded
//     pointwise by the bare availability profile; if even the maximum
//     bare-profile free over that interval is below procs_k, the entry
//     provably cannot move. The plan is truncated at the FIRST entry that
//     fails the test and replanned sequentially from there, which is
//     exactly the from-scratch result (entries before the truncation
//     cannot move earlier by the test, and cannot move later because
//     capacity was only added).
//   - An entry whose planned start slipped into the past without starting
//     (a pass skipped by schedule's fitBound fast reject, or a start
//     blocked by cores still held past their planned end) is stale: a
//     from-scratch plan would recompute it at >= now. The repair scan
//     truncates at the first stale entry.
//
// Persistence is bypassed — every pass plans from scratch, still with the
// early stop and the searchless reserve — whenever queue order is not
// static (dynamic policies, CustomScore) or fault injection is active
// (requeues, drains, and victim interrupts mutate queue and capacity at
// too many sites to track holes soundly); those passes leave valid false,
// which is trivially exact.
type consPlan struct {
	valid   bool
	dirty   bool // rprof does not reflect starts[:planLen]; rebuild before use
	planLen int
	starts  []float64 // planned start per live queue position, [0:planLen)
	rprof   profile   // availability profile minus the prefix reservations
	holes   []JobEnd  // early completions since the last pass: +Procs over [now, End)
	holeMax float64   // max End over holes; -Inf when none
	// scratch (retained across passes and runs)
	bounds []resBound // reservation boundaries for batched rebuilds
	sufMin []int32    // suffix minima of queued core requests
	pmax   []int      // prefix maxima of bare-profile free counts
}

// resBound is one reservation edge for the batched rprof rebuild: the free
// count changes by d at time t.
type resBound struct {
	t float64
	d int32
}

// reset clears the plan for simulator reuse, keeping scratch capacity.
func (cp *consPlan) reset() {
	cp.setInvalid()
}

// setInvalid drops the plan entirely; the next pass rebuilds from scratch.
func (cp *consPlan) setInvalid() {
	cp.valid = false
	cp.dirty = true
	cp.planLen = 0
	cp.holes = cp.holes[:0]
	cp.holeMax = math.Inf(-1)
}

// truncate drops plan entries at positions >= pos (a queue insertion
// shifted them). rprof is rebuilt lazily at the next pass.
func (cp *consPlan) truncate(pos int) {
	if cp.valid && pos < cp.planLen {
		cp.planLen = pos
		cp.dirty = true
	}
}

// headStarted records a dispatch that bypassed the plan (schedule's direct
// head start): the capacity it consumed is not a plan reservation, so
// rprof is stale even when the plan is empty — drop every entry and force
// a rebuild. Unlike truncate(0), this must fire at planLen == 0 too.
func (cp *consPlan) headStarted() {
	if cp.valid {
		cp.planLen = 0
		cp.dirty = true
	}
}

// noteHole records capacity returning early: procs cores planned to come
// back at end are free from the current instant on. Only called while the
// plan is valid (the completion hook checks), so holes never accumulate
// for plans that will be rebuilt anyway.
func (cp *consPlan) noteHole(end float64, procs int) {
	cp.holes = append(cp.holes, JobEnd{End: end, Procs: procs})
	if end > cp.holeMax {
		cp.holeMax = end
	}
}

// repairTruncation returns the length of the plan prefix that provably
// matches a from-scratch replan at now: entries before the first stale
// entry (planned start in the past) that also pass the hole reject test.
// prof is the partition's current bare availability profile.
func (cp *consPlan) repairTruncation(now float64, prof *profile, q *jobQueue) int {
	planLen := cp.planLen
	hm := cp.holeMax
	var pm []int
	if hm > now {
		// Prefix maxima of prof's free counts over the segments below the
		// hole horizon; segments at or past holeMax can never justify a
		// move, so the scan is capped there.
		n := searchF64(prof.times, hm)
		pm = cp.pmax[:0]
		best := math.MinInt
		for i := 0; i < n; i++ {
			if prof.free[i] > best {
				best = prof.free[i]
			}
			pm = append(pm, best)
		}
		cp.pmax = pm
	}
	_, procsArr := q.liveMirrors()
	for k := 0; k < planLen; k++ {
		st := cp.starts[k]
		if st < now {
			return k // stale: its planned moment passed without a start
		}
		if pm != nil && st > now {
			b := hm
			if st < b {
				b = st
			}
			// Max bare-profile free over [now, b): segments with times < b.
			// b > now = prof.times[0], so i >= 1 always.
			i := searchF64(prof.times, b)
			if i > len(pm) {
				i = len(pm)
			}
			if pm[i-1] >= int(procsArr[k]) {
				return k // the hole may admit an earlier start: replan from here
			}
		}
	}
	return planLen
}

// rebuildReserved recomputes rprof = prof minus the reservations of
// starts[:planLen] in one merge sweep: the 2*planLen reservation edges are
// sorted and folded against prof's breakpoints, so a truncation costs
// O(B + planLen log planLen) instead of planLen full reserve() calls.
// Rebuilding from the fresh prof also folds in any pending holes and
// compacts breakpoints left behind by earlier hole applications.
func (cp *consPlan) rebuildReserved(prof *profile, q *jobQueue) {
	m := cp.planLen
	r := &cp.rprof
	if m == 0 {
		r.times = append(r.times[:0], prof.times...)
		r.free = append(r.free[:0], prof.free...)
		return
	}
	b := cp.bounds[:0]
	for k := 0; k < m; k++ {
		c := q.at(k)
		st := cp.starts[k]
		b = append(b,
			resBound{t: st, d: int32(-c.procs)},
			resBound{t: st + c.reqTime, d: int32(c.procs)})
	}
	// Equal-time edges merge by summing deltas below, so the sort order
	// among them cannot affect the result (no stability needed).
	slices.SortFunc(b, func(x, y resBound) int {
		switch {
		case x.t < y.t:
			return -1
		case x.t > y.t:
			return 1
		default:
			return 0
		}
	})
	cp.bounds = b
	times := r.times[:0]
	free := r.free[:0]
	pi, bi := 0, 0
	pn := len(prof.times)
	base, adj := 0, 0
	for pi < pn || bi < len(b) {
		var t float64
		if bi >= len(b) || (pi < pn && prof.times[pi] <= b[bi].t) {
			t = prof.times[pi]
		} else {
			t = b[bi].t
		}
		for pi < pn && prof.times[pi] == t {
			base = prof.free[pi]
			pi++
		}
		for bi < len(b) && b[bi].t == t {
			adj += int(b[bi].d)
			bi++
		}
		times = append(times, t)
		free = append(free, base+adj)
	}
	r.times = times
	r.free = free
}

// applyHoles folds the pending capacity holes into rprof: each hole adds
// its cores back over [now, End). The base has already advanced to now.
func (cp *consPlan) applyHoles(now float64) {
	for _, h := range cp.holes {
		if h.End > now {
			cp.rprof.reserve(now, h.End-now, -h.Procs)
		}
	}
	cp.holes = cp.holes[:0]
	cp.holeMax = math.Inf(-1)
}

// setStart records the planned start for queue position pos (== planLen).
func (cp *consPlan) setStart(pos int, st float64) {
	if pos < len(cp.starts) {
		cp.starts[pos] = st
	} else {
		cp.starts = append(cp.starts, st)
	}
}

// removeStart drops the started entry at queue position i, shifting the
// kept entries above it down one position (mirroring the queue removal).
func (cp *consPlan) removeStart(i int) {
	copy(cp.starts[i:cp.planLen-1], cp.starts[i+1:cp.planLen])
	cp.planLen--
}

// conservativePass runs one conservative-backfilling pass for partition p:
// repair the persistent plan against the events since the last pass, plan
// reservations for the unplanned queue suffix (early-stopping once no
// remaining job could start now), and start every job whose planned start
// is the current instant. prof is the partition's current bare
// availability profile (from buildProfile); it is read, never mutated, so
// the caller's profile and shadow caches stay valid across passes.
func (s *simulator) conservativePass(p int, prof *profile) {
	ps := &s.parts[p]
	cp := &ps.plan
	now := s.now
	// During a capacity fault, queued jobs larger than the effective
	// capacity cannot be planned at all (no profile segment ever reaches
	// their request; reserving anyway would drive the profile negative) —
	// they are skipped until the outage ends. The head is never skipped:
	// schedule() degrades to a greedy pass before planning when the head
	// itself no longer fits.
	effCap := math.MaxInt
	if s.flt != nil {
		effCap = s.cl.Capacity(p) - s.cl.DownCores(p)
	}
	persist := s.flt == nil && s.staticOrder()
	n := ps.q.len()
	s.met.ConsPasses++

	if !persist || !cp.valid || cp.planLen > n {
		cp.setInvalid()
	} else if cp.planLen > 0 {
		if r := cp.repairTruncation(now, prof, &ps.q); r < cp.planLen {
			cp.planLen = r
			cp.dirty = true
		}
	}
	if cp.dirty {
		cp.rebuildReserved(prof, &ps.q)
		cp.dirty = false
		cp.holes = cp.holes[:0]
		cp.holeMax = math.Inf(-1)
	} else {
		cp.rprof.advanceTo(now)
		if len(cp.holes) > 0 {
			cp.applyHoles(now)
		}
		// Hole applications can leave redundant breakpoints behind; when
		// they pile up, fall back to a compacting rebuild (the step
		// function is unchanged, so planning results are too).
		if len(cp.rprof.times) > 2*(len(prof.times)+2*cp.planLen)+8 {
			cp.rebuildReserved(prof, &ps.q)
		}
	}
	kept := cp.planLen
	s.met.ConsKeptJobs += int64(kept)

	// Plan the unplanned suffix in queue order on the reserved profile.
	// Early stop: reservations only ever subtract from the profile, so the
	// free count at now is non-increasing across the remaining positions;
	// once it is below the minimum core request of every remaining job, no
	// remaining job can be planned at now, and planning them cannot change
	// which jobs start — the plan stays lazily short instead.
	if cp.planLen < n {
		_, procsArr := ps.q.liveMirrors()
		sm := cp.sufMin
		if cap(sm) < n {
			sm = make([]int32, n)
		} else {
			sm = sm[:n]
		}
		min := int32(math.MaxInt32)
		for i := n - 1; i >= cp.planLen; i-- {
			if procsArr[i] < min {
				min = procsArr[i]
			}
			sm[i] = min
		}
		cp.sufMin = sm
		rp := &cp.rprof
		for pos := cp.planLen; pos < n; pos++ {
			if rp.free[0] < int(sm[pos]) {
				break
			}
			c := ps.q.at(pos)
			if c.procs > effCap {
				// Unplannable during the outage; the sentinel keeps starts
				// positionally aligned (never startable, never persisted:
				// persist is false whenever faults are active).
				cp.setStart(pos, math.Inf(1))
				cp.planLen = pos + 1
				continue
			}
			st, idx := rp.earliestStartIdx(now, c.procs, c.reqTime)
			rp.reserveFrom(idx, st, c.reqTime, c.procs)
			cp.setStart(pos, st)
			cp.planLen = pos + 1
			s.met.ConsPlannedJobs++
		}
	}

	if consPlanAudit != nil {
		s.emitConsPlanAudit(p, prof, persist, kept)
	}

	// Start immediately-startable jobs; iterate descending position so
	// earlier removals don't shift lower indices, and compact the plan in
	// step with the queue. A start in the epsilon window (planned a hair
	// after now) leaves its reservation misaligned with its real
	// occupancy, so the plan cannot be carried forward.
	eps := false
	for i := cp.planLen - 1; i >= 0; i-- {
		st := cp.starts[i]
		if st <= now+1e-9 && s.cl.CanAllocate(p, ps.q.at(i).procs) {
			if st != now {
				eps = true
			}
			s.start(p, i)
			cp.removeStart(i)
		}
	}
	if persist && !eps {
		cp.valid = true
	} else {
		cp.setInvalid()
	}
}

// consPlanAudit, when non-nil, receives a snapshot of every conservative
// planning decision before its starts are applied. Test-only (set via
// SetConsPlanAudit); the hot path pays one nil check per pass.
var consPlanAudit func(ConsPlanAudit)

// ConsPlanAudit is the verification view of one conservative planning
// pass, captured after plan repair and extension and before any job is
// started. internal/check replans the same queue from scratch on its own
// naive availability model and asserts the maintained plan is the exact
// prefix of the from-scratch plan — the conservative analogue of the
// AvailSet Snapshot/ReferenceSnapshot property test.
type ConsPlanAudit struct {
	Part int
	Now  float64
	// BaseTimes/BaseFree snapshot the bare availability profile the pass
	// planned against (before reservations).
	BaseTimes []float64
	BaseFree  []int
	// Procs/ReqTime describe the waiting queue in priority order.
	Procs   []int
	ReqTime []float64
	// Starts is the maintained plan: one planned start per queue position
	// for the planned prefix (possibly shorter than the queue — the
	// planning loop early-stops once no remaining job could start now).
	Starts []float64
	// Kept is how many plan entries survived from the previous pass
	// (before this pass extended the plan).
	Kept int
	// Persistent reports whether the incremental path was active (static
	// queue order, no fault injection).
	Persistent bool
}

// SetConsPlanAudit installs (or, with nil, removes) the global
// conservative-plan audit hook. For tests only: the hook is process-global
// and must not be raced with concurrent simulations.
func SetConsPlanAudit(fn func(ConsPlanAudit)) { consPlanAudit = fn }

// emitConsPlanAudit builds the (allocating) audit snapshot; only reached
// when a hook is installed.
func (s *simulator) emitConsPlanAudit(p int, prof *profile, persist bool, kept int) {
	ps := &s.parts[p]
	cp := &ps.plan
	n := ps.q.len()
	a := ConsPlanAudit{
		Part:       p,
		Now:        s.now,
		BaseTimes:  append([]float64(nil), prof.times...),
		BaseFree:   append([]int(nil), prof.free...),
		Procs:      make([]int, n),
		ReqTime:    make([]float64, n),
		Starts:     append([]float64(nil), cp.starts[:cp.planLen]...),
		Kept:       kept,
		Persistent: persist,
	}
	for i := 0; i < n; i++ {
		c := ps.q.at(i)
		a.Procs[i] = c.procs
		a.ReqTime[i] = c.reqTime
	}
	consPlanAudit(a)
}

package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"crosssched/internal/cluster"
	"crosssched/internal/trace"
)

// StreamRow is one retired job emitted by a streaming run: the input job
// with Wait filled in, plus the scheduler's first promised start for it
// (-1 when it never became a blocked queue head). Rows are emitted in
// submit (arrival) order, matching Result.Jobs / Result.PromisedStart of
// the equivalent materialized run element for element.
type StreamRow struct {
	Job      trace.Job
	Promised float64
}

// StreamSink receives retired rows. A sink error aborts the run; the
// wrapped error is returned from RunStream and opt.Metrics still receives
// the progress made. A nil sink is allowed (aggregate results only).
type StreamSink func(StreamRow) error

// RunStream simulates scheduling of the jobs produced by src under opt,
// holding only a sliding window of jobs in memory: an arrival is admitted
// when simulation time reaches its submit time and retired to sink once it
// completes, so the working set is O(active + lookahead window) instead of
// O(trace). The stream must be submit-sorted (trace.SWFStream, CSVStream,
// and synth streams all are); every job is validated at admission.
//
// Results are float-for-float identical to materializing the stream and
// calling Run — same AvgWait, AvgBsld, Utilization, Makespan, counters,
// QueueTimeline, and the same decision-event stream through opt.Observer —
// except that Result.Jobs and Result.PromisedStart are nil (their contents
// went to the sink as rows). Fault injection (opt.Faults) is not supported:
// its per-job state and fault-schedule horizon need the whole trace.
func RunStream(src trace.Stream, opt Options, sink StreamSink) (*Result, error) {
	return RunStreamContext(context.Background(), src, opt, sink)
}

// RunStreamContext is RunStream with cancellation; see RunContext for the
// cancellation contract.
func RunStreamContext(ctx context.Context, src trace.Stream, opt Options, sink StreamSink) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	return r.RunStreamContext(ctx, src, opt, sink)
}

// RunStream simulates a stream on this Runner; see the package-level
// RunStream.
func (r *Runner) RunStream(src trace.Stream, opt Options, sink StreamSink) (*Result, error) {
	return r.RunStreamContext(context.Background(), src, opt, sink)
}

// RunStreamContext simulates a stream on this Runner with cancellation; see
// the package-level RunStream and RunContext.
func (r *Runner) RunStreamContext(ctx context.Context, src trace.Stream, opt Options, sink StreamSink) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == Relaxed || opt.Backfill == AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if opt.Faults.Enabled() {
		return nil, fmt.Errorf("sim: streaming runs do not support fault injection (per-job fault state and the fault horizon need the whole trace); materialize with trace.Collect and use RunContext")
	}
	sys := src.System()
	if sys.TotalCores <= 0 {
		return nil, fmt.Errorf("trace: system %q has non-positive capacity", sys.Name)
	}
	var fallback string
	if opt.Shards > 1 {
		nParts := sys.VirtualClusters
		if nParts < 1 {
			nParts = 1
		}
		if fallback = shardFallback(&opt, nParts); fallback == "" {
			return runShardedStream(ctx, src, opt, sink)
		}
	}
	return r.runStream(ctx, src, opt, sink, nil, fallback)
}

// runStream is the single-shard streaming engine behind RunStreamContext.
// The options are already defaulted. tap, when non-nil, makes this run one
// shard of a sharded run (shard.go); fallback is recorded in Metrics as the
// reason a requested sharded run degraded to this path.
func (r *Runner) runStream(ctx context.Context, src trace.Stream, opt Options, sink StreamSink, tap *shardTap, fallback string) (*Result, error) {
	sys := src.System()
	nParts := sys.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	cl, err := r.cluster(sys.TotalCores, nParts)
	if err != nil {
		return nil, err
	}

	s := &r.s
	s.resetStream(ctx, opt, cl, nParts, src, sink)
	s.tap = tap
	if tap != nil && tap.evOn {
		s.obsv = tap
	}
	// Window buffers stay on the simulator for reuse, but the stream, sink,
	// context, and callbacks must not outlive the run.
	defer func() {
		s.winJobs = s.jobs[:0]
		s.winPromised = s.promised[:0]
		s.jobs = nil
		s.promised = nil
		s.pendings = s.pendings[:0]
		s.waits = s.waits[:0]
		s.idxBase = 0
		s.inState.src = nil
		s.inState.hz = nil
		s.inState.sink = nil
		s.inState.look = trace.Job{}
		s.in = nil
		s.tap = nil
		s.ctx = nil
		s.done = nil
		s.obsv = nil
		s.opt = Options{}
	}()

	var began time.Time
	if opt.Metrics != nil {
		began = time.Now()
	}
	runErr := s.run()
	if opt.Metrics != nil {
		s.met.JobsStarted = int64(s.started)
		s.met.Backfilled = int64(s.backfilled)
		s.met.Violations = int64(s.violations)
		s.met.MaxWindowJobs = int64(s.inState.maxWindow)
		s.met.JobsRetired = int64(s.inState.retired)
		s.met.WallSeconds = time.Since(began).Seconds()
		s.met.Canceled = runErr != nil && ctx.Err() != nil
		s.met.Shards = 1
		s.met.ShardFallbackReason = fallback
		*opt.Metrics = s.met
	}
	if runErr != nil {
		return nil, runErr
	}
	if left := len(s.pendings) - s.inState.winHead; left != 0 {
		return nil, fmt.Errorf("sim: %d jobs left unretired in the window", left)
	}
	return s.streamResult(), nil
}

// streamIntake is the sliding-window bookkeeping for one streaming run. It
// is retained on the simulator (inState) so its buffers survive between
// runs like the rest of the scratch state.
type streamIntake struct {
	src  trace.Stream
	sink StreamSink
	// hz is non-nil when src can bound its future: a sharded sub-stream
	// (shard.go) whose NextBefore lets the event loop process completions
	// below the bound without blocking for a lookahead job that may be far
	// in the future (or held up behind other shards).
	hz horizonStream

	// One job of lookahead: the next arrival pulled from the stream but not
	// yet admitted. eof marks the stream drained.
	look   trace.Job
	lookOK bool
	eof    bool

	// winHead is the retired-prefix length within the window arrays; the
	// live window is [winHead:]. done flags completed (retirable) entries,
	// parallel to the window arrays. idxScratch is compaction scratch for
	// repointing queue entries. lastSubmit enforces the sorted contract.
	winHead    int
	done       []bool
	idxScratch []int
	lastSubmit float64

	// Running aggregates over retired rows, folded with the same float
	// operations result() uses so the final averages are bit-identical.
	retired   int
	maxWindow int
	sumWait   float64
	sumBsld   float64
}

// horizonStream is a trace.Stream that can bound its future arrivals.
// NextBefore returns the next job when one is available (whatever its
// submit time). Returning ok == false without error is a guarantee that no
// future job of the stream has Submit <= need, letting the caller proceed
// without a lookahead job; the stream may block internally until it can
// either produce a job or make that guarantee. The end of the stream is
// io.EOF, the strongest horizon. Implemented by the sharded sub-streams in
// shard.go, whose next job may be held up arbitrarily long behind jobs
// destined for other shards.
type horizonStream interface {
	trace.Stream
	NextBefore(need float64) (trace.Job, bool, error)
}

// fill pulls the next arrival into the lookahead slot if it is empty. On a
// horizon-capable stream it may instead return with the slot still empty
// once the stream guarantees no arrival at or before the simulator's next
// internal event (the earliest pending completion), so shards are never
// deadlocked waiting for arrivals that sit behind other shards' traffic.
func (in *streamIntake) fill(s *simulator) error {
	if in.lookOK || in.eof {
		return nil
	}
	if in.hz != nil {
		need := math.Inf(1)
		if s.compl.len() > 0 {
			need = s.compl.min().real
		}
		j, ok, err := in.hz.NextBefore(need)
		if err == io.EOF {
			in.eof = true
			return nil
		}
		if err != nil {
			return err
		}
		if ok {
			in.look = j
			in.lookOK = true
		}
		return nil
	}
	j, err := in.src.Next()
	if err == io.EOF {
		in.eof = true
		return nil
	}
	if err != nil {
		return err
	}
	in.look = j
	in.lookOK = true
	return nil
}

// streamReadError wraps a trace-stream failure with run position; the run
// aborts, but opt.Metrics still receives the progress made.
func (s *simulator) streamReadError(next int, err error) error {
	return fmt.Errorf("sim: trace stream failed at t=%v after %d arrivals: %w", s.now, next, err)
}

// resetStream prepares the simulator for a streaming run. The per-job
// arrays become an empty sliding window: jobs and promised come from
// dedicated retained buffers (the materialized path points s.jobs at the
// caller's slice and lets s.promised escape into the Result, so neither
// can be shared), while pendings and waits reuse the materialized scratch.
func (s *simulator) resetStream(ctx context.Context, opt Options, cl *cluster.Cluster, nParts int, src trace.Stream, sink StreamSink) {
	s.resetCore(ctx, opt, cl, nParts)
	s.jobs = s.winJobs[:0]
	s.promised = s.winPromised[:0]
	s.pendings = s.pendings[:0]
	s.waits = s.waits[:0]
	in := &s.inState
	in.src = src
	in.hz, _ = src.(horizonStream)
	in.sink = sink
	in.look = trace.Job{}
	in.lookOK = false
	in.eof = false
	in.winHead = 0
	in.done = in.done[:0]
	in.lastSubmit = 0
	in.retired = 0
	in.maxWindow = 0
	in.sumWait = 0
	in.sumBsld = 0
	s.in = in
	// The timeline escapes into the Result; its thinning caps it at
	// 2*maxTimelineSamples regardless of stream length.
	s.timeline = make([]QueueSample, 0, 2*maxTimelineSamples)
}

// streamArrival admits the lookahead job when it is due at t, returning
// window pointers valid until the next admission. It returns (nil, nil,
// nil) when the next arrival is later than t or the stream is drained.
func (s *simulator) streamArrival(next int, t float64) (*trace.Job, *pending, error) {
	in := s.in
	if err := in.fill(s); err != nil {
		return nil, nil, s.streamReadError(next, err)
	}
	if !in.lookOK || in.look.Submit > t {
		return nil, nil, nil
	}
	j := in.look
	in.lookOK = false
	// Admission-time validation mirrors what Trace.Validate and the
	// partition-fit loop check up front on the materialized path.
	if err := j.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: stream: %w", err)
	}
	if j.Submit < in.lastSubmit {
		return nil, nil, fmt.Errorf("sim: stream: job %d out of submit order (%v after %v)", j.ID, j.Submit, in.lastSubmit)
	}
	in.lastSubmit = j.Submit
	p := s.partition(&j)
	if j.Procs > s.cl.Capacity(p) {
		return nil, nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
			j.ID, j.Procs, p, s.cl.Capacity(p))
	}
	jp, pp := s.winAdmit(j)
	return jp, pp, nil
}

// winAdmit appends j to the sliding window, compacting or growing the
// arrays as needed first.
func (s *simulator) winAdmit(j trace.Job) (*trace.Job, *pending) {
	in := s.in
	// pendings is the arena the queues point into: it must never grow via
	// plain append (stale pointers), so make room by hand when it is full.
	// Also compact eagerly once the retired prefix dominates the window
	// (same amortization rule as jobQueue.push).
	if len(s.pendings) == cap(s.pendings) ||
		(in.winHead > 64 && in.winHead*2 > len(s.pendings)) {
		s.winMakeRoom()
	}
	s.jobs = append(s.jobs, j)
	s.pendings = append(s.pendings, pending{})
	s.waits = append(s.waits, 0)
	s.promised = append(s.promised, -1)
	in.done = append(in.done, false)
	if w := len(s.pendings) - in.winHead; w > in.maxWindow {
		in.maxWindow = w
	}
	return &s.jobs[len(s.jobs)-1], &s.pendings[len(s.pendings)-1]
}

// winMakeRoom compacts the retired prefix out of the window arrays and/or
// grows the pendings arena. The waiting queues hold *pending into the
// arena, so their entries are repointed afterwards via arrival indices
// captured before anything moves.
func (s *simulator) winMakeRoom() {
	in := s.in
	h := in.winHead
	live := len(s.pendings) - h
	scratch := in.idxScratch[:0]
	for p := range s.parts {
		for _, pj := range s.parts[p].q.live() {
			scratch = append(scratch, pj.idx)
		}
	}
	in.idxScratch = scratch

	if len(s.pendings) == cap(s.pendings) && h*2 < cap(s.pendings) {
		// The live span dominates the full arena: genuine growth.
		newCap := 2 * cap(s.pendings)
		if newCap < 64 {
			newCap = 64
		}
		np := make([]pending, live, newCap)
		copy(np, s.pendings[h:])
		s.pendings = np
	} else {
		// Compact the retired prefix in place (h > 0 here: a full arena
		// with a small prefix took the growth branch, and the eager-compact
		// trigger requires a large prefix).
		copy(s.pendings, s.pendings[h:])
		s.pendings = s.pendings[:live]
	}
	if h > 0 {
		copy(s.jobs, s.jobs[h:])
		s.jobs = s.jobs[:live]
		copy(s.waits, s.waits[h:])
		s.waits = s.waits[:live]
		copy(s.promised, s.promised[h:])
		s.promised = s.promised[:live]
		copy(in.done, in.done[h:])
		in.done = in.done[:live]
		s.idxBase += h
		in.winHead = 0
	}
	k := 0
	for p := range s.parts {
		lv := s.parts[p].q.live()
		for i := range lv {
			lv[i] = &s.pendings[scratch[k]-s.idxBase]
			k++
		}
	}
}

// retireStream flushes the completed prefix of the window to the sink in
// arrival order, folding each row into the running aggregates with the
// same float operations result() uses (see the inlined bounded-slowdown
// there), so the streaming averages are bit-identical to materialized ones.
func (s *simulator) retireStream() error {
	in := s.in
	tau := s.opt.BsldTau
	for in.winHead < len(s.pendings) && in.done[in.winHead] {
		i := in.winHead
		j := s.jobs[i]
		w := s.waits[i]
		j.Wait = w
		in.sumWait += w
		run := j.Run
		r := run
		if r < tau {
			r = tau
		}
		if r <= 0 {
			in.sumBsld++
		} else {
			bsld := (w + run) / r
			if bsld < 1 {
				bsld = 1
			}
			in.sumBsld += bsld
		}
		if in.sink != nil {
			if err := in.sink(StreamRow{Job: j, Promised: s.promised[i]}); err != nil {
				return fmt.Errorf("sim: stream sink failed after %d rows: %w", in.retired, err)
			}
		}
		in.retired++
		in.winHead++
	}
	return nil
}

// streamResult assembles the Result of a streaming run from the running
// aggregates. Jobs and PromisedStart are nil — their contents went to the
// sink.
func (s *simulator) streamResult() *Result {
	in := &s.inState
	res := &Result{
		Violations:     s.violations,
		ViolationDelay: s.violationDelay,
		Backfilled:     s.backfilled,
		MaxQueueLen:    s.maxQueueSeen,
		Makespan:       s.makespan,
		QueueTimeline:  s.timeline,
	}
	if n := float64(in.retired); n > 0 {
		res.AvgWait = in.sumWait / n
		res.AvgBsld = in.sumBsld / n
	}
	if s.makespan > 0 {
		res.Utilization = s.cl.Utilization(s.makespan)
	}
	return res
}

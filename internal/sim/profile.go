package sim

import (
	"math"
	"sort"
)

// profile is a step function of free cores over future time, used to plan
// reservations. It starts from the current free count and regains cores as
// running jobs reach their expected ends; conservative backfilling also
// subtracts planned reservations from it.
//
// On the hot path the simulator does not build profiles with newProfile:
// each partition's AvailSet materializes into a per-partition scratch
// profile (AvailSet.buildInto), so steady-state scheduling passes reuse the
// same two slices and allocate nothing. newProfile remains as the
// from-scratch reference construction for tests and verification.
type profile struct {
	times []float64 // breakpoints, ascending; times[0] == now
	free  []int     // free cores during [times[i], times[i+1]); last entry extends to +Inf
}

// newProfile builds the availability profile at time now for a partition
// with the given current free count and the (end, procs) pairs of running
// jobs. Ends before now contribute immediately (defensive: a job at its
// exact end event is already released by the caller).
func newProfile(now float64, freeNow int, ends []JobEnd) *profile {
	p := &profile{times: []float64{now}, free: []int{freeNow}}
	if len(ends) == 0 {
		return p
	}
	sorted := append([]JobEnd(nil), ends...)
	// Stable keeps the caller's (deterministic) order among equal ends.
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].End < sorted[b].End })
	cur := freeNow
	for _, e := range sorted {
		t := e.End
		if t < now {
			t = now
		}
		cur += e.Procs
		last := len(p.times) - 1
		if t == p.times[last] {
			p.free[last] = cur
		} else {
			p.times = append(p.times, t)
			p.free = append(p.free, cur)
		}
	}
	return p
}

// searchF64 is sort.SearchFloat64s without the sort.Search closure: the
// smallest i with a[i] >= x. The profile queries below binary-search on
// every planning step, where the monomorphic loop both inlines and avoids
// the per-probe indirect call.
func searchF64(a []float64, x float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// freeAt returns the free cores at time t (t >= times[0]).
func (p *profile) freeAt(t float64) int {
	i := searchF64(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return p.free[i]
	}
	if i == 0 {
		return p.free[0]
	}
	return p.free[i-1]
}

// earliestStart returns the earliest time >= from at which procs cores stay
// free for dur seconds, plus the minimum free count over that window (used
// to compute the "extra" cores available alongside a reservation).
//
// Candidate starts are `from` and every breakpoint after it, in order —
// the same candidate sequence a naive scan tries — but candidates that are
// provably infeasible are skipped: when the window starting at c fails at
// segment j (free[j] < procs), every candidate c' in (c, times[j]] also
// covers segment j (times[j]-c' < times[j]-c < dur), so the search resumes
// at breakpoint j+1. The first feasible candidate — and therefore the
// result — is identical to the naive scan's; only the failures in between
// are skipped, making the search linear instead of quadratic in the number
// of breakpoints.
func (p *profile) earliestStart(from float64, procs int, dur float64) (start float64, minFree int) {
	times, free := p.times, p.free
	n := len(times)
	// Locate the segment containing from once; every later candidate is a
	// breakpoint whose index the sweep already knows, so the per-candidate
	// binary search a window()-based loop would pay is gone. Queries almost
	// always come in at the profile's base time (the simulator builds the
	// profile at now and asks from now), so the search itself is skipped
	// when from lands at or before the first breakpoint.
	i := 0
	if n > 0 && from > times[0] {
		i = searchF64(times, from)
		if i >= n || times[i] != from {
			if i > 0 {
				i--
			}
		}
	}
	cand, candIdx := from, i
	for {
		end := cand + dur
		j := candIdx
		ok := true
		mf := math.MaxInt64
		// The segment containing cand is always examined, even when the
		// window is empty (dur == 0): a zero-duration request still needs
		// procs cores free at its start instant (start() allocates them),
		// and skipping the check would make the answer depend on whether
		// cand happens to coincide with a stored breakpoint — the step
		// function, not its representation, must decide.
		for ; j < n; j++ {
			if j > candIdx && times[j] >= end {
				break
			}
			if free[j] < procs {
				ok = false
				break
			}
			if free[j] < mf {
				mf = free[j]
			}
		}
		if ok {
			if mf == math.MaxInt64 {
				mf = free[n-1]
			}
			return cand, mf
		}
		// Resume after the failing segment; times are strictly ascending so
		// times[j+1] > cand always holds (the failing segment either
		// contains cand or lies beyond it).
		if j+1 >= n {
			// After the last breakpoint everything running has ended.
			last := times[n-1]
			if last < from {
				last = from
			}
			return last, free[n-1]
		}
		cand, candIdx = times[j+1], j+1
	}
}

// earliestStartIdx is earliestStart for callers that will immediately
// reserve the window: alongside the start time it returns the index of the
// profile segment containing it, which reserveFrom uses to skip the binary
// searches a plain reserve() would repeat. The start time is computed by
// the same sweep as earliestStart, so the two agree bit-for-bit; only the
// minFree bookkeeping is dropped (conservative planning never consumes it).
func (p *profile) earliestStartIdx(from float64, procs int, dur float64) (start float64, idx int) {
	times, free := p.times, p.free
	n := len(times)
	i := 0
	if n > 0 && from > times[0] {
		i = searchF64(times, from)
		if i >= n || times[i] != from {
			if i > 0 {
				i--
			}
		}
	}
	cand, candIdx := from, i
	for {
		end := cand + dur
		j := candIdx
		ok := true
		// Same containing-segment rule as earliestStart (see there): a
		// zero-duration window still checks capacity at its start instant.
		for ; j < n; j++ {
			if j > candIdx && times[j] >= end {
				break
			}
			if free[j] < procs {
				ok = false
				break
			}
		}
		if ok {
			return cand, candIdx
		}
		if j+1 >= n {
			last := times[n-1]
			if last < from {
				last = from
			}
			return last, n - 1
		}
		cand, candIdx = times[j+1], j+1
	}
}

// reserveFrom is reserve with a position hint: idx is the index of the
// segment containing t (times[idx] <= t), as returned by earliestStartIdx.
// The split points are then found by the same forward walk the subtraction
// performs anyway, so the three binary searches of reserve() disappear —
// they dominated the flat profile of conservative planning. The resulting
// step function is identical to reserve()'s.
func (p *profile) reserveFrom(idx int, t, dur float64, procs int) {
	end := t + dur
	i := idx
	if t > p.times[i] {
		p.insertAt(i+1, t, p.free[i])
		i++
	}
	j := i
	for j < len(p.times) && p.times[j] < end {
		j++
	}
	if j == len(p.times) || p.times[j] != end {
		p.insertAt(j, end, p.free[j-1])
	}
	for k := i; k < j; k++ {
		p.free[k] -= procs
	}
}

// insertAt inserts breakpoint (t, v) at position i, shifting the tail.
func (p *profile) insertAt(i int, t float64, v int) {
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = v
}

// advanceTo moves the profile's base breakpoint forward to now, dropping
// breakpoints the clock has passed (the active segment's value carries
// over). Queries never look before the base, so the step function on
// [now, +Inf) — the only observable part — is unchanged.
func (p *profile) advanceTo(now float64) {
	i := searchF64(p.times, now)
	if i >= len(p.times) || p.times[i] != now {
		i-- // now falls inside the segment starting at times[i]
	}
	if i <= 0 {
		p.times[0] = now
		return
	}
	n := copy(p.times, p.times[i:])
	copy(p.free, p.free[i:])
	p.times = p.times[:n]
	p.free = p.free[:n]
	p.times[0] = now
}

// window reports whether procs cores remain free throughout [t, t+dur) and
// the minimum free count seen over the window.
//
// minFree contract: on the true path it is the minimum over every segment
// the window touches. On the false path it is a PARTIAL minimum — only the
// segments up to and including the first failing one were examined — so it
// must not be used as the window's minimum. The simulator only consumes
// minFree from successful windows (earliestStart propagates it exclusively
// alongside a feasible start, where it bounds the backfill "extra cores"
// budget); TestWindowMinFreeContract pins this so the allowance cannot
// silently widen.
func (p *profile) window(t, dur float64, procs int) (bool, int) {
	ok, mf, _ := p.windowIdx(t, dur, procs)
	return ok, mf
}

// windowIdx is window plus the index of the failing segment on the false
// path (-1 on success), which earliestStart uses to skip doomed candidates.
func (p *profile) windowIdx(t, dur float64, procs int) (bool, int, int) {
	end := t + dur
	minFree := math.MaxInt64
	// examine the segment containing t and all breakpoints within (t, end)
	i := searchF64(p.times, t)
	if i >= len(p.times) || p.times[i] != t {
		if i > 0 {
			i--
		}
	}
	// The containing segment is always examined, even for an empty window
	// (dur == 0): a zero-duration request still needs procs cores free at
	// its start instant, independent of breakpoint placement.
	i0 := i
	for ; i < len(p.times); i++ {
		segStart := p.times[i]
		if i > i0 && segStart >= end {
			break
		}
		if p.free[i] < minFree {
			minFree = p.free[i]
		}
		if p.free[i] < procs {
			return false, minFree, i
		}
	}
	if minFree == math.MaxInt64 {
		minFree = p.free[len(p.free)-1]
	}
	return true, minFree, -1
}

// reserve subtracts procs cores over [t, t+dur) from the profile, splitting
// segments as needed. Used by conservative backfilling to plan multiple
// reservations. The caller must have verified feasibility via window().
func (p *profile) reserve(t, dur float64, procs int) {
	end := t + dur
	p.split(t)
	p.split(end)
	// Only segments in [t, end) change; start at the first breakpoint >= t
	// instead of scanning the whole profile.
	for i := searchF64(p.times, t); i < len(p.times) && p.times[i] < end; i++ {
		p.free[i] -= procs
	}
}

// split inserts a breakpoint at time t (no-op if present or before start).
// The append grows into existing capacity in the steady state: conservative
// planning reuses per-partition scratch profiles whose segment storage is
// retained across passes.
func (p *profile) split(t float64) {
	if t <= p.times[0] {
		return
	}
	i := searchF64(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return
	}
	// value carried over from the preceding segment
	v := p.free[i-1]
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = v
}

package sim

import (
	"math"
	"sort"
)

// profile is a step function of free cores over future time, used to plan
// reservations. It starts from the current free count and regains cores as
// running jobs reach their expected ends; conservative backfilling also
// subtracts planned reservations from it.
type profile struct {
	times []float64 // breakpoints, ascending; times[0] == now
	free  []int     // free cores during [times[i], times[i+1]); last entry extends to +Inf
}

// newProfile builds the availability profile at time now for a partition
// with the given current free count and the (end, procs) pairs of running
// jobs. Ends before now contribute immediately (defensive: a job at its
// exact end event is already released by the caller).
func newProfile(now float64, freeNow int, ends []jobEnd) *profile {
	p := &profile{times: []float64{now}, free: []int{freeNow}}
	if len(ends) == 0 {
		return p
	}
	sorted := append([]jobEnd(nil), ends...)
	// Stable keeps the caller's (deterministic) order among equal ends.
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].end < sorted[b].end })
	cur := freeNow
	for _, e := range sorted {
		t := e.end
		if t < now {
			t = now
		}
		cur += e.procs
		last := len(p.times) - 1
		if t == p.times[last] {
			p.free[last] = cur
		} else {
			p.times = append(p.times, t)
			p.free = append(p.free, cur)
		}
	}
	return p
}

// jobEnd is one running job's expected completion.
type jobEnd struct {
	end   float64
	procs int
}

// freeAt returns the free cores at time t (t >= times[0]).
func (p *profile) freeAt(t float64) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return p.free[i]
	}
	if i == 0 {
		return p.free[0]
	}
	return p.free[i-1]
}

// earliestStart returns the earliest time >= from at which procs cores stay
// free for dur seconds, plus the minimum free count over that window (used
// to compute the "extra" cores available alongside a reservation).
func (p *profile) earliestStart(from float64, procs int, dur float64) (start float64, minFree int) {
	candidates := []float64{from}
	for _, t := range p.times {
		if t > from {
			candidates = append(candidates, t)
		}
	}
	for _, c := range candidates {
		ok, mf := p.window(c, dur, procs)
		if ok {
			return c, mf
		}
	}
	// After the last breakpoint everything is free (all running jobs done).
	last := p.times[len(p.times)-1]
	if last < from {
		last = from
	}
	return last, p.free[len(p.free)-1]
}

// window reports whether procs cores remain free throughout [t, t+dur) and
// the minimum free count seen over the window.
func (p *profile) window(t, dur float64, procs int) (bool, int) {
	end := t + dur
	minFree := math.MaxInt64
	// examine the segment containing t and all breakpoints within (t, end)
	i := sort.SearchFloat64s(p.times, t)
	if i >= len(p.times) || p.times[i] != t {
		if i > 0 {
			i--
		}
	}
	for ; i < len(p.times); i++ {
		segStart := p.times[i]
		if segStart >= end {
			break
		}
		if p.free[i] < minFree {
			minFree = p.free[i]
		}
		if p.free[i] < procs {
			return false, minFree
		}
	}
	if minFree == math.MaxInt64 {
		minFree = p.free[len(p.free)-1]
	}
	return true, minFree
}

// reserve subtracts procs cores over [t, t+dur) from the profile, splitting
// segments as needed. Used by conservative backfilling to plan multiple
// reservations. The caller must have verified feasibility via window().
func (p *profile) reserve(t, dur float64, procs int) {
	end := t + dur
	p.split(t)
	p.split(end)
	for i := range p.times {
		if p.times[i] >= t && p.times[i] < end {
			p.free[i] -= procs
		}
	}
}

// split inserts a breakpoint at time t (no-op if present or before start).
func (p *profile) split(t float64) {
	if t <= p.times[0] {
		return
	}
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return
	}
	// value carried over from the preceding segment
	v := p.free[i-1]
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = v
}

package sim

import (
	"math"
	"testing"

	"crosssched/internal/trace"
)

func TestFairshareUsageDecay(t *testing.T) {
	f := NewFairshareState(3600) // 1h half-life
	f.Charge(1, 0, 1000)
	if got := f.Usage(1, 0); got != 1000 {
		t.Fatalf("usage at charge time %v", got)
	}
	if got := f.Usage(1, 3600); math.Abs(got-500) > 1e-9 {
		t.Fatalf("usage after one half-life %v want 500", got)
	}
	if got := f.Usage(1, 7200); math.Abs(got-250) > 1e-9 {
		t.Fatalf("usage after two half-lives %v want 250", got)
	}
	if f.Usage(99, 100) != 0 {
		t.Fatal("unknown user should have zero usage")
	}
}

func TestFairshareChargeAccumulates(t *testing.T) {
	f := NewFairshareState(3600)
	f.Charge(1, 0, 100)
	f.Charge(1, 3600, 100) // old 100 decayed to 50, plus 100
	if got := f.Usage(1, 3600); math.Abs(got-150) > 1e-9 {
		t.Fatalf("accumulated usage %v want 150", got)
	}
}

func TestFairshareDefaultHalfLife(t *testing.T) {
	f := NewFairshareState(0)
	if f.HalfLife != 86400 {
		t.Fatalf("default half-life %v want 86400", f.HalfLife)
	}
}

func TestFairshareOrder(t *testing.T) {
	f := NewFairshareState(3600)
	f.Charge(0, 0, 1000) // heavy user
	f.Charge(1, 0, 10)   // light user
	users := []int{0, 1, 2}
	submits := []float64{1, 2, 3}
	order := f.Order(0, users, submits)
	// user 2 (zero usage) first, then 1, then 0
	if users[order[0]] != 2 || users[order[1]] != 1 || users[order[2]] != 0 {
		t.Fatalf("order %v", order)
	}
}

func TestFairPolicyPrefersLightUsers(t *testing.T) {
	// One core. Heavy user 0 submits two long jobs; light user 1 submits
	// one later. Under FCFS user 1 goes last; under Fair user 1 jumps
	// ahead of user 0's second job.
	jobs := []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 1, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 1, User: 0},
		{Submit: 2, Run: 10, Walltime: 10, Procs: 1, User: 1},
	}
	fcfs, err := Run(mk(1, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Run(mk(1, append([]trace.Job(nil), jobs...)),
		Options{Policy: Fair, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if !(fcfs.Jobs[2].Wait > fcfs.Jobs[1].Wait) {
		t.Fatalf("FCFS should serve user 0's second job first: %v %v",
			fcfs.Jobs[1].Wait, fcfs.Jobs[2].Wait)
	}
	if !(fair.Jobs[2].Wait < fair.Jobs[1].Wait) {
		t.Fatalf("Fair should serve the light user first: job1 wait %v, job2 wait %v",
			fair.Jobs[1].Wait, fair.Jobs[2].Wait)
	}
}

func TestNewPoliciesScoreAndParse(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v failed: %v %v", p, got, err)
		}
	}
	// F2/F3 prefer the cheaper job (lower rt*procs-ish score)
	a := &pending{submit: 100, reqTime: 100, procs: 1}
	b := &pending{submit: 100, reqTime: 10000, procs: 64}
	for _, p := range []Policy{F1, F2, F3} {
		if p.score(a, 200) >= p.score(b, 200) {
			t.Fatalf("%v should score the small/short job lower", p)
		}
	}
}

func TestWalltimePredictorChangesPlanning(t *testing.T) {
	// Capacity 10. J0 holds 8 cores with a huge walltime overestimate
	// (runs 100s, requests 10000s). J1 (head, 10 cores) blocks. J2 (2
	// cores, 150s) wants to backfill: under user walltimes the shadow is
	// at 10000 so J2 backfills trivially; with accurate predictions the
	// shadow is at ~100 and J2 (ending at 152 > 100) must NOT backfill
	// under EASY.
	jobs := []trace.Job{
		{Submit: 0, Run: 100, Walltime: 10000, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 150, Walltime: 150, Procs: 2, User: 2},
	}
	userEst, err := Run(mk(10, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if userEst.Jobs[2].Wait != 0 {
		t.Fatalf("with loose walltimes J2 should backfill: wait %v", userEst.Jobs[2].Wait)
	}
	oracle := func(j trace.Job) float64 { return j.Run }
	pred, err := Run(mk(10, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: EASY, WalltimePredictor: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Jobs[2].Wait == 0 {
		t.Fatal("with accurate predictions J2 must not delay the head")
	}
	// head starts exactly at 100 under the oracle
	if pred.Jobs[1].Wait != 99 {
		t.Fatalf("head wait %v want 99", pred.Jobs[1].Wait)
	}
}

func TestWalltimePredictorDoesNotKill(t *testing.T) {
	// Prediction is shorter than the true runtime; the job must still run
	// to completion (advisory estimate, not a limit).
	jobs := []trace.Job{
		{Submit: 0, Run: 100, Walltime: 0, Procs: 10, User: 0},
		{Submit: 1, Run: 10, Walltime: 0, Procs: 10, User: 1},
	}
	res, err := Run(mk(10, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: EASY,
			WalltimePredictor: func(trace.Job) float64 { return 5 }})
	if err != nil {
		t.Fatal(err)
	}
	// J1 starts only when J0 actually ends at t=100, despite the 5s plan.
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("wait %v want 99 (job must not be killed at prediction)", res.Jobs[1].Wait)
	}
}

package sim

import (
	"reflect"
	"sort"
	"sync"
	"testing"
)

// naiveRun re-runs the simulation with the static fast path disabled by
// monkey-free means: we simulate via a copy of the options using a dynamic
// policy wrapper... Instead, we verify equivalence structurally: sorting a
// queue built by insertSorted with the full comparator must be a no-op.
func TestInsertSortedMatchesFullSort(t *testing.T) {
	for _, pol := range []Policy{FCFS, SJF, LJF, SAF, F1, F2, F3} {
		s := &simulator{opt: Options{Policy: pol}, parts: make([]partState, 1)}
		jobs := []*pending{
			{idx: 0, submit: 10, reqTime: 100, procs: 4},
			{idx: 1, submit: 5, reqTime: 1000, procs: 1},
			{idx: 2, submit: 20, reqTime: 10, procs: 64},
			{idx: 3, submit: 5, reqTime: 1000, procs: 1}, // tie with idx 1
			{idx: 4, submit: 1, reqTime: 50, procs: 8},
			{idx: 5, submit: 30, reqTime: 500, procs: 2},
		}
		for _, j := range jobs {
			s.insertSorted(0, j)
		}
		got := append([]*pending(nil), s.parts[0].q.live()...)
		want := append([]*pending(nil), jobs...)
		sort.SliceStable(want, func(a, b int) bool { return s.less(want[a], want[b], 0) })
		for i := range want {
			if got[i].idx != want[i].idx {
				gotIdx := make([]int, len(got))
				wantIdx := make([]int, len(want))
				for k := range got {
					gotIdx[k] = got[k].idx
					wantIdx[k] = want[k].idx
				}
				t.Fatalf("%v: insertSorted order %v != full sort %v", pol, gotIdx, wantIdx)
			}
		}
	}
}

// TestStaticFastPathEquivalence runs the same workload under a static
// policy and checks the results equal a reference computed with the
// dynamic path (by forcing sortQueue through a Fair-like wrapper is not
// possible, so we compare against golden invariants instead): waits are
// deterministic and ordering-consistent with the policy.
func TestStaticFastPathEquivalence(t *testing.T) {
	tr := randomTrace(77, 300, 32)
	for _, pol := range []Policy{FCFS, SJF, SAF, F1} {
		a, err := Run(tr, Options{Policy: pol, Backfill: EASY})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		b, err := Run(tr, Options{Policy: pol, Backfill: EASY})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for i := range a.Jobs {
			if a.Jobs[i].Wait != b.Jobs[i].Wait {
				t.Fatalf("%v: nondeterministic fast path at job %d", pol, i)
			}
		}
		verifyNoOversubscription(t, tr, a, "fastpath/"+pol.String())
	}
}

// TestFCFSFastPathOrdering: under FCFS+NoBackfill, start times must be
// non-decreasing in submit order (the definitional FCFS property), which
// the fast path must preserve.
func TestFCFSFastPathOrdering(t *testing.T) {
	tr := randomTrace(13, 200, 16)
	res, err := Run(tr, Options{Policy: FCFS, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	prevStart := -1.0
	for i, j := range res.Jobs {
		start := j.Submit + j.Wait
		if start < prevStart-1e-9 {
			t.Fatalf("FCFS start order violated at job %d: %v < %v", i, start, prevStart)
		}
		prevStart = start
	}
}

// TestConcurrentRunsAreIdentical exercises the rewritten hot path from many
// goroutines sharing one trace: Run must be safe for concurrent use (all
// mutable state — queues, incremental availability sets, scratch profiles,
// score caches — is per-call) and fully deterministic. Run under -race in
// CI, this is the data-race coverage for the incremental fast path.
func TestConcurrentRunsAreIdentical(t *testing.T) {
	tr := randomTrace(2026, 400, 48)
	opts := []Options{
		{Policy: FCFS, Backfill: EASY},
		{Policy: SJF, Backfill: Conservative},
		{Policy: WFP3, Backfill: Relaxed, RelaxFactor: 0.1},
		{Policy: Fair, Backfill: AdaptiveRelaxed, RelaxFactor: 0.2},
	}
	const workers = 4
	results := make([][]*Result, len(opts))
	var wg sync.WaitGroup
	for oi := range opts {
		results[oi] = make([]*Result, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(oi, w int) {
				defer wg.Done()
				res, err := Run(tr, opts[oi])
				if err != nil {
					t.Errorf("opt %d worker %d: %v", oi, w, err)
					return
				}
				results[oi][w] = res
			}(oi, w)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for oi := range opts {
		for w := 1; w < workers; w++ {
			if !reflect.DeepEqual(results[oi][0], results[oi][w]) {
				t.Errorf("%v+%v: concurrent run %d differs from run 0",
					opts[oi].Policy, opts[oi].Backfill, w)
			}
		}
	}
}

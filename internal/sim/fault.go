package sim

import (
	"math"
	"slices"

	"crosssched/internal/fault"
	"crosssched/internal/obs"
)

// simFault is the simulator's per-run fault-injection state. It exists only
// when Options.Faults is enabled: the simulator holds a nil *simFault
// otherwise, so the zero-fault path pays exactly one nil check at each
// integration point and allocates nothing — the same pay-for-what-you-use
// contract as the observer.
//
// All per-job bookkeeping lives here rather than on the pending record so
// the hot pending/running layouts are untouched by the fault layer.
type simFault struct {
	cfg   *fault.Config
	sched *fault.Schedule
	next  int // next un-applied capacity event

	// Per-job state, indexed by submit-order job index.
	attempts      []int32   // completed (interrupted) attempts so far
	everStarted   []bool    // job has started at least once (waits/violations are first-attempt)
	lastStart     []float64 // start time of the current/last attempt
	credit        []float64 // banked checkpoint seconds (RecoveryCheckpoint)
	dead          []bool    // terminally failed by a fault
	willInterrupt []bool    // the job's in-flight attempt ends in an interrupt, not a completion

	// drained records, per compiled outage, how many cores were actually
	// taken down (an outage overlapping another may find less capacity up
	// than it asked for); the paired restore returns exactly that many.
	drained []int

	victims []running // scratch for outage victim selection

	retryCap int
	ckpt     float64

	// Wasted vs. goodput accounting, in core-seconds. Every attempt's
	// occupancy is classified when the attempt ends: completions are
	// goodput, interrupted attempts are wasted except for banked
	// checkpoint credit, and a terminal failure reclassifies the job's
	// banked credit as wasted. goodput + wasted therefore equals the busy
	// integral (up to float summation order), an invariant
	// check.AuditStream enforces on every fault run.
	goodput float64
	wasted  float64

	interrupts int
	requeues   int
	failed     int
}

// reset prepares the fault state for a run of nJobs jobs, reusing retained
// slice capacity.
func (f *simFault) reset(cfg *fault.Config, sched *fault.Schedule, nJobs int) {
	f.cfg = cfg
	f.sched = sched
	f.next = 0
	f.attempts = resetSlice(f.attempts, nJobs)
	f.everStarted = resetSlice(f.everStarted, nJobs)
	f.lastStart = resetSlice(f.lastStart, nJobs)
	f.credit = resetSlice(f.credit, nJobs)
	f.dead = resetSlice(f.dead, nJobs)
	f.willInterrupt = resetSlice(f.willInterrupt, nJobs)
	f.drained = resetSlice(f.drained, sched.Outages)
	f.victims = f.victims[:0]
	f.retryCap = cfg.RetryCap
	f.ckpt = cfg.CheckpointInterval
	f.goodput, f.wasted = 0, 0
	f.interrupts, f.requeues, f.failed = 0, 0, 0
}

// resetSlice returns a zeroed slice of length n, reusing capacity.
func resetSlice[T comparable](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// nextTime returns the next capacity event's time, +Inf when none remain.
func (f *simFault) nextTime() float64 {
	if f.next < len(f.sched.Events) {
		return f.sched.Events[f.next].Time
	}
	return math.Inf(1)
}

// canRetry reports whether job idx may be requeued after an interruption.
func (f *simFault) canRetry(idx int32) bool {
	return f.cfg.Recovery != fault.RecoveryNone && int(f.attempts[idx]) < f.retryCap
}

// applyCapacityFaults applies every compiled capacity event due at or
// before t: drains interrupt enough running jobs (victims) to free the
// cores being taken, restores return exactly what the paired drain took.
func (s *simulator) applyCapacityFaults(t float64, touched []bool) error {
	f := s.flt
	for f.next < len(f.sched.Events) && f.sched.Events[f.next].Time <= t {
		ev := f.sched.Events[f.next]
		f.next++
		p := ev.Part
		if ev.Down {
			// Clamp to the capacity still up, so overlapping outages on one
			// partition never drive the effective capacity negative. The
			// paired restore brings back the clamped amount.
			n := ev.Cores
			if up := s.cl.Capacity(p) - s.cl.DownCores(p); n > up {
				n = up
			}
			f.drained[ev.ID] = n
			if n == 0 {
				continue
			}
			if need := n - s.cl.Free(p); need > 0 {
				if err := s.interruptVictims(p, need, t, touched); err != nil {
					return err
				}
			}
			if err := s.cl.Drain(t, p, n); err != nil {
				return err
			}
			s.met.CapacityFaults++
			touched[p] = true
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.FaultNodeDown, Time: t, Job: -1,
					Part: p, Procs: n, Detail: ev.Pair,
				})
			}
		} else {
			n := f.drained[ev.ID]
			if n == 0 {
				continue
			}
			f.drained[ev.ID] = 0
			if err := s.cl.Restore(t, p, n); err != nil {
				return err
			}
			s.met.CapacityFaults++
			touched[p] = true
			if s.obsv != nil {
				s.obsv.Observe(obs.Event{
					Kind: obs.FaultNodeUp, Time: t, Job: -1,
					Part: p, Procs: n, Detail: ev.Pair,
				})
			}
		}
	}
	return nil
}

// interruptVictims interrupts running jobs in partition p until at least
// need cores are free, ahead of a capacity drain. Victim order is
// deterministic and oracle-mirrored: most recently started first (least
// sunk work lost), higher job index first on ties.
func (s *simulator) interruptVictims(p, need int, t float64, touched []bool) error {
	f := s.flt
	vic := f.victims[:0]
	for _, r := range s.compl.items {
		if int(r.part) == p {
			vic = append(vic, r)
		}
	}
	slices.SortFunc(vic, func(a, b running) int {
		sa, sb := f.lastStart[a.idx], f.lastStart[b.idx]
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		default:
			return int(b.idx) - int(a.idx)
		}
	})
	freed, k := 0, 0
	for k < len(vic) && freed < need {
		freed += int(vic[k].procs)
		k++
	}
	vic = vic[:k]
	f.victims = vic
	if k == 0 {
		return nil
	}
	// Remove the victims from the completion heap, then restore the heap
	// invariant canonically: ascending (real, idx) — a sorted array always
	// satisfies the heap property, and the canonical arrangement keeps
	// completion tie order deterministic for the event stream.
	kept := s.compl.items[:0]
	for _, r := range s.compl.items {
		victim := false
		for i := range vic {
			if vic[i].idx == r.idx {
				victim = true
				break
			}
		}
		if !victim {
			kept = append(kept, r)
		}
	}
	s.compl.items = kept
	slices.SortFunc(kept, func(a, b running) int {
		switch {
		case a.real < b.real:
			return -1
		case a.real > b.real:
			return 1
		default:
			return int(a.idx) - int(b.idx)
		}
	})
	for i := range vic {
		r := &vic[i]
		part, procs := int(r.part), int(r.procs)
		if err := s.cl.Release(t, part, procs); err != nil {
			return err
		}
		s.parts[part].avail.Remove(r.end, procs)
		s.parts[part].shadowSeedOK = false
		if t > s.makespan {
			s.makespan = t
		}
		touched[part] = true
		f.willInterrupt[r.idx] = false // the outage ends the attempt, not the drawn cut
		s.faultInterrupted(r, t, touched)
	}
	return nil
}

// faultInterrupted handles the end of an interrupted attempt: classify its
// occupancy as wasted/goodput, then requeue the job or fail it terminally.
// The caller has already released the attempt's cores and retired its
// completion-heap entry.
func (s *simulator) faultInterrupted(r *running, t float64, touched []bool) {
	f := s.flt
	j := &s.pendings[r.idx]
	part, procs := int(r.part), int(r.procs)
	elapsed := t - f.lastStart[r.idx]
	pf := float64(procs)
	f.interrupts++
	s.met.Interrupts++
	if s.obsv != nil {
		s.obsv.Observe(obs.Event{
			Kind: obs.FaultJobInterrupt, Time: t, Job: s.jobs[r.idx].ID,
			Part: part, Procs: procs, Detail: elapsed,
		})
	}
	if !f.canRetry(r.idx) {
		f.wasted += elapsed * pf
		if c := f.credit[r.idx]; c > 0 {
			// The banked checkpoint work dies with the job: reclassify it
			// so goodput only ever counts work that reached a completion
			// or survives in a resumable checkpoint.
			f.goodput -= c * pf
			f.wasted += c * pf
		}
		f.dead[r.idx] = true
		f.failed++
		s.met.FaultFailed++
		return
	}
	f.attempts[r.idx]++
	if f.cfg.Recovery == fault.RecoveryCheckpoint {
		banked := math.Floor(elapsed/f.ckpt) * f.ckpt
		if banked > elapsed {
			banked = elapsed
		}
		f.goodput += banked * pf
		f.wasted += (elapsed - banked) * pf
		f.credit[r.idx] += banked
		j.run -= banked // the next attempt resumes from the last checkpoint
	} else {
		f.wasted += elapsed * pf // restart from zero
	}
	f.requeues++
	s.met.Requeues++
	// Re-enter the waiting queue exactly like a fresh arrival: ordered
	// position under static policies, re-sort marker under dynamic ones.
	// The scan stamp is cleared — a stale stamp could match a live scan
	// generation and skip the job forever. The job keeps its original
	// submit time (queue priority) and its first promise.
	j.scanStamp = 0
	s.enqueue(part, j)
	s.queued++
	touched[part] = true
	if s.obsv != nil {
		s.obsv.Observe(obs.Event{
			Kind: obs.FaultJobRequeue, Time: t, Job: s.jobs[r.idx].ID,
			Part: part, Procs: procs, Detail: j.run,
		})
	}
}

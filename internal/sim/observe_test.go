package sim

import (
	"context"
	"errors"
	"testing"

	"crosssched/internal/obs"
)

// sameResult compares two results field-for-field with exact float
// equality: an attached observer must not perturb the schedule at all.
func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.AvgWait != b.AvgWait || a.AvgBsld != b.AvgBsld || a.Utilization != b.Utilization ||
		a.Makespan != b.Makespan || a.Violations != b.Violations ||
		a.ViolationDelay != b.ViolationDelay || a.Backfilled != b.Backfilled ||
		a.MaxQueueLen != b.MaxQueueLen {
		t.Fatalf("aggregate metrics diverge:\n%+v\n%+v", a, b)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Wait != b.Jobs[i].Wait {
			t.Fatalf("job %d wait %v vs %v", i, a.Jobs[i].Wait, b.Jobs[i].Wait)
		}
		if a.PromisedStart[i] != b.PromisedStart[i] {
			t.Fatalf("job %d promise %v vs %v", i, a.PromisedStart[i], b.PromisedStart[i])
		}
	}
}

// TestObserverDoesNotPerturb runs the same workload with and without an
// observer attached across policy/backfill shapes; the schedules must be
// float-for-float identical.
func TestObserverDoesNotPerturb(t *testing.T) {
	tr := randomTrace(7, 250, 64)
	for _, opt := range []Options{
		{Policy: FCFS, Backfill: EASY},
		{Policy: SJF, Backfill: Relaxed, RelaxFactor: 0.1},
		{Policy: FCFS, Backfill: AdaptiveRelaxed, RelaxFactor: 0.2},
		{Policy: Fair, Backfill: Conservative},
		{Policy: F1, Backfill: NoBackfill},
	} {
		plain, err := Run(tr, opt)
		if err != nil {
			t.Fatalf("%v/%v: %v", opt.Policy, opt.Backfill, err)
		}
		rec := &obs.Recorder{}
		opt.Observer = rec
		opt.Metrics = &obs.Metrics{}
		observed, err := Run(tr, opt)
		if err != nil {
			t.Fatalf("%v/%v observed: %v", opt.Policy, opt.Backfill, err)
		}
		sameResult(t, plain, observed)
		if len(rec.Events) == 0 {
			t.Fatalf("%v/%v: no events recorded", opt.Policy, opt.Backfill)
		}
	}
}

// TestObserverEventStream checks the shape of the emitted decision stream
// against the run's result on a backfilling-heavy workload.
func TestObserverEventStream(t *testing.T) {
	tr := randomTrace(21, 300, 48)
	rec := &obs.Recorder{}
	res, err := Run(tr, Options{
		Policy: FCFS, Backfill: Relaxed, RelaxFactor: 0.3, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cnt obs.Counter
	lastStart := -1.0
	for _, e := range rec.Events {
		cnt.Observe(e)
		if e.Kind == obs.JobStart {
			if e.Time < lastStart {
				t.Fatalf("start times regress: %v after %v", e.Time, lastStart)
			}
			lastStart = e.Time
		}
	}
	n := int64(tr.Len())
	if cnt.Count(obs.JobSubmit) != n || cnt.Count(obs.JobStart) != n || cnt.Count(obs.JobComplete) != n {
		t.Fatalf("lifecycle counts %d/%d/%d, want %d each",
			cnt.Count(obs.JobSubmit), cnt.Count(obs.JobStart), cnt.Count(obs.JobComplete), n)
	}
	if got := cnt.Count(obs.Backfill); got != int64(res.Backfilled) {
		t.Fatalf("backfill events %d, result says %d", got, res.Backfilled)
	}
	if got := cnt.Count(obs.PromiseViolation); got != int64(res.Violations) {
		t.Fatalf("violation events %d, result says %d", got, res.Violations)
	}
	delay := 0.0
	promises := 0
	for _, e := range rec.Events {
		switch e.Kind {
		case obs.PromiseViolation:
			delay += e.Detail
		case obs.ReservationMade:
			promises++
			if want := res.PromisedStart[e.Job]; want != e.Detail {
				t.Fatalf("job %d reservation event %v, result promise %v", e.Job, e.Detail, want)
			}
		}
	}
	if delay != res.ViolationDelay {
		t.Fatalf("violation delay from events %v, result %v", delay, res.ViolationDelay)
	}
	wantPromises := 0
	for _, p := range res.PromisedStart {
		if p >= 0 {
			wantPromises++
		}
	}
	if promises != wantPromises {
		t.Fatalf("%d reservation events, result has %d promised jobs", promises, wantPromises)
	}
}

// TestRunContextPreCanceled: an already-canceled context aborts before any
// work, with a wrapped context.Canceled and metrics marking the run.
func TestRunContextPreCanceled(t *testing.T) {
	tr := randomTrace(3, 50, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	met := &obs.Metrics{}
	_, err := RunContext(ctx, tr, Options{Policy: FCFS, Backfill: EASY, Metrics: met})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if !met.Canceled {
		t.Fatal("metrics should mark the run canceled")
	}
	if met.JobsStarted != 0 {
		t.Fatalf("pre-canceled run started %d jobs", met.JobsStarted)
	}
}

// cancelAfter cancels its context once n events have been observed —
// a deterministic mid-run cancellation, no wall-clock timing involved.
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Observe(obs.Event) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestRunContextMidRunCancel cancels deterministically mid-run and checks
// the loop aborts with a wrapped context.Canceled and partial metrics.
func TestRunContextMidRunCancel(t *testing.T) {
	tr := randomTrace(5, 400, 32)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	met := &obs.Metrics{}
	_, err := RunContext(ctx, tr, Options{
		Policy: FCFS, Backfill: EASY,
		Observer: &cancelAfter{n: 100, cancel: cancel},
		Metrics:  met,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if !met.Canceled || met.Events == 0 {
		t.Fatalf("metrics should show a canceled run with partial progress: %+v", met)
	}
	if met.JobsStarted >= int64(tr.Len()) {
		t.Fatalf("run finished despite cancellation (%d jobs)", met.JobsStarted)
	}
}

// TestMetricsCounters checks the per-run counters against known ground
// truth on static and dynamic policies.
func TestMetricsCounters(t *testing.T) {
	tr := randomTrace(11, 200, 64)
	met := &obs.Metrics{}
	res, err := Run(tr, Options{Policy: WFP3, Backfill: EASY, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(tr.Len())
	if met.Arrivals != n || met.Completions != n || met.JobsStarted != n {
		t.Fatalf("lifecycle counters %d/%d/%d, want %d each", met.Arrivals, met.Completions, met.JobsStarted, n)
	}
	if met.Events == 0 || met.Events > 2*n {
		t.Fatalf("event-loop iterations %d outside (0, %d]", met.Events, 2*n)
	}
	if met.SchedulePasses == 0 {
		t.Fatal("no schedule passes counted")
	}
	if met.ScoreSorts == 0 {
		t.Fatal("dynamic policy should count score sorts")
	}
	if met.Backfilled != int64(res.Backfilled) || met.Violations != int64(res.Violations) {
		t.Fatalf("counter/result mismatch: %+v vs %+v", met, res)
	}
	if met.WallSeconds < 0 || met.Canceled {
		t.Fatalf("bad wall time or cancel flag: %+v", met)
	}

	// Static policies never sort, so both score counters stay zero.
	met2 := &obs.Metrics{}
	if _, err := Run(tr, Options{Policy: FCFS, Backfill: EASY, Metrics: met2}); err != nil {
		t.Fatal(err)
	}
	if met2.ScoreSorts != 0 || met2.ScoreCacheHits != 0 {
		t.Fatalf("static policy counted score work: %+v", met2)
	}
}

// TestConcurrentRunsSharedObserver exercises the documented sharing rule
// under the race detector: concurrent runs may share one observer when it
// is wrapped in obs.Synced. (CI's race job relies on this test covering
// the observer-attached hot path.)
func TestConcurrentRunsSharedObserver(t *testing.T) {
	tr := randomTrace(31, 150, 48)
	shared := &obs.Counter{}
	o := obs.Synced(shared)
	const workers = 4
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			_, err := Run(tr, Options{Policy: FCFS, Backfill: EASY, Observer: o})
			errc <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	want := int64(workers * tr.Len())
	if shared.Count(obs.JobStart) != want {
		t.Fatalf("shared observer saw %d starts, want %d", shared.Count(obs.JobStart), want)
	}
}

package sim

import (
	"math"
	"testing"

	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// mk builds a trace on a single-partition system with the given capacity.
func mk(capacity int, jobs []trace.Job) *trace.Trace {
	t := trace.New(trace.System{Name: "T", Kind: trace.HPC, TotalCores: capacity})
	t.Jobs = jobs
	t.SortBySubmit()
	for i := range t.Jobs {
		if t.Jobs[i].VC == 0 {
			t.Jobs[i].VC = -1
		}
	}
	return t
}

func TestFCFSSequential(t *testing.T) {
	// capacity 10; two 10-core jobs must run back to back
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 10, User: 0},
		{Submit: 1, Run: 50, Walltime: 50, Procs: 10, User: 1},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Wait != 0 {
		t.Fatalf("job 0 wait %v want 0", res.Jobs[0].Wait)
	}
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("job 1 wait %v want 99", res.Jobs[1].Wait)
	}
	if res.Makespan != 150 {
		t.Fatalf("makespan %v want 150", res.Makespan)
	}
}

func TestParallelWhenFits(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 5, User: 0},
		{Submit: 0, Run: 100, Walltime: 100, Procs: 5, User: 1},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		if j.Wait != 0 {
			t.Fatalf("job %d wait %v want 0", i, j.Wait)
		}
	}
	if res.Makespan != 100 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}

func TestEASYBackfillFillsHole(t *testing.T) {
	// J0 uses 8/10 cores until t=100. J1 (head, 10 cores) must wait until
	// 100. J2 (2 cores, 50s) fits the hole and ends before the shadow.
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 50, Walltime: 50, Procs: 2, User: 2},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait != 0 {
		t.Fatalf("backfill job wait %v want 0", res.Jobs[2].Wait)
	}
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("head job wait %v want 99", res.Jobs[1].Wait)
	}
	if res.Backfilled != 1 {
		t.Fatalf("backfilled %d want 1", res.Backfilled)
	}
	if res.Violations != 0 {
		t.Fatalf("EASY produced %d violations", res.Violations)
	}
}

func TestNoBackfillHolds(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 50, Walltime: 50, Procs: 2, User: 2},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	// J2 must wait behind J1 under strict FCFS without backfilling:
	// J1 takes all 10 cores at t=100 and finishes at 200, so J2 starts
	// at 200 (wait 198).
	if res.Jobs[2].Wait != 198 {
		t.Fatalf("no-backfill J2 wait %v want 198", res.Jobs[2].Wait)
	}
	if res.Backfilled != 0 {
		t.Fatalf("backfilled %d want 0", res.Backfilled)
	}
}

func TestEASYDoesNotDelayHead(t *testing.T) {
	// A long backfill candidate that would delay the head must not start.
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 500, Walltime: 500, Procs: 2, User: 2}, // too long
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("head delayed: wait %v want 99", res.Jobs[1].Wait)
	}
	if res.Jobs[2].Wait <= 98 {
		t.Fatalf("long candidate backfilled: wait %v", res.Jobs[2].Wait)
	}
	if res.Violations != 0 {
		t.Fatal("EASY must not violate")
	}
}

func TestRelaxedBackfillAllowsBoundedDelay(t *testing.T) {
	// Head expected wait is ~99s; relaxed 50% allows candidates ending
	// up to ~49.5s past the shadow.
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 130, Walltime: 130, Procs: 2, User: 2}, // ends at 132 < 100+49.5... no
	})
	// ends at t=2+130=132; shadow=100; allowance=0.5*(100-1)=49.5 -> 132 <= 149.5 OK
	res, err := Run(tr, Options{Policy: FCFS, Backfill: Relaxed, RelaxFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait != 0 {
		t.Fatalf("relaxed candidate not backfilled: wait %v", res.Jobs[2].Wait)
	}
	// head now starts at 132 instead of 100 -> violation recorded
	if res.Violations != 1 {
		t.Fatalf("violations %d want 1", res.Violations)
	}
	if math.Abs(res.ViolationDelay-32) > 1e-6 {
		t.Fatalf("violation delay %v want 32", res.ViolationDelay)
	}
	if res.Jobs[1].Wait != 131 {
		t.Fatalf("head wait %v want 131", res.Jobs[1].Wait)
	}
}

func TestRelaxedRespectsBound(t *testing.T) {
	// candidate ends far past the allowance -> must NOT backfill
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 400, Walltime: 400, Procs: 2, User: 2},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: Relaxed, RelaxFactor: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait == 0 {
		t.Fatal("overlong candidate was backfilled")
	}
	if res.Violations != 0 {
		t.Fatalf("violations %d want 0", res.Violations)
	}
}

func TestAdaptiveScalesWithQueue(t *testing.T) {
	// With MaxQueueLen large, the adaptive factor ~ 0, behaving like EASY:
	// the moderately-long candidate must not backfill.
	jobs := []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 130, Walltime: 130, Procs: 2, User: 2},
	}
	res, err := Run(mk(10, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: AdaptiveRelaxed, RelaxFactor: 0.5, MaxQueueLen: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait == 0 {
		t.Fatal("adaptive with tiny factor should not have backfilled")
	}
	// With MaxQueueLen equal to the actual queue (2), factor is full 0.5:
	// behaves like plain relaxed and backfills.
	res2, err := Run(mk(10, append([]trace.Job(nil), jobs...)),
		Options{Policy: FCFS, Backfill: AdaptiveRelaxed, RelaxFactor: 0.5, MaxQueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jobs[2].Wait != 0 {
		t.Fatal("adaptive with full factor should have backfilled")
	}
}

func TestConservativeBackfill(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1},
		{Submit: 2, Run: 50, Walltime: 50, Procs: 2, User: 2},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: Conservative})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait != 0 {
		t.Fatalf("conservative should backfill the short job: wait %v", res.Jobs[2].Wait)
	}
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("head wait %v want 99", res.Jobs[1].Wait)
	}
}

func TestSJFOrder(t *testing.T) {
	// one core; three jobs arrive together; SJF runs shortest first
	tr := mk(1, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 1, User: 0},
		{Submit: 0.1, Run: 10, Walltime: 10, Procs: 1, User: 1},
		{Submit: 0.2, Run: 1, Walltime: 1, Procs: 1, User: 2},
	})
	res, err := Run(tr, Options{Policy: SJF, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	// J0 starts immediately (empty queue). After it ends at 100, SJF picks
	// J2 (run 1) then J1 (run 10).
	if res.Jobs[2].Wait >= res.Jobs[1].Wait {
		t.Fatalf("SJF order wrong: waits %v %v", res.Jobs[1].Wait, res.Jobs[2].Wait)
	}
}

func TestLJFOrder(t *testing.T) {
	tr := mk(1, []trace.Job{
		{Submit: 0, Run: 5, Walltime: 5, Procs: 1, User: 0},
		{Submit: 0.1, Run: 10, Walltime: 10, Procs: 1, User: 1},
		{Submit: 0.2, Run: 100, Walltime: 100, Procs: 1, User: 2},
	})
	res, err := Run(tr, Options{Policy: LJF, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[2].Wait >= res.Jobs[1].Wait {
		t.Fatalf("LJF order wrong: long job should go first")
	}
}

func TestWalltimeTruncation(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 1000, Walltime: 100, Procs: 10, User: 0},
		{Submit: 1, Run: 10, Walltime: 10, Procs: 10, User: 1},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	// job 0 is killed at walltime 100, so job 1 starts at 100
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("wait %v want 99 (walltime kill)", res.Jobs[1].Wait)
	}
}

func TestVirtualClusterIsolation(t *testing.T) {
	// 2 VCs of 5 cores each. VC0 is busy; a VC1 job must not help VC0's
	// queue, and vice versa — the Philly pathology.
	tr := trace.New(trace.System{Name: "P", Kind: trace.DL, TotalCores: 10, VirtualClusters: 2})
	tr.Jobs = []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 5, User: 0, VC: 0},
		{Submit: 1, Run: 10, Walltime: 10, Procs: 5, User: 1, VC: 0}, // must wait
		{Submit: 2, Run: 10, Walltime: 10, Procs: 5, User: 2, VC: 1}, // free VC
	}
	tr.SortBySubmit()
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Wait != 99 {
		t.Fatalf("VC0 job wait %v want 99", res.Jobs[1].Wait)
	}
	if res.Jobs[2].Wait != 0 {
		t.Fatalf("VC1 job wait %v want 0", res.Jobs[2].Wait)
	}
}

func TestJobLargerThanPartitionRejected(t *testing.T) {
	tr := trace.New(trace.System{Name: "P", Kind: trace.DL, TotalCores: 10, VirtualClusters: 2})
	tr.Jobs = []trace.Job{{Submit: 0, Run: 1, Walltime: 1, Procs: 8, User: 0, VC: 0}}
	if _, err := Run(tr, Options{}); err == nil {
		t.Fatal("job larger than its partition accepted")
	}
}

func TestMetricsAggregation(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 10, User: 0},
		{Submit: 0, Run: 100, Walltime: 100, Procs: 10, User: 1},
	})
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgWait-50) > 1e-9 {
		t.Fatalf("avg wait %v want 50", res.AvgWait)
	}
	// bsld: job0 = 1, job1 = (100+100)/100 = 2 -> avg 1.5
	if math.Abs(res.AvgBsld-1.5) > 1e-9 {
		t.Fatalf("avg bsld %v want 1.5", res.AvgBsld)
	}
	// 10 cores busy for 200s of 200s makespan -> util 1.0
	if math.Abs(res.Utilization-1) > 1e-9 {
		t.Fatalf("utilization %v want 1", res.Utilization)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(trace.System{Name: "E", TotalCores: 4})
	res, err := Run(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait != 0 || res.Makespan != 0 || len(res.Jobs) != 0 {
		t.Fatalf("empty trace result wrong: %+v", res)
	}
}

func TestInvalidTraceRejected(t *testing.T) {
	tr := mk(10, []trace.Job{{Submit: 0, Run: 1, Procs: 0, User: 0}})
	if _, err := Run(tr, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	tr := mk(10, []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 10, User: 0, Wait: -1},
		{Submit: 1, Run: 50, Walltime: 50, Procs: 10, User: 1, Wait: -1},
	})
	if _, err := Run(tr, Options{Policy: FCFS, Backfill: EASY}); err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[1].Wait != -1 {
		t.Fatal("input trace mutated")
	}
}

// randomTrace generates a busy random workload for invariant testing.
func randomTrace(seed uint64, n, capacity int) *trace.Trace {
	r := dist.NewRNG(seed)
	tr := trace.New(trace.System{Name: "R", Kind: trace.HPC, TotalCores: capacity})
	t := 0.0
	for i := 0; i < n; i++ {
		t += dist.Exponential{Rate: 0.05}.Sample(r)
		run := dist.LogNormalFromMedian(60, 1.2).Sample(r)
		procs := r.Intn(capacity/2) + 1
		wall := run * (1 + r.Float64())
		tr.Jobs = append(tr.Jobs, trace.Job{
			Submit: t, Run: run, Walltime: wall, Procs: procs,
			User: r.Intn(8), VC: -1, Wait: -1,
		})
	}
	tr.SortBySubmit()
	return tr
}

// TestInvariantsAcrossConfigs drives every policy x backfill combination on
// a random workload and checks the global invariants: every job starts at
// or after submission, EASY/none/conservative never record violations, and
// utilization stays within [0, 1].
func TestInvariantsAcrossConfigs(t *testing.T) {
	tr := randomTrace(99, 300, 64)
	policies := []Policy{FCFS, SJF, LJF, SAF, WFP3, F1}
	backfills := []BackfillKind{NoBackfill, EASY, Conservative, Relaxed, AdaptiveRelaxed}
	for _, pol := range policies {
		for _, bf := range backfills {
			res, err := Run(tr, Options{Policy: pol, Backfill: bf, RelaxFactor: 0.1})
			if err != nil {
				t.Fatalf("%v/%v: %v", pol, bf, err)
			}
			for i, j := range res.Jobs {
				if j.Wait < 0 {
					t.Fatalf("%v/%v: job %d negative wait %v", pol, bf, i, j.Wait)
				}
			}
			if res.Utilization < 0 || res.Utilization > 1+1e-9 {
				t.Fatalf("%v/%v: utilization %v", pol, bf, res.Utilization)
			}
			// Promise-keeping guarantees hold for FCFS, where the head
			// order is stable. Dynamic policies may legitimately reorder
			// a previously promised job behind a newcomer.
			if bf == NoBackfill && res.Violations != 0 {
				t.Fatalf("%v/%v: %d violations, want 0", pol, bf, res.Violations)
			}
			if pol == FCFS && (bf == EASY || bf == Conservative) && res.Violations != 0 {
				t.Fatalf("%v/%v: %d violations, want 0", pol, bf, res.Violations)
			}
			if res.MaxQueueLen < 0 {
				t.Fatalf("%v/%v: bad max queue", pol, bf)
			}
		}
	}
}

// TestBackfillImprovesWait checks the qualitative claim backfilling is
// built on: EASY should not worsen (and typically improves) average wait
// over no backfilling for FCFS on a congested workload.
func TestBackfillImprovesWait(t *testing.T) {
	tr := randomTrace(7, 400, 32)
	plain, err := Run(tr, Options{Policy: FCFS, Backfill: NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if easy.AvgWait > plain.AvgWait*1.05 {
		t.Fatalf("EASY wait %v much worse than none %v", easy.AvgWait, plain.AvgWait)
	}
	if easy.Backfilled == 0 {
		t.Fatal("EASY never backfilled on a congested workload")
	}
}

func TestPolicyAndBackfillParsing(t *testing.T) {
	for _, p := range []Policy{FCFS, SJF, LJF, SAF, WFP3, F1} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("policy round trip %v failed", p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	for _, b := range []BackfillKind{NoBackfill, EASY, Conservative, Relaxed, AdaptiveRelaxed} {
		got, err := ParseBackfill(b.String())
		if err != nil || got != b {
			t.Fatalf("backfill round trip %v failed", b)
		}
	}
	if _, err := ParseBackfill("bogus"); err == nil {
		t.Fatal("bogus backfill accepted")
	}
}

func TestDeterminism(t *testing.T) {
	tr := randomTrace(5, 200, 32)
	a, err := Run(tr, Options{Policy: WFP3, Backfill: Relaxed, RelaxFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Options{Policy: WFP3, Backfill: Relaxed, RelaxFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Wait != b.Jobs[i].Wait {
			t.Fatalf("nondeterministic wait at job %d", i)
		}
	}
	if a.Violations != b.Violations || a.Backfilled != b.Backfilled {
		t.Fatal("nondeterministic counters")
	}
}

func TestQueueTimeline(t *testing.T) {
	tr := randomTrace(3, 300, 16)
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueueTimeline) == 0 {
		t.Fatal("no timeline samples")
	}
	if len(res.QueueTimeline) >= 2*maxTimelineSamples {
		t.Fatalf("timeline not thinned: %d samples", len(res.QueueTimeline))
	}
	maxSeen := 0
	prevT := -1.0
	for _, s := range res.QueueTimeline {
		if s.Time < prevT {
			t.Fatal("timeline not time-ordered")
		}
		prevT = s.Time
		if s.Length < 0 {
			t.Fatal("negative queue length")
		}
		if s.Length > maxSeen {
			maxSeen = s.Length
		}
	}
	if maxSeen > res.MaxQueueLen {
		t.Fatalf("timeline max %d exceeds reported max %d", maxSeen, res.MaxQueueLen)
	}
}

// Package sim implements a discrete-event cluster job-scheduling simulator —
// the Go equivalent of SchedGym, the simulator the paper uses for all of its
// scheduling experiments (Section II-C, Section VI-B).
//
// The simulator replays a trace's arrivals against a cluster model, ordering
// the waiting queue with a pluggable priority policy, starting jobs when
// resources fit, and opportunistically backfilling behind a reservation for
// the queue head. It supports the paper's relaxed backfilling (Ward et al.)
// and the adaptive relaxed backfilling the paper contributes, and reports
// the paper's metrics: average wait, average bounded slowdown, utilization,
// and reservation violations.
package sim

import (
	"fmt"
	"math"
)

// Policy orders the waiting queue. Lower score schedules first.
type Policy int

const (
	// FCFS is first-come-first-serve (by submit time).
	FCFS Policy = iota
	// SJF is shortest-job-first by requested (or actual) runtime.
	SJF
	// LJF is longest-job-first.
	LJF
	// SAF is smallest-area-first: requested runtime x cores.
	SAF
	// WFP3 is the dynamic priority from the SchedGym/RLScheduler line of
	// work: favors jobs with large (wait/runtime)^3 * cores.
	WFP3
	// F1 is the learned linear priority function from the RLScheduler
	// paper, a strong hand-tuned baseline.
	F1
	// F2 is RLScheduler's second reference function
	// (sqrt(rt)*n + 25600*log10(submit)).
	F2
	// F3 is RLScheduler's third reference function
	// (rt*n + 6,860,000*log10(submit)).
	F3
	// Fair orders the queue by decayed per-user usage (light users
	// first) — the Philly-style fair-sharing policy.
	Fair
)

// Policies lists every policy in declaration order.
var Policies = []Policy{FCFS, SJF, LJF, SAF, WFP3, F1, F2, F3, Fair}

// static reports whether the policy's priority score is independent of the
// current time and scheduler state. Static policies allow the simulator to
// keep the queue sorted incrementally instead of re-sorting every pass.
func (p Policy) static() bool {
	switch p {
	case FCFS, SJF, LJF, SAF, F1, F2, F3:
		return true
	default: // WFP3 depends on waits; Fair depends on usage accounts
		return false
	}
}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case SJF:
		return "SJF"
	case LJF:
		return "LJF"
	case SAF:
		return "SAF"
	case WFP3:
		return "WFP3"
	case F1:
		return "F1"
	case F2:
		return "F2"
	case F3:
		return "F3"
	case Fair:
		return "Fair"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return FCFS, fmt.Errorf("sim: unknown policy %q", s)
}

// score returns the priority score of a pending job at time now; the queue
// is sorted ascending by score (ties broken by submit then ID upstream).
func (p Policy) score(j *pending, now float64) float64 {
	return p.Score(j.reqTime, j.procs, j.submit, now)
}

// Score is the policy's priority formula on raw job attributes: the
// planning runtime estimate, requested cores, submission time, and the
// current time. Lower scores schedule first. It is exported so independent
// verifiers (internal/check's reference oracle) rank jobs with bit-identical
// scores while reimplementing the scheduling machinery itself.
func (p Policy) Score(reqTime float64, procs int, submit, now float64) float64 {
	rt := reqTime
	if rt <= 0 {
		rt = 1
	}
	switch p {
	case FCFS:
		return submit
	case SJF:
		return rt
	case LJF:
		return -rt
	case SAF:
		return rt * float64(procs)
	case WFP3:
		wait := now - submit
		r := wait / rt
		return -(r * r * r * float64(procs))
	case F1:
		// RLScheduler's F1: minimize log10(rt)*procs + 870*log10(submit).
		sub := submit
		if sub < 1 {
			sub = 1
		}
		return math.Log10(rt)*float64(procs) + 870*math.Log10(sub)
	case F2:
		sub := submit
		if sub < 1 {
			sub = 1
		}
		return math.Sqrt(rt)*float64(procs) + 25600*math.Log10(sub)
	case F3:
		sub := submit
		if sub < 1 {
			sub = 1
		}
		return rt*float64(procs) + 6.86e6*math.Log10(sub)
	case Fair:
		// handled by the simulator, which holds the usage state; the
		// static fallback is FCFS.
		return submit
	default:
		return submit
	}
}

// BackfillKind selects the backfilling strategy.
type BackfillKind int

const (
	// NoBackfill disables backfilling entirely.
	NoBackfill BackfillKind = iota
	// EASY backfills behind a reservation for the queue head only, never
	// delaying the head's promised start (Mu'alem & Feitelson).
	EASY
	// Conservative gives every queued job a reservation; a backfill must
	// not delay any of them.
	Conservative
	// Relaxed allows a backfill to delay the head's promised start by up
	// to RelaxFactor x the head's expected wait (Ward et al.).
	Relaxed
	// AdaptiveRelaxed scales the relax factor with queue pressure:
	// factor = RelaxFactor * queueLen / maxQueueLen (the paper's Eq. 1).
	AdaptiveRelaxed
)

// Backfills lists every backfill kind in declaration order.
var Backfills = []BackfillKind{NoBackfill, EASY, Conservative, Relaxed, AdaptiveRelaxed}

// String names the backfill kind.
func (b BackfillKind) String() string {
	switch b {
	case NoBackfill:
		return "none"
	case EASY:
		return "easy"
	case Conservative:
		return "conservative"
	case Relaxed:
		return "relaxed"
	case AdaptiveRelaxed:
		return "adaptive"
	default:
		return fmt.Sprintf("BackfillKind(%d)", int(b))
	}
}

// ParseBackfill converts a backfill name to a BackfillKind.
func ParseBackfill(s string) (BackfillKind, error) {
	for _, b := range Backfills {
		if b.String() == s {
			return b, nil
		}
	}
	return NoBackfill, fmt.Errorf("sim: unknown backfill %q", s)
}

package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"crosssched/internal/cluster"
	"crosssched/internal/trace"
)

// Checkpoint is a paused simulation that can be extended with future
// arrivals, advanced further, and forked into what-if runs. Because
// runUntil's pause leaves the simulator in exactly the state a full run
// passes through, a fork run to completion is float-for-float identical to
// a cold run of the same (possibly extended) trace under the same options —
// the property the digital twin's warm-started what-if forks rely on: the
// twin keeps one checkpoint per candidate configuration at the session
// clock and forks it per query instead of replaying the whole submission
// log from t=0 every time.
//
// All methods are safe for concurrent use. WhatIf holds the lock only while
// cloning; concurrent forks then run independently.
type Checkpoint struct {
	mu      sync.Mutex
	opt     Options
	sys     trace.System
	jobs    []trace.Job // owned, append-only
	nParts  int
	caps    []int
	s       simulator // owns its cluster; never pooled
	pauseAt float64
	broken  error // a failed advance poisons the checkpoint
}

// RunToCheckpoint validates tr, runs it under opt up to (exclusively)
// pauseAt, and returns the paused simulation. Fault injection cannot be
// checkpointed (its RNG and per-job attempt state are not cloneable);
// Observer, Metrics, and Shards are ignored — forks are headless replays.
// The trace is copied; the caller's slice is not retained.
func RunToCheckpoint(tr *trace.Trace, opt Options, pauseAt float64) (*Checkpoint, error) {
	if opt.Faults.Enabled() {
		return nil, fmt.Errorf("sim: checkpoints do not support fault injection")
	}
	opt.Observer = nil
	opt.Metrics = nil
	opt.Shards = 0
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == Relaxed || opt.Backfill == AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	caps := cluster.EvenPartitions(tr.System.TotalCores, nParts)
	cl, err := cluster.NewPartitioned(caps)
	if err != nil {
		return nil, fmt.Errorf("sim: invalid cluster shape (%d cores, %d partitions): %w",
			tr.System.TotalCores, nParts, err)
	}
	for i := range tr.Jobs {
		p := partitionOf(&tr.Jobs[i], nParts)
		if tr.Jobs[i].Procs > caps[p] {
			return nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				tr.Jobs[i].ID, tr.Jobs[i].Procs, p, caps[p])
		}
	}
	ck := &Checkpoint{
		opt:     opt,
		sys:     tr.System,
		jobs:    append([]trace.Job(nil), tr.Jobs...),
		nParts:  nParts,
		caps:    caps,
		pauseAt: pauseAt,
	}
	own := &trace.Trace{System: tr.System, Jobs: ck.jobs}
	ck.s.reset(context.Background(), own, opt, cl, nParts)
	if err := ck.s.runUntil(pauseAt); err != nil {
		return nil, err
	}
	return ck, nil
}

// PausedAt returns the checkpoint's pause time: every event strictly before
// it has been processed.
func (ck *Checkpoint) PausedAt() float64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.pauseAt
}

// Len returns the number of jobs in the checkpoint's trace.
func (ck *Checkpoint) Len() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.jobs)
}

// Extend appends future arrivals to the checkpoint's trace. The jobs must
// continue the existing submit order and arrive at or after the pause time
// (events before it have already been processed and cannot be revised); an
// append-only log whose writes are clamped to the advancing clock — the
// twin's submission log — satisfies this by construction.
func (ck *Checkpoint) Extend(jobs []trace.Job) error {
	if len(jobs) == 0 {
		return nil
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.broken != nil {
		return ck.broken
	}
	last := ck.pauseAt
	if n := len(ck.jobs); n > 0 && ck.jobs[n-1].Submit > last {
		last = ck.jobs[n-1].Submit
	}
	for i := range jobs {
		j := &jobs[i]
		if err := j.Validate(); err != nil {
			return fmt.Errorf("sim: checkpoint extend: %w", err)
		}
		if j.Submit < last {
			return fmt.Errorf("sim: checkpoint extend: job %d at %v arrives before %v (already simulated)",
				j.ID, j.Submit, last)
		}
		last = j.Submit
		p := partitionOf(j, ck.nParts)
		if j.Procs > ck.caps[p] {
			return fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				j.ID, j.Procs, p, ck.caps[p])
		}
	}
	ck.jobs = append(ck.jobs, jobs...)
	s := &ck.s
	s.jobs = ck.jobs
	// Grow the per-arrival arrays alongside. The pending arena may move;
	// queue entries point into it and must be re-anchored by arrival index
	// (idxBase is always 0 here — checkpoints are materialized).
	oldArena := s.pendings
	s.pendings = append(s.pendings, make([]pending, len(jobs))...)
	if len(oldArena) > 0 && &oldArena[0] != &s.pendings[0] {
		for p := range s.parts {
			q := &s.parts[p].q
			for i, pj := range q.buf[q.head:] {
				q.buf[q.head+i] = &s.pendings[pj.idx]
			}
		}
	}
	s.waits = append(s.waits, make([]float64, len(jobs))...)
	for range jobs {
		s.promised = append(s.promised, -1)
	}
	return nil
}

// AdvanceTo moves the pause time forward to t, processing every event
// strictly before it. Times at or before the current pause are a no-op, so
// concurrent callers with different clocks compose (the later one wins).
func (ck *Checkpoint) AdvanceTo(t float64) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.broken != nil {
		return ck.broken
	}
	if t <= ck.pauseAt {
		return nil
	}
	if err := ck.s.runUntil(t); err != nil {
		ck.broken = fmt.Errorf("sim: checkpoint advance failed: %w", err)
		return ck.broken
	}
	ck.pauseAt = t
	return nil
}

// WhatIf forks the paused simulation and runs the fork to completion,
// returning the full-trace Result — identical to a cold run of the
// checkpoint's current trace under its options. The checkpoint itself is
// not advanced; forks are independent and may run concurrently.
func (ck *Checkpoint) WhatIf(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ck.mu.Lock()
	if ck.broken != nil {
		ck.mu.Unlock()
		return nil, ck.broken
	}
	fork := &simulator{}
	cloneSimulator(fork, &ck.s, ctx)
	ck.mu.Unlock()

	if err := fork.runUntil(math.Inf(1)); err != nil {
		return nil, err
	}
	if fork.started != fork.next {
		return nil, fmt.Errorf("sim: only %d/%d jobs started (scheduler stuck)", fork.started, fork.next)
	}
	return fork.result(nil)
}

// cloneSimulator copies a paused materialized simulator into dst so the two
// can run independently. Authoritative state — the pending arena, queues,
// completion heap, cluster, fair-share accounts, per-arrival arrays, and
// every counter — is deep-copied; pure caches (score sort, profile, shadow,
// backfill-scan memo, conservative plan) are dropped instead, which the
// cache invariants already prove changes no scheduling decision, only
// re-derivation work. dst must be fresh (zero) storage.
func cloneSimulator(dst, src *simulator, ctx context.Context) {
	dst.opt = src.opt
	dst.jobs = src.jobs // read-only; Extend appends only beyond this header's len
	dst.cl = src.cl.Clone()
	dst.now = src.now
	dst.next = src.next
	dst.idxBase = 0
	dst.ctx = ctx
	dst.done = ctx.Done()
	dst.met = src.met

	dst.pendings = append([]pending(nil), src.pendings...)
	dst.compl.items = append([]running(nil), src.compl.items...)
	dst.waits = append([]float64(nil), src.waits...)
	dst.promised = append([]float64(nil), src.promised...)
	dst.timeline = append(make([]QueueSample, 0, cap(src.timeline)), src.timeline...)
	dst.touched = make([]bool, len(src.parts))

	dst.parts = make([]partState, len(src.parts))
	for p := range src.parts {
		sp, dp := &src.parts[p], &dst.parts[p]
		// Queue: mirrors copy verbatim; entry pointers re-anchor into the
		// cloned arena by arrival index.
		dp.q.head = sp.q.head
		dp.q.buf = make([]*pending, len(sp.q.buf))
		dp.q.stamps = append([]uint64(nil), sp.q.stamps...)
		dp.q.procs = append([]int32(nil), sp.q.procs...)
		for i := sp.q.head; i < len(sp.q.buf); i++ {
			dp.q.buf[i] = &dst.pendings[sp.q.buf[i].idx]
		}
		dp.avail.ends = append([]float64(nil), sp.avail.ends...)
		dp.avail.procs = append([]int(nil), sp.avail.procs...)
		dp.avail.ver = sp.avail.ver
		// fitBound is authoritative (a sound lower bound the original run
		// would carry forward identically); the caches restart cold.
		dp.fitBound = sp.fitBound
		dp.plan.reset()
		// Bump past every stamp copied with the arena so no stale backfill
		// memo survives into the fork.
		dp.scanGen = sp.scanGen + 1
	}

	if src.fair != nil {
		dst.fair = src.fair.Clone()
	}
	dst.fairVer = src.fairVer

	dst.queued = src.queued
	dst.violations = src.violations
	dst.violationDelay = src.violationDelay
	dst.backfilled = src.backfilled
	dst.maxQueueSeen = src.maxQueueSeen
	dst.started = src.started
	dst.makespan = src.makespan
}

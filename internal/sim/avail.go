package sim

import "math"

// JobEnd is one running job's planned completion: the time its cores come
// back at the scheduler's planning horizon (start + walltime estimate) and
// how many cores it holds.
type JobEnd struct {
	End   float64
	Procs int
}

// AvailSet incrementally maintains the multiset of planned ends of a
// partition's running jobs. It replaces the per-pass "collect the runset
// into a slice, sort it, fold it into a step function" reconstruction the
// simulator used to perform at every blocked-head scheduling pass: Add on
// dispatch and Remove on release keep the set sorted at all times, so
// materializing the availability profile is a single allocation-free linear
// fold (buildInto).
//
// Entries are aggregated by end time — one entry per distinct End with the
// core counts summed — which is exactly the information the merged step
// function depends on: the profile newProfile builds from the raw runset is
// a function only of this multiset, not of the order jobs were visited in.
// That makes the incremental profile bit-identical to a from-scratch
// rebuild, an invariant internal/check pins with a property test against
// both Snapshot/ReferenceSnapshot and its own naive availability model.
//
// The type is exported (with a read-only verification surface) so that
// internal/check can drive it directly; the simulator itself embeds one
// AvailSet per partition.
// The set is stored as parallel arrays rather than []JobEnd: the binary
// search on the dispatch/release path probes only end times, and the dense
// float64 array halves the cache lines each probe touches.
type AvailSet struct {
	ends  []float64 // ascending; one entry per distinct end time
	procs []int     // cores held at ends[i], summed over aggregated jobs
	ver   uint64    // bumped on every mutation; keys the simulator's profile cache
}

// Len returns the number of distinct planned end times in the set.
func (a *AvailSet) Len() int { return len(a.ends) }

// reset empties the set (keeping storage) for simulator reuse.
func (a *AvailSet) reset() {
	a.ends = a.ends[:0]
	a.procs = a.procs[:0]
	a.ver++
}

// search returns the position of end in the aggregated slice, or the
// insertion point when absent. Hand-rolled sort.Search: the closure call per
// probe is measurable on the simulator's dispatch/release path.
func (a *AvailSet) search(end float64) int {
	lo, hi := 0, len(a.ends)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.ends[mid] < end {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add records a started job's planned end. O(log n) search plus an O(n)
// memmove in the worst case; ends aggregate, so n is the number of distinct
// end times among running jobs, not the number of running jobs.
func (a *AvailSet) Add(end float64, procs int) {
	a.ver++
	// Dispatches trend toward the planning horizon, so the new end is very
	// often the latest; append without searching when it is.
	if n := len(a.ends); n == 0 || end > a.ends[n-1] {
		a.ends = append(a.ends, end)
		a.procs = append(a.procs, procs)
		return
	}
	i := a.search(end)
	if i < len(a.ends) && a.ends[i] == end {
		a.procs[i] += procs
		return
	}
	a.ends = append(a.ends, 0)
	copy(a.ends[i+1:], a.ends[i:])
	a.ends[i] = end
	a.procs = append(a.procs, 0)
	copy(a.procs[i+1:], a.procs[i:])
	a.procs[i] = procs
}

// Remove retracts a previously-added planned end (on job release). The
// (end, procs) pair must have been Added before; the simulator guarantees
// this by storing the exact planned end on the running record, so the float
// equality match is exact by construction.
func (a *AvailSet) Remove(end float64, procs int) {
	a.ver++
	// Completions trend toward the earliest planned end; check the front
	// before searching.
	i := 0
	if len(a.ends) == 0 || a.ends[0] != end {
		i = a.search(end)
	}
	if i >= len(a.ends) || a.ends[i] != end || a.procs[i] < procs {
		panic("sim: AvailSet.Remove of an end that was never added")
	}
	a.procs[i] -= procs
	if a.procs[i] == 0 {
		a.ends = append(a.ends[:i], a.ends[i+1:]...)
		a.procs = append(a.procs[:i], a.procs[i+1:]...)
	}
}

// buildInto materializes the availability step function at time now into the
// caller's scratch profile, reusing its slices. freeNow is the partition's
// currently free core count. Planned ends at or before now (jobs running
// past their estimate, e.g. under advisory walltime predictions) fold into
// the base entry, mirroring newProfile's clamping. It returns the first
// planned end strictly after now (+Inf when none): the build stays valid
// until the clock reaches it, which is what the simulator's profile cache
// keys on.
func (a *AvailSet) buildInto(p *profile, now float64, freeNow int) (nextEnd float64) {
	cur := freeNow
	i := 0
	for ; i < len(a.ends) && a.ends[i] <= now; i++ {
		cur += a.procs[i]
	}
	// The output length is known up front, so the fold writes by index into
	// pre-sized slices instead of paying append's capacity check per entry —
	// this runs on every blocked-head scheduling pass.
	tail, tailProcs := a.ends[i:], a.procs[i:]
	m := len(tail) + 1
	if cap(p.times) < m {
		// Grow with headroom so repeated builds amortize like append did.
		p.times = make([]float64, m, m+m/2)
		p.free = make([]int, m, m+m/2)
	} else {
		p.times = p.times[:m]
		p.free = p.free[:m]
	}
	p.times[0] = now
	p.free[0] = cur
	nextEnd = math.Inf(1)
	if len(tail) > 0 {
		nextEnd = tail[0]
	}
	for k, e := range tail {
		cur += tailProcs[k]
		p.times[k+1] = e
		p.free[k+1] = cur
	}
	return nextEnd
}

// Snapshot returns the availability profile (breakpoints and free counts)
// the set produces at time now with freeNow cores currently free. It is the
// verification view of buildInto: internal/check asserts it equals
// ReferenceSnapshot after every randomized Add/Remove sequence.
func (a *AvailSet) Snapshot(now float64, freeNow int) (times []float64, free []int) {
	var p profile
	a.buildInto(&p, now, freeNow)
	return p.times, p.free
}

// ReferenceSnapshot builds the same availability profile from scratch with
// newProfile — the non-incremental reconstruction the simulator used before
// the incremental hot path, kept as the reference the AvailSet invariant is
// checked against. The ends may be in any order and may repeat end times.
func ReferenceSnapshot(now float64, freeNow int, ends []JobEnd) (times []float64, free []int) {
	p := newProfile(now, freeNow, ends)
	return p.times, p.free
}

// Planner is an availability profile with reservation planning on top — the
// same machinery the simulator's backfill planners run on the hot path
// (earliest-start queries and conservative reservations), exported so
// internal/check can differentially test it against its naive reference
// model.
type Planner struct {
	prof profile
}

// NewPlanner materializes the set into a fresh standalone planner at now.
func (a *AvailSet) NewPlanner(now float64, freeNow int) *Planner {
	pl := &Planner{}
	a.buildInto(&pl.prof, now, freeNow)
	return pl
}

// FreeAt evaluates the planner's step function at time t (t >= now).
func (pl *Planner) FreeAt(t float64) int { return pl.prof.freeAt(t) }

// EarliestStart returns the first time >= from at which procs cores stay
// free for dur seconds, plus the minimum free count over that window.
func (pl *Planner) EarliestStart(from float64, procs int, dur float64) (start float64, minFree int) {
	return pl.prof.earliestStart(from, procs, dur)
}

// Window reports whether procs cores stay free throughout [t, t+dur); see
// profile.window for the minFree contract on the failure path.
func (pl *Planner) Window(t, dur float64, procs int) (bool, int) {
	return pl.prof.window(t, dur, procs)
}

// Reserve subtracts procs cores over [t, t+dur), as conservative
// backfilling does while planning queue-wide reservations.
func (pl *Planner) Reserve(t, dur float64, procs int) { pl.prof.reserve(t, dur, procs) }

package sim

import (
	"reflect"
	"sync"
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// recordedRun runs tr under opt with a recorder attached and returns the
// result plus the decision-event stream.
func recordedRun(t *testing.T, tr *trace.Trace, opt Options) (*Result, []obs.Event) {
	t.Helper()
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.Events
}

// TestZeroFaultIdentity pins the pay-for-what-you-use contract: with fault
// injection disabled — whether by a nil config or a zero config — the
// Result AND the decision stream must be bit-identical to a run without the
// fault layer, for every policy x backfill combination.
func TestZeroFaultIdentity(t *testing.T) {
	tr := randomTrace(42, 250, 64)
	for _, pol := range Policies {
		for _, bf := range Backfills {
			base := Options{Policy: pol, Backfill: bf, RelaxFactor: 0.12}
			want, wantEvents := recordedRun(t, tr, base)

			disabled := base
			disabled.Faults = &fault.Config{} // zero config: Enabled() == false
			got, gotEvents := recordedRun(t, tr, disabled)

			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v/%v: Result differs with a disabled fault config", pol, bf)
			}
			if !reflect.DeepEqual(gotEvents, wantEvents) {
				t.Errorf("%v/%v: decision stream differs with a disabled fault config", pol, bf)
			}
		}
	}
}

// TestRequeueCapProperty is the retry-cap property test: under requeue
// recovery no job is ever requeued more than the cap, interrupts and
// requeues pair up (at most one terminal interrupt per job), and a job
// whose retries are exhausted leaves the system as Failed.
func TestRequeueCapProperty(t *testing.T) {
	tr := randomTrace(7, 300, 64)
	for _, cap := range []int{0, 1, 2} {
		cfg := &fault.Config{
			Seed: 3, InterruptProb: 0.3,
			Recovery: fault.RecoveryRequeue, RetryCap: cap,
		}
		res, events := recordedRun(t, tr, Options{Policy: FCFS, Backfill: EASY, Faults: cfg})

		interrupts := make(map[int]int)
		requeues := make(map[int]int)
		starts := make(map[int]int)
		for _, e := range events {
			switch e.Kind {
			case obs.JobStart:
				starts[e.Job]++
			case obs.FaultJobInterrupt:
				interrupts[e.Job]++
			case obs.FaultJobRequeue:
				requeues[e.Job]++
			}
		}
		if len(interrupts) == 0 {
			t.Fatalf("cap %d: no interrupts; property test is vacuous", cap)
		}
		dead := 0
		for id, n := range requeues {
			if n > cap {
				t.Errorf("cap %d: job %d requeued %d times", cap, id, n)
			}
		}
		for id, n := range interrupts {
			if d := n - requeues[id]; d != 0 && d != 1 {
				t.Errorf("cap %d: job %d has %d interrupts but %d requeues", cap, id, n, requeues[id])
			} else if d == 1 {
				dead++
				if requeues[id] != cap {
					t.Errorf("cap %d: job %d failed terminally after %d requeues", cap, id, requeues[id])
				}
			}
		}
		byID := make(map[int]int, tr.Len())
		for i, j := range tr.Jobs {
			byID[j.ID] = i
		}
		for id, n := range starts {
			if n > cap+1 {
				t.Errorf("cap %d: job %d started %d times (max %d)", cap, id, n, cap+1)
			}
			if in, rq := interrupts[id], requeues[id]; in > rq {
				if st := res.Jobs[byID[id]].Status; st != trace.Failed {
					t.Errorf("cap %d: exhausted job %d has status %v, want Failed", cap, id, st)
				}
			}
		}
		if res.FaultFailed != dead {
			t.Errorf("cap %d: result reports %d fault-failed jobs, stream shows %d", cap, res.FaultFailed, dead)
		}
		if res.Requeued > 0 && cap == 0 {
			t.Errorf("cap 0: %d requeues", res.Requeued)
		}
	}
}

// TestRunnerPoolReuseWithFaults exercises pooled Runner reuse under fault
// injection, concurrently (run with -race): every reused run must match a
// fresh sim.Run bit-for-bit, including after alternating fault and
// zero-fault runs on the same Runner.
func TestRunnerPoolReuseWithFaults(t *testing.T) {
	tr := randomTrace(21, 200, 64)
	cfg := &fault.Config{
		Seed: 5, MTBF: 3000, MTTR: 800, OutageFrac: 0.4, InterruptProb: 0.1,
		Recovery: fault.RecoveryCheckpoint, RetryCap: 2, CheckpointInterval: 120,
	}
	faultOpt := Options{Policy: SJF, Backfill: EASY, Faults: cfg}
	plainOpt := Options{Policy: SJF, Backfill: EASY}
	wantFault, err := Run(tr, faultOpt)
	if err != nil {
		t.Fatal(err)
	}
	wantPlain, err := Run(tr, plainOpt)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewRunner()
			for i := 0; i < 6; i++ {
				// Alternate fault and plain runs so leftover fault state
				// from a previous run would be caught immediately.
				opt, want := faultOpt, wantFault
				if i%2 == 1 {
					opt, want = plainOpt, wantPlain
				}
				got, err := r.Run(tr, opt)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("run %d: pooled result diverges from fresh run", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestZeroFaultNoExtraAllocs guards the acceptance criterion that the
// disabled fault path adds no allocations to the EASY hot loop: a pooled
// run with a disabled config must allocate exactly as much as one without
// the fault layer.
func TestZeroFaultNoExtraAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow")
	}
	tr := randomTrace(11, 200, 64)
	r := NewRunner()
	measure := func(opt Options) float64 {
		// Warm the pool so steady-state allocations are measured.
		if _, err := r.Run(tr, opt); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := r.Run(tr, opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := measure(Options{Policy: FCFS, Backfill: EASY})
	disabled := measure(Options{Policy: FCFS, Backfill: EASY, Faults: &fault.Config{}})
	if disabled > plain {
		t.Errorf("disabled fault config allocates %v/run vs %v/run without the fault layer", disabled, plain)
	}
}

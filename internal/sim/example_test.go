package sim_test

import (
	"fmt"

	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// ExampleRun schedules a tiny trace with EASY backfilling: the 2-core job
// backfills into the hole left while the 10-core job waits.
func ExampleRun() {
	tr := trace.New(trace.System{Name: "demo", Kind: trace.HPC, TotalCores: 10})
	tr.Jobs = []trace.Job{
		{Submit: 0, Run: 100, Walltime: 100, Procs: 8, User: 0, VC: -1},
		{Submit: 1, Run: 100, Walltime: 100, Procs: 10, User: 1, VC: -1},
		{Submit: 2, Run: 50, Walltime: 50, Procs: 2, User: 2, VC: -1},
	}
	tr.SortBySubmit()

	res, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		panic(err)
	}
	fmt.Println("backfilled jobs:", res.Backfilled)
	fmt.Println("small job wait:", res.Jobs[2].Wait)
	fmt.Println("blocked head wait:", res.Jobs[1].Wait)
	// Output:
	// backfilled jobs: 1
	// small job wait: 0
	// blocked head wait: 99
}

// ExampleParsePolicy resolves policy names from configuration strings.
func ExampleParsePolicy() {
	p, err := sim.ParsePolicy("WFP3")
	fmt.Println(p, err)
	_, err = sim.ParsePolicy("bogus")
	fmt.Println(err != nil)
	// Output:
	// WFP3 <nil>
	// true
}

package sim

import (
	"math"
	"sort"
)

// Fairshare ordering: Philly's scheduler (and most production DL cluster
// managers) order the queue by how little each user has recently consumed,
// so light users jump ahead of heavy ones. The simulator implements it as
// a decayed per-user usage account charged at dispatch time; the queue is
// ordered by the owner's current usage, ties broken FCFS.
//
// The paper observes that fair sharing interacts badly with virtual-cluster
// isolation on Philly ("its fair-sharing scheduling policy is not working
// optimally when dealing with isolated virtual clusters") — reproduce that
// by combining FairshareState with a partitioned trace.

// FairshareState tracks decayed per-user core-seconds.
type FairshareState struct {
	// HalfLife is the usage decay half-life in seconds (default 24h).
	HalfLife float64

	usage map[int]float64
	last  map[int]float64
}

// NewFairshareState returns an empty account table.
func NewFairshareState(halfLife float64) *FairshareState {
	if halfLife <= 0 {
		halfLife = 86400
	}
	return &FairshareState{
		HalfLife: halfLife,
		usage:    map[int]float64{},
		last:     map[int]float64{},
	}
}

// Reset clears every usage account and re-arms the half-life, keeping the
// map storage so simulator reuse (sim.Runner) does not reallocate.
func (f *FairshareState) Reset(halfLife float64) {
	if halfLife <= 0 {
		halfLife = 86400
	}
	f.HalfLife = halfLife
	clear(f.usage)
	clear(f.last)
}

// Clone returns an independent copy of every usage account, so a paused
// simulation can be forked (checkpoint.go) without the copies sharing
// fair-share state.
func (f *FairshareState) Clone() *FairshareState {
	d := &FairshareState{
		HalfLife: f.HalfLife,
		usage:    make(map[int]float64, len(f.usage)),
		last:     make(map[int]float64, len(f.last)),
	}
	for u, v := range f.usage {
		d.usage[u] = v
	}
	for u, v := range f.last {
		d.last[u] = v
	}
	return d
}

// Usage returns user's decayed usage as of time now.
func (f *FairshareState) Usage(user int, now float64) float64 {
	u, ok := f.usage[user]
	if !ok {
		return 0
	}
	dt := now - f.last[user]
	if dt <= 0 {
		return u
	}
	return u * math.Exp2(-dt/f.HalfLife)
}

// Charge adds coreSeconds to user's account at time now.
func (f *FairshareState) Charge(user int, now, coreSeconds float64) {
	u := f.Usage(user, now)
	f.usage[user] = u + coreSeconds
	f.last[user] = now
}

// Order sorts queue indices ascending by the owning user's usage (light
// users first), breaking ties by submit time. users[i] and submits[i]
// describe queue entry i; the returned slice is a permutation of [0,n).
func (f *FairshareState) Order(now float64, users []int, submits []float64) []int {
	n := len(users)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = f.Usage(users[i], now)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return submits[idx[a]] < submits[idx[b]]
	})
	return idx
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestProfileEmpty(t *testing.T) {
	p := newProfile(0, 10, nil)
	if p.freeAt(0) != 10 || p.freeAt(100) != 10 {
		t.Fatal("empty profile should be constant")
	}
	st, mf := p.earliestStart(0, 5, 100)
	if st != 0 || mf != 10 {
		t.Fatalf("earliestStart = %v, %v", st, mf)
	}
}

func TestProfileStep(t *testing.T) {
	// 2 free now; a 4-core job ends at t=10, an 8-core job ends at t=20.
	p := newProfile(0, 2, []JobEnd{{End: 10, Procs: 4}, {End: 20, Procs: 8}})
	if p.freeAt(0) != 2 || p.freeAt(9.99) != 2 {
		t.Fatalf("freeAt before first end wrong: %d", p.freeAt(0))
	}
	if p.freeAt(10) != 6 || p.freeAt(15) != 6 {
		t.Fatalf("freeAt after first end wrong: %d", p.freeAt(10))
	}
	if p.freeAt(20) != 14 || p.freeAt(1e9) != 14 {
		t.Fatalf("freeAt after second end wrong: %d", p.freeAt(20))
	}
}

func TestProfileEarliestStart(t *testing.T) {
	p := newProfile(0, 2, []JobEnd{{End: 10, Procs: 4}, {End: 20, Procs: 8}})
	// needs 6 cores for 5s: available at t=10
	st, mf := p.earliestStart(0, 6, 5)
	if st != 10 {
		t.Fatalf("start = %v want 10", st)
	}
	if mf != 6 {
		t.Fatalf("minFree = %v want 6", mf)
	}
	// needs 6 cores for 15s: window [10,25) dips are none after 10 (6 then 14) -> still 10
	st, _ = p.earliestStart(0, 6, 15)
	if st != 10 {
		t.Fatalf("start = %v want 10", st)
	}
	// needs 10 cores: only after t=20
	st, _ = p.earliestStart(0, 10, 5)
	if st != 20 {
		t.Fatalf("start = %v want 20", st)
	}
	// needs 2 cores: immediately
	st, _ = p.earliestStart(0, 2, 1000)
	if st != 0 {
		t.Fatalf("start = %v want 0", st)
	}
}

func TestProfileEndsBeforeNowClamped(t *testing.T) {
	p := newProfile(100, 3, []JobEnd{{End: 50, Procs: 2}})
	if p.freeAt(100) != 5 {
		t.Fatalf("stale end not clamped: %d", p.freeAt(100))
	}
}

func TestProfileReserve(t *testing.T) {
	p := newProfile(0, 10, nil)
	p.reserve(5, 10, 4) // 4 cores over [5,15)
	if p.freeAt(0) != 10 || p.freeAt(5) != 6 || p.freeAt(14.9) != 6 || p.freeAt(15) != 10 {
		t.Fatalf("reserve wrong: %v %v", p.times, p.free)
	}
	// stacking another reservation
	p.reserve(10, 10, 3) // [10,20)
	if p.freeAt(12) != 3 || p.freeAt(16) != 7 || p.freeAt(20) != 10 {
		t.Fatalf("stacked reserve wrong: %v %v", p.times, p.free)
	}
}

func TestProfileWindowRespectsReservations(t *testing.T) {
	p := newProfile(0, 10, nil)
	p.reserve(5, 10, 8)
	ok, _ := p.window(0, 4, 6)
	if !ok {
		t.Fatal("window [0,4) should fit 6 cores")
	}
	ok, _ = p.window(0, 6, 6)
	if ok {
		t.Fatal("window [0,6) overlaps the reservation; only 2 free")
	}
	st, _ := p.earliestStart(0, 6, 6)
	if st != 15 {
		t.Fatalf("earliest start around reservation = %v want 15", st)
	}
}

// Property: earliestStart always returns a feasible window.
func TestProfileEarliestFeasiblePropertyQuick(t *testing.T) {
	f := func(seedEnds []uint8, procsRaw, durRaw uint8) bool {
		capacity := 32
		used := 0
		var ends []JobEnd
		for i, e := range seedEnds {
			if i >= 6 {
				break
			}
			pr := int(e)%8 + 1
			if used+pr > capacity {
				break
			}
			used += pr
			ends = append(ends, JobEnd{End: float64(int(e)%50 + 1), Procs: pr})
		}
		p := newProfile(0, capacity-used, ends)
		procs := int(procsRaw)%capacity + 1
		dur := float64(durRaw%100) + 1
		st, _ := p.earliestStart(0, procs, dur)
		ok, _ := p.window(st, dur, procs)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWindowMinFreeContract pins window's minFree semantics so the backfill
// "extra cores" budget cannot silently widen:
//
//   - On the false path, minFree is a PARTIAL minimum — segments are only
//     examined up to and including the first one that fails — so it must
//     never be treated as the minimum over the whole requested window.
//   - earliestStart therefore only propagates minFree from a successful
//     window, where it is the exact minimum over every covered segment.
func TestWindowMinFreeContract(t *testing.T) {
	// free: 10 over [0,10), 2 over [10,20), 1 over [20,30), 10 from 30 on.
	p := newProfile(0, 10, nil)
	p.reserve(10, 20, 8) // 8 cores over [10,30)
	p.reserve(20, 10, 1) // 1 more over [20,30)
	if got := []int{p.freeAt(0), p.freeAt(10), p.freeAt(20), p.freeAt(30)}; got[0] != 10 || got[1] != 2 || got[2] != 1 || got[3] != 10 {
		t.Fatalf("fixture profile wrong: %v", got)
	}

	// The window fails at the second segment (2 < 5); the third segment
	// (free 1, the true window minimum) is never examined. The partial
	// minimum is 2, not 1 — that is the documented false-path contract.
	ok, mf := p.window(0, 30, 5)
	if ok {
		t.Fatal("window [0,30) should not fit 5 cores")
	}
	if mf != 2 {
		t.Fatalf("false-path minFree = %d; the partial up-to-failure minimum must be 2", mf)
	}

	// On the success path minFree is the exact minimum over the window.
	ok, mf = p.window(0, 10, 5)
	if !ok || mf != 10 {
		t.Fatalf("window [0,10): ok=%v minFree=%d, want true, 10", ok, mf)
	}
	ok, mf = p.window(10, 20, 1)
	if !ok || mf != 1 {
		t.Fatalf("window [10,30): ok=%v minFree=%d, want true, 1", ok, mf)
	}
}

// TestEarliestStartMinFreeExact verifies that the minFree earliestStart
// reports (the sole source of the backfill extra-cores budget) equals an
// independently recomputed minimum over the returned window, across many
// random profiles and queries.
func TestEarliestStartMinFreeExact(t *testing.T) {
	f := func(seedEnds []uint8, procsRaw, durRaw uint8) bool {
		capacity := 48
		used := 0
		var ends []JobEnd
		for i, e := range seedEnds {
			if i >= 8 {
				break
			}
			pr := int(e)%12 + 1
			if used+pr > capacity {
				break
			}
			used += pr
			ends = append(ends, JobEnd{End: float64(int(e)%60 + 1), Procs: pr})
		}
		p := newProfile(0, capacity-used, ends)
		procs := int(procsRaw)%capacity + 1
		dur := float64(durRaw%80) + 1
		st, mf := p.earliestStart(0, procs, dur)
		// Recompute the window minimum from scratch via freeAt.
		want := p.freeAt(st)
		for i := range p.times {
			if p.times[i] > st && p.times[i] < st+dur && p.free[i] < want {
				want = p.free[i]
			}
		}
		return mf == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

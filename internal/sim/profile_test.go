package sim

import (
	"testing"
	"testing/quick"
)

func TestProfileEmpty(t *testing.T) {
	p := newProfile(0, 10, nil)
	if p.freeAt(0) != 10 || p.freeAt(100) != 10 {
		t.Fatal("empty profile should be constant")
	}
	st, mf := p.earliestStart(0, 5, 100)
	if st != 0 || mf != 10 {
		t.Fatalf("earliestStart = %v, %v", st, mf)
	}
}

func TestProfileStep(t *testing.T) {
	// 2 free now; a 4-core job ends at t=10, an 8-core job ends at t=20.
	p := newProfile(0, 2, []jobEnd{{end: 10, procs: 4}, {end: 20, procs: 8}})
	if p.freeAt(0) != 2 || p.freeAt(9.99) != 2 {
		t.Fatalf("freeAt before first end wrong: %d", p.freeAt(0))
	}
	if p.freeAt(10) != 6 || p.freeAt(15) != 6 {
		t.Fatalf("freeAt after first end wrong: %d", p.freeAt(10))
	}
	if p.freeAt(20) != 14 || p.freeAt(1e9) != 14 {
		t.Fatalf("freeAt after second end wrong: %d", p.freeAt(20))
	}
}

func TestProfileEarliestStart(t *testing.T) {
	p := newProfile(0, 2, []jobEnd{{end: 10, procs: 4}, {end: 20, procs: 8}})
	// needs 6 cores for 5s: available at t=10
	st, mf := p.earliestStart(0, 6, 5)
	if st != 10 {
		t.Fatalf("start = %v want 10", st)
	}
	if mf != 6 {
		t.Fatalf("minFree = %v want 6", mf)
	}
	// needs 6 cores for 15s: window [10,25) dips are none after 10 (6 then 14) -> still 10
	st, _ = p.earliestStart(0, 6, 15)
	if st != 10 {
		t.Fatalf("start = %v want 10", st)
	}
	// needs 10 cores: only after t=20
	st, _ = p.earliestStart(0, 10, 5)
	if st != 20 {
		t.Fatalf("start = %v want 20", st)
	}
	// needs 2 cores: immediately
	st, _ = p.earliestStart(0, 2, 1000)
	if st != 0 {
		t.Fatalf("start = %v want 0", st)
	}
}

func TestProfileEndsBeforeNowClamped(t *testing.T) {
	p := newProfile(100, 3, []jobEnd{{end: 50, procs: 2}})
	if p.freeAt(100) != 5 {
		t.Fatalf("stale end not clamped: %d", p.freeAt(100))
	}
}

func TestProfileReserve(t *testing.T) {
	p := newProfile(0, 10, nil)
	p.reserve(5, 10, 4) // 4 cores over [5,15)
	if p.freeAt(0) != 10 || p.freeAt(5) != 6 || p.freeAt(14.9) != 6 || p.freeAt(15) != 10 {
		t.Fatalf("reserve wrong: %v %v", p.times, p.free)
	}
	// stacking another reservation
	p.reserve(10, 10, 3) // [10,20)
	if p.freeAt(12) != 3 || p.freeAt(16) != 7 || p.freeAt(20) != 10 {
		t.Fatalf("stacked reserve wrong: %v %v", p.times, p.free)
	}
}

func TestProfileWindowRespectsReservations(t *testing.T) {
	p := newProfile(0, 10, nil)
	p.reserve(5, 10, 8)
	ok, _ := p.window(0, 4, 6)
	if !ok {
		t.Fatal("window [0,4) should fit 6 cores")
	}
	ok, _ = p.window(0, 6, 6)
	if ok {
		t.Fatal("window [0,6) overlaps the reservation; only 2 free")
	}
	st, _ := p.earliestStart(0, 6, 6)
	if st != 15 {
		t.Fatalf("earliest start around reservation = %v want 15", st)
	}
}

// Property: earliestStart always returns a feasible window.
func TestProfileEarliestFeasiblePropertyQuick(t *testing.T) {
	f := func(seedEnds []uint8, procsRaw, durRaw uint8) bool {
		capacity := 32
		used := 0
		var ends []jobEnd
		for i, e := range seedEnds {
			if i >= 6 {
				break
			}
			pr := int(e)%8 + 1
			if used+pr > capacity {
				break
			}
			used += pr
			ends = append(ends, jobEnd{end: float64(int(e)%50 + 1), procs: pr})
		}
		p := newProfile(0, capacity-used, ends)
		procs := int(procsRaw)%capacity + 1
		dur := float64(durRaw%100) + 1
		st, _ := p.earliestStart(0, procs, dur)
		ok, _ := p.window(st, dur, procs)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

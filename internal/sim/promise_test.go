package sim

import (
	"testing"

	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// truthfulTrace builds a workload where walltime == runtime exactly, so
// planned ends equal real ends and the relaxation bound is exact.
func truthfulTrace(seed uint64, n, capacity int) *trace.Trace {
	r := dist.NewRNG(seed)
	tr := trace.New(trace.System{Name: "T", Kind: trace.HPC, TotalCores: capacity})
	t := 0.0
	for i := 0; i < n; i++ {
		t += dist.Exponential{Rate: 0.05}.Sample(r)
		run := dist.LogNormalFromMedian(120, 1.0).Sample(r)
		tr.Jobs = append(tr.Jobs, trace.Job{
			Submit: t, Run: run, Walltime: run,
			Procs: r.Intn(capacity/2) + 1, User: r.Intn(6), VC: -1, Wait: -1,
		})
	}
	tr.SortBySubmit()
	return tr
}

// TestPromisedStartExposed: the result carries promises aligned with jobs,
// -1 for never-reserved jobs, and violation counting matches a recount
// from the exposed data.
func TestPromisedStartExposed(t *testing.T) {
	tr := truthfulTrace(3, 300, 32)
	res, err := Run(tr, Options{Policy: FCFS, Backfill: Relaxed, RelaxFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PromisedStart) != len(res.Jobs) {
		t.Fatalf("promises length %d want %d", len(res.PromisedStart), len(res.Jobs))
	}
	recount := 0
	for i, p := range res.PromisedStart {
		if p < 0 {
			continue
		}
		start := res.Jobs[i].Submit + res.Jobs[i].Wait
		if start > p+1e-9 {
			recount++
		}
	}
	if recount != res.Violations {
		t.Fatalf("recounted %d violations, simulator reported %d", recount, res.Violations)
	}
}

// TestRelaxationBoundWithTruthfulWalltimes: under FCFS + Relaxed with
// truthful walltimes, every reserved job's actual start is bounded by
// promised + factor*(promised - submit): the Ward et al. guarantee.
func TestRelaxationBoundWithTruthfulWalltimes(t *testing.T) {
	const factor = 0.15
	for _, seed := range []uint64{1, 2, 3} {
		tr := truthfulTrace(seed, 400, 48)
		res, err := Run(tr, Options{Policy: FCFS, Backfill: Relaxed, RelaxFactor: factor})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range res.PromisedStart {
			if p < 0 {
				continue
			}
			j := res.Jobs[i]
			start := j.Submit + j.Wait
			bound := p + factor*(p-j.Submit)
			if start > bound+1e-6 {
				t.Fatalf("seed %d job %d: start %v exceeds relaxation bound %v (promised %v, submit %v)",
					seed, i, start, bound, p, j.Submit)
			}
		}
	}
}

// TestEASYNeverExceedsPromiseTruthful: with truthful walltimes and FCFS,
// EASY starts every reserved job at or before its promise.
func TestEASYNeverExceedsPromiseTruthful(t *testing.T) {
	tr := truthfulTrace(7, 400, 48)
	res, err := Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.PromisedStart {
		if p < 0 {
			continue
		}
		start := res.Jobs[i].Submit + res.Jobs[i].Wait
		if start > p+1e-9 {
			t.Fatalf("job %d: EASY start %v after promise %v", i, start, p)
		}
	}
}

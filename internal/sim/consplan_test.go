package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"crosssched/internal/obs"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// The tests in this file install the global SetConsPlanAudit hook and must
// therefore never call t.Parallel: the hook would race with any concurrent
// conservative simulation in the same process.

// consReplay collects contract violations reported by the from-scratch
// replay hook. The hook may fire from the one simulation the owning test
// runs; the mutex guards against future parallel callers all the same.
type consReplay struct {
	mu     sync.Mutex
	passes int
	kept   int64
	errs   []string
}

func (c *consReplay) errorf(format string, args ...interface{}) {
	if len(c.errs) < 10 {
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
	}
}

// installConsReplay registers an audit hook that replans every audited pass
// from scratch — the original O(n²) algorithm: walk the queue in priority
// order, place each job at its earliest start on a scratch profile, reserve
// it, continue — and asserts the maintained plan is the exact prefix of
// that plan. Positions past the maintained prefix (the planning loop
// early-stopped) must not be startable now, since only starts at now are
// observable. Float comparisons are exact: the incremental planner must be
// bit-identical, not merely close.
func installConsReplay(t *testing.T) *consReplay {
	t.Helper()
	c := &consReplay{}
	SetConsPlanAudit(func(a ConsPlanAudit) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.passes++
		c.kept += int64(a.Kept)
		ref := &profile{
			times: append([]float64(nil), a.BaseTimes...),
			free:  append([]int(nil), a.BaseFree...),
		}
		for pos := 0; pos < len(a.Procs); pos++ {
			st, _ := ref.earliestStart(a.Now, a.Procs[pos], a.ReqTime[pos])
			ref.reserve(st, a.ReqTime[pos], a.Procs[pos])
			if pos < len(a.Starts) {
				if st != a.Starts[pos] {
					c.errorf("part %d t=%v pos %d (kept %d, persistent %v): plan start %v, from-scratch start %v",
						a.Part, a.Now, pos, a.Kept, a.Persistent, a.Starts[pos], st)
				}
			} else if st <= a.Now+1e-9 {
				c.errorf("part %d t=%v pos %d: unplanned job could start now (from-scratch start %v)",
					a.Part, a.Now, pos, st)
			}
		}
	})
	t.Cleanup(func() { SetConsPlanAudit(nil) })
	return c
}

func (c *consReplay) report(t *testing.T, label string) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.errs {
		t.Errorf("%s: %s", label, e)
	}
	if c.passes == 0 {
		t.Errorf("%s: audit hook never fired; property test is vacuous", label)
	}
}

// consPlanVariants are the option axes the property tests sweep: static
// arrival order, static priority orders, a dynamic order (fairshare decay
// disables plan persistence — the pass must then behave like the
// from-scratch planner), perfect estimates, and advisory predictions (which
// let jobs overrun their planned ends, forcing plan invalidation).
func consPlanVariants() []struct {
	name string
	opt  Options
} {
	return []struct {
		name string
		opt  Options
	}{
		{"fcfs", Options{Policy: FCFS, Backfill: Conservative}},
		{"sjf", Options{Policy: SJF, Backfill: Conservative}},
		{"ljf", Options{Policy: LJF, Backfill: Conservative}},
		{"fair", Options{Policy: Fair, Backfill: Conservative, FairshareHalfLife: 3600}},
		{"fcfs-oracle-runtime", Options{Policy: FCFS, Backfill: Conservative, UseActualRuntime: true}},
		{"fcfs-predictor", Options{Policy: FCFS, Backfill: Conservative,
			WalltimePredictor: func(j trace.Job) float64 { return j.Run*0.8 + 120 }}},
	}
}

// TestConsPlanMatchesFromScratchOnStress replays every planning pass of the
// conservative stress workloads from scratch and demands exact agreement.
// The stress profiles quantize submits to whole seconds (tie-heavy arrival
// batches) and overestimate walltimes (every completion opens a hole under
// kept reservations), which is precisely where an incremental plan could
// drift from the from-scratch one.
func TestConsPlanMatchesFromScratchOnStress(t *testing.T) {
	days := 0.15
	if testing.Short() {
		days = 0.08
	}
	for _, p := range synth.VerifyConsProfiles(days) {
		tr, err := p.Generate(7)
		if err != nil {
			t.Fatalf("generate %s: %v", p.Sys.Name, err)
		}
		for i := range tr.Jobs {
			tr.Jobs[i].Wait = -1
		}
		for _, v := range consPlanVariants() {
			label := p.Sys.Name + "/" + v.name
			c := installConsReplay(t)
			if _, err := Run(tr, v.opt); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			c.report(t, label)
			SetConsPlanAudit(nil)
		}
	}
}

// randomConsTrace generates a small adversarial workload directly: bursty
// quantized submits with exact ties, zero-runtime jobs, missing walltimes,
// and heavy overestimates, across one or two partitions.
func randomConsTrace(r *rand.Rand, cores, parts, n int) *trace.Trace {
	sys := trace.System{Name: "randcons", TotalCores: cores, VirtualClusters: parts}
	tr := trace.New(sys)
	capPerPart := cores
	if parts > 1 {
		capPerPart = cores / parts
	}
	now := 0.0
	for i := 0; i < n; i++ {
		if r.Float64() < 0.6 { // else: exact submit tie with the previous job
			now += math.Floor(r.ExpFloat64() * 45)
		}
		run := math.Floor(r.Float64() * 4000)
		wall := 0.0
		switch r.Intn(4) {
		case 0: // no walltime: planner falls back to actual runtime
		case 1:
			wall = run + 1 // near-exact estimate
		default:
			wall = run*(1+4*r.Float64()) + 1 // overestimate up to 5x
		}
		vc := -1
		if parts > 1 {
			vc = r.Intn(parts+1) - 1
		}
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: i, User: r.Intn(4), Submit: now, Wait: -1,
			Run: run, Walltime: wall,
			Procs: 1 + r.Intn(capPerPart), VC: vc,
		})
	}
	tr.SortBySubmit()
	return tr
}

// TestConsPlanMatchesFromScratchRandom is the randomized property test:
// across many seeded small traces and every option variant, the maintained
// reservation structure must equal a from-scratch rebuild after every event
// (the audit hook fires on every planning pass, i.e. after every event that
// touches the partition).
func TestConsPlanMatchesFromScratchRandom(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	shapes := []struct{ cores, parts, n int }{
		{8, 1, 130},
		{23, 2, 110},
	}
	for seed := 1; seed <= seeds; seed++ {
		for _, sh := range shapes {
			tr := randomConsTrace(rand.New(rand.NewSource(int64(seed)*1009+int64(sh.cores))), sh.cores, sh.parts, sh.n)
			for _, v := range consPlanVariants() {
				label := fmt.Sprintf("seed%d/c%dp%d/%s", seed, sh.cores, sh.parts, v.name)
				c := installConsReplay(t)
				if _, err := Run(tr, v.opt); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				c.report(t, label)
				SetConsPlanAudit(nil)
			}
		}
	}
}

// TestConsPlanReusesKeptEntries guards the tentpole against silent
// regression to rebuild-every-pass: on a deep-queue stress workload under a
// static order, the passes must actually carry reservations over instead of
// replanning them, and carried entries must dominate fresh plans.
func TestConsPlanReusesKeptEntries(t *testing.T) {
	tr, err := synth.VerifyConsDeep(0.3).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Jobs {
		tr.Jobs[i].Wait = -1
	}
	var met obs.Metrics
	if _, err := Run(tr, Options{Policy: FCFS, Backfill: Conservative, Metrics: &met}); err != nil {
		t.Fatal(err)
	}
	if met.ConsPasses == 0 || met.ConsPlannedJobs == 0 {
		t.Fatalf("conservative run recorded no planning work: passes=%d planned=%d",
			met.ConsPasses, met.ConsPlannedJobs)
	}
	// A regression to rebuild-every-pass shows up as zero carried entries
	// (repair truncates to nothing, or the plan never persists). Direct head
	// starts legitimately reset the plan, so demand only a healthy average,
	// not kept >> planned.
	if met.ConsKeptJobs < met.ConsPasses {
		t.Errorf("kept %d reservations over %d passes; the incremental planner is barely re-using its plan",
			met.ConsKeptJobs, met.ConsPasses)
	}
	t.Logf("passes=%d kept=%d planned=%d (%.1f kept/pass)",
		met.ConsPasses, met.ConsKeptJobs, met.ConsPlannedJobs,
		float64(met.ConsKeptJobs)/float64(met.ConsPasses))
}

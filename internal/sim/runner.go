package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crosssched/internal/cluster"
	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// Runner is a reusable simulator instance: the batch execution primitive
// behind every many-run workload (policy x backfill matrices, relaxation
// sweeps, ES fitness populations, figure regeneration). A fresh simulation
// allocates its completion heap, waiting queues, AvailSets, scratch
// profiles, per-job pending arena, and cluster model from scratch; a Runner
// keeps all of that scratch state between runs and resets it instead, so a
// sweep of N runs over the same trace pays the simulator's working-set
// allocation once instead of N times.
//
// Correctness model: every piece of retained state is either reset on
// acquire (truncated slices, zeroed counters, cleared caches) or rebuilt
// when its shape no longer matches the trace, and nothing that escapes into
// a Result is ever reused — Result.Jobs, PromisedStart, and QueueTimeline
// are freshly allocated per run. Runner results are therefore
// float-for-float identical to a fresh run's; TestRunnerReuseMatchesFresh
// and the internal/check oracle sweep pin that invariant. Because the reset
// happens at the START of each run, a Runner abandoned mid-run (context
// cancellation, even a panic) is safe to reuse: no poisoned scratch state
// can leak into the next run.
//
// A Runner is not safe for concurrent use; concurrent callers should let
// the package-level Run/RunContext check warm Runners out of the shared
// sync.Pool, which gives each goroutine its own.
type Runner struct {
	s simulator

	// Cluster model, reused while the trace shape (total cores, partition
	// count) stays the same — the common case for sweeps over one trace.
	cl      *cluster.Cluster
	clTotal int
	clParts int
}

// NewRunner returns an empty Runner. The first run allocates the working
// set; later runs reuse it.
func NewRunner() *Runner { return &Runner{} }

// runnerPool recycles warm Runners across Run/RunContext calls. Concurrent
// sweeps (internal/par workers) each check out their own Runner; between
// sweeps the pool keeps the scratch state alive so back-to-back experiment
// batches stay warm.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// Run simulates scheduling of tr under opt; see the package-level Run.
func (r *Runner) Run(tr *trace.Trace, opt Options) (*Result, error) {
	return r.RunContext(context.Background(), tr, opt)
}

// RunContext simulates scheduling of tr under opt with cancellation; see
// the package-level RunContext for the cancellation contract. The input
// trace is treated as immutable and is not retained past the call.
func (r *Runner) RunContext(ctx context.Context, tr *trace.Trace, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == Relaxed || opt.Backfill == AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	var fallback string
	if opt.Shards > 1 {
		if fallback = shardFallback(&opt, nParts); fallback == "" {
			return runShardedTrace(ctx, tr, opt, nParts)
		}
	}
	cl, err := r.cluster(tr.System.TotalCores, nParts)
	if err != nil {
		return nil, err
	}

	s := &r.s
	s.reset(ctx, tr, opt, cl, nParts)
	if opt.Faults.Enabled() {
		if err := s.setupFaults(tr, opt.Faults, cl); err != nil {
			return nil, err
		}
	}
	// Scratch state may live on in the pool, but references to the caller's
	// trace, context, and callbacks must not outlive the run.
	defer func() {
		s.jobs = nil
		s.ctx = nil
		s.done = nil
		s.obsv = nil
		s.opt = Options{}
		s.flt = nil
		s.fltState.cfg = nil
		s.fltState.sched = nil
	}()

	// Validate partition fit up front so we fail fast, not mid-run.
	for i := range s.jobs {
		p := s.partition(&s.jobs[i])
		if s.jobs[i].Procs > cl.Capacity(p) {
			return nil, fmt.Errorf("sim: job %d needs %d cores but partition %d has %d",
				s.jobs[i].ID, s.jobs[i].Procs, p, cl.Capacity(p))
		}
	}

	var began time.Time
	if opt.Metrics != nil {
		began = time.Now()
	}
	runErr := s.run()
	if opt.Metrics != nil {
		s.met.JobsStarted = int64(s.started)
		s.met.Backfilled = int64(s.backfilled)
		s.met.Violations = int64(s.violations)
		s.met.WallSeconds = time.Since(began).Seconds()
		s.met.Canceled = runErr != nil && ctx.Err() != nil
		s.met.Shards = 1
		s.met.ShardFallbackReason = fallback
		*opt.Metrics = s.met
	}
	if runErr != nil {
		return nil, runErr
	}
	return s.result(tr)
}

// cluster returns a cluster model for the trace shape, reusing the cached
// one when the shape matches (EvenPartitions is deterministic in
// (totalCores, nParts), so matching those two means matching capacities).
func (r *Runner) cluster(totalCores, nParts int) (*cluster.Cluster, error) {
	if r.cl != nil && r.clTotal == totalCores && r.clParts == nParts {
		r.cl.Reset()
		return r.cl, nil
	}
	cl, err := cluster.NewPartitioned(cluster.EvenPartitions(totalCores, nParts))
	if err != nil {
		return nil, fmt.Errorf("sim: invalid cluster shape (%d cores, %d partitions): %w",
			totalCores, nParts, err)
	}
	r.cl = cl
	r.clTotal, r.clParts = totalCores, nParts
	return r.cl, nil
}

// setupFaults compiles the run's fault schedule and arms the simulator's
// fault state. Only called for enabled configs, so disabled runs never
// touch (or allocate) any of this.
func (s *simulator) setupFaults(tr *trace.Trace, cfg *fault.Config, cl *cluster.Cluster) error {
	caps := make([]int, cl.Partitions())
	for p := range caps {
		caps[p] = cl.Capacity(p)
	}
	// Default generation horizon for the MTBF/MTTR model: the trace's
	// submit span (jobs are validated sorted by submit time).
	horizon := 0.0
	if n := len(tr.Jobs); n > 0 {
		horizon = tr.Jobs[n-1].Submit
	}
	sched, err := cfg.Compile(caps, horizon)
	if err != nil {
		return err
	}
	s.fltState.reset(cfg, sched, len(tr.Jobs))
	s.flt = &s.fltState
	return nil
}

// reset prepares the simulator for a new run, reusing retained scratch
// capacity wherever the previous run left any. Everything the run mutates
// is reinitialized here — reset-on-acquire is what makes an abandoned
// (canceled) Runner safe to reuse.
func (s *simulator) reset(ctx context.Context, tr *trace.Trace, opt Options, cl *cluster.Cluster, nParts int) {
	n := len(tr.Jobs)
	s.resetCore(ctx, opt, cl, nParts)
	// The simulator never writes job records (waits live in a separate
	// array), so the run can schedule straight off the caller's slice; only
	// result() copies jobs, into the escaping Result.
	s.jobs = tr.Jobs
	if cap(s.pendings) >= n {
		// Entries are fully overwritten at arrival; no zeroing needed.
		s.pendings = s.pendings[:n]
	} else {
		s.pendings = make([]pending, n)
	}
	if cap(s.waits) >= n {
		// Every started job overwrites its wait, and a Result is only
		// assembled once all jobs started.
		s.waits = s.waits[:n]
	} else {
		s.waits = make([]float64, n)
	}
	// promised and timeline escape into the Result (PromisedStart,
	// QueueTimeline), so they are the two per-run allocations that reuse
	// cannot amortize.
	s.promised = make([]float64, n)
	for i := range s.promised {
		s.promised[i] = -1
	}
	timelineCap := 2 * n
	if timelineCap > 2*maxTimelineSamples {
		timelineCap = 2 * maxTimelineSamples
	}
	s.timeline = make([]QueueSample, 0, timelineCap)
}

// resetCore reinitializes the state shared by the materialized and streaming
// paths: everything except the per-job arrays (jobs, pendings, waits,
// promised) and the timeline, whose sizing and ownership differ between the
// two (reset sizes them to the trace; resetStream in stream.go turns them
// into an empty sliding window).
func (s *simulator) resetCore(ctx context.Context, opt Options, cl *cluster.Cluster, nParts int) {
	s.opt = opt
	s.cl = cl
	if cap(s.parts) >= nParts {
		s.parts = s.parts[:nParts]
	} else {
		s.parts = make([]partState, nParts)
	}
	for i := range s.parts {
		s.parts[i].reset()
	}
	if cap(s.touched) >= nParts {
		s.touched = s.touched[:nParts]
	} else {
		s.touched = make([]bool, nParts)
	}
	s.compl.items = s.compl.items[:0]
	s.now = 0
	s.next = 0
	s.flt = nil // armed separately (setupFaults) only for enabled configs
	s.in = nil  // armed separately (resetStream) only for streaming runs
	s.tap = nil // armed separately (runStream) only for sharded sub-runs
	s.idxBase = 0
	s.ctx = ctx
	s.done = ctx.Done()
	s.obsv = opt.Observer
	s.met = obs.Metrics{}
	if opt.Policy == Fair {
		if s.fair == nil {
			s.fair = NewFairshareState(opt.FairshareHalfLife)
		} else {
			s.fair.Reset(opt.FairshareHalfLife)
		}
	} else {
		s.fair = nil
	}
	s.fairVer = 0
	s.queued = 0
	s.violations = 0
	s.violationDelay = 0
	s.backfilled = 0
	s.maxQueueSeen = 0
	s.started = 0
	s.makespan = 0
}

// reset clears one partition's scheduling state while keeping every slice's
// capacity for the next run.
func (ps *partState) reset() {
	ps.q.buf = ps.q.buf[:0]
	ps.q.stamps = ps.q.stamps[:0]
	ps.q.procs = ps.q.procs[:0]
	ps.q.head = 0
	ps.avail.reset()
	ps.plan.reset()
	ps.sorted = false
	ps.sortTime = 0
	ps.sortFair = 0
	ps.profValid = false
	ps.failScan = failScan{}
	ps.shadowValid = false
	ps.shadowSeedOK = false
	ps.shadowNow = 0
	ps.fitBound = maxFitBound
}

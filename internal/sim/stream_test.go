package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"crosssched/internal/dist"
	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// streamTrace builds a bursty random trace big enough to exercise queue
// buildup, backfilling, and window compaction.
func streamTrace(n int) *trace.Trace {
	rng := dist.NewRNG(42)
	jobs := make([]trace.Job, n)
	t := 0.0
	for i := range jobs {
		t += rng.Float64() * 30
		wall := 60 + rng.Float64()*4000
		run := wall * (0.2 + 0.8*rng.Float64())
		jobs[i] = trace.Job{
			Submit: t, Run: run, Walltime: wall,
			Procs: 1 + int(rng.Float64()*32), User: i % 17, VC: -1,
		}
	}
	return mk(64, jobs)
}

// errStream yields jobs from a trace until failAfter, then returns failErr.
type errStream struct {
	tr        *trace.Trace
	i         int
	failAfter int
	failErr   error
}

func (s *errStream) System() trace.System { return s.tr.System }

func (s *errStream) Next() (trace.Job, error) {
	if s.i >= s.failAfter {
		return trace.Job{}, s.failErr
	}
	if s.i >= s.tr.Len() {
		return trace.Job{}, io.EOF
	}
	j := s.tr.Jobs[s.i]
	s.i++
	return j, nil
}

// TestStreamMatchesRun: on the same trace, RunStream must reproduce the
// materialized run float for float — Result aggregates, per-job rows
// (Wait, Promised), and the decision-event stream. The exhaustive policy x
// backfill sweep lives in internal/check; this pins the core combos at the
// sim layer.
func TestStreamMatchesRun(t *testing.T) {
	tr := streamTrace(800)
	combos := []Options{
		{Policy: FCFS, Backfill: EASY},
		{Policy: SJF, Backfill: Conservative},
		{Policy: WFP3, Backfill: Relaxed},
		{Policy: Fair, Backfill: AdaptiveRelaxed},
	}
	for _, opt := range combos {
		name := fmt.Sprintf("%v-%v", opt.Policy, opt.Backfill)
		matRec, strRec := &obs.Recorder{}, &obs.Recorder{}
		matOpt, strOpt := opt, opt
		matOpt.Observer = matRec
		strOpt.Observer = strRec
		want, err := Run(tr, matOpt)
		if err != nil {
			t.Fatalf("%s: materialized: %v", name, err)
		}
		var rows []StreamRow
		got, err := RunStream(trace.NewSliceStream(tr), strOpt, func(r StreamRow) error {
			rows = append(rows, r)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: stream: %v", name, err)
		}
		if got.AvgWait != want.AvgWait || got.AvgBsld != want.AvgBsld ||
			got.Utilization != want.Utilization || got.Makespan != want.Makespan ||
			got.Violations != want.Violations || got.ViolationDelay != want.ViolationDelay ||
			got.Backfilled != want.Backfilled || got.MaxQueueLen != want.MaxQueueLen {
			t.Fatalf("%s: aggregates differ:\n  stream: %+v\n  mat:    %+v", name, got, want)
		}
		if len(got.QueueTimeline) != len(want.QueueTimeline) {
			t.Fatalf("%s: timeline length %d want %d", name, len(got.QueueTimeline), len(want.QueueTimeline))
		}
		for i := range got.QueueTimeline {
			if got.QueueTimeline[i] != want.QueueTimeline[i] {
				t.Fatalf("%s: timeline[%d] %+v want %+v", name, i, got.QueueTimeline[i], want.QueueTimeline[i])
			}
		}
		if got.Jobs != nil || got.PromisedStart != nil {
			t.Fatalf("%s: streaming Result must not materialize jobs", name)
		}
		if len(rows) != len(want.Jobs) {
			t.Fatalf("%s: %d rows want %d", name, len(rows), len(want.Jobs))
		}
		for i, r := range rows {
			if r.Job != want.Jobs[i] {
				t.Fatalf("%s: row %d job %+v want %+v", name, i, r.Job, want.Jobs[i])
			}
			if r.Promised != want.PromisedStart[i] {
				t.Fatalf("%s: row %d promised %v want %v", name, i, r.Promised, want.PromisedStart[i])
			}
		}
		if len(strRec.Events) != len(matRec.Events) {
			t.Fatalf("%s: %d events want %d", name, len(strRec.Events), len(matRec.Events))
		}
		for i := range strRec.Events {
			if strRec.Events[i] != matRec.Events[i] {
				t.Fatalf("%s: event %d differs:\n  stream: %+v\n  mat:    %+v",
					name, i, strRec.Events[i], matRec.Events[i])
			}
		}
	}
}

// TestStreamWindowIsBounded: the peak window must track concurrency, not
// trace length — doubling the trace must not change MaxWindowJobs on a
// steady periodic workload, and it must stay far below the job count.
func TestStreamWindowIsBounded(t *testing.T) {
	periodic := func(n int) *trace.Trace {
		jobs := make([]trace.Job, n)
		for i := range jobs {
			jobs[i] = trace.Job{
				Submit: float64(i) * 10, Run: 35, Walltime: 40, Procs: 16,
				User: i % 5, VC: -1,
			}
		}
		return mk(64, jobs)
	}
	peak := func(n int) int64 {
		var met obs.Metrics
		opt := Options{Policy: FCFS, Backfill: EASY, Metrics: &met}
		if _, err := RunStream(trace.NewSliceStream(periodic(n)), opt, nil); err != nil {
			t.Fatal(err)
		}
		if met.JobsRetired != int64(n) {
			t.Fatalf("retired %d want %d", met.JobsRetired, n)
		}
		return met.MaxWindowJobs
	}
	small, large := peak(2000), peak(4000)
	if small != large {
		t.Fatalf("window grew with trace length: %d jobs -> %d, %d jobs -> %d",
			2000, small, 4000, large)
	}
	if small > 64 {
		t.Fatalf("window %d not O(active) for a 4-slot steady workload", small)
	}
}

// TestStreamCompaction: a long run must slide the window through the
// retained arrays many times (idxBase advances), still matching the
// materialized run exactly. The bursty trace also exercises the growth
// path of winMakeRoom.
func TestStreamCompaction(t *testing.T) {
	tr := streamTrace(3000)
	want, err := Run(tr, Options{Policy: SJF, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	var met obs.Metrics
	i := 0
	got, err := RunStream(trace.NewSliceStream(tr), Options{Policy: SJF, Backfill: EASY, Metrics: &met},
		func(r StreamRow) error {
			if r.Job != want.Jobs[i] {
				return fmt.Errorf("row %d: %+v want %+v", i, r.Job, want.Jobs[i])
			}
			i++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if i != tr.Len() {
		t.Fatalf("retired %d rows want %d", i, tr.Len())
	}
	if got.AvgWait != want.AvgWait || got.AvgBsld != want.AvgBsld {
		t.Fatalf("aggregates differ: %+v vs %+v", got, want)
	}
	if met.MaxWindowJobs >= int64(tr.Len()) {
		t.Fatalf("window never slid: peak %d of %d jobs", met.MaxWindowJobs, tr.Len())
	}
}

// TestStreamRunnerReuse: a Runner must stay reusable across streaming and
// materialized runs in any order, without cross-contamination.
func TestStreamRunnerReuse(t *testing.T) {
	tr := streamTrace(500)
	r := NewRunner()
	want, err := r.Run(tr, Options{Policy: FCFS, Backfill: EASY})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := r.RunStream(trace.NewSliceStream(tr), Options{Policy: FCFS, Backfill: EASY}, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.AvgWait != want.AvgWait || got.AvgBsld != want.AvgBsld || got.Makespan != want.Makespan {
			t.Fatalf("round %d: streaming drifted: %+v vs %+v", round, got, want)
		}
		again, err := r.Run(tr, Options{Policy: FCFS, Backfill: EASY})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if again.AvgWait != want.AvgWait || len(again.Jobs) != len(want.Jobs) {
			t.Fatalf("round %d: materialized drifted after streaming", round)
		}
	}
}

// TestStreamErrors pins the streaming error paths.
func TestStreamErrors(t *testing.T) {
	tr := streamTrace(100)

	t.Run("faults rejected", func(t *testing.T) {
		cfg := &fault.Config{Seed: 1, MTBF: 1e5, MTTR: 1e3}
		_, err := RunStream(trace.NewSliceStream(tr), Options{Policy: FCFS, Backfill: EASY, Faults: cfg}, nil)
		if err == nil || !strings.Contains(err.Error(), "fault injection") {
			t.Fatalf("want fault-injection rejection, got %v", err)
		}
	})

	t.Run("zero capacity", func(t *testing.T) {
		bad := trace.New(trace.System{Name: "Z"})
		_, err := RunStream(trace.NewSliceStream(bad), Options{Policy: FCFS, Backfill: EASY}, nil)
		if err == nil || !strings.Contains(err.Error(), "capacity") {
			t.Fatalf("want capacity error, got %v", err)
		}
	})

	t.Run("mid-stream read error", func(t *testing.T) {
		cause := errors.New("disk gone")
		var met obs.Metrics
		src := &errStream{tr: tr, failAfter: 50, failErr: cause}
		_, err := RunStream(src, Options{Policy: FCFS, Backfill: EASY, Metrics: &met}, nil)
		if err == nil || !errors.Is(err, cause) {
			t.Fatalf("want wrapped read error, got %v", err)
		}
		if !strings.Contains(err.Error(), "trace stream failed") {
			t.Fatalf("error lacks stream context: %v", err)
		}
		// Partial progress must still be visible.
		if met.Arrivals == 0 || met.JobsRetired == 0 {
			t.Fatalf("partial metrics missing: %+v", met)
		}
	})

	t.Run("sink error", func(t *testing.T) {
		cause := errors.New("sink full")
		_, err := RunStream(trace.NewSliceStream(tr), Options{Policy: FCFS, Backfill: EASY},
			func(StreamRow) error { return cause })
		if err == nil || !errors.Is(err, cause) {
			t.Fatalf("want wrapped sink error, got %v", err)
		}
		if !strings.Contains(err.Error(), "sink failed") {
			t.Fatalf("error lacks sink context: %v", err)
		}
	})

	t.Run("unsorted stream", func(t *testing.T) {
		bad := mk(64, []trace.Job{
			{Submit: 100, Run: 10, Walltime: 10, Procs: 1, VC: -1},
			{Submit: 5, Run: 10, Walltime: 10, Procs: 1, VC: -1},
		})
		// mk sorts, so disorder the copy after the fact.
		bad.Jobs[0].Submit, bad.Jobs[1].Submit = 100, 5
		_, err := RunStream(trace.NewSliceStream(bad), Options{Policy: FCFS, Backfill: EASY}, nil)
		if err == nil || !strings.Contains(err.Error(), "submit order") {
			t.Fatalf("want submit-order error, got %v", err)
		}
	})

	t.Run("invalid job", func(t *testing.T) {
		bad := mk(64, []trace.Job{{Submit: 0, Run: -5, Walltime: 10, Procs: 1, VC: -1}})
		_, err := RunStream(trace.NewSliceStream(bad), Options{Policy: FCFS, Backfill: EASY}, nil)
		if err == nil || !strings.Contains(err.Error(), "negative runtime") {
			t.Fatalf("want validation error, got %v", err)
		}
	})

	t.Run("too wide", func(t *testing.T) {
		bad := mk(64, []trace.Job{{Submit: 0, Run: 5, Walltime: 10, Procs: 128, VC: -1}})
		_, err := RunStream(trace.NewSliceStream(bad), Options{Policy: FCFS, Backfill: EASY}, nil)
		if err == nil || !strings.Contains(err.Error(), "partition") {
			t.Fatalf("want partition-fit error, got %v", err)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var met obs.Metrics
		_, err := RunStreamContext(ctx, trace.NewSliceStream(tr),
			Options{Policy: FCFS, Backfill: EASY, Metrics: &met}, nil)
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if !met.Canceled {
			t.Fatal("metrics did not record cancellation")
		}
	})
}

// TestStreamEmpty: an empty stream completes with a zero result.
func TestStreamEmpty(t *testing.T) {
	empty := trace.New(trace.System{Name: "E", TotalCores: 8})
	res, err := RunStream(trace.NewSliceStream(empty), Options{Policy: FCFS, Backfill: EASY}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait != 0 || res.Makespan != 0 || len(res.QueueTimeline) != 0 {
		t.Fatalf("empty stream result not zero: %+v", res)
	}
}

package check

import (
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// verifyTrace generates one verification workload, sized so the O(n²)
// oracle stays fast while queues still build up.
func verifyTrace(t testing.TB, p *synth.Profile, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := p.Generate(seed)
	if err != nil {
		t.Fatalf("generate %s: %v", p.Sys.Name, err)
	}
	if tr.Len() == 0 {
		t.Fatalf("generate %s: empty trace", p.Sys.Name)
	}
	// The generator fills Wait from its shadow scheduler; the simulator
	// ignores it, but clear it to prove nothing leaks through.
	for i := range tr.Jobs {
		tr.Jobs[i].Wait = -1
	}
	return tr
}

// TestDifferentialSweep is the main differential gate: every policy x
// backfill combination on three verification workloads must match the
// oracle's schedule exactly and pass the auditor with zero findings.
func TestDifferentialSweep(t *testing.T) {
	days := 0.35
	if testing.Short() {
		days = 0.15
	}
	for _, p := range synth.VerifyProfiles(days) {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 7)
			t.Logf("%s: %d jobs", p.Sys.Name, tr.Len())
			for _, opt := range Combos(0.15) {
				if err := Verify(tr, opt); err != nil {
					t.Errorf("%s + %s: %v", opt.Policy, opt.Backfill, err)
				}
			}
		})
	}
}

// TestDifferentialOptionVariants covers the option axes the sweep holds
// fixed: perfect-estimate planning, advisory walltime predictions, a custom
// learned score, an explicit adaptive normalization, and fairshare decay.
func TestDifferentialOptionVariants(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.25), 11)
	variants := []struct {
		name string
		opt  sim.Options
	}{
		{"oracle-runtime", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, UseActualRuntime: true}},
		{"predictor", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
			WalltimePredictor: func(j trace.Job) float64 { return j.Run*1.2 + 60 }}},
		{"custom-score", sim.Options{Backfill: sim.EASY,
			CustomScore: func(reqTime float64, procs int, submit, now float64) float64 {
				return reqTime * float64(procs)
			}}},
		{"adaptive-fixed-maxq", sim.Options{Policy: sim.SJF, Backfill: sim.AdaptiveRelaxed,
			RelaxFactor: 0.2, MaxQueueLen: 12}},
		{"fair-short-halflife", sim.Options{Policy: sim.Fair, Backfill: sim.Relaxed,
			FairshareHalfLife: 3600}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			if err := Verify(tr, v.opt); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestOracleMatchesOnHandBuiltTrace pins the oracle on a schedule small
// enough to verify by hand: 4 cores, FCFS+EASY. Job 2 (1 core, short) must
// backfill ahead of blocked job 1 (4 cores) without delaying its promise.
func TestOracleMatchesOnHandBuiltTrace(t *testing.T) {
	tr := trace.New(trace.System{Name: "hand", TotalCores: 4})
	tr.Jobs = []trace.Job{
		{ID: 0, Submit: 0, Run: 100, Walltime: 120, Procs: 3, VC: -1},
		{ID: 1, Submit: 10, Run: 50, Walltime: 60, Procs: 4, VC: -1},
		{ID: 2, Submit: 20, Run: 30, Walltime: 40, Procs: 1, VC: -1},
	}
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}
	ref, err := Oracle(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 is promised job 0's planned end (t=120) but starts at its real
	// end (t=100); job 2 backfills at submission because 20+40 <= 120.
	wantWaits := []float64{0, 90, 0}
	for i, w := range wantWaits {
		if ref.Jobs[i].Wait != w {
			t.Errorf("job %d wait = %v, want %v", i, ref.Jobs[i].Wait, w)
		}
	}
	if ref.Backfilled != 1 {
		t.Errorf("backfilled = %d, want 1", ref.Backfilled)
	}
	if ref.Violations != 0 {
		t.Errorf("violations = %d, want 0", ref.Violations)
	}
	if err := Verify(tr, opt); err != nil {
		t.Error(err)
	}
}

// TestAuditCleanRun asserts a real simulator run audits clean and the
// report carries evidence counts.
func TestAuditCleanRun(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyVC(0.2), 3)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep := Audit(tr, opt, res)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.JobsChecked != tr.Len() || rep.EventsChecked == 0 {
		t.Errorf("report evidence: jobs %d events %d", rep.JobsChecked, rep.EventsChecked)
	}
}

// TestAuditDetectsCorruption proves the auditor has teeth: tampering with a
// clean result in characteristic ways must produce the matching finding.
func TestAuditDetectsCorruption(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.2), 5)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}
	clean, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(tr, opt, clean).Err(); err != nil {
		t.Fatalf("clean run must audit clean: %v", err)
	}

	// Find a job that actually waited, so pulling its start earlier
	// overlaps it with whatever was occupying the machine.
	victim := -1
	for i := range clean.Jobs {
		if clean.Jobs[i].Wait > 60 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no waiting job in verification workload; increase load")
	}

	corrupt := func(mutate func(r *sim.Result)) *AuditReport {
		c := *clean
		c.Jobs = append([]trace.Job(nil), clean.Jobs...)
		c.PromisedStart = append([]float64(nil), clean.PromisedStart...)
		mutate(&c)
		return Audit(tr, opt, &c)
	}

	cases := []struct {
		name      string
		invariant string
		mutate    func(r *sim.Result)
	}{
		{"start-before-submit", "causality", func(r *sim.Result) { r.Jobs[victim].Wait = -5 }},
		{"double-booked", "conservation", func(r *sim.Result) { r.Jobs[victim].Wait = 0 }},
		{"violation-miscount", "promise", func(r *sim.Result) { r.Violations += 3 }},
		{"wrong-avg-wait", "metrics", func(r *sim.Result) { r.AvgWait *= 1.5 }},
		{"wrong-utilization", "metrics", func(r *sim.Result) { r.Utilization += 0.05 }},
		{"wrong-max-queue", "metrics", func(r *sim.Result) { r.MaxQueueLen++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := corrupt(tc.mutate)
			if rep.OK() {
				t.Fatalf("auditor accepted corrupted result (%s)", tc.name)
			}
			found := false
			for _, f := range rep.Findings {
				if f.Invariant == tc.invariant {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("want a %q finding, got %v", tc.invariant, rep.Findings)
			}
		})
	}
}

// TestAuditCatchesAllowanceAbuse: under relaxed backfilling a promised job
// pushed far past promise + allowance must raise the allowance invariant.
func TestAuditCatchesAllowanceAbuse(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.2), 5)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.Relaxed, RelaxFactor: 0.1}
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, pr := range res.PromisedStart {
		if pr >= 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no promised job in workload")
	}
	res.Jobs[victim].Wait += 10 * (res.PromisedStart[victim] - tr.Jobs[victim].Submit + 3600)
	rep := Audit(tr, opt, res)
	found := false
	for _, f := range rep.Findings {
		if f.Invariant == "allowance" {
			found = true
		}
	}
	if !found {
		t.Errorf("want an allowance finding, got %v", rep.Findings)
	}
}

// TestPartitionContract pins the partition mapping shared with the
// simulator: valid VCs map to themselves, everything else hashes by user.
func TestPartitionContract(t *testing.T) {
	if got := Partition(trace.Job{VC: 2, User: 9}, 3); got != 2 {
		t.Errorf("VC 2 of 3 -> %d, want 2", got)
	}
	if got := Partition(trace.Job{VC: -1, User: 9}, 3); got != 0 {
		t.Errorf("user 9 of 3 parts -> %d, want 0", got)
	}
	if got := Partition(trace.Job{VC: 7, User: 1}, 3); got != 1 {
		t.Errorf("out-of-range VC must hash by user, got %d", got)
	}
	caps := PartitionCapacities(trace.System{TotalCores: 10, VirtualClusters: 3})
	if caps[0] != 4 || caps[1] != 3 || caps[2] != 3 {
		t.Errorf("capacities = %v, want [4 3 3]", caps)
	}
}

package check

import (
	"fmt"
	"math"
	"strings"

	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// DiffReport lists the disagreements between the optimized simulator and
// the reference oracle on one workload.
type DiffReport struct {
	Mismatches []string
	// Jobs is the number of jobs whose schedules were compared.
	Jobs int
}

// OK reports whether the two simulators agreed exactly.
func (d *DiffReport) OK() bool { return len(d.Mismatches) == 0 }

// Err returns nil on agreement, else an error naming the first mismatches.
func (d *DiffReport) Err() error {
	if d.OK() {
		return nil
	}
	n := len(d.Mismatches)
	msgs := d.Mismatches
	if n > 5 {
		msgs = append(append([]string(nil), msgs[:5]...), fmt.Sprintf("... and %d more", n-5))
	}
	return fmt.Errorf("check: simulator diverges from oracle (%d mismatches): %s",
		n, strings.Join(msgs, "; "))
}

func (d *DiffReport) addf(format string, args ...interface{}) {
	d.Mismatches = append(d.Mismatches, fmt.Sprintf(format, args...))
}

// nearlyEq absorbs summation-order differences in aggregate metrics; all
// per-job quantities are compared exactly.
func nearlyEq(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

// Diff runs both the optimized simulator and the naive oracle on tr under
// opt and compares the schedules. Start times, promises, and the violation/
// backfill counters must match exactly; aggregate metrics must match to
// float tolerance. Deterministic options only (CustomScore is allowed but
// must itself be deterministic).
func Diff(tr *trace.Trace, opt sim.Options) (*DiffReport, error) {
	fast, err := sim.Run(tr, opt)
	if err != nil {
		return nil, fmt.Errorf("check: optimized simulator: %w", err)
	}
	ref, err := Oracle(tr, opt)
	if err != nil {
		return nil, fmt.Errorf("check: oracle: %w", err)
	}
	return compare(fast, ref), nil
}

// compare reports every disagreement between an optimized result and a
// reference result for the same workload.
func compare(fast, ref *sim.Result) *DiffReport {
	d := &DiffReport{Jobs: len(ref.Jobs)}
	if len(fast.Jobs) != len(ref.Jobs) {
		d.addf("job count %d vs oracle %d", len(fast.Jobs), len(ref.Jobs))
		return d
	}
	for i := range ref.Jobs {
		if fast.Jobs[i].Wait != ref.Jobs[i].Wait {
			d.addf("job %d wait %v vs oracle %v", ref.Jobs[i].ID, fast.Jobs[i].Wait, ref.Jobs[i].Wait)
		}
		if fast.PromisedStart[i] != ref.PromisedStart[i] {
			d.addf("job %d promise %v vs oracle %v", ref.Jobs[i].ID, fast.PromisedStart[i], ref.PromisedStart[i])
		}
		if fast.Jobs[i].Status != ref.Jobs[i].Status {
			d.addf("job %d status %v vs oracle %v", ref.Jobs[i].ID, fast.Jobs[i].Status, ref.Jobs[i].Status)
		}
		if len(d.Mismatches) > 20 {
			d.addf("stopping after 20 per-job mismatches")
			return d
		}
	}
	if fast.Interrupted != ref.Interrupted {
		d.addf("interrupted %d vs oracle %d", fast.Interrupted, ref.Interrupted)
	}
	if fast.Requeued != ref.Requeued {
		d.addf("requeued %d vs oracle %d", fast.Requeued, ref.Requeued)
	}
	if fast.FaultFailed != ref.FaultFailed {
		d.addf("fault-failed %d vs oracle %d", fast.FaultFailed, ref.FaultFailed)
	}
	if !nearlyEq(fast.GoodputCoreSeconds, ref.GoodputCoreSeconds) {
		d.addf("goodput %v vs oracle %v", fast.GoodputCoreSeconds, ref.GoodputCoreSeconds)
	}
	if !nearlyEq(fast.WastedCoreSeconds, ref.WastedCoreSeconds) {
		d.addf("wasted %v vs oracle %v", fast.WastedCoreSeconds, ref.WastedCoreSeconds)
	}
	if fast.Violations != ref.Violations {
		d.addf("violations %d vs oracle %d", fast.Violations, ref.Violations)
	}
	if !nearlyEq(fast.ViolationDelay, ref.ViolationDelay) {
		d.addf("violation delay %v vs oracle %v", fast.ViolationDelay, ref.ViolationDelay)
	}
	if fast.Backfilled != ref.Backfilled {
		d.addf("backfilled %d vs oracle %d", fast.Backfilled, ref.Backfilled)
	}
	if fast.MaxQueueLen != ref.MaxQueueLen {
		d.addf("max queue %d vs oracle %d", fast.MaxQueueLen, ref.MaxQueueLen)
	}
	if fast.Makespan != ref.Makespan {
		d.addf("makespan %v vs oracle %v", fast.Makespan, ref.Makespan)
	}
	if !nearlyEq(fast.AvgWait, ref.AvgWait) {
		d.addf("avg wait %v vs oracle %v", fast.AvgWait, ref.AvgWait)
	}
	if !nearlyEq(fast.AvgBsld, ref.AvgBsld) {
		d.addf("avg bsld %v vs oracle %v", fast.AvgBsld, ref.AvgBsld)
	}
	if !nearlyEq(fast.Utilization, ref.Utilization) {
		d.addf("utilization %v vs oracle %v", fast.Utilization, ref.Utilization)
	}
	return d
}

// Verify is the full differential gate for one workload and option set: the
// optimized simulator must match the oracle exactly AND its output must
// pass an auditor with zero findings. Used by the differential tests, the
// fuzz targets, and schedsim -audit's self-check mode.
//
// On fault-free runs the schedule auditor (Audit) checks the result alone.
// Under fault injection, Audit's reconstruction (one start per job at
// Submit+Wait, occupancy Run) no longer describes the schedule, so Verify
// records the decision stream and runs the stream auditor instead, which
// understands interrupts, requeues, and drained capacity.
func Verify(tr *trace.Trace, opt sim.Options) error {
	if opt.Faults.Enabled() {
		rec := &obs.Recorder{}
		opt.Observer = obs.Tee(opt.Observer, rec)
		res, err := sim.Run(tr, opt)
		if err != nil {
			return fmt.Errorf("check: optimized simulator: %w", err)
		}
		if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
			return fmt.Errorf("%w (under %s + %s with faults)", err, opt.Policy, opt.Backfill)
		}
		ref, err := Oracle(tr, opt)
		if err != nil {
			return fmt.Errorf("check: oracle: %w", err)
		}
		if err := compare(res, ref).Err(); err != nil {
			return fmt.Errorf("%w (under %s + %s with faults)", err, opt.Policy, opt.Backfill)
		}
		return nil
	}
	res, err := sim.Run(tr, opt)
	if err != nil {
		return fmt.Errorf("check: optimized simulator: %w", err)
	}
	if err := Audit(tr, opt, res).Err(); err != nil {
		return fmt.Errorf("%w (under %s + %s)", err, opt.Policy, opt.Backfill)
	}
	ref, err := Oracle(tr, opt)
	if err != nil {
		return fmt.Errorf("check: oracle: %w", err)
	}
	if err := compare(res, ref).Err(); err != nil {
		return fmt.Errorf("%w (under %s + %s)", err, opt.Policy, opt.Backfill)
	}
	return nil
}

// Combos enumerates every policy x backfill option set, with the given
// relaxation factor applied to the relaxed kinds. The differential sweep
// runs each of them on every verification workload.
func Combos(relax float64) []sim.Options {
	out := make([]sim.Options, 0, len(sim.Policies)*len(sim.Backfills))
	for _, p := range sim.Policies {
		for _, b := range sim.Backfills {
			out = append(out, sim.Options{Policy: p, Backfill: b, RelaxFactor: relax})
		}
	}
	return out
}

package check

import (
	"fmt"

	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// DiffStream runs tr through the windowed streaming simulator
// (sim.RunStream) and the materialized one (sim.Run) under opt and compares
// them. Unlike the oracle diff, which tolerates summation-order drift in
// aggregates, the streaming path promises float-for-float identity — it
// executes the same decision code over a sliding window and folds the
// result sums in the same order — so EVERYTHING is compared exactly: the
// retired rows against Result.Jobs/PromisedStart element for element, every
// aggregate bit for bit, the queue timeline, and the full decision-event
// stream through the observer.
func DiffStream(tr *trace.Trace, opt sim.Options) (*DiffReport, error) {
	matRec, strRec := &obs.Recorder{}, &obs.Recorder{}
	matOpt, strOpt := opt, opt
	matOpt.Observer = matRec
	strOpt.Observer = strRec

	mat, err := sim.Run(tr, matOpt)
	if err != nil {
		return nil, fmt.Errorf("check: materialized simulator: %w", err)
	}
	var rows []sim.StreamRow
	var met obs.Metrics
	strOpt.Metrics = &met
	str, err := sim.RunStream(trace.NewSliceStream(tr), strOpt, func(r sim.StreamRow) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("check: streaming simulator: %w", err)
	}

	d := &DiffReport{Jobs: len(mat.Jobs)}
	if len(rows) != len(mat.Jobs) {
		d.addf("row count %d vs materialized %d", len(rows), len(mat.Jobs))
		return d, nil
	}
	for i := range rows {
		if rows[i].Job != mat.Jobs[i] {
			d.addf("row %d job %+v vs materialized %+v", i, rows[i].Job, mat.Jobs[i])
		}
		if rows[i].Promised != mat.PromisedStart[i] {
			d.addf("row %d promise %v vs materialized %v", i, rows[i].Promised, mat.PromisedStart[i])
		}
		if len(d.Mismatches) > 20 {
			d.addf("stopping after 20 per-row mismatches")
			return d, nil
		}
	}
	if str.AvgWait != mat.AvgWait {
		d.addf("avg wait %v vs materialized %v", str.AvgWait, mat.AvgWait)
	}
	if str.AvgBsld != mat.AvgBsld {
		d.addf("avg bsld %v vs materialized %v", str.AvgBsld, mat.AvgBsld)
	}
	if str.Utilization != mat.Utilization {
		d.addf("utilization %v vs materialized %v", str.Utilization, mat.Utilization)
	}
	if str.Makespan != mat.Makespan {
		d.addf("makespan %v vs materialized %v", str.Makespan, mat.Makespan)
	}
	if str.Violations != mat.Violations {
		d.addf("violations %d vs materialized %d", str.Violations, mat.Violations)
	}
	if str.ViolationDelay != mat.ViolationDelay {
		d.addf("violation delay %v vs materialized %v", str.ViolationDelay, mat.ViolationDelay)
	}
	if str.Backfilled != mat.Backfilled {
		d.addf("backfilled %d vs materialized %d", str.Backfilled, mat.Backfilled)
	}
	if str.MaxQueueLen != mat.MaxQueueLen {
		d.addf("max queue %d vs materialized %d", str.MaxQueueLen, mat.MaxQueueLen)
	}
	if len(str.QueueTimeline) != len(mat.QueueTimeline) {
		d.addf("timeline length %d vs materialized %d", len(str.QueueTimeline), len(mat.QueueTimeline))
	} else {
		for i := range str.QueueTimeline {
			if str.QueueTimeline[i] != mat.QueueTimeline[i] {
				d.addf("timeline[%d] %+v vs materialized %+v", i, str.QueueTimeline[i], mat.QueueTimeline[i])
				break
			}
		}
	}
	if len(strRec.Events) != len(matRec.Events) {
		d.addf("event count %d vs materialized %d", len(strRec.Events), len(matRec.Events))
	} else {
		for i := range strRec.Events {
			if strRec.Events[i] != matRec.Events[i] {
				d.addf("event %d %+v vs materialized %+v", i, strRec.Events[i], matRec.Events[i])
				break
			}
		}
	}
	if met.JobsRetired != int64(len(mat.Jobs)) {
		d.addf("retired %d of %d jobs", met.JobsRetired, len(mat.Jobs))
	}
	if n := int64(len(mat.Jobs)); n > 0 && (met.MaxWindowJobs < 1 || met.MaxWindowJobs > n) {
		d.addf("window peak %d outside [1, %d]", met.MaxWindowJobs, n)
	}
	return d, nil
}

// VerifyStream is DiffStream reduced to an error, mirroring Verify.
func VerifyStream(tr *trace.Trace, opt sim.Options) error {
	d, err := DiffStream(tr, opt)
	if err != nil {
		return err
	}
	return d.Err()
}

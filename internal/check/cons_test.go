package check

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// This file is the conservative-backfilling differential gate: the stress
// workloads (deep tie-heavy queues, heavy walltime overestimation) pin the
// incrementally maintained reservation plan against the O(n²) oracle — both
// the Result and the emitted decision stream, event for event.

// streamVsOracle asserts the recorded decision stream reproduces the
// oracle's schedule: every job's first start at the oracle's Submit+Wait,
// every reservation event promising the oracle's promise, and exactly the
// oracle's number of backfills. compare() already pins the Result against
// the oracle; this pins the event stream — the trace's external interface —
// to the same reference.
func streamVsOracle(t *testing.T, label string, tr *trace.Trace, events []obs.Event, ref *sim.Result) {
	t.Helper()
	errs := 0
	errorf := func(format string, args ...interface{}) {
		if errs < 10 {
			t.Errorf(label+": "+format, args...)
		}
		errs++
	}
	started := make([]bool, tr.Len())
	promised := make([]bool, tr.Len())
	backfills := 0
	for _, e := range events {
		switch e.Kind {
		case obs.JobStart:
			if started[e.Job] {
				continue // restarts are a fault-path concept; not expected here
			}
			started[e.Job] = true
			if want := tr.Jobs[e.Job].Submit + ref.Jobs[e.Job].Wait; e.Time != want {
				errorf("job %d starts at %v, oracle schedules %v", e.Job, e.Time, want)
			}
		case obs.ReservationMade:
			if promised[e.Job] {
				continue
			}
			promised[e.Job] = true
			if e.Detail != ref.PromisedStart[e.Job] {
				errorf("job %d promised %v, oracle promises %v", e.Job, e.Detail, ref.PromisedStart[e.Job])
			}
		case obs.Backfill:
			backfills++
		}
	}
	for i := range started {
		if !started[i] {
			errorf("job %d never starts in the stream", i)
		}
		if promised[i] != (ref.PromisedStart[i] >= 0) {
			errorf("job %d promise events disagree with oracle promise %v", i, ref.PromisedStart[i])
		}
	}
	if backfills != ref.Backfilled {
		errorf("stream shows %d backfills, oracle schedules %d", backfills, ref.Backfilled)
	}
	if errs > 10 {
		t.Errorf("%s: ... and %d more stream mismatches", label, errs-10)
	}
}

// TestConservativeStressSweep runs the conservative stress workloads across
// every policy (plus perfect-estimate planning) and demands triple
// agreement: Result == oracle, decision stream == oracle schedule, and a
// clean stream audit (which, under FCFS, includes the reservation
// invariant: no start ever falls behind its promise).
func TestConservativeStressSweep(t *testing.T) {
	days := 0.3
	if testing.Short() {
		days = 0.12
	}
	for _, p := range synth.VerifyConsProfiles(days) {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 7)
			// Vacuity guard: the stress profiles quantize submits to whole
			// seconds precisely so arrival batches collide on exact ties.
			ties := 0
			for i := 1; i < tr.Len(); i++ {
				if tr.Jobs[i].Submit == tr.Jobs[i-1].Submit {
					ties++
				}
			}
			if ties == 0 {
				t.Fatalf("%s has no exact submit ties; the tie-heavy stress is vacuous", p.Sys.Name)
			}
			t.Logf("%s: %d jobs, %d exact submit ties", p.Sys.Name, tr.Len(), ties)

			for _, pol := range sim.Policies {
				for _, ua := range []bool{false, true} {
					opt := sim.Options{Policy: pol, Backfill: sim.Conservative, UseActualRuntime: ua}
					label := fmt.Sprintf("%s ua=%v", opt.Policy, ua)
					rec := &obs.Recorder{}
					opt.Observer = rec
					res, err := sim.Run(tr, opt)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					ref, err := Oracle(tr, opt)
					if err != nil {
						t.Fatalf("%s: oracle: %v", label, err)
					}
					if err := compare(res, ref).Err(); err != nil {
						t.Errorf("%s: %v", label, err)
					}
					if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
						t.Errorf("%s: %v", label, err)
					}
					streamVsOracle(t, label, tr, rec.Events, ref)
				}
			}
		})
	}
}

// TestConservativeStressUnderFaults drives the stress workloads through
// fault drains with conservative backfilling: outages and interrupts
// invalidate the maintained plan, and the repaired schedule must still
// match the oracle and pass the stream auditor.
func TestConservativeStressUnderFaults(t *testing.T) {
	days := 0.2
	if testing.Short() {
		days = 0.1
	}
	tr := verifyTrace(t, synth.VerifyConsDeep(days), 7)
	scenarios := faultScenarios()
	for _, name := range []string{"outage-scripted", "mixed"} {
		for _, pol := range []sim.Policy{sim.FCFS, sim.SJF} {
			opt := sim.Options{Policy: pol, Backfill: sim.Conservative, Faults: scenarios[name]}
			if err := Verify(tr, opt); err != nil {
				t.Errorf("%s under %s: %v", name, pol, err)
			}
		}
	}
}

// TestStreamAuditReservationTamper pins the reservation invariant: on an
// FCFS conservative stream, dragging a promised job's start behind its
// reservation — or forging a promise-violation event — must raise a
// "reservation" finding.
func TestStreamAuditReservationTamper(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyConsDeep(0.15), 9)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.Conservative}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("clean conservative stream rejected: %v", err)
	}

	// A promised job and its first start event.
	victim, startIdx := -1, -1
	for i, e := range rec.Events {
		if e.Kind == obs.JobStart && res.PromisedStart[e.Job] >= 0 {
			victim, startIdx = e.Job, i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no promised job in stress workload; increase load")
	}

	cases := []struct {
		name    string
		corrupt func(evs []obs.Event) []obs.Event
	}{
		{"start dragged behind reservation", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			// Push the start past the promise however far away it was.
			out[startIdx].Time = res.PromisedStart[victim] + 3600
			return out
		}},
		{"forged violation event", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			v := obs.Event{Kind: obs.PromiseViolation, Time: out[startIdx].Time,
				Job: victim, Part: out[startIdx].Part, Procs: out[startIdx].Procs, Detail: 5}
			return append(out[:startIdx+1], append([]obs.Event{v}, out[startIdx+1:]...)...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := AuditStream(tr, opt, tc.corrupt(rec.Events), res)
			if rep.OK() {
				t.Fatalf("%s went undetected", tc.name)
			}
			found := false
			for _, f := range rep.Findings {
				if f.Invariant == "reservation" {
					found = true
				}
			}
			if !found {
				t.Errorf("want a \"reservation\" finding, got: %v", rep.Err())
			}
		})
	}
}

// TestReservationInvariantScoped: under a priority policy the reservation
// invariant must stay out of the way — later higher-priority arrivals
// legitimately replan ahead of a promised job, so violated promises on an
// honest SJF conservative stream are not findings.
func TestReservationInvariantScoped(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyConsDeep(0.15), 9)
	opt := sim.Options{Policy: sim.SJF, Backfill: sim.Conservative}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Skip("no displaced promise in workload; nothing to scope")
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("honest SJF stream with displaced promises must audit clean: %v", err)
	}
}

// TestConsPlanMatchesNaiveAvailability is the check-side property test for
// the incremental reservation plan: every audited planning pass is replayed
// on the oracle's availability model — plain reservation lists, no
// incremental state at all — and the maintained plan must be its exact
// prefix. It must not run in parallel: the audit hook is process-global.
func TestConsPlanMatchesNaiveAvailability(t *testing.T) {
	var (
		mu     sync.Mutex
		passes int
		errs   []string
	)
	sim.SetConsPlanAudit(func(a sim.ConsPlanAudit) {
		mu.Lock()
		defer mu.Unlock()
		passes++
		// Anchor the base step function at now, the way the oracle builds
		// its availability at every decision point.
		k := sort.SearchFloat64s(a.BaseTimes, a.Now)
		if k >= len(a.BaseTimes) || a.BaseTimes[k] != a.Now {
			k--
		}
		if k < 0 {
			k = 0
		}
		av := &availability{
			baseTimes: append([]float64{a.Now}, a.BaseTimes[k+1:]...),
			baseFree:  append([]int{a.BaseFree[k]}, a.BaseFree[k+1:]...),
		}
		for pos := 0; pos < len(a.Procs); pos++ {
			st, _ := av.earliest(a.Now, a.Procs[pos], a.ReqTime[pos])
			av.reserve(st, a.ReqTime[pos], a.Procs[pos])
			if pos < len(a.Starts) {
				if st != a.Starts[pos] {
					if len(errs) < 10 {
						errs = append(errs, fmt.Sprintf(
							"part %d t=%v pos %d (kept %d): plan start %v, naive model plans %v",
							a.Part, a.Now, pos, a.Kept, a.Starts[pos], st))
					}
				}
			} else if st <= a.Now+1e-9 {
				if len(errs) < 10 {
					errs = append(errs, fmt.Sprintf(
						"part %d t=%v pos %d: unplanned job could start now (naive model plans %v)",
						a.Part, a.Now, pos, st))
				}
			}
		}
	})
	defer sim.SetConsPlanAudit(nil)

	for _, p := range synth.VerifyConsProfiles(0.1) {
		tr := verifyTrace(t, p, 7)
		for _, pol := range []sim.Policy{sim.FCFS, sim.SJF} {
			if _, err := sim.Run(tr, sim.Options{Policy: pol, Backfill: sim.Conservative}); err != nil {
				t.Fatalf("%s under %s: %v", p.Sys.Name, pol, err)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, e := range errs {
		t.Error(e)
	}
	if passes == 0 {
		t.Error("audit hook never fired; property test is vacuous")
	}
}

// FuzzConservativePlan lives in fuzz_test.go's corpus format but pins the
// conservative planner specifically; the decoder below derives a fault spec
// from the byte that normally selects the backfill kind.
func consFuzzFaults(b byte, cap0 int) *fault.Config {
	switch b % 4 {
	case 1:
		return &fault.Config{
			Outages:  []fault.Outage{{Part: 0, Start: float64(b) * 13, Duration: 200 + float64(b)*7, Cores: 1 + int(b)%cap0}},
			Recovery: fault.RecoveryRequeue, RetryCap: 2,
		}
	case 2:
		return &fault.Config{
			Seed: uint64(b), InterruptProb: float64(b%10) / 50,
			Recovery: fault.RecoveryRequeue, RetryCap: 2,
		}
	case 3:
		return &fault.Config{
			Seed: uint64(b), MTBF: 500 + float64(b)*29, MTTR: 100 + float64(b)*11,
			OutageFrac: 0.5, InterruptProb: float64(b%8) / 100,
			Recovery: fault.RecoveryCheckpoint, RetryCap: 3, CheckpointInterval: 300,
		}
	}
	return nil
}

// FuzzConservativePlan forces conservative backfilling on arbitrary decoded
// workloads — including fault drains — and runs the full differential gate:
// no panic, oracle-exact, auditor-clean.
func FuzzConservativePlan(f *testing.F) {
	// Seeds: fault-free ties, scripted outage, interrupts with zero-runtime
	// jobs, generated outages under checkpoint recovery.
	f.Add([]byte{0, 0, 0, 6, 10, 0, 0, 9, 8, 2, 0, 40, 0, 4, 4, 3, 0, 0, 0, 20, 20, 1, 1, 9})
	f.Add([]byte{1, 5, 2, 4, 20, 1, 5, 12, 12, 7, 2, 30, 0, 0, 0, 4, 1, 0, 9, 30, 3, 2, 0, 64})
	f.Add([]byte{8, 6, 1, 8, 10, 1, 2, 0, 16, 1, 0, 16, 2, 0, 8, 5, 0, 32, 1, 1, 1, 0, 0, 0})
	f.Add([]byte{3, 7, 0, 2, 0, 3, 0, 255, 255, 13, 1, 1, 0, 0, 200, 2, 0, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, opt := decodeFuzzInput(data)
		if tr == nil {
			return
		}
		opt.Backfill = sim.Conservative
		opt.Faults = consFuzzFaults(data[1], PartitionCapacities(tr.System)[0])
		if err := Verify(tr, opt); err != nil {
			t.Fatalf("%s + conservative on %d jobs: %v", opt.Policy, tr.Len(), err)
		}
	})
}

package check

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
)

// TestAdaptiveNeverWorseThanRelaxed states Table II's headline claim as an
// invariant and drives it with testing/quick: on any workload, adaptive
// relaxed backfilling (whose allowance is the fixed allowance scaled by
// queue pressure <= 1) must not produce MORE promise violations than fixed
// relaxed backfilling with the same factor.
func TestAdaptiveNeverWorseThanRelaxed(t *testing.T) {
	days := 0.25
	maxCount := 12
	if testing.Short() {
		maxCount = 4
	}
	profiles := synth.VerifyProfiles(days)

	property := func(seed uint64, pick uint8, relaxTenths uint8) bool {
		p := profiles[int(pick)%len(profiles)]
		tr, err := p.Generate(seed)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		relax := 0.05 + float64(relaxTenths%4)*0.05 // 0.05 .. 0.20
		relaxed, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.Relaxed, RelaxFactor: relax})
		if err != nil {
			t.Logf("relaxed: %v", err)
			return false
		}
		adaptive, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.AdaptiveRelaxed, RelaxFactor: relax})
		if err != nil {
			t.Logf("adaptive: %v", err)
			return false
		}
		if adaptive.Violations > relaxed.Violations {
			t.Logf("%s seed=%d relax=%.2f: adaptive %d violations > relaxed %d",
				p.Sys.Name, seed, relax, adaptive.Violations, relaxed.Violations)
			return false
		}
		return true
	}
	// A fixed source keeps the workload sample reproducible run to run.
	cfg := &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(20240805))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

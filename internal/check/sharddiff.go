package check

import (
	"fmt"

	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// ShardDiffReport extends DiffReport with what the sharded runs actually
// did, so sweeps can assert that a supposedly eligible configuration really
// executed in parallel instead of silently falling back.
type ShardDiffReport struct {
	DiffReport
	// Shards is the shard count the materialized sharded run executed on;
	// StreamShards the same for the streaming sharded run.
	Shards, StreamShards int64
	// FallbackReason is non-empty when the sharded request degraded to the
	// single-shard path (both runs degrade for the same reason).
	FallbackReason string
}

// DiffSharded runs tr three ways — the single-shard materialized reference
// (sim.Run), the sharded materialized path, and the sharded streaming path —
// and compares the sharded runs against the reference with the streaming
// contract: float-for-float identity on every per-job row, every aggregate,
// the queue timeline, and the full merged decision-event stream. The sharded
// engine promises byte-identical output, not statistical agreement, so
// nothing here is compared with tolerance.
func DiffSharded(tr *trace.Trace, opt sim.Options, shards int) (*ShardDiffReport, error) {
	refRec := &obs.Recorder{}
	refOpt := opt
	refOpt.Shards = 0
	refOpt.Observer = refRec
	ref, err := sim.Run(tr, refOpt)
	if err != nil {
		return nil, fmt.Errorf("check: single-shard reference: %w", err)
	}

	d := &ShardDiffReport{DiffReport: DiffReport{Jobs: len(ref.Jobs)}}

	// Sharded materialized run.
	matRec := &obs.Recorder{}
	var matMet obs.Metrics
	matOpt := opt
	matOpt.Shards = shards
	matOpt.Observer = matRec
	matOpt.Metrics = &matMet
	mat, err := sim.Run(tr, matOpt)
	if err != nil {
		return nil, fmt.Errorf("check: sharded materialized: %w", err)
	}
	d.Shards = matMet.Shards
	d.FallbackReason = matMet.ShardFallbackReason
	d.compareResult("sharded", mat, ref)
	d.compareEvents("sharded", matRec.Events, refRec.Events)

	// Sharded streaming run. Streaming rejects fault injection outright
	// (RunStream's contract, independent of sharding), so fault configs are
	// compared on the materialized path only.
	if opt.Faults.Enabled() {
		d.StreamShards = d.Shards
		return d, nil
	}
	strRec := &obs.Recorder{}
	var strMet obs.Metrics
	strOpt := opt
	strOpt.Shards = shards
	strOpt.Observer = strRec
	strOpt.Metrics = &strMet
	var rows []sim.StreamRow
	str, err := sim.RunStream(trace.NewSliceStream(tr), strOpt, func(r sim.StreamRow) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("check: sharded streaming: %w", err)
	}
	d.StreamShards = strMet.Shards
	if strMet.ShardFallbackReason != d.FallbackReason {
		d.addf("stream fallback reason %q vs materialized %q",
			strMet.ShardFallbackReason, d.FallbackReason)
	}
	if len(rows) != len(ref.Jobs) {
		d.addf("stream row count %d vs reference %d", len(rows), len(ref.Jobs))
	} else {
		for i := range rows {
			if rows[i].Job != ref.Jobs[i] {
				d.addf("stream row %d job %+v vs reference %+v", i, rows[i].Job, ref.Jobs[i])
			}
			if rows[i].Promised != ref.PromisedStart[i] {
				d.addf("stream row %d promise %v vs reference %v", i, rows[i].Promised, ref.PromisedStart[i])
			}
			if len(d.Mismatches) > 20 {
				d.addf("stopping after 20 per-row mismatches")
				return d, nil
			}
		}
	}
	d.compareAggregates("stream", str, ref)
	d.compareEvents("stream", strRec.Events, refRec.Events)
	if d.Shards > 1 && strMet.JobsRetired != int64(len(ref.Jobs)) {
		d.addf("stream retired %d of %d jobs", strMet.JobsRetired, len(ref.Jobs))
	}
	return d, nil
}

// compareResult checks a materialized sharded result — per-job rows first,
// then the shared aggregate block.
func (d *ShardDiffReport) compareResult(tag string, got, ref *sim.Result) {
	if len(got.Jobs) != len(ref.Jobs) {
		d.addf("%s job count %d vs reference %d", tag, len(got.Jobs), len(ref.Jobs))
		return
	}
	for i := range ref.Jobs {
		if got.Jobs[i] != ref.Jobs[i] {
			d.addf("%s job %d %+v vs reference %+v", tag, i, got.Jobs[i], ref.Jobs[i])
		}
		if got.PromisedStart[i] != ref.PromisedStart[i] {
			d.addf("%s job %d promise %v vs reference %v", tag, i, got.PromisedStart[i], ref.PromisedStart[i])
		}
		if len(d.Mismatches) > 20 {
			d.addf("stopping after 20 per-job mismatches")
			return
		}
	}
	d.compareAggregates(tag, got, ref)
}

// compareAggregates checks every aggregate the stitcher folds, bit for bit.
func (d *ShardDiffReport) compareAggregates(tag string, got, ref *sim.Result) {
	if got.AvgWait != ref.AvgWait {
		d.addf("%s avg wait %v vs reference %v", tag, got.AvgWait, ref.AvgWait)
	}
	if got.AvgBsld != ref.AvgBsld {
		d.addf("%s avg bsld %v vs reference %v", tag, got.AvgBsld, ref.AvgBsld)
	}
	if got.Utilization != ref.Utilization {
		d.addf("%s utilization %v vs reference %v", tag, got.Utilization, ref.Utilization)
	}
	if got.Makespan != ref.Makespan {
		d.addf("%s makespan %v vs reference %v", tag, got.Makespan, ref.Makespan)
	}
	if got.Violations != ref.Violations {
		d.addf("%s violations %d vs reference %d", tag, got.Violations, ref.Violations)
	}
	if got.ViolationDelay != ref.ViolationDelay {
		d.addf("%s violation delay %v vs reference %v", tag, got.ViolationDelay, ref.ViolationDelay)
	}
	if got.Backfilled != ref.Backfilled {
		d.addf("%s backfilled %d vs reference %d", tag, got.Backfilled, ref.Backfilled)
	}
	if got.MaxQueueLen != ref.MaxQueueLen {
		d.addf("%s max queue %d vs reference %d", tag, got.MaxQueueLen, ref.MaxQueueLen)
	}
	if len(got.QueueTimeline) != len(ref.QueueTimeline) {
		d.addf("%s timeline length %d vs reference %d", tag, len(got.QueueTimeline), len(ref.QueueTimeline))
		return
	}
	for i := range got.QueueTimeline {
		if got.QueueTimeline[i] != ref.QueueTimeline[i] {
			d.addf("%s timeline[%d] %+v vs reference %+v", tag, i, got.QueueTimeline[i], ref.QueueTimeline[i])
			return
		}
	}
}

// compareEvents checks the merged decision-event stream, element for
// element in order.
func (d *ShardDiffReport) compareEvents(tag string, got, ref []obs.Event) {
	if len(got) != len(ref) {
		d.addf("%s event count %d vs reference %d", tag, len(got), len(ref))
		return
	}
	for i := range got {
		if got[i] != ref[i] {
			d.addf("%s event %d %+v vs reference %+v", tag, i, got[i], ref[i])
			return
		}
	}
}

// VerifySharded is DiffSharded reduced to an error, mirroring Verify.
func VerifySharded(tr *trace.Trace, opt sim.Options, shards int) error {
	d, err := DiffSharded(tr, opt, shards)
	if err != nil {
		return err
	}
	return d.Err()
}

package check

import (
	"strings"
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// faultScenarios are the fault configs the differential sweep crosses with
// scheduling options: scripted and generated outages, random interrupts
// under each recovery mode, scripted kills, and a mixed scenario. Horizons
// and rates are tuned to the ~0.2-day verification workloads so every
// scenario actually drains capacity and interrupts attempts.
func faultScenarios() map[string]*fault.Config {
	return map[string]*fault.Config{
		"outage-scripted": {
			Outages:  []fault.Outage{{Part: 0, Start: 1800, Duration: 3600, Cores: 12}},
			Recovery: fault.RecoveryRequeue, RetryCap: 3,
		},
		"outage-generated": {
			Seed: 42, MTBF: 4000, MTTR: 1200, OutageFrac: 0.5,
			Recovery: fault.RecoveryRequeue, RetryCap: 4,
		},
		"interrupt-none": {
			Seed: 7, InterruptProb: 0.04, Recovery: fault.RecoveryNone,
		},
		"interrupt-requeue": {
			Seed: 7, InterruptProb: 0.08, Recovery: fault.RecoveryRequeue, RetryCap: 2,
		},
		"interrupt-checkpoint": {
			Seed: 7, InterruptProb: 0.08, Recovery: fault.RecoveryCheckpoint,
			RetryCap: 2, CheckpointInterval: 600,
		},
		"kills-scripted": {
			Kills:    []fault.JobKill{{Job: 0, After: 30}, {Job: 5, After: 120}, {Job: 9, After: 1}},
			Recovery: fault.RecoveryRequeue, RetryCap: 1,
		},
		"mixed": {
			Seed: 13, MTBF: 5000, MTTR: 900, OutageFrac: 0.4, InterruptProb: 0.03,
			Recovery: fault.RecoveryCheckpoint, RetryCap: 3, CheckpointInterval: 450,
		},
	}
}

// TestFaultDifferentialSweep is the fault-injection differential gate: for
// every fault scenario and a spread of policy x backfill combinations, the
// optimized simulator must reproduce the oracle's schedule exactly (same
// seed => identical interrupts, requeues, and start times) and its decision
// stream must pass the stream auditor with zero findings.
func TestFaultDifferentialSweep(t *testing.T) {
	days := 0.2
	if testing.Short() {
		days = 0.1
	}
	combos := []sim.Options{
		{Policy: sim.FCFS, Backfill: sim.NoBackfill},
		{Policy: sim.FCFS, Backfill: sim.EASY},
		{Policy: sim.SJF, Backfill: sim.Conservative},
		{Policy: sim.WFP3, Backfill: sim.Relaxed, RelaxFactor: 0.15},
		{Policy: sim.Fair, Backfill: sim.AdaptiveRelaxed, RelaxFactor: 0.15},
	}
	profiles := []*synth.Profile{synth.VerifyHPC(days), synth.VerifyVC(days)}
	for _, p := range profiles {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 7)
			for name, cfg := range faultScenarios() {
				for _, opt := range combos {
					opt.Faults = cfg
					if err := Verify(tr, opt); err != nil {
						t.Errorf("%s under %s + %s: %v", name, opt.Policy, opt.Backfill, err)
					}
				}
			}
		})
	}
}

// TestFaultRunHasFaults guards the sweep against vacuity: the scenarios must
// actually interrupt attempts and drain capacity on the verification
// workload, otherwise the differential gate proves nothing.
func TestFaultRunHasFaults(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.2), 7)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
		Faults: faultScenarios()["mixed"]}
	var met obs.Metrics
	opt.Metrics = &met
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted == 0 || res.Requeued == 0 {
		t.Errorf("mixed scenario interrupted %d / requeued %d attempts; sweep is vacuous",
			res.Interrupted, res.Requeued)
	}
	if met.CapacityFaults == 0 {
		t.Error("mixed scenario applied no capacity faults; sweep is vacuous")
	}
	if res.WastedCoreSeconds <= 0 || res.GoodputCoreSeconds <= 0 {
		t.Errorf("goodput %v / wasted %v core-seconds; want both positive",
			res.GoodputCoreSeconds, res.WastedCoreSeconds)
	}
}

// streamHasFinding reports whether the report contains a finding whose
// detail mentions the given fragment.
func streamHasFinding(rep *AuditReport, fragment string) bool {
	for _, f := range rep.Findings {
		if strings.Contains(f.Detail, fragment) {
			return true
		}
	}
	return false
}

// TestAuditStreamRejectsDrainedCapacityRun pins the degraded-capacity
// conservation invariant: a stream in which a job starts on cores an outage
// drained (here: the restore event was dropped) must be rejected.
func TestAuditStreamRejectsDrainedCapacityRun(t *testing.T) {
	// 8 cores; job 0 runs before the outage, job 1 after it. The outage
	// window [200, 250) drains 4 idle cores and touches no job.
	tr := trace.New(trace.System{Name: "tamper", TotalCores: 8})
	tr.Jobs = []trace.Job{
		{ID: 0, Submit: 0, Run: 100, Walltime: 120, Procs: 6, VC: -1},
		{ID: 1, Submit: 300, Run: 100, Walltime: 120, Procs: 6, VC: -1},
	}
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
		Faults: &fault.Config{
			Outages:  []fault.Outage{{Part: 0, Start: 200, Duration: 50, Cores: 4}},
			Recovery: fault.RecoveryRequeue, RetryCap: 1,
		}}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("clean fault stream must audit clean: %v", err)
	}

	tampered := make([]obs.Event, 0, len(rec.Events))
	for _, e := range rec.Events {
		if e.Kind == obs.FaultNodeUp {
			continue // the outage never heals: job 1 now starts on drained cores
		}
		tampered = append(tampered, e)
	}
	rep := AuditStream(tr, opt, tampered, res)
	if rep.OK() {
		t.Fatal("auditor accepted a job running on drained capacity")
	}
	if !streamHasFinding(rep, "drained capacity") {
		t.Errorf("want a drained-capacity finding, got %v", rep.Findings)
	}
}

// TestAuditStreamRejectsRequeuePastCap pins the retry-cap invariant: a
// stream showing more requeues than the cap allows must be rejected.
func TestAuditStreamRejectsRequeuePastCap(t *testing.T) {
	// One job, killed 10s into its first attempt, requeued once (cap 1).
	tr := trace.New(trace.System{Name: "tamper", TotalCores: 4})
	tr.Jobs = []trace.Job{{ID: 0, Submit: 0, Run: 100, Walltime: 120, Procs: 4, VC: -1}}
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
		Faults: &fault.Config{
			Kills:    []fault.JobKill{{Job: 0, After: 10}},
			Recovery: fault.RecoveryRequeue, RetryCap: 1,
		}}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("clean fault stream must audit clean: %v", err)
	}
	if res.Requeued != 1 {
		t.Fatalf("scenario requeued %d times, want 1", res.Requeued)
	}

	// Splice a second interrupt/requeue/start cycle over the cap into the
	// stream: ... start@10, interrupt@20, requeue@20, start@20, complete@120.
	var tampered []obs.Event
	for _, e := range rec.Events {
		if e.Kind == obs.JobComplete {
			tampered = append(tampered,
				obs.Event{Kind: obs.FaultJobInterrupt, Time: 20, Job: 0, Part: 0, Procs: 4, Detail: 10},
				obs.Event{Kind: obs.FaultJobRequeue, Time: 20, Job: 0, Part: 0, Procs: 4, Detail: 100},
				obs.Event{Kind: obs.JobStart, Time: 20, Job: 0, Part: 0, Procs: 4, Detail: 20},
				obs.Event{Kind: obs.JobComplete, Time: 120, Job: 0, Part: 0, Procs: 4, Detail: e.Detail},
			)
			continue
		}
		tampered = append(tampered, e)
	}
	rep := AuditStream(tr, opt, tampered, res)
	if rep.OK() {
		t.Fatal("auditor accepted a requeue past the retry cap")
	}
	if !streamHasFinding(rep, "past the retry cap") {
		t.Errorf("want a retry-cap finding, got %v", rep.Findings)
	}
}

// TestAuditStreamRejectsFaultAccountingTamper: the goodput/wasted split
// replayed from the stream must match the result bit-exactly.
func TestAuditStreamRejectsFaultAccountingTamper(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.1), 3)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
		Faults: faultScenarios()["interrupt-checkpoint"]}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("clean fault stream must audit clean: %v", err)
	}
	c := *res
	c.WastedCoreSeconds *= 1.001
	rep := AuditStream(tr, opt, rec.Events, &c)
	if rep.OK() {
		t.Fatal("auditor accepted tampered wasted core-seconds")
	}
}

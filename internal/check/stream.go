package check

import (
	"math"

	"crosssched/internal/fault"
	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// AuditStream verifies a recorded decision stream against the input trace,
// the options, and the run's final result — an independent consumer for
// the observability layer: instead of trusting the simulator's aggregate
// counters, it re-derives the auditor's invariants from the per-decision
// events alone.
//
// The stream is expected in emission order (as collected by obs.Recorder
// or re-read from a JSONL trace). Because every event carries the exact
// float values the simulator computed, all checks here are exact — no
// epsilon reconstruction like the schedule auditor needs:
//
//   - lifecycle: every job has exactly one submit event and, absent faults,
//     exactly one start and complete event, in that stream order, with
//     causally ordered times and the exact wait the result reports;
//   - conservation: replaying starts (+procs), completions (-procs), and
//     capacity faults (drain/restore) in stream order never exceeds any
//     partition's capacity, never runs a job on drained capacity, and ends
//     with zero cores in use and zero cores drained;
//   - promises: reservation events are unique per job, match
//     Result.PromisedStart, and precede the job's start; violation
//     events fire only at the job's first start and reproduce the
//     result's count and exact summed delay;
//   - backfills: backfill events follow their job's start at the same
//     instant, come from queue positions >= 1, and match the result's
//     count; relaxation events appear only under relaxed kinds, name a
//     promised head, and never relax below the promise;
//   - faults (when opt.Faults is enabled): interrupts carry the exact
//     elapsed time of the attempt they end, every requeue immediately
//     follows its interrupt with the exact remaining work (after
//     checkpoint banking), no job is requeued past the retry cap and none
//     fails terminally with retries remaining, terminally failed jobs are
//     marked trace.Failed in the result, the fault counters match, the
//     goodput/wasted split replayed in stream order reproduces the
//     result's core-second totals bit-exactly, and goodput + wasted
//     equals the stream's busy integral (to float tolerance).
func AuditStream(tr *trace.Trace, opt sim.Options, events []obs.Event, res *sim.Result) *AuditReport {
	r := &AuditReport{}
	if len(res.Jobs) != len(tr.Jobs) || len(res.PromisedStart) != len(tr.Jobs) {
		r.addf("shape", "result covers %d jobs, trace has %d", len(res.Jobs), len(tr.Jobs))
		return r
	}
	r.JobsChecked = len(tr.Jobs)
	r.EventsChecked = len(events)

	caps := PartitionCapacities(tr.System)
	byID := make(map[int]int, len(tr.Jobs)) // trace job ID -> index
	for i := range tr.Jobs {
		byID[tr.Jobs[i].ID] = i
	}

	faulty := opt.Faults.Enabled()
	const (
		unseen = iota
		submitted
		started
		interrupted
		completed
	)
	phase := make([]uint8, len(tr.Jobs))
	startTime := make([]float64, len(tr.Jobs))
	nstarts := make([]int, len(tr.Jobs))
	reserved := make([]bool, len(tr.Jobs))
	// remaining is each job's current-attempt occupancy: the walltime-capped
	// runtime, reduced by checkpoint banking on every requeue. Completion
	// instants are checked against it exactly.
	remaining := make([]float64, len(tr.Jobs))
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		remaining[i] = j.Run
		if j.Walltime > 0 && remaining[i] > j.Walltime {
			remaining[i] = j.Walltime
		}
	}
	requeued := make([]int, len(tr.Jobs))
	credit := make([]float64, len(tr.Jobs))
	dead := make([]bool, len(tr.Jobs))
	inUse := make([]int, len(caps))
	drained := make([]int, len(caps))
	totalInUse := 0
	var lastSubmit, lastStart, lastComplete float64 // per-kind monotonicity
	violations, backfills := 0, 0
	delay := 0.0
	interrupts, requeues, failedN := 0, 0, 0
	var goodput, wasted float64
	var busyIntegral, lastT float64
	relaxedKind := opt.Backfill == sim.Relaxed || opt.Backfill == sim.AdaptiveRelaxed
	// Conservative backfilling with an arrival-ordered queue keeps every
	// promise: each queued job holds a reservation planned on walltime ends,
	// completions only return capacity early, and under FCFS no later
	// arrival can be ordered ahead of a promised job — so replanning only
	// moves reservations earlier. A first start behind the promise therefore
	// means some job jumped a reservation it had no right to jump, and a
	// promise-violation event must never appear at all. The guard excludes
	// the regimes where late starts are legitimate: priority policies and
	// custom scores (a better-scored arrival replans ahead of the promise),
	// fault injection (drains shrink planned capacity), and advisory
	// predictions (jobs overrun their planned ends).
	consReserved := opt.Backfill == sim.Conservative && !faulty &&
		opt.Policy == sim.FCFS && opt.CustomScore == nil && opt.WalltimePredictor == nil

	// canRetry mirrors the simulator's retry gate for the configured
	// recovery semantics.
	canRetry := func(i int) bool {
		return faulty && opt.Faults.Recovery != fault.RecoveryNone &&
			requeued[i] < opt.Faults.RetryCap
	}
	// An interrupt's outcome is decided by the event that follows it: an
	// immediate FaultJobRequeue continues the job, anything else means the
	// interrupt was terminal. pendingInt carries the undecided interrupt;
	// resolveTerminal applies the terminal accounting in the simulator's
	// exact operation order (so the goodput/wasted comparison stays
	// bit-exact).
	pendingInt := -1
	pendingElapsed := 0.0
	resolveTerminal := func() {
		i := pendingInt
		pendingInt = -1
		pf := float64(tr.Jobs[i].Procs)
		wasted += pendingElapsed * pf
		if c := credit[i]; c > 0 {
			goodput -= c * pf
			wasted += c * pf
		}
		dead[i] = true
		failedN++
		if canRetry(i) {
			r.addf("fault", "job %d failed terminally with retries remaining (%d of %d used)",
				tr.Jobs[i].ID, requeued[i], opt.Faults.RetryCap)
		}
	}

	for ei, e := range events {
		if pendingInt >= 0 && !(e.Kind == obs.FaultJobRequeue && byID[e.Job] == pendingInt) {
			resolveTerminal()
		}
		// The busy integral steps on the globally (weakly) monotone event
		// clock; a regression is caught by the per-kind checks below.
		if e.Time > lastT {
			busyIntegral += float64(totalInUse) * (e.Time - lastT)
			lastT = e.Time
		}
		if e.Part < 0 || e.Part >= len(caps) {
			r.addf("stream", "event %d (%s) names partition %d of %d", ei, e.Kind, e.Part, len(caps))
			return r
		}
		// Capacity-fault events concern a partition, not a job (Job == -1).
		switch e.Kind {
		case obs.FaultNodeDown, obs.FaultNodeUp:
			if !faulty {
				r.addf("fault", "event %d (%s) in a run with fault injection disabled", ei, e.Kind)
				return r
			}
			if e.Job != -1 {
				r.addf("fault", "event %d (%s) names job %d, want -1", ei, e.Kind, e.Job)
			}
			if e.Procs <= 0 {
				r.addf("fault", "event %d (%s) drains %d cores", ei, e.Kind, e.Procs)
			}
			if e.Kind == obs.FaultNodeDown {
				drained[e.Part] += e.Procs
				if inUse[e.Part]+drained[e.Part] > caps[e.Part] {
					r.addf("conservation",
						"partition %d holds %d cores with %d drained against capacity %d at t=%v",
						e.Part, inUse[e.Part], drained[e.Part], caps[e.Part], e.Time)
					return r
				}
				if e.Detail <= e.Time {
					r.addf("fault", "outage at t=%v promises repair at %v (not after)", e.Time, e.Detail)
				}
			} else {
				drained[e.Part] -= e.Procs
				if drained[e.Part] < 0 {
					r.addf("conservation", "partition %d restores cores it never drained at t=%v", e.Part, e.Time)
					return r
				}
				if e.Detail > e.Time {
					r.addf("fault", "restore at t=%v cites outage start %v in the future", e.Time, e.Detail)
				}
			}
			continue
		}
		i, ok := byID[e.Job]
		if !ok {
			r.addf("stream", "event %d (%s) names unknown job %d", ei, e.Kind, e.Job)
			return r
		}
		j := &tr.Jobs[i]
		if e.Procs != j.Procs {
			r.addf("stream", "event %d (%s): job %d procs %d, trace says %d", ei, e.Kind, e.Job, e.Procs, j.Procs)
		}
		switch e.Kind {
		case obs.JobSubmit:
			if phase[i] != unseen {
				r.addf("lifecycle", "job %d submitted twice", e.Job)
			}
			phase[i] = submitted
			if e.Time != j.Submit {
				r.addf("lifecycle", "job %d submit event at t=%v, trace says %v", e.Job, e.Time, j.Submit)
			}
			if e.Time < lastSubmit {
				r.addf("lifecycle", "submit times regress at job %d (%v after %v)", e.Job, e.Time, lastSubmit)
			}
			lastSubmit = e.Time
		case obs.JobStart:
			if phase[i] != submitted {
				r.addf("lifecycle", "job %d started in phase %d (want submitted)", e.Job, phase[i])
			}
			phase[i] = started
			startTime[i] = e.Time
			nstarts[i]++
			if nstarts[i] == 1 {
				if e.Detail != res.Jobs[i].Wait {
					r.addf("lifecycle", "job %d start wait %v, result says %v", e.Job, e.Detail, res.Jobs[i].Wait)
				}
				if consReserved && res.PromisedStart[i] >= 0 && e.Time > res.PromisedStart[i]+1e-9 {
					r.addf("reservation",
						"job %d started at %v behind its conservative reservation at %v — something jumped it",
						e.Job, e.Time, res.PromisedStart[i])
				}
			} else if e.Detail != e.Time-j.Submit {
				r.addf("lifecycle", "job %d restart wait %v, want t-submit = %v", e.Job, e.Detail, e.Time-j.Submit)
			}
			if e.Time < j.Submit {
				r.addf("lifecycle", "job %d started at %v before submission %v", e.Job, e.Time, j.Submit)
			}
			if e.Time < lastStart {
				r.addf("lifecycle", "start times regress at job %d (%v after %v)", e.Job, e.Time, lastStart)
			}
			lastStart = e.Time
			inUse[e.Part] += e.Procs
			totalInUse += e.Procs
			if inUse[e.Part] > caps[e.Part] {
				r.addf("conservation", "partition %d holds %d/%d cores at t=%v (job %d)",
					e.Part, inUse[e.Part], caps[e.Part], e.Time, e.Job)
				return r
			}
			if inUse[e.Part]+drained[e.Part] > caps[e.Part] {
				r.addf("conservation",
					"job %d runs on drained capacity: partition %d holds %d with %d drained against %d at t=%v",
					e.Job, e.Part, inUse[e.Part], drained[e.Part], caps[e.Part], e.Time)
				return r
			}
		case obs.JobComplete:
			if phase[i] != started {
				r.addf("lifecycle", "job %d completed in phase %d (want started)", e.Job, phase[i])
				return r
			}
			phase[i] = completed
			// The effective occupancy is the remaining work of the current
			// attempt (the walltime-capped runtime, minus any banked
			// checkpoint credit); the completion instant must equal the
			// attempt's start plus exactly that.
			if want := startTime[i] + remaining[i]; e.Time != want {
				r.addf("lifecycle", "job %d completed at %v, want start+run = %v", e.Job, e.Time, want)
			}
			if e.Time < lastComplete {
				r.addf("lifecycle", "completion times regress at job %d (%v after %v)", e.Job, e.Time, lastComplete)
			}
			lastComplete = e.Time
			inUse[e.Part] -= e.Procs
			totalInUse -= e.Procs
			if inUse[e.Part] < 0 {
				r.addf("conservation", "partition %d frees cores it never held (job %d)", e.Part, e.Job)
				return r
			}
			goodput += (e.Time - startTime[i]) * float64(e.Procs)
		case obs.FaultJobInterrupt:
			if !faulty {
				r.addf("fault", "event %d (%s) in a run with fault injection disabled", ei, e.Kind)
				return r
			}
			if phase[i] != started {
				r.addf("lifecycle", "job %d interrupted in phase %d (want started)", e.Job, phase[i])
				return r
			}
			phase[i] = interrupted
			if e.Detail != e.Time-startTime[i] {
				r.addf("fault", "job %d interrupt elapsed %v, want t-start = %v",
					e.Job, e.Detail, e.Time-startTime[i])
			}
			inUse[e.Part] -= e.Procs
			totalInUse -= e.Procs
			if inUse[e.Part] < 0 {
				r.addf("conservation", "partition %d frees cores it never held (job %d)", e.Part, e.Job)
				return r
			}
			interrupts++
			pendingInt = i
			pendingElapsed = e.Detail
		case obs.FaultJobRequeue:
			if pendingInt != i || phase[i] != interrupted {
				r.addf("fault", "job %d requeued without an immediately preceding interrupt", e.Job)
				return r
			}
			pendingInt = -1
			if !canRetry(i) {
				r.addf("fault", "job %d requeued past the retry cap (%d retries, recovery %s)",
					e.Job, requeued[i], opt.Faults.Recovery)
			}
			pf := float64(e.Procs)
			if opt.Faults.Recovery == fault.RecoveryCheckpoint {
				ckpt := opt.Faults.CheckpointInterval
				banked := math.Floor(pendingElapsed/ckpt) * ckpt
				if banked > pendingElapsed {
					banked = pendingElapsed
				}
				goodput += banked * pf
				wasted += (pendingElapsed - banked) * pf
				credit[i] += banked
				remaining[i] -= banked
			} else {
				wasted += pendingElapsed * pf
			}
			requeued[i]++
			requeues++
			phase[i] = submitted
			if e.Detail != remaining[i] {
				r.addf("fault", "job %d requeued with remaining work %v, want %v", e.Job, e.Detail, remaining[i])
			}
		case obs.ReservationMade:
			if reserved[i] {
				r.addf("promise", "job %d reserved twice", e.Job)
			}
			reserved[i] = true
			if phase[i] != submitted {
				r.addf("promise", "job %d reserved in phase %d (want submitted)", e.Job, phase[i])
			}
			if opt.Backfill == sim.NoBackfill {
				r.addf("promise", "job %d reserved with backfilling off", e.Job)
			}
			if e.Detail != res.PromisedStart[i] {
				r.addf("promise", "job %d reservation event promises %v, result says %v",
					e.Job, e.Detail, res.PromisedStart[i])
			}
			if e.Detail < e.Time {
				r.addf("promise", "job %d promised start %v before the decision at %v", e.Job, e.Detail, e.Time)
			}
		case obs.ReservationRelaxed:
			if !relaxedKind {
				r.addf("promise", "relaxation event under %s backfilling", opt.Backfill)
			}
			if !reserved[i] {
				r.addf("promise", "job %d relaxed without a reservation", e.Job)
			}
			if e.Detail < res.PromisedStart[i] {
				r.addf("promise", "job %d relaxed deadline %v below its promise %v",
					e.Job, e.Detail, res.PromisedStart[i])
			}
		case obs.PromiseViolation:
			violations++
			delay += e.Detail
			if consReserved {
				r.addf("reservation",
					"job %d violated its promise by %v under conservative backfilling, which must keep every reservation",
					e.Job, e.Detail)
			}
			if !reserved[i] {
				r.addf("promise", "job %d violated a promise it never received", e.Job)
			}
			if phase[i] != started || e.Time != startTime[i] || nstarts[i] != 1 {
				r.addf("promise", "job %d violation not at its first start instant", e.Job)
			}
			if want := startTime[i] - res.PromisedStart[i]; e.Detail != want {
				r.addf("promise", "job %d violation delay %v, want start-promise = %v", e.Job, e.Detail, want)
			}
		case obs.Backfill:
			backfills++
			if phase[i] != started || e.Time != startTime[i] {
				r.addf("stream", "job %d backfill event not at its start instant", e.Job)
			}
			if e.Detail < 1 {
				r.addf("stream", "job %d backfilled from queue position %v", e.Job, e.Detail)
			}
		default:
			r.addf("stream", "event %d has unknown kind %d", ei, e.Kind)
			return r
		}
		if len(r.Findings) > 20 {
			r.addf("stream", "stopping after 20 findings")
			return r
		}
	}
	if pendingInt >= 0 {
		resolveTerminal()
	}

	for i := range tr.Jobs {
		if phase[i] != completed && !(phase[i] == interrupted && dead[i]) {
			r.addf("lifecycle", "job %d stream incomplete (phase %d)", tr.Jobs[i].ID, phase[i])
		}
		if dead[i] && res.Jobs[i].Status != trace.Failed {
			r.addf("fault", "job %d failed terminally but the result marks it %v",
				tr.Jobs[i].ID, res.Jobs[i].Status)
		}
		if reserved[i] != (res.PromisedStart[i] >= 0) {
			r.addf("promise", "job %d reservation events disagree with PromisedStart %v",
				tr.Jobs[i].ID, res.PromisedStart[i])
		}
	}
	for p, n := range inUse {
		if n != 0 {
			r.addf("conservation", "partition %d ends the stream with %d cores leaked", p, n)
		}
		if drained[p] != 0 {
			r.addf("conservation", "partition %d ends the stream with %d cores still drained", p, drained[p])
		}
	}
	if violations != res.Violations {
		r.addf("promise", "%d violation events, result reports %d", violations, res.Violations)
	}
	if delay != res.ViolationDelay {
		r.addf("promise", "violation delay from events %v, result reports %v", delay, res.ViolationDelay)
	}
	if backfills != res.Backfilled {
		r.addf("stream", "%d backfill events, result reports %d", backfills, res.Backfilled)
	}
	if interrupts != res.Interrupted {
		r.addf("fault", "%d interrupt events, result reports %d", interrupts, res.Interrupted)
	}
	if requeues != res.Requeued {
		r.addf("fault", "%d requeue events, result reports %d", requeues, res.Requeued)
	}
	if failedN != res.FaultFailed {
		r.addf("fault", "%d terminal failures in the stream, result reports %d", failedN, res.FaultFailed)
	}
	if faulty {
		// The stream replays the simulator's accounting in its exact
		// operation order, so the split is compared bit-exactly; the busy
		// integral is re-segmented by event times, so it gets float slack.
		if goodput != res.GoodputCoreSeconds {
			r.addf("fault", "goodput from events %v core-seconds, result reports %v",
				goodput, res.GoodputCoreSeconds)
		}
		if wasted != res.WastedCoreSeconds {
			r.addf("fault", "wasted from events %v core-seconds, result reports %v",
				wasted, res.WastedCoreSeconds)
		}
		if !floatEq(goodput+wasted, busyIntegral) {
			r.addf("fault", "goodput %v + wasted %v != busy integral %v core-seconds",
				goodput, wasted, busyIntegral)
		}
	}
	return r
}

package check

import (
	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// AuditStream verifies a recorded decision stream against the input trace,
// the options, and the run's final result — an independent consumer for
// the observability layer: instead of trusting the simulator's aggregate
// counters, it re-derives the auditor's invariants from the per-decision
// events alone.
//
// The stream is expected in emission order (as collected by obs.Recorder
// or re-read from a JSONL trace). Because every event carries the exact
// float values the simulator computed, all checks here are exact — no
// epsilon reconstruction like the schedule auditor needs:
//
//   - lifecycle: every job has exactly one submit, start, and complete
//     event, in that stream order, with causally ordered times and the
//     exact wait the result reports;
//   - conservation: replaying starts (+procs) and completions (-procs) in
//     stream order never exceeds any partition's capacity and ends at
//     zero cores in use;
//   - promises: reservation events are unique per job, match
//     Result.PromisedStart, and precede the job's start; violation
//     events reproduce the result's count and exact summed delay;
//   - backfills: backfill events follow their job's start at the same
//     instant, come from queue positions >= 1, and match the result's
//     count; relaxation events appear only under relaxed kinds, name a
//     promised head, and never relax below the promise.
func AuditStream(tr *trace.Trace, opt sim.Options, events []obs.Event, res *sim.Result) *AuditReport {
	r := &AuditReport{}
	if len(res.Jobs) != len(tr.Jobs) || len(res.PromisedStart) != len(tr.Jobs) {
		r.addf("shape", "result covers %d jobs, trace has %d", len(res.Jobs), len(tr.Jobs))
		return r
	}
	r.JobsChecked = len(tr.Jobs)
	r.EventsChecked = len(events)

	caps := PartitionCapacities(tr.System)
	byID := make(map[int]int, len(tr.Jobs)) // trace job ID -> index
	for i := range tr.Jobs {
		byID[tr.Jobs[i].ID] = i
	}

	const (
		unseen = iota
		submitted
		started
		completed
	)
	phase := make([]uint8, len(tr.Jobs))
	startTime := make([]float64, len(tr.Jobs))
	reserved := make([]bool, len(tr.Jobs))
	inUse := make([]int, len(caps))
	var lastSubmit, lastStart, lastComplete float64 // per-kind monotonicity
	violations, backfills := 0, 0
	delay := 0.0
	relaxedKind := opt.Backfill == sim.Relaxed || opt.Backfill == sim.AdaptiveRelaxed

	for ei, e := range events {
		i, ok := byID[e.Job]
		if !ok {
			r.addf("stream", "event %d (%s) names unknown job %d", ei, e.Kind, e.Job)
			return r
		}
		j := &tr.Jobs[i]
		if e.Part < 0 || e.Part >= len(caps) {
			r.addf("stream", "event %d (%s) names partition %d of %d", ei, e.Kind, e.Part, len(caps))
			return r
		}
		if e.Procs != j.Procs {
			r.addf("stream", "event %d (%s): job %d procs %d, trace says %d", ei, e.Kind, e.Job, e.Procs, j.Procs)
		}
		switch e.Kind {
		case obs.JobSubmit:
			if phase[i] != unseen {
				r.addf("lifecycle", "job %d submitted twice", e.Job)
			}
			phase[i] = submitted
			if e.Time != j.Submit {
				r.addf("lifecycle", "job %d submit event at t=%v, trace says %v", e.Job, e.Time, j.Submit)
			}
			if e.Time < lastSubmit {
				r.addf("lifecycle", "submit times regress at job %d (%v after %v)", e.Job, e.Time, lastSubmit)
			}
			lastSubmit = e.Time
		case obs.JobStart:
			if phase[i] != submitted {
				r.addf("lifecycle", "job %d started in phase %d (want submitted)", e.Job, phase[i])
			}
			phase[i] = started
			startTime[i] = e.Time
			if e.Detail != res.Jobs[i].Wait {
				r.addf("lifecycle", "job %d start wait %v, result says %v", e.Job, e.Detail, res.Jobs[i].Wait)
			}
			if e.Time < j.Submit {
				r.addf("lifecycle", "job %d started at %v before submission %v", e.Job, e.Time, j.Submit)
			}
			if e.Time < lastStart {
				r.addf("lifecycle", "start times regress at job %d (%v after %v)", e.Job, e.Time, lastStart)
			}
			lastStart = e.Time
			inUse[e.Part] += e.Procs
			if inUse[e.Part] > caps[e.Part] {
				r.addf("conservation", "partition %d holds %d/%d cores at t=%v (job %d)",
					e.Part, inUse[e.Part], caps[e.Part], e.Time, e.Job)
				return r
			}
		case obs.JobComplete:
			if phase[i] != started {
				r.addf("lifecycle", "job %d completed in phase %d (want started)", e.Job, phase[i])
				return r
			}
			phase[i] = completed
			// The effective occupancy is the runtime clipped at the
			// walltime kill limit; the completion instant must equal the
			// start plus exactly that.
			effRun := j.Run
			if j.Walltime > 0 && effRun > j.Walltime {
				effRun = j.Walltime
			}
			if want := startTime[i] + effRun; e.Time != want {
				r.addf("lifecycle", "job %d completed at %v, want start+run = %v", e.Job, e.Time, want)
			}
			if e.Time < lastComplete {
				r.addf("lifecycle", "completion times regress at job %d (%v after %v)", e.Job, e.Time, lastComplete)
			}
			lastComplete = e.Time
			inUse[e.Part] -= e.Procs
			if inUse[e.Part] < 0 {
				r.addf("conservation", "partition %d frees cores it never held (job %d)", e.Part, e.Job)
				return r
			}
		case obs.ReservationMade:
			if reserved[i] {
				r.addf("promise", "job %d reserved twice", e.Job)
			}
			reserved[i] = true
			if phase[i] != submitted {
				r.addf("promise", "job %d reserved in phase %d (want submitted)", e.Job, phase[i])
			}
			if opt.Backfill == sim.NoBackfill {
				r.addf("promise", "job %d reserved with backfilling off", e.Job)
			}
			if e.Detail != res.PromisedStart[i] {
				r.addf("promise", "job %d reservation event promises %v, result says %v",
					e.Job, e.Detail, res.PromisedStart[i])
			}
			if e.Detail < e.Time {
				r.addf("promise", "job %d promised start %v before the decision at %v", e.Job, e.Detail, e.Time)
			}
		case obs.ReservationRelaxed:
			if !relaxedKind {
				r.addf("promise", "relaxation event under %s backfilling", opt.Backfill)
			}
			if !reserved[i] {
				r.addf("promise", "job %d relaxed without a reservation", e.Job)
			}
			if e.Detail < res.PromisedStart[i] {
				r.addf("promise", "job %d relaxed deadline %v below its promise %v",
					e.Job, e.Detail, res.PromisedStart[i])
			}
		case obs.PromiseViolation:
			violations++
			delay += e.Detail
			if !reserved[i] {
				r.addf("promise", "job %d violated a promise it never received", e.Job)
			}
			if phase[i] != started || e.Time != startTime[i] {
				r.addf("promise", "job %d violation not at its start instant", e.Job)
			}
			if want := startTime[i] - res.PromisedStart[i]; e.Detail != want {
				r.addf("promise", "job %d violation delay %v, want start-promise = %v", e.Job, e.Detail, want)
			}
		case obs.Backfill:
			backfills++
			if phase[i] != started || e.Time != startTime[i] {
				r.addf("stream", "job %d backfill event not at its start instant", e.Job)
			}
			if e.Detail < 1 {
				r.addf("stream", "job %d backfilled from queue position %v", e.Job, e.Detail)
			}
		default:
			r.addf("stream", "event %d has unknown kind %d", ei, e.Kind)
			return r
		}
		if len(r.Findings) > 20 {
			r.addf("stream", "stopping after 20 findings")
			return r
		}
	}

	for i := range tr.Jobs {
		if phase[i] != completed {
			r.addf("lifecycle", "job %d stream incomplete (phase %d)", tr.Jobs[i].ID, phase[i])
		}
		if reserved[i] != (res.PromisedStart[i] >= 0) {
			r.addf("promise", "job %d reservation events disagree with PromisedStart %v",
				tr.Jobs[i].ID, res.PromisedStart[i])
		}
	}
	for p, n := range inUse {
		if n != 0 {
			r.addf("conservation", "partition %d ends the stream with %d cores leaked", p, n)
		}
	}
	if violations != res.Violations {
		r.addf("promise", "%d violation events, result reports %d", violations, res.Violations)
	}
	if delay != res.ViolationDelay {
		r.addf("promise", "violation delay from events %v, result reports %v", delay, res.ViolationDelay)
	}
	if backfills != res.Backfilled {
		r.addf("stream", "%d backfill events, result reports %d", backfills, res.Backfilled)
	}
	return r
}

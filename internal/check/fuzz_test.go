package check

import (
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// decodeFuzzInput maps arbitrary bytes onto a small workload plus simulator
// options. The first six bytes pick the configuration, then each six-byte
// chunk becomes one job. Returns nil when the input is too short to carry
// at least one job.
func decodeFuzzInput(data []byte) (*trace.Trace, sim.Options) {
	const header = 6
	const chunk = 6
	if len(data) < header+chunk {
		return nil, sim.Options{}
	}
	parts := 1 + int(data[2])%3
	coresPerPart := 2 + int(data[3])%14
	opt := sim.Options{
		Policy:      sim.Policies[int(data[0])%len(sim.Policies)],
		Backfill:    sim.Backfills[int(data[1])%len(sim.Backfills)],
		RelaxFactor: float64(data[4]%50) / 100,
	}
	if data[5]&1 != 0 {
		opt.UseActualRuntime = true
	}
	if data[5]&2 != 0 {
		opt.MaxQueueLen = 8
	}

	tr := trace.New(trace.System{
		Name:            "fuzz",
		TotalCores:      parts * coresPerPart,
		VirtualClusters: parts,
	})
	submit := 0.0
	body := data[header:]
	for off := 0; off+chunk <= len(body) && len(tr.Jobs) < 40; off += chunk {
		c := body[off : off+chunk]
		submit += float64(c[0]) * 3.7
		run := float64(c[1]) * float64(c[2]) * 0.7
		walltime := 0.0
		if c[5] != 0 {
			walltime = run*(0.5+float64(c[5])/64) + 1
		}
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID:       len(tr.Jobs),
			User:     int(c[3]) % 5,
			Submit:   submit,
			Wait:     -1,
			Run:      run,
			Walltime: walltime,
			Procs:    1 + int(c[3])%coresPerPart,
			VC:       int(c[4])%(parts+1) - 1,
		})
	}
	tr.SortBySubmit()
	return tr, opt
}

// FuzzSimulator decodes arbitrary bytes into a workload + configuration and
// runs the full differential gate: the optimized simulator must match the
// O(n²) oracle exactly and pass the schedule auditor, whatever the input.
func FuzzSimulator(f *testing.F) {
	// Seeds covering each backfill kind, a partitioned system, zero-runtime
	// jobs, and walltime kills.
	f.Add([]byte{0, 1, 0, 6, 10, 0, 3, 9, 8, 2, 0, 40, 1, 4, 4, 3, 0, 0, 0, 20, 20, 1, 1, 9})
	f.Add([]byte{1, 3, 2, 4, 20, 1, 5, 12, 12, 7, 2, 30, 0, 0, 0, 4, 1, 0, 9, 30, 3, 2, 0, 64})
	f.Add([]byte{8, 4, 1, 8, 10, 2, 2, 16, 16, 1, 0, 16, 2, 8, 8, 5, 0, 32, 1, 1, 1, 0, 0, 0})
	f.Add([]byte{3, 2, 0, 2, 0, 3, 0, 255, 255, 13, 1, 1, 0, 0, 200, 2, 0, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, opt := decodeFuzzInput(data)
		if tr == nil {
			return
		}
		if err := Verify(tr, opt); err != nil {
			t.Fatalf("%s + %s on %d jobs: %v", opt.Policy, opt.Backfill, tr.Len(), err)
		}
	})
}

package check

import (
	"bytes"
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// TestStreamDifferentialSweep: the windowed streaming simulator must be
// float-for-float identical to the materialized one — per-row waits and
// promises, every aggregate, the queue timeline, and the decision-event
// stream — for every policy x backfill combination on each verification
// workload. Streaming traces can be longer than oracle traces (the
// comparison is O(n log n), not O(n²)), so the window slides through
// multiple compactions here.
func TestStreamDifferentialSweep(t *testing.T) {
	days := 1.0
	if testing.Short() {
		days = 0.25
	}
	for _, p := range synth.VerifyProfiles(days) {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 7)
			t.Logf("%s: %d jobs", p.Sys.Name, tr.Len())
			for _, opt := range Combos(0.15) {
				if err := VerifyStream(tr, opt); err != nil {
					t.Errorf("%s + %s: %v", opt.Policy, opt.Backfill, err)
				}
			}
		})
	}
}

// TestStreamDifferentialOptionVariants covers the option axes the sweep
// holds fixed, mirroring TestDifferentialOptionVariants.
func TestStreamDifferentialOptionVariants(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.5), 11)
	variants := []struct {
		name string
		opt  sim.Options
	}{
		{"oracle-runtime", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, UseActualRuntime: true}},
		{"predictor", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
			WalltimePredictor: func(j trace.Job) float64 { return j.Run*1.2 + 60 }}},
		{"custom-score", sim.Options{Backfill: sim.EASY,
			CustomScore: func(reqTime float64, procs int, submit, now float64) float64 {
				return reqTime * float64(procs)
			}}},
		{"adaptive-fixed-maxq", sim.Options{Policy: sim.SJF, Backfill: sim.AdaptiveRelaxed,
			RelaxFactor: 0.2, MaxQueueLen: 12}},
		{"fair-short-halflife", sim.Options{Policy: sim.Fair, Backfill: sim.Relaxed,
			FairshareHalfLife: 3600}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			if err := VerifyStream(tr, v.opt); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStreamFromSWFMatchesMaterialized closes the full pipeline loop: a
// trace serialized to SWF, streamed back through trace.SWFStream into
// sim.RunStream, must match materializing the same bytes with ReadSWF and
// running sim.Run.
func TestStreamFromSWFMatchesMaterialized(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyBurst(0.5), 3)
	var buf bytes.Buffer
	if err := trace.WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	mat, err := trace.ReadSWF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{Policy: sim.SJF, Backfill: sim.EASY}
	want, err := sim.Run(mat, opt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSWFStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	got, err := sim.RunStream(src, opt, func(r sim.StreamRow) error {
		if r.Job.Wait != want.Jobs[i].Wait {
			t.Errorf("row %d wait %v want %v", i, r.Job.Wait, want.Jobs[i].Wait)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want.Jobs) {
		t.Fatalf("retired %d rows want %d", i, len(want.Jobs))
	}
	if got.AvgWait != want.AvgWait || got.AvgBsld != want.AvgBsld || got.Makespan != want.Makespan {
		t.Fatalf("aggregates differ: %+v vs %+v", got, want)
	}
}

package check

import (
	"math"
	"sort"
)

// availability is the oracle's naive free-cores-over-time model. The base
// step function is rebuilt from scratch from the running set on every query
// site, and conservative reservations are kept as a plain list subtracted at
// evaluation time — nothing is maintained incrementally.
//
// The window predicate ("procs cores stay free throughout [t, t+dur)") is
// the same spec internal/sim/profile.go implements, so both sides pick
// identical start times; only the representation differs.
type availability struct {
	baseTimes []float64 // ascending breakpoints; baseTimes[0] == now
	baseFree  []int     // free cores from baseTimes[i] until the next breakpoint
	resv      []reservation
}

// reservation blocks procs cores during [start, end) while planning
// conservative backfilling.
type reservation struct {
	start, end float64
	procs      int
}

// plannedEnd is one running job's planning-horizon completion.
type plannedEnd struct {
	end   float64
	procs int
}

// availability builds the partition's free-core step function at o.now from
// the planned (estimate-based) ends of its running jobs.
func (o *oracle) availability(p int) *availability {
	ends := make([]plannedEnd, 0, len(o.running[p]))
	for _, ji := range o.running[p] {
		j := &o.jobs[ji]
		ends = append(ends, plannedEnd{end: j.plannedEnd(), procs: j.procs})
	}
	return newAvailability(o.now, o.free[p], ends)
}

// newAvailability folds raw (end, procs) pairs into the naive step function.
// It is the reference construction the incremental-profile property tests
// compare sim.AvailSet against.
func newAvailability(now float64, freeNow int, ends []plannedEnd) *availability {
	sorted := append([]plannedEnd(nil), ends...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].end < sorted[b].end })

	a := &availability{baseTimes: []float64{now}, baseFree: []int{freeNow}}
	cur := freeNow
	for _, e := range sorted {
		t := e.end
		if t < now {
			t = now // overdue planned end: cores free from now on
		}
		cur += e.procs
		last := len(a.baseTimes) - 1
		if t == a.baseTimes[last] {
			a.baseFree[last] = cur
		} else {
			a.baseTimes = append(a.baseTimes, t)
			a.baseFree = append(a.baseFree, cur)
		}
	}
	return a
}

// points returns the ascending, deduplicated union of base breakpoints and
// reservation edges.
func (a *availability) points() []float64 {
	pts := append([]float64(nil), a.baseTimes...)
	for _, r := range a.resv {
		pts = append(pts, r.start, r.end)
	}
	sort.Float64s(pts)
	dedup := pts[:1]
	for _, t := range pts[1:] {
		if t != dedup[len(dedup)-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// freeAt evaluates the step function at time t (t >= baseTimes[0]):
// base free cores minus any reservation active at t.
func (a *availability) freeAt(t float64) int {
	i := sort.SearchFloat64s(a.baseTimes, t)
	if i >= len(a.baseTimes) || a.baseTimes[i] != t {
		i--
	}
	if i < 0 {
		i = 0
	}
	free := a.baseFree[i]
	for _, r := range a.resv {
		if r.start <= t && t < r.end {
			free -= r.procs
		}
	}
	return free
}

// window reports whether procs cores stay free throughout [t, t+dur), and
// the minimum free count over the examined segments.
func (a *availability) window(t, dur float64, procs int) (bool, int) {
	pts := a.points()
	end := t + dur
	minFree := math.MaxInt64
	// start at the segment containing t; that segment is always examined,
	// even for an empty window (dur == 0): a zero-duration request still
	// needs procs cores free at its start instant, and the answer must
	// depend on the step function, not on whether t happens to coincide
	// with a stored breakpoint. internal/sim/profile.go applies the same
	// rule, so both sides keep picking identical start times.
	i := sort.SearchFloat64s(pts, t)
	if i >= len(pts) || pts[i] != t {
		if i > 0 {
			i--
		}
	}
	i0 := i
	for ; i < len(pts); i++ {
		if i > i0 && pts[i] >= end {
			break
		}
		f := a.freeAt(pts[i])
		if f < minFree {
			minFree = f
		}
		if f < procs {
			return false, minFree
		}
	}
	if minFree == math.MaxInt64 {
		minFree = a.freeAt(pts[len(pts)-1])
	}
	return true, minFree
}

// earliest returns the first time >= from at which procs cores stay free
// for dur seconds, plus the minimum free count over that window.
func (a *availability) earliest(from float64, procs int, dur float64) (float64, int) {
	if ok, mf := a.window(from, dur, procs); ok {
		return from, mf
	}
	pts := a.points()
	for _, c := range pts {
		if c <= from {
			continue
		}
		if ok, mf := a.window(c, dur, procs); ok {
			return c, mf
		}
	}
	// Past the last breakpoint everything running has ended.
	last := pts[len(pts)-1]
	if last < from {
		last = from
	}
	return last, a.freeAt(pts[len(pts)-1])
}

// reserve blocks procs cores during [t, t+dur) for later queries.
func (a *availability) reserve(t, dur float64, procs int) {
	a.resv = append(a.resv, reservation{start: t, end: t + dur, procs: procs})
}

package check

import (
	"strings"
	"testing"

	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
)

// TestStreamAuditSweep: the emitted decision stream must satisfy the
// stream auditor for every policy x backfill combination on the
// verification workloads — the trace's independent consumer.
func TestStreamAuditSweep(t *testing.T) {
	days := 0.25
	if testing.Short() {
		days = 0.1
	}
	for _, p := range synth.VerifyProfiles(days) {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 17)
			for _, opt := range Combos(0.15) {
				rec := &obs.Recorder{}
				opt.Observer = rec
				res, err := sim.Run(tr, opt)
				if err != nil {
					t.Fatalf("%s + %s: %v", opt.Policy, opt.Backfill, err)
				}
				if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
					t.Errorf("%s + %s: %v", opt.Policy, opt.Backfill, err)
				}
			}
		})
	}
}

// TestStreamAuditDetectsTampering corrupts a genuine stream in targeted
// ways and checks the auditor notices each one.
func TestStreamAuditDetectsTampering(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.2), 9)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.Relaxed, RelaxFactor: 0.15}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditStream(tr, opt, rec.Events, res).Err(); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	find := func(k obs.Kind) int {
		for i, e := range rec.Events {
			if e.Kind == k {
				return i
			}
		}
		t.Fatalf("stream has no %s event", k)
		return -1
	}

	cases := []struct {
		name      string
		invariant string
		corrupt   func(evs []obs.Event) []obs.Event
	}{
		// Dropping a completion either trips conservation (a later start
		// exceeds capacity on the never-freed cores) or, on an idle tail,
		// the end-of-stream leak check — both are "conservation".
		{"dropped completion", "conservation", func(evs []obs.Event) []obs.Event {
			i := find(obs.JobComplete)
			return append(append([]obs.Event(nil), evs[:i]...), evs[i+1:]...)
		}},
		{"duplicated start", "lifecycle", func(evs []obs.Event) []obs.Event {
			i := find(obs.JobStart)
			out := append([]obs.Event(nil), evs...)
			return append(out[:i+1], append([]obs.Event{evs[i]}, out[i+1:]...)...)
		}},
		{"shifted start wait", "lifecycle", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			i := find(obs.JobStart)
			out[i].Detail += 1
			return out
		}},
		{"forged promise", "promise", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			i := find(obs.ReservationMade)
			out[i].Detail += 10
			return out
		}},
		{"inflated procs", "stream", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			i := find(obs.JobStart)
			out[i].Procs++
			return out
		}},
		{"phantom violation", "promise", func(evs []obs.Event) []obs.Event {
			out := append([]obs.Event(nil), evs...)
			i := find(obs.JobStart)
			return append(out[:i+1], append([]obs.Event{{
				Kind: obs.PromiseViolation, Time: out[i].Time, Job: out[i].Job,
				Part: out[i].Part, Procs: out[i].Procs, Detail: 5,
			}}, out[i+1:]...)...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := AuditStream(tr, opt, tc.corrupt(rec.Events), res)
			if rep.OK() {
				t.Fatalf("%s went undetected", tc.name)
			}
			found := false
			for _, f := range rep.Findings {
				if f.Invariant == tc.invariant {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected a %q finding, got: %v", tc.invariant, rep.Err())
			}
		})
	}
}

// TestStreamAuditJSONLRoundTrip: the stream survives JSONL serialization
// byte-exactly, so an -events-out file can be audited offline.
func TestStreamAuditJSONLRoundTrip(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyVC(0.15), 13)
	opt := sim.Options{Policy: sim.SJF, Backfill: sim.EASY}
	rec := &obs.Recorder{}
	opt.Observer = rec
	res, err := sim.Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	w := obs.NewJSONLWriter(&buf)
	for _, e := range rec.Events {
		w.Observe(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rec.Events) {
		t.Fatalf("decoded %d events, recorded %d", len(decoded), len(rec.Events))
	}
	if err := AuditStream(tr, opt, decoded, res).Err(); err != nil {
		t.Fatalf("round-tripped stream rejected: %v", err)
	}
}

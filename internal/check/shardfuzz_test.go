package check

import (
	"testing"
)

// FuzzShardedSim peels one byte for the shard count (1..8, deliberately
// exceeding the partition counts decodeFuzzInput can produce so the
// effective-shard clamp is fuzzed too) and feeds the rest through the same
// decoder as FuzzSimulator, then runs the sharded differential gate: the
// partition-sharded materialized and streaming paths must reproduce the
// single-shard reference float for float, or observably fall back.
func FuzzShardedSim(f *testing.F) {
	// FuzzSimulator's seeds, each prefixed with a shard byte: forced
	// single shard, shard count == partitions, and shards > partitions.
	f.Add(append([]byte{0}, []byte{0, 1, 0, 6, 10, 0, 3, 9, 8, 2, 0, 40, 1, 4, 4, 3, 0, 0, 0, 20, 20, 1, 1, 9}...))
	f.Add(append([]byte{2}, []byte{1, 3, 2, 4, 20, 1, 5, 12, 12, 7, 2, 30, 0, 0, 0, 4, 1, 0, 9, 30, 3, 2, 0, 64}...))
	f.Add(append([]byte{7}, []byte{8, 4, 1, 8, 10, 2, 2, 16, 16, 1, 0, 16, 2, 8, 8, 5, 0, 32, 1, 1, 1, 0, 0, 0}...))
	f.Add(append([]byte{3}, []byte{3, 2, 0, 2, 0, 3, 0, 255, 255, 13, 1, 1, 0, 0, 200, 2, 0, 5}...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		shards := 1 + int(data[0])%8
		tr, opt := decodeFuzzInput(data[1:])
		if tr == nil {
			return
		}
		d, err := DiffSharded(tr, opt, shards)
		if err != nil {
			t.Fatalf("%s + %s × %d shards on %d jobs: %v",
				opt.Policy, opt.Backfill, shards, tr.Len(), err)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("%s + %s × %d shards on %d jobs: %v",
				opt.Policy, opt.Backfill, shards, tr.Len(), err)
		}
		if d.Shards != d.StreamShards {
			t.Fatalf("materialized ran %d shards, streaming %d", d.Shards, d.StreamShards)
		}
	})
}

package check

import (
	"fmt"
	"math"
	"sort"

	"crosssched/internal/fault"
	"crosssched/internal/trace"
)

// ofault is the oracle's fault-injection state: the naive mirror of
// internal/sim's simFault. Because every random draw is a pure function of
// the fault.Config (counter-based hash streams, never a shared RNG), the
// oracle reproduces the optimized simulator's fault runs exactly by calling
// the same Compile/InterruptCut with the same arguments and applying the
// same float arithmetic — elapsed = t - start, checkpoint banking in
// multiples of the interval, victims chosen most-recently-started-first.
type ofault struct {
	cfg   *fault.Config
	sched *fault.Schedule
	next  int // next un-applied capacity event

	attempts      []int     // completed (interrupted) attempts per job
	everStarted   []bool    // job has started at least once
	credit        []float64 // banked checkpoint seconds per job
	dead          []bool    // terminally failed by a fault
	willInterrupt []bool    // current attempt ends in a drawn interrupt

	drained []int // cores actually taken, per compiled outage ID
	down    []int // currently drained cores, per partition

	goodput float64
	wasted  float64

	interrupts int
	requeues   int
	failed     int
}

// setupFaults compiles the run's fault schedule exactly as sim.setupFaults
// does: same capacities, same default horizon (the trace's submit span).
func (o *oracle) setupFaults(tr *trace.Trace, cfg *fault.Config) error {
	horizon := 0.0
	if n := len(tr.Jobs); n > 0 {
		horizon = tr.Jobs[n-1].Submit
	}
	sched, err := cfg.Compile(o.caps, horizon)
	if err != nil {
		return err
	}
	n := len(tr.Jobs)
	o.flt = &ofault{
		cfg:           cfg,
		sched:         sched,
		attempts:      make([]int, n),
		everStarted:   make([]bool, n),
		credit:        make([]float64, n),
		dead:          make([]bool, n),
		willInterrupt: make([]bool, n),
		drained:       make([]int, sched.Outages),
		down:          make([]int, len(o.caps)),
	}
	return nil
}

// canRetry reports whether job ji may be requeued after an interruption.
func (f *ofault) canRetry(ji int) bool {
	return f.cfg.Recovery != fault.RecoveryNone && f.attempts[ji] < f.cfg.RetryCap
}

// applyCapacityFaults applies every compiled capacity event due at or
// before t: drains interrupt enough running jobs to free the cores being
// taken, restores return exactly what the paired drain took.
func (o *oracle) applyCapacityFaults(t float64, touched []bool) error {
	f := o.flt
	for f.next < len(f.sched.Events) && f.sched.Events[f.next].Time <= t {
		ev := f.sched.Events[f.next]
		f.next++
		p := ev.Part
		if ev.Down {
			// Clamp to the capacity still up (overlapping outages); the
			// paired restore brings back the clamped amount.
			n := ev.Cores
			if up := o.caps[p] - f.down[p]; n > up {
				n = up
			}
			f.drained[ev.ID] = n
			if n == 0 {
				continue
			}
			if need := n - o.free[p]; need > 0 {
				o.interruptVictims(p, need, t, touched)
			}
			if o.free[p] < n {
				return fmt.Errorf("check: oracle drain of %d cores exceeds %d free in partition %d",
					n, o.free[p], p)
			}
			o.advance(t)
			o.free[p] -= n
			f.down[p] += n
			touched[p] = true
		} else {
			n := f.drained[ev.ID]
			if n == 0 {
				continue
			}
			f.drained[ev.ID] = 0
			o.advance(t)
			o.free[p] += n
			f.down[p] -= n
			touched[p] = true
		}
	}
	return nil
}

// interruptVictims interrupts running jobs in partition p until at least
// need cores are free, ahead of a capacity drain. Victim order mirrors the
// simulator: most recently started first, higher job index first on ties.
func (o *oracle) interruptVictims(p, need int, t float64, touched []bool) {
	vic := append([]int(nil), o.running[p]...)
	sort.Slice(vic, func(a, b int) bool {
		ja, jb := vic[a], vic[b]
		sa, sb := o.jobs[ja].start, o.jobs[jb].start
		if sa != sb {
			return sa > sb
		}
		return ja > jb
	})
	freed, k := 0, 0
	for k < len(vic) && freed < need {
		freed += o.jobs[vic[k]].procs
		k++
	}
	vic = vic[:k]
	for _, ji := range vic {
		kept := o.running[p][:0]
		for _, rj := range o.running[p] {
			if rj != ji {
				kept = append(kept, rj)
			}
		}
		o.running[p] = kept
		o.advance(t)
		o.free[p] += o.jobs[ji].procs
		if t > o.makespan {
			o.makespan = t
		}
		touched[p] = true
		o.flt.willInterrupt[ji] = false // the outage ends the attempt, not the drawn cut
		o.faultInterrupted(ji, t)
	}
}

// faultInterrupted handles the end of an interrupted attempt: classify its
// occupancy as wasted/goodput, then requeue the job or fail it terminally.
// The caller has already released the attempt's cores and removed it from
// the running set. The float arithmetic matches sim.faultInterrupted
// operation for operation.
func (o *oracle) faultInterrupted(ji int, t float64) {
	f := o.flt
	j := &o.jobs[ji]
	elapsed := t - j.start
	pf := float64(j.procs)
	f.interrupts++
	if !f.canRetry(ji) {
		f.wasted += elapsed * pf
		if c := f.credit[ji]; c > 0 {
			f.goodput -= c * pf
			f.wasted += c * pf
		}
		f.dead[ji] = true
		f.failed++
		return
	}
	f.attempts[ji]++
	if f.cfg.Recovery == fault.RecoveryCheckpoint {
		banked := math.Floor(elapsed/f.cfg.CheckpointInterval) * f.cfg.CheckpointInterval
		if banked > elapsed {
			banked = elapsed
		}
		f.goodput += banked * pf
		f.wasted += (elapsed - banked) * pf
		f.credit[ji] += banked
		j.run -= banked // the next attempt resumes from the last checkpoint
	} else {
		f.wasted += elapsed * pf // restart from zero
	}
	f.requeues++
	j.queued = true
	o.queue[j.part] = append(o.queue[j.part], ji)
}

package check

import (
	"bytes"
	"reflect"
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// TestSimulatorDeterminism is the regression test for the map-iteration
// nondeterminism that used to live in the simulator's event loop: partition
// scheduling order ran in map order, which was observable through the Fair
// policy's shared usage accounts on partitioned systems. Two identical runs
// must now produce byte-identical output traces.
func TestSimulatorDeterminism(t *testing.T) {
	// Partitioned workload + Fair policy is exactly the configuration where
	// cross-partition scheduling order is observable.
	tr := verifyTrace(t, synth.VerifyVC(0.2), 9)
	opt := sim.Options{Policy: sim.Fair, Backfill: sim.AdaptiveRelaxed, RelaxFactor: 0.2}

	serialize := func() ([]byte, *sim.Result) {
		res, err := sim.Run(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		out := trace.New(tr.System)
		out.Jobs = res.Jobs
		var buf bytes.Buffer
		if err := trace.WriteSWF(&buf, out); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}

	first, firstRes := serialize()
	for run := 1; run < 4; run++ {
		again, againRes := serialize()
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d produced a different output trace (%d vs %d bytes differ)",
				run, len(first), len(again))
		}
		if !reflect.DeepEqual(firstRes, againRes) {
			t.Fatalf("run %d produced a different Result", run)
		}
	}
}

// TestGeneratorDeterminism pins the other half of reproducibility: the
// verification workload generator itself must be a pure function of its
// seed.
func TestGeneratorDeterminism(t *testing.T) {
	for _, p := range []*synth.Profile{synth.VerifyHPC(0.2), synth.VerifyVC(0.2), synth.VerifyBurst(0.2)} {
		a, err := p.Generate(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Generate(42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", p.Sys.Name)
		}
	}
}

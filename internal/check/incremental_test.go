package check

import (
	"math/rand"
	"testing"

	"crosssched/internal/sim"
)

// The incremental-profile invariant introduced with the simulator's fast
// path: a sim.AvailSet maintained by Add/Remove must, at every step,
// materialize exactly the profile a from-scratch rebuild produces
// (sim.ReferenceSnapshot == the old per-pass newProfile reconstruction),
// and planning on top of it (earliest starts, conservative reservations)
// must agree with this package's naive availability model.

// refMultiset tracks the live (end, procs) pairs the AvailSet should hold.
type refMultiset struct {
	ends []sim.JobEnd
}

func (m *refMultiset) add(end float64, procs int) {
	m.ends = append(m.ends, sim.JobEnd{End: end, Procs: procs})
}

// removeRandom retracts one live entry and returns it.
func (m *refMultiset) removeRandom(rng *rand.Rand) sim.JobEnd {
	i := rng.Intn(len(m.ends))
	e := m.ends[i]
	m.ends[i] = m.ends[len(m.ends)-1]
	m.ends = m.ends[:len(m.ends)-1]
	return e
}

// snapshotsEqual compares an incremental snapshot against the reference.
func snapshotsEqual(t *testing.T, a *sim.AvailSet, ends []sim.JobEnd, now float64, freeNow int, step string) {
	t.Helper()
	gotT, gotF := a.Snapshot(now, freeNow)
	wantT, wantF := sim.ReferenceSnapshot(now, freeNow, ends)
	if len(gotT) != len(wantT) {
		t.Fatalf("%s: %d breakpoints incremental vs %d rebuilt", step, len(gotT), len(wantT))
	}
	for i := range gotT {
		if gotT[i] != wantT[i] || gotF[i] != wantF[i] {
			t.Fatalf("%s: breakpoint %d = (%v, %d) incremental vs (%v, %d) rebuilt",
				step, i, gotT[i], gotF[i], wantT[i], wantF[i])
		}
	}
}

// TestIncrementalProfileMatchesRebuild drives a randomized start/release
// sequence through an AvailSet and asserts after every single operation that
// the incrementally-maintained profile is identical to a fresh rebuild —
// the exact per-pass reconstruction the simulator used to perform.
func TestIncrementalProfileMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 20; trial++ {
		var set sim.AvailSet
		var ref refMultiset
		now := float64(rng.Intn(1000))
		// Coarse end values force frequent exact collisions, exercising the
		// aggregation paths (Procs summing, entry removal at zero).
		endAt := func() float64 { return now + float64(rng.Intn(20)) - 2 }
		for op := 0; op < 200; op++ {
			if len(ref.ends) == 0 || rng.Intn(3) > 0 {
				end, procs := endAt(), 1+rng.Intn(16)
				set.Add(end, procs)
				ref.add(end, procs)
			} else {
				e := ref.removeRandom(rng)
				set.Remove(e.End, e.Procs)
			}
			// now also advances between scheduling passes; check a few
			// vantage points including times past some pending ends.
			for _, at := range []float64{now, now + 5, now + 25} {
				snapshotsEqual(t, &set, ref.ends, at, 4+rng.Intn(60), "op")
			}
		}
	}
}

// TestPlannerMatchesNaiveAvailability cross-checks the fast planner (the
// profile machinery the simulator's backfill planners run on) against this
// package's deliberately naive availability model: same free counts at all
// probe times, same earliest-start decisions, through randomized
// reservation sequences.
func TestPlannerMatchesNaiveAvailability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		now := float64(rng.Intn(100))
		capacity := 8 + rng.Intn(120)
		var set sim.AvailSet
		var ends []plannedEnd
		used := 0
		for used < capacity && rng.Intn(5) > 0 {
			procs := 1 + rng.Intn(capacity-used)
			end := now + float64(rng.Intn(50)) - 5
			set.Add(end, procs)
			ends = append(ends, plannedEnd{end: end, procs: procs})
			used += procs
		}
		free := capacity - used

		fast := set.NewPlanner(now, free)
		naive := newAvailability(now, free, ends)

		// Interleave earliest-start queries with conservative reservations,
		// mirroring conservativePass's plan-then-reserve loop.
		for q := 0; q < 12; q++ {
			procs := 1 + rng.Intn(capacity)
			dur := float64(1 + rng.Intn(40))
			gotSt, gotMf := fast.EarliestStart(now, procs, dur)
			wantSt, wantMf := naive.earliest(now, procs, dur)
			if gotSt != wantSt || gotMf != wantMf {
				t.Fatalf("trial %d query %d (procs=%d dur=%v): planner (%v, %d) vs naive (%v, %d)",
					trial, q, procs, dur, gotSt, gotMf, wantSt, wantMf)
			}
			if procs <= capacity {
				fast.Reserve(gotSt, dur, procs)
				naive.reserve(gotSt, dur, procs)
			}
			// Free counts must agree everywhere, including at and between
			// the naive model's breakpoints.
			for _, p := range naive.points() {
				for _, at := range []float64{p, p + 0.5} {
					if at < now {
						continue
					}
					if g, w := fast.FreeAt(at), naive.freeAt(at); g != w {
						t.Fatalf("trial %d query %d: freeAt(%v) = %d vs naive %d", trial, q, at, g, w)
					}
				}
			}
		}
	}
}

// FuzzIncrementalProfile feeds arbitrary operation tapes to the AvailSet and
// asserts the rebuild invariant after every operation, then checks one
// planning query against the naive model. Seeds cover aggregation (equal
// ends), overdue ends (before now), and full-capacity sets.
func FuzzIncrementalProfile(f *testing.F) {
	f.Add([]byte{10, 4, 10, 4, 10, 8, 255, 1, 3, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 200, 200, 9, 9})
	f.Add([]byte{50, 16, 40, 8, 30, 4, 20, 2, 10, 1})
	f.Add([]byte{1, 255, 2, 254, 3, 253})

	f.Fuzz(func(t *testing.T, data []byte) {
		const now = 64.0
		var set sim.AvailSet
		var live []sim.JobEnd
		for i := 0; i+1 < len(data); i += 2 {
			endByte, procByte := data[i], data[i+1]
			if procByte%4 == 3 && len(live) > 0 {
				// retract the oldest live entry
				e := live[0]
				live = live[1:]
				set.Remove(e.End, e.Procs)
			} else {
				end := float64(endByte) // may be before, at, or after now
				procs := 1 + int(procByte)%32
				set.Add(end, procs)
				live = append(live, sim.JobEnd{End: end, Procs: procs})
			}
			gotT, gotF := set.Snapshot(now, 7)
			wantT, wantF := sim.ReferenceSnapshot(now, 7, live)
			if len(gotT) != len(wantT) {
				t.Fatalf("op %d: %d breakpoints vs rebuilt %d", i/2, len(gotT), len(wantT))
			}
			for k := range gotT {
				if gotT[k] != wantT[k] || gotF[k] != wantF[k] {
					t.Fatalf("op %d: breakpoint %d = (%v, %d) vs rebuilt (%v, %d)",
						i/2, k, gotT[k], gotF[k], wantT[k], wantF[k])
				}
			}
		}
		// One planning query against the naive reference model.
		ends := make([]plannedEnd, len(live))
		for i, e := range live {
			ends[i] = plannedEnd{end: e.End, procs: e.Procs}
		}
		fast := set.NewPlanner(now, 7)
		naive := newAvailability(now, 7, ends)
		gotSt, gotMf := fast.EarliestStart(now, 5, 17)
		wantSt, wantMf := naive.earliest(now, 5, 17)
		if gotSt != wantSt || gotMf != wantMf {
			t.Fatalf("earliest(5, 17): planner (%v, %d) vs naive (%v, %d)", gotSt, gotMf, wantSt, wantMf)
		}
	})
}

package check

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
)

// TestRunnerReuseMatchesFresh is the identity property behind sim.Runner's
// scratch reuse: a single Runner driven through every policy x backfill
// combination must produce, for each combination, a Result and decision
// stream float-for-float identical to a brand-new Runner's (and to the
// package-level sim.Run, which draws from the shared pool). Any stale state
// leaking across runs — queue buffers, profile caches, scan stamps, fair
// accounts, cluster occupancy — shows up as a diff here.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyHPC(0.2), 17)
	reused := sim.NewRunner()
	for _, opt := range Combos(0.15) {
		opt := opt
		var gotRec, wantRec obs.Recorder

		optGot := opt
		optGot.Observer = &gotRec
		got, err := reused.Run(tr, optGot)
		if err != nil {
			t.Fatalf("%s + %s: reused runner: %v", opt.Policy, opt.Backfill, err)
		}

		optWant := opt
		optWant.Observer = &wantRec
		want, err := sim.NewRunner().Run(tr, optWant)
		if err != nil {
			t.Fatalf("%s + %s: fresh runner: %v", opt.Policy, opt.Backfill, err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s + %s: reused runner Result differs from fresh runner", opt.Policy, opt.Backfill)
		}
		if !reflect.DeepEqual(gotRec.Events, wantRec.Events) {
			t.Errorf("%s + %s: reused runner decision stream differs from fresh runner (%d vs %d events)",
				opt.Policy, opt.Backfill, len(gotRec.Events), len(wantRec.Events))
		}

		// The package-level entry points draw warm Runners from the pool;
		// they must be indistinguishable from a fresh run too.
		pooled, err := sim.Run(tr, opt)
		if err != nil {
			t.Fatalf("%s + %s: pooled run: %v", opt.Policy, opt.Backfill, err)
		}
		if !reflect.DeepEqual(pooled, want) {
			t.Errorf("%s + %s: pooled sim.Run Result differs from fresh runner", opt.Policy, opt.Backfill)
		}
	}
}

// TestRunnerPoolConcurrency hammers the shared runner pool from many
// goroutines at once (run under -race by the CI race job): every concurrent
// sim.Run on the same trace must return the same Result as a sequential
// reference run. This is the exact access pattern of internal/par sweep
// workers.
func TestRunnerPoolConcurrency(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyVC(0.15), 23)
	opt := sim.Options{Policy: sim.SJF, Backfill: sim.Relaxed, RelaxFactor: 0.15}
	want, err := sim.NewRunner().Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const runsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				got, err := sim.Run(tr, opt)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent pooled run diverged from sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// cancelAfter is an observer that cancels a context after n events — a way
// to abandon a run at a precise mid-run point, with scratch state (queues,
// heaps, caches, partially-built profiles) live and dirty.
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Observe(obs.Event) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestRunnerReuseAfterCancel is the poisoned-scratch regression test: a
// Runner abandoned mid-run by context cancellation — at several different
// depths, so different amounts of dirty state are left behind — must
// produce bit-identical results when reused, because the reset happens on
// acquire, not on release.
func TestRunnerReuseAfterCancel(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyBurst(0.2), 31)
	opt := sim.Options{Policy: sim.WFP3, Backfill: sim.AdaptiveRelaxed, RelaxFactor: 0.2}
	want, err := sim.NewRunner().Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}

	r := sim.NewRunner()
	for _, depth := range []int{1, 7, 50, 400} {
		ctx, cancel := context.WithCancel(context.Background())
		co := opt
		co.Observer = &cancelAfter{n: depth, cancel: cancel}
		var met obs.Metrics
		co.Metrics = &met
		if _, err := r.RunContext(ctx, tr, co); err == nil {
			// The trace outlives the cancellation depth comfortably; a nil
			// error would mean the cancel never fired mid-run.
			t.Fatalf("cancel after %d events: run completed instead of aborting", depth)
		}
		if !met.Canceled {
			t.Errorf("cancel after %d events: metrics not marked canceled", depth)
		}
		cancel()

		got, err := r.Run(tr, opt)
		if err != nil {
			t.Fatalf("reuse after cancel at depth %d: %v", depth, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reuse after cancel at depth %d: Result differs from fresh run", depth)
		}
	}
}

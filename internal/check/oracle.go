// Package check independently verifies the optimized scheduling simulator
// in internal/sim. It provides three layers:
//
//   - a reference oracle (Oracle): a deliberately naive O(n²) reimplementation
//     of the scheduling semantics whose correctness is meant to be obvious by
//     inspection — flat slices, a full queue re-sort on every pass, resource
//     availability recomputed from scratch by scanning the running set, no
//     heaps and no incremental profiles;
//   - a schedule auditor (Audit): takes any simulator output and checks hard
//     invariants (resource conservation, causality, walltime kills, promise
//     bounds, recomputable metrics) without re-running the scheduler;
//   - a differential harness (Diff, Verify): runs the optimized simulator and
//     the oracle on the same workload and asserts the schedules match exactly,
//     then audits the optimized output.
//
// The oracle shares only the priority *formulas* with internal/sim (via
// sim.Policy.Score and sim.FairshareState) so that scores are bit-identical;
// every scheduling decision — event sequencing, queue ordering, reservations,
// backfilling, conservative planning — is reimplemented here from the spec.
package check

import (
	"fmt"
	"math"
	"sort"

	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// ojob is the oracle's view of one job: the immutable request plus the
// schedule the oracle assigns to it.
type ojob struct {
	idx     int // index into the trace (== dense job ID order)
	user    int
	submit  float64
	procs   int
	part    int     // partition the job is confined to
	reqTime float64 // planning estimate: walltime, prediction, or runtime
	run     float64 // effective runtime (capped at walltime)

	queued   bool
	started  bool
	start    float64 // start of the current (latest) attempt
	endAt    float64 // when the current attempt ends (completion or interrupt)
	wait     float64 // first-attempt queue wait (what the Result reports)
	promised float64 // first promised start; <0 when never reserved
}

// plannedEnd is the reservation-planning completion (start + estimate),
// distinct from the real completion (start + run).
func (j *ojob) plannedEnd() float64 { return j.start + j.reqTime }

// oracle is the run state: everything is a flat slice scanned in full.
type oracle struct {
	opt  sim.Options
	jobs []ojob
	caps []int // capacity per partition
	free []int // free cores per partition

	queue   [][]int // per-partition waiting-job indices, arrival order
	running [][]int // per-partition running-job indices

	now          float64
	maxQueueSeen int

	// flt is non-nil only when fault injection is enabled; see oracle_fault.go.
	flt *ofault

	fair *sim.FairshareState

	violations     int
	violationDelay float64
	backfilled     int
	started        int
	makespan       float64

	// utilization integral, mirrored from cluster.Cluster.advance
	lastTime        float64
	busyCoreSeconds float64
}

// Oracle schedules tr under opt with the naive reference implementation and
// returns the same Result shape as sim.Run (QueueTimeline is not produced).
// For any deterministic option set, sim.Run and Oracle must agree exactly on
// every job's start time; Diff asserts this.
func Oracle(tr *trace.Trace, opt sim.Options) (*sim.Result, error) {
	// Defaults mirror sim.Run so both sides plan with identical numbers.
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == sim.Relaxed || opt.Backfill == sim.AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	caps := PartitionCapacities(tr.System)
	o := &oracle{
		opt:     opt,
		caps:    caps,
		free:    append([]int(nil), caps...),
		queue:   make([][]int, len(caps)),
		running: make([][]int, len(caps)),
	}
	if opt.Policy == sim.Fair {
		o.fair = sim.NewFairshareState(opt.FairshareHalfLife)
	}
	o.jobs = make([]ojob, len(tr.Jobs))
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		part := Partition(*j, len(caps))
		if j.Procs > caps[part] {
			return nil, fmt.Errorf("check: job %d needs %d cores but partition %d has %d",
				j.ID, j.Procs, part, caps[part])
		}
		reqTime := j.Walltime
		if reqTime <= 0 || opt.UseActualRuntime {
			reqTime = j.Run
		}
		run := j.Run
		if j.Walltime > 0 && run > j.Walltime {
			run = j.Walltime // killed at the walltime limit
		}
		if opt.WalltimePredictor != nil {
			if pred := opt.WalltimePredictor(*j); pred > 0 {
				reqTime = pred // advisory; the job is not killed at pred
			}
		}
		o.jobs[i] = ojob{
			idx: i, user: j.User, submit: j.Submit, procs: j.Procs,
			part: part, reqTime: reqTime, run: run, promised: -1,
		}
	}
	if opt.Faults.Enabled() {
		if err := o.setupFaults(tr, opt.Faults); err != nil {
			return nil, err
		}
	}
	if err := o.run(); err != nil {
		return nil, err
	}
	return o.result(tr), nil
}

// run is the event loop: advance to the next arrival, completion, or
// capacity-fault event, release finished jobs, apply due capacity faults,
// enqueue arrivals, then schedule each affected partition in index order —
// the same intra-instant phase order as the optimized simulator.
func (o *oracle) run() error {
	next := 0
	for next < len(o.jobs) || o.anyRunning() ||
		(o.flt != nil && o.flt.next < len(o.flt.sched.Events)) {
		t := o.nextEventTime(next)
		o.now = t

		touched := make([]bool, len(o.caps))
		// Completions first: scan every running job, release those whose
		// attempt ends at t — a natural completion, or a drawn interrupt
		// (willInterrupt) routed to the fault path.
		for p := range o.running {
			kept := o.running[p][:0]
			for _, ji := range o.running[p] {
				j := &o.jobs[ji]
				if j.endAt <= t {
					o.advance(t)
					o.free[p] += j.procs
					if o.free[p] > o.caps[p]-o.downCores(p) {
						return fmt.Errorf("check: oracle released past capacity in partition %d", p)
					}
					touched[p] = true
					if f := o.flt; f != nil {
						if f.willInterrupt[ji] {
							f.willInterrupt[ji] = false
							o.faultInterrupted(ji, j.endAt)
						} else {
							f.goodput += (j.endAt - j.start) * float64(j.procs)
						}
					}
				} else {
					kept = append(kept, ji)
				}
			}
			o.running[p] = kept
		}
		// Capacity faults due at t apply after completions (freed cores
		// reduce the victim count) and before arrivals.
		if o.flt != nil {
			if err := o.applyCapacityFaults(t, touched); err != nil {
				return err
			}
		}
		// Arrivals join the tail of their partition's queue.
		for next < len(o.jobs) && o.jobs[next].submit <= t {
			j := &o.jobs[next]
			j.queued = true
			o.queue[j.part] = append(o.queue[j.part], next)
			touched[j.part] = true
			next++
		}
		if q := o.totalQueued(); q > o.maxQueueSeen {
			o.maxQueueSeen = q
		}
		for p, hit := range touched {
			if hit {
				o.schedule(p)
			}
		}
	}
	if o.started != len(o.jobs) {
		return fmt.Errorf("check: oracle started only %d/%d jobs", o.started, len(o.jobs))
	}
	return nil
}

func (o *oracle) anyRunning() bool {
	for _, r := range o.running {
		if len(r) > 0 {
			return true
		}
	}
	return false
}

// nextEventTime is the earliest of the next arrival, any attempt end, and
// the next capacity-fault event.
func (o *oracle) nextEventTime(next int) float64 {
	t := 0.0
	have := false
	if next < len(o.jobs) {
		t, have = o.jobs[next].submit, true
	}
	for _, rs := range o.running {
		for _, ji := range rs {
			if e := o.jobs[ji].endAt; !have || e < t {
				t, have = e, true
			}
		}
	}
	if o.flt != nil && o.flt.next < len(o.flt.sched.Events) {
		if ft := o.flt.sched.Events[o.flt.next].Time; !have || ft < t {
			t = ft
		}
	}
	return t
}

// downCores is the partition's currently drained core count.
func (o *oracle) downCores(p int) int {
	if o.flt == nil {
		return 0
	}
	return o.flt.down[p]
}

func (o *oracle) totalQueued() int {
	n := 0
	for _, q := range o.queue {
		n += len(q)
	}
	return n
}

// advance integrates busy core-seconds up to now (mirrors cluster.advance).
// Drained cores are neither free nor busy, so they count as lost capacity.
func (o *oracle) advance(now float64) {
	if now > o.lastTime {
		busy := 0
		for p := range o.caps {
			busy += o.caps[p] - o.free[p] - o.downCores(p)
		}
		o.busyCoreSeconds += float64(busy) * (now - o.lastTime)
		o.lastTime = now
	}
}

// score ranks job ji for the queue at time now.
func (o *oracle) score(ji int, now float64) float64 {
	j := &o.jobs[ji]
	switch {
	case o.opt.CustomScore != nil:
		return o.opt.CustomScore(j.reqTime, j.procs, j.submit, now)
	case o.fair != nil:
		return o.fair.Usage(j.user, now)
	default:
		return o.opt.Policy.Score(j.reqTime, j.procs, j.submit, now)
	}
}

// sortQueue orders partition p's queue: score, then submit, then index.
func (o *oracle) sortQueue(p int) {
	now := o.now
	q := o.queue[p]
	scores := make(map[int]float64, len(q))
	for _, ji := range q {
		scores[ji] = o.score(ji, now)
	}
	sort.Slice(q, func(a, b int) bool {
		ja, jb := q[a], q[b]
		if scores[ja] != scores[jb] {
			return scores[ja] < scores[jb]
		}
		if o.jobs[ja].submit != o.jobs[jb].submit {
			return o.jobs[ja].submit < o.jobs[jb].submit
		}
		return ja < jb
	})
}

// start dispatches the job at queue position pos of partition p. Under
// fault injection a job may start several times; the recorded wait, the
// promise-violation accounting, and the unique-start count belong to the
// first attempt only (mirroring the optimized simulator).
func (o *oracle) start(p, pos int) {
	ji := o.queue[p][pos]
	j := &o.jobs[ji]
	o.advance(o.now)
	o.free[p] -= j.procs
	if o.free[p] < 0 {
		panic(fmt.Sprintf("check: oracle overallocated partition %d", p))
	}
	j.queued = false
	first := o.flt == nil || !o.flt.everStarted[ji]
	j.started = true
	j.start = o.now
	if first {
		j.wait = o.now - j.submit
	}
	if first && j.promised >= 0 && o.now > j.promised+1e-9 {
		o.violations++
		o.violationDelay += o.now - j.promised
	}
	if pos > 0 {
		o.backfilled++
	}
	if o.fair != nil {
		o.fair.Charge(j.user, o.now, float64(j.procs)*j.run)
	}
	j.endAt = o.now + j.run
	if f := o.flt; f != nil {
		f.everStarted[ji] = true
		if cut, ok := f.cfg.InterruptCut(ji, f.attempts[ji], j.run); ok {
			j.endAt = o.now + cut
			f.willInterrupt[ji] = true
		}
	}
	o.queue[p] = append(o.queue[p][:pos], o.queue[p][pos+1:]...)
	o.running[p] = append(o.running[p], ji)
	if first {
		o.started++
	}
	if j.endAt > o.makespan {
		o.makespan = j.endAt
	}
}

// schedule runs scheduling passes for partition p until nothing changes.
func (o *oracle) schedule(p int) {
	for {
		if len(o.queue[p]) == 0 {
			return
		}
		o.sortQueue(p)
		head := &o.jobs[o.queue[p][0]]
		if head.procs <= o.free[p] {
			o.start(p, 0)
			continue
		}
		if o.opt.Backfill == sim.NoBackfill {
			return // no reservations, no promises
		}
		// Outage-blocked head: while a capacity fault holds the partition
		// below the head's request, no reservation can be planned for it.
		// Degrade to a pure greedy pass — start any queued job that fits the
		// free cores — until capacity returns (mirrors sim.schedule).
		if o.flt != nil && head.procs > o.caps[p]-o.flt.down[p] {
			if !o.backfillOne(p, math.Inf(1), 0) {
				return
			}
			continue
		}
		// Head is blocked: find the earliest window where it fits, given
		// the planned (estimate-based) ends of the running jobs.
		av := o.availability(p)
		shadow, minFree := av.earliest(o.now, head.procs, head.reqTime)
		if head.promised < 0 {
			head.promised = shadow
		}
		if o.opt.Backfill == sim.Conservative {
			o.conservative(p, av)
			return
		}
		extra := minFree - head.procs
		deadline := head.promised + o.allowance(p, head)
		if shadow > deadline {
			deadline = shadow
		}
		if !o.backfillOne(p, deadline, extra) {
			return
		}
	}
}

// allowance is how far the head may slip past its first promise.
func (o *oracle) allowance(p int, head *ojob) float64 {
	expectedWait := head.promised - head.submit
	if expectedWait < 0 {
		expectedWait = 0
	}
	switch o.opt.Backfill {
	case sim.Relaxed:
		return o.opt.RelaxFactor * expectedWait
	case sim.AdaptiveRelaxed:
		maxQ := o.opt.MaxQueueLen
		if maxQ <= 0 {
			maxQ = o.maxQueueSeen
		}
		if maxQ <= 0 {
			maxQ = 1
		}
		frac := float64(len(o.queue[p])) / float64(maxQ)
		if frac > 1 {
			frac = 1
		}
		return o.opt.RelaxFactor * frac * expectedWait
	default: // EASY
		return 0
	}
}

// backfillOne starts the first queued job (after the head) that fits now
// and either finishes by the deadline or fits in the cores the head's
// reservation leaves spare. Reports whether a job started.
func (o *oracle) backfillOne(p int, deadline float64, extra int) bool {
	for pos := 1; pos < len(o.queue[p]); pos++ {
		c := &o.jobs[o.queue[p][pos]]
		if c.procs > o.free[p] {
			continue
		}
		if o.now+c.reqTime <= deadline+1e-9 || c.procs <= extra {
			o.start(p, pos)
			return true
		}
	}
	return false
}

// conservative plans a reservation for every queued job in priority order
// (each reservation constrains the later ones) and then starts, from the
// back of the queue forward, every job whose planned start is now.
func (o *oracle) conservative(p int, av *availability) {
	type plan struct {
		pos   int
		start float64
	}
	// During a capacity fault, queued jobs larger than the effective
	// capacity cannot be planned at all; they are skipped until the outage
	// ends (the head is never skipped: schedule degrades to a greedy pass
	// before planning when the head itself no longer fits).
	effCap := math.MaxInt
	if o.flt != nil {
		effCap = o.caps[p] - o.flt.down[p]
	}
	plans := make([]plan, 0, len(o.queue[p]))
	for pos, ji := range o.queue[p] {
		j := &o.jobs[ji]
		if j.procs > effCap {
			continue
		}
		st, _ := av.earliest(o.now, j.procs, j.reqTime)
		av.reserve(st, j.reqTime, j.procs)
		plans = append(plans, plan{pos, st})
	}
	for i := len(plans) - 1; i >= 0; i-- {
		j := &o.jobs[o.queue[p][plans[i].pos]]
		if plans[i].start <= o.now+1e-9 && j.procs <= o.free[p] {
			o.start(p, plans[i].pos)
		}
	}
}

// result assembles the metrics exactly as sim.Run does.
func (o *oracle) result(tr *trace.Trace) *sim.Result {
	res := &sim.Result{
		Jobs:           append([]trace.Job(nil), tr.Jobs...),
		Violations:     o.violations,
		ViolationDelay: o.violationDelay,
		Backfilled:     o.backfilled,
		MaxQueueLen:    o.maxQueueSeen,
		Makespan:       o.makespan,
		PromisedStart:  make([]float64, len(o.jobs)),
	}
	if f := o.flt; f != nil {
		res.Interrupted = f.interrupts
		res.Requeued = f.requeues
		res.FaultFailed = f.failed
		res.GoodputCoreSeconds = f.goodput
		res.WastedCoreSeconds = f.wasted
		for i := range res.Jobs {
			if f.dead[i] {
				res.Jobs[i].Status = trace.Failed
			}
		}
	}
	var sumWait, sumBsld float64
	for i := range o.jobs {
		res.PromisedStart[i] = o.jobs[i].promised
		res.Jobs[i].Wait = o.jobs[i].wait
		sumWait += res.Jobs[i].Wait
		sumBsld += res.Jobs[i].BoundedSlowdown(o.opt.BsldTau)
	}
	if n := float64(len(o.jobs)); n > 0 {
		res.AvgWait = sumWait / n
		res.AvgBsld = sumBsld / n
	}
	if o.makespan > 0 {
		o.advance(o.makespan)
		total := 0
		for _, c := range o.caps {
			total += c
		}
		res.Utilization = o.busyCoreSeconds / (float64(total) * o.makespan)
	}
	return res
}

// PartitionCapacities returns the per-partition core capacities of a system:
// TotalCores split evenly over VirtualClusters (remainder to the first
// partitions), or one partition holding everything. This is the partition
// contract internal/sim schedules against.
func PartitionCapacities(sys trace.System) []int {
	n := sys.VirtualClusters
	if n < 1 {
		n = 1
	}
	base := sys.TotalCores / n
	rem := sys.TotalCores % n
	caps := make([]int, n)
	for i := range caps {
		caps[i] = base
		if i < rem {
			caps[i]++
		}
	}
	return caps
}

// Partition maps a job to its partition index: its VC when valid, else a
// hash of the user ID (the contract shared with internal/sim).
func Partition(j trace.Job, parts int) int {
	if parts <= 1 {
		return 0
	}
	if j.VC >= 0 && j.VC < parts {
		return j.VC
	}
	return j.User % parts
}

package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// Finding is one invariant violation discovered by the auditor.
type Finding struct {
	// Invariant is a short stable identifier, e.g. "conservation".
	Invariant string
	// Detail explains where and by how much the invariant broke.
	Detail string
}

func (f Finding) String() string { return f.Invariant + ": " + f.Detail }

// AuditReport collects every finding from one audit pass.
type AuditReport struct {
	Findings []Finding
	// JobsChecked and EventsChecked size the evidence behind a clean pass.
	JobsChecked   int
	EventsChecked int
}

// OK reports whether every invariant held.
func (r *AuditReport) OK() bool { return len(r.Findings) == 0 }

// Err returns nil when the audit passed, else an error naming the first
// findings (up to five).
func (r *AuditReport) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, 0, 5)
	for i, f := range r.Findings {
		if i == 5 {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(r.Findings)-5))
			break
		}
		msgs = append(msgs, f.String())
	}
	return fmt.Errorf("check: audit failed (%d findings): %s", len(r.Findings), strings.Join(msgs, "; "))
}

func (r *AuditReport) addf(invariant, format string, args ...interface{}) {
	r.Findings = append(r.Findings, Finding{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// floatEq compares metrics recomputed in a different summation order than
// the simulator's, so it allows a tiny relative slack.
func floatEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale+1e-9
}

// Audit verifies the hard invariants of a simulation result against its
// input trace, without re-running any scheduler:
//
//   - causality: every job started, never before its submission;
//   - walltime: no job occupies resources past its requested walltime;
//   - conservation: at every start/end event, the cores in use in each
//     partition never exceed that partition's capacity;
//   - promises: the reported violation count/delay match a recomputation
//     from PromisedStart, and under FCFS with trustworthy estimates no job
//     slips past its promise by more than the backfill kind's allowance;
//   - metrics: AvgWait, AvgBsld, Utilization, Makespan, and MaxQueueLen are
//     recomputable from the output schedule to within float tolerance.
//
// opt must be the Options the result was produced with (the promise
// allowance and bsld threshold depend on them).
//
// Audit reconstructs the schedule as one start per job at Submit+Wait with
// occupancy Run — which is only true on fault-free runs. For runs with
// opt.Faults enabled (interrupts, requeues, drained capacity), audit the
// recorded decision stream with AuditStream instead, as Verify does.
func Audit(tr *trace.Trace, opt sim.Options, res *sim.Result) *AuditReport {
	r := &AuditReport{}
	if len(res.Jobs) != len(tr.Jobs) {
		r.addf("shape", "result has %d jobs, trace has %d", len(res.Jobs), len(tr.Jobs))
		return r
	}
	if len(res.PromisedStart) != len(tr.Jobs) {
		r.addf("shape", "PromisedStart has %d entries, want %d", len(res.PromisedStart), len(tr.Jobs))
		return r
	}
	if opt.BsldTau <= 0 {
		opt.BsldTau = 10 // sim.Run's default
	}
	if opt.RelaxFactor == 0 && (opt.Backfill == sim.Relaxed || opt.Backfill == sim.AdaptiveRelaxed) {
		opt.RelaxFactor = 0.10
	}
	r.JobsChecked = len(tr.Jobs)

	caps := PartitionCapacities(tr.System)
	starts := make([]float64, len(res.Jobs))
	effRuns := make([]float64, len(res.Jobs))
	predicted := make([]float64, len(res.Jobs)) // planning estimate per job
	estimatesSound := true                      // every effective run <= its estimate

	for i := range res.Jobs {
		in, out := &tr.Jobs[i], &res.Jobs[i]
		if out.Submit != in.Submit || out.Procs != in.Procs || out.Run != in.Run {
			r.addf("shape", "job %d: output trace altered immutable fields", in.ID)
			continue
		}
		if out.Wait < 0 {
			r.addf("causality", "job %d never started (wait %v)", in.ID, out.Wait)
			continue
		}
		starts[i] = out.Submit + out.Wait
		// Jobs are killed at their walltime limit; beyond it they must not
		// hold resources.
		effRuns[i] = in.Run
		if in.Walltime > 0 && effRuns[i] > in.Walltime {
			effRuns[i] = in.Walltime
		}
		predicted[i] = in.Walltime
		if predicted[i] <= 0 || opt.UseActualRuntime {
			predicted[i] = in.Run
		}
		if opt.WalltimePredictor != nil {
			if pred := opt.WalltimePredictor(*in); pred > 0 {
				predicted[i] = pred
			}
		}
		if effRuns[i] > predicted[i]+1e-9 {
			estimatesSound = false
		}
		p := Partition(*in, len(caps))
		if in.Procs > caps[p] {
			r.addf("capacity", "job %d requests %d cores, partition %d holds %d",
				in.ID, in.Procs, p, caps[p])
		}
	}
	if !r.OK() {
		return r // schedule is structurally broken; later checks would cascade
	}

	r.EventsChecked = auditConservation(r, tr, caps, starts, effRuns)
	auditPromises(r, tr, opt, res, starts, estimatesSound)
	auditMetrics(r, tr, opt, res, starts, effRuns)
	return r
}

// timeEps groups reconstructed event times: starts are rebuilt as
// Submit+Wait while the simulator computed Wait as now-Submit, so two events
// that happened at the same instant can differ by a few ulps after the
// round trip. Genuine event gaps in any workload are far above this.
const timeEps = 1e-7

// auditConservation sweeps every start/end event per partition and checks
// the in-use core count against capacity. Events within timeEps of each
// other count as simultaneous, and releases apply before starts within a
// group, matching the simulator's completions-first event order. Returns
// the number of events swept.
func auditConservation(r *AuditReport, tr *trace.Trace, caps []int, starts, effRuns []float64) int {
	type event struct {
		time  float64
		delta int // +procs at start, -procs at end
		jobID int
	}
	byPart := make([][]event, len(caps))
	for i := range tr.Jobs {
		p := Partition(tr.Jobs[i], len(caps))
		byPart[p] = append(byPart[p],
			event{time: starts[i], delta: tr.Jobs[i].Procs, jobID: tr.Jobs[i].ID},
			event{time: starts[i] + effRuns[i], delta: -tr.Jobs[i].Procs, jobID: tr.Jobs[i].ID})
	}
	events := 0
	for p, evs := range byPart {
		sort.Slice(evs, func(a, b int) bool { return evs[a].time < evs[b].time })
		inUse := 0
		for lo := 0; lo < len(evs); {
			hi := lo
			for hi < len(evs) && evs[hi].time <= evs[lo].time+timeEps {
				hi++
			}
			for k := lo; k < hi; k++ {
				if evs[k].delta < 0 {
					inUse += evs[k].delta
					events++
				}
			}
			for k := lo; k < hi; k++ {
				if evs[k].delta > 0 {
					inUse += evs[k].delta
					events++
					if inUse > caps[p] {
						r.addf("conservation", "partition %d holds %d/%d cores at t=%.3f (job %d)",
							p, inUse, caps[p], evs[k].time, evs[k].jobID)
						return events
					}
				}
			}
			lo = hi
		}
		if inUse != 0 {
			r.addf("conservation", "partition %d ends the sweep with %d cores leaked", p, inUse)
		}
	}
	return events
}

// auditPromises recomputes the violation metrics from PromisedStart and,
// when the run is head-stable (FCFS, no learned score, no predictor, and no
// job outliving its estimate), bounds every job's slip past its promise by
// the backfill kind's allowance.
func auditPromises(r *AuditReport, tr *trace.Trace, opt sim.Options, res *sim.Result, starts []float64, estimatesSound bool) {
	violations := 0
	delay := 0.0
	for i, promised := range res.PromisedStart {
		if promised < 0 {
			continue
		}
		if opt.Backfill == sim.NoBackfill {
			r.addf("promise", "job %d has a promise but backfilling is off", tr.Jobs[i].ID)
		}
		if starts[i] > promised+1e-9 {
			violations++
			delay += starts[i] - promised
		}
	}
	if violations != res.Violations {
		r.addf("promise", "reported %d violations, recomputed %d", res.Violations, violations)
	}
	if !floatEq(delay, res.ViolationDelay) {
		r.addf("promise", "reported violation delay %v, recomputed %v", res.ViolationDelay, delay)
	}

	// Slip bound: only FCFS keeps the blocked head at the head of the queue
	// (any other policy can legally leapfrog a promised job), and only sound
	// estimates keep reservations from receding.
	headStable := opt.Policy == sim.FCFS && opt.CustomScore == nil &&
		opt.WalltimePredictor == nil && estimatesSound
	if !headStable {
		return
	}
	for i, promised := range res.PromisedStart {
		if promised < 0 {
			continue
		}
		allowance := 0.0 // EASY and Conservative promise exact starts
		if opt.Backfill == sim.Relaxed || opt.Backfill == sim.AdaptiveRelaxed {
			expectedWait := promised - tr.Jobs[i].Submit
			if expectedWait < 0 {
				expectedWait = 0
			}
			// The adaptive factor is at most the fixed factor (Eq. 1).
			allowance = opt.RelaxFactor * expectedWait
		}
		if slip := starts[i] - promised; slip > allowance+1e-6 {
			r.addf("allowance", "job %d slipped %.3fs past its promise (allowance %.3fs, backfill %s)",
				tr.Jobs[i].ID, slip, allowance, opt.Backfill)
		}
	}
}

// auditMetrics recomputes every aggregate metric from the output schedule.
func auditMetrics(r *AuditReport, tr *trace.Trace, opt sim.Options, res *sim.Result, starts, effRuns []float64) {
	n := len(tr.Jobs)
	if n == 0 {
		return
	}
	var sumWait, sumBsld, busy, makespan float64
	for i := range res.Jobs {
		sumWait += res.Jobs[i].Wait
		sumBsld += res.Jobs[i].BoundedSlowdown(opt.BsldTau)
		busy += effRuns[i] * float64(tr.Jobs[i].Procs)
		if end := starts[i] + effRuns[i]; end > makespan {
			makespan = end
		}
	}
	if !floatEq(res.Makespan, makespan) {
		r.addf("metrics", "reported makespan %v, recomputed %v", res.Makespan, makespan)
	}
	if !floatEq(res.AvgWait, sumWait/float64(n)) {
		r.addf("metrics", "reported avg wait %v, recomputed %v", res.AvgWait, sumWait/float64(n))
	}
	if !floatEq(res.AvgBsld, sumBsld/float64(n)) {
		r.addf("metrics", "reported avg bsld %v, recomputed %v", res.AvgBsld, sumBsld/float64(n))
	}
	if makespan > 0 {
		util := busy / (float64(tr.System.TotalCores) * makespan)
		if !floatEq(res.Utilization, util) {
			r.addf("metrics", "reported utilization %v, recomputed %v", res.Utilization, util)
		}
	}
	if maxQ := recomputeMaxQueue(tr, starts, effRuns); maxQ != res.MaxQueueLen {
		r.addf("metrics", "reported max queue %d, recomputed %d", res.MaxQueueLen, maxQ)
	}
	if res.Backfilled < 0 || res.Backfilled > n {
		r.addf("metrics", "backfilled count %d outside [0, %d]", res.Backfilled, n)
	}
}

// recomputeMaxQueue reproduces the simulator's max-queue sample: at every
// event time t (a submission or a completion), the queue holds the jobs
// with submit <= t that had not started strictly before t. "Strictly
// before" allows timeEps of slack because completion times are
// reconstructed from Submit+Wait+Run and can sit a few ulps off the
// simulator's event clock.
func recomputeMaxQueue(tr *trace.Trace, starts, effRuns []float64) int {
	points := make([]float64, 0, 2*len(tr.Jobs))
	submits := make([]float64, 0, len(tr.Jobs))
	for i := range tr.Jobs {
		points = append(points, tr.Jobs[i].Submit, starts[i]+effRuns[i])
		submits = append(submits, tr.Jobs[i].Submit)
	}
	sort.Float64s(points)
	sort.Float64s(submits)
	sorted := append([]float64(nil), starts...)
	sort.Float64s(sorted)
	maxQ := 0
	for _, t := range points {
		arrived := sort.Search(len(submits), func(i int) bool { return submits[i] > t })
		begun := sort.SearchFloat64s(sorted, t-timeEps)
		if q := arrived - begun; q > maxQ {
			maxQ = q
		}
	}
	return maxQ
}

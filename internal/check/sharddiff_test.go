package check

import (
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// verifyVCWide is VerifyVC stretched over more partitions than any shard
// count the sweep requests, so shards own multiple partitions each and the
// partition→shard folding (p % nShards) is exercised, not just the 1:1 case.
func verifyVCWide(days float64) *synth.Profile {
	p := synth.VerifyVC(days)
	p.Sys.Name = "VerifyVCWide"
	p.Sys.TotalCores = 112
	p.Sys.VirtualClusters = 7
	return p
}

// TestShardedDifferentialSweep: for every eligible policy x backfill
// combination, the partition-sharded engine — both the materialized path and
// the streaming path — must be float-for-float identical to the single-shard
// run: per-row waits and promises, every aggregate, the queue timeline, and
// the merged decision-event stream. The sweep also pins that eligible
// configurations really shard (no silent fallback) at several shard counts,
// including counts above the partition count (which must clamp).
func TestShardedDifferentialSweep(t *testing.T) {
	days := 0.5
	if testing.Short() {
		days = 0.2
	}
	profiles := []*synth.Profile{synth.VerifyVC(days), verifyVCWide(days)}
	for _, p := range profiles {
		p := p
		t.Run(p.Sys.Name, func(t *testing.T) {
			t.Parallel()
			tr := verifyTrace(t, p, 7)
			t.Logf("%s: %d jobs over %d partitions", p.Sys.Name, tr.Len(), tr.System.VirtualClusters)
			nParts := tr.System.VirtualClusters
			for _, shards := range []int{2, 3, nParts, nParts + 5} {
				for _, opt := range Combos(0.15) {
					if opt.Policy == sim.Fair {
						continue // pinned to fall back in TestShardedFallbackPins
					}
					if opt.Backfill == sim.AdaptiveRelaxed {
						// Eligible only with a fixed queue-length normalizer.
						opt.MaxQueueLen = 12
					}
					d, err := DiffSharded(tr, opt, shards)
					if err != nil {
						t.Fatalf("shards=%d %s + %s: %v", shards, opt.Policy, opt.Backfill, err)
					}
					if err := d.Err(); err != nil {
						t.Errorf("shards=%d %s + %s: %v", shards, opt.Policy, opt.Backfill, err)
					}
					want := int64(shards)
					if shards > nParts {
						want = int64(nParts)
					}
					if d.Shards != want || d.StreamShards != want {
						t.Errorf("shards=%d %s + %s: ran on %d/%d shards, want %d (fallback %q)",
							shards, opt.Policy, opt.Backfill, d.Shards, d.StreamShards, want, d.FallbackReason)
					}
				}
			}
		})
	}
}

// TestShardedOptionVariants covers eligible option axes the sweep holds
// fixed: oracle runtimes and a fixed-normalizer adaptive config under a
// dynamic policy.
func TestShardedOptionVariants(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyVC(0.3), 11)
	variants := []struct {
		name string
		opt  sim.Options
	}{
		{"oracle-runtime", sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, UseActualRuntime: true}},
		{"adaptive-fixed-maxq", sim.Options{Policy: sim.SJF, Backfill: sim.AdaptiveRelaxed,
			RelaxFactor: 0.2, MaxQueueLen: 12}},
		{"conservative-f3", sim.Options{Policy: sim.F3, Backfill: sim.Conservative}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			if err := VerifySharded(tr, v.opt, 3); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestShardedFallbackPins: configurations with cross-partition coupling must
// fall back to the single-shard path — observably, with a reason in the
// metrics — and still produce the exact single-shard result.
func TestShardedFallbackPins(t *testing.T) {
	tr := verifyTrace(t, synth.VerifyVC(0.2), 9)
	single := verifyTrace(t, synth.VerifyHPC(0.2), 9)
	flt, err := fault.ParseSpec("mtbf=20000,mttr=4000,frac=0.2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tr   *trace.Trace
		opt  sim.Options
	}{
		{"fair-share", tr, sim.Options{Policy: sim.Fair, Backfill: sim.EASY}},
		{"faults", tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, Faults: flt}},
		{"adaptive-global-queue", tr, sim.Options{Policy: sim.FCFS, Backfill: sim.AdaptiveRelaxed, RelaxFactor: 0.2}},
		{"custom-score", tr, sim.Options{Backfill: sim.EASY,
			CustomScore: func(reqTime float64, procs int, submit, now float64) float64 {
				return reqTime * float64(procs)
			}}},
		{"walltime-predictor", tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY,
			WalltimePredictor: func(j trace.Job) float64 { return j.Run*1.2 + 60 }}},
		{"single-partition", single, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d, err := DiffSharded(c.tr, c.opt, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Err(); err != nil {
				t.Error(err)
			}
			if d.FallbackReason == "" {
				t.Errorf("expected a fallback reason, got none (ran on %d shards)", d.Shards)
			}
			if d.Shards != 1 || d.StreamShards != 1 {
				t.Errorf("coupled config ran on %d/%d shards, want 1 (reason %q)",
					d.Shards, d.StreamShards, d.FallbackReason)
			}
		})
	}
}

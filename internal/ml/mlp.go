package ml

import (
	"errors"
	"math"

	"crosssched/internal/dist"
)

// MLP is a multilayer perceptron regressor: fully connected layers with
// tanh activations, squared loss on log1p targets, trained with Adam on
// mini-batches. Inputs are standardized internally.
type MLP struct {
	Hidden []int   // hidden layer widths (default [32, 16])
	Epochs int     // training epochs (default 200)
	LR     float64 // Adam learning rate (default 0.01)
	Batch  int     // mini-batch size (default 32)
	Seed   uint64  // weight init / shuffle seed

	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]
	scaler  *Scaler
	yMean   float64
	yStd    float64
	// Adam state
	mW, vW [][][]float64
	mB, vB [][]float64
	step   int
}

// Name implements Model.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Model.
func (m *MLP) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if len(m.Hidden) == 0 {
		m.Hidden = []int{32, 16}
	}
	if m.Epochs <= 0 {
		m.Epochs = 200
	}
	if m.LR <= 0 {
		m.LR = 0.01
	}
	if m.Batch <= 0 {
		m.Batch = 32
	}
	n, d := ds.Len(), ds.Dim()
	if n < 4 {
		return errors.New("ml: mlp needs at least 4 rows")
	}
	m.scaler = FitScaler(ds.X)
	x := m.scaler.TransformAll(ds.X)
	// standardize log targets
	y := make([]float64, n)
	for i, v := range ds.Y {
		if v < 0 {
			v = 0
		}
		y[i] = math.Log1p(v)
	}
	m.yMean = 0
	for _, v := range y {
		m.yMean += v
	}
	m.yMean /= float64(n)
	ss := 0.0
	for _, v := range y {
		ss += (v - m.yMean) * (v - m.yMean)
	}
	m.yStd = math.Sqrt(ss / float64(n))
	if m.yStd < 1e-9 {
		m.yStd = 1
	}
	for i := range y {
		y[i] = (y[i] - m.yMean) / m.yStd
	}

	rng := dist.NewRNG(m.Seed + 12345)
	m.initLayers(d, rng)

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for off := 0; off < n; off += m.Batch {
			end := off + m.Batch
			if end > n {
				end = n
			}
			m.trainBatch(x, y, perm[off:end])
		}
	}
	return nil
}

func (m *MLP) initLayers(inDim int, rng *dist.RNG) {
	sizes := append([]int{inDim}, m.Hidden...)
	sizes = append(sizes, 1)
	L := len(sizes) - 1
	m.weights = make([][][]float64, L)
	m.biases = make([][]float64, L)
	m.mW = make([][][]float64, L)
	m.vW = make([][][]float64, L)
	m.mB = make([][]float64, L)
	m.vB = make([][]float64, L)
	for l := 0; l < L; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in+out)) // Xavier
		m.weights[l] = make([][]float64, out)
		m.mW[l] = make([][]float64, out)
		m.vW[l] = make([][]float64, out)
		for o := 0; o < out; o++ {
			m.weights[l][o] = make([]float64, in)
			m.mW[l][o] = make([]float64, in)
			m.vW[l][o] = make([]float64, in)
			for i := range m.weights[l][o] {
				m.weights[l][o][i] = scale * rng.Normal()
			}
		}
		m.biases[l] = make([]float64, out)
		m.mB[l] = make([]float64, out)
		m.vB[l] = make([]float64, out)
	}
	m.step = 0
}

// forward computes activations per layer; acts[0] is the input.
func (m *MLP) forward(x []float64) [][]float64 {
	L := len(m.weights)
	acts := make([][]float64, L+1)
	acts[0] = x
	for l := 0; l < L; l++ {
		out := make([]float64, len(m.weights[l]))
		for o := range m.weights[l] {
			sum := m.biases[l][o]
			w := m.weights[l][o]
			in := acts[l]
			for i := range w {
				sum += w[i] * in[i]
			}
			if l < L-1 {
				sum = math.Tanh(sum)
			}
			out[o] = sum
		}
		acts[l+1] = out
	}
	return acts
}

// trainBatch accumulates gradients over the batch and applies one Adam step.
func (m *MLP) trainBatch(x [][]float64, y []float64, batch []int) {
	L := len(m.weights)
	gW := make([][][]float64, L)
	gB := make([][]float64, L)
	for l := 0; l < L; l++ {
		gW[l] = make([][]float64, len(m.weights[l]))
		for o := range gW[l] {
			gW[l][o] = make([]float64, len(m.weights[l][o]))
		}
		gB[l] = make([]float64, len(m.biases[l]))
	}

	for _, idx := range batch {
		acts := m.forward(x[idx])
		// delta at output (squared loss, linear output)
		delta := []float64{acts[L][0] - y[idx]}
		for l := L - 1; l >= 0; l-- {
			in := acts[l]
			for o := range m.weights[l] {
				gB[l][o] += delta[o]
				for i := range m.weights[l][o] {
					gW[l][o][i] += delta[o] * in[i]
				}
			}
			if l > 0 {
				// backprop through tanh of layer l-1's output
				newDelta := make([]float64, len(in))
				for i := range in {
					sum := 0.0
					for o := range m.weights[l] {
						sum += m.weights[l][o][i] * delta[o]
					}
					newDelta[i] = sum * (1 - in[i]*in[i])
				}
				delta = newDelta
			}
		}
	}

	m.step++
	inv := 1 / float64(len(batch))
	beta1, beta2, eps := 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for l := 0; l < L; l++ {
		for o := range m.weights[l] {
			for i := range m.weights[l][o] {
				g := gW[l][o][i] * inv
				m.mW[l][o][i] = beta1*m.mW[l][o][i] + (1-beta1)*g
				m.vW[l][o][i] = beta2*m.vW[l][o][i] + (1-beta2)*g*g
				m.weights[l][o][i] -= m.LR * (m.mW[l][o][i] / bc1) /
					(math.Sqrt(m.vW[l][o][i]/bc2) + eps)
			}
			g := gB[l][o] * inv
			m.mB[l][o] = beta1*m.mB[l][o] + (1-beta1)*g
			m.vB[l][o] = beta2*m.vB[l][o] + (1-beta2)*g*g
			m.biases[l][o] -= m.LR * (m.mB[l][o] / bc1) /
				(math.Sqrt(m.vB[l][o]/bc2) + eps)
		}
	}
}

// Predict implements Model.
func (m *MLP) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	acts := m.forward(m.scaler.Transform(x))
	t := acts[len(acts)-1][0]*m.yStd + m.yMean
	if t > 25 {
		t = 25
	}
	return math.Expm1(t)
}

// Package ml implements the runtime-prediction models the paper's first use
// case evaluates — Last2, Tobit censored regression, gradient-boosted trees
// (the XGBoost stand-in), linear regression, and a multilayer perceptron —
// together with the prediction-quality metrics (accuracy as min/max ratio
// and underestimation rate). Go lacks usable data-analysis/ML libraries, so
// everything here is built from scratch on the standard library.
package ml

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("ml: singular system")

// solveLinear solves A x = b in place via Gaussian elimination with partial
// pivoting. A is n x n (rows), b has length n. A and b are clobbered.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("ml: bad system dimensions")
	}
	for col := 0; col < n; col++ {
		// pivot
		p := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// eliminate
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// back substitution
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// normalPDF is the standard normal density.
func normalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normalCDF is the standard normal cumulative distribution.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// logNormalSF is log(1 - Phi(z)), computed stably for large z via the
// asymptotic expansion of the Mills ratio.
func logNormalSF(z float64) float64 {
	if z < 5 {
		sf := 1 - normalCDF(z)
		if sf > 0 {
			return math.Log(sf)
		}
	}
	// For large z: 1-Phi(z) ~ phi(z)/z * (1 - 1/z^2 + 3/z^4)
	return -0.5*z*z - math.Log(z) - 0.5*math.Log(2*math.Pi) +
		math.Log1p(-1/(z*z)+3/(z*z*z*z))
}

package ml

import (
	"math"
	"testing"

	"crosssched/internal/dist"
)

func TestSoftmaxSeparable(t *testing.T) {
	// Three well-separated Gaussian blobs in 2D.
	r := dist.NewRNG(1)
	var x [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		for i := 0; i < 200; i++ {
			x = append(x, []float64{ctr[0] + r.Normal(), ctr[1] + r.Normal()})
			y = append(y, c)
		}
	}
	m := &Softmax{Classes: 3, Epochs: 300}
	if err := m.FitClasses(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if m.PredictClass(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.97 {
		t.Fatalf("separable accuracy %v want >= 0.97", acc)
	}
	p := m.Probabilities([]float64{0, 0})
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum %v", sum)
	}
}

func TestSoftmaxRejectsBadInput(t *testing.T) {
	m := &Softmax{Classes: 1}
	if err := m.FitClasses([][]float64{{1}}, []int{0}); err == nil {
		t.Fatal("single class accepted")
	}
	m = &Softmax{Classes: 2}
	if err := m.FitClasses(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := m.FitClasses([][]float64{{1}}, []int{5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := m.FitClasses([][]float64{{1}, {2}}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestStatusSurvivalConditioning(t *testing.T) {
	// User 7: class 0 ("passed") jobs run ~3600s; class 1 ("failed") jobs
	// run ~10s. Early on, failure is plausible; after 60s it is ruled out.
	s := NewStatusSurvival(2)
	for i := 0; i < 20; i++ {
		s.Observe(7, 3600+float64(i), 0)
		s.Observe(7, 10+float64(i%5), 1)
	}
	s.Freeze()
	early := s.Probabilities(7, 1)
	if early[1] < 0.3 {
		t.Fatalf("early failure probability %v should be substantial", early[1])
	}
	late := s.Probabilities(7, 60)
	if late[1] > 0.1 {
		t.Fatalf("post-60s failure probability %v should be tiny", late[1])
	}
	if s.PredictClass(7, 60) != 0 {
		t.Fatal("post-60s prediction should be class 0")
	}
}

func TestStatusSurvivalGlobalFallback(t *testing.T) {
	s := NewStatusSurvival(2)
	// global history dominated by class 1
	for i := 0; i < 50; i++ {
		s.Observe(1, 100, 1)
	}
	s.Observe(1, 100, 0)
	s.Freeze()
	// unknown user: falls back to global
	p := s.Probabilities(999, 1)
	if p[1] < 0.8 {
		t.Fatalf("fallback probability %v want class-1 heavy", p[1])
	}
}

func TestStatusSurvivalIgnoresBadClass(t *testing.T) {
	s := NewStatusSurvival(2)
	s.Observe(1, 100, -1)
	s.Observe(1, 100, 7)
	s.Freeze()
	p := s.Probabilities(1, 0)
	if math.Abs(p[0]-0.5) > 1e-9 {
		t.Fatalf("bad classes should be ignored; got %v", p)
	}
}

func TestCountAbove(t *testing.T) {
	runs := []float64{1, 2, 2, 3, 10}
	cases := []struct {
		e    float64
		want int
	}{
		{0, 5}, {1, 4}, {2, 2}, {9.9, 1}, {10, 0}, {11, 0},
	}
	for _, c := range cases {
		if got := countAbove(runs, c.e); got != c.want {
			t.Fatalf("countAbove(%v) = %d want %d", c.e, got, c.want)
		}
	}
}

func TestEvaluateClasses(t *testing.T) {
	actual := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 1, 1, 1, 2, 0}
	res := EvaluateClasses(actual, pred, 3)
	if res.N != 6 {
		t.Fatalf("N %d", res.N)
	}
	if math.Abs(res.Accuracy-4.0/6) > 1e-9 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	if res.Recall[0] != 0.5 || res.Recall[1] != 1 || res.Recall[2] != 0.5 {
		t.Fatalf("recall %v", res.Recall)
	}
	if res.Confusion[0][1] != 1 || res.Confusion[2][0] != 1 {
		t.Fatalf("confusion %v", res.Confusion)
	}
	empty := EvaluateClasses(nil, nil, 3)
	if empty.N != 0 || empty.Accuracy != 0 {
		t.Fatal("empty evaluation should be zero")
	}
}

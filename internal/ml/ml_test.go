package ml

import (
	"math"
	"testing"
	"testing/quick"

	"crosssched/internal/dist"
)

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution %v want [1 3]", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// zero on the diagonal forces a pivot swap
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("solution %v want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Fatal("singular system accepted")
	}
	if _, err := solveLinear(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestNormalFunctions(t *testing.T) {
	if math.Abs(normalCDF(0)-0.5) > 1e-12 {
		t.Fatal("Phi(0) != 0.5")
	}
	if math.Abs(normalCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("Phi(1.96) = %v", normalCDF(1.96))
	}
	if math.Abs(normalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("phi(0) wrong")
	}
	// logNormalSF matches direct computation in the stable region
	for _, z := range []float64{-2, 0, 1, 3, 4.9} {
		want := math.Log(1 - normalCDF(z))
		if got := logNormalSF(z); math.Abs(got-want) > 1e-6 {
			t.Fatalf("logSF(%v) = %v want %v", z, got, want)
		}
	}
	// large z stays finite and decreasing
	prev := logNormalSF(5)
	for _, z := range []float64{6, 8, 10, 20} {
		got := logNormalSF(z)
		if math.IsNaN(got) || math.IsInf(got, 0) || got >= prev {
			t.Fatalf("logSF(%v) = %v not finite/decreasing", z, got)
		}
		prev = got
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		z := normalQuantile(p)
		if math.Abs(normalCDF(z)-p) > 1e-6 {
			t.Fatalf("quantile(%v) = %v round trips to %v", p, z, normalCDF(z))
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Fatal("extreme quantiles should be infinite")
	}
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataset{
		{X: [][]float64{{1}}, Y: []float64{1, 2}},
		{X: nil, Y: nil},
		{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}},
		{X: [][]float64{{math.NaN()}}, Y: []float64{1}},
		{X: [][]float64{{1}}, Y: []float64{math.Inf(1)}},
		{X: [][]float64{{1}}, Y: []float64{1}, Censored: []bool{true, false}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad dataset %d accepted", i)
		}
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 100}, {3, 100}, {5, 100}}
	s := FitScaler(x)
	z := s.TransformAll(x)
	// feature 0: mean 3, std sqrt(8/3)
	if math.Abs(z[0][0]+z[2][0]) > 1e-9 || z[1][0] != 0 {
		t.Fatalf("standardization wrong: %v", z)
	}
	// constant feature: std floored at 1, so transformed values are 0
	for i := range z {
		if z[i][1] != 0 {
			t.Fatalf("constant feature not zeroed: %v", z[i][1])
		}
	}
}

func TestMetrics(t *testing.T) {
	if got := PredictionAccuracy(100, 50); got != 0.5 {
		t.Fatalf("accuracy %v want 0.5", got)
	}
	if got := PredictionAccuracy(50, 100); got != 0.5 {
		t.Fatalf("accuracy symmetric %v want 0.5", got)
	}
	if got := PredictionAccuracy(100, 100); got != 1 {
		t.Fatalf("perfect accuracy %v", got)
	}
	if got := PredictionAccuracy(0, 0); got != 1 {
		t.Fatalf("floored accuracy %v", got)
	}
	r := Evaluate([]float64{10, 10, 10, 10}, []float64{5, 20, 10, 9})
	if r.N != 4 {
		t.Fatal("eval count wrong")
	}
	if math.Abs(r.UnderestimateRate-0.5) > 1e-12 {
		t.Fatalf("underestimate rate %v want 0.5", r.UnderestimateRate)
	}
	if r.AvgAccuracy <= 0 || r.AvgAccuracy > 1 {
		t.Fatalf("avg accuracy %v out of range", r.AvgAccuracy)
	}
	if Evaluate(nil, nil).N != 0 {
		t.Fatal("empty eval should be zero")
	}
	if got := MAE([]float64{1, 2}, []float64{2, 0}); got != 1.5 {
		t.Fatalf("MAE %v want 1.5", got)
	}
}

// synthDataset builds y = exp(a*x0 + b*x1 + noise) style runtimes so all
// models face the same log-linear ground truth.
func synthDataset(n int, seed uint64, noise float64) *Dataset {
	r := dist.NewRNG(seed)
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		x0 := r.Float64() * 4
		x1 := r.Float64() * 2
		logy := 2 + 0.8*x0 + 0.5*x1 + noise*r.Normal()
		ds.X = append(ds.X, []float64{x0, x1})
		ds.Y = append(ds.Y, math.Expm1(logy))
	}
	return ds
}

// fitAndScore trains on 80% and returns eval on the held-out 20%.
func fitAndScore(t *testing.T, m Model, ds *Dataset) EvalResult {
	t.Helper()
	n := ds.Len()
	cut := n * 8 / 10
	train := &Dataset{X: ds.X[:cut], Y: ds.Y[:cut]}
	if ds.Censored != nil {
		train.Censored = ds.Censored[:cut]
	}
	if err := m.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	var actual, pred []float64
	for i := cut; i < n; i++ {
		actual = append(actual, ds.Y[i])
		pred = append(pred, m.Predict(ds.X[i]))
	}
	return Evaluate(actual, pred)
}

func TestLinearRegressionRecoversLogLinear(t *testing.T) {
	ds := synthDataset(500, 3, 0.05)
	m := &LinearRegression{LogTarget: true}
	res := fitAndScore(t, m, ds)
	if res.AvgAccuracy < 0.9 {
		t.Fatalf("LR accuracy %v want >= 0.9", res.AvgAccuracy)
	}
}

func TestLinearRegressionRawTarget(t *testing.T) {
	// y = 3*x0 + 2*x1 + 5 exactly
	ds := &Dataset{}
	r := dist.NewRNG(9)
	for i := 0; i < 100; i++ {
		x0, x1 := r.Float64()*10, r.Float64()*10
		ds.X = append(ds.X, []float64{x0, x1})
		ds.Y = append(ds.Y, 3*x0+2*x1+5)
	}
	m := &LinearRegression{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{1, 1})
	if math.Abs(got-10) > 1e-6 {
		t.Fatalf("exact linear fit predicts %v want 10", got)
	}
}

func TestLinearRegressionRejectsTiny(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1, 2}}, Y: []float64{3}}
	if err := (&LinearRegression{}).Fit(ds); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestGBRTRecoversNonlinear(t *testing.T) {
	// step function: y = 100 if x0 < 2 else 10000 — trees should nail this
	r := dist.NewRNG(11)
	ds := &Dataset{}
	for i := 0; i < 600; i++ {
		x0 := r.Float64() * 4
		y := 100.0
		if x0 >= 2 {
			y = 10000
		}
		ds.X = append(ds.X, []float64{x0, r.Float64()})
		ds.Y = append(ds.Y, y)
	}
	m := &GBRT{Trees: 60, Depth: 3}
	res := fitAndScore(t, m, ds)
	if res.AvgAccuracy < 0.9 {
		t.Fatalf("GBRT accuracy %v want >= 0.9 on a step function", res.AvgAccuracy)
	}
}

func TestGBRTSubsampleAndDeterminism(t *testing.T) {
	ds := synthDataset(300, 5, 0.1)
	a := &GBRT{Trees: 40, Depth: 3, Subsample: 0.7, Seed: 1}
	b := &GBRT{Trees: 40, Depth: 3, Subsample: 0.7, Seed: 1}
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	probe := []float64{2, 1}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same-seed GBRT not deterministic")
	}
}

func TestGBRTRejectsTiny(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	if err := (&GBRT{MinChild: 5}).Fit(ds); err == nil {
		t.Fatal("tiny dataset accepted")
	}
}

func TestMLPRecoversLogLinear(t *testing.T) {
	ds := synthDataset(500, 7, 0.05)
	m := &MLP{Hidden: []int{16}, Epochs: 150, Seed: 2}
	res := fitAndScore(t, m, ds)
	if res.AvgAccuracy < 0.8 {
		t.Fatalf("MLP accuracy %v want >= 0.8", res.AvgAccuracy)
	}
}

func TestMLPDeterminism(t *testing.T) {
	ds := synthDataset(200, 8, 0.1)
	a := &MLP{Hidden: []int{8}, Epochs: 30, Seed: 3}
	b := &MLP{Hidden: []int{8}, Epochs: 30, Seed: 3}
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, 1}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same-seed MLP not deterministic")
	}
}

func TestTobitUncensoredMatchesLR(t *testing.T) {
	ds := synthDataset(400, 13, 0.1)
	m := &Tobit{Epochs: 600, LR: 0.05}
	res := fitAndScore(t, m, ds)
	if res.AvgAccuracy < 0.85 {
		t.Fatalf("Tobit accuracy %v want >= 0.85", res.AvgAccuracy)
	}
}

func TestTobitCensoringRaisesPredictions(t *testing.T) {
	// Censor the top half of targets at their observed value; the Tobit
	// model should learn the latent mean is above the censored values,
	// predicting higher than a model that takes them at face value.
	r := dist.NewRNG(17)
	ds := &Dataset{}
	for i := 0; i < 400; i++ {
		x0 := r.Float64() * 2
		y := math.Expm1(3 + x0 + 0.3*r.Normal())
		ds.X = append(ds.X, []float64{x0})
		ds.Y = append(ds.Y, y)
		ds.Censored = append(ds.Censored, false)
	}
	// censored copy: cut every target in half and mark censored
	cens := &Dataset{}
	for i := range ds.X {
		cens.X = append(cens.X, ds.X[i])
		cens.Y = append(cens.Y, ds.Y[i]/2)
		cens.Censored = append(cens.Censored, true)
	}
	naive := &Tobit{Epochs: 500}
	if err := naive.Fit(&Dataset{X: cens.X, Y: cens.Y}); err != nil {
		t.Fatal(err)
	}
	aware := &Tobit{Epochs: 500}
	if err := aware.Fit(cens); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1}
	if aware.Predict(probe) <= naive.Predict(probe) {
		t.Fatalf("censoring-aware prediction %v not above naive %v",
			aware.Predict(probe), naive.Predict(probe))
	}
}

func TestTobitQuantileShiftsPredictions(t *testing.T) {
	ds := synthDataset(300, 19, 0.3)
	med := &Tobit{Epochs: 400, PredictQuantile: 0.5}
	hi := &Tobit{Epochs: 400, PredictQuantile: 0.9}
	if err := med.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := hi.Fit(ds); err != nil {
		t.Fatal(err)
	}
	probe := []float64{2, 1}
	if hi.Predict(probe) <= med.Predict(probe) {
		t.Fatal("higher quantile should predict higher")
	}
}

func TestLast2(t *testing.T) {
	m := NewLast2()
	if got := m.Predict(1, 42); got != 42 {
		t.Fatalf("empty history fallback %v want 42", got)
	}
	m.Observe(1, 100)
	if got := m.Predict(1, 0); got != 100 {
		t.Fatalf("single history %v want 100", got)
	}
	m.Observe(1, 200)
	if got := m.Predict(1, 0); got != 150 {
		t.Fatalf("last2 %v want 150", got)
	}
	m.Observe(1, 300)
	if got := m.Predict(1, 0); got != 250 {
		t.Fatalf("last2 rolling %v want 250", got)
	}
	if m.HistoryLen(1) != 3 || m.HistoryLen(2) != 0 {
		t.Fatal("history lengths wrong")
	}
}

func TestLast2WithElapsed(t *testing.T) {
	m := NewLast2()
	// user's jobs: many short (10s) failures, some hour-long successes
	for i := 0; i < 5; i++ {
		m.Observe(1, 10)
	}
	for i := 0; i < 4; i++ {
		m.Observe(1, 3600)
	}
	// plain last2 predicts ~3600 here, but with a fresh user whose last
	// two jobs were short, elapsed conditioning matters:
	m2 := NewLast2()
	m2.Observe(2, 3600)
	m2.Observe(2, 10)
	m2.Observe(2, 10)
	plain := m2.Predict(2, 0) // (10+10)/2 = 10
	if plain != 10 {
		t.Fatalf("plain last2 %v want 10", plain)
	}
	// the job has already run 60s, so the short-job hypothesis is dead
	withE := m2.PredictWithElapsed(2, 60, 0)
	if withE != 3600 {
		t.Fatalf("elapsed-aware %v want 3600", withE)
	}
	// no history above elapsed: fall back to max(plain, elapsed)
	if got := m2.PredictWithElapsed(2, 10000, 0); got != 10000 {
		t.Fatalf("beyond-history prediction %v want 10000", got)
	}
}

// Property: model predictions are finite for arbitrary finite probes.
func TestPredictionsFinitePropertyQuick(t *testing.T) {
	ds := synthDataset(200, 23, 0.2)
	models := []Model{
		&LinearRegression{LogTarget: true},
		&GBRT{Trees: 20, Depth: 3},
		&MLP{Hidden: []int{8}, Epochs: 20, Seed: 5},
		&Tobit{Epochs: 100},
	}
	for _, m := range models {
		if err := m.Fit(ds); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// keep probes in a plausible range
		x := []float64{math.Mod(math.Abs(a), 100), math.Mod(math.Abs(b), 100)}
		for _, m := range models {
			p := m.Predict(x)
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package ml

import (
	"errors"
	"fmt"
	"math"
)

// Dataset is a dense regression dataset: X is n rows x d features, Y is the
// n targets. Censored[i], when present, marks row i's target as a right-
// censored lower bound (the job was cut off, e.g. at its walltime) — only
// the Tobit model uses it; other models treat the value as exact.
type Dataset struct {
	X        [][]float64
	Y        []float64
	Censored []bool // optional; nil means fully observed
}

// Validate reports structural problems: ragged rows, NaNs, mismatched
// lengths.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows vs %d targets", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("ml: empty dataset")
	}
	if d.Censored != nil && len(d.Censored) != len(d.Y) {
		return errors.New("ml: censor mask length mismatch")
	}
	width := len(d.X[0])
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: ragged row %d: %d vs %d", i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite feature [%d][%d]", i, j)
			}
		}
		if math.IsNaN(d.Y[i]) || math.IsInf(d.Y[i], 0) {
			return fmt.Errorf("ml: non-finite target %d", i)
		}
	}
	return nil
}

// Dim returns the feature width (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Scaler standardizes features to zero mean and unit variance, remembering
// the transform so predictions can be made on raw inputs.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-feature means and stddevs (with a floor to avoid
// division by zero for constant features).
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := range x {
			sum += x[i][j]
		}
		m := sum / float64(len(x))
		ss := 0.0
		for i := range x {
			v := x[i][j] - m
			ss += v * v
		}
		sd := math.Sqrt(ss / float64(len(x)))
		if sd < 1e-12 {
			sd = 1
		}
		s.Mean[j], s.Std[j] = m, sd
	}
	return s
}

// Transform returns a standardized copy of row x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = s.Transform(x[i])
	}
	return out
}

// Model is a regression model for job runtimes.
type Model interface {
	// Name identifies the model in reports (e.g. "XGBoost").
	Name() string
	// Fit trains on the dataset. Implementations must not retain ds.
	Fit(ds *Dataset) error
	// Predict returns the predicted target for one feature row.
	Predict(x []float64) float64
}

package ml

import (
	"errors"
	"math"
)

// Tobit is a right-censored regression model (Fan et al., CLUSTER'17 use it
// for runtime prediction). The latent log-runtime is linear-Gaussian:
//
//	log1p(y*) = w.x + b + sigma * eps
//
// and rows marked censored contribute the survival likelihood
// P(y* >= y_observed) instead of the density — walltime-killed jobs tell
// the model "at least this long". The model is fit by maximizing the
// censored log-likelihood with Adam, and predicts the PredictQuantile of
// the latent distribution (above 0.5 trades accuracy for fewer
// underestimates, the Tobit trade-off the paper cites).
type Tobit struct {
	// Epochs and LR control the Adam optimizer.
	Epochs int
	LR     float64
	// PredictQuantile in (0,1); 0.5 predicts the median.
	PredictQuantile float64

	weights []float64 // d weights + intercept
	logSig  float64
	scaler  *Scaler
}

// Name implements Model.
func (m *Tobit) Name() string { return "Tobit" }

// Fit implements Model.
func (m *Tobit) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if m.Epochs <= 0 {
		m.Epochs = 400
	}
	if m.LR <= 0 {
		m.LR = 0.05
	}
	if m.PredictQuantile <= 0 || m.PredictQuantile >= 1 {
		m.PredictQuantile = 0.5
	}
	n, d := ds.Len(), ds.Dim()
	if n < 3 {
		return errors.New("ml: tobit needs at least 3 rows")
	}
	m.scaler = FitScaler(ds.X)
	x := m.scaler.TransformAll(ds.X)
	y := make([]float64, n)
	meanY := 0.0
	for i, v := range ds.Y {
		if v < 0 {
			v = 0
		}
		y[i] = math.Log1p(v)
		meanY += y[i]
	}
	meanY /= float64(n)

	k := d + 1
	w := make([]float64, k)
	w[d] = meanY // initialize intercept at the mean log target
	logSig := 0.0

	// Adam state.
	mw := make([]float64, k+1)
	vw := make([]float64, k+1)
	beta1, beta2, eps := 0.9, 0.999, 1e-8
	grad := make([]float64, k+1)

	for epoch := 1; epoch <= m.Epochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		sig := math.Exp(logSig)
		for i := 0; i < n; i++ {
			mu := w[d]
			for j := 0; j < d; j++ {
				mu += w[j] * x[i][j]
			}
			z := (y[i] - mu) / sig
			if ds.Censored != nil && ds.Censored[i] {
				// d/dmu log(1-Phi(z)) = phi(z)/(1-Phi(z)) / sig
				lsf := logNormalSF(z)
				ratio := math.Exp(math.Log(normalPDF(z)+1e-300) - lsf)
				gmu := ratio / sig
				for j := 0; j < d; j++ {
					grad[j] += gmu * x[i][j]
				}
				grad[d] += gmu
				grad[k] += ratio * z // d/dlogsig
			} else {
				// density term: d/dmu = z/sig ; d/dlogsig = z^2 - 1
				gmu := z / sig
				for j := 0; j < d; j++ {
					grad[j] += gmu * x[i][j]
				}
				grad[d] += gmu
				grad[k] += z*z - 1
			}
		}
		// Adam ascent step on the mean gradient.
		inv := 1 / float64(n)
		for i := 0; i <= k; i++ {
			g := grad[i] * inv
			mw[i] = beta1*mw[i] + (1-beta1)*g
			vw[i] = beta2*vw[i] + (1-beta2)*g*g
			mhat := mw[i] / (1 - math.Pow(beta1, float64(epoch)))
			vhat := vw[i] / (1 - math.Pow(beta2, float64(epoch)))
			step := m.LR * mhat / (math.Sqrt(vhat) + eps)
			if i < k {
				w[i] += step
			} else {
				logSig += step
				if logSig > 3 {
					logSig = 3
				}
				if logSig < -6 {
					logSig = -6
				}
			}
		}
	}
	m.weights = w
	m.logSig = logSig
	return nil
}

// Predict implements Model.
func (m *Tobit) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	z := m.scaler.Transform(x)
	d := len(m.weights) - 1
	mu := m.weights[d]
	for j := 0; j < d && j < len(z); j++ {
		mu += m.weights[j] * z[j]
	}
	// quantile of the latent log-normal
	q := normalQuantile(m.PredictQuantile)
	t := mu + q*math.Exp(m.logSig)
	if t > 25 {
		t = 25
	}
	return math.Expm1(t)
}

// normalQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	dd := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	}
}

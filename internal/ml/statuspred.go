package ml

import "sort"

// StatusSurvival is the empirical per-user status predictor built directly
// on the paper's Figure 11 observation: conditioned on a job having already
// run e seconds, the probability of each final status is the per-user
// empirical share of historical jobs with that status whose runtime
// exceeded e. Laplace smoothing plus a global fallback handle sparse users.
type StatusSurvival struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64

	classes int
	// perUser[user][class] holds that user's historical runtimes for the
	// class, kept sorted for O(log n) survival queries.
	perUser map[int][][]float64
	global  [][]float64
	sorted  bool
}

// NewStatusSurvival returns a predictor over `classes` statuses.
func NewStatusSurvival(classes int) *StatusSurvival {
	s := &StatusSurvival{Alpha: 1, classes: classes, perUser: map[int][][]float64{}}
	s.global = make([][]float64, classes)
	return s
}

// Observe records a finished job.
func (s *StatusSurvival) Observe(user int, runtime float64, class int) {
	if class < 0 || class >= s.classes {
		return
	}
	u := s.perUser[user]
	if u == nil {
		u = make([][]float64, s.classes)
	}
	u[class] = append(u[class], runtime)
	s.perUser[user] = u
	s.global[class] = append(s.global[class], runtime)
	s.sorted = false
}

// Freeze sorts the runtime lists; call once after the observation phase
// (Observe after Freeze is allowed but re-sorts lazily on next query).
func (s *StatusSurvival) Freeze() {
	for _, u := range s.perUser {
		for _, runs := range u {
			sort.Float64s(runs)
		}
	}
	for _, runs := range s.global {
		sort.Float64s(runs)
	}
	s.sorted = true
}

// countAbove returns how many sorted runtimes exceed e.
func countAbove(sorted []float64, e float64) int {
	i := sort.SearchFloat64s(sorted, e)
	// advance past equal values: survival is strictly greater
	for i < len(sorted) && sorted[i] <= e {
		i++
	}
	return len(sorted) - i
}

// Probabilities returns P(status | user, runtime > elapsed). Users with
// fewer than minUserObs surviving observations fall back to the global
// distribution (blended by Laplace smoothing either way).
func (s *StatusSurvival) Probabilities(user int, elapsed float64) []float64 {
	if !s.sorted {
		s.Freeze()
	}
	const minUserObs = 5
	counts := make([]float64, s.classes)
	total := 0.0
	if u := s.perUser[user]; u != nil {
		for c, runs := range u {
			n := float64(countAbove(runs, elapsed))
			counts[c] = n
			total += n
		}
	}
	if total < minUserObs {
		// global fallback
		for c, runs := range s.global {
			counts[c] = float64(countAbove(runs, elapsed))
		}
	}
	out := make([]float64, s.classes)
	sum := 0.0
	for c := range counts {
		out[c] = counts[c] + s.Alpha
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// PredictClass returns the most likely status for (user, elapsed).
func (s *StatusSurvival) PredictClass(user int, elapsed float64) int {
	p := s.Probabilities(user, elapsed)
	best := 0
	for c := range p {
		if p[c] > p[best] {
			best = c
		}
	}
	return best
}

// ClassificationResult aggregates multiclass prediction quality.
type ClassificationResult struct {
	N        int
	Accuracy float64
	// Recall[c] is the per-class recall (diagonal of the row-normalized
	// confusion matrix); classes absent from the test set report 0.
	Recall []float64
	// Confusion[actual][predicted] counts.
	Confusion [][]int
}

// EvaluateClasses scores predicted class labels against actuals.
func EvaluateClasses(actual, predicted []int, classes int) ClassificationResult {
	res := ClassificationResult{
		N:         len(actual),
		Recall:    make([]float64, classes),
		Confusion: make([][]int, classes),
	}
	for c := range res.Confusion {
		res.Confusion[c] = make([]int, classes)
	}
	if len(actual) == 0 || len(actual) != len(predicted) {
		res.N = 0
		return res
	}
	correct := 0
	for i := range actual {
		a, p := actual[i], predicted[i]
		if a < 0 || a >= classes || p < 0 || p >= classes {
			continue
		}
		res.Confusion[a][p]++
		if a == p {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(actual))
	for c := 0; c < classes; c++ {
		rowTotal := 0
		for p := 0; p < classes; p++ {
			rowTotal += res.Confusion[c][p]
		}
		if rowTotal > 0 {
			res.Recall[c] = float64(res.Confusion[c][c]) / float64(rowTotal)
		}
	}
	return res
}

package ml

import (
	"errors"
	"fmt"
	"math"
)

// Softmax is multinomial logistic regression: K-class linear classifier
// trained by gradient descent (Adam) on cross-entropy. Used for the job
// status prediction extension (the paper's Section V-C observation that
// elapsed runtime strongly signals the final status).
type Softmax struct {
	Classes int     // number of classes K (required)
	Epochs  int     // training epochs (default 300)
	LR      float64 // Adam learning rate (default 0.05)
	L2      float64 // weight decay (default 1e-4)

	weights [][]float64 // [class][feature+1], last is bias
	scaler  *Scaler
}

// FitClasses trains on rows x with integer labels y in [0, Classes).
func (m *Softmax) FitClasses(x [][]float64, y []int) error {
	if m.Classes < 2 {
		return errors.New("ml: softmax needs >= 2 classes")
	}
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("ml: softmax bad dimensions")
	}
	for i, lbl := range y {
		if lbl < 0 || lbl >= m.Classes {
			return fmt.Errorf("ml: label %d out of range at row %d", lbl, i)
		}
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.LR <= 0 {
		m.LR = 0.05
	}
	if m.L2 <= 0 {
		m.L2 = 1e-4
	}
	d := len(x[0])
	m.scaler = FitScaler(x)
	xs := m.scaler.TransformAll(x)

	k := m.Classes
	m.weights = make([][]float64, k)
	mw := make([][]float64, k)
	vw := make([][]float64, k)
	for c := 0; c < k; c++ {
		m.weights[c] = make([]float64, d+1)
		mw[c] = make([]float64, d+1)
		vw[c] = make([]float64, d+1)
	}

	n := len(xs)
	grad := make([][]float64, k)
	for c := range grad {
		grad[c] = make([]float64, d+1)
	}
	probs := make([]float64, k)
	beta1, beta2, eps := 0.9, 0.999, 1e-8

	for epoch := 1; epoch <= m.Epochs; epoch++ {
		for c := 0; c < k; c++ {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			m.logits(xs[i], probs)
			softmaxInPlace(probs)
			for c := 0; c < k; c++ {
				g := probs[c]
				if c == y[i] {
					g -= 1
				}
				for j := 0; j < d; j++ {
					grad[c][j] += g * xs[i][j]
				}
				grad[c][d] += g
			}
		}
		inv := 1 / float64(n)
		bc1 := 1 - math.Pow(beta1, float64(epoch))
		bc2 := 1 - math.Pow(beta2, float64(epoch))
		for c := 0; c < k; c++ {
			for j := 0; j <= d; j++ {
				g := grad[c][j] * inv
				if j < d {
					g += m.L2 * m.weights[c][j]
				}
				mw[c][j] = beta1*mw[c][j] + (1-beta1)*g
				vw[c][j] = beta2*vw[c][j] + (1-beta2)*g*g
				m.weights[c][j] -= m.LR * (mw[c][j] / bc1) / (math.Sqrt(vw[c][j]/bc2) + eps)
			}
		}
	}
	return nil
}

// logits fills out[c] with the linear score of class c for standardized x.
func (m *Softmax) logits(x []float64, out []float64) {
	d := len(m.weights[0]) - 1
	for c := range m.weights {
		s := m.weights[c][d]
		w := m.weights[c]
		for j := 0; j < d && j < len(x); j++ {
			s += w[j] * x[j]
		}
		out[c] = s
	}
}

// softmaxInPlace converts logits to probabilities, numerically stably.
func softmaxInPlace(v []float64) {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for i := range v {
		v[i] = math.Exp(v[i] - max)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// Probabilities returns the class distribution for a raw feature row.
func (m *Softmax) Probabilities(x []float64) []float64 {
	if m.weights == nil {
		return nil
	}
	z := m.scaler.Transform(x)
	out := make([]float64, m.Classes)
	m.logits(z, out)
	softmaxInPlace(out)
	return out
}

// PredictClass returns the argmax class for a raw feature row.
func (m *Softmax) PredictClass(x []float64) int {
	p := m.Probabilities(x)
	best := 0
	for c := range p {
		if p[c] > p[best] {
			best = c
		}
	}
	return best
}

package ml

// PredictionAccuracy is the paper's accuracy metric for one job:
// min(runtime, predicted) / max(runtime, predicted), in (0, 1], where 1 is
// a perfect prediction. Non-positive inputs are floored at 1 second so the
// ratio stays defined.
func PredictionAccuracy(runtime, predicted float64) float64 {
	if runtime < 1 {
		runtime = 1
	}
	if predicted < 1 {
		predicted = 1
	}
	if runtime < predicted {
		return runtime / predicted
	}
	return predicted / runtime
}

// EvalResult aggregates the paper's two prediction metrics over a test set
// (Figure 12): mean accuracy (higher is better) and the underestimation
// rate (lower is better — underestimates cause bad backfills and walltime
// kills).
type EvalResult struct {
	N                 int
	AvgAccuracy       float64
	UnderestimateRate float64
}

// Evaluate scores predictions against actual runtimes.
func Evaluate(actual, predicted []float64) EvalResult {
	n := len(actual)
	if n == 0 || len(predicted) != n {
		return EvalResult{}
	}
	var accSum float64
	under := 0
	for i := range actual {
		accSum += PredictionAccuracy(actual[i], predicted[i])
		if predicted[i] < actual[i] {
			under++
		}
	}
	return EvalResult{
		N:                 n,
		AvgAccuracy:       accSum / float64(n),
		UnderestimateRate: float64(under) / float64(n),
	}
}

// MAE returns the mean absolute error.
func MAE(actual, predicted []float64) float64 {
	if len(actual) == 0 || len(actual) != len(predicted) {
		return 0
	}
	sum := 0.0
	for i := range actual {
		d := actual[i] - predicted[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(actual))
}

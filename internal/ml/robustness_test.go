package ml

import (
	"math"
	"testing"
)

// degenerate datasets every model must survive without NaN/Inf output.
func degenerateDatasets() map[string]*Dataset {
	constTarget := &Dataset{}
	constFeature := &Dataset{}
	tinySpread := &Dataset{}
	for i := 0; i < 50; i++ {
		x := float64(i)
		constTarget.X = append(constTarget.X, []float64{x, x * 2})
		constTarget.Y = append(constTarget.Y, 100) // zero-variance target

		constFeature.X = append(constFeature.X, []float64{5, 5}) // zero-variance features
		constFeature.Y = append(constFeature.Y, 10+x)

		tinySpread.X = append(tinySpread.X, []float64{1 + 1e-12*x, 2})
		tinySpread.Y = append(tinySpread.Y, 50+1e-9*x)
	}
	return map[string]*Dataset{
		"constTarget":  constTarget,
		"constFeature": constFeature,
		"tinySpread":   tinySpread,
	}
}

func TestModelsSurviveDegenerateData(t *testing.T) {
	for name, ds := range degenerateDatasets() {
		models := []Model{
			&LinearRegression{LogTarget: true},
			&GBRT{Trees: 10, Depth: 2},
			&MLP{Hidden: []int{4}, Epochs: 10, Seed: 1},
			&Tobit{Epochs: 50},
		}
		for _, m := range models {
			err := m.Fit(ds)
			if err != nil {
				// A clean refusal is acceptable for degenerate data...
				continue
			}
			// ...but a successful fit must predict finite values.
			for _, probe := range [][]float64{{0, 0}, {5, 5}, {1e6, -1e6}} {
				p := m.Predict(probe)
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Errorf("%s on %s: non-finite prediction %v for %v",
						m.Name(), name, p, probe)
				}
			}
		}
	}
}

func TestGBRTConstantTargetPredictsConstant(t *testing.T) {
	ds := degenerateDatasets()["constTarget"]
	m := &GBRT{Trees: 20, Depth: 3}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{10, 20})
	if math.Abs(p-100) > 1 {
		t.Fatalf("constant-target prediction %v want ~100", p)
	}
}

func TestLinearRegressionConstantFeatures(t *testing.T) {
	// With zero-variance features the model can only learn the intercept;
	// it must not blow up, and should predict near the mean target.
	ds := degenerateDatasets()["constFeature"]
	m := &LinearRegression{}
	if err := m.Fit(ds); err != nil {
		t.Skipf("clean refusal: %v", err)
	}
	p := m.Predict([]float64{5, 5})
	mean := 0.0
	for _, y := range ds.Y {
		mean += y
	}
	mean /= float64(len(ds.Y))
	if math.Abs(p-mean) > 10 {
		t.Fatalf("constant-feature prediction %v want ~mean %v", p, mean)
	}
}

func TestSoftmaxSingleClassData(t *testing.T) {
	// All labels identical: training must converge to predicting that
	// class without numeric trouble.
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		x = append(x, []float64{float64(i), 1})
		y = append(y, 1)
	}
	m := &Softmax{Classes: 3, Epochs: 100}
	if err := m.FitClasses(x, y); err != nil {
		t.Fatal(err)
	}
	if got := m.PredictClass([]float64{7, 1}); got != 1 {
		t.Fatalf("single-class fit predicts %d want 1", got)
	}
	for _, p := range m.Probabilities([]float64{7, 1}) {
		if math.IsNaN(p) {
			t.Fatal("NaN probability")
		}
	}
}

func TestStatusSurvivalEmpty(t *testing.T) {
	s := NewStatusSurvival(3)
	s.Freeze()
	p := s.Probabilities(1, 100)
	sum := 0.0
	for _, v := range p {
		if v <= 0 {
			t.Fatalf("empty predictor probability %v should be smoothed positive", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum %v", sum)
	}
}

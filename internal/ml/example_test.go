package ml_test

import (
	"fmt"

	"crosssched/internal/ml"
)

// ExampleLast2 demonstrates the history predictor and its elapsed-time
// enhancement (the paper's use case 1 idea in miniature).
func ExampleLast2() {
	m := ml.NewLast2()
	// The user's jobs either fail in ~10s or train for ~an hour.
	m.Observe(1, 10)
	m.Observe(1, 3600)
	m.Observe(1, 12)
	m.Observe(1, 11)

	fmt.Println("plain last2:", m.Predict(1, 0))
	// The job already survived 60s, so the 10-second hypothesis is dead:
	fmt.Println("with elapsed 60s:", m.PredictWithElapsed(1, 60, 0))
	// Output:
	// plain last2: 11.5
	// with elapsed 60s: 3600
}

// ExamplePredictionAccuracy shows the paper's accuracy metric.
func ExamplePredictionAccuracy() {
	fmt.Println(ml.PredictionAccuracy(100, 50))
	fmt.Println(ml.PredictionAccuracy(50, 100))
	fmt.Println(ml.PredictionAccuracy(100, 100))
	// Output:
	// 0.5
	// 0.5
	// 1
}

// ExampleStatusSurvival conditions status probabilities on elapsed time.
func ExampleStatusSurvival() {
	s := ml.NewStatusSurvival(2)
	for i := 0; i < 20; i++ {
		s.Observe(1, 3600, 0) // passes run an hour
		s.Observe(1, 10, 1)   // failures die in 10s
	}
	s.Freeze()
	early := s.Probabilities(1, 1)
	late := s.Probabilities(1, 120)
	fmt.Println("failure plausible at 1s:", early[1] > 0.3)
	fmt.Println("failure ruled out at 120s:", late[1] < 0.1)
	// Output:
	// failure plausible at 1s: true
	// failure ruled out at 120s: true
}

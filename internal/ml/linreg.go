package ml

import (
	"errors"
	"math"
)

// LinearRegression is ordinary least squares with optional ridge
// regularization, fit in closed form via the normal equations. When
// LogTarget is set the model regresses log1p(y) and exponentiates
// predictions — the right space for heavy-tailed job runtimes.
type LinearRegression struct {
	// Ridge is the L2 penalty strength (0 = plain OLS; a small value
	// also guards against collinear features).
	Ridge float64
	// LogTarget fits in log space.
	LogTarget bool

	weights []float64 // len d+1; last entry is the intercept
	scaler  *Scaler
}

// Name implements Model.
func (m *LinearRegression) Name() string { return "LR" }

// Fit implements Model.
func (m *LinearRegression) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	n, d := ds.Len(), ds.Dim()
	if n < d+1 {
		return errors.New("ml: linreg needs at least dim+1 rows")
	}
	m.scaler = FitScaler(ds.X)
	x := m.scaler.TransformAll(ds.X)
	y := make([]float64, n)
	for i, v := range ds.Y {
		y[i] = m.target(v)
	}

	// Build the (d+1)x(d+1) normal system with an intercept column.
	k := d + 1
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	b := make([]float64, k)
	row := make([]float64, k)
	for i := 0; i < n; i++ {
		copy(row, x[i])
		row[d] = 1
		for p := 0; p < k; p++ {
			for q := 0; q < k; q++ {
				a[p][q] += row[p] * row[q]
			}
			b[p] += row[p] * y[i]
		}
	}
	ridge := m.Ridge
	if ridge < 1e-9 {
		ridge = 1e-9 // numerical floor
	}
	for p := 0; p < d; p++ { // do not penalize the intercept
		a[p][p] += ridge
	}
	w, err := solveLinear(a, b)
	if err != nil {
		return err
	}
	m.weights = w
	return nil
}

// Predict implements Model.
func (m *LinearRegression) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	z := m.scaler.Transform(x)
	sum := m.weights[len(m.weights)-1]
	for j := range z {
		sum += m.weights[j] * z[j]
	}
	return m.untarget(sum)
}

func (m *LinearRegression) target(y float64) float64 {
	if m.LogTarget {
		if y < 0 {
			y = 0
		}
		return math.Log1p(y)
	}
	return y
}

func (m *LinearRegression) untarget(t float64) float64 {
	if m.LogTarget {
		if t > 25 {
			t = 25 // cap to avoid overflow on wild extrapolations
		}
		return math.Expm1(t)
	}
	return t
}

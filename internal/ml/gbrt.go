package ml

import (
	"errors"
	"math"
	"sort"

	"crosssched/internal/dist"
)

// GBRT is gradient-boosted regression trees in the XGBoost mold: each round
// fits a depth-limited tree to the gradients of squared loss with
// second-order leaf weights w = -G/(H + lambda), split gain
// 0.5*(GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda)) - gamma, and
// shrinkage. Targets are modeled in log1p space (heavy-tailed runtimes).
type GBRT struct {
	Trees     int     // boosting rounds (default 150)
	Depth     int     // maximum tree depth (default 4)
	LR        float64 // shrinkage (default 0.1)
	Lambda    float64 // L2 on leaf weights (default 1)
	Gamma     float64 // minimum split gain (default 0)
	MinChild  int     // minimum rows per leaf (default 5)
	Subsample float64 // row subsample per round in (0,1]; default 1
	Seed      uint64  // subsample RNG seed

	base   float64
	trees  []*gbNode
	logTgt bool
}

type gbNode struct {
	feature     int
	threshold   float64
	left, right *gbNode
	value       float64 // leaf weight
	leaf        bool
}

// Name implements Model. The paper labels this family "XGBoost".
func (m *GBRT) Name() string { return "XGBoost" }

// Fit implements Model.
func (m *GBRT) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if m.Trees <= 0 {
		m.Trees = 150
	}
	if m.Depth <= 0 {
		m.Depth = 4
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.Lambda <= 0 {
		m.Lambda = 1
	}
	if m.MinChild <= 0 {
		m.MinChild = 5
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 1
	}
	m.logTgt = true

	n := ds.Len()
	if n < 2*m.MinChild {
		return errors.New("ml: gbrt needs more rows than 2*MinChild")
	}
	y := make([]float64, n)
	for i, v := range ds.Y {
		if v < 0 {
			v = 0
		}
		y[i] = math.Log1p(v)
	}
	m.base = 0
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	grad := make([]float64, n)
	rng := dist.NewRNG(m.Seed + 1)
	m.trees = m.trees[:0]

	// Pre-sort feature indices once for fast exact splits.
	d := ds.Dim()
	order := make([][]int, d)
	for j := 0; j < d; j++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return ds.X[idx[a]][j] < ds.X[idx[b]][j] })
		order[j] = idx
	}

	for round := 0; round < m.Trees; round++ {
		inBag := make([]bool, n)
		if m.Subsample < 1 {
			for i := range inBag {
				inBag[i] = rng.Float64() < m.Subsample
			}
		} else {
			for i := range inBag {
				inBag[i] = true
			}
		}
		for i := 0; i < n; i++ {
			grad[i] = pred[i] - y[i] // squared-loss gradient; hessian = 1
		}
		rows := make([]bool, n)
		copy(rows, inBag)
		tree := m.buildNode(ds.X, grad, order, rows, countTrue(rows), m.Depth)
		m.trees = append(m.trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += m.LR * treeValue(tree, ds.X[i])
		}
	}
	return nil
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// buildNode grows one node over the rows marked true in rows.
func (m *GBRT) buildNode(x [][]float64, grad []float64, order [][]int, rows []bool, nRows, depth int) *gbNode {
	var g float64
	for i, in := range rows {
		if in {
			g += grad[i]
		}
	}
	h := float64(nRows)
	leafValue := -g / (h + m.Lambda)
	if depth == 0 || nRows < 2*m.MinChild {
		return &gbNode{leaf: true, value: leafValue}
	}

	parentScore := g * g / (h + m.Lambda)
	bestGain := 0.0
	bestFeat, bestSplitIdx := -1, -1
	d := len(order)
	for j := 0; j < d; j++ {
		var gl, hl float64
		seen := 0
		idx := order[j]
		for k := 0; k < len(idx); k++ {
			i := idx[k]
			if !rows[i] {
				continue
			}
			seen++
			gl += grad[i]
			hl++
			if seen < m.MinChild || nRows-seen < m.MinChild {
				continue
			}
			// split between this row and the next in-bag row; skip ties
			next := nextInRows(idx, k, rows)
			if next < 0 || x[idx[next]][j] <= x[i][j] {
				continue
			}
			gr := g - gl
			hr := h - hl
			gain := 0.5*(gl*gl/(hl+m.Lambda)+gr*gr/(hr+m.Lambda)-parentScore) - m.Gamma
			if gain > bestGain {
				bestGain, bestFeat, bestSplitIdx = gain, j, k
			}
		}
	}
	if bestFeat < 0 {
		return &gbNode{leaf: true, value: leafValue}
	}

	idx := order[bestFeat]
	next := nextInRows(idx, bestSplitIdx, rows)
	threshold := (x[idx[bestSplitIdx]][bestFeat] + x[idx[next]][bestFeat]) / 2

	leftRows := make([]bool, len(rows))
	rightRows := make([]bool, len(rows))
	nl, nr := 0, 0
	for i, in := range rows {
		if !in {
			continue
		}
		if x[i][bestFeat] < threshold {
			leftRows[i] = true
			nl++
		} else {
			rightRows[i] = true
			nr++
		}
	}
	if nl == 0 || nr == 0 {
		return &gbNode{leaf: true, value: leafValue}
	}
	return &gbNode{
		feature:   bestFeat,
		threshold: threshold,
		left:      m.buildNode(x, grad, order, leftRows, nl, depth-1),
		right:     m.buildNode(x, grad, order, rightRows, nr, depth-1),
	}
}

// nextInRows finds the next index after k in idx that is in-bag.
func nextInRows(idx []int, k int, rows []bool) int {
	for t := k + 1; t < len(idx); t++ {
		if rows[idx[t]] {
			return t
		}
	}
	return -1
}

func treeValue(n *gbNode, x []float64) float64 {
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Predict implements Model.
func (m *GBRT) Predict(x []float64) float64 {
	if len(m.trees) == 0 {
		return 0
	}
	t := m.base
	for _, tree := range m.trees {
		t += m.LR * treeValue(tree, x)
	}
	if m.logTgt {
		if t > 25 {
			t = 25
		}
		return math.Expm1(t)
	}
	return t
}

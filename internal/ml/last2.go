package ml

import "sort"

// Last2 is the classic history-based walltime predictor (Tsafrir et al.):
// the prediction for a user's next job is the average of that user's last
// two observed runtimes. It is not a feature-vector model, so it exposes
// its own API keyed by user history; internal/predict adapts it to the
// paper's evaluation protocol.
type Last2 struct {
	// history holds each user's runtimes in submit order.
	history map[int][]float64
}

// NewLast2 returns an empty predictor.
func NewLast2() *Last2 {
	return &Last2{history: map[int][]float64{}}
}

// Observe appends a completed job's runtime to the user's history.
func (m *Last2) Observe(user int, runtime float64) {
	m.history[user] = append(m.history[user], runtime)
}

// Predict returns the average of the user's last two runtimes, the single
// last runtime for a one-job history, or fallback for an empty history.
func (m *Last2) Predict(user int, fallback float64) float64 {
	h := m.history[user]
	switch len(h) {
	case 0:
		return fallback
	case 1:
		return h[0]
	default:
		return (h[len(h)-1] + h[len(h)-2]) / 2
	}
}

// PredictWithElapsed is the paper's elapsed-time enhancement of Last2
// (Section VI-A): given that the job has already run for elapsed seconds,
// predict from the user's historical runtimes that exceeded elapsed — the
// "if it passed this threshold it will likely reach the next one"
// observation from Figure 11. With no qualifying history it falls back to
// the plain prediction, floored at the elapsed time (the job cannot finish
// in the past).
func (m *Last2) PredictWithElapsed(user int, elapsed, fallback float64) float64 {
	h := m.history[user]
	// median of historical runtimes beyond the elapsed threshold
	var beyond []float64
	for _, r := range h {
		if r > elapsed {
			beyond = append(beyond, r)
		}
	}
	if len(beyond) > 0 {
		sort.Float64s(beyond)
		return beyond[len(beyond)/2]
	}
	p := m.Predict(user, fallback)
	if p < elapsed {
		p = elapsed
	}
	return p
}

// HistoryLen returns the number of observations for a user.
func (m *Last2) HistoryLen(user int) int { return len(m.history[user]) }

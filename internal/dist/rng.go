// Package dist provides a deterministic, seedable random number generator
// and the sampling distributions used by the synthetic workload generators.
//
// Everything here is intentionally self-contained (stdlib only) so that a
// trace generated with a given seed is bit-for-bit reproducible across runs
// and platforms. The generator is SplitMix64, which is fast, passes BigCrush,
// and has a trivially portable implementation.
package dist

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator based on SplitMix64.
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
	// cached spare normal variate for the Box-Muller/polar method
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1)
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1); it never returns 0,
// which makes it safe as input to log().
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Normal returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method with a cached spare.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the order of n elements in place via the swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent child generator from the current stream.
// Useful for giving each simulated user their own deterministic stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

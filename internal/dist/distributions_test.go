package dist

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func sampleMany(s Sampler, n int, seed uint64) []float64 {
	r := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func meanOf(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func medianOf(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[len(c)/2]
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.5}
	xs := sampleMany(d, 100000, 1)
	if m := meanOf(xs); math.Abs(m-2) > 0.05 {
		t.Fatalf("exponential mean %v want ~2", m)
	}
	for _, x := range xs[:1000] {
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	d := LogNormalFromMedian(5400, 1.0) // 1.5 hours
	xs := sampleMany(d, 100000, 2)
	med := medianOf(xs)
	if math.Abs(med-5400)/5400 > 0.05 {
		t.Fatalf("lognormal median %v want ~5400", med)
	}
	if math.Abs(d.Median()-5400) > 1e-6 {
		t.Fatalf("analytic median %v want 5400", d.Median())
	}
}

func TestLogNormalMean(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 0.5}
	want := math.Exp(0.125)
	xs := sampleMany(d, 200000, 3)
	if m := meanOf(xs); math.Abs(m-want)/want > 0.02 {
		t.Fatalf("lognormal mean %v want ~%v", m, want)
	}
}

func TestWeibullPositiveAndMedian(t *testing.T) {
	d := Weibull{K: 0.6, Lambda: 10}
	xs := sampleMany(d, 100000, 4)
	// analytic median = lambda * ln(2)^(1/k)
	want := 10 * math.Pow(math.Ln2, 1/0.6)
	med := medianOf(xs)
	if math.Abs(med-want)/want > 0.05 {
		t.Fatalf("weibull median %v want ~%v", med, want)
	}
	for _, x := range xs[:1000] {
		if x < 0 {
			t.Fatalf("negative weibull variate %v", x)
		}
	}
}

func TestParetoTail(t *testing.T) {
	d := Pareto{Xm: 100, Alpha: 1.5}
	xs := sampleMany(d, 100000, 5)
	for _, x := range xs[:1000] {
		if x < 100 {
			t.Fatalf("pareto variate %v below Xm", x)
		}
	}
	// P(X > 2*Xm) = (1/2)^alpha ~ 0.3536
	count := 0
	for _, x := range xs {
		if x > 200 {
			count++
		}
	}
	frac := float64(count) / float64(len(xs))
	if math.Abs(frac-math.Pow(0.5, 1.5)) > 0.01 {
		t.Fatalf("pareto tail fraction %v want ~%v", frac, math.Pow(0.5, 1.5))
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{Lo: 3, Hi: 9}
	xs := sampleMany(d, 50000, 6)
	for _, x := range xs {
		if x < 3 || x >= 9 {
			t.Fatalf("uniform variate %v outside [3,9)", x)
		}
	}
	if m := meanOf(xs); math.Abs(m-6) > 0.05 {
		t.Fatalf("uniform mean %v want ~6", m)
	}
}

func TestGammaMean(t *testing.T) {
	d := Gamma{Alpha: 3, Beta: 0.5} // mean = 6
	xs := sampleMany(d, 100000, 7)
	if m := meanOf(xs); math.Abs(m-6)/6 > 0.03 {
		t.Fatalf("gamma mean %v want ~6", m)
	}
}

func TestGammaSmallShape(t *testing.T) {
	d := Gamma{Alpha: 0.5, Beta: 1} // mean = 0.5
	xs := sampleMany(d, 200000, 8)
	if m := meanOf(xs); math.Abs(m-0.5)/0.5 > 0.05 {
		t.Fatalf("gamma(0.5,1) mean %v want ~0.5", m)
	}
	for _, x := range xs[:1000] {
		if x < 0 {
			t.Fatalf("negative gamma variate %v", x)
		}
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	d := TruncatedNormal{Mean: 0, Stddev: 5, Lo: -1, Hi: 1}
	xs := sampleMany(d, 20000, 9)
	for _, x := range xs {
		if x < -1 || x > 1 {
			t.Fatalf("truncated normal variate %v outside [-1,1]", x)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		d := Poisson{Lambda: lambda}
		r := NewRNG(uint64(lambda*1000) + 1)
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += d.SampleInt(r)
		}
		m := float64(sum) / n
		if math.Abs(m-lambda)/lambda > 0.05 {
			t.Fatalf("poisson(%v) mean %v", lambda, m)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	d := Poisson{Lambda: 0}
	if got := d.SampleInt(NewRNG(1)); got != 0 {
		t.Fatalf("Poisson(0) sample = %d, want 0", got)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.5)
	r := NewRNG(10)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		rank := z.SampleRank(r)
		if rank < 1 || rank > 100 {
			t.Fatalf("zipf rank %d out of [1,100]", rank)
		}
		counts[rank]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Fatalf("zipf counts not decreasing: %d %d %d", counts[1], counts[2], counts[5])
	}
	// rank 1 mass for s=1.5 over N=100 is about 1/zeta ~ 0.385
	frac := float64(counts[1]) / n
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("zipf rank-1 mass %v out of expected band", frac)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		[]float64{0.8, 0.2},
		[]Sampler{Constant{V: 1}, Constant{V: 100}},
	)
	r := NewRNG(11)
	ones := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("mixture component-1 fraction %v want ~0.8", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]float64{1}, []Sampler{Constant{}, Constant{}}) },
		func() { NewMixture([]float64{-1, 2}, []Sampler{Constant{}, Constant{}}) },
		func() { NewMixture([]float64{0, 0}, []Sampler{Constant{}, Constant{}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCategoricalDistribution(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 7})
	r := NewRNG(12)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.SampleIndex(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("categorical index %d frac %v want ~%v", i, got, want)
		}
	}
}

func TestClamped(t *testing.T) {
	d := Clamped{S: Constant{V: 1000}, Lo: 0, Hi: 10}
	if got := d.Sample(NewRNG(1)); got != 10 {
		t.Fatalf("clamped high: got %v want 10", got)
	}
	d2 := Clamped{S: Constant{V: -5}, Lo: 0, Hi: 10}
	if got := d2.Sample(NewRNG(1)); got != 0 {
		t.Fatalf("clamped low: got %v want 0", got)
	}
	d3 := Clamped{S: Constant{V: 5}, Lo: 0, Hi: 10}
	if got := d3.Sample(NewRNG(1)); got != 5 {
		t.Fatalf("clamped passthrough: got %v want 5", got)
	}
}

// Property: every sampler produces finite values for arbitrary seeds.
func TestSamplersFinitePropertyQuick(t *testing.T) {
	samplers := []Sampler{
		Exponential{Rate: 1},
		LogNormal{Mu: 2, Sigma: 1.5},
		Weibull{K: 0.7, Lambda: 30},
		Pareto{Xm: 1, Alpha: 1.1},
		Gamma{Alpha: 2, Beta: 1},
		Uniform{Lo: 0, Hi: 1},
		TruncatedNormal{Mean: 0, Stddev: 1, Lo: -3, Hi: 3},
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for _, s := range samplers {
			for i := 0; i < 20; i++ {
				x := s.Sample(r)
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf always returns ranks within [1, N].
func TestZipfRangePropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		z := NewZipf(n, 1.2)
		r := NewRNG(seed)
		for i := 0; i < 30; i++ {
			rank := z.SampleRank(r)
			if rank < 1 || rank > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 || seen[k] > 12000 {
			t.Fatalf("Intn(6) value %d count %d far from uniform 10000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

// Property: Intn(n) is always in [0, n) for any positive n.
func TestIntnPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 is always in [0,1) regardless of seed.
func TestFloat64PropertyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			u := r.Float64()
			if u < 0 || u >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

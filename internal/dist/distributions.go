package dist

import (
	"fmt"
	"math"
	"sort"
)

// Sampler draws float64 variates from some distribution.
type Sampler interface {
	// Sample returns one variate using rng as the randomness source.
	Sample(rng *RNG) float64
}

// Exponential is an exponential distribution with the given rate (lambda).
type Exponential struct {
	Rate float64 // events per unit time; mean is 1/Rate
}

// Sample returns an exponential variate.
func (d Exponential) Sample(rng *RNG) float64 {
	return -math.Log(rng.Float64Open()) / d.Rate
}

// Mean returns the distribution mean 1/Rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// LogNormal is a log-normal distribution: exp(N(Mu, Sigma^2)).
// Mu and Sigma are the mean and stddev of the underlying normal (log scale).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample returns a log-normal variate.
func (d LogNormal) Sample(rng *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.Normal())
}

// Median returns exp(Mu), the distribution median.
func (d LogNormal) Median() float64 { return math.Exp(d.Mu) }

// Mean returns exp(Mu + Sigma^2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// LogNormalFromMedian builds a LogNormal with the given median and log-scale
// spread sigma. Convenient for calibrating runtimes to a reported median.
func LogNormalFromMedian(median, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Weibull is a Weibull distribution with shape K and scale Lambda.
// K < 1 gives heavy-tailed, bursty inter-arrival times typical of job
// submission processes.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// Sample returns a Weibull variate via inverse transform.
func (d Weibull) Sample(rng *RNG) float64 {
	return d.Lambda * math.Pow(-math.Log(rng.Float64Open()), 1/d.K)
}

// Pareto is a Pareto (power-law) distribution with minimum Xm and tail
// exponent Alpha. Used for the extreme upper tail of DL training runtimes.
type Pareto struct {
	Xm    float64 // minimum (scale)
	Alpha float64 // tail index; smaller is heavier
}

// Sample returns a Pareto variate via inverse transform.
func (d Pareto) Sample(rng *RNG) float64 {
	return d.Xm / math.Pow(rng.Float64Open(), 1/d.Alpha)
}

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample returns a uniform variate on [Lo, Hi).
func (d Uniform) Sample(rng *RNG) float64 {
	return d.Lo + (d.Hi-d.Lo)*rng.Float64()
}

// Gamma is a gamma distribution with shape Alpha and rate Beta.
type Gamma struct {
	Alpha float64 // shape
	Beta  float64 // rate (1/scale)
}

// Sample returns a gamma variate using the Marsaglia-Tsang method.
func (d Gamma) Sample(rng *RNG) float64 {
	alpha := d.Alpha
	boost := 1.0
	if alpha < 1 {
		// boost via the alpha+1 trick
		boost = math.Pow(rng.Float64Open(), 1/alpha)
		alpha++
	}
	dd := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*dd)
	for {
		var x, v float64
		for {
			x = rng.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64Open()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return boost * dd * v / d.Beta
		}
	}
}

// TruncatedNormal is a normal distribution clipped (by rejection) to
// [Lo, Hi]. Degenerates gracefully when the window is wide.
type TruncatedNormal struct {
	Mean, Stddev float64
	Lo, Hi       float64
}

// Sample returns a truncated normal variate. Falls back to clamping after
// many rejections to stay O(1) for pathological windows.
func (d TruncatedNormal) Sample(rng *RNG) float64 {
	for i := 0; i < 64; i++ {
		x := d.Mean + d.Stddev*rng.Normal()
		if x >= d.Lo && x <= d.Hi {
			return x
		}
	}
	x := d.Mean + d.Stddev*rng.Normal()
	return math.Min(math.Max(x, d.Lo), d.Hi)
}

// Poisson samples counts from a Poisson distribution with mean Lambda.
type Poisson struct {
	Lambda float64
}

// SampleInt returns a Poisson-distributed count. Uses Knuth's method for
// small lambda and a normal approximation beyond 50 where Knuth's product
// underflows.
func (d Poisson) SampleInt(rng *RNG) int {
	if d.Lambda <= 0 {
		return 0
	}
	if d.Lambda > 50 {
		x := d.Lambda + math.Sqrt(d.Lambda)*rng.Normal()
		if x < 0 {
			return 0
		}
		return int(x + 0.5)
	}
	l := math.Exp(-d.Lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64Open()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws integers in [1, N] with probability proportional to 1/rank^S.
// It models the heavy skew of per-user job-template popularity.
type Zipf struct {
	N int     // number of ranks
	S float64 // exponent; larger is more skewed
	// cdf is the precomputed cumulative mass, built lazily.
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf distribution over [1, N].
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("dist: Zipf with non-positive N")
	}
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// SampleRank returns a rank in [1, N].
func (z *Zipf) SampleRank(rng *RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.N {
		i = z.N - 1
	}
	return i + 1
}

// Mixture samples from a weighted set of component distributions, e.g. a
// short-debug-job mode plus a long-production-job mode.
type Mixture struct {
	Weights    []float64
	Components []Sampler
	cum        []float64
}

// NewMixture builds a mixture; weights are normalized internally.
func NewMixture(weights []float64, components []Sampler) *Mixture {
	if len(weights) != len(components) || len(weights) == 0 {
		panic("dist: mixture weights/components mismatch")
	}
	m := &Mixture{Weights: weights, Components: components}
	m.cum = make([]float64, len(weights))
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("dist: zero total mixture weight")
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		m.cum[i] = acc
	}
	return m
}

// Sample draws a component by weight and samples from it.
func (m *Mixture) Sample(rng *RNG) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(rng)
}

// Categorical draws an index in [0, len(weights)) with the given weights.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical distribution; weights are normalized.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("dist: empty categorical")
	}
	c := &Categorical{cum: make([]float64, len(weights))}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("dist: negative categorical weight %v", w))
		}
		sum += w
	}
	if sum == 0 {
		panic("dist: zero total categorical weight")
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		c.cum[i] = acc
	}
	return c
}

// SampleIndex returns an index distributed according to the weights.
func (c *Categorical) SampleIndex(rng *RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.cum) {
		i = len(c.cum) - 1
	}
	return i
}

// Constant is a degenerate distribution that always returns V.
type Constant struct {
	V float64
}

// Sample returns the constant value.
func (d Constant) Sample(_ *RNG) float64 { return d.V }

// Clamped wraps a Sampler and clips its output to [Lo, Hi].
type Clamped struct {
	S      Sampler
	Lo, Hi float64
}

// Sample draws from the wrapped sampler and clamps the result.
func (d Clamped) Sample(rng *RNG) float64 {
	x := d.S.Sample(rng)
	if x < d.Lo {
		return d.Lo
	}
	if x > d.Hi {
		return d.Hi
	}
	return x
}

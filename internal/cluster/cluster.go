// Package cluster models the compute resource a scheduler allocates from:
// a pool of interchangeable cores (CPU cores or GPUs) optionally partitioned
// into isolated virtual clusters (VCs), as in Microsoft's Philly. It also
// accumulates the busy core-seconds needed for utilization reporting.
//
// The model is deliberately count-based (no topology): the paper's
// simulator, SchedGym, schedules against core counts, and all of the
// paper's metrics (utilization, wait, bsld, violations) depend only on
// counts and times.
//
// Capacity is not necessarily constant: the fault-injection layer
// (internal/fault) drains cores during outages and restores them at repair
// time via Drain/Restore. Drained cores are neither free nor busy; the
// scheduler sees them only as a reduced free count, so the allocation hot
// path (CanAllocate/Free) is untouched by the fault machinery.
package cluster

import "fmt"

// Cluster tracks free capacity per partition and the utilization integral.
type Cluster struct {
	total int   // total cores across all partitions
	free  []int // free cores per partition (len >= 1)
	caps  []int // capacity per partition
	down  []int // cores drained by capacity faults, per partition
	downT int   // sum of down

	// Utilization accounting: busyCoreSeconds integrates (busy cores) dt.
	lastTime        float64
	busyCoreSeconds float64
}

// New creates a single-partition cluster with the given core count. It
// returns an error when the count is not positive.
func New(totalCores int) (*Cluster, error) {
	return NewPartitioned([]int{totalCores})
}

// NewPartitioned creates a cluster with one isolated partition per entry of
// capacities. Jobs bound to partition i can only use capacity i; jobs with
// partition -1 may use the single partition 0 (only valid for unpartitioned
// clusters). It returns an error when there are no partitions or any
// capacity is not positive.
func NewPartitioned(capacities []int) (*Cluster, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("cluster: no partitions")
	}
	c := &Cluster{
		free: append([]int(nil), capacities...),
		caps: append([]int(nil), capacities...),
		down: make([]int, len(capacities)),
	}
	for i, cap := range capacities {
		if cap <= 0 {
			return nil, fmt.Errorf("cluster: partition %d has non-positive capacity %d", i, cap)
		}
		c.total += cap
	}
	return c, nil
}

// EvenPartitions splits totalCores into n near-equal partitions (Philly's
// 14 virtual clusters). Remainders go to the first partitions.
func EvenPartitions(totalCores, n int) []int {
	if n <= 0 {
		n = 1
	}
	base := totalCores / n
	rem := totalCores % n
	out := make([]int, n)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Reset restores the cluster to its initial state — every core free, no
// drained capacity, and the utilization integral cleared — so a cached
// cluster can serve repeated simulation runs (sim.Runner) without
// reallocation.
func (c *Cluster) Reset() {
	copy(c.free, c.caps)
	for i := range c.down {
		c.down[i] = 0
	}
	c.downT = 0
	c.lastTime = 0
	c.busyCoreSeconds = 0
}

// Clone returns an independent copy of the cluster, including the
// utilization integral, so a paused simulation can be forked (sim's
// checkpoint/what-if machinery) without the copies sharing any state.
func (c *Cluster) Clone() *Cluster {
	d := *c
	d.free = append([]int(nil), c.free...)
	d.caps = append([]int(nil), c.caps...)
	d.down = append([]int(nil), c.down...)
	return &d
}

// Total returns the total core count.
func (c *Cluster) Total() int { return c.total }

// Partitions returns the number of partitions.
func (c *Cluster) Partitions() int { return len(c.caps) }

// Capacity returns the nominal capacity of partition p (p = -1 means
// partition 0), ignoring drained cores.
func (c *Cluster) Capacity(p int) int {
	return c.caps[c.norm(p)]
}

// EffectiveCapacity returns the capacity of partition p currently usable by
// the scheduler: nominal capacity minus drained cores.
func (c *Cluster) EffectiveCapacity(p int) int {
	i := c.norm(p)
	return c.caps[i] - c.down[i]
}

// DownCores returns the drained core count of partition p.
func (c *Cluster) DownCores(p int) int {
	return c.down[c.norm(p)]
}

// Free returns the free cores in partition p (p = -1 means partition 0).
func (c *Cluster) Free(p int) int {
	return c.free[c.norm(p)]
}

// FreeTotal returns free cores across all partitions.
func (c *Cluster) FreeTotal() int {
	sum := 0
	for _, f := range c.free {
		sum += f
	}
	return sum
}

// Busy returns the busy (job-occupied) core count across all partitions.
// Drained cores are neither free nor busy.
func (c *Cluster) Busy() int { return c.total - c.downT - c.FreeTotal() }

// norm maps the -1 alias to partition 0 and bounds-checks p. The panic
// formatting lives in badPartition so norm stays within the inlining budget:
// Free and CanAllocate sit on the simulator's per-event hot path, and an
// out-of-line norm call per query is measurable there. Out-of-range
// partitions stay a panic here (an internal invariant violation, not an
// input error): the public constructors and the cmd-level flag validation
// reject bad shapes before any hot-path query can see them.
func (c *Cluster) norm(p int) int {
	if p < 0 {
		return 0
	}
	if p >= len(c.caps) {
		c.badPartition(p)
	}
	return p
}

func (c *Cluster) badPartition(p int) {
	panic(fmt.Sprintf("cluster: partition %d out of range (%d partitions)", p, len(c.caps)))
}

// CanAllocate reports whether n cores are currently free in partition p.
func (c *Cluster) CanAllocate(p, n int) bool {
	return n <= c.free[c.norm(p)]
}

// Allocate takes n cores from partition p at time now. It returns an error
// (and changes nothing) when the partition lacks capacity.
func (c *Cluster) Allocate(now float64, p, n int) error {
	i := c.norm(p)
	if n <= 0 {
		return fmt.Errorf("cluster: allocate non-positive count %d", n)
	}
	if n > c.free[i] {
		return fmt.Errorf("cluster: partition %d has %d free, need %d", i, c.free[i], n)
	}
	c.advance(now)
	c.free[i] -= n
	return nil
}

// Release returns n cores to partition p at time now. It returns an error
// when the release would exceed the partition's usable capacity.
func (c *Cluster) Release(now float64, p, n int) error {
	i := c.norm(p)
	if n <= 0 {
		return fmt.Errorf("cluster: release non-positive count %d", n)
	}
	if c.free[i]+n > c.caps[i]-c.down[i] {
		return fmt.Errorf("cluster: releasing %d would exceed partition %d capacity", n, i)
	}
	c.advance(now)
	c.free[i] += n
	return nil
}

// Drain marks n currently-free cores of partition p as down at time now (a
// capacity fault). The caller must have freed enough cores first — by
// interrupting running jobs if necessary — so a drain never overdraws the
// free pool.
func (c *Cluster) Drain(now float64, p, n int) error {
	i := c.norm(p)
	if n <= 0 {
		return fmt.Errorf("cluster: drain non-positive count %d", n)
	}
	if n > c.free[i] {
		return fmt.Errorf("cluster: draining %d but partition %d has only %d free", n, i, c.free[i])
	}
	c.advance(now)
	c.free[i] -= n
	c.down[i] += n
	c.downT += n
	return nil
}

// Restore returns n previously-drained cores of partition p to service at
// time now (outage repair).
func (c *Cluster) Restore(now float64, p, n int) error {
	i := c.norm(p)
	if n <= 0 {
		return fmt.Errorf("cluster: restore non-positive count %d", n)
	}
	if n > c.down[i] {
		return fmt.Errorf("cluster: restoring %d but partition %d has only %d down", n, i, c.down[i])
	}
	c.advance(now)
	c.down[i] -= n
	c.downT -= n
	c.free[i] += n
	return nil
}

// advance integrates busy core-seconds up to now.
func (c *Cluster) advance(now float64) {
	if now > c.lastTime {
		c.busyCoreSeconds += float64(c.Busy()) * (now - c.lastTime)
		c.lastTime = now
	}
}

// Utilization returns busy core-seconds divided by total nominal capacity
// over [0, now] — the paper's "util" metric. The denominator stays nominal
// under capacity faults, so drained capacity shows up as lost utilization.
// It finalizes the integral at now.
func (c *Cluster) Utilization(now float64) float64 {
	c.advance(now)
	if now <= 0 {
		return 0
	}
	return c.busyCoreSeconds / (float64(c.total) * now)
}

// BusyCoreSeconds returns the utilization integral so far (through the last
// advance).
func (c *Cluster) BusyCoreSeconds() float64 { return c.busyCoreSeconds }

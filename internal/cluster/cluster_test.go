package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	c := New(100)
	if c.Total() != 100 || c.Partitions() != 1 || c.Free(-1) != 100 || c.Capacity(0) != 100 {
		t.Fatalf("bad initial state: %+v", c)
	}
	if c.Busy() != 0 || c.FreeTotal() != 100 {
		t.Fatal("fresh cluster should be idle")
	}
}

func TestAllocateRelease(t *testing.T) {
	c := New(10)
	if err := c.Allocate(0, -1, 4); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 6 || c.Busy() != 4 {
		t.Fatalf("free=%d busy=%d", c.Free(0), c.Busy())
	}
	if err := c.Allocate(1, 0, 7); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := c.Release(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 10 {
		t.Fatalf("free after release = %d", c.Free(0))
	}
	if err := c.Release(3, 0, 1); err == nil {
		t.Fatal("over-release accepted")
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	c := New(10)
	if err := c.Allocate(0, 0, 0); err == nil {
		t.Fatal("zero allocation accepted")
	}
	if err := c.Release(0, 0, -1); err == nil {
		t.Fatal("negative release accepted")
	}
}

func TestPartitionIsolation(t *testing.T) {
	c := NewPartitioned([]int{5, 5})
	if err := c.Allocate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	// partition 0 is full; partition 1 still has room
	if c.CanAllocate(0, 1) {
		t.Fatal("partition 0 should be full")
	}
	if !c.CanAllocate(1, 5) {
		t.Fatal("partition 1 should be free")
	}
	if err := c.Allocate(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if c.FreeTotal() != 2 || c.Busy() != 8 {
		t.Fatalf("free=%d busy=%d", c.FreeTotal(), c.Busy())
	}
}

func TestPartitionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Free(3)
}

func TestBadConstruction(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPartitioned(nil) },
		func() { NewPartitioned([]int{5, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEvenPartitions(t *testing.T) {
	p := EvenPartitions(10, 3)
	if p[0] != 4 || p[1] != 3 || p[2] != 3 {
		t.Fatalf("partitions = %v", p)
	}
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("partition sum %d want 10", sum)
	}
	if got := EvenPartitions(10, 0); len(got) != 1 || got[0] != 10 {
		t.Fatalf("n=0 fallback wrong: %v", got)
	}
}

func TestUtilizationIntegral(t *testing.T) {
	c := New(10)
	// 5 cores busy from t=0 to t=10, idle from 10 to 20 -> util over 20s = 0.25
	if err := c.Allocate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(10, 0, 5); err != nil {
		t.Fatal(err)
	}
	got := c.Utilization(20)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("utilization %v want 0.25", got)
	}
	if c.Utilization(0) != 0 {
		// now<=0 guard — utilization at t=0 should be 0 not NaN
		t.Fatal("utilization at t=0 should be 0")
	}
}

func TestUtilizationFullLoad(t *testing.T) {
	c := New(4)
	if err := c.Allocate(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full-load utilization %v want 1", got)
	}
}

// Property: any sequence of valid allocations and releases conserves
// capacity: free + busy == total, 0 <= free <= capacity per partition.
func TestConservationPropertyQuick(t *testing.T) {
	type op struct {
		Alloc bool
		Part  uint8
		N     uint8
	}
	f := func(ops []op) bool {
		c := NewPartitioned([]int{8, 8, 8})
		now := 0.0
		for _, o := range ops {
			now += 1
			p := int(o.Part) % 3
			n := int(o.N)%8 + 1
			if o.Alloc {
				_ = c.Allocate(now, p, n) // errors allowed; must not corrupt
			} else {
				_ = c.Release(now, p, n)
			}
			if c.FreeTotal()+c.Busy() != c.Total() {
				return false
			}
			for i := 0; i < 3; i++ {
				if c.Free(i) < 0 || c.Free(i) > c.Capacity(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization is always within [0, 1].
func TestUtilizationBoundedPropertyQuick(t *testing.T) {
	f := func(steps []uint8) bool {
		c := New(16)
		now := 0.0
		allocated := 0
		for _, s := range steps {
			now += float64(s%10) + 0.5
			n := int(s)%5 + 1
			if allocated+n <= 16 && s%2 == 0 {
				if c.Allocate(now, 0, n) == nil {
					allocated += n
				}
			} else if allocated >= n {
				if c.Release(now, 0, n) == nil {
					allocated -= n
				}
			}
			u := c.Utilization(now)
			if u < 0 || u > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

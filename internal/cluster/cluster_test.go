package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

// mustNew builds a cluster or fails the test.
func mustNew(t *testing.T, capacities ...int) *Cluster {
	t.Helper()
	c, err := NewPartitioned(capacities)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewAndAccessors(t *testing.T) {
	c := mustNew(t, 100)
	if c.Total() != 100 || c.Partitions() != 1 || c.Free(-1) != 100 || c.Capacity(0) != 100 {
		t.Fatalf("bad initial state: %+v", c)
	}
	if c.Busy() != 0 || c.FreeTotal() != 100 {
		t.Fatal("fresh cluster should be idle")
	}
	if c.EffectiveCapacity(0) != 100 || c.DownCores(0) != 0 {
		t.Fatal("fresh cluster should have no drained capacity")
	}
}

func TestAllocateRelease(t *testing.T) {
	c := mustNew(t, 10)
	if err := c.Allocate(0, -1, 4); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 6 || c.Busy() != 4 {
		t.Fatalf("free=%d busy=%d", c.Free(0), c.Busy())
	}
	if err := c.Allocate(1, 0, 7); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := c.Release(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 10 {
		t.Fatalf("free after release = %d", c.Free(0))
	}
	if err := c.Release(3, 0, 1); err == nil {
		t.Fatal("over-release accepted")
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	c := mustNew(t, 10)
	if err := c.Allocate(0, 0, 0); err == nil {
		t.Fatal("zero allocation accepted")
	}
	if err := c.Release(0, 0, -1); err == nil {
		t.Fatal("negative release accepted")
	}
}

func TestPartitionIsolation(t *testing.T) {
	c := mustNew(t, 5, 5)
	if err := c.Allocate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	// partition 0 is full; partition 1 still has room
	if c.CanAllocate(0, 1) {
		t.Fatal("partition 0 should be full")
	}
	if !c.CanAllocate(1, 5) {
		t.Fatal("partition 1 should be free")
	}
	if err := c.Allocate(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if c.FreeTotal() != 2 || c.Busy() != 8 {
		t.Fatalf("free=%d busy=%d", c.FreeTotal(), c.Busy())
	}
}

func TestPartitionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mustNew(t, 10).Free(3)
}

func TestBadConstructionErrors(t *testing.T) {
	if _, err := NewPartitioned(nil); err == nil {
		t.Fatal("empty partition list accepted")
	}
	if _, err := NewPartitioned([]int{5, 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("negative core count accepted")
	}
}

func TestDrainRestore(t *testing.T) {
	c := mustNew(t, 10)
	if err := c.Allocate(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 3 || c.DownCores(0) != 3 || c.EffectiveCapacity(0) != 7 || c.Busy() != 4 {
		t.Fatalf("after drain: free=%d down=%d eff=%d busy=%d",
			c.Free(0), c.DownCores(0), c.EffectiveCapacity(0), c.Busy())
	}
	if c.Capacity(0) != 10 {
		t.Fatal("nominal capacity changed by drain")
	}
	// Draining more than is free must fail.
	if err := c.Drain(1, 0, 4); err == nil {
		t.Fatal("overdraw drain accepted")
	}
	// A release may not exceed the effective capacity while cores are down.
	if err := c.Release(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(2, 0, 1); err == nil {
		t.Fatal("release into drained capacity accepted")
	}
	if err := c.Restore(3, 0, 3); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 10 || c.DownCores(0) != 0 || c.EffectiveCapacity(0) != 10 {
		t.Fatalf("after restore: free=%d down=%d", c.Free(0), c.DownCores(0))
	}
	if err := c.Restore(3, 0, 1); err == nil {
		t.Fatal("restore of never-drained cores accepted")
	}
	if err := c.Drain(4, 0, 0); err == nil {
		t.Fatal("zero drain accepted")
	}
	if err := c.Restore(4, 0, -1); err == nil {
		t.Fatal("negative restore accepted")
	}
}

func TestDrainUtilization(t *testing.T) {
	c := mustNew(t, 10)
	// 5 busy over [0,10); at t=10 drain 5 (the idle half). Busy stays 5
	// until release at t=20; util over [0,20] = (5*20)/(10*20) = 0.5.
	if err := c.Allocate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(10, 0, 5); err != nil {
		t.Fatal(err)
	}
	if c.Busy() != 5 {
		t.Fatalf("busy=%d after drain, want 5 (drained cores are not busy)", c.Busy())
	}
	if err := c.Release(20, 0, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(20); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization %v want 0.5", got)
	}
}

func TestResetClearsDrain(t *testing.T) {
	c := mustNew(t, 10)
	if err := c.Drain(1, 0, 4); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Free(0) != 10 || c.DownCores(0) != 0 || c.Busy() != 0 || c.BusyCoreSeconds() != 0 {
		t.Fatalf("reset left state behind: %+v", c)
	}
}

func TestEvenPartitions(t *testing.T) {
	p := EvenPartitions(10, 3)
	if p[0] != 4 || p[1] != 3 || p[2] != 3 {
		t.Fatalf("partitions = %v", p)
	}
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("partition sum %d want 10", sum)
	}
	if got := EvenPartitions(10, 0); len(got) != 1 || got[0] != 10 {
		t.Fatalf("n=0 fallback wrong: %v", got)
	}
}

func TestUtilizationIntegral(t *testing.T) {
	c := mustNew(t, 10)
	// 5 cores busy from t=0 to t=10, idle from 10 to 20 -> util over 20s = 0.25
	if err := c.Allocate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(10, 0, 5); err != nil {
		t.Fatal(err)
	}
	got := c.Utilization(20)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("utilization %v want 0.25", got)
	}
	if c.Utilization(0) != 0 {
		// now<=0 guard — utilization at t=0 should be 0 not NaN
		t.Fatal("utilization at t=0 should be 0")
	}
}

func TestUtilizationFullLoad(t *testing.T) {
	c := mustNew(t, 4)
	if err := c.Allocate(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full-load utilization %v want 1", got)
	}
}

// Property: any sequence of valid allocations, releases, drains, and
// restores conserves capacity: free + busy + down == total, with every
// per-partition count within [0, capacity].
func TestConservationPropertyQuick(t *testing.T) {
	type op struct {
		Kind uint8
		Part uint8
		N    uint8
	}
	f := func(ops []op) bool {
		c := mustNew(t, 8, 8, 8)
		now := 0.0
		for _, o := range ops {
			now += 1
			p := int(o.Part) % 3
			n := int(o.N)%8 + 1
			switch o.Kind % 4 { // errors allowed; must not corrupt
			case 0:
				_ = c.Allocate(now, p, n)
			case 1:
				_ = c.Release(now, p, n)
			case 2:
				_ = c.Drain(now, p, n)
			case 3:
				_ = c.Restore(now, p, n)
			}
			down := 0
			for i := 0; i < 3; i++ {
				down += c.DownCores(i)
				if c.Free(i) < 0 || c.Free(i) > c.Capacity(i) {
					return false
				}
				if c.DownCores(i) < 0 || c.DownCores(i) > c.Capacity(i) {
					return false
				}
				if c.Free(i) > c.EffectiveCapacity(i) {
					return false
				}
			}
			if c.FreeTotal()+c.Busy()+down != c.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization is always within [0, 1].
func TestUtilizationBoundedPropertyQuick(t *testing.T) {
	f := func(steps []uint8) bool {
		c := mustNew(t, 16)
		now := 0.0
		allocated := 0
		for _, s := range steps {
			now += float64(s%10) + 0.5
			n := int(s)%5 + 1
			if allocated+n <= 16 && s%2 == 0 {
				if c.Allocate(now, 0, n) == nil {
					allocated += n
				}
			} else if allocated >= n {
				if c.Release(now, 0, n) == nil {
					allocated -= n
				}
			}
			u := c.Utilization(now)
			if u < 0 || u > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if (&Config{Seed: 7, Recovery: RecoveryRequeue, RetryCap: 3}).Enabled() {
		t.Error("config with only recovery knobs reports enabled")
	}
	for _, c := range []*Config{
		{Outages: []Outage{{Part: 0, Start: 1, Duration: 1, Cores: 1}}},
		{MTBF: 3600},
		{InterruptProb: 0.1},
		{Kills: []JobKill{{Job: 0, After: 5}}},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v should be enabled", c)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Config{
		{Outages: []Outage{{Part: -1, Start: 0, Duration: 1, Cores: 1}}},
		{Outages: []Outage{{Part: 2, Start: 0, Duration: 1, Cores: 1}}}, // 2 parts
		{Outages: []Outage{{Part: 0, Start: -1, Duration: 1, Cores: 1}}},
		{Outages: []Outage{{Part: 0, Start: 0, Duration: 0, Cores: 1}}},
		{Outages: []Outage{{Part: 0, Start: 0, Duration: 1, Cores: 0}}},
		{MTBF: math.Inf(1)},
		{MTBF: -1},
		{OutageFrac: 1.5},
		{InterruptProb: 1},
		{InterruptProb: -0.25},
		{Kills: []JobKill{{Job: -1, After: 1}}},
		{Kills: []JobKill{{Job: 0, After: 0}}},
		{RetryCap: -1},
		{Recovery: RecoveryCheckpoint},
		{Recovery: Recovery(99)},
	}
	for i, c := range bad {
		if err := c.Validate(2); err == nil {
			t.Errorf("bad config %d (%+v) validated", i, c)
		}
	}
	good := &Config{
		Seed:          42,
		Outages:       []Outage{{Part: 1, Start: 10, Duration: 60, Cores: 4}},
		MTBF:          86400,
		MTTR:          3600,
		OutageFrac:    0.25,
		InterruptProb: 0.05,
		Kills:         []JobKill{{Job: 3, After: 30}},
		Recovery:      RecoveryCheckpoint, RetryCap: 2, CheckpointInterval: 600,
	}
	if err := good.Validate(2); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCompileScripted(t *testing.T) {
	c := &Config{Outages: []Outage{
		{Part: 1, Start: 100, Duration: 50, Cores: 8},
		{Part: 0, Start: 100, Duration: 25, Cores: 4},
		{Part: 0, Start: 125, Duration: 10, Cores: 2},
	}}
	sched, err := c.Compile([]int{16, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Outages != 3 || len(sched.Events) != 6 {
		t.Fatalf("got %d outages, %d events", sched.Outages, len(sched.Events))
	}
	// Sorted by time; at t=125 the restore (outage 1 up) precedes the drain
	// (outage 2 down).
	for i := 1; i < len(sched.Events); i++ {
		a, b := sched.Events[i-1], sched.Events[i]
		if a.Time > b.Time {
			t.Fatalf("events out of order: %+v before %+v", a, b)
		}
		if a.Time == b.Time && a.Down && !b.Down {
			t.Fatalf("drain before restore at t=%v", a.Time)
		}
	}
	// Down/up events pair by ID with matching Pair times.
	seen := map[int][2]int{}
	for i, e := range sched.Events {
		s := seen[e.ID]
		if e.Down {
			s[0]++
		} else {
			s[1]++
		}
		seen[e.ID] = s
		_ = i
	}
	for id, s := range seen {
		if s != [2]int{1, 1} {
			t.Errorf("outage %d has %d down / %d up events", id, s[0], s[1])
		}
	}
	// Cores beyond partition capacity are rejected.
	over := &Config{Outages: []Outage{{Part: 0, Start: 0, Duration: 1, Cores: 32}}}
	if _, err := over.Compile([]int{16}, 0); err == nil {
		t.Error("oversized outage compiled")
	}
}

func TestCompileGeneratedDeterministic(t *testing.T) {
	c := &Config{Seed: 9, MTBF: 7200, MTTR: 1800, OutageFrac: 0.2}
	caps := []int{64, 32}
	a, err := c.Compile(caps, 86400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Compile(caps, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config compiled to different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("MTBF model generated no outages over a day with 2h MTBF")
	}
	for _, e := range a.Events {
		if e.Cores <= 0 || e.Cores > caps[e.Part] {
			t.Errorf("event cores %d outside (0, %d]", e.Cores, caps[e.Part])
		}
		if e.Time < 0 {
			t.Errorf("event at negative time %v", e.Time)
		}
	}
	// A different seed must give a different timeline.
	c2 := &Config{Seed: 10, MTBF: 7200, MTTR: 1800, OutageFrac: 0.2}
	d, err := c2.Compile(caps, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, d.Events) {
		t.Error("different seeds compiled to identical schedules")
	}
}

func TestInterruptCutDeterministicAndBounded(t *testing.T) {
	c := &Config{Seed: 123, InterruptProb: 0.5}
	hits := 0
	const n = 2000
	for job := 0; job < n; job++ {
		run := 100 + float64(job)
		cut, ok := c.InterruptCut(job, 0, run)
		cut2, ok2 := c.InterruptCut(job, 0, run)
		if cut != cut2 || ok != ok2 {
			t.Fatalf("job %d: draw not deterministic", job)
		}
		if ok {
			hits++
			if !(cut >= 0 && cut < run) {
				t.Fatalf("job %d: cut %v outside [0, %v)", job, cut, run)
			}
		}
	}
	// p=0.5 over 2000 draws: expect ~1000, allow wide slack.
	if hits < 800 || hits > 1200 {
		t.Errorf("interrupt rate %d/%d far from p=0.5", hits, n)
	}
	// Attempts draw independently.
	if a0, _ := c.InterruptCut(7, 0, 100); true {
		if a1, _ := c.InterruptCut(7, 1, 100); a0 == a1 && a0 != 0 {
			t.Error("attempt 0 and 1 drew the same cut")
		}
	}
	// Zero-length runs never interrupt.
	if _, ok := c.InterruptCut(1, 0, 0); ok {
		t.Error("zero-run attempt interrupted")
	}
}

func TestInterruptCutScripted(t *testing.T) {
	c := &Config{Kills: []JobKill{{Job: 4, After: 25}}}
	if cut, ok := c.InterruptCut(4, 0, 100); !ok || cut != 25 {
		t.Errorf("scripted kill: got (%v, %v), want (25, true)", cut, ok)
	}
	// The attempt ends naturally before the scripted point.
	if _, ok := c.InterruptCut(4, 0, 10); ok {
		t.Error("kill past the attempt's natural end still fired")
	}
	// Scripted kills only apply to the first attempt.
	if _, ok := c.InterruptCut(4, 1, 100); ok {
		t.Error("scripted kill fired on a retry")
	}
	// Other jobs are untouched.
	if _, ok := c.InterruptCut(5, 0, 100); ok {
		t.Error("kill fired on the wrong job")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cfgs := []*Config{
		{},
		{Seed: 99, MTBF: 7200.5, MTTR: 600, OutageFrac: 0.125, Horizon: 86400},
		{InterruptProb: 0.031415, Recovery: RecoveryRequeue, RetryCap: 3},
		{Recovery: RecoveryCheckpoint, CheckpointInterval: 900, InterruptProb: 0.1},
		{
			Outages: []Outage{{Part: 0, Start: 3600, Duration: 1800.25, Cores: 128}, {Part: 3, Start: 10, Duration: 5, Cores: 1}},
			Kills:   []JobKill{{Job: 17, After: 42.5}},
		},
	}
	for i, c := range cfgs {
		got, err := ParseSpec(c.Spec())
		if err != nil {
			t.Fatalf("config %d: reparse of %q failed: %v", i, c.Spec(), err)
		}
		want := c.Clone()
		if want.Outages == nil {
			want.Outages = []Outage{}
		}
		norm(got)
		norm(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("config %d: round trip changed %q:\n got %+v\nwant %+v", i, c.Spec(), got, want)
		}
	}
}

// norm maps empty slices to nil so DeepEqual compares contents only.
func norm(c *Config) {
	if len(c.Outages) == 0 {
		c.Outages = nil
	}
	if len(c.Kills) == 0 {
		c.Kills = nil
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"key",
		"mtbf=abc",
		"mtbf=-5",
		"pint=1.5",
		"recovery=sometimes",
		"down=1:2:3",
		"down=x:2:3:4",
		"kill=1",
		"retry=-2",
		"recovery=checkpoint", // missing ckpt
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
	for _, s := range []string{"", "off", "  "} {
		c, err := ParseSpec(s)
		if err != nil || c.Enabled() {
			t.Errorf("ParseSpec(%q) = (%+v, %v), want disabled config", s, c, err)
		}
	}
}

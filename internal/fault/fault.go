// Package fault is the simulator's deterministic fault-injection model:
// capacity outages (partition drains with repair times, from explicit
// scripted schedules or a seeded MTBF/MTTR process) and job faults
// (mid-run interruption of running jobs, from a seeded per-attempt status
// model or scripted kills), plus the recovery semantics applied when a job
// is interrupted.
//
// Everything here is a pure function of the Config: compiling the capacity
// schedule and drawing per-attempt interrupt points use counter-based
// splitmix64 streams keyed on (seed, partition) and (seed, job, attempt),
// never a shared RNG consumed in scheduling order. That is what lets the
// internal/check oracle — which visits jobs in a completely different
// order than the optimized simulator — reproduce a fault run exactly from
// the same Config.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Recovery selects what happens to a job whose attempt is interrupted.
type Recovery uint8

const (
	// RecoveryNone: the job is lost — it leaves the system as Failed and
	// every core-second of the attempt counts as wasted.
	RecoveryNone Recovery = iota
	// RecoveryRequeue: the job re-enters its partition's waiting queue and
	// restarts from zero, up to RetryCap retries; the interrupted attempt's
	// core-seconds are wasted.
	RecoveryRequeue
	// RecoveryCheckpoint: like RecoveryRequeue, but work completed up to
	// the last CheckpointInterval boundary is banked — the next attempt
	// runs only the remaining work, and the banked core-seconds count as
	// goodput (unless the job later fails terminally, which reclassifies
	// the banked credit as wasted).
	RecoveryCheckpoint

	numRecoveries = iota
)

var recoveryNames = [numRecoveries]string{"none", "requeue", "checkpoint"}

// String returns the recovery mode's spec name.
func (r Recovery) String() string {
	if int(r) < len(recoveryNames) {
		return recoveryNames[r]
	}
	return fmt.Sprintf("Recovery(%d)", int(r))
}

// ParseRecovery converts a spec name back to a Recovery.
func ParseRecovery(s string) (Recovery, error) {
	for i, n := range recoveryNames {
		if n == s {
			return Recovery(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown recovery %q (want none, requeue, or checkpoint)", s)
}

// Outage is one scripted capacity fault: Cores cores of partition Part are
// down (unusable) over [Start, Start+Duration).
type Outage struct {
	Part     int
	Start    float64
	Duration float64
	Cores    int
}

// JobKill is one scripted job fault: the job at submit-order index Job is
// interrupted After seconds into its first attempt (no effect when the
// attempt ends naturally before that).
type JobKill struct {
	Job   int
	After float64
}

// Config describes a fault-injection scenario. The zero value injects
// nothing (Enabled() == false) and is the pay-for-what-you-use default.
type Config struct {
	// Seed keys every random draw (outage generation, interrupt points).
	Seed uint64

	// Outages are explicit scripted capacity faults.
	Outages []Outage
	// MTBF > 0 additionally generates outages per partition as a renewal
	// process: exponential up-time with mean MTBF seconds, then an outage
	// of exponential duration with mean MTTR seconds (default MTBF/10)
	// taking OutageFrac of the partition's capacity (default 0.1), over
	// [0, Horizon) (default: the trace's span, supplied at Compile time).
	MTBF       float64
	MTTR       float64
	OutageFrac float64
	Horizon    float64

	// InterruptProb is the per-attempt probability that a running attempt
	// is interrupted partway (uniform point in the attempt's runtime).
	InterruptProb float64
	// Kills are explicit scripted job faults.
	Kills []JobKill

	// Recovery, RetryCap, and CheckpointInterval configure what happens to
	// interrupted jobs; see the Recovery constants. RetryCap bounds the
	// number of RE-tries: a job may start at most RetryCap+1 times.
	Recovery           Recovery
	RetryCap           int
	CheckpointInterval float64
}

// Enabled reports whether the config injects any fault at all. A nil or
// zero config leaves the simulator's zero-fault path bit-identical to a
// run without the fault layer.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return len(c.Outages) > 0 || c.MTBF > 0 || c.InterruptProb > 0 || len(c.Kills) > 0
}

// Validate checks the config against a cluster shape. parts <= 0 skips the
// partition-range checks (shape not known yet, e.g. at flag parsing).
func (c *Config) Validate(parts int) error {
	if c == nil {
		return nil
	}
	for i, o := range c.Outages {
		if o.Part < 0 || (parts > 0 && o.Part >= parts) {
			return fmt.Errorf("fault: outage %d: partition %d out of range (%d partitions)", i, o.Part, parts)
		}
		if o.Start < 0 || math.IsNaN(o.Start) || math.IsInf(o.Start, 0) {
			return fmt.Errorf("fault: outage %d: start %v must be finite and >= 0", i, o.Start)
		}
		if !(o.Duration > 0) || math.IsInf(o.Duration, 0) {
			return fmt.Errorf("fault: outage %d: duration %v must be finite and > 0", i, o.Duration)
		}
		if o.Cores <= 0 {
			return fmt.Errorf("fault: outage %d: cores %d must be > 0", i, o.Cores)
		}
	}
	if c.MTBF < 0 || math.IsNaN(c.MTBF) || math.IsInf(c.MTBF, 0) {
		return fmt.Errorf("fault: mtbf %v must be finite and >= 0", c.MTBF)
	}
	if c.MTTR < 0 || math.IsNaN(c.MTTR) || math.IsInf(c.MTTR, 0) {
		return fmt.Errorf("fault: mttr %v must be finite and >= 0", c.MTTR)
	}
	if c.OutageFrac < 0 || c.OutageFrac > 1 || math.IsNaN(c.OutageFrac) {
		return fmt.Errorf("fault: outage fraction %v must be in [0, 1]", c.OutageFrac)
	}
	if c.Horizon < 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("fault: horizon %v must be finite and >= 0", c.Horizon)
	}
	if c.InterruptProb < 0 || c.InterruptProb >= 1 || math.IsNaN(c.InterruptProb) {
		return fmt.Errorf("fault: interrupt probability %v must be in [0, 1)", c.InterruptProb)
	}
	for i, k := range c.Kills {
		if k.Job < 0 {
			return fmt.Errorf("fault: kill %d: job index %d must be >= 0", i, k.Job)
		}
		if !(k.After > 0) || math.IsInf(k.After, 0) {
			return fmt.Errorf("fault: kill %d: after %v must be finite and > 0", i, k.After)
		}
	}
	if int(c.Recovery) >= numRecoveries {
		return fmt.Errorf("fault: unknown recovery mode %d", int(c.Recovery))
	}
	if c.RetryCap < 0 {
		return fmt.Errorf("fault: retry cap %d must be >= 0", c.RetryCap)
	}
	if c.Recovery == RecoveryCheckpoint && !(c.CheckpointInterval > 0) {
		return fmt.Errorf("fault: checkpoint recovery needs a checkpoint interval > 0 (got %v)", c.CheckpointInterval)
	}
	return nil
}

// CapEvent is one endpoint of a compiled outage: at Time, Cores cores of
// partition Part go down (Down) or come back (up). ID pairs the two
// endpoints of one outage; Pair is the other endpoint's time (the repair
// time on a down event, the outage start on an up event).
type CapEvent struct {
	Time  float64
	Part  int
	Cores int
	Down  bool
	ID    int
	Pair  float64
}

// Schedule is a compiled capacity-fault timeline: events sorted by time,
// with restores ordered before drains at equal times (capacity returns
// before more is taken, so coincident outages never drain more than the
// sum of their cores).
type Schedule struct {
	Events  []CapEvent
	Outages int
}

// Compile expands the config into a concrete capacity-event timeline for a
// cluster with the given per-partition capacities. horizon is the caller's
// default generation horizon (typically the trace span), used when
// c.Horizon is unset. Scripted outages are validated against the
// capacities; generated outages are derived deterministically from
// (Seed, partition).
func (c *Config) Compile(caps []int, horizon float64) (*Schedule, error) {
	if err := c.Validate(len(caps)); err != nil {
		return nil, err
	}
	outs := append([]Outage(nil), c.Outages...)
	for i, o := range outs {
		if o.Cores > caps[o.Part] {
			return nil, fmt.Errorf("fault: outage %d: %d cores exceed partition %d capacity %d",
				i, o.Cores, o.Part, caps[o.Part])
		}
	}
	if c.MTBF > 0 {
		h := c.Horizon
		if h <= 0 {
			h = horizon
		}
		mttr := c.MTTR
		if mttr <= 0 {
			mttr = c.MTBF / 10
		}
		frac := c.OutageFrac
		if frac <= 0 {
			frac = 0.1
		}
		for p, pcap := range caps {
			cores := int(frac*float64(pcap) + 0.5)
			if cores < 1 {
				cores = 1
			}
			if cores > pcap {
				cores = pcap
			}
			r := stream(c.Seed, uint64(p), saltOutage)
			for t := r.exp(c.MTBF); t < h; {
				d := r.exp(mttr)
				if d < 1 {
					d = 1 // sub-second repairs are below the model's resolution
				}
				outs = append(outs, Outage{Part: p, Start: t, Duration: d, Cores: cores})
				t += d + r.exp(c.MTBF)
			}
		}
	}
	evs := make([]CapEvent, 0, 2*len(outs))
	for id, o := range outs {
		up := o.Start + o.Duration
		evs = append(evs, CapEvent{Time: o.Start, Part: o.Part, Cores: o.Cores, Down: true, ID: id, Pair: up})
		evs = append(evs, CapEvent{Time: up, Part: o.Part, Cores: o.Cores, Down: false, ID: id, Pair: o.Start})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		ea, eb := evs[a], evs[b]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		if ea.Down != eb.Down {
			return !ea.Down // restores first
		}
		if ea.Part != eb.Part {
			return ea.Part < eb.Part
		}
		return ea.ID < eb.ID
	})
	return &Schedule{Events: evs, Outages: len(outs)}, nil
}

// InterruptCut decides whether the attempt-th run of the job at
// submit-order index job is interrupted, and if so how many seconds into
// the attempt (0 <= cut < run). It is a pure function of (Config, job,
// attempt, run): scripted kills apply to attempt 0, the random model draws
// from a hash of (Seed, job, attempt). The simulator and the verification
// oracle call this with identical arguments, so they interrupt at
// bit-identical instants.
func (c *Config) InterruptCut(job, attempt int, run float64) (cut float64, ok bool) {
	if run <= 0 {
		return 0, false
	}
	if attempt == 0 {
		for _, k := range c.Kills {
			if k.Job == job {
				if k.After < run {
					return k.After, true
				}
				return 0, false // attempt ends naturally first
			}
		}
	}
	if c.InterruptProb <= 0 {
		return 0, false
	}
	h := stream(c.Seed, uint64(job)<<20^uint64(attempt), saltInterrupt)
	if h.unit() >= c.InterruptProb {
		return 0, false
	}
	cut = h.unit() * run
	if !(cut < run) {
		return 0, false
	}
	return cut, true
}

// Clone returns a deep copy of the config (nil in, nil out).
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	out := *c
	out.Outages = append([]Outage(nil), c.Outages...)
	out.Kills = append([]JobKill(nil), c.Kills...)
	return &out
}

// splitmix64 finalizer; the standard constants.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	saltOutage    = 0x6f757461676573 // "outages"
	saltInterrupt = 0x696e7472757074 // "intrupt"
	gamma         = 0x9e3779b97f4a7c15
)

// rng is a counter-based splitmix64 stream: state advances by the golden
// gamma, outputs are the finalized counter. Deterministic, allocation-free,
// and independent per (seed, key, salt) triple.
type rng struct{ s uint64 }

func stream(seed, key, salt uint64) rng {
	return rng{s: mix64(seed+gamma) ^ mix64(key*gamma+salt)}
}

func (r *rng) next() uint64 {
	r.s += gamma
	return mix64(r.s)
}

// unit returns a uniform float64 in [0, 1).
func (r *rng) unit() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential variate with the given mean, in (0, +inf).
func (r *rng) exp(mean float64) float64 {
	u := 1 - r.unit() // (0, 1]
	return -mean * math.Log(u)
}

// ParseSpec parses the textual fault-scenario format used by the schedsim
// -faults flag: a comma-separated key=value list. Keys: seed, mtbf, mttr,
// frac, horizon, pint (interrupt probability), recovery (none | requeue |
// checkpoint), retry (retry cap), ckpt (checkpoint interval seconds),
// down=PART:START:DURATION:CORES (repeatable scripted outage), and
// kill=JOB:AFTER (repeatable scripted job fault). An empty string or "off"
// yields a disabled config. Example:
//
//	mtbf=172800,mttr=7200,frac=0.25,pint=0.02,recovery=requeue,retry=2
//	down=0:3600:7200:512,recovery=checkpoint,ckpt=900
func ParseSpec(s string) (*Config, error) {
	c := &Config{}
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return c, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, found := strings.Cut(tok, "=")
		if !found {
			return nil, fmt.Errorf("fault: bad spec entry %q (want key=value)", tok)
		}
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "mtbf":
			c.MTBF, err = parsePositive(val)
		case "mttr":
			c.MTTR, err = parsePositive(val)
		case "frac":
			c.OutageFrac, err = parsePositive(val)
		case "horizon":
			c.Horizon, err = parsePositive(val)
		case "pint":
			c.InterruptProb, err = parsePositive(val)
		case "recovery":
			c.Recovery, err = ParseRecovery(val)
		case "retry":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			c.RetryCap = int(n)
		case "ckpt":
			c.CheckpointInterval, err = parsePositive(val)
		case "down":
			var o Outage
			o, err = parseOutage(val)
			c.Outages = append(c.Outages, o)
		case "kill":
			var k JobKill
			k, err = parseKill(val)
			c.Kills = append(c.Kills, k)
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: spec entry %q: %w", tok, err)
		}
	}
	if err := c.Validate(0); err != nil {
		return nil, err
	}
	return c, nil
}

func parsePositive(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("value %v must be finite and >= 0", f)
	}
	return f, nil
}

func parseOutage(val string) (Outage, error) {
	f := strings.Split(val, ":")
	if len(f) != 4 {
		return Outage{}, fmt.Errorf("want PART:START:DURATION:CORES, got %q", val)
	}
	part, err := strconv.Atoi(f[0])
	if err != nil {
		return Outage{}, err
	}
	start, err := parsePositive(f[1])
	if err != nil {
		return Outage{}, err
	}
	dur, err := parsePositive(f[2])
	if err != nil {
		return Outage{}, err
	}
	cores, err := strconv.Atoi(f[3])
	if err != nil {
		return Outage{}, err
	}
	return Outage{Part: part, Start: start, Duration: dur, Cores: cores}, nil
}

func parseKill(val string) (JobKill, error) {
	f := strings.Split(val, ":")
	if len(f) != 2 {
		return JobKill{}, fmt.Errorf("want JOB:AFTER, got %q", val)
	}
	job, err := strconv.Atoi(f[0])
	if err != nil {
		return JobKill{}, err
	}
	after, err := parsePositive(f[1])
	if err != nil {
		return JobKill{}, err
	}
	return JobKill{Job: job, After: after}, nil
}

// Spec renders the config in the canonical ParseSpec format: fixed key
// order, zero-valued fields omitted, floats formatted shortest-exact so
// ParseSpec(c.Spec()) reproduces c bit-for-bit.
func (c *Config) Spec() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	add := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	ftoa := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	if c.Seed != 0 {
		add("seed", strconv.FormatUint(c.Seed, 10))
	}
	if c.MTBF > 0 {
		add("mtbf", ftoa(c.MTBF))
	}
	if c.MTTR > 0 {
		add("mttr", ftoa(c.MTTR))
	}
	if c.OutageFrac > 0 {
		add("frac", ftoa(c.OutageFrac))
	}
	if c.Horizon > 0 {
		add("horizon", ftoa(c.Horizon))
	}
	if c.InterruptProb > 0 {
		add("pint", ftoa(c.InterruptProb))
	}
	if c.Recovery != RecoveryNone {
		add("recovery", c.Recovery.String())
	}
	if c.RetryCap > 0 {
		add("retry", strconv.Itoa(c.RetryCap))
	}
	if c.CheckpointInterval > 0 {
		add("ckpt", ftoa(c.CheckpointInterval))
	}
	for _, o := range c.Outages {
		add("down", fmt.Sprintf("%d:%s:%s:%d", o.Part, ftoa(o.Start), ftoa(o.Duration), o.Cores))
	}
	for _, k := range c.Kills {
		add("kill", fmt.Sprintf("%d:%s", k.Job, ftoa(k.After)))
	}
	return b.String()
}

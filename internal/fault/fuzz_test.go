// Fuzz coverage for the fault layer lives in an external test package so it
// can drive the real simulator (sim imports fault; the reverse import is
// test-only).
package fault_test

import (
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// decodeFaultFuzz maps arbitrary bytes onto a small workload plus simulator
// options, mirroring check.FuzzSimulator's encoding: six header bytes pick
// the configuration, then each six-byte chunk is one job.
func decodeFaultFuzz(data []byte) (*trace.Trace, sim.Options) {
	const header = 6
	const chunk = 6
	if len(data) < header+chunk {
		return nil, sim.Options{}
	}
	parts := 1 + int(data[2])%3
	coresPerPart := 2 + int(data[3])%14
	opt := sim.Options{
		Policy:      sim.Policies[int(data[0])%len(sim.Policies)],
		Backfill:    sim.Backfills[int(data[1])%len(sim.Backfills)],
		RelaxFactor: float64(data[4]%50) / 100,
	}
	if data[5]&1 != 0 {
		opt.UseActualRuntime = true
	}

	tr := trace.New(trace.System{
		Name:            "fuzz",
		TotalCores:      parts * coresPerPart,
		VirtualClusters: parts,
	})
	submit := 0.0
	body := data[header:]
	for off := 0; off+chunk <= len(body) && len(tr.Jobs) < 32; off += chunk {
		c := body[off : off+chunk]
		submit += float64(c[0]) * 3.7
		run := float64(c[1]) * float64(c[2]) * 0.7
		walltime := 0.0
		if c[5] != 0 {
			walltime = run*(0.5+float64(c[5])/64) + 1
		}
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID:       len(tr.Jobs),
			User:     int(c[3]) % 5,
			Submit:   submit,
			Wait:     -1,
			Run:      run,
			Walltime: walltime,
			Procs:    1 + int(c[3])%coresPerPart,
			VC:       int(c[4])%(parts+1) - 1,
		})
	}
	tr.SortBySubmit()
	return tr, opt
}

// FuzzFaultSchedule feeds arbitrary fault-scenario specs and workloads
// through the full stack: ParseSpec must never panic, any spec it accepts
// must survive a Spec() round trip bit-for-bit, and the simulator must
// either reject the config with an error or complete the run without
// panicking, keeping the wasted/goodput split non-negative.
func FuzzFaultSchedule(f *testing.F) {
	job := []byte{0, 1, 1, 6, 10, 0, 3, 9, 8, 2, 0, 40, 1, 4, 4, 3, 0, 0, 0, 20, 20, 1, 1, 9, 2, 7, 7, 5, 1, 64}
	f.Add("", job)
	f.Add("off", job)
	f.Add("mtbf=4000,mttr=800,frac=0.4,recovery=requeue,retry=2", job)
	f.Add("pint=0.3,recovery=checkpoint,ckpt=60,retry=3,seed=9", job)
	f.Add("down=0:10:500:3,down=1:0:50:2,kill=0:5,kill=2:1.5", job)
	f.Add("down=9:0:1:1", job)       // partition out of range for most shapes
	f.Add("pint=2", job)             // invalid probability
	f.Add("recovery=later", job)     // unknown recovery
	f.Add("mtbf=1e309,garbage", job) // overflow + malformed entry

	f.Fuzz(func(t *testing.T, spec string, data []byte) {
		cfg, err := fault.ParseSpec(spec)
		if err != nil {
			cfg = nil // still drive the simulator on the plain workload
		} else {
			canon := cfg.Spec()
			again, err := fault.ParseSpec(canon)
			if err != nil {
				t.Fatalf("Spec() of accepted spec %q rejected: %v", spec, err)
			}
			if got := again.Spec(); got != canon {
				t.Fatalf("spec round trip diverged: %q -> %q", canon, got)
			}
			if got := cfg.Clone().Spec(); got != canon {
				t.Fatalf("Clone changed the spec: %q -> %q", canon, got)
			}
		}

		tr, opt := decodeFaultFuzz(data)
		if tr == nil {
			return
		}
		opt.Faults = cfg
		res, err := sim.Run(tr, opt)
		if err != nil {
			return // config invalid for this cluster shape — rejected, not panicked
		}
		if res.GoodputCoreSeconds < 0 || res.WastedCoreSeconds < 0 {
			t.Fatalf("negative core-hour accounting: goodput %v, wasted %v",
				res.GoodputCoreSeconds, res.WastedCoreSeconds)
		}
		if res.Requeued > res.Interrupted {
			t.Fatalf("%d requeues from %d interrupts", res.Requeued, res.Interrupted)
		}
	})
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasics(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v want 2.5", got)
	}
}

func TestVarianceAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v want 4", got)
	}
	if got := Stddev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	// interpolation
	if got := Quantile([]float64{0, 10}, 0.25); !almost(got, 2.5, 1e-12) {
		t.Fatalf("interpolated quantile %v want 2.5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almost(s.P50, 5.5, 1e-12) || !almost(s.Mean, 5.5, 1e-12) {
		t.Fatalf("summary median/mean wrong: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if Pearson(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Fatal("zero-variance input should give 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	if got := Spearman(xs, ys); !almost(got, 1, 1e-12) {
		t.Fatalf("spearman of monotone = %v want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(r[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v want %v", r, want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 10}, []float64{9, 1}); !almost(got, 1.9, 1e-12) {
		t.Fatalf("weighted mean = %v want 1.9", got)
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero-weight mean should be 0")
	}
	if WeightedMean([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should be 0")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotonePropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is always in [-1, 1] for finite inputs.
func TestPearsonBoundedPropertyQuick(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		xs := make([]float64, 0, len(pairs))
		ys := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsInf(p[0], 0) || math.IsNaN(p[1]) || math.IsInf(p[1], 0) {
				continue
			}
			// keep magnitudes sane to avoid float overflow in products
			if math.Abs(p[0]) > 1e100 || math.Abs(p[1]) > 1e100 {
				continue
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

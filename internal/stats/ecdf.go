package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// It supports point evaluation, inverse lookup, and resampling onto a fixed
// grid of x values (for plotting several systems on a shared axis).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied and sorted.
func NewECDF(xs []float64) *ECDF {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return &ECDF{sorted: c}
}

// N returns the number of underlying samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of samples <= x. Returns 0 for an
// empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// index of first element > x
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Inverse returns the smallest sample value v with At(v) >= p, i.e. the
// empirical p-quantile. Returns 0 for an empty ECDF.
func (e *ECDF) Inverse(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Points returns the step points (x_i, i/n) of the ECDF, thinned to at most
// maxPoints entries to keep rendering cheap for multi-million-job traces.
func (e *ECDF) Points(maxPoints int) (xs, ps []float64) {
	n := len(e.sorted)
	if n == 0 || maxPoints <= 0 {
		return nil, nil
	}
	step := 1
	if n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	// always include the final point so the curve reaches 1.0
	if xs[len(xs)-1] != e.sorted[n-1] || ps[len(ps)-1] != 1 {
		xs = append(xs, e.sorted[n-1])
		ps = append(ps, 1)
	}
	return xs, ps
}

// EvalGrid evaluates the ECDF at each x in grid. Useful to compare several
// systems' CDFs at identical x positions (as in the paper's Figure 1).
func (e *ECDF) EvalGrid(grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, x := range grid {
		out[i] = e.At(x)
	}
	return out
}

// LogGrid returns n log-spaced values covering [lo, hi]. It requires
// 0 < lo < hi and n >= 2; otherwise it returns nil.
func LogGrid(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = math.Pow(10, llo+f*(lhi-llo))
	}
	return out
}

// LinGrid returns n linearly spaced values covering [lo, hi]; n >= 2.
func LinGrid(lo, hi float64, n int) []float64 {
	if n < 2 || hi < lo {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = lo + f*(hi-lo)
	}
	return out
}

package stats

import (
	"math"
)

// Histogram is a binned count of a sample over explicit bin edges.
// Values below the first edge or at/above the last edge are dropped into
// the Under/Over overflow counters rather than silently discarded.
type Histogram struct {
	Edges  []float64 // len = bins+1, strictly increasing
	Counts []int     // len = bins
	Under  int       // samples < Edges[0]
	Over   int       // samples >= Edges[len-1]
	Total  int       // all samples offered, including overflow
}

// NewHistogram builds an empty histogram over the given edges.
// It panics if fewer than 2 edges are supplied or edges are not increasing.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least 2 edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)-1),
	}
}

// Add offers one sample to the histogram.
func (h *Histogram) Add(x float64) {
	h.Total++
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// binary search: find bin i with Edges[i] <= x < Edges[i+1]
	lo, hi := 0, len(h.Counts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if h.Edges[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h.Counts[lo]++
}

// AddAll offers every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Fractions returns each bin's share of the total sample count (including
// overflow in the denominator). Returns nil for an empty histogram.
func (h *Histogram) Fractions() []float64 {
	if h.Total == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// HourlyCounts buckets event timestamps (seconds since trace start) by the
// local hour-of-day given a start hour offset, producing the paper's
// Figure 1(b)-bottom series. startHour shifts t=0 to that wall-clock hour.
func HourlyCounts(times []float64, startHour int) [24]int {
	var out [24]int
	for _, t := range times {
		h := (int(t/3600) + startHour) % 24
		if h < 0 {
			h += 24
		}
		out[h]++
	}
	return out
}

// MaxMinRatio returns max/min over the nonzero entries of counts; it is
// the paper's measure of diurnal peakiness. Returns +Inf when any entry is
// zero but another is positive, and 0 when all entries are zero.
func MaxMinRatio(counts [24]int) float64 {
	mn, mx := math.MaxInt64, 0
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mx == 0 {
		return 0
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return float64(mx) / float64(mn)
}

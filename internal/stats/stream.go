package stats

import (
	"math"
	"sort"
)

// This file is the out-of-core counterpart of descriptive.go/ecdf.go: the
// streaming trace pipeline summarizes million-to-ten-million-job inputs
// without retaining samples. Moments is exact (Welford one-pass);
// P2Quantile and QuantileSketch are bounded-memory quantile estimators (the
// classic P² marker method and a merging t-digest); StreamSummary glues
// them into the same Summary shape Summarize produces from materialized
// data.

// Moments accumulates count, mean, variance, min, max, and sum in one pass
// using Welford's update. The zero value is ready to use.
type Moments struct {
	n        int64
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	m.sum += x
}

// Merge folds another accumulator in (Chan et al. pairwise update), so
// shards of a stream can be summarized independently and combined.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.mean += d * float64(o.n) / float64(n)
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.sum += o.sum
	m.n = n
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean, or 0 before any observation (matching
// Mean on an empty slice).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Variance returns the population variance, or 0 for n < 2 (matching
// Variance).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Stddev returns the population standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation, or +Inf before any (matching Min).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.Inf(1)
	}
	return m.min
}

// Max returns the largest observation, or -Inf before any (matching Max).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.Inf(-1)
	}
	return m.max
}

// Sum returns the running sum.
func (m *Moments) Sum() float64 { return m.sum }

// P2Quantile estimates a single quantile with the P² algorithm (Jain &
// Chlamtac 1985): five markers adjusted per observation, O(1) memory and
// update. Exact for the first five observations. For whole-distribution
// views use QuantileSketch; P2Quantile is the cheapest option when one
// fixed quantile is tracked (e.g. a live P99 gauge).
type P2Quantile struct {
	p   float64
	n   int64
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the p-th quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	e := &P2Quantile{p: p}
	e.pos = [5]float64{1, 2, 3, 4, 5}
	e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add folds one observation in.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if e.n <= 5 {
		// Insert into the sorted bootstrap prefix.
		i := int(e.n) - 1
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		return
	}
	// Locate the cell and clamp the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.des[i] += e.inc[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			// Piecewise-parabolic prediction, falling back to linear when
			// it would break marker monotonicity.
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, s float64) float64 {
	num1 := e.pos[i] - e.pos[i-1] + s
	num2 := e.pos[i+1] - e.pos[i] - s
	den := e.pos[i+1] - e.pos[i-1]
	return e.q[i] + s/den*(num1*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
		num2*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations.
func (e *P2Quantile) N() int64 { return e.n }

// Value returns the current estimate (exact while n <= 5), or 0 before any
// observation.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n <= 5 {
		s := e.q[:e.n]
		return quantileSorted(s, e.p)
	}
	return e.q[2]
}

// defaultSketchCompression bounds QuantileSketch at roughly 2×compression
// centroids; 200 keeps the structure around a few KB with observed rank
// error well under 1% at the mid-quantiles and tighter in the tails.
const defaultSketchCompression = 200

// QuantileSketch is a merging t-digest: a bounded set of (mean, weight)
// centroids whose sizes follow the scale function k(q) = δ/2π·asin(2q−1),
// so centroids stay tiny near the tails (keeping P99/P1 sharp) and wide in
// the middle. Adds buffer and periodically merge-compress; memory is
// O(compression) regardless of stream length.
type QuantileSketch struct {
	compression float64
	means       []float64 // centroid means, ascending
	weights     []float64
	total       float64 // total weight in centroids
	buf         []float64
	min, max    float64
	n           int64
	scratchM    []float64
	scratchW    []float64
}

// NewQuantileSketch returns a sketch; compression <= 0 selects the default.
func NewQuantileSketch(compression float64) *QuantileSketch {
	if compression <= 0 {
		compression = defaultSketchCompression
	}
	return &QuantileSketch{
		compression: compression,
		buf:         make([]float64, 0, int(8*compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add folds one observation in.
func (s *QuantileSketch) Add(x float64) {
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.n++
	s.buf = append(s.buf, x)
	if len(s.buf) == cap(s.buf) {
		s.flush()
	}
}

// N returns the number of observations.
func (s *QuantileSketch) N() int64 { return s.n }

// Centroids returns the current number of centroids (after compressing the
// pending buffer); exposed for memory-bound tests.
func (s *QuantileSketch) Centroids() int {
	s.flush()
	return len(s.means)
}

func (s *QuantileSketch) scale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return s.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

func (s *QuantileSketch) scaleInv(k float64) float64 {
	q := (math.Sin(2*math.Pi*k/s.compression) + 1) / 2
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// flush merge-compresses the buffered observations into the centroid set.
func (s *QuantileSketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	total := s.total + float64(len(s.buf))
	outM := s.scratchM[:0]
	outW := s.scratchW[:0]

	// Two-way merge of the ascending centroid list and the sorted buffer,
	// greedily coalescing runs whose combined quantile span fits one unit
	// of the scale function.
	ci, bi := 0, 0
	nextPoint := func() (float64, float64) {
		if ci < len(s.means) && (bi >= len(s.buf) || s.means[ci] <= s.buf[bi]) {
			m, w := s.means[ci], s.weights[ci]
			ci++
			return m, w
		}
		x := s.buf[bi]
		bi++
		return x, 1
	}
	curM, curW := nextPoint()
	wSoFar := 0.0
	qLimit := s.scaleInv(s.scale(0) + 1)
	for ci < len(s.means) || bi < len(s.buf) {
		m, w := nextPoint()
		if (wSoFar+curW+w)/total <= qLimit {
			curW += w
			curM += (m - curM) * w / curW
			continue
		}
		outM = append(outM, curM)
		outW = append(outW, curW)
		wSoFar += curW
		qLimit = s.scaleInv(s.scale(wSoFar/total) + 1)
		curM, curW = m, w
	}
	outM = append(outM, curM)
	outW = append(outW, curW)

	s.scratchM, s.means = s.means[:0], outM
	s.scratchW, s.weights = s.weights[:0], outW
	s.total = total
	s.buf = s.buf[:0]
}

// Quantile returns the estimated q-th quantile, or 0 before any observation
// (matching Quantile on an empty slice). Estimates interpolate between
// centroid midpoints and are clamped to the observed [min, max].
func (s *QuantileSketch) Quantile(q float64) float64 {
	s.flush()
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := q * s.total
	prevM, prevC := s.min, 0.0
	cum := 0.0
	for i := range s.means {
		c := cum + s.weights[i]/2
		if target < c {
			if c == prevC {
				return s.means[i]
			}
			f := (target - prevC) / (c - prevC)
			return prevM + f*(s.means[i]-prevM)
		}
		prevM, prevC = s.means[i], c
		cum += s.weights[i]
	}
	if s.total == prevC {
		return s.max
	}
	f := (target - prevC) / (s.total - prevC)
	return prevM + f*(s.max-prevM)
}

// CDF returns the estimated P(X <= x), the streaming analog of ECDF.At.
func (s *QuantileSketch) CDF(x float64) float64 {
	s.flush()
	if s.n == 0 || x < s.min {
		return 0
	}
	if x >= s.max {
		return 1
	}
	prevM, prevC := s.min, 0.0
	cum := 0.0
	for i := range s.means {
		c := cum + s.weights[i]/2
		if x < s.means[i] {
			if s.means[i] == prevM {
				return c / s.total
			}
			f := (x - prevM) / (s.means[i] - prevM)
			return (prevC + f*(c-prevC)) / s.total
		}
		prevM, prevC = s.means[i], c
		cum += s.weights[i]
	}
	if s.max == prevM {
		return 1
	}
	f := (x - prevM) / (s.max - prevM)
	return (prevC + f*(s.total-prevC)) / s.total
}

// StreamSummary accumulates a Summary without retaining samples: count,
// mean, min, max, stddev, and sum are exact (Moments); the quantile fields
// come from a QuantileSketch and carry its rank-error bound.
type StreamSummary struct {
	mom    Moments
	sketch *QuantileSketch
}

// NewStreamSummary returns an accumulator with the default sketch
// compression.
func NewStreamSummary() *StreamSummary {
	return &StreamSummary{sketch: NewQuantileSketch(0)}
}

// Add folds one observation in.
func (s *StreamSummary) Add(x float64) {
	s.mom.Add(x)
	s.sketch.Add(x)
}

// N returns the number of observations.
func (s *StreamSummary) N() int64 { return s.mom.N() }

// Sketch exposes the underlying quantile sketch for CDF queries.
func (s *StreamSummary) Sketch() *QuantileSketch { return s.sketch }

// Summary renders the accumulated state in the same shape Summarize
// produces. Empty input yields the zero Summary, like Summarize.
func (s *StreamSummary) Summary() Summary {
	if s.mom.N() == 0 {
		return Summary{}
	}
	return Summary{
		N:      int(s.mom.N()),
		Mean:   s.mom.Mean(),
		Min:    s.mom.Min(),
		P25:    s.sketch.Quantile(0.25),
		P50:    s.sketch.Quantile(0.50),
		P75:    s.sketch.Quantile(0.75),
		P90:    s.sketch.Quantile(0.90),
		P99:    s.sketch.Quantile(0.99),
		Max:    s.mom.Max(),
		Stddev: s.mom.Stddev(),
	}
}

package stats

import "sort"

// KolmogorovSmirnov returns the two-sample KS statistic — the maximum
// vertical distance between the empirical CDFs of xs and ys. Used to
// quantify distributional fidelity between an observed trace and a fitted
// regeneration (synth.FromTrace). Returns 1 when either sample is empty
// (maximally distinguishable).
func KolmogorovSmirnov(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 1
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	maxD := 0.0
	for i < len(a) && j < len(b) {
		var v float64
		if a[i] <= b[j] {
			v = a[i]
		} else {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		d := float64(i)/na - float64(j)/nb
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

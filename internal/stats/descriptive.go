// Package stats provides the descriptive-statistics substrate used by every
// characterization figure: moments, quantiles, empirical CDFs, histograms,
// kernel density summaries (violins), correlation, and grouped aggregation.
//
// Go has no strong data-analysis libraries, so this package implements the
// minimal, well-tested subset that the paper's analyses need, with care
// around the degenerate inputs (empty slices, single elements, ties) that
// real traces contain.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return quantileSorted(c, q)
}

// QuantileSorted is Quantile for data already sorted ascending; it avoids
// the copy and sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(c []float64, q float64) float64 {
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Summary holds the five-number summary plus mean and count for a sample.
type Summary struct {
	N                  int
	Mean               float64
	Min, P25, P50, P75 float64
	P90, P99, Max      float64
	Stddev             float64
}

// Summarize computes a Summary in a single sort of a copy of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return Summary{
		N:      len(c),
		Mean:   Mean(c),
		Min:    c[0],
		P25:    quantileSorted(c, 0.25),
		P50:    quantileSorted(c, 0.50),
		P75:    quantileSorted(c, 0.75),
		P90:    quantileSorted(c, 0.90),
		P99:    quantileSorted(c, 0.99),
		Max:    c[len(c)-1],
		Stddev: Stddev(c),
	}
}

// Pearson returns the Pearson linear correlation coefficient of xs and ys.
// It returns 0 when either input has zero variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of xs and ys: the Pearson
// correlation of their fractional ranks. Ties receive their average rank.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs, with ties assigned
// their average rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// WeightedMean returns the weighted mean of xs with weights ws, or 0 when
// the total weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		return 0
	}
	var sw, swx float64
	for i := range xs {
		sw += ws[i]
		swx += ws[i] * xs[i]
	}
	if sw == 0 {
		return 0
	}
	return swx / sw
}

package stats

import (
	"math"
	"testing"

	"crosssched/internal/dist"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(xs, xs); d != 0 {
		t.Fatalf("KS of identical samples %v want 0", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 30}
	if d := KolmogorovSmirnov(xs, ys); d != 1 {
		t.Fatalf("KS of disjoint samples %v want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if KolmogorovSmirnov(nil, []float64{1}) != 1 {
		t.Fatal("empty sample should give 1")
	}
	if KolmogorovSmirnov([]float64{1}, nil) != 1 {
		t.Fatal("empty sample should give 1")
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	r := dist.NewRNG(5)
	xs := make([]float64, 3000)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal()
	}
	d := KolmogorovSmirnov(xs, ys)
	// critical value at alpha=0.01 for n=m=3000 is ~0.042
	if d > 0.05 {
		t.Fatalf("same-distribution KS %v too large", d)
	}
}

func TestKSShiftDetected(t *testing.T) {
	r := dist.NewRNG(6)
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Normal()
		ys[i] = r.Normal() + 1 // shifted by one sigma
	}
	d := KolmogorovSmirnov(xs, ys)
	// theoretical max gap for unit shift of standard normals is
	// 2*Phi(0.5)-1 ~ 0.383
	if math.Abs(d-0.383) > 0.06 {
		t.Fatalf("shifted KS %v want ~0.38", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	xs := []float64{1, 5, 9, 2}
	ys := []float64{3, 3, 7}
	if KolmogorovSmirnov(xs, ys) != KolmogorovSmirnov(ys, xs) {
		t.Fatal("KS not symmetric")
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almost(got, c.want, 1e-12) {
			t.Fatalf("At(%v) = %v want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 || e.Inverse(0.5) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF should be all zeros")
	}
	xs, ps := e.Points(10)
	if xs != nil || ps != nil {
		t.Fatal("empty ECDF points should be nil")
	}
}

func TestECDFInverse(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Inverse(0.5); got != 30 {
		t.Fatalf("Inverse(0.5) = %v want 30", got)
	}
	if got := e.Inverse(0); got != 10 {
		t.Fatalf("Inverse(0) = %v want 10", got)
	}
	if got := e.Inverse(1); got != 50 {
		t.Fatalf("Inverse(1) = %v want 50", got)
	}
	if got := e.Inverse(0.2); got != 10 {
		t.Fatalf("Inverse(0.2) = %v want 10", got)
	}
}

func TestECDFPointsThinningAndTerminal(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewECDF(xs)
	px, pp := e.Points(100)
	if len(px) > 120 {
		t.Fatalf("points not thinned: %d", len(px))
	}
	if pp[len(pp)-1] != 1 {
		t.Fatalf("last point p = %v want 1", pp[len(pp)-1])
	}
	if px[len(px)-1] != 9999 {
		t.Fatalf("last point x = %v want 9999", px[len(px)-1])
	}
}

func TestEvalGrid(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	got := e.EvalGrid([]float64{0, 2, 5})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("EvalGrid = %v want %v", got, want)
		}
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !almost(g[i], want[i], 1e-9) {
			t.Fatalf("LogGrid = %v want %v", g, want)
		}
	}
	if LogGrid(0, 10, 5) != nil || LogGrid(10, 1, 5) != nil || LogGrid(1, 10, 1) != nil {
		t.Fatal("invalid LogGrid inputs should return nil")
	}
}

func TestLinGrid(t *testing.T) {
	g := LinGrid(0, 10, 3)
	want := []float64{0, 5, 10}
	for i := range want {
		if !almost(g[i], want[i], 1e-12) {
			t.Fatalf("LinGrid = %v want %v", g, want)
		}
	}
	if LinGrid(0, 10, 1) != nil || LinGrid(10, 0, 3) != nil {
		t.Fatal("invalid LinGrid inputs should return nil")
	}
}

// Property: ECDF.At is monotone nondecreasing in x and within [0,1].
func TestECDFMonotonePropertyQuick(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		e := NewECDF(xs)
		cleanProbes := make([]float64, 0, len(probes))
		for _, p := range probes {
			if !math.IsNaN(p) && !math.IsInf(p, 0) {
				cleanProbes = append(cleanProbes, p)
			}
		}
		// sort probes ascending and check monotonicity
		for i := 0; i < len(cleanProbes); i++ {
			for j := i + 1; j < len(cleanProbes); j++ {
				if cleanProbes[j] < cleanProbes[i] {
					cleanProbes[i], cleanProbes[j] = cleanProbes[j], cleanProbes[i]
				}
			}
		}
		prev := 0.0
		for _, p := range cleanProbes {
			v := e.At(p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30})
	h.AddAll([]float64{-5, 0, 5, 10, 15, 29.999, 30, 100})
	if h.Under != 1 {
		t.Fatalf("Under = %d want 1", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d want 2", h.Over)
	}
	wantCounts := []int{2, 2, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v want %v", h.Counts, wantCounts)
		}
	}
	if h.Total != 8 {
		t.Fatalf("Total = %d want 8", h.Total)
	}
	fr := h.Fractions()
	if !almost(fr[0], 0.25, 1e-12) {
		t.Fatalf("Fractions = %v", fr)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHistogram([]float64{1}) },
		func() { NewHistogram([]float64{1, 1}) },
		func() { NewHistogram([]float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	if h.Fractions() != nil {
		t.Fatal("empty histogram fractions should be nil")
	}
}

func TestHourlyCounts(t *testing.T) {
	// events at t=0h, 1h, 25h with startHour=8 -> hours 8, 9, 9
	counts := HourlyCounts([]float64{0, 3600, 25 * 3600}, 8)
	if counts[8] != 1 || counts[9] != 2 {
		t.Fatalf("HourlyCounts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("total = %d want 3", total)
	}
}

func TestMaxMinRatio(t *testing.T) {
	var c [24]int
	for i := range c {
		c[i] = 10
	}
	c[12] = 100
	if got := MaxMinRatio(c); !almost(got, 10, 1e-12) {
		t.Fatalf("MaxMinRatio = %v want 10", got)
	}
	var zero [24]int
	if MaxMinRatio(zero) != 0 {
		t.Fatal("all-zero ratio should be 0")
	}
	zero[0] = 5
	if !math.IsInf(MaxMinRatio(zero), 1) {
		t.Fatal("zero-min ratio should be +Inf")
	}
}

func TestViolinSummaryAndMode(t *testing.T) {
	// bimodal sample: cluster at ~10 and ~1000, log-scale violin
	xs := make([]float64, 0, 2000)
	for i := 0; i < 1500; i++ {
		xs = append(xs, 10+float64(i%5))
	}
	for i := 0; i < 500; i++ {
		xs = append(xs, 1000+float64(i%50))
	}
	v := NewViolin(xs, 200, true)
	if v.Summary.N != 2000 {
		t.Fatalf("violin N = %d", v.Summary.N)
	}
	mode := v.Mode()
	if mode < 5 || mode > 50 {
		t.Fatalf("violin mode %v should be near the dominant cluster ~10-15", mode)
	}
	if len(v.Grid) != len(v.Density) {
		t.Fatal("grid/density length mismatch")
	}
	for _, d := range v.Density {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid density %v", d)
		}
	}
}

func TestViolinEmptyAndNonPositiveLog(t *testing.T) {
	v := NewViolin([]float64{-1, 0}, 50, true)
	if v.Summary.N != 0 || len(v.Grid) != 0 {
		t.Fatal("violin of non-positive sample under log should be empty")
	}
	if v.Mode() != 0 {
		t.Fatal("empty violin mode should be 0")
	}
}

func TestViolinConstantSample(t *testing.T) {
	v := NewViolin([]float64{5, 5, 5, 5}, 50, false)
	if v.Summary.P50 != 5 {
		t.Fatalf("constant violin median %v", v.Summary.P50)
	}
	for _, d := range v.Density {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("constant sample produced invalid density %v", d)
		}
	}
}

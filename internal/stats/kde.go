package stats

import (
	"math"
	"sort"
)

// Violin summarizes a sample's distribution the way the paper's violin
// plots do: a kernel density estimate evaluated on a grid, plus the usual
// quartile markers. Densities are computed in log10 space when Log is set,
// matching the paper's log-scale runtime violins.
type Violin struct {
	Log     bool      // density estimated over log10(x)
	Grid    []float64 // evaluation positions (original units)
	Density []float64 // estimated density at each grid position
	Summary Summary   // five-number summary in original units
}

// NewViolin builds a violin summary of xs with gridN density points.
// When log is true, non-positive samples are dropped before the log
// transform. Returns a zero Violin for an effectively empty sample.
func NewViolin(xs []float64, gridN int, log bool) Violin {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if log {
			if x > 0 {
				vals = append(vals, math.Log10(x))
			}
		} else {
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 || gridN < 2 {
		return Violin{Log: log}
	}
	sort.Float64s(vals)
	v := Violin{Log: log}

	// Silverman's rule-of-thumb bandwidth.
	sd := Stddev(vals)
	iqr := quantileSorted(vals, 0.75) - quantileSorted(vals, 0.25)
	spread := sd
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread == 0 {
		spread = 1e-9
	}
	h := 0.9 * spread * math.Pow(float64(len(vals)), -0.2)

	lo := vals[0] - 2*h
	hi := vals[len(vals)-1] + 2*h
	gridT := LinGrid(lo, hi, gridN)
	density := kdeGaussian(vals, gridT, h)

	v.Grid = make([]float64, gridN)
	v.Density = density
	for i, g := range gridT {
		if log {
			v.Grid[i] = math.Pow(10, g)
		} else {
			v.Grid[i] = g
		}
	}

	// Summary over the original units.
	if log {
		orig := make([]float64, len(vals))
		for i, t := range vals {
			orig[i] = math.Pow(10, t)
		}
		v.Summary = Summarize(orig)
	} else {
		v.Summary = Summarize(vals)
	}
	return v
}

// kdeGaussian evaluates a Gaussian KDE of sorted sample vals at each grid
// point with bandwidth h. Contributions beyond 4 bandwidths are skipped,
// which keeps the evaluation near-linear for large samples.
func kdeGaussian(vals, grid []float64, h float64) []float64 {
	out := make([]float64, len(grid))
	norm := 1 / (float64(len(vals)) * h * math.Sqrt(2*math.Pi))
	for gi, g := range grid {
		// restrict to samples within 4h of g using binary search
		lo := sort.SearchFloat64s(vals, g-4*h)
		hi := sort.SearchFloat64s(vals, g+4*h)
		sum := 0.0
		for i := lo; i < hi; i++ {
			z := (vals[i] - g) / h
			sum += math.Exp(-0.5 * z * z)
		}
		out[gi] = sum * norm
	}
	return out
}

// Mode returns the grid position with the highest estimated density — the
// "widest part" of the violin that the paper reads off Figure 11.
func (v Violin) Mode() float64 {
	if len(v.Grid) == 0 {
		return 0
	}
	best := 0
	for i, d := range v.Density {
		if d > v.Density[best] {
			best = i
		}
	}
	return v.Grid[best]
}

package stats

import (
	"testing"

	"crosssched/internal/dist"
)

func TestBootstrapCIEmpty(t *testing.T) {
	ci := BootstrapCI(nil, Median, 0.95, 100, 1)
	if ci.Point != 0 || ci.Lo != 0 || ci.Hi != 0 {
		t.Fatalf("empty CI should be zero: %+v", ci)
	}
	if MedianCI(nil, 1).Width() != 0 {
		t.Fatal("empty median CI should be degenerate")
	}
}

func TestBootstrapCIContainsTruth(t *testing.T) {
	// Large normal sample: the 95% CI for the mean should contain the
	// true mean (0) and be narrow.
	r := dist.NewRNG(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	ci := MeanCI(xs, 7)
	if !ci.Contains(0) {
		t.Fatalf("mean CI %v does not contain 0", ci)
	}
	if ci.Width() > 0.1 {
		t.Fatalf("mean CI too wide: %v", ci.Width())
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Fatalf("point outside its own CI: %+v", ci)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 5, 3, 8, 2, 9, 4}
	a := MedianCI(xs, 11)
	b := MedianCI(xs, 11)
	if a != b {
		t.Fatal("same-seed bootstrap differs")
	}
}

func TestBootstrapCIOrdering(t *testing.T) {
	r := dist.NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	ci := MedianCI(xs, 1)
	if !(ci.Lo <= ci.Hi) {
		t.Fatalf("CI bounds inverted: %+v", ci)
	}
	if ci.Level != 0.95 || ci.Resample != 200 {
		t.Fatalf("defaults wrong: %+v", ci)
	}
}

package stats

import (
	"math"
	"testing"

	"crosssched/internal/dist"
)

// streamTestSamples returns deterministic samples from distributions shaped
// like the trace columns the streaming pipeline summarizes: uniform,
// heavy-tailed runtimes, near-constant with ties, and a bimodal mixture.
func streamTestSamples(n int) map[string][]float64 {
	out := map[string][]float64{}
	rng := dist.NewRNG(7)
	uni := make([]float64, n)
	exp := make([]float64, n)
	logn := make([]float64, n)
	bimodal := make([]float64, n)
	e := dist.Exponential{Rate: 1.0 / 300}
	l := dist.LogNormal{Mu: 4, Sigma: 1.5}
	for i := 0; i < n; i++ {
		uni[i] = rng.Float64() * 1000
		exp[i] = e.Sample(rng)
		logn[i] = l.Sample(rng)
		if rng.Float64() < 0.3 {
			bimodal[i] = 10 + rng.Float64()
		} else {
			bimodal[i] = 5000 + 100*rng.Float64()
		}
	}
	out["uniform"] = uni
	out["exponential"] = exp
	out["lognormal"] = logn
	out["bimodal"] = bimodal
	return out
}

func TestMomentsMatchesExact(t *testing.T) {
	for name, xs := range streamTestSamples(50000) {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		relEq := func(field string, got, want float64) {
			scale := math.Abs(want)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(got-want) > 1e-9*scale {
				t.Fatalf("%s: %s = %v, exact %v", name, field, got, want)
			}
		}
		if m.N() != int64(len(xs)) {
			t.Fatalf("%s: n %d want %d", name, m.N(), len(xs))
		}
		relEq("mean", m.Mean(), Mean(xs))
		relEq("variance", m.Variance(), Variance(xs))
		relEq("stddev", m.Stddev(), Stddev(xs))
		relEq("sum", m.Sum(), Sum(xs))
		if m.Min() != Min(xs) || m.Max() != Max(xs) {
			t.Fatalf("%s: min/max %v/%v want %v/%v", name, m.Min(), m.Max(), Min(xs), Max(xs))
		}
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.Sum() != 0 || m.N() != 0 {
		t.Fatal("empty moments not zero")
	}
	if !math.IsInf(m.Min(), 1) || !math.IsInf(m.Max(), -1) {
		t.Fatal("empty min/max conventions differ from Min/Max")
	}
}

func TestMomentsMerge(t *testing.T) {
	xs := streamTestSamples(20000)["lognormal"]
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	// Three unequal shards, merged in order; also merge an empty shard on
	// both sides.
	var a, b, c, merged Moments
	for _, x := range xs[:777] {
		a.Add(x)
	}
	for _, x := range xs[777:5000] {
		b.Add(x)
	}
	for _, x := range xs[5000:] {
		c.Add(x)
	}
	merged.Merge(Moments{})
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(c)
	merged.Merge(Moments{})
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merge lost count or extremes")
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*whole.Mean() {
		t.Fatalf("merged mean %v want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-6*whole.Variance() {
		t.Fatalf("merged variance %v want %v", merged.Variance(), whole.Variance())
	}
}

// rankErr measures estimation error in rank space: how far (in cumulative
// probability) the estimate sits from the target quantile of the exact
// ECDF. Rank error is the natural bound for both P² and t-digest sketches —
// value-space error is unbounded on heavy tails.
func rankErr(e *ECDF, estimate, q float64) float64 {
	return math.Abs(e.At(estimate) - q)
}

func TestP2QuantileErrorBound(t *testing.T) {
	for name, xs := range streamTestSamples(100000) {
		e := NewECDF(xs)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			p2 := NewP2Quantile(q)
			for _, x := range xs {
				p2.Add(x)
			}
			// P² maintains five markers; 5% rank error is its documented
			// practical envelope on unimodal data and holds with slack on
			// these shapes.
			if err := rankErr(e, p2.Value(), q); err > 0.05 {
				t.Errorf("%s: P2(%v) = %v, rank error %.4f > 0.05", name, q, p2.Value(), err)
			}
		}
	}
}

func TestP2QuantileExactSmall(t *testing.T) {
	p2 := NewP2Quantile(0.5)
	if p2.Value() != 0 {
		t.Fatal("empty P2 not 0")
	}
	xs := []float64{5, 1, 9, 3}
	for _, x := range xs {
		p2.Add(x)
	}
	if got, want := p2.Value(), Quantile(xs, 0.5); got != want {
		t.Fatalf("small-n P2 median %v want exact %v", got, want)
	}
}

func TestQuantileSketchErrorBound(t *testing.T) {
	qs := []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for name, xs := range streamTestSamples(200000) {
		e := NewECDF(xs)
		sk := NewQuantileSketch(0)
		for _, x := range xs {
			sk.Add(x)
		}
		for _, q := range qs {
			err := rankErr(e, sk.Quantile(q), q)
			// The k-scale function concentrates resolution in the tails:
			// bound mid-quantiles at 1% rank error and the 1%/99% tails at
			// 0.5%.
			bound := 0.01
			if q <= 0.01 || q >= 0.99 {
				bound = 0.005
			}
			if err > bound {
				t.Errorf("%s: Quantile(%v) = %v, rank error %.5f > %.3f",
					name, q, sk.Quantile(q), err, bound)
			}
		}
		// CDF queries carry the same bound, probed across the value range.
		for _, q := range qs {
			x := e.Inverse(q)
			if err := math.Abs(sk.CDF(x) - e.At(x)); err > 0.01 {
				t.Errorf("%s: CDF(%v) = %v, exact %v (err %.5f)", name, x, sk.CDF(x), e.At(x), err)
			}
		}
	}
}

// TestQuantileSketchBoundedMemory: the centroid count must stay
// O(compression) no matter how long the stream is.
func TestQuantileSketchBoundedMemory(t *testing.T) {
	sk := NewQuantileSketch(100)
	rng := dist.NewRNG(11)
	for i := 0; i < 1_000_000; i++ {
		sk.Add(rng.Float64() * float64(i+1))
	}
	if c := sk.Centroids(); c > 300 {
		t.Fatalf("centroid count %d exceeds 3x compression", c)
	}
	if sk.N() != 1_000_000 {
		t.Fatalf("n %d", sk.N())
	}
}

func TestQuantileSketchDegenerate(t *testing.T) {
	sk := NewQuantileSketch(0)
	if sk.Quantile(0.5) != 0 || sk.CDF(1) != 0 {
		t.Fatal("empty sketch conventions")
	}
	sk.Add(42)
	if sk.Quantile(0) != 42 || sk.Quantile(0.5) != 42 || sk.Quantile(1) != 42 {
		t.Fatalf("single value quantiles: %v", sk.Quantile(0.5))
	}
	// All-ties stream: every quantile is the tied value.
	ties := NewQuantileSketch(50)
	for i := 0; i < 10000; i++ {
		ties.Add(7)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if ties.Quantile(q) != 7 {
			t.Fatalf("tied quantile(%v) = %v", q, ties.Quantile(q))
		}
	}
	if ties.CDF(6.9) != 0 || ties.CDF(7) != 1 {
		t.Fatalf("tied CDF: %v %v", ties.CDF(6.9), ties.CDF(7))
	}
}

// TestStreamSummaryMatchesSummarize: exact fields agree with Summarize to
// float tolerance; quantile fields agree in rank space.
func TestStreamSummaryMatchesSummarize(t *testing.T) {
	for name, xs := range streamTestSamples(100000) {
		ss := NewStreamSummary()
		for _, x := range xs {
			ss.Add(x)
		}
		got := ss.Summary()
		want := Summarize(xs)
		e := NewECDF(xs)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("%s: n/min/max mismatch: %+v vs %+v", name, got, want)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Abs(want.Mean) {
			t.Fatalf("%s: mean %v want %v", name, got.Mean, want.Mean)
		}
		if math.Abs(got.Stddev-want.Stddev) > 1e-6*want.Stddev {
			t.Fatalf("%s: stddev %v want %v", name, got.Stddev, want.Stddev)
		}
		for _, pq := range []struct {
			q         float64
			got, want float64
		}{
			{0.25, got.P25, want.P25},
			{0.50, got.P50, want.P50},
			{0.75, got.P75, want.P75},
			{0.90, got.P90, want.P90},
			{0.99, got.P99, want.P99},
		} {
			if err := rankErr(e, pq.got, pq.q); err > 0.01 {
				t.Errorf("%s: P%g = %v (exact %v), rank error %.5f", name, pq.q*100, pq.got, pq.want, err)
			}
		}
	}
	if empty := NewStreamSummary(); empty.Summary() != (Summary{}) {
		t.Fatal("empty StreamSummary not zero Summary")
	}
}

package stats_test

import (
	"fmt"

	"crosssched/internal/stats"
)

// ExampleNewECDF shows empirical CDF evaluation and inversion.
func ExampleNewECDF() {
	e := stats.NewECDF([]float64{10, 20, 30, 40})
	fmt.Println(e.At(25))      // fraction of samples <= 25
	fmt.Println(e.Inverse(.5)) // empirical median
	// Output:
	// 0.5
	// 20
}

// ExampleSummarize computes the summary used across the figures.
func ExampleSummarize() {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	fmt.Println(s.N, s.Min, s.P50, s.Max)
	// Output:
	// 5 1 3 5
}

// ExampleHourlyCounts buckets submissions by local hour of day.
func ExampleHourlyCounts() {
	// events at t=0 and t=3600 with the trace starting at 8am local
	counts := stats.HourlyCounts([]float64{0, 3600}, 8)
	fmt.Println(counts[8], counts[9])
	// Output:
	// 1 1
}

// ExampleKolmogorovSmirnov measures distributional distance.
func ExampleKolmogorovSmirnov() {
	same := stats.KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3})
	disjoint := stats.KolmogorovSmirnov([]float64{1, 2}, []float64{10, 20})
	fmt.Println(same, disjoint)
	// Output:
	// 0 1
}

package stats

import (
	"sort"

	"crosssched/internal/dist"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point    float64
	Lo, Hi   float64
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap resamples used
}

// BootstrapCI estimates a confidence interval for an arbitrary statistic
// by the percentile bootstrap with resamples draws, deterministically
// seeded. Used by reports to qualify medians and means computed from a
// single synthetic trace. Returns a degenerate CI for empty input.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, seed uint64) CI {
	out := CI{Level: level, Resample: resamples}
	if len(xs) == 0 || resamples <= 0 {
		return out
	}
	out.Point = stat(xs)
	rng := dist.NewRNG(seed)
	estimates := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = stat(buf)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	out.Lo = QuantileSorted(estimates, alpha)
	out.Hi = QuantileSorted(estimates, 1-alpha)
	return out
}

// MedianCI is BootstrapCI specialized to the median with common defaults
// (95% level, 200 resamples).
func MedianCI(xs []float64, seed uint64) CI {
	return BootstrapCI(xs, Median, 0.95, 200, seed)
}

// MeanCI is BootstrapCI specialized to the mean with common defaults.
func MeanCI(xs []float64, seed uint64) CI {
	return BootstrapCI(xs, Mean, 0.95, 200, seed)
}

// Contains reports whether v lies within [Lo, Hi].
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// Package par is the repository's one bounded worker pool. Every many-run
// workload — the policy x backfill matrix, the relaxation-factor sweep, ES
// fitness populations, prediction model families, figure-suite prewarming —
// fans identical independent tasks out over a shared trace, and before this
// package each of them hand-rolled its own WaitGroup+semaphore copy with
// slightly different cancellation and error semantics. ForEach centralizes
// the contract:
//
//   - Bounded concurrency: at most Workers tasks run at once (default
//     GOMAXPROCS, the number of simulations that can make progress anyway).
//   - Deterministic results: tasks are identified by index; callers write
//     out[i] and ForEach reports the lowest-index error, so the outcome is
//     independent of goroutine interleaving.
//   - Cancellation: once ctx is canceled, unstarted tasks are skipped (and
//     reported as canceled); in-flight tasks observe ctx themselves, as
//     sim.RunContext already does.
//   - Panic capture: a panicking task cannot deadlock its siblings; the
//     panic is re-raised in the ForEach caller with the task index attached.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// limitKey carries a worker-count override in a context.
type limitKey struct{}

// WithLimit returns a context that caps the pool size of every ForEach call
// beneath it at n workers (n <= 0 removes the override). It is the plumbing
// for user-facing parallelism knobs — schedsim -parallel installs the flag
// value once and every experiment entry point inherits it without growing
// its signature.
func WithLimit(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, limitKey{}, n)
}

// Limit reports the worker cap carried by ctx, or 0 when none is set.
func Limit(ctx context.Context) int {
	if n, ok := ctx.Value(limitKey{}).(int); ok && n > 0 {
		return n
	}
	return 0
}

// Pool configures a bounded fan-out. The zero value is ready to use.
type Pool struct {
	// Workers bounds concurrency. <= 0 means the ctx limit (WithLimit) if
	// set, else GOMAXPROCS.
	Workers int
	// OnDone, when non-nil, is called after each task finishes (in the
	// worker goroutine, so implementations must be concurrency-safe; err is
	// nil for a successful task). Used for progress reporting on long
	// sweeps.
	OnDone func(i int, err error)
}

// taskPanic carries a captured panic from a worker to the caller.
type taskPanic struct {
	index int
	value any
	stack []byte
}

// ForEach runs fn(ctx, 0..n-1) on the pool and waits for completion. Every
// task runs (or is skipped due to cancellation) exactly once; the returned
// error is the lowest-index task error, so repeated runs fail identically
// regardless of scheduling. A task panic is re-raised on the caller's
// goroutine once the pool has drained, wrapped with the task index and
// carrying the worker's stack.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = Limit(ctx)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []taskPanic
	)
	done := ctx.Done()
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				panics = append(panics, taskPanic{index: i, value: r, stack: stack()})
				panicMu.Unlock()
				errs[i] = fmt.Errorf("par: task %d panicked: %v", i, r)
			}
			if p.OnDone != nil {
				p.OnDone(i, errs[i])
			}
		}()
		errs[i] = fn(ctx, i)
	}
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if done != nil {
				select {
				case <-done:
					// Skip unstarted work; the wrapped ctx error keeps the
					// caller's "first error by index" view deterministic
					// once every earlier task either succeeded or was also
					// canceled.
					errs[i] = fmt.Errorf("par: task %d skipped: %w", i, ctx.Err())
					if p.OnDone != nil {
						p.OnDone(i, errs[i])
					}
					continue
				default:
				}
			}
			runOne(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if len(panics) > 0 {
		// Deterministic re-raise: the lowest task index wins.
		min := panics[0]
		for _, tp := range panics[1:] {
			if tp.index < min.index {
				min = tp
			}
		}
		panic(fmt.Sprintf("par: task %d panicked: %v\n\nworker stack:\n%s", min.index, min.value, min.stack))
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn over [0, n) on a default pool (GOMAXPROCS workers, or the
// ctx limit installed by WithLimit).
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	var p Pool
	return p.ForEach(ctx, n, fn)
}

// stack captures the calling goroutine's stack for panic reports.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int64
	err := ForEach(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	if err := ForEach(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), -3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	want := errors.New("boom-17")
	err := ForEach(context.Background(), 64, func(_ context.Context, i int) error {
		switch i {
		case 17:
			return want
		case 40:
			return errors.New("boom-40")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want the lowest-index error %v", err, want)
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	p := Pool{Workers: workers}
	err := p.ForEach(context.Background(), 100, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", m, workers)
	}
}

func TestForEachCancellationSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	p := Pool{Workers: 1}
	err := p.ForEach(ctx, 100, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Single worker: tasks 0..3 ran, everything after the cancel is skipped.
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d tasks ran after cancellation, want 4", got)
	}
}

func TestForEachPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "task 5 panicked") || !strings.Contains(msg, "kaboom") {
			t.Fatalf("unexpected panic payload: %s", msg)
		}
	}()
	p := Pool{Workers: 2}
	_ = p.ForEach(context.Background(), 32, func(_ context.Context, i int) error {
		if i == 5 || i == 20 {
			panic(fmt.Sprintf("kaboom-%d", i))
		}
		return nil
	})
}

func TestForEachOnDoneSeesEveryTask(t *testing.T) {
	const n = 50
	var done atomic.Int64
	p := Pool{OnDone: func(i int, err error) { done.Add(1) }}
	if err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != n {
		t.Fatalf("OnDone fired %d times, want %d", got, n)
	}
}

func TestWithLimit(t *testing.T) {
	ctx := WithLimit(context.Background(), 2)
	if got := Limit(ctx); got != 2 {
		t.Fatalf("Limit = %d, want 2", got)
	}
	if got := Limit(context.Background()); got != 0 {
		t.Fatalf("Limit of bare ctx = %d, want 0", got)
	}
	if got := Limit(WithLimit(context.Background(), -1)); got != 0 {
		t.Fatalf("Limit with negative override = %d, want 0", got)
	}
	// The override actually bounds the pool.
	var cur, max atomic.Int64
	err := ForEach(ctx, 4*runtime.GOMAXPROCS(0), func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > 2 {
		t.Fatalf("ctx-limited pool ran %d tasks concurrently, want <= 2", m)
	}
}

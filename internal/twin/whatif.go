package twin

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"crosssched/internal/fault"
	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// ParsePolicy is sim.ParsePolicy, case-insensitively ("sjf" == "SJF") —
// the twin's wire format is typed by humans and curl scripts.
func ParsePolicy(s string) (sim.Policy, error) {
	for _, p := range sim.Policies {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return sim.FCFS, fmt.Errorf("twin: unknown policy %q", s)
}

// ParseBackfill is sim.ParseBackfill, case-insensitively.
func ParseBackfill(s string) (sim.BackfillKind, error) {
	for _, b := range sim.Backfills {
		if strings.EqualFold(b.String(), s) {
			return b, nil
		}
	}
	return sim.NoBackfill, fmt.Errorf("twin: unknown backfill %q", s)
}

// Candidate is one scheduling configuration a what-if query evaluates.
type Candidate struct {
	// Policy and Backfill name a sim.Policy / sim.BackfillKind ("fcfs",
	// "sjf", ..., "easy", "conservative", ...). Empty means the session's
	// baseline value.
	Policy   string `json:"policy,omitempty"`
	Backfill string `json:"backfill,omitempty"`
	// RelaxFactor tunes relaxed/adaptive backfilling (0 = default 0.10).
	RelaxFactor float64 `json:"relax,omitempty"`
	// Faults is a fault.ParseSpec scenario injected into the fork (e.g.
	// "mtbf=86400,mttr=3600,frac=0.25,recovery=requeue"). Its RNG is keyed
	// by the what-if seed unless the spec pins its own.
	Faults string `json:"faults,omitempty"`
}

// WhatIfRequest asks a session to fork and compare candidates.
type WhatIfRequest struct {
	Candidates []Candidate `json:"candidates"`
	// Seed overrides the session seed for fault injection in this query.
	Seed *uint64 `json:"seed,omitempty"`
}

// Outcome is one candidate's scored replay. Wait/bsld aggregate over the
// jobs still pending (not yet started) at the session clock — the jobs the
// recommendation can still help — while util and makespan cover the whole
// replay. Deltas are candidate minus baseline: negative wait/bsld deltas
// and positive util deltas are improvements.
type Outcome struct {
	Rank      int       `json:"rank"`
	Candidate Candidate `json:"candidate"`

	AvgWait     float64 `json:"avg_wait"`
	AvgBsld     float64 `json:"avg_bsld"`
	Utilization float64 `json:"util"`
	Makespan    float64 `json:"makespan"`
	Violations  int     `json:"violations"`
	Backfilled  int     `json:"backfilled"`
	// Fault-injection outcomes (zero without a fault spec).
	Interrupted int `json:"interrupted,omitempty"`
	FaultFailed int `json:"fault_failed,omitempty"`

	DeltaWait float64 `json:"d_wait"`
	DeltaBsld float64 `json:"d_bsld"`
	DeltaUtil float64 `json:"d_util"`
}

// Report is a ranked what-if reply. For a fixed session state and seed it
// is byte-identical across worker counts: candidate runs are indexed, the
// simulator is deterministic, and ranking ties break by candidate order.
type Report struct {
	Session     string    `json:"session"`
	Now         float64   `json:"now"`
	Seed        uint64    `json:"seed"`
	PendingJobs int       `json:"pending_jobs"`
	Baseline    Outcome   `json:"baseline"`
	Ranking     []Outcome `json:"ranking"`
}

// WhatIf forks the twin and replays the submission log under every
// candidate concurrently (pooled sim.Runner workers via internal/par),
// returning the ranked outcomes. The fork is a counterfactual replay from
// trace start: jobs already dispatched in the baseline are re-scheduled
// too (the simulator has no warm start), but scoring is restricted to the
// still-pending jobs so committed work does not drown the signal.
func (s *Session) WhatIf(ctx context.Context, req WhatIfRequest) (*Report, error) {
	if len(req.Candidates) == 0 {
		return nil, fmt.Errorf("twin: what-if needs at least one candidate")
	}
	if len(req.Candidates) > s.limits.MaxCandidates {
		return nil, fmt.Errorf("%w: %d candidates exceed cap %d",
			ErrBudget, len(req.Candidates), s.limits.MaxCandidates)
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}

	// Snapshot session state; the jobs slice is append-only so sharing the
	// prefix with concurrent submissions is safe.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if err := s.ensureReplayLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	now := s.now
	jobs := s.jobs[:len(s.jobs):len(s.jobs)]
	base := s.replay.res
	s.mu.Unlock()

	if base == nil {
		return nil, fmt.Errorf("%w: session has no jobs", ErrEmpty)
	}
	// pending: jobs that have not started at the clock under the baseline
	// (strictly-before semantics, matching event publication).
	pending := make([]bool, len(jobs))
	nPending := 0
	for i := range base.Jobs {
		if base.Jobs[i].Submit+base.Jobs[i].Wait >= now {
			pending[i] = true
			nPending++
		}
	}
	if nPending == 0 {
		return nil, fmt.Errorf("%w: every job has already started at t=%v", ErrEmpty, now)
	}

	// Resolve candidates up front so a bad spec fails before the fan-out.
	opts := make([]sim.Options, len(req.Candidates))
	for i, c := range req.Candidates {
		opt, err := s.candidateOptions(c, seed)
		if err != nil {
			return nil, fmt.Errorf("twin: candidate %d: %w", i, err)
		}
		opts[i] = opt
	}

	tr := &trace.Trace{System: trace.System{
		Name:            "twin:" + s.ID,
		Kind:            trace.HPC,
		TotalCores:      s.cfg.Cores,
		VirtualClusters: s.cfg.Partitions,
	}, Jobs: jobs}

	// Warm starts: each fault-free candidate forks a checkpoint already
	// advanced to the clock instead of replaying the log from t=0. A nil
	// entry (fault injection, cold mode, table full, or a checkpoint raced
	// past this snapshot) replays cold; the checkpoint contract makes both
	// paths byte-identical, so mixing them per candidate is invisible in
	// the report.
	cks := make([]*sim.Checkpoint, len(opts))
	nCold := 0
	for i := range opts {
		if !s.cfg.ColdWhatIf && !opts[i].Faults.Enabled() {
			cks[i] = s.warmCheckpoint(opts[i], tr, now)
		}
		if cks[i] == nil {
			nCold++
		}
	}
	// Cold replays additionally shard across the cores the fan-out leaves
	// idle (ineligible configurations fall back inside the simulator).
	if shards := runtime.GOMAXPROCS(0) / max(nCold, 1); shards > 1 {
		for i := range opts {
			if cks[i] == nil {
				opts[i].Shards = shards
			}
		}
	}

	results := make([]*sim.Result, len(opts))
	err := par.ForEach(ctx, len(opts), func(ctx context.Context, i int) error {
		var res *sim.Result
		var err error
		if cks[i] != nil {
			res, err = cks[i].WhatIf(ctx)
		} else {
			res, err = sim.RunContext(ctx, tr, opts[i])
		}
		if err != nil {
			return fmt.Errorf("twin: candidate %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Session:     s.ID,
		Now:         now,
		Seed:        seed,
		PendingJobs: nPending,
		Baseline:    score(Candidate{Policy: s.cfg.Policy.String(), Backfill: s.cfg.Backfill.String(), RelaxFactor: s.cfg.RelaxFactor}, base, pending, nPending),
	}
	rep.Ranking = make([]Outcome, len(results))
	for i, res := range results {
		out := score(req.Candidates[i], res, pending, nPending)
		out.DeltaWait = out.AvgWait - rep.Baseline.AvgWait
		out.DeltaBsld = out.AvgBsld - rep.Baseline.AvgBsld
		out.DeltaUtil = out.Utilization - rep.Baseline.Utilization
		rep.Ranking[i] = out
	}
	order := make([]int, len(rep.Ranking))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := &rep.Ranking[order[a]], &rep.Ranking[order[b]]
		if oa.AvgWait != ob.AvgWait {
			return oa.AvgWait < ob.AvgWait
		}
		if oa.AvgBsld != ob.AvgBsld {
			return oa.AvgBsld < ob.AvgBsld
		}
		if oa.Utilization != ob.Utilization {
			return oa.Utilization > ob.Utilization
		}
		return order[a] < order[b] // deterministic tie-break: request order
	})
	ranked := make([]Outcome, len(order))
	for rank, idx := range order {
		ranked[rank] = rep.Ranking[idx]
		ranked[rank].Rank = rank + 1
	}
	rep.Ranking = ranked
	return rep, nil
}

// candidateOptions translates a wire candidate into simulator options.
func (s *Session) candidateOptions(c Candidate, seed uint64) (sim.Options, error) {
	opt := s.baseOptions()
	var err error
	if c.Policy != "" {
		if opt.Policy, err = ParsePolicy(c.Policy); err != nil {
			return opt, err
		}
	}
	if c.Backfill != "" {
		if opt.Backfill, err = ParseBackfill(c.Backfill); err != nil {
			return opt, err
		}
	}
	if c.RelaxFactor != 0 {
		if c.RelaxFactor < 0 {
			return opt, fmt.Errorf("negative relax factor %v", c.RelaxFactor)
		}
		opt.RelaxFactor = c.RelaxFactor
	}
	if c.Faults != "" {
		fc, err := fault.ParseSpec(c.Faults)
		if err != nil {
			return opt, err
		}
		if fc.Seed == 0 {
			fc.Seed = seed
		}
		if err := fc.Validate(s.cfg.Partitions); err != nil {
			return opt, err
		}
		opt.Faults = fc
	}
	return opt, nil
}

// warmCheckpoint returns the session's paused simulation for one candidate
// configuration, caught up to the query snapshot — created on first use,
// then extended with the log suffix and advanced to the clock. It returns
// nil when the candidate must replay cold: the table is at capacity, a
// checkpoint operation failed (the entry is dropped so the next query
// rebuilds it), or a concurrent query with a longer log already pushed the
// checkpoint past this snapshot (forking it would cover jobs the snapshot
// does not).
//
// The Extend precondition — suffix jobs arrive at or after the pause time —
// holds by construction: the pause time is always some earlier session
// clock, the clock is monotone, and Submit clamps every appended job to at
// least the clock at append time.
func (s *Session) warmCheckpoint(opt sim.Options, tr *trace.Trace, now float64) *sim.Checkpoint {
	key := fmt.Sprintf("%s|%s|%g", opt.Policy, opt.Backfill, opt.RelaxFactor)
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	ck := s.warm[key]
	if ck == nil {
		if len(s.warm) >= s.limits.MaxCandidates {
			return nil // table full: replay cold, keep the hot keys warm
		}
		ck, err := sim.RunToCheckpoint(tr, opt, now)
		if err != nil {
			return nil
		}
		if s.warm == nil {
			s.warm = make(map[string]*sim.Checkpoint)
		}
		s.warm[key] = ck
		return ck
	}
	if ck.Len() > len(tr.Jobs) || ck.PausedAt() > now {
		return nil
	}
	if n := ck.Len(); n < len(tr.Jobs) {
		if err := ck.Extend(tr.Jobs[n:]); err != nil {
			delete(s.warm, key)
			return nil
		}
	}
	if err := ck.AdvanceTo(now); err != nil {
		delete(s.warm, key)
		return nil
	}
	return ck
}

// score aggregates one replay over the pending set.
func score(c Candidate, res *sim.Result, pending []bool, nPending int) Outcome {
	const tau = 10 // sim's default BsldTau
	var waitSum, bsldSum float64
	for i := range pending {
		if !pending[i] {
			continue
		}
		j := &res.Jobs[i]
		waitSum += j.Wait
		r := j.Run
		if r < tau {
			r = tau
		}
		bsld := (j.Wait + j.Run) / r
		if bsld < 1 {
			bsld = 1
		}
		bsldSum += bsld
	}
	return Outcome{
		Candidate:   c,
		AvgWait:     waitSum / float64(nPending),
		AvgBsld:     bsldSum / float64(nPending),
		Utilization: res.Utilization,
		Makespan:    res.Makespan,
		Violations:  res.Violations,
		Backfilled:  res.Backfilled,
		Interrupted: res.Interrupted,
		FaultFailed: res.FaultFailed,
	}
}

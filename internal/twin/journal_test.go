package twin

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords is a small representative journal: a create followed by
// submits and advances.
func testRecords() []*record {
	return []*record{
		{Op: opCreate, ID: "s000001", Cfg: &journalConfig{Cores: 64, Partitions: 2, Policy: "SJF", Backfill: "easy", Seed: 7}},
		{Op: opSubmit, Jobs: []journalJob{{ID: 0, Submit: 0, Run: 60, Procs: 2, VC: -1}, {ID: 1, Submit: 30, Run: 600, Procs: 4, VC: 1}}},
		{Op: opAdvance, To: 500},
		{Op: opSubmit, Jobs: []journalJob{{ID: 2, Submit: 500, Run: 120, Procs: 1, VC: -1}}},
		{Op: opAdvance, To: 1200},
	}
}

func writeJournal(t *testing.T, dir string, opts journalOpts, recs []*record) {
	t.Helper()
	j, err := openJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
}

func mustReplay(t *testing.T, dir string, wantTruncated bool) []record {
	t.Helper()
	recs, truncated, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != wantTruncated {
		t.Fatalf("truncated = %v, want %v", truncated, wantTruncated)
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	writeJournal(t, dir, journalOpts{}, want)
	got := mustReplay(t, dir, false)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], *want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], *want[i])
		}
	}
	// The config survives the string round-trip through Parse*.
	cfg, err := fromJournalConfig(got[0].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back := toJournalConfig(cfg); !reflect.DeepEqual(back, want[0].Cfg) {
		t.Errorf("config round-trip = %+v, want %+v", back, want[0].Cfg)
	}
}

func TestJournalAppendContinuesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeJournal(t, dir, journalOpts{}, recs[:3])
	writeJournal(t, dir, journalOpts{}, recs[3:]) // reopen appends, not truncates
	if got := mustReplay(t, dir, false); len(got) != len(recs) {
		t.Fatalf("replayed %d records across reopen, want %d", len(got), len(recs))
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, journalOpts{segBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := j.append(&record{Op: opAdvance, To: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce >= 3", len(segs))
	}
	got := mustReplay(t, dir, false)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	for i, r := range got {
		if r.To != float64(i+1) {
			t.Fatalf("record %d out of order: To = %v", i, r.To)
		}
	}
}

func TestJournalFsyncPolicies(t *testing.T) {
	count := func(j *journal) *int {
		n := new(int)
		inner := j.syncFn
		j.syncFn = func(f *os.File) error { *n++; return inner(f) }
		return n
	}
	appendN := func(t *testing.T, j *journal, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := j.append(&record{Op: opAdvance, To: float64(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("always", func(t *testing.T) {
		j, err := openJournal(t.TempDir(), journalOpts{policy: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		n := count(j)
		appendN(t, j, 5)
		if *n != 5 {
			t.Errorf("always: %d syncs for 5 appends, want 5", *n)
		}
		if err := j.close(); err != nil {
			t.Fatal(err)
		}
		if *n != 5 {
			t.Errorf("always: close re-synced a clean journal (%d syncs)", *n)
		}
	})
	t.Run("interval", func(t *testing.T) {
		// A huge interval means appends never sync; close still flushes.
		j, err := openJournal(t.TempDir(), journalOpts{policy: FsyncInterval, every: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		n := count(j)
		appendN(t, j, 5)
		if *n != 0 {
			t.Errorf("interval(1h): %d syncs for 5 appends, want 0", *n)
		}
		if err := j.close(); err != nil {
			t.Fatal(err)
		}
		if *n != 1 {
			t.Errorf("interval(1h): close produced %d syncs, want 1", *n)
		}
	})
	t.Run("never", func(t *testing.T) {
		j, err := openJournal(t.TempDir(), journalOpts{policy: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		n := count(j)
		appendN(t, j, 5)
		if *n != 0 {
			t.Errorf("never: %d syncs for 5 appends, want 0", *n)
		}
		if err := j.close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in     string
		policy FsyncPolicy
		every  time.Duration
		bad    bool
	}{
		{in: "always", policy: FsyncAlways},
		{in: "Never", policy: FsyncNever},
		{in: "interval", policy: FsyncInterval, every: defaultFsyncEvery},
		{in: "", policy: FsyncInterval, every: defaultFsyncEvery},
		{in: "250ms", policy: FsyncInterval, every: 250 * time.Millisecond},
		{in: "-5s", bad: true},
		{in: "sometimes", bad: true},
	}
	for _, c := range cases {
		p, every, err := ParseFsync(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseFsync(%q): want error", c.in)
			}
			continue
		}
		if err != nil || p != c.policy || every != c.every {
			t.Errorf("ParseFsync(%q) = (%v, %v, %v), want (%v, %v)", c.in, p, every, err, c.policy, c.every)
		}
	}
}

// segPaths returns the single segment file of a freshly written journal.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := segmentFiles(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", segs, err)
	}
	return filepath.Join(dir, "000001"+segmentSuffix)
}

func TestJournalTornTailTruncated(t *testing.T) {
	recs := testRecords()

	t.Run("garbage-appended", func(t *testing.T) {
		dir := t.TempDir()
		writeJournal(t, dir, journalOpts{}, recs)
		path := onlySegment(t, dir)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A torn frame: header bytes with no newline, as a crash mid-write
		// leaves behind.
		if _, err := f.Write([]byte("00000040 deadbeef {\"op\":\"adv")); err != nil {
			t.Fatal(err)
		}
		f.Close()
		pre, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		got := mustReplay(t, dir, true)
		if len(got) != len(recs) {
			t.Fatalf("replayed %d records, want all %d good ones", len(got), len(recs))
		}
		post, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if post.Size() >= pre.Size() {
			t.Fatalf("file not truncated: %d -> %d bytes", pre.Size(), post.Size())
		}
		// The truncation healed the file: a second replay is clean and a
		// reopened journal appends after the cut.
		writeJournal(t, dir, journalOpts{}, []*record{{Op: opAdvance, To: 9999}})
		if got := mustReplay(t, dir, false); len(got) != len(recs)+1 || got[len(got)-1].To != 9999 {
			t.Fatalf("append after truncation: got %d records", len(got))
		}
	})

	t.Run("chopped-mid-frame", func(t *testing.T) {
		dir := t.TempDir()
		writeJournal(t, dir, journalOpts{}, recs)
		path := onlySegment(t, dir)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, st.Size()-5); err != nil { // cut into the last frame
			t.Fatal(err)
		}
		got := mustReplay(t, dir, true)
		if len(got) != len(recs)-1 {
			t.Fatalf("replayed %d records after chop, want %d", len(got), len(recs)-1)
		}
	})

	t.Run("flipped-crc-mid-file", func(t *testing.T) {
		dir := t.TempDir()
		// Rotate aggressively so corruption in segment 1 must also drop
		// segment 2 entirely.
		writeJournal(t, dir, journalOpts{segBytes: 128}, recs)
		segs, err := segmentFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) < 2 {
			t.Fatalf("setup: want >= 2 segments, got %d", len(segs))
		}
		first := filepath.Join(dir, "000001"+segmentSuffix)
		data, err := os.ReadFile(first)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt a payload byte in the FIRST frame (past the 18-byte
		// header, inside the JSON).
		i := 18 + bytes.IndexByte(data[18:], ':')
		data[i+1] ^= 0xff
		if err := os.WriteFile(first, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got := mustReplay(t, dir, true)
		if len(got) != 0 {
			t.Fatalf("replayed %d records past a corrupt first frame, want 0", len(got))
		}
		if left, _ := segmentFiles(dir); len(left) != 1 {
			t.Fatalf("later segments not deleted: %v", left)
		}
	})
}

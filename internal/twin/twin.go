// Package twin implements the digital-twin scheduling service behind
// cmd/lumosweb: long-lived per-client sessions that mirror a cluster's
// submission queue in a continuously-advancing simulation and answer
// what-if queries against it.
//
// Each Session holds a cluster shape (a calibrated profile's geometry or a
// client-supplied cores/partitions pair), an append-only submission log,
// and a simulation clock. The twin itself is a deterministic replay: the
// session's baseline schedule is recomputed lazily from the log with the
// pooled sim.Runner, and advancing the clock publishes the replay's
// decision events (strictly before the new clock) to SSE subscribers
// through a bounded, drop-oldest obs.Hub. Because submissions are clamped
// to the current clock and the simulator is causal — a job cannot change
// decisions made strictly before its submit time — the published event
// prefix never contradicts a later replay.
//
// A what-if query forks the twin: the submission log is replayed under N
// candidate policy x backfill x fault configurations concurrently on the
// internal/par worker pool (each worker checking a warm sim.Runner out of
// the shared pool), the outcomes are scored on the jobs still pending at
// the session clock, and a ranking with wait/bsld/util deltas against the
// session's own configuration is returned. Replies are deterministic for a
// fixed log, clock, and seed, independent of worker count: candidate runs
// are indexed, fault injection is seeded, and ties rank by candidate
// order.
//
// Resource bounds are explicit so thousands of sessions fit one process:
// an LRU cap on live sessions (the oldest is evicted, its subscribers
// disconnected), a per-session submission cap, a per-session subscriber
// budget, fixed-size per-subscriber event rings, and a candidate cap per
// what-if. A Manager owns exactly one background goroutine — the
// wall-clock ticker that advances auto-ticking sessions — so the
// goroutine count is bounded by live SSE connections, which the HTTP
// layer owns.
package twin

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"crosssched/internal/obs"
	"crosssched/internal/trace"
)

// Sentinel errors; the HTTP layer maps these to status codes.
var (
	// ErrClosed: the manager or session has been shut down.
	ErrClosed = errors.New("twin: closed")
	// ErrNotFound: no session with that ID.
	ErrNotFound = errors.New("twin: session not found")
	// ErrBudget: a resource cap (jobs, subscribers, candidates) was hit.
	ErrBudget = errors.New("twin: budget exhausted")
	// ErrEmpty: the operation needs pending jobs and there are none.
	ErrEmpty = errors.New("twin: nothing to replay")
)

// Config bounds a Manager. The zero value gets serving-safe defaults.
type Config struct {
	// MaxSessions caps live sessions; creating one more evicts the least
	// recently used (default 2048).
	MaxSessions int
	// MaxJobs caps a session's submission log (default 10000).
	MaxJobs int
	// MaxSubscribers is the per-session SSE budget (default 16) — the
	// per-session goroutine budget, since subscribers are the only
	// goroutines a session induces.
	MaxSubscribers int
	// EventBuffer is the per-subscriber ring size (default 256). A slow
	// client loses the oldest events, never the session.
	EventBuffer int
	// MaxCandidates caps one what-if's fan-out (default 64).
	MaxCandidates int
	// TickInterval is the wall-clock granularity at which auto-ticking
	// sessions advance (default 1s).
	TickInterval time.Duration
	// StateDir, when non-empty, makes sessions durable: each gets a
	// write-ahead journal under StateDir/<id>/, NewManager recovers
	// journaled sessions on startup, and LRU eviction parks sessions to
	// disk instead of destroying them. Empty (the default) keeps today's
	// in-memory-only behavior, bit-identical.
	StateDir string
	// Fsync and FsyncEvery pick the journal durability policy (default:
	// FsyncInterval every 100ms). SegmentBytes caps one journal segment
	// before rotation (default 1 MiB).
	Fsync        FsyncPolicy
	FsyncEvery   time.Duration
	SegmentBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2048
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 10000
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 16
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 64
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	return c
}

// Manager owns the session table: creation, LRU eviction (spill-to-disk
// parking when durable), lookup with transparent reactivation, the shared
// wall-clock ticker, and teardown. All methods are safe for concurrent
// use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*list.Element // value: *Session
	lru      *list.List               // front = most recently used
	parked   map[string]bool          // durable sessions spilled to disk
	reviving map[string]*recoverOp    // single-flight reactivations
	metrics  obs.Metrics              // Twin* counters, guarded by mu
	seq      uint64
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// recoverOp de-duplicates concurrent reactivations of one parked session:
// the first Get replays the journal, later Gets wait on done.
type recoverOp struct {
	done chan struct{}
	s    *Session
	err  error
}

// sessionID is the manager's ID scheme; recovery trusts only directory
// names matching it.
var sessionID = regexp.MustCompile(`^s(\d{6,})$`)

// NewManager starts a manager (and its single ticker goroutine). With
// StateDir set it first recovers every journaled session found there —
// torn or corrupt journal tails are truncated at the first bad frame, not
// fatal — loading up to MaxSessions into memory (newest last, so they are
// most recently used) and registering any surplus as parked.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*list.Element),
		lru:      list.New(),
		parked:   make(map[string]bool),
		reviving: make(map[string]*recoverOp),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if m.cfg.StateDir != "" {
		m.recoverAll()
	}
	go m.tickLoop()
	return m
}

// recoverAll scans StateDir and rebuilds sessions. It runs before the
// manager is published, so no locking is needed; failures skip the
// directory (the journal stays on disk untouched) rather than failing
// startup.
func (m *Manager) recoverAll() {
	_ = os.MkdirAll(m.cfg.StateDir, 0o755)
	ents, err := os.ReadDir(m.cfg.StateDir)
	if err != nil {
		return
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() && sessionID.MatchString(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if n, err := strconv.ParseUint(sessionID.FindStringSubmatch(id)[1], 10, 64); err == nil && n > m.seq {
			m.seq = n
		}
		if m.lru.Len() >= m.cfg.MaxSessions {
			// Surplus stays on disk; the first Get reactivates it (and
			// parks a colder session in exchange).
			m.parked[id] = true
			continue
		}
		s, truncated, err := m.recoverSession(id)
		if truncated {
			m.metrics.TwinTruncations++
		}
		if err != nil {
			continue
		}
		m.sessions[id] = m.lru.PushFront(s)
		m.metrics.TwinRecovered++
	}
}

// recoverSession rebuilds one session from its journal directory and
// reopens the journal for appending. The restore invariant: a session is a
// deterministic replay of its log, so replaying the journaled inputs
// reproduces the pre-crash published event prefix byte-for-byte.
func (m *Manager) recoverSession(id string) (*Session, bool, error) {
	dir := filepath.Join(m.cfg.StateDir, id)
	recs, truncated, err := replayJournal(dir)
	if err != nil {
		return nil, truncated, err
	}
	if len(recs) == 0 || recs[0].Op != opCreate || recs[0].Cfg == nil {
		return nil, truncated, fmt.Errorf("twin: journal %s: missing create record", dir)
	}
	cfg, err := fromJournalConfig(recs[0].Cfg)
	if err != nil {
		return nil, truncated, err
	}
	s, err := newSession(id, cfg, m.cfg)
	if err != nil {
		return nil, truncated, err
	}
	var jobs []trace.Job
	var now float64
	for _, rec := range recs[1:] {
		switch rec.Op {
		case opSubmit:
			jobs = append(jobs, fromJournalJobs(rec.Jobs)...)
		case opAdvance:
			if rec.To > now {
				now = rec.To
			}
		}
	}
	if err := s.restore(jobs, now); err != nil {
		return nil, truncated, err
	}
	if jr, err := openJournal(dir, m.journalOpts()); err != nil {
		// Recovered but not re-journalable: serve it ephemeral rather
		// than lose it. Pre-publication, so direct field writes are safe.
		s.ephemeral = true
		m.metrics.TwinEphemeral++
	} else {
		s.attachJournal(jr, m.noteEphemeral)
	}
	return s, truncated, nil
}

func (m *Manager) journalOpts() journalOpts {
	return journalOpts{policy: m.cfg.Fsync, every: m.cfg.FsyncEvery, segBytes: m.cfg.SegmentBytes}
}

// noteEphemeral is the sessions' degradation hook (called under the
// session's own lock; s.mu -> m.mu is the safe acquisition order).
func (m *Manager) noteEphemeral() {
	m.mu.Lock()
	m.metrics.TwinEphemeral++
	m.mu.Unlock()
}

// Metrics returns a copy of the manager's durability counters.
func (m *Manager) Metrics() obs.Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics
}

// Create builds a session and registers it, evicting the least recently
// used session when the cap is reached — to disk when it has a journal,
// destructively otherwise.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("s%06d", m.seq)
	m.mu.Unlock()

	// Build outside the lock: profile resolution and validation don't need
	// the table.
	s, err := newSession(id, cfg, m.cfg)
	if err != nil {
		return nil, err
	}
	if m.cfg.StateDir != "" {
		m.journalCreate(s)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.Close()
		return nil, ErrClosed
	}
	victims := m.insertLocked(s)
	m.mu.Unlock()
	m.retire(victims)
	return s, nil
}

// journalCreate opens the new session's journal and writes its create
// record. Failure degrades the session to ephemeral instead of failing
// the create: no durability beats no service.
func (m *Manager) journalCreate(s *Session) {
	dir := filepath.Join(m.cfg.StateDir, s.ID)
	jr, err := openJournal(dir, m.journalOpts())
	if err == nil {
		err = jr.append(&record{Op: opCreate, ID: s.ID, Cfg: toJournalConfig(s.cfg)})
		if err != nil {
			_ = jr.close()
		}
	}
	if err != nil {
		s.ephemeral = true
		m.noteEphemeral()
		return
	}
	s.attachJournal(jr, m.noteEphemeral)
}

// insertLocked registers s as most recently used and pops LRU entries
// while over the cap, returning them for the caller to retire outside the
// table lock. Caller holds m.mu.
func (m *Manager) insertLocked(s *Session) []*Session {
	var victims []*Session
	for m.lru.Len() >= m.cfg.MaxSessions {
		oldest := m.lru.Back()
		old := oldest.Value.(*Session)
		m.lru.Remove(oldest)
		delete(m.sessions, old.ID)
		victims = append(victims, old)
	}
	m.sessions[s.ID] = m.lru.PushFront(s)
	return victims
}

// retire disposes of evicted sessions: durable ones are parked (journal
// flushed and closed, THEN registered as parked, so a reactivation can
// never read a journal mid-flush), the rest are destroyed. A parked
// session answers its subscribers with a terminal "parked" reason.
func (m *Manager) retire(victims []*Session) {
	for _, old := range victims {
		if !old.park() {
			old.closeReason("evicted")
			continue
		}
		m.mu.Lock()
		if !m.closed {
			m.parked[old.ID] = true
			m.metrics.TwinParked++
		}
		m.mu.Unlock()
	}
}

// Get returns the session and marks it most recently used. A parked
// session is transparently reactivated from its journal first (single-
// flight: concurrent Gets share one replay).
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := m.sessions[id]; ok {
		m.lru.MoveToFront(el)
		s := el.Value.(*Session)
		m.mu.Unlock()
		return s, nil
	}
	if op, ok := m.reviving[id]; ok {
		m.mu.Unlock()
		<-op.done
		return op.s, op.err
	}
	if !m.parked[id] {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	op := &recoverOp{done: make(chan struct{})}
	m.reviving[id] = op
	m.mu.Unlock()

	s, truncated, err := m.recoverSession(id) // journal replay, outside the lock

	var victims []*Session
	m.mu.Lock()
	delete(m.reviving, id)
	if truncated {
		m.metrics.TwinTruncations++
	}
	if err == nil && m.closed {
		err = ErrClosed
	}
	if err == nil {
		delete(m.parked, id)
		m.metrics.TwinRecovered++
		m.metrics.TwinReactivated++
		victims = m.insertLocked(s)
	}
	m.mu.Unlock()
	if err != nil {
		if s != nil {
			s.Close()
		}
		op.err = fmt.Errorf("twin: reactivate %q: %w", id, err)
		close(op.done)
		return nil, op.err
	}
	op.s = s
	close(op.done)
	m.retire(victims)
	return s, nil
}

// Delete tears a session down — live or parked — and removes its durable
// state. It reports ErrNotFound for unknown IDs.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	el, ok := m.sessions[id]
	if ok {
		m.lru.Remove(el)
		delete(m.sessions, id)
	}
	wasParked := m.parked[id]
	delete(m.parked, id)
	m.mu.Unlock()
	if !ok && !wasParked {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if ok {
		el.Value.(*Session).Close()
	}
	if m.cfg.StateDir != "" {
		_ = os.RemoveAll(filepath.Join(m.cfg.StateDir, id))
	}
	return nil
}

// Len reports the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Close stops the ticker and tears down every session, disconnecting
// subscribers so in-flight SSE requests can drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var all []*Session
	for el := m.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*Session))
	}
	m.sessions = map[string]*list.Element{}
	m.lru.Init()
	m.mu.Unlock()

	close(m.stop)
	<-m.done
	for _, s := range all {
		s.Close()
	}
}

// tickLoop advances auto-ticking sessions by wall-clock time. It is the
// manager's only background goroutine.
func (m *Manager) tickLoop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.TickInterval)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			dt := now.Sub(last).Seconds()
			last = now
			for _, s := range m.ticking() {
				// Errors (closed session racing eviction) are benign here.
				_ = s.AdvanceBy(s.cfg.TickRate * dt)
			}
		}
	}
}

// ticking snapshots the sessions with a tick rate, so Advance runs outside
// the table lock.
func (m *Manager) ticking() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Session
	for el := m.lru.Front(); el != nil; el = el.Next() {
		if s := el.Value.(*Session); s.cfg.TickRate > 0 {
			out = append(out, s)
		}
	}
	return out
}

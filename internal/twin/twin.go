// Package twin implements the digital-twin scheduling service behind
// cmd/lumosweb: long-lived per-client sessions that mirror a cluster's
// submission queue in a continuously-advancing simulation and answer
// what-if queries against it.
//
// Each Session holds a cluster shape (a calibrated profile's geometry or a
// client-supplied cores/partitions pair), an append-only submission log,
// and a simulation clock. The twin itself is a deterministic replay: the
// session's baseline schedule is recomputed lazily from the log with the
// pooled sim.Runner, and advancing the clock publishes the replay's
// decision events (strictly before the new clock) to SSE subscribers
// through a bounded, drop-oldest obs.Hub. Because submissions are clamped
// to the current clock and the simulator is causal — a job cannot change
// decisions made strictly before its submit time — the published event
// prefix never contradicts a later replay.
//
// A what-if query forks the twin: the submission log is replayed under N
// candidate policy x backfill x fault configurations concurrently on the
// internal/par worker pool (each worker checking a warm sim.Runner out of
// the shared pool), the outcomes are scored on the jobs still pending at
// the session clock, and a ranking with wait/bsld/util deltas against the
// session's own configuration is returned. Replies are deterministic for a
// fixed log, clock, and seed, independent of worker count: candidate runs
// are indexed, fault injection is seeded, and ties rank by candidate
// order.
//
// Resource bounds are explicit so thousands of sessions fit one process:
// an LRU cap on live sessions (the oldest is evicted, its subscribers
// disconnected), a per-session submission cap, a per-session subscriber
// budget, fixed-size per-subscriber event rings, and a candidate cap per
// what-if. A Manager owns exactly one background goroutine — the
// wall-clock ticker that advances auto-ticking sessions — so the
// goroutine count is bounded by live SSE connections, which the HTTP
// layer owns.
package twin

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors; the HTTP layer maps these to status codes.
var (
	// ErrClosed: the manager or session has been shut down.
	ErrClosed = errors.New("twin: closed")
	// ErrNotFound: no session with that ID.
	ErrNotFound = errors.New("twin: session not found")
	// ErrBudget: a resource cap (jobs, subscribers, candidates) was hit.
	ErrBudget = errors.New("twin: budget exhausted")
	// ErrEmpty: the operation needs pending jobs and there are none.
	ErrEmpty = errors.New("twin: nothing to replay")
)

// Config bounds a Manager. The zero value gets serving-safe defaults.
type Config struct {
	// MaxSessions caps live sessions; creating one more evicts the least
	// recently used (default 2048).
	MaxSessions int
	// MaxJobs caps a session's submission log (default 10000).
	MaxJobs int
	// MaxSubscribers is the per-session SSE budget (default 16) — the
	// per-session goroutine budget, since subscribers are the only
	// goroutines a session induces.
	MaxSubscribers int
	// EventBuffer is the per-subscriber ring size (default 256). A slow
	// client loses the oldest events, never the session.
	EventBuffer int
	// MaxCandidates caps one what-if's fan-out (default 64).
	MaxCandidates int
	// TickInterval is the wall-clock granularity at which auto-ticking
	// sessions advance (default 1s).
	TickInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2048
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 10000
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 16
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 64
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	return c
}

// Manager owns the session table: creation, LRU eviction, lookup, the
// shared wall-clock ticker, and teardown. All methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*list.Element // value: *Session
	lru      *list.List               // front = most recently used
	seq      uint64
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// NewManager starts a manager (and its single ticker goroutine).
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*list.Element),
		lru:      list.New(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go m.tickLoop()
	return m
}

// Create builds a session and registers it, evicting the least recently
// used session when the cap is reached.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("s%06d", m.seq)
	m.mu.Unlock()

	// Build outside the lock: profile resolution and validation don't need
	// the table.
	s, err := newSession(id, cfg, m.cfg)
	if err != nil {
		return nil, err
	}

	var evicted []*Session
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.Close()
		return nil, ErrClosed
	}
	for m.lru.Len() >= m.cfg.MaxSessions {
		oldest := m.lru.Back()
		old := oldest.Value.(*Session)
		m.lru.Remove(oldest)
		delete(m.sessions, old.ID)
		evicted = append(evicted, old)
	}
	m.sessions[id] = m.lru.PushFront(s)
	m.mu.Unlock()
	for _, old := range evicted {
		old.Close()
	}
	return s, nil
}

// Get returns the session and marks it most recently used.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	el, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	m.lru.MoveToFront(el)
	return el.Value.(*Session), nil
}

// Delete tears a session down. It reports ErrNotFound for unknown IDs.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	el, ok := m.sessions[id]
	if ok {
		m.lru.Remove(el)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	el.Value.(*Session).Close()
	return nil
}

// Len reports the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Close stops the ticker and tears down every session, disconnecting
// subscribers so in-flight SSE requests can drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var all []*Session
	for el := m.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*Session))
	}
	m.sessions = map[string]*list.Element{}
	m.lru.Init()
	m.mu.Unlock()

	close(m.stop)
	<-m.done
	for _, s := range all {
		s.Close()
	}
}

// tickLoop advances auto-ticking sessions by wall-clock time. It is the
// manager's only background goroutine.
func (m *Manager) tickLoop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.TickInterval)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			dt := now.Sub(last).Seconds()
			last = now
			for _, s := range m.ticking() {
				// Errors (closed session racing eviction) are benign here.
				_ = s.AdvanceBy(s.cfg.TickRate * dt)
			}
		}
	}
}

// ticking snapshots the sessions with a tick rate, so Advance runs outside
// the table lock.
func (m *Manager) ticking() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Session
	for el := m.lru.Front(); el != nil; el = el.Next() {
		if s := el.Value.(*Session); s.cfg.TickRate > 0 {
			out = append(out, s)
		}
	}
	return out
}

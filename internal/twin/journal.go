package twin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"crosssched/internal/trace"
)

// The twin's durability substrate is a per-session append-only write-ahead
// journal. It is trivially correct because a Session IS a deterministic
// replay of its submission log: the journal records exactly the inputs
// (create, submit, advance), and recovery re-derives every byte of session
// state — schedule, published event prefix, clock — by replaying them
// through the same pooled sim.Runner the live session uses.
//
// Wire format: one frame per record, newline-terminated —
//
//	<8-hex payload length> ' ' <8-hex IEEE CRC32 of payload> ' ' <payload> '\n'
//
// where the payload is one JSON object ({"op":"submit",...}). The frame
// header makes torn tails detectable (a crash mid-write leaves a short or
// CRC-failing final frame) and in-place corruption detectable anywhere.
// Recovery truncates at the FIRST bad frame — every fsync-acknowledged
// prefix before it survives — instead of failing startup.
//
// Journals rotate into numbered segment files (000001.wal, 000002.wal, …)
// once a segment passes SegmentBytes, bounding single-file size; replay
// reads segments in order and a bad frame drops the rest of its segment
// and all later segments.

// FsyncPolicy says when journal appends reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncInterval (the default) syncs at most once per FsyncEvery,
	// piggybacked on appends: a crash can lose up to FsyncEvery of
	// acknowledged records, never anything older.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every record before the append returns:
	// every acknowledged submit/advance survives a kill -9.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses the -fsync flag: "always", "never", "interval" (the
// default 100ms cadence), or a duration like "250ms" for an explicit
// interval.
func ParseFsync(s string) (FsyncPolicy, time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, 0, nil
	case "never", "os":
		return FsyncNever, 0, nil
	case "interval", "":
		return FsyncInterval, defaultFsyncEvery, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("twin: fsync policy %q: want always, never, or a positive interval like 100ms", s)
	}
	return FsyncInterval, d, nil
}

const (
	defaultFsyncEvery   = 100 * time.Millisecond
	defaultSegmentBytes = 1 << 20
	segmentSuffix       = ".wal"
)

// Journal record operations. A record is one JSON object whose "op" field
// names the mutation; recovery replays them in order. "config" reserves a
// slot for post-create configuration changes (accepted on replay, written
// by nothing yet).
const (
	opCreate  = "create"
	opConfig  = "config"
	opSubmit  = "submit"
	opAdvance = "advance"
)

// record is the journal's JSON payload, a union over the ops.
type record struct {
	Op string `json:"op"`
	// create/config: the session identity and resolved configuration.
	ID  string         `json:"id,omitempty"`
	Cfg *journalConfig `json:"cfg,omitempty"`
	// submit: the staged jobs, post-clamp (replay appends them verbatim).
	Jobs []journalJob `json:"jobs,omitempty"`
	// advance: the resolved target clock.
	To float64 `json:"to,omitempty"`
}

// journalConfig is SessionConfig with enums as wire strings, so journals
// survive enum renumbering.
type journalConfig struct {
	Profile    string  `json:"profile,omitempty"`
	Cores      int     `json:"cores"`
	Partitions int     `json:"partitions"`
	Policy     string  `json:"policy"`
	Backfill   string  `json:"backfill"`
	Relax      float64 `json:"relax,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	TickRate   float64 `json:"tick_rate,omitempty"`
	ColdWhatIf bool    `json:"cold_whatif,omitempty"`
}

func toJournalConfig(cfg SessionConfig) *journalConfig {
	return &journalConfig{
		Profile:    cfg.Profile,
		Cores:      cfg.Cores,
		Partitions: cfg.Partitions,
		Policy:     cfg.Policy.String(),
		Backfill:   cfg.Backfill.String(),
		Relax:      cfg.RelaxFactor,
		Seed:       cfg.Seed,
		TickRate:   cfg.TickRate,
		ColdWhatIf: cfg.ColdWhatIf,
	}
}

func fromJournalConfig(jc *journalConfig) (SessionConfig, error) {
	cfg := SessionConfig{
		Profile:     jc.Profile,
		Cores:       jc.Cores,
		Partitions:  jc.Partitions,
		RelaxFactor: jc.Relax,
		Seed:        jc.Seed,
		TickRate:    jc.TickRate,
		ColdWhatIf:  jc.ColdWhatIf,
	}
	var err error
	if cfg.Policy, err = ParsePolicy(jc.Policy); err != nil {
		return cfg, err
	}
	if cfg.Backfill, err = ParseBackfill(jc.Backfill); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// journalJob is the submit record's job entry. Wait and Status are
// implied (-1 / Passed): the twin only journals what the client chose.
type journalJob struct {
	ID       int     `json:"id"`
	User     int     `json:"user,omitempty"`
	Submit   float64 `json:"submit"`
	Run      float64 `json:"run"`
	Walltime float64 `json:"walltime,omitempty"`
	Procs    int     `json:"procs"`
	VC       int     `json:"vc"`
}

func toJournalJobs(jobs []trace.Job) []journalJob {
	out := make([]journalJob, len(jobs))
	for i, j := range jobs {
		out[i] = journalJob{
			ID: j.ID, User: j.User, Submit: j.Submit, Run: j.Run,
			Walltime: j.Walltime, Procs: j.Procs, VC: j.VC,
		}
	}
	return out
}

func fromJournalJobs(jobs []journalJob) []trace.Job {
	out := make([]trace.Job, len(jobs))
	for i, j := range jobs {
		out[i] = trace.Job{
			ID: j.ID, User: j.User, Submit: j.Submit, Wait: -1, Run: j.Run,
			Walltime: j.Walltime, Procs: j.Procs, VC: j.VC, Status: trace.Passed,
		}
	}
	return out
}

// journalOpts bundle the durability knobs a Manager hands each journal.
type journalOpts struct {
	policy   FsyncPolicy
	every    time.Duration
	segBytes int64
}

func (o journalOpts) withDefaults() journalOpts {
	if o.every <= 0 {
		o.every = defaultFsyncEvery
	}
	if o.segBytes <= 0 {
		o.segBytes = defaultSegmentBytes
	}
	return o
}

// journal is one session's open write-ahead log. It is not internally
// locked: the owning Session appends under its own mutex.
type journal struct {
	dir  string
	opts journalOpts

	f        *os.File
	seg      int // current segment number (1-based)
	size     int64
	buf      []byte
	lastSync time.Time
	dirty    bool

	// syncFn indirects fsync for tests that count or fail syncs.
	syncFn func(*os.File) error
}

// openJournal opens the session's journal directory for appending,
// creating it (and the first segment) if needed. Appends continue the
// highest-numbered existing segment.
func openJournal(dir string, opts journalOpts) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	j := &journal{dir: dir, opts: opts.withDefaults(), seg: 1, syncFn: (*os.File).Sync}
	if len(segs) > 0 {
		j.seg = segs[len(segs)-1]
	}
	f, err := os.OpenFile(j.segPath(j.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	j.f, j.size, j.lastSync = f, st.Size(), time.Now()
	return j, nil
}

func (j *journal) segPath(n int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%06d%s", n, segmentSuffix))
}

// segmentFiles lists the directory's segment numbers in ascending order.
func segmentFiles(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(name, segmentSuffix))
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// append frames, writes, and (per policy) syncs one record, rotating the
// segment afterwards when it passed the size threshold. The first error is
// the caller's signal to degrade the session to ephemeral mode.
func (j *journal) append(rec *record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("twin: journal encode: %w", err)
	}
	b := j.buf[:0]
	b = appendHex32(b, uint32(len(payload)))
	b = append(b, ' ')
	b = appendHex32(b, crc32.ChecksumIEEE(payload))
	b = append(b, ' ')
	b = append(b, payload...)
	b = append(b, '\n')
	j.buf = b
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("twin: journal write: %w", err)
	}
	j.size += int64(len(b))
	j.dirty = true
	switch j.opts.policy {
	case FsyncAlways:
		if err := j.sync(); err != nil {
			return err
		}
	case FsyncInterval:
		if time.Since(j.lastSync) >= j.opts.every {
			if err := j.sync(); err != nil {
				return err
			}
		}
	}
	if j.size >= j.opts.segBytes {
		return j.rotate()
	}
	return nil
}

func (j *journal) sync() error {
	if !j.dirty {
		return nil
	}
	if err := j.syncFn(j.f); err != nil {
		return fmt.Errorf("twin: journal fsync: %w", err)
	}
	j.dirty = false
	j.lastSync = time.Now()
	return nil
}

// rotate seals the current segment (synced so a later torn tail cannot
// reach back into it) and starts the next one.
func (j *journal) rotate() error {
	if err := j.sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("twin: journal rotate: %w", err)
	}
	j.seg++
	f, err := os.OpenFile(j.segPath(j.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("twin: journal rotate: %w", err)
	}
	j.f, j.size = f, 0
	return nil
}

// close syncs and closes the journal (used by park and teardown).
func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	serr := j.sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

func appendHex32(dst []byte, v uint32) []byte {
	const hex = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hex[(v>>uint(shift))&0xf])
	}
	return dst
}

// parseHex32 decodes exactly 8 lowercase hex digits.
func parseHex32(b []byte) (uint32, bool) {
	if len(b) != 8 {
		return 0, false
	}
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// replayJournal reads a session's records back, truncating at the first
// torn or corrupt frame: the bad segment is cut at the frame boundary on
// disk and later segments are deleted, so the next writer appends after a
// clean tail. It reports whether anything was truncated.
func replayJournal(dir string) ([]record, bool, error) {
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, false, err
	}
	if len(segs) == 0 {
		return nil, false, fmt.Errorf("twin: journal %s: no segments", dir)
	}
	var recs []record
	truncated := false
	for si, seg := range segs {
		path := filepath.Join(dir, fmt.Sprintf("%06d%s", seg, segmentSuffix))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, truncated, err
		}
		segRecs, goodBytes := parseFrames(data)
		recs = append(recs, segRecs...)
		if goodBytes == int64(len(data)) {
			continue
		}
		// Bad frame: cut this segment at the last good boundary and drop
		// every later segment — nothing after the first corruption is
		// trustworthy.
		truncated = true
		if err := os.Truncate(path, goodBytes); err != nil {
			return nil, truncated, err
		}
		for _, later := range segs[si+1:] {
			if err := os.Remove(filepath.Join(dir, fmt.Sprintf("%06d%s", later, segmentSuffix))); err != nil && !os.IsNotExist(err) {
				return nil, truncated, err
			}
		}
		break
	}
	return recs, truncated, nil
}

// parseFrames decodes frames until the data ends or a frame fails
// validation, returning the records and the byte offset of the first bad
// frame (== len(data) when everything parsed).
func parseFrames(data []byte) ([]record, int64) {
	var recs []record
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: partial frame without terminator
		}
		line := data[off : off+nl]
		// "llllllll cccccccc payload"
		if len(line) < 18 || line[8] != ' ' || line[17] != ' ' {
			break
		}
		plen, ok1 := parseHex32(line[:8])
		crc, ok2 := parseHex32(line[9:17])
		payload := line[18:]
		if !ok1 || !ok2 || int(plen) != len(payload) || crc32.ChecksumIEEE(payload) != crc {
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		switch rec.Op {
		case opCreate, opConfig, opSubmit, opAdvance:
		default:
			// Unknown op: a version skew or corruption that passed the
			// CRC; stop here rather than misinterpret the rest.
			return recs, int64(off)
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, int64(off)
}

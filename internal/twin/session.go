package twin

import (
	"errors"
	"fmt"
	"sync"

	"crosssched/internal/cluster"
	"crosssched/internal/obs"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// SessionConfig describes one twin: the mirrored cluster's shape and the
// baseline scheduling configuration the twin replays under.
type SessionConfig struct {
	// Profile names a calibrated synth system ("Philly", "Mira", ...)
	// whose cluster geometry (total cores, virtual clusters) the twin
	// mirrors. Empty means use Cores/Partitions directly.
	Profile string
	// Cores and Partitions give the cluster shape explicitly when Profile
	// is empty. Partitions <= 1 means one shared pool.
	Cores      int
	Partitions int
	// Policy and Backfill are the baseline scheduling configuration; the
	// twin's published schedule and the what-if deltas are relative to it.
	Policy   sim.Policy
	Backfill sim.BackfillKind
	// RelaxFactor configures relaxed/adaptive backfilling (0 = default).
	RelaxFactor float64
	// Seed keys fault injection in what-if candidates (the fault-free
	// replay itself is deterministic without it).
	Seed uint64
	// TickRate, when positive, advances the session clock by TickRate
	// simulated seconds per wall-clock second via the manager's ticker.
	// Zero means the clock only moves on explicit Advance calls.
	TickRate float64
	// ColdWhatIf disables warm-started what-if forks: every candidate
	// replays the full submission log from t=0 instead of forking a
	// checkpoint held at the session clock. The reports are byte-identical
	// either way (the checkpoint contract); the switch exists for A/B
	// latency measurement and as an escape hatch.
	ColdWhatIf bool
}

// JobSpec is one submitted job, the wire form of a trace.Job the client
// controls.
type JobSpec struct {
	// Procs is the requested core/GPU count (required, >= 1).
	Procs int `json:"procs"`
	// Run is the job's runtime in seconds (required, > 0) — the twin knows
	// ground truth, like the simulator.
	Run float64 `json:"run"`
	// Walltime is the requested limit the scheduler plans against
	// (optional; 0 falls back to Run).
	Walltime float64 `json:"walltime,omitempty"`
	// User is the submitting user (optional, >= 0).
	User int `json:"user,omitempty"`
	// VC pins the job to one virtual cluster; nil/-1 lets the twin place
	// it (user-hash, matching the simulator).
	VC *int `json:"vc,omitempty"`
	// Submit is the requested submission time on the session clock
	// (optional). It is clamped so the log stays causal: never before the
	// session clock or an earlier submission.
	Submit float64 `json:"submit,omitempty"`
}

// Session is one digital twin. All methods are safe for concurrent use.
type Session struct {
	ID string

	cfg    SessionConfig
	limits Config
	caps   []int // per-partition capacities

	mu      sync.Mutex
	now     float64
	jobs    []trace.Job
	emitted int          // events already published to the hub
	replay  *replayState // nil when invalidated by a submission
	hub     *obs.Hub
	closed  bool

	// jr is the session's write-ahead journal (nil for in-memory-only
	// sessions). A failed journal write flips ephemeral: the journal is
	// dropped, onDegrade (a manager metrics hook) fires once, subscribers
	// get an in-band notice, and the session keeps serving from memory —
	// durability degrades, availability does not.
	jr        *journal
	ephemeral bool
	onDegrade func()

	// warm holds one paused simulation per fault-free candidate
	// configuration (keyed policy|backfill|relax), kept at the session
	// clock so a what-if forks it instead of replaying from t=0. Guarded
	// by its own mutex: warming up serializes, but forks run outside it
	// and never block Submit/Advance on s.mu.
	warmMu sync.Mutex
	warm   map[string]*sim.Checkpoint
}

// replayState caches one baseline replay of the submission log.
type replayState struct {
	res    *sim.Result
	events []obs.Event
}

// newSession validates the config and builds the session.
func newSession(id string, cfg SessionConfig, limits Config) (*Session, error) {
	if cfg.Profile != "" {
		p, err := synth.ByName(cfg.Profile, 1)
		if err != nil {
			return nil, err
		}
		cfg.Cores = p.Sys.TotalCores
		cfg.Partitions = p.Sys.VirtualClusters
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("twin: session needs a cluster: give profile or cores >= 1 (got %d)", cfg.Cores)
	}
	if cfg.TickRate < 0 {
		return nil, fmt.Errorf("twin: negative tick rate %v", cfg.TickRate)
	}
	if cfg.Partitions > cfg.Cores {
		return nil, fmt.Errorf("twin: %d partitions over %d cores leaves empty partitions", cfg.Partitions, cfg.Cores)
	}
	return &Session{
		ID:     id,
		cfg:    cfg,
		limits: limits,
		caps:   cluster.EvenPartitions(cfg.Cores, cfg.Partitions),
		hub:    obs.NewHub(limits.MaxSubscribers),
	}, nil
}

// Config returns the resolved session configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// attachJournal wires a journal (already holding the session's create
// record) and the degradation hook into the session. Called once, before
// the session is published to other goroutines.
func (s *Session) attachJournal(jr *journal, onDegrade func()) {
	s.jr = jr
	s.onDegrade = onDegrade
}

// journalAppendLocked writes one record, degrading the session to
// ephemeral mode on failure. It never fails the caller's operation: the
// in-memory state change proceeds, only durability is lost. Callers hold
// s.mu.
func (s *Session) journalAppendLocked(rec *record) {
	if s.jr == nil {
		return
	}
	err := s.jr.append(rec)
	if err == nil {
		return
	}
	_ = s.jr.close()
	s.jr = nil
	s.ephemeral = true
	if s.onDegrade != nil {
		s.onDegrade()
	}
	s.hub.Notify(fmt.Sprintf(
		"journal write failed (%v); session %s is now ephemeral — state will not survive a restart", err, s.ID))
}

// durableLocked reports whether the session still has a live journal.
func (s *Session) durableLocked() bool { return s.jr != nil }

// restore rebuilds the session's state from journal records: the post-
// clamp job log is installed verbatim and the clock set, then one replay
// recomputes the schedule and the published-prefix counter. Because the
// twin is a deterministic replay of its log, emitted = |events strictly
// before the clock| equals exactly what the pre-crash session had
// published incrementally.
func (s *Session) restore(jobs []trace.Job, now float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = jobs
	s.now = now
	s.replay = nil
	if err := s.ensureReplayLocked(); err != nil {
		return err
	}
	ev := s.replay.events
	k := 0
	for k < len(ev) && ev[k].Time < now {
		k++
	}
	s.emitted = k
	return nil
}

// EmittedPrefix returns a copy of the decision events the session has
// published so far — the byte-diff surface for crash-recovery tests and
// the /log endpoint.
func (s *Session) EmittedPrefix() ([]obs.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.ensureReplayLocked(); err != nil {
		return nil, err
	}
	out := make([]obs.Event, s.emitted)
	copy(out, s.replay.events[:s.emitted])
	return out, nil
}

// Now returns the session clock.
func (s *Session) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Submit appends jobs to the log and returns their assigned job IDs (dense
// indexes, stable for the session's lifetime; decision events reference
// them). Submission times are clamped monotone: max(requested, clock,
// previous submission), so the log is always a valid causal trace.
func (s *Session) Submit(specs []JobSpec) ([]int, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("twin: empty submission")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.jobs)+len(specs) > s.limits.MaxJobs {
		return nil, fmt.Errorf("%w: session job cap %d (have %d, submitting %d)",
			ErrBudget, s.limits.MaxJobs, len(s.jobs), len(specs))
	}
	floor := s.now
	if n := len(s.jobs); n > 0 && s.jobs[n-1].Submit > floor {
		floor = s.jobs[n-1].Submit
	}
	ids := make([]int, 0, len(specs))
	staged := make([]trace.Job, 0, len(specs))
	for i, sp := range specs {
		vc := -1
		if sp.VC != nil {
			vc = *sp.VC
		}
		if err := s.validateSpec(i, sp, vc); err != nil {
			return nil, err
		}
		if sp.Submit > floor {
			floor = sp.Submit
		}
		id := len(s.jobs) + len(staged)
		staged = append(staged, trace.Job{
			ID:       id,
			User:     sp.User,
			Submit:   floor,
			Wait:     -1,
			Run:      sp.Run,
			Walltime: sp.Walltime,
			Procs:    sp.Procs,
			VC:       vc,
			Status:   trace.Passed,
		})
		ids = append(ids, id)
	}
	s.journalAppendLocked(&record{Op: opSubmit, Jobs: toJournalJobs(staged)})
	s.jobs = append(s.jobs, staged...)
	s.replay = nil // schedule beyond the published prefix changed
	return ids, nil
}

// validateSpec rejects jobs the cluster can never run.
func (s *Session) validateSpec(i int, sp JobSpec, vc int) error {
	switch {
	case sp.Procs <= 0:
		return fmt.Errorf("twin: job %d: procs must be >= 1 (got %d)", i, sp.Procs)
	case sp.Run <= 0:
		return fmt.Errorf("twin: job %d: run must be > 0 seconds (got %v)", i, sp.Run)
	case sp.Walltime < 0:
		return fmt.Errorf("twin: job %d: negative walltime %v", i, sp.Walltime)
	case sp.User < 0:
		return fmt.Errorf("twin: job %d: negative user %d", i, sp.User)
	case sp.Submit < 0:
		return fmt.Errorf("twin: job %d: negative submit %v", i, sp.Submit)
	case vc < -1 || vc >= s.cfg.Partitions:
		return fmt.Errorf("twin: job %d: vc %d out of range [0,%d)", i, vc, s.cfg.Partitions)
	}
	// The partition the simulator will pick must fit the job.
	part := 0
	if s.cfg.Partitions > 1 {
		part = vc
		if part < 0 {
			part = sp.User % s.cfg.Partitions
		}
	}
	if sp.Procs > s.caps[part] {
		return fmt.Errorf("twin: job %d: %d cores exceed partition %d capacity %d",
			i, sp.Procs, part, s.caps[part])
	}
	return nil
}

// AdvanceBy moves the clock forward by d seconds.
func (s *Session) AdvanceBy(d float64) error {
	if d < 0 {
		return fmt.Errorf("twin: cannot advance by negative %v", d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceLocked(s.now + d)
}

// AdvanceTo moves the clock to t (monotone: t < clock is an error).
func (s *Session) AdvanceTo(t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		return fmt.Errorf("twin: cannot rewind clock from %v to %v", s.now, t)
	}
	return s.advanceLocked(t)
}

// advanceLocked sets the clock and publishes the newly-due decision
// events: every replay event with Time STRICTLY before the new clock that
// has not been published yet. The strict bound keeps the published prefix
// stable — a future submission lands at Submit >= clock and can only
// change decisions at or after it.
func (s *Session) advanceLocked(to float64) error {
	if s.closed {
		return ErrClosed
	}
	if to > s.now {
		s.journalAppendLocked(&record{Op: opAdvance, To: to})
	}
	s.now = to
	if err := s.ensureReplayLocked(); err != nil {
		return err
	}
	ev := s.replay.events
	k := s.emitted
	for k < len(ev) && ev[k].Time < to {
		s.hub.Observe(ev[k])
		k++
	}
	s.emitted = k
	return nil
}

// ensureReplayLocked recomputes the cached baseline replay if a submission
// invalidated it.
func (s *Session) ensureReplayLocked() error {
	if s.replay != nil {
		return nil
	}
	if len(s.jobs) == 0 {
		s.replay = &replayState{}
		return nil
	}
	rec := &obs.Recorder{}
	opt := s.baseOptions()
	opt.Observer = rec
	res, err := sim.Run(s.traceLocked(), opt)
	if err != nil {
		return fmt.Errorf("twin: baseline replay: %w", err)
	}
	s.replay = &replayState{res: res, events: rec.Events}
	return nil
}

// traceLocked wraps the log in a trace for the simulator. The jobs slice
// is shared read-only: the simulator treats input traces as immutable.
func (s *Session) traceLocked() *trace.Trace {
	return &trace.Trace{
		System: trace.System{
			Name:            "twin:" + s.ID,
			Kind:            trace.HPC,
			TotalCores:      s.cfg.Cores,
			VirtualClusters: s.cfg.Partitions,
		},
		Jobs: s.jobs,
	}
}

// baseOptions is the session's baseline simulator configuration.
func (s *Session) baseOptions() sim.Options {
	return sim.Options{
		Policy:      s.cfg.Policy,
		Backfill:    s.cfg.Backfill,
		RelaxFactor: s.cfg.RelaxFactor,
	}
}

// Snapshot is the session's externally visible state at its clock.
type Snapshot struct {
	ID         string  `json:"id"`
	Now        float64 `json:"now"`
	Profile    string  `json:"profile,omitempty"`
	Cores      int     `json:"cores"`
	Partitions int     `json:"partitions"`
	Policy     string  `json:"policy"`
	Backfill   string  `json:"backfill"`
	Seed       uint64  `json:"seed"`
	TickRate   float64 `json:"tick_rate,omitempty"`

	// Jobs counts every submission; Completed/Running/Queued classify them
	// against the baseline replay at the clock (strictly-before semantics,
	// matching event publication); Future jobs have not arrived yet.
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Running   int `json:"running"`
	Queued    int `json:"queued"`
	Future    int `json:"future"`
	// AvgWaitCompleted is the mean wait of completed jobs (0 when none).
	AvgWaitCompleted float64 `json:"avg_wait_completed"`
	// EventsEmitted counts decision events published to subscribers.
	EventsEmitted int `json:"events_emitted"`
	// Subscribers is the live SSE subscriber count.
	Subscribers int `json:"subscribers"`
	// Durable reports whether the session has a live write-ahead journal;
	// Ephemeral is set when it HAD one but lost it to a write failure.
	// Both false means the manager runs without a state directory.
	Durable   bool `json:"durable,omitempty"`
	Ephemeral bool `json:"ephemeral,omitempty"`
}

// Status computes the snapshot (forcing a replay when stale).
func (s *Session) Status() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrClosed
	}
	if err := s.ensureReplayLocked(); err != nil {
		return Snapshot{}, err
	}
	snap := Snapshot{
		ID:            s.ID,
		Now:           s.now,
		Profile:       s.cfg.Profile,
		Cores:         s.cfg.Cores,
		Partitions:    s.cfg.Partitions,
		Policy:        s.cfg.Policy.String(),
		Backfill:      s.cfg.Backfill.String(),
		Seed:          s.cfg.Seed,
		TickRate:      s.cfg.TickRate,
		Jobs:          len(s.jobs),
		EventsEmitted: s.emitted,
		Subscribers:   s.hub.Subscribers(),
		Durable:       s.durableLocked(),
		Ephemeral:     s.ephemeral,
	}
	if s.replay.res == nil {
		return snap, nil
	}
	var waitSum float64
	for i := range s.replay.res.Jobs {
		j := &s.replay.res.Jobs[i]
		start := j.Submit + j.Wait
		switch {
		case j.Submit >= s.now:
			snap.Future++
		case start+j.Run < s.now:
			snap.Completed++
			waitSum += j.Wait
		case start < s.now:
			snap.Running++
		default:
			snap.Queued++
		}
	}
	if snap.Completed > 0 {
		snap.AvgWaitCompleted = waitSum / float64(snap.Completed)
	}
	return snap, nil
}

// Subscribe attaches a decision-event subscriber (bounded ring,
// drop-oldest). The caller must Unsubscribe when done.
func (s *Session) Subscribe() (*obs.Sub, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	sub, err := s.hub.Subscribe(s.limits.EventBuffer)
	switch {
	case err == nil:
		return sub, nil
	case errors.Is(err, obs.ErrClosed):
		return nil, ErrClosed
	default:
		return nil, fmt.Errorf("%w: %v", ErrBudget, err)
	}
}

// Unsubscribe detaches a subscriber obtained from Subscribe.
func (s *Session) Unsubscribe(sub *obs.Sub) { s.hub.Unsubscribe(sub) }

// Close tears the session down: subscribers are disconnected (after
// draining their buffers) and every later call fails with ErrClosed.
// Idempotent.
func (s *Session) Close() { s.closeReason("closed") }

// closeReason is Close carrying a terminal reason ("closed", "evicted",
// "parked") that subscribers read back once their buffers drain — the SSE
// layer turns it into the stream's final `event: gone` frame. The journal
// is flushed and closed first, so a parked session's directory is
// complete before anyone can reactivate it.
func (s *Session) closeReason(reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.jr != nil {
		_ = s.jr.close()
		s.jr = nil
	}
	s.mu.Unlock()
	s.warmMu.Lock()
	s.warm = nil // drop the checkpoint table; each holds a full simulator
	s.warmMu.Unlock()
	s.hub.CloseReason(reason)
}

// park closes the session for spill-to-disk eviction, reporting whether
// it actually had a journal to spill to. The no-journal case (ephemeral,
// in-memory-only, or already closed) returns false and leaves the caller
// to evict destructively. The journal-present check and the close are one
// critical section, so a concurrent write failure cannot park a session
// whose journal just died.
func (s *Session) park() bool {
	s.mu.Lock()
	if s.closed || s.jr == nil {
		s.mu.Unlock()
		return false
	}
	s.closed = true
	_ = s.jr.close()
	s.jr = nil
	s.mu.Unlock()
	s.warmMu.Lock()
	s.warm = nil
	s.warmMu.Unlock()
	s.hub.CloseReason("parked")
	return true
}

package twin

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"crosssched/internal/obs"
	"crosssched/internal/par"
	"crosssched/internal/sim"
)

func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Hour // keep the ticker quiet in tests
	}
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m
}

// burst builds a deterministic batch of jobs that congests a small cluster
// enough for scheduling policy to matter.
func burst(n int, at float64) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			Procs:    1 + (i*7)%8,
			Run:      60 * float64(1+(i*13)%40),
			Walltime: 90 * float64(1+(i*13)%40),
			User:     i % 5,
			Submit:   at + float64(i%11)*30,
		}
	}
	return specs
}

func TestSessionLifecycle(t *testing.T) {
	m := testManager(t, Config{})
	s, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Submit(burst(20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 || ids[0] != 0 || ids[19] != 19 {
		t.Fatalf("ids = %v, want dense 0..19", ids)
	}

	snap, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs != 20 || snap.Completed != 0 || snap.Now != 0 {
		t.Fatalf("fresh snapshot: %+v", snap)
	}

	if err := s.AdvanceTo(4 * 3600); err != nil {
		t.Fatal(err)
	}
	snap, err = s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Completed == 0 {
		t.Fatalf("no completions after 4h on a 32-core cluster: %+v", snap)
	}
	if snap.Completed+snap.Running+snap.Queued+snap.Future != snap.Jobs {
		t.Fatalf("job classes do not partition the log: %+v", snap)
	}
	if snap.EventsEmitted == 0 {
		t.Fatalf("advance published no events: %+v", snap)
	}
	if err := s.AdvanceTo(3600); err == nil {
		t.Fatal("clock rewind accepted")
	}

	if err := m.Delete(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit on deleted session: %v, want ErrClosed", err)
	}
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted session: %v, want ErrNotFound", err)
	}
}

// TestEventPrefixStableAcrossSubmits pins the twin's core consistency
// contract: events published incrementally across interleaved submits and
// advances are exactly the strictly-before-clock prefix of a final
// from-scratch replay. New submissions must never contradict what
// subscribers already saw.
func TestEventPrefixStableAcrossSubmits(t *testing.T) {
	m := testManager(t, Config{EventBuffer: 4096})
	s, err := m.Create(SessionConfig{Cores: 16, Policy: sim.SJF, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe(sub)

	var got []obs.Event
	drain := func() {
		for sub.Buffered() > 0 {
			e, dropped, err := sub.Next(context.Background())
			if err != nil || dropped != 0 {
				t.Fatalf("drain: %v (dropped %d)", err, dropped)
			}
			got = append(got, e)
		}
	}

	clock := 0.0
	for round := 0; round < 5; round++ {
		if _, err := s.Submit(burst(12, clock)); err != nil {
			t.Fatal(err)
		}
		clock += 1800
		if err := s.AdvanceTo(clock); err != nil {
			t.Fatal(err)
		}
		drain()
	}

	// From-scratch reference replay of the final log.
	s.mu.Lock()
	s.replay = nil
	if err := s.ensureReplayLocked(); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	ref := s.replay.events
	s.mu.Unlock()

	var want []obs.Event
	for _, e := range ref {
		if e.Time < clock {
			want = append(want, e)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("published %d events, reference prefix has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged:\npublished %+v\nreference %+v", i, got[i], want[i])
		}
	}
	// The stream the twin relies on is time-ordered.
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("event stream not time-ordered at %d: %v after %v", i, got[i].Time, got[i-1].Time)
		}
	}
}

func TestSubmitValidationAndClamping(t *testing.T) {
	m := testManager(t, Config{})
	s, err := m.Create(SessionConfig{Cores: 30, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := []JobSpec{
		{Procs: 0, Run: 10},
		{Procs: 1, Run: 0},
		{Procs: 1, Run: 10, Walltime: -1},
		{Procs: 1, Run: 10, User: -2},
		{Procs: 11, Run: 10}, // exceeds 10-core partition
		{Procs: 1, Run: 10, VC: intp(3)},
		{Procs: 1, Run: 10, Submit: -5},
	}
	for i, sp := range bad {
		if _, err := s.Submit([]JobSpec{sp}); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, sp)
		}
	}

	if err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	// Requested submit before the clock is clamped, and later requests
	// can't go backwards past earlier ones.
	if _, err := s.Submit([]JobSpec{{Procs: 1, Run: 10, Submit: 50}, {Procs: 1, Run: 10, Submit: 500}, {Procs: 1, Run: 10, Submit: 200}}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	submits := []float64{s.jobs[0].Submit, s.jobs[1].Submit, s.jobs[2].Submit}
	s.mu.Unlock()
	if submits[0] != 100 || submits[1] != 500 || submits[2] != 500 {
		t.Fatalf("submits = %v, want [100 500 500] (clamped monotone)", submits)
	}
}

func TestJobCapBudget(t *testing.T) {
	m := testManager(t, Config{MaxJobs: 10})
	s, err := m.Create(SessionConfig{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(1, 0)); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-cap submit: %v, want ErrBudget", err)
	}
}

// TestWhatIfDeterministicAcrossParallelism pins the acceptance criterion:
// same session state + seed must produce byte-identical recommendation
// JSON regardless of the worker count the fan-out runs with.
func TestWhatIfDeterministicAcrossParallelism(t *testing.T) {
	cands := []Candidate{
		{Policy: "fcfs", Backfill: "easy"},
		{Policy: "sjf", Backfill: "easy"},
		{Policy: "saf", Backfill: "conservative"},
		{Policy: "fcfs", Backfill: "adaptive", RelaxFactor: 0.2},
		{Policy: "f1", Backfill: "none"},
		{Policy: "sjf", Backfill: "easy", Faults: "mtbf=43200,mttr=3600,frac=0.25,recovery=requeue,retry=2"},
	}
	reports := make([][]byte, 0, 3)
	for _, workers := range []int{1, 4, 16} {
		m := testManager(t, Config{})
		s, err := m.Create(SessionConfig{Cores: 48, Partitions: 2, Policy: sim.FCFS, Backfill: sim.EASY, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(burst(60, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.AdvanceTo(900); err != nil {
			t.Fatal(err)
		}
		ctx := par.WithLimit(context.Background(), workers)
		rep, err := s.WhatIf(ctx, WhatIfRequest{Candidates: cands})
		if err != nil {
			t.Fatal(err)
		}
		if rep.PendingJobs == 0 || len(rep.Ranking) != len(cands) {
			t.Fatalf("report shape: pending=%d ranking=%d", rep.PendingJobs, len(rep.Ranking))
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
		m.Close()
	}
	for i := 1; i < len(reports); i++ {
		if string(reports[i]) != string(reports[0]) {
			t.Fatalf("what-if JSON differs between worker counts:\n%s\nvs\n%s", reports[0], reports[i])
		}
	}
	// Ranks must be 1..N and wait-sorted.
	var rep Report
	if err := json.Unmarshal(reports[0], &rep); err != nil {
		t.Fatal(err)
	}
	for i, o := range rep.Ranking {
		if o.Rank != i+1 {
			t.Fatalf("rank %d at position %d", o.Rank, i)
		}
		if i > 0 && o.AvgWait < rep.Ranking[i-1].AvgWait {
			t.Fatalf("ranking not sorted by wait: %v after %v", o.AvgWait, rep.Ranking[i-1].AvgWait)
		}
	}
}

func TestWhatIfErrors(t *testing.T) {
	m := testManager(t, Config{MaxCandidates: 2})
	s, err := m.Create(SessionConfig{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.WhatIf(ctx, WhatIfRequest{}); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	three := []Candidate{{}, {}, {}}
	if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: three}); !errors.Is(err, ErrBudget) {
		t.Fatalf("candidate cap: %v, want ErrBudget", err)
	}
	if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: []Candidate{{}}}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty session what-if: %v, want ErrEmpty", err)
	}
	if _, err := s.Submit([]JobSpec{{Procs: 1, Run: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: []Candidate{{Policy: "bogus"}}}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: []Candidate{{Faults: "mtbf=-1"}}}); err == nil {
		t.Fatal("bogus fault spec accepted")
	}
	// All jobs started -> nothing to recommend on.
	if err := s.AdvanceTo(1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: []Candidate{{}}}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("all-started what-if: %v, want ErrEmpty", err)
	}
}

// TestSlowSubscriberBackpressure pins the SSE satellite: a subscriber that
// never reads loses the OLDEST events (bounded ring), the session keeps
// advancing, and tearing everything down leaks no goroutines.
func TestSlowSubscriberBackpressure(t *testing.T) {
	before := runtime.NumGoroutine()

	m := NewManager(Config{EventBuffer: 8, TickInterval: time.Hour})
	s, err := m.Create(SessionConfig{Cores: 64})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	// A reader blocked in Next on an empty buffer, like an SSE handler on
	// an idle connection; it must wake with ErrClosed on teardown.
	blocked := make(chan error, 1)
	idle, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		for {
			if _, _, err := idle.Next(context.Background()); err != nil {
				blocked <- err
				return
			}
		}
	}()
	<-started

	// `slow` never reads while the session floods it with events.
	if _, err := s.Submit(burst(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(1e6); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.EventsEmitted < 100 {
		t.Fatalf("session stalled behind slow subscriber: %+v", snap)
	}
	if buf := slow.Buffered(); buf > 8 {
		t.Fatalf("subscriber buffered %d events, ring is 8", buf)
	}

	m.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, obs.ErrClosed) {
			t.Fatalf("blocked subscriber woke with %v, want obs.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked subscriber did not wake on manager close")
	}

	// The stalled ring drains its bounded remainder, reports the gap, then
	// EOFs: drop-oldest means the survivors are the newest events.
	drained, lastDropped := 0, uint64(0)
	for {
		_, d, err := slow.Next(context.Background())
		if err != nil {
			break
		}
		drained++
		lastDropped += d
	}
	if drained == 0 || drained > 8 {
		t.Fatalf("stalled subscriber drained %d events, want 1..8", drained)
	}
	if lastDropped == 0 {
		t.Fatal("no drop gap reported after flooding an 8-slot ring")
	}

	// No goroutine leak: ticker and reader are gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubscriberBudgetAndDrops(t *testing.T) {
	m := testManager(t, Config{MaxSubscribers: 2, EventBuffer: 4})
	s, err := m.Create(SessionConfig{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget subscribe: %v, want ErrBudget", err)
	}

	if _, err := s.Submit(burst(30, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(1e6); err != nil {
		t.Fatal(err)
	}
	// 30 jobs -> >= 60 events through a 4-slot ring: drops must be
	// reported and the survivors must be the newest.
	_, dropped, err := a.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("no drops reported through a 4-slot ring")
	}
}

func TestManagerLRUEviction(t *testing.T) {
	m := testManager(t, Config{MaxSessions: 2})
	s1, err := m.Create(SessionConfig{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create(SessionConfig{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Touch s1 so s2 is the LRU victim.
	if _, err := m.Get(s1.ID); err != nil {
		t.Fatal(err)
	}
	s3, err := m.Create(SessionConfig{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, err := m.Get(s2.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim still present: %v", err)
	}
	// The evicted session is closed, not just unlisted.
	if _, err := s2.Submit(burst(1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("evicted session still accepts submits: %v", err)
	}
	if _, err := m.Get(s1.ID); err != nil {
		t.Fatalf("recently used session evicted: %v", err)
	}
	if _, err := m.Get(s3.ID); err != nil {
		t.Fatal(err)
	}
}

func TestTickerAdvancesSessions(t *testing.T) {
	m := NewManager(Config{TickInterval: 10 * time.Millisecond})
	defer m.Close()
	s, err := m.Create(SessionConfig{Cores: 8, TickRate: 60})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Now() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never advanced the session clock")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProfileSessionShape(t *testing.T) {
	m := testManager(t, Config{})
	s, err := m.Create(SessionConfig{Profile: "Philly"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cores <= 0 || snap.Partitions != 14 {
		t.Fatalf("Philly shape: %+v", snap)
	}
	if _, err := m.Create(SessionConfig{Profile: "NoSuchSystem"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := m.Create(SessionConfig{}); err == nil {
		t.Fatal("shapeless session accepted")
	}
}

func intp(v int) *int { return &v }

// TestWhatIfMatchesDirectSimulation cross-checks the fork against a direct
// sim.Run with the same options: the twin adds aggregation, not new
// scheduling behavior.
func TestWhatIfMatchesDirectSimulation(t *testing.T) {
	m := testManager(t, Config{})
	s, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(40, 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.WhatIf(context.Background(), WhatIfRequest{Candidates: []Candidate{{Policy: "sjf", Backfill: "easy"}}})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	tr := s.traceLocked()
	s.mu.Unlock()
	direct, err := sim.Run(tr, sim.Options{Policy: sim.SJF, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	// At clock 0 every job is pending, so the fork's aggregates are the
	// whole-trace aggregates.
	got := rep.Ranking[0]
	if got.AvgWait != direct.AvgWait || got.AvgBsld != direct.AvgBsld || got.Utilization != direct.Utilization {
		t.Fatalf("fork disagrees with direct run:\nfork   wait=%v bsld=%v util=%v\ndirect wait=%v bsld=%v util=%v",
			got.AvgWait, got.AvgBsld, got.Utilization, direct.AvgWait, direct.AvgBsld, direct.Utilization)
	}
}

// TestWhatIfWarmMatchesCold is the warm-start regression pin: two sessions
// fed identically — one forking warm checkpoints (default), one forced to
// cold full replays — must produce byte-identical what-if reports through
// repeated submit/advance/query cycles, at every worker count. The warm
// session is queried twice per cycle so the second query exercises the
// extend-and-advance path on checkpoints the first one created.
func TestWhatIfWarmMatchesCold(t *testing.T) {
	cands := []Candidate{
		{}, // baseline config itself
		{Policy: "sjf", Backfill: "easy"},
		{Policy: "wfp3", Backfill: "conservative"},
		{Policy: "f2", Backfill: "relaxed", RelaxFactor: 0.25},
		{Policy: "sjf", Backfill: "easy", Faults: "mtbf=43200,mttr=3600,frac=0.25,recovery=requeue,retry=2"},
	}
	cfg := SessionConfig{Cores: 48, Partitions: 3, Policy: sim.FCFS, Backfill: sim.EASY, Seed: 11}
	for _, workers := range []int{1, 4, 16} {
		m := testManager(t, Config{})
		warm, err := m.Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		coldCfg := cfg
		coldCfg.ColdWhatIf = true
		cold, err := m.Create(coldCfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := par.WithLimit(context.Background(), workers)
		clock := 0.0
		for cycle := 0; cycle < 3; cycle++ {
			jobs := burst(30, clock)
			if _, err := warm.Submit(jobs); err != nil {
				t.Fatal(err)
			}
			if _, err := cold.Submit(jobs); err != nil {
				t.Fatal(err)
			}
			clock += 600
			if err := warm.AdvanceTo(clock); err != nil {
				t.Fatal(err)
			}
			if err := cold.AdvanceTo(clock); err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 2; q++ {
				wrep, err := warm.WhatIf(ctx, WhatIfRequest{Candidates: cands})
				if err != nil {
					t.Fatalf("cycle %d query %d warm: %v", cycle, q, err)
				}
				crep, err := cold.WhatIf(ctx, WhatIfRequest{Candidates: cands})
				if err != nil {
					t.Fatalf("cycle %d query %d cold: %v", cycle, q, err)
				}
				crep.Session = wrep.Session // only intended difference
				wb, _ := json.Marshal(wrep)
				cb, _ := json.Marshal(crep)
				if string(wb) != string(cb) {
					t.Fatalf("cycle %d query %d workers %d: warm report differs from cold:\n%s\nvs\n%s",
						cycle, q, workers, wb, cb)
				}
			}
		}
		// The warm table holds the fault-free candidate configs, not more.
		warm.warmMu.Lock()
		nWarm := len(warm.warm)
		warm.warmMu.Unlock()
		if nWarm != 4 {
			t.Fatalf("warm table has %d checkpoints, want 4", nWarm)
		}
		cold.warmMu.Lock()
		nCold := len(cold.warm)
		cold.warmMu.Unlock()
		if nCold != 0 {
			t.Fatalf("cold session grew %d checkpoints, want 0", nCold)
		}
		m.Close()
	}
}

// TestWhatIfWarmTableCap pins the warm-table budget: distinct candidate
// configurations beyond MaxCandidates replay cold instead of growing the
// checkpoint table without bound.
func TestWhatIfWarmTableCap(t *testing.T) {
	m := testManager(t, Config{MaxCandidates: 2})
	s, err := m.Create(SessionConfig{Cores: 16, Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(10, 0)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, c := range [][]Candidate{
		{{Policy: "fcfs"}, {Policy: "sjf"}},
		{{Policy: "saf"}, {Policy: "f1"}},
	} {
		if _, err := s.WhatIf(ctx, WhatIfRequest{Candidates: c}); err != nil {
			t.Fatal(err)
		}
	}
	s.warmMu.Lock()
	n := len(s.warm)
	s.warmMu.Unlock()
	if n != 2 {
		t.Fatalf("warm table has %d checkpoints, cap is 2", n)
	}
}

// eventsJSONL renders events in the byte-stable obs wire encoding, the
// same surface the /log endpoint and the crash test diff.
func eventsJSONL(evs []obs.Event) []byte {
	var buf, out []byte
	for _, e := range evs {
		buf = obs.AppendEventJSON(buf[:0], e)
		out = append(out, buf...)
		out = append(out, '\n')
	}
	return out
}

// TestJournalCrashRecovery is the tentpole pin: drive a durable session,
// abandon the manager without closing it (kill -9 semantics — journal file
// handles just drop), recover a second manager over the same state dir,
// and require the recovered session to reproduce the published event
// prefix byte-for-byte and keep working.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	durable := Config{StateDir: dir, Fsync: FsyncAlways, TickInterval: time.Hour}

	m1 := testManager(t, durable)
	s1, err := m1.Create(SessionConfig{Cores: 64, Partitions: 2, Policy: sim.SJF, Backfill: sim.EASY, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(burst(30, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s1.AdvanceTo(4000); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(burst(10, 4000)); err != nil {
		t.Fatal(err)
	}
	if err := s1.AdvanceTo(7000); err != nil {
		t.Fatal(err)
	}
	pre, err := s1.EmittedPrefix()
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) == 0 {
		t.Fatal("setup: no events emitted before the crash")
	}
	preSnap, err := s1.Status()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": m1 is simply never closed before m2 takes over the dir
	// (testManager's cleanup closes it at test end, after the comparison).
	m2 := testManager(t, durable)
	if got := m2.Metrics(); got.TwinRecovered != 1 || got.TwinTruncations != 0 {
		t.Fatalf("recovery metrics = %+v, want 1 recovered, 0 truncations", got)
	}
	s2, err := m2.Get(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	post, err := s2.EmittedPrefix()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eventsJSONL(pre), eventsJSONL(post)) {
		t.Fatalf("recovered event prefix differs:\npre  %d events\npost %d events", len(pre), len(post))
	}
	postSnap, err := s2.Status()
	if err != nil {
		t.Fatal(err)
	}
	preSnap.Subscribers = 0 // subscriptions are not durable state
	postSnap.Subscribers = 0
	if preSnap != postSnap {
		t.Fatalf("recovered snapshot differs:\npre  %+v\npost %+v", preSnap, postSnap)
	}

	// The recovered session is live: it accepts work and emits beyond the
	// recovered prefix.
	if _, err := s2.Submit(burst(5, 7000)); err != nil {
		t.Fatal(err)
	}
	if err := s2.AdvanceTo(20000); err != nil {
		t.Fatal(err)
	}
	more, err := s2.EmittedPrefix()
	if err != nil {
		t.Fatal(err)
	}
	if len(more) <= len(pre) {
		t.Fatalf("recovered session emitted nothing new (%d <= %d)", len(more), len(pre))
	}
}

// TestJournalTornTailRecovery corrupts the journal tail between runs: the
// next manager must truncate at the bad frame, count it, and recover the
// clean prefix.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	durable := Config{StateDir: dir, Fsync: FsyncAlways, TickInterval: time.Hour}

	m1 := testManager(t, durable)
	s1, err := m1.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(burst(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s1.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	seg := filepath.Join(dir, s1.ID, "000001.wal")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil { // tear into the advance frame
		t.Fatal(err)
	}

	m2 := testManager(t, durable)
	if got := m2.Metrics(); got.TwinRecovered != 1 || got.TwinTruncations != 1 {
		t.Fatalf("metrics = %+v, want 1 recovered, 1 truncation", got)
	}
	s2, err := m2.Get(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s2.Status()
	if err != nil {
		t.Fatal(err)
	}
	// The torn frame was the advance: the jobs survive, the clock reverts.
	if snap.Jobs != 10 || snap.Now != 0 {
		t.Fatalf("snapshot after torn-tail recovery = %+v, want 10 jobs at clock 0", snap)
	}
}

// TestManagerParkReactivate pins the spill-to-disk LRU: eviction parks a
// durable session (subscribers told "parked"), and the next Get
// transparently reactivates it with its state intact.
func TestManagerParkReactivate(t *testing.T) {
	dir := t.TempDir()
	m := testManager(t, Config{StateDir: dir, Fsync: FsyncAlways, MaxSessions: 2, TickInterval: time.Hour})
	mk := func() *Session {
		t.Helper()
		s, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := mk()
	if _, err := s1.Submit(burst(8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s1.AdvanceTo(2000); err != nil {
		t.Fatal(err)
	}
	want, err := s1.Status()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s1.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	mk() // s2
	mk() // s3 -> s1 (LRU) parked
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 live", m.Len())
	}
	if got := m.Metrics(); got.TwinParked != 1 {
		t.Fatalf("metrics = %+v, want 1 parked", got)
	}
	// The parked session's subscriber drains and learns why it ended.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		if _, _, err := sub.NextFrame(ctx); err != nil {
			if !errors.Is(err, obs.ErrClosed) {
				t.Fatalf("subscriber ended with %v, want ErrClosed", err)
			}
			break
		}
	}
	if reason := sub.Reason(); reason != "parked" {
		t.Fatalf("close reason = %q, want parked", reason)
	}
	if _, err := s1.Submit(burst(1, 3000)); !errors.Is(err, ErrClosed) {
		t.Fatalf("parked session object accepted a submit (err %v)", err)
	}

	// Lookup reactivates it — same ID, same state, counted — and parks
	// another victim to stay under the cap.
	s1b, err := m.Get(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s1b == s1 {
		t.Fatal("Get returned the closed session object, not a reactivation")
	}
	got, err := s1b.Status()
	if err != nil {
		t.Fatal(err)
	}
	want.Subscribers = 0
	got.Subscribers = 0
	if want != got {
		t.Fatalf("reactivated snapshot differs:\nwant %+v\ngot  %+v", want, got)
	}
	mets := m.Metrics()
	if mets.TwinReactivated != 1 || mets.TwinRecovered != 1 || mets.TwinParked != 2 {
		t.Fatalf("metrics = %+v, want 1 reactivated, 1 recovered, 2 parked", mets)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after reactivation, want 2", m.Len())
	}

	// Delete removes the durable state of live and parked sessions alike.
	if err := m.Delete(s1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, s1.ID)); !os.IsNotExist(err) {
		t.Fatalf("deleted session's state dir still present (err %v)", err)
	}
}

// TestEphemeralDegradation sabotages the journal mid-flight: the session
// must keep serving, flag itself ephemeral, notify subscribers in-band,
// and count the degradation — never crash or fail the write path.
func TestEphemeralDegradation(t *testing.T) {
	m := testManager(t, Config{StateDir: t.TempDir(), Fsync: FsyncAlways, TickInterval: time.Hour})
	s, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe(sub)
	if snap, _ := s.Status(); !snap.Durable || snap.Ephemeral {
		t.Fatalf("setup: session not durable: %+v", snap)
	}

	// Sabotage: close the journal's file descriptor out from under it, so
	// the next append fails like a dying disk.
	s.mu.Lock()
	s.jr.f.Close()
	s.mu.Unlock()

	if _, err := s.Submit(burst(5, 0)); err != nil {
		t.Fatalf("submit during journal failure must succeed, got %v", err)
	}
	snap, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Durable || !snap.Ephemeral {
		t.Fatalf("session not degraded: %+v", snap)
	}
	if got := m.Metrics(); got.TwinEphemeral != 1 {
		t.Fatalf("metrics = %+v, want 1 ephemeral", got)
	}
	// The subscriber hears about it in-band.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		f, _, err := sub.NextFrame(ctx)
		if err != nil {
			t.Fatalf("no degradation notice before %v", err)
		}
		if f.Notice != "" {
			if !strings.Contains(f.Notice, "ephemeral") {
				t.Fatalf("notice = %q, want an ephemeral-mode warning", f.Notice)
			}
			break
		}
	}
	// Still fully serving.
	if err := s.AdvanceTo(500); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(burst(3, 500)); err != nil {
		t.Fatal(err)
	}
}

// TestManagerTeardownRaces hammers Close against every concurrent entry
// point under -race: the only acceptable failures are ErrClosed and
// friends, never a panic or a race report.
func TestManagerTeardownRaces(t *testing.T) {
	for round := 0; round < 3; round++ {
		m := NewManager(Config{StateDir: t.TempDir(), Fsync: FsyncNever, MaxSessions: 4, TickInterval: time.Hour})
		seed, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seed.Submit(burst(5, 0)); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		spawn := func(f func()) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				f()
			}()
		}
		for i := 0; i < 4; i++ {
			spawn(func() {
				for j := 0; j < 5; j++ {
					s, err := m.Create(SessionConfig{Cores: 32, Policy: sim.FCFS, Backfill: sim.EASY})
					if err != nil {
						return
					}
					_, _ = s.Submit(burst(3, 0))
					_ = s.AdvanceTo(1000)
				}
			})
		}
		spawn(func() {
			for j := 0; j < 10; j++ {
				if _, err := m.Get(seed.ID); err != nil {
					return
				}
			}
		})
		spawn(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = seed.WhatIf(ctx, WhatIfRequest{Candidates: []Candidate{{Policy: "sjf"}}})
		})
		spawn(func() {
			sub, err := seed.Subscribe()
			if err != nil {
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			for {
				if _, _, err := sub.NextFrame(ctx); err != nil {
					return
				}
			}
		})
		spawn(m.Close)
		close(start)
		wg.Wait()
		m.Close()
	}
}

package rl

import (
	"context"
	"errors"
	"math"
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func trainTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := synth.Theta(3).Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFeatures(t *testing.T) {
	f := Features(100, 4, 10, 60)
	if f[4] != 1 {
		t.Fatal("bias feature missing")
	}
	if math.Abs(f[0]-math.Log1p(100)) > 1e-12 {
		t.Fatalf("runtime feature %v", f[0])
	}
	if math.Abs(f[2]-math.Log1p(50)) > 1e-12 {
		t.Fatalf("wait feature %v", f[2])
	}
	// negative wait clamps to zero
	if g := Features(100, 4, 60, 10); g[2] != 0 {
		t.Fatalf("negative wait not clamped: %v", g[2])
	}
	// tiny runtime floors at 1
	if g := Features(0, 1, 0, 0); g[0] != math.Log1p(1) {
		t.Fatalf("runtime floor broken: %v", g[0])
	}
}

func TestZeroPolicyEqualsFCFS(t *testing.T) {
	tr := trainTrace(t, 5)
	zero := &LinearPolicy{}
	learned, err := sim.Run(tr, zero.Options(sim.EASY))
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	// zero weights score everything 0; ties break by submit = FCFS
	for i := range fcfs.Jobs {
		if fcfs.Jobs[i].Wait != learned.Jobs[i].Wait {
			t.Fatalf("zero policy diverges from FCFS at job %d", i)
		}
	}
}

func TestSJFWeightsBehaveLikeSJF(t *testing.T) {
	tr := trainTrace(t, 7)
	sjfLike := &LinearPolicy{W: [FeatureDim]float64{1, 0, 0, 0, 0}} // order by log runtime
	a, err := sim.Run(tr, sjfLike.Options(sim.NoBackfill))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(tr, sim.Options{Policy: sim.SJF, Backfill: sim.NoBackfill})
	if err != nil {
		t.Fatal(err)
	}
	// log is monotone, so ordering is identical
	if math.Abs(a.AvgBsld-b.AvgBsld) > 1e-9 {
		t.Fatalf("log-runtime policy bsld %v != SJF %v", a.AvgBsld, b.AvgBsld)
	}
}

func TestTrainImprovesOverFCFS(t *testing.T) {
	tr := trainTrace(t, 9)
	fcfs, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	policy, history, err := Train(tr, TrainConfig{Iterations: 12, Population: 6, Seed: 1, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 13 {
		t.Fatalf("history length %d want 13", len(history))
	}
	finalBsld := history[len(history)-1]
	if finalBsld > fcfs.AvgBsld {
		t.Fatalf("trained policy bsld %v worse than FCFS %v", finalBsld, fcfs.AvgBsld)
	}
	// history is the best-so-far curve: must be non-increasing
	for i := 1; i < len(history); i++ {
		if history[i] > history[i-1]+1e-9 {
			t.Fatalf("best-so-far history increased at %d: %v", i, history)
		}
	}
	// the returned policy reproduces the reported fitness
	res, err := sim.Run(tr, policy.Options(sim.EASY))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgBsld-finalBsld) > 1e-9 {
		t.Fatalf("returned policy bsld %v != reported %v", res.AvgBsld, finalBsld)
	}
}

func TestTrainDeterministic(t *testing.T) {
	tr := trainTrace(t, 11)
	a, ha, err := Train(tr, TrainConfig{Iterations: 4, Population: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, hb, err := Train(tr, TrainConfig{Iterations: 4, Population: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.W != b.W {
		t.Fatal("same-seed training produced different weights")
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("same-seed training histories differ")
		}
	}
}

func TestTrainRejectsTiny(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 4})
	if _, _, err := Train(tr, TrainConfig{}); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

// TestTrainGeneralizes: a policy trained on one seed should also beat FCFS
// on a different workload sample from the same system (weak generalization
// across seeds of the same distribution).
func TestTrainGeneralizes(t *testing.T) {
	train := trainTrace(t, 13)
	test := trainTrace(t, 14)
	policy, _, err := Train(train, TrainConfig{Iterations: 15, Population: 6, Seed: 3, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := sim.Run(test, policy.Options(sim.EASY))
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := sim.Run(test, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if learned.AvgBsld > fcfs.AvgBsld*1.1 {
		t.Fatalf("trained policy bsld %v much worse than FCFS %v on held-out workload",
			learned.AvgBsld, fcfs.AvgBsld)
	}
}

// TestTrainCancellation: a pre-canceled context aborts training before
// the first fitness evaluation with a wrapped context.Canceled.
func TestTrainCancellation(t *testing.T) {
	tr := trainTrace(t, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := TrainContext(ctx, tr, TrainConfig{Iterations: 2, Population: 2, Seed: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext: want context.Canceled, got %v", err)
	}
	if _, err := FitnessContext(ctx, &LinearPolicy{}, tr, sim.EASY); !errors.Is(err, context.Canceled) {
		t.Fatalf("FitnessContext: want context.Canceled, got %v", err)
	}
}

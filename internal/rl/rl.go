// Package rl trains a learned linear scheduling policy in the simulator —
// the lineage the paper's simulator (SchedGym) was built for (RLScheduler,
// SchedInspector, and the RL backfilling study the paper cites). The
// policy scores each waiting job from simple features and the queue is
// served in ascending-score order; training uses evolution strategies
// (ES), which needs only whole-simulation fitness values and is fully
// deterministic under a seed.
package rl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"crosssched/internal/dist"
	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// FeatureDim is the policy's feature width.
const FeatureDim = 5

// LinearPolicy scores a pending job as W . features(job, now) with
// features [log1p(reqTime), log1p(procs), log1p(wait), log1p(area), 1].
// Lower score schedules first.
type LinearPolicy struct {
	W [FeatureDim]float64
}

// Features computes the score inputs for one queued job at time now.
func Features(reqTime float64, procs int, submit, now float64) [FeatureDim]float64 {
	wait := now - submit
	if wait < 0 {
		wait = 0
	}
	if reqTime < 1 {
		reqTime = 1
	}
	return [FeatureDim]float64{
		math.Log1p(reqTime),
		math.Log1p(float64(procs)),
		math.Log1p(wait),
		math.Log1p(reqTime * float64(procs)),
		1,
	}
}

// Score computes the policy's priority value (lower first).
func (p *LinearPolicy) Score(reqTime float64, procs int, submit, now float64) float64 {
	f := Features(reqTime, procs, submit, now)
	s := 0.0
	for i := range f {
		s += p.W[i] * f[i]
	}
	return s
}

// Options builds simulator options that use this policy for ordering.
func (p *LinearPolicy) Options(backfill sim.BackfillKind) sim.Options {
	return sim.Options{
		Policy:      sim.FCFS, // tie-break only; CustomScore dominates
		Backfill:    backfill,
		CustomScore: p.Score,
	}
}

// TrainConfig parameterizes the ES search.
type TrainConfig struct {
	// Iterations of the ES loop (default 30).
	Iterations int
	// Population is the number of perturbation PAIRS per iteration
	// (antithetic sampling; default 8 pairs = 16 evaluations).
	Population int
	// Sigma is the perturbation scale (default 0.5).
	Sigma float64
	// LR is the update step size (default 0.3).
	LR float64
	// Seed drives the perturbations.
	Seed uint64
	// Backfill used during training and evaluation. The zero value is
	// sim.NoBackfill; set sim.EASY to train against a backfilling
	// scheduler (and evaluate the resulting policy the same way).
	Backfill sim.BackfillKind
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Iterations <= 0 {
		c.Iterations = 30
	}
	if c.Population <= 0 {
		c.Population = 8
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.5
	}
	if c.LR <= 0 {
		c.LR = 0.3
	}
	return c
}

// Fitness evaluates a policy on a trace: negative average bounded slowdown
// (higher is better).
func Fitness(p *LinearPolicy, tr *trace.Trace, backfill sim.BackfillKind) (float64, error) {
	return FitnessContext(context.Background(), p, tr, backfill)
}

// FitnessContext is Fitness with cancellation: the underlying simulation
// aborts at its next event once ctx is canceled.
func FitnessContext(ctx context.Context, p *LinearPolicy, tr *trace.Trace, backfill sim.BackfillKind) (float64, error) {
	res, err := sim.RunContext(ctx, tr, p.Options(backfill))
	if err != nil {
		return 0, err
	}
	return -res.AvgBsld, nil
}

// EvaluatePopulation computes the fitness of every candidate policy on the
// trace, in parallel on the shared worker pool (ES generations are
// embarrassingly parallel and each evaluation is a full simulation).
// Results align with the input; on error the lowest-index failure is
// returned. This is the batch-execution hot loop of ES training, and the
// sweep benchmark BenchmarkRLFitness measures exactly this call.
func EvaluatePopulation(ctx context.Context, policies []LinearPolicy, tr *trace.Trace, backfill sim.BackfillKind) ([]float64, error) {
	fits := make([]float64, len(policies))
	err := par.ForEach(ctx, len(policies), func(ctx context.Context, i int) error {
		var err error
		fits[i], err = FitnessContext(ctx, &policies[i], tr, backfill)
		return err
	})
	if err != nil {
		return nil, err
	}
	return fits, nil
}

// Train searches for a policy minimizing average bounded slowdown on the
// training trace. It returns the best policy found and the per-iteration
// best-fitness history (as avg bsld, lower is better).
func Train(tr *trace.Trace, cfg TrainConfig) (*LinearPolicy, []float64, error) {
	return TrainContext(context.Background(), tr, cfg)
}

// TrainContext is Train with cancellation. The context is checked once
// per ES iteration and inside every fitness simulation, so a canceled
// training run returns promptly with a wrapped context error instead of
// finishing the generation.
func TrainContext(ctx context.Context, tr *trace.Trace, cfg TrainConfig) (*LinearPolicy, []float64, error) {
	if tr.Len() < 10 {
		return nil, nil, errors.New("rl: training trace too small")
	}
	cfg = cfg.withDefaults()
	rng := dist.NewRNG(cfg.Seed + 7)

	w := [FeatureDim]float64{} // zero weights = FCFS (tie-break) start
	best := w
	bestFit, err := FitnessContext(ctx, &LinearPolicy{W: w}, tr, cfg.Backfill)
	if err != nil {
		return nil, nil, err
	}
	history := []float64{-bestFit}

	type sample struct {
		eps [FeatureDim]float64
		w   [FeatureDim]float64
		fit float64
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("rl: training canceled at iteration %d: %w", iter, err)
		}
		// Draw all perturbations up front (single RNG stream keeps the
		// run deterministic), then evaluate the population in parallel —
		// ES is embarrassingly parallel and each evaluation is a full
		// simulation.
		samples := make([]sample, 0, 2*cfg.Population)
		for k := 0; k < cfg.Population; k++ {
			var eps [FeatureDim]float64
			for i := range eps {
				eps[i] = rng.Normal()
			}
			for _, sign := range [2]float64{1, -1} { // antithetic pair
				var s sample
				for i := range s.w {
					s.eps[i] = sign * eps[i]
					s.w[i] = w[i] + sign*cfg.Sigma*eps[i]
				}
				samples = append(samples, s)
			}
		}
		cands := make([]LinearPolicy, len(samples))
		for k := range samples {
			cands[k] = LinearPolicy{W: samples[k].w}
		}
		fits, err := EvaluatePopulation(ctx, cands, tr, cfg.Backfill)
		if err != nil {
			return nil, nil, err
		}
		for k := range samples {
			samples[k].fit = fits[k]
			if samples[k].fit > bestFit {
				bestFit = samples[k].fit
				best = samples[k].w
			}
		}
		// Rank-normalize fitness (robust to outliers), then take the ES
		// gradient step.
		order := make([]int, len(samples))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return samples[order[a]].fit < samples[order[b]].fit
		})
		ranks := make([]float64, len(samples))
		for pos, idx := range order {
			ranks[idx] = float64(pos)/float64(len(samples)-1) - 0.5
		}
		for i := 0; i < FeatureDim; i++ {
			g := 0.0
			for k, s := range samples {
				g += ranks[k] * s.eps[i]
			}
			w[i] += cfg.LR * g / (float64(len(samples)) * cfg.Sigma)
		}
		if fit, err := FitnessContext(ctx, &LinearPolicy{W: w}, tr, cfg.Backfill); err == nil && fit > bestFit {
			bestFit = fit
			best = w
		}
		history = append(history, -bestFit)
	}
	return &LinearPolicy{W: best}, history, nil
}

package synth

import (
	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// Verification workloads: deliberately small clusters under heavy load, so
// a few hundred jobs exercise deep queues, reservations, and backfilling.
// The differential harness in internal/check sweeps these across every
// policy x backfill combination, comparing the optimized simulator against
// the naive reference oracle — the O(n²) oracle needs small n, and the
// full-size profiles barely queue at small n. Loads are tuned to ~0.85-0.95
// so queues build and drain within a fraction of a day.

// VerifyHPC is a 64-core HPC-style workload with user walltimes, so
// reservations plan against overestimates and killed jobs hit their limit.
func VerifyHPC(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "VerifyHPC", Kind: trace.HPC,
			TotalCores: 64, CoresPerNode: 1, StartHour: 8,
		},
		Days: days, JobsPerDay: 380, Burstiness: 1.3,
		HourlyWeights: afternoonHours,
		Users:         12, UserZipfS: 1.1,
		TemplatesPerUser: 6, TemplateZipfS: 1.6,
		SizeChoices: []int{1, 2, 4, 8, 16, 32},
		SizeWeights: []float64{0.30, 0.25, 0.20, 0.15, 0.07, 0.03},
		RefProcs:    8, SizeRuntimeCorr: 0.4,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(1800, 0.8), Lo: 30, Hi: 4e4},
		IntraTemplateSigma: 0.08,
		WalltimeFactorLo:   1.1, WalltimeFactorHi: 1.9,
		FailByLength:     [3]float64{0.12, 0.06, 0.02},
		KillByLength:     [3]float64{0.10, 0.25, 0.60},
		UserFailSigma:    0.3,
		WalltimeKillFrac: 0.5,
		QueueScale:       20,
	}
}

// VerifyVC is a 48-GPU DL-style workload split over three virtual clusters
// and carrying no walltimes, so the planner falls back to actual runtimes
// and partition isolation (including the user-hash fallback) is exercised.
func VerifyVC(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "VerifyVC", Kind: trace.DL,
			TotalCores: 48, VirtualClusters: 3, StartHour: 0,
		},
		Days: days, JobsPerDay: 1300, Burstiness: 1.8,
		HourlyWeights: flatDipHours,
		Users:         18, UserZipfS: 1.05,
		TemplatesPerUser: 8, TemplateZipfS: 1.5,
		SizeChoices: []int{1, 2, 4, 8},
		SizeWeights: []float64{0.70, 0.15, 0.10, 0.05},
		RefProcs:    4, SizeRuntimeCorr: 0.3,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(700, 1.2), Lo: 5, Hi: 5e4},
		IntraTemplateSigma: 0.08,
		FailByLength:       [3]float64{0.20, 0.12, 0.05},
		KillByLength:       [3]float64{0.10, 0.25, 0.50},
		SizeFailBoost:      [3]float64{1.0, 1.3, 1.8},
		UserFailSigma:      0.35,
		SizeAdapt:          0.6, RuntimeAdapt: 0.4,
		QueueScale: 25,
	}
}

// VerifyBurst is a 96-core hybrid workload with bursty arrivals and a
// long-tailed runtime mixture: queue length swings hard, which is what the
// adaptive backfill allowance (Eq. 1) keys on.
func VerifyBurst(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "VerifyBurst", Kind: trace.Hybrid,
			TotalCores: 96, CoresPerNode: 4, StartHour: 8,
		},
		Days: days, JobsPerDay: 360, Burstiness: 2.2,
		HourlyWeights: peakedHours,
		Users:         15, UserZipfS: 1.1,
		TemplatesPerUser: 6, TemplateZipfS: 1.7,
		SizeChoices: []int{2, 4, 8, 16, 32, 64},
		SizeWeights: []float64{0.30, 0.25, 0.20, 0.15, 0.07, 0.03},
		RefProcs:    16, SizeRuntimeCorr: 0.3,
		RuntimeMedian: dist.Clamped{S: mixture(
			0.4, dist.LogNormalFromMedian(300, 1.0),
			0.6, dist.LogNormalFromMedian(2500, 0.9),
		), Lo: 10, Hi: 5e4},
		IntraTemplateSigma: 0.08,
		WalltimeFactorLo:   1.05, WalltimeFactorHi: 1.6,
		FailByLength:     [3]float64{0.10, 0.05, 0.02},
		KillByLength:     [3]float64{0.10, 0.25, 0.60},
		UserFailSigma:    0.3,
		WalltimeKillFrac: 0.4,
		QueueScale:       30,
	}
}

// VerifyProfiles returns the verification workloads used by the
// differential harness, in a fixed order.
func VerifyProfiles(days float64) []*Profile {
	return []*Profile{VerifyHPC(days), VerifyVC(days), VerifyBurst(days)}
}

// VerifyConsDeep is a conservative-backfilling stress workload: a small
// cluster pushed past saturation so the waiting queue grows tens of jobs
// deep and every planning pass maintains a long reservation chain. Submit
// times are quantized to whole seconds, so arrival batches collide on
// exact ties and schedule against each other at the same instant — the
// regime where an incremental planner is most tempted to keep entries a
// from-scratch plan would move.
func VerifyConsDeep(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "VerifyConsDeep", Kind: trace.HPC,
			TotalCores: 32, CoresPerNode: 1, StartHour: 8,
		},
		Days: days, JobsPerDay: 560, Burstiness: 1.6,
		HourlyWeights: afternoonHours,
		SubmitQuantum: 1,
		Users:         10, UserZipfS: 1.1,
		TemplatesPerUser: 5, TemplateZipfS: 1.6,
		SizeChoices: []int{1, 2, 4, 8, 16},
		SizeWeights: []float64{0.35, 0.25, 0.20, 0.13, 0.07},
		RefProcs:    4, SizeRuntimeCorr: 0.4,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(1200, 0.9), Lo: 20, Hi: 3e4},
		IntraTemplateSigma: 0.08,
		WalltimeFactorLo:   1.1, WalltimeFactorHi: 1.8,
		FailByLength:     [3]float64{0.10, 0.05, 0.02},
		KillByLength:     [3]float64{0.10, 0.25, 0.55},
		UserFailSigma:    0.3,
		WalltimeKillFrac: 0.5,
		QueueScale:       40,
	}
}

// VerifyConsOverEst is a conservative stress workload with walltimes
// overestimated up to 6x the median runtime: almost every completion lands
// far before its planned end, so nearly every event opens a capacity hole
// under kept reservations and the plan-repair reject test runs constantly.
func VerifyConsOverEst(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "VerifyConsOverEst", Kind: trace.HPC,
			TotalCores: 48, CoresPerNode: 1, StartHour: 0,
		},
		Days: days, JobsPerDay: 480, Burstiness: 1.4,
		HourlyWeights: flatDipHours,
		SubmitQuantum: 1,
		Users:         12, UserZipfS: 1.1,
		TemplatesPerUser: 6, TemplateZipfS: 1.5,
		SizeChoices: []int{1, 2, 4, 8, 16, 24},
		SizeWeights: []float64{0.30, 0.25, 0.20, 0.14, 0.08, 0.03},
		RefProcs:    6, SizeRuntimeCorr: 0.3,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(900, 1.0), Lo: 15, Hi: 3e4},
		IntraTemplateSigma: 0.10,
		WalltimeFactorLo:   2.5, WalltimeFactorHi: 6.0,
		FailByLength:     [3]float64{0.12, 0.06, 0.02},
		KillByLength:     [3]float64{0.08, 0.20, 0.45},
		UserFailSigma:    0.3,
		WalltimeKillFrac: 0.2,
		QueueScale:       35,
	}
}

// VerifyConsProfiles returns the conservative-backfilling stress
// workloads, in a fixed order.
func VerifyConsProfiles(days float64) []*Profile {
	return []*Profile{VerifyConsDeep(days), VerifyConsOverEst(days)}
}

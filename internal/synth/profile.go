package synth

import (
	"fmt"
	"io"
	"math"

	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// Profile parameterizes a synthetic workload for one system. The built-in
// profiles in profiles.go are calibrated to the paper's reported statistics;
// see DESIGN.md ("Calibration targets").
type Profile struct {
	Sys trace.System

	// Days is the trace duration in days.
	Days float64
	// JobsPerDay is the mean arrival rate.
	JobsPerDay float64
	// HourlyWeights shape the diurnal cycle (relative rates by local hour;
	// normalized internally). Figure 1(b) bottom.
	HourlyWeights [24]float64
	// Burstiness > 1 makes inter-arrival gaps heavier-tailed than Poisson
	// (Weibull shape 1/Burstiness). DL clusters are burstier.
	Burstiness float64
	// SubmitQuantum, when positive, floor-quantizes every submission time
	// to a multiple of this many seconds. Quantization is order-preserving,
	// so it only collapses distinct arrivals into exact submit-time ties —
	// real traces carry second-granularity timestamps, and the ties stress
	// the schedulers' tie-breaking and same-instant batching paths. Used by
	// the verification profiles.
	SubmitQuantum float64

	// Users is the size of the user population; activity is Zipf-skewed.
	Users int
	// UserZipfS is the Zipf exponent for user activity (heavy users).
	UserZipfS float64
	// TemplatesPerUser bounds each user's set of repeated job
	// configurations (Figure 8); selection within a user is Zipf with
	// exponent TemplateZipfS.
	TemplatesPerUser int
	TemplateZipfS    float64

	// SizeChoices and SizeWeights define the job-size distribution in
	// cores (CPU cores for HPC, GPUs for DL). Figure 1(c).
	SizeChoices []int
	SizeWeights []float64
	// RefProcs anchors the size-runtime correlation; templates with
	// procs above it run longer by (procs/RefProcs)^SizeRuntimeCorr.
	RefProcs        int
	SizeRuntimeCorr float64

	// RuntimeMedian samples the per-template median runtime (seconds).
	RuntimeMedian dist.Sampler
	// RuntimeTailWeight is the probability a template is a long-running
	// (e.g. multi-day DL training) template drawn from RuntimeTail.
	RuntimeTailWeight float64
	RuntimeTail       dist.Sampler
	// IntraTemplateSigma is the log-normal sigma within a template;
	// small values make a user's repeated jobs nearly identical.
	IntraTemplateSigma float64

	// WalltimeFactorLo/Hi bound the per-template walltime overestimate
	// (requested walltime = median runtime x factor). Zero disables
	// walltimes (the DL traces carry none).
	WalltimeFactorLo, WalltimeFactorHi float64

	// Failure model: probability of Failed and Killed by intended-runtime
	// category (short <1h, middle 1h-1d, long >1d). Figure 6/7.
	FailByLength [3]float64
	KillByLength [3]float64
	// SizeFailBoost scales failure odds with size category (DL systems;
	// Figure 7a): multiplier per size category (small, middle, large).
	SizeFailBoost [3]float64
	// UserFailSigma randomizes per-user failure propensity (Figure 11).
	UserFailSigma float64
	// WalltimeKillFrac is the share of HPC killed jobs that die exactly
	// at their walltime limit (runtime == walltime).
	WalltimeKillFrac float64

	// Adaptive behavior (Figures 9-10): when the observed queue fraction
	// is q in [0,1], a job shrinks to the minimal size with probability
	// SizeAdapt*q, and (DL only) its runtime is scaled by
	// RuntimeShrink^(RuntimeAdapt*q).
	SizeAdapt    float64
	RuntimeAdapt float64
	// QueueScale is the queue length treated as "full" for q = 1.
	QueueScale float64
}

// Validate reports the first configuration problem.
func (p *Profile) Validate() error {
	switch {
	case p.Sys.TotalCores <= 0:
		return fmt.Errorf("synth: %s: non-positive capacity", p.Sys.Name)
	case p.Days <= 0:
		return fmt.Errorf("synth: %s: non-positive days", p.Sys.Name)
	case p.JobsPerDay <= 0:
		return fmt.Errorf("synth: %s: non-positive arrival rate", p.Sys.Name)
	case p.Users <= 0:
		return fmt.Errorf("synth: %s: no users", p.Sys.Name)
	case len(p.SizeChoices) == 0 || len(p.SizeChoices) != len(p.SizeWeights):
		return fmt.Errorf("synth: %s: size choices/weights mismatch", p.Sys.Name)
	case p.RuntimeMedian == nil:
		return fmt.Errorf("synth: %s: no runtime distribution", p.Sys.Name)
	case p.TemplatesPerUser <= 0:
		return fmt.Errorf("synth: %s: no templates", p.Sys.Name)
	case p.QueueScale <= 0:
		return fmt.Errorf("synth: %s: non-positive queue scale", p.Sys.Name)
	}
	for _, c := range p.SizeChoices {
		if c <= 0 || c > p.Sys.TotalCores {
			return fmt.Errorf("synth: %s: size choice %d outside (0, %d]",
				p.Sys.Name, c, p.Sys.TotalCores)
		}
	}
	return nil
}

// template is one repeated job configuration owned by a user.
type template struct {
	procs      int
	medianRun  float64
	wallFactor float64
}

// user is a simulated submitter.
type user struct {
	id        int
	vc        int
	templates []template
	tmplZipf  *dist.Zipf
	failMult  float64
	killMult  float64
}

// Generate produces a trace for the profile with the given seed. The
// returned trace is sorted by submission and has Wait filled from the
// shadow scheduler (the analog of the recorded waits in a real trace).
// Generate is a drain of Stream: the streaming generator is the single
// implementation, so the two are bit-identical by construction.
func (p *Profile) Generate(seed uint64) (*trace.Trace, error) {
	s, err := p.Stream(seed)
	if err != nil {
		return nil, err
	}
	tr := trace.New(p.Sys)
	for {
		j, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	tr.SortBySubmit()
	return tr, nil
}

// makeUsers builds the user population with their repeated templates.
func (p *Profile) makeUsers(rng *dist.RNG) []*user {
	sizeCat := dist.NewCategorical(p.SizeWeights)
	users := make([]*user, p.Users)
	for i := range users {
		r := rng.Split()
		u := &user{
			id:       i,
			failMult: math.Exp(p.UserFailSigma * r.Normal()),
			killMult: math.Exp(p.UserFailSigma * r.Normal()),
		}
		if p.Sys.VirtualClusters > 1 {
			// Deterministically skewed VC assignment: low-index (most
			// active) users pile onto the first VCs. This is the
			// imbalance behind Philly's queued-jobs-next-to-idle-GPUs
			// pathology (Takeaway 5/6).
			u.vc = skewedPartition(i, p.Users, p.Sys.VirtualClusters)
		}
		n := p.TemplatesPerUser
		u.templates = make([]template, n)
		for k := range u.templates {
			procs := p.SizeChoices[sizeCat.SampleIndex(r)]
			med := p.RuntimeMedian.Sample(r)
			if p.RuntimeTailWeight > 0 && p.RuntimeTail != nil && r.Float64() < p.RuntimeTailWeight {
				med = p.RuntimeTail.Sample(r)
			}
			if p.SizeRuntimeCorr != 0 && p.RefProcs > 0 {
				med *= math.Pow(float64(procs)/float64(p.RefProcs), p.SizeRuntimeCorr)
			}
			if med < 1 {
				med = 1
			}
			wf := 0.0
			if p.WalltimeFactorHi > 0 {
				wf = p.WalltimeFactorLo + (p.WalltimeFactorHi-p.WalltimeFactorLo)*r.Float64()
			}
			u.templates[k] = template{procs: procs, medianRun: med, wallFactor: wf}
		}
		u.tmplZipf = dist.NewZipf(n, p.TemplateZipfS)
		users[i] = u
	}
	return users
}

// skewedPartition maps user index i of n onto one of k partitions with a
// harmonic skew: partition v receives a share of users proportional to
// 1/(v+1), so earlier partitions hold more (and, given Zipf user activity,
// hotter) users.
func skewedPartition(i, n, k int) int {
	total := 0.0
	for v := 0; v < k; v++ {
		total += 1 / float64(v+3)
	}
	f := float64(i) / float64(n)
	acc := 0.0
	for v := 0; v < k; v++ {
		acc += 1 / float64(v+3) / total
		if f < acc {
			return v
		}
	}
	return k - 1
}

// lengthCategory classifies a runtime per the paper: short <1h,
// middle 1h-1d, long >1d.
func lengthCategory(run float64) int {
	switch {
	case run < 3600:
		return 0
	case run <= 86400:
		return 1
	default:
		return 2
	}
}

// sizeCategory3 places procs into (small, middle, large) using the
// system-appropriate convention; see analysis.SizeCategory for the shared
// definition. Here only the DL boost needs it.
func sizeCategory3(kind trace.SystemKind, procs, totalCores int) int {
	if kind == trace.DL {
		switch {
		case procs <= 1:
			return 0
		case procs <= 8:
			return 1
		default:
			return 2
		}
	}
	frac := float64(procs) / float64(totalCores)
	switch {
	case frac < 0.10:
		return 0
	case frac <= 0.30:
		return 1
	default:
		return 2
	}
}

// makeJob draws one job for user u under queue pressure qFrac.
func (p *Profile) makeJob(rng *dist.RNG, u *user, _ *dist.Categorical, qFrac float64, vcCap int) trace.Job {
	t := u.templates[u.tmplZipf.SampleRank(rng)-1]
	procs := t.procs
	// Adaptive sizing: under pressure users shrink to the minimal request.
	if p.SizeAdapt > 0 && rng.Float64() < p.SizeAdapt*qFrac {
		procs = p.SizeChoices[0]
	}
	if procs > vcCap {
		procs = vcCap
	}

	run := t.medianRun * math.Exp(p.IntraTemplateSigma*rng.Normal())
	// Adaptive runtime (DL): shorter jobs when the system is busy. The
	// pressure level is quantized to halves — users switch to a discrete
	// "short variant" of their job rather than scaling continuously —
	// which also keeps their repeated-configuration groups (Figure 8)
	// recognizable.
	if p.RuntimeAdapt > 0 && qFrac > 0 {
		level := math.Ceil(qFrac*2) / 2 // any visible queue selects the short variant
		run *= math.Pow(0.05, p.RuntimeAdapt*level)
	}
	if run < 1 {
		run = 1
	}

	// Failure model on the intended runtime/size.
	cat := lengthCategory(run)
	fail := p.FailByLength[cat] * u.failMult
	kill := p.KillByLength[cat] * u.killMult
	if p.SizeFailBoost != [3]float64{} {
		b := p.SizeFailBoost[sizeCategory3(p.Sys.Kind, procs, p.Sys.TotalCores)]
		fail *= b
		kill *= b
	}
	if fail+kill > 0.95 {
		scale := 0.95 / (fail + kill)
		fail *= scale
		kill *= scale
	}
	status := trace.Passed
	switch x := rng.Float64(); {
	case x < fail:
		status = trace.Failed
	case x < fail+kill:
		status = trace.Killed
	}

	wall := 0.0
	if t.wallFactor > 0 {
		wall = t.medianRun * t.wallFactor
	}

	switch status {
	case trace.Failed:
		// Failures are cheap: they die early in the run.
		run *= 0.01 + 0.34*rng.Float64()
		if run < 1 {
			run = 1
		}
	case trace.Killed:
		if wall > 0 && rng.Float64() < p.WalltimeKillFrac {
			// Killed exactly at the walltime limit.
			wall = run
		} else {
			// Cancelled by the user partway through.
			lo := 0.4
			if p.Sys.Kind == trace.DL {
				lo = 0.1
			}
			run *= lo + (1-lo)*rng.Float64()
			if run < 1 {
				run = 1
			}
		}
	}
	if wall > 0 && wall < run {
		wall = run
	}

	return trace.Job{
		User:     u.id,
		Run:      run,
		Walltime: wall,
		Procs:    procs,
		VC:       -1,
		Wait:     -1,
		Status:   status,
	}
}

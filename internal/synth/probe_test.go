package synth

import (
	"fmt"
	"sort"
	"testing"

	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// TestProbe prints calibration diagnostics for every profile. Run with
// `go test -run TestProbe -v ./internal/synth/` while tuning parameters.
func TestProbe(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic probe; run with -v")
	}
	for _, name := range SystemNames {
		p, err := ByName(name, 10)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		rt := tr.Runtimes()
		iv := tr.ArrivalIntervals()
		waits := tr.Waits()
		procs := tr.Procs()
		util := occupancyUtil(tr)
		var pass, fail, kill int
		chByStatus := map[trace.Status]float64{}
		for _, j := range tr.Jobs {
			switch j.Status {
			case trace.Passed:
				pass++
			case trace.Failed:
				fail++
			case trace.Killed:
				kill++
			}
			chByStatus[j.Status] += j.CoreHours()
		}
		totCH := tr.TotalCoreHours()
		n := float64(tr.Len())
		// core-hour share of small jobs
		smallCH := 0.0
		for _, j := range tr.Jobs {
			if sizeCategory3(tr.System.Kind, j.Procs, tr.System.TotalCores) == 0 {
				smallCH += j.CoreHours()
			}
		}
		// CH share by length cat
		var lenCH [3]float64
		for _, j := range tr.Jobs {
			lenCH[lengthCategory(j.Run)] += j.CoreHours()
		}
		fmt.Printf("%-11s n=%6d medRT=%8.0f medIV=%6.1f medWait=%8.0f p80wait=%8.0f util=%.3f medProcs=%6.0f pass=%.2f fail=%.2f kill=%.2f CHpass=%.2f CHsmall=%.2f CHlen=[%.2f %.2f %.2f]\n",
			name, tr.Len(), stats.Median(rt), stats.Median(iv), stats.Median(waits),
			stats.Quantile(waits, 0.8), util, stats.Median(procs),
			float64(pass)/n, float64(fail)/n, float64(kill)/n,
			chByStatus[trace.Passed]/totCH, smallCH/totCH,
			lenCH[0]/totCH, lenCH[1]/totCH, lenCH[2]/totCH)
	}
}

// occupancyUtil computes utilization over the submission window: core
// seconds of execution clipped to [first submit, last submit] divided by
// capacity x window.
func occupancyUtil(tr *trace.Trace) float64 {
	if tr.Len() < 2 {
		return 0
	}
	lo := tr.Jobs[0].Submit
	hi := tr.Jobs[tr.Len()-1].Submit
	if hi <= lo {
		return 0
	}
	busy := 0.0
	for _, j := range tr.Jobs {
		s, e := j.Start(), j.End()
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			busy += (e - s) * float64(j.Procs)
		}
	}
	return busy / (float64(tr.System.TotalCores) * (hi - lo))
}

var _ = sort.Float64s
